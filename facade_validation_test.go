package waitfree_test

import (
	"testing"

	waitfree "repro"
)

// TestFacadeValidation covers the constructors' error paths.
func TestFacadeValidation(t *testing.T) {
	tiny := func() *waitfree.Sim {
		return waitfree.NewSim(waitfree.SimConfig{Processors: 1, Seed: 1, MemWords: 8})
	}

	if _, err := waitfree.NewUniList(tiny(), waitfree.ListConfig{Procs: 2, Capacity: 1024}); err == nil {
		t.Error("list in undersized memory accepted")
	}
	if _, err := waitfree.NewMultiList(tiny(), waitfree.ListConfig{Procs: 2, Capacity: 1024}); err == nil {
		t.Error("multilist in undersized memory accepted")
	}
	if _, err := waitfree.NewUniQueue(tiny(), waitfree.QueueConfig{Procs: 1, Capacity: 1024}); err == nil {
		t.Error("queue in undersized memory accepted")
	}
	if _, err := waitfree.NewMultiHash(tiny(), waitfree.HashConfig{Procs: 1, Buckets: 4, Capacity: 1024}); err == nil {
		t.Error("hash in undersized memory accepted")
	}

	sim := waitfree.NewSim(waitfree.SimConfig{Processors: 1, Seed: 1})
	if _, err := waitfree.NewMultiHash(sim, waitfree.HashConfig{
		Procs: 1, Buckets: 4, Capacity: 64, Seed: []uint64{5, 5},
	}); err == nil {
		t.Error("duplicate hash seed keys accepted")
	}
	if _, err := waitfree.NewUniList(sim, waitfree.ListConfig{
		Procs: 1, Capacity: 64, Seed: []uint64{9, 3},
	}); err == nil {
		t.Error("unsorted list seed accepted")
	}
	if _, err := waitfree.NewUniMWCAS(sim, waitfree.MWCASConfig{
		Procs: 1 << 20, Width: 1, Words: 1,
	}); err == nil {
		t.Error("oversized process count accepted")
	}
}

// TestFacadeDefaults: zero-valued configs get usable defaults.
func TestFacadeDefaults(t *testing.T) {
	sim := waitfree.NewSim(waitfree.SimConfig{Processors: 2, Seed: 1, MemWords: 1 << 16})
	q, err := waitfree.NewMultiQueue(sim, waitfree.QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := waitfree.NewUniHash(sim, waitfree.HashConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := waitfree.NewMultiStack(sim, waitfree.QueueConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sim.SpawnAt(0, 0, 1, "p", func(e *waitfree.Env) {
		q.Enqueue(e, 1)
		st.Push(e, 2)
		h.Insert(e, 3, 30)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(q.Snapshot()) != 1 || len(st.Snapshot()) != 1 || len(h.Snapshot()) != 1 {
		t.Error("default-config structures did not accept operations")
	}
}

package waitfree

// Facade constructors for the Section 4 extension objects: the wait-free
// queue, stack and hash table ("other 'linear' data structures ... are just
// as straightforward to implement as linked lists").

import (
	"repro/internal/arena"
	"repro/internal/core/multihash"
	"repro/internal/core/multiqueue"
	"repro/internal/core/multistack"
	"repro/internal/core/unihash"
	"repro/internal/core/uniqueue"
	"repro/internal/core/unistack"
)

// UniQueue is a wait-free FIFO queue for priority-based uniprocessors.
type UniQueue = uniqueue.Queue

// UniStack is a wait-free LIFO stack for priority-based uniprocessors.
type UniStack = unistack.Stack

// MultiQueue is a wait-free FIFO queue for priority-based multiprocessors.
type MultiQueue = multiqueue.Queue

// MultiStack is a wait-free LIFO stack for priority-based multiprocessors.
type MultiStack = multistack.Stack

// MultiHash is a wait-free hash table for priority-based multiprocessors.
type MultiHash = multihash.Table

// UniHash is a wait-free hash table for priority-based uniprocessors.
type UniHash = unihash.Table

// QueueConfig configures a queue or stack instance.
type QueueConfig struct {
	// Procs is N; Capacity is the node arena size.
	Procs, Capacity int
	// Processors, CC, Mode, OneRound configure the multiprocessor queue
	// (ignored by the uniprocessor structures).
	Processors int
	CC         CCAS
	Mode       HelpingMode
	OneRound   bool
}

// HashConfig configures a hash table instance.
type HashConfig struct {
	// Procs is N; Buckets is K; Capacity is the node arena size.
	Procs, Buckets, Capacity int
	// Seed pre-loads the table with these distinct keys.
	Seed []uint64
	// Processors, CC, Mode, OneRound configure the helping engine.
	Processors int
	CC         CCAS
	Mode       HelpingMode
	OneRound   bool
}

func (c *QueueConfig) defaults(sim *Sim) {
	if c.Capacity == 0 {
		c.Capacity = 1024
	}
	if c.Procs == 0 {
		c.Procs = 1
	}
	if c.Processors == 0 {
		c.Processors = sim.Processors()
	}
}

// NewUniQueue builds a uniprocessor wait-free FIFO queue inside sim.
func NewUniQueue(sim *Sim, cfg QueueConfig) (*UniQueue, error) {
	cfg.defaults(sim)
	ar, err := arena.New(sim.Mem(), cfg.Capacity, cfg.Procs)
	if err != nil {
		return nil, err
	}
	q, err := uniqueue.New(sim.Mem(), ar, cfg.Procs)
	if err != nil {
		return nil, err
	}
	ar.Freeze()
	return q, nil
}

// NewUniStack builds a uniprocessor wait-free LIFO stack inside sim.
func NewUniStack(sim *Sim, cfg QueueConfig) (*UniStack, error) {
	cfg.defaults(sim)
	ar, err := arena.New(sim.Mem(), cfg.Capacity, cfg.Procs)
	if err != nil {
		return nil, err
	}
	st, err := unistack.New(sim.Mem(), ar, cfg.Procs)
	if err != nil {
		return nil, err
	}
	ar.Freeze()
	return st, nil
}

// NewMultiQueue builds a multiprocessor wait-free FIFO queue inside sim.
func NewMultiQueue(sim *Sim, cfg QueueConfig) (*MultiQueue, error) {
	cfg.defaults(sim)
	ar, err := arena.New(sim.Mem(), cfg.Capacity, cfg.Procs)
	if err != nil {
		return nil, err
	}
	q, err := multiqueue.New(sim.Mem(), ar, multiqueue.Config{
		Processors: cfg.Processors,
		Procs:      cfg.Procs,
		CC:         cfg.CC,
		Mode:       cfg.Mode,
		OneRound:   cfg.OneRound,
	})
	if err != nil {
		return nil, err
	}
	ar.Freeze()
	return q, nil
}

// NewMultiStack builds a multiprocessor wait-free LIFO stack inside sim.
func NewMultiStack(sim *Sim, cfg QueueConfig) (*MultiStack, error) {
	cfg.defaults(sim)
	ar, err := arena.New(sim.Mem(), cfg.Capacity, cfg.Procs)
	if err != nil {
		return nil, err
	}
	st, err := multistack.New(sim.Mem(), ar, multistack.Config{
		Processors: cfg.Processors,
		Procs:      cfg.Procs,
		CC:         cfg.CC,
		Mode:       cfg.Mode,
		OneRound:   cfg.OneRound,
	})
	if err != nil {
		return nil, err
	}
	ar.Freeze()
	return st, nil
}

// NewUniHash builds a uniprocessor wait-free hash table inside sim.
func NewUniHash(sim *Sim, cfg HashConfig) (*UniHash, error) {
	if cfg.Capacity == 0 {
		cfg.Capacity = 1024
	}
	if cfg.Procs == 0 {
		cfg.Procs = 1
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 16
	}
	ar, err := arena.New(sim.Mem(), cfg.Capacity, cfg.Procs)
	if err != nil {
		return nil, err
	}
	tb, err := unihash.New(sim.Mem(), ar, cfg.Procs, cfg.Buckets)
	if err != nil {
		return nil, err
	}
	if len(cfg.Seed) > 0 {
		if err := tb.SeedKeys(cfg.Seed); err != nil {
			return nil, err
		}
	}
	ar.Freeze()
	return tb, nil
}

// NewMultiHash builds a multiprocessor wait-free hash table inside sim.
func NewMultiHash(sim *Sim, cfg HashConfig) (*MultiHash, error) {
	if cfg.Capacity == 0 {
		cfg.Capacity = 1024
	}
	if cfg.Procs == 0 {
		cfg.Procs = 1
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 16
	}
	if cfg.Processors == 0 {
		cfg.Processors = sim.Processors()
	}
	ar, err := arena.New(sim.Mem(), cfg.Capacity, cfg.Procs)
	if err != nil {
		return nil, err
	}
	tb, err := multihash.New(sim.Mem(), ar, multihash.Config{
		Processors: cfg.Processors,
		Procs:      cfg.Procs,
		Buckets:    cfg.Buckets,
		CC:         cfg.CC,
		Mode:       cfg.Mode,
		OneRound:   cfg.OneRound,
	})
	if err != nil {
		return nil, err
	}
	if len(cfg.Seed) > 0 {
		if err := tb.SeedKeys(cfg.Seed); err != nil {
			return nil, err
		}
	}
	ar.Freeze()
	return tb, nil
}

package waitfree

// Facade constructors for the Section 4 extension objects: the wait-free
// queue, stack and hash table ("other 'linear' data structures ... are just
// as straightforward to implement as linked lists").
//
// Every constructor routes through internal/registry: the descriptor layer
// owns the construction order (arena, object, seeding, freeze), the shared
// defaults, and the single ErrProcConfig rejection for invalid
// Processors/Procs combinations.

import (
	"repro/internal/core/multihash"
	"repro/internal/core/multiqueue"
	"repro/internal/core/multistack"
	"repro/internal/core/unihash"
	"repro/internal/core/uniqueue"
	"repro/internal/core/unistack"
	"repro/internal/registry"
)

// UniQueue is a wait-free FIFO queue for priority-based uniprocessors.
type UniQueue = uniqueue.Queue

// UniStack is a wait-free LIFO stack for priority-based uniprocessors.
type UniStack = unistack.Stack

// MultiQueue is a wait-free FIFO queue for priority-based multiprocessors.
type MultiQueue = multiqueue.Queue

// MultiStack is a wait-free LIFO stack for priority-based multiprocessors.
type MultiStack = multistack.Stack

// MultiHash is a wait-free hash table for priority-based multiprocessors.
type MultiHash = multihash.Table

// UniHash is a wait-free hash table for priority-based uniprocessors.
type UniHash = unihash.Table

// QueueConfig configures a queue or stack instance.
type QueueConfig struct {
	// Procs is N; Capacity is the node arena size.
	Procs, Capacity int
	// Processors, CC, Mode, OneRound configure the multiprocessor queue
	// (ignored by the uniprocessor structures).
	Processors int
	CC         CCAS
	Mode       HelpingMode
	OneRound   bool
}

// HashConfig configures a hash table instance.
type HashConfig struct {
	// Procs is N; Buckets is K; Capacity is the node arena size.
	Procs, Buckets, Capacity int
	// Seed pre-loads the table with these distinct keys.
	Seed []uint64
	// Processors, CC, Mode, OneRound configure the helping engine.
	Processors int
	CC         CCAS
	Mode       HelpingMode
	OneRound   bool
}

func (c QueueConfig) registry() registry.Config {
	return registry.Config{
		Processors: c.Processors, Procs: c.Procs, Capacity: c.Capacity,
		CC: c.CC, Mode: c.Mode, OneRound: c.OneRound,
	}
}

func (c HashConfig) registry() registry.Config {
	return registry.Config{
		Processors: c.Processors, Procs: c.Procs, Capacity: c.Capacity,
		Buckets: c.Buckets, SeedKeys: c.Seed,
		CC: c.CC, Mode: c.Mode, OneRound: c.OneRound,
	}
}

// build constructs the named registry object inside sim and unwraps its
// concrete type.
func build[T any](sim *Sim, name string, cfg registry.Config) (T, error) {
	inst, err := registry.Build(sim, name, cfg)
	if err != nil {
		var zero T
		return zero, err
	}
	return inst.Underlying().(T), nil
}

// NewUniQueue builds a uniprocessor wait-free FIFO queue inside sim.
func NewUniQueue(sim *Sim, cfg QueueConfig) (*UniQueue, error) {
	return build[*UniQueue](sim, "uniqueue", cfg.registry())
}

// NewUniStack builds a uniprocessor wait-free LIFO stack inside sim.
func NewUniStack(sim *Sim, cfg QueueConfig) (*UniStack, error) {
	return build[*UniStack](sim, "unistack", cfg.registry())
}

// NewMultiQueue builds a multiprocessor wait-free FIFO queue inside sim.
func NewMultiQueue(sim *Sim, cfg QueueConfig) (*MultiQueue, error) {
	return build[*MultiQueue](sim, "multiqueue", cfg.registry())
}

// NewMultiStack builds a multiprocessor wait-free LIFO stack inside sim.
func NewMultiStack(sim *Sim, cfg QueueConfig) (*MultiStack, error) {
	return build[*MultiStack](sim, "multistack", cfg.registry())
}

// NewUniHash builds a uniprocessor wait-free hash table inside sim.
func NewUniHash(sim *Sim, cfg HashConfig) (*UniHash, error) {
	return build[*UniHash](sim, "unihash", cfg.registry())
}

// NewMultiHash builds a multiprocessor wait-free hash table inside sim.
func NewMultiHash(sim *Sim, cfg HashConfig) (*MultiHash, error) {
	return build[*MultiHash](sim, "multihash", cfg.registry())
}

package waitfree

// Real-time analysis facade: rate-monotonic assignment and response-time
// analysis with the paper's wait-free helping surcharge (see internal/rt).
// This is the schedulability story that motivates wait-freedom in the
// paper's target systems: operation worst cases are bounded (Θ(2T) /
// Θ(2PT)), so they can be folded into classic response-time analysis —
// something lock-free retry loops do not permit.

import "repro/internal/rt"

type (
	// RTTask is a periodic task whose jobs perform wait-free object
	// operations.
	RTTask = rt.Task
	// RTAnalysis is the response-time analysis result for one task.
	RTAnalysis = rt.Analysis
)

// AssignRateMonotonic orders tasks highest-priority-first by period.
func AssignRateMonotonic(tasks []RTTask) []RTTask { return rt.AssignRateMonotonic(tasks) }

// ResponseTimeAnalysis runs the classic recurrence with helping-inflated
// WCETs on a rate-monotonically ordered task set.
func ResponseTimeAnalysis(ordered []RTTask) ([]RTAnalysis, error) {
	return rt.ResponseTimeAnalysis(ordered)
}

// RTSchedulable reports whether every analyzed task meets its deadline.
func RTSchedulable(as []RTAnalysis) bool { return rt.Schedulable(as) }

// RTUtilization sums task utilizations (helping surcharge included).
func RTUtilization(tasks []RTTask) float64 { return rt.TotalUtilization(tasks) }

// RTLiuLaylandBound is the sufficient rate-monotonic utilization bound.
func RTLiuLaylandBound(n int) float64 { return rt.LiuLaylandBound(n) }

// RTPartitionedAnalysis runs per-processor response-time analysis for a
// partitioned task set sharing objects on a P-processor helping ring
// (operations charged at the paper's 2·P·T surcharge).
func RTPartitionedAnalysis(tasks []RTTask, assign []int, p int) (map[int][]RTAnalysis, error) {
	return rt.PartitionedAnalysis(tasks, assign, p)
}

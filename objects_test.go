package waitfree_test

import (
	"testing"

	waitfree "repro"
)

// TestPublicAPIQueueStack drives the facade queue and stack end to end on a
// priority uniprocessor with preemption.
func TestPublicAPIQueueStack(t *testing.T) {
	sim := waitfree.NewSim(waitfree.SimConfig{Processors: 1, Seed: 2})
	q, err := waitfree.NewUniQueue(sim, waitfree.QueueConfig{Procs: 2, Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	st, err := waitfree.NewUniStack(sim, waitfree.QueueConfig{Procs: 2, Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	sim.Spawn(waitfree.JobSpec{Name: "producer", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *waitfree.Env) {
		for v := uint64(1); v <= 5; v++ {
			q.Enqueue(e, v)
			st.Push(e, v)
		}
	}})
	var deqs, pops []uint64
	sim.Spawn(waitfree.JobSpec{Name: "consumer", CPU: 0, Prio: 5, Slot: 1, AfterSlices: 200, Body: func(e *waitfree.Env) {
		for {
			v, ok := q.Dequeue(e)
			if !ok {
				break
			}
			deqs = append(deqs, v)
		}
		for {
			v, ok := st.Pop(e)
			if !ok {
				break
			}
			pops = append(pops, v)
		}
	}})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range deqs {
		if v != uint64(i+1) {
			t.Errorf("queue order broken: %v", deqs)
			break
		}
	}
	for i, v := range pops {
		if v != uint64(len(pops)-i) {
			t.Errorf("stack order broken: %v", pops)
			break
		}
	}
}

// TestPublicAPIMultiQueueHash drives the multiprocessor queue and hash table
// through the facade.
func TestPublicAPIMultiQueueHash(t *testing.T) {
	sim := waitfree.NewSim(waitfree.SimConfig{Processors: 2, Seed: 3})
	q, err := waitfree.NewMultiQueue(sim, waitfree.QueueConfig{Procs: 2, Capacity: 64, Mode: waitfree.PriorityHelping})
	if err != nil {
		t.Fatal(err)
	}
	h, err := waitfree.NewMultiHash(sim, waitfree.HashConfig{Procs: 2, Buckets: 4, Capacity: 64, Seed: []uint64{7, 11}})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for cpu := 0; cpu < 2; cpu++ {
		cpu := cpu
		sim.Spawn(waitfree.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, AfterSlices: -1, Body: func(e *waitfree.Env) {
			for i := 0; i < 10; i++ {
				q.Enqueue(e, uint64(100*cpu+i))
				if h.Insert(e, uint64(100*cpu+i+1), 0) {
					total++
				}
			}
		}})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(q.Snapshot()); got != 20 {
		t.Errorf("queue has %d values, want 20", got)
	}
	if got := len(h.Snapshot()); got != total+2 {
		t.Errorf("table has %d keys, want %d", got, total+2)
	}
}

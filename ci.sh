#!/bin/sh
# ci.sh — the repo's tier-1 gate, runnable anywhere the Go toolchain is.
#
#   ./ci.sh
#
# Runs gofmt/vet, a full build, the full test suite, and a race-detector
# pass over the packages with real goroutine hand-offs (the scheduler's
# coroutine rendezvous, the trace log, the parallel sweep harness, and
# the native-hardware backend with its whole-registry stress suite).
# Everything is stdlib-only and deterministic, so a green run on one
# machine is a green run on all. Then end-to-end smokes into artifacts/
# (which stays out of git): the Figure 2 trace export, the
# parallel-vs-serial byte-identity of wfcheck's sweep output (with and
# without -cover), the wfbench full-matrix sweep (which asserts the same
# identity internally and records timing plus schedule-space coverage in
# BENCH_sweep.json), the native metrics report inside BENCH_native.json,
# and a flight-recorder Perfetto export of a real-hardware run.
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test ./...
go test -race ./internal/sched/... ./internal/trace/... ./internal/tracex/... ./internal/harness/... ./internal/linz/...

# Native backend: every registered object on real goroutines under the
# race detector — 32-wide stress with conservation-law oracles plus the
# black-box differential tests against the Wing-Gong engine.
go test -race -short ./internal/native/...

# Service subsystem: hot-key counter and token-bucket limiter, all four
# store variants on real goroutines under the race detector, with the
# conservation oracles (counts never lost or doubled; per-tenant windows
# never over-admitted).
go test -race -short ./internal/service/...

# The registry must cover every internal/core/ and internal/baseline/
# package; this is the gate that keeps "drive everything through the
# registry" honest.
go test ./internal/registry/ -run TestRegistryCompleteness

mkdir -p artifacts

go build -o /dev/null ./cmd/wftrace
go run ./cmd/wftrace -object unilist -seed 1 -pattern stagger -export perfetto -o artifacts/fig2.trace.json
test -s artifacts/fig2.trace.json

go run ./cmd/wfcheck -max 40 -par 1 > artifacts/wfcheck_serial.txt
go run ./cmd/wfcheck -max 40 -par 0 > artifacts/wfcheck_par.txt
cmp artifacts/wfcheck_serial.txt artifacts/wfcheck_par.txt

# Schedule-space coverage: the -cover accounting must be byte-identical at
# any worker count (signatures fold post-merge in suite order) and must
# actually report distinct-behavior lines.
go run ./cmd/wfcheck -max 40 -cover -par 1 > artifacts/wfcheck_cover_serial.txt
go run ./cmd/wfcheck -max 40 -cover -par 0 > artifacts/wfcheck_cover_par.txt
cmp artifacts/wfcheck_cover_serial.txt artifacts/wfcheck_cover_par.txt
grep -q "cover" artifacts/wfcheck_cover_serial.txt
grep -q "curve" artifacts/wfcheck_cover_serial.txt

# Byte-identity goldens, pinned before the simulator fast path (run-ahead
# slice batching, heap ready queues, Sim pooling, zero-alloc tracing)
# landed: the optimized core must not change one observable byte of the
# sweep output, the wftrace text rendering, or the run reports.
cmp testdata/golden/wfcheck_max40.txt artifacts/wfcheck_serial.txt
go run ./cmd/wftrace -object unilist -seed 1 -pattern stagger > artifacts/wftrace_unilist_stagger.txt
cmp testdata/golden/wftrace_unilist_stagger.txt artifacts/wftrace_unilist_stagger.txt
mkdir -p artifacts/report
go run ./cmd/wfbench -exp report -outdir artifacts/report > /dev/null
for f in testdata/golden/report/*.json; do
    cmp "$f" "artifacts/report/$(basename "$f")"
done

go run ./cmd/wfbench -exp sweep -sweepseeds 1 -outdir artifacts
test -s artifacts/BENCH_sweep.json
grep -q '"coverage"' artifacts/BENCH_sweep.json
grep -q '"saturation"' artifacts/BENCH_sweep.json

# Native smoke: real-hardware ops/sec for all objects plus the sync.Mutex
# reference (timings vary by host, so BENCH_native.json is an artifact,
# not a golden). The native metrics layer rides along: every object entry
# must carry an aggregated report with its op-latency histogram.
go run ./cmd/wfbench -exp native -ops 4000 -outdir artifacts > /dev/null
test -s artifacts/BENCH_native.json
grep -q '"op_latency_ns"' artifacts/BENCH_native.json
grep -q '"go_version"' artifacts/BENCH_native.json

# Service smoke: the traffic subsystem's full matrix — both service
# objects, all four variants, both backends — into BENCH_service.json.
# Every variant must appear with a nonzero logical-write rate, and the
# simulator half is deterministic (pinned byte-for-byte by the
# internal/service golden test; native timings vary by host).
go run ./cmd/wfbench -exp service -ops 2000 -procs 4 -outdir artifacts > /dev/null
test -s artifacts/BENCH_service.json
for v in waitfree atomic lock sharded; do
    grep -q "\"variant\": \"$v\"" artifacts/BENCH_service.json
done
grep -q '"backend": "sim"' artifacts/BENCH_service.json
grep -q '"backend": "native"' artifacts/BENCH_service.json
! grep -q '"writes_per_sec": 0[,}]' artifacts/BENCH_service.json
grep -q '"policy_table"' artifacts/BENCH_service.json

# Flight recorder: a native run drained into the standard span pipeline
# must export a non-empty Perfetto trace of real-hardware causality.
go run ./cmd/wftrace -native -object uniqueue -procs 4 -ops 10 \
    -export perfetto -o artifacts/uniqueue.native.trace.json > /dev/null
test -s artifacts/uniqueue.native.trace.json

# Black-box mode: randomized adversary schedules judged by the
# history-based linearizability engine, all objects (baselines included),
# same parallel-vs-serial byte-identity contract as the sweep mode.
go run ./cmd/wfcheck -linz -rand 25 -par 1 > artifacts/wfcheck_linz.txt
go run ./cmd/wfcheck -linz -rand 25 -par 0 > artifacts/wfcheck_linz_par.txt
cmp artifacts/wfcheck_linz.txt artifacts/wfcheck_linz_par.txt
cmp testdata/golden/wfcheck_linz25.txt artifacts/wfcheck_linz.txt

# Policy layer: off-default disciplines keep the parallel-vs-serial
# byte-identity contract. The reverse-priority stressor (lower priority
# preempts, higher never does) sweeps one object clean; the fcfs+bursty
# pair — non-preemptive dispatch under open-loop arrivals — is pinned to a
# golden so the policy/arrival seams cannot drift silently.
go run ./cmd/wfcheck -suite uniqueue -max 40 -policy reverse-priority -par 1 > artifacts/wfcheck_revprio.txt
go run ./cmd/wfcheck -suite uniqueue -max 40 -policy reverse-priority -par 0 > artifacts/wfcheck_revprio_par.txt
cmp artifacts/wfcheck_revprio.txt artifacts/wfcheck_revprio_par.txt
go run ./cmd/wfcheck -suite uniqueue -max 40 -policy fcfs -arrival bursty -par 1 > artifacts/wfcheck_fcfs_bursty.txt
go run ./cmd/wfcheck -suite uniqueue -max 40 -policy fcfs -arrival bursty -par 0 > artifacts/wfcheck_fcfs_bursty_par.txt
cmp artifacts/wfcheck_fcfs_bursty.txt artifacts/wfcheck_fcfs_bursty_par.txt
cmp testdata/golden/wfcheck_fcfs_bursty.txt artifacts/wfcheck_fcfs_bursty.txt

# Pruned sweep: with -prune off the output is byte-identical to the plain
# sweep (asserted above via the golden); with it on, the pruned counts
# must appear and the par-vs-serial identity must still hold.
go run ./cmd/wfcheck -max 120 -prune -par 1 > artifacts/wfcheck_prune.txt
go run ./cmd/wfcheck -max 120 -prune -par 0 > artifacts/wfcheck_prune_par.txt
cmp artifacts/wfcheck_prune.txt artifacts/wfcheck_prune_par.txt
grep -q "pruned" artifacts/wfcheck_prune.txt

# Swarm smoke: a small-budget stratified sampling campaign must keep the
# byte-identity contract at any -par and render the coverage block with
# its saturation curve. (Real campaigns run millions of schedules; see
# EXPERIMENTS.md "Scaling the sweep to millions of schedules".)
go run ./cmd/wfcheck -swarm -budget 2000 -cover -par 1 > artifacts/wfcheck_swarm.txt
go run ./cmd/wfcheck -swarm -budget 2000 -cover -par 0 > artifacts/wfcheck_swarm_par.txt
cmp artifacts/wfcheck_swarm.txt artifacts/wfcheck_swarm_par.txt
grep -q "curve" artifacts/wfcheck_swarm.txt
grep -q "schedules total" artifacts/wfcheck_swarm.txt

# Run-ahead fast-path regression guard: batching must stay armed for the
# default policy and for the non-preemptive templates (fcfs, sjf,
# priority-fcfs), and declined for the preemptive off-default ones (which
# fall back to the serial loop the differential suite pins).
go test ./internal/sched/ -run TestRunAheadPolicyGate -count=1

# Perf gates: -exp core re-measures the serial and run-ahead simulator
# core (asserting the two modes still agree exactly) and fails if
# run-ahead ns/slice regresses more than 25% against the committed
# baseline, or if the geomean checked-sweep speedup falls more than 25%
# below the baseline's. Set WF_SKIP_PERF_GATE=1 on hosts too noisy for
# timing assertions (it skips both gates).
if [ -z "${WF_SKIP_PERF_GATE:-}" ]; then
    go run ./cmd/wfbench -exp core -outdir artifacts -corebaseline testdata/BENCH_core.json
fi

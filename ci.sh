#!/bin/sh
# ci.sh — the repo's tier-1 gate, runnable anywhere the Go toolchain is.
#
#   ./ci.sh
#
# Runs vet, a full build, the full test suite, and a race-detector pass
# over the packages with real goroutine hand-offs (the scheduler's
# coroutine rendezvous and the trace log). Everything is stdlib-only and
# deterministic, so a green run on one machine is a green run on all.
# Finally, smoke-tests the trace inspector end to end: wftrace replays the
# Figure 2 scenario and must emit a non-empty Perfetto JSON artifact
# (written under artifacts/, which stays out of git).
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/sched/... ./internal/trace/... ./internal/tracex/...

go build -o /dev/null ./cmd/wftrace
mkdir -p artifacts
go run ./cmd/wftrace -object unilist -seed 1 -pattern stagger -export perfetto -o artifacts/fig2.trace.json
test -s artifacts/fig2.trace.json

#!/bin/sh
# ci.sh — the repo's tier-1 gate, runnable anywhere the Go toolchain is.
#
#   ./ci.sh
#
# Runs vet, a full build, the full test suite, and a race-detector pass
# over the packages with real goroutine hand-offs (the scheduler's
# coroutine rendezvous and the trace log). Everything is stdlib-only and
# deterministic, so a green run on one machine is a green run on all.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/sched/... ./internal/trace/...

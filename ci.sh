#!/bin/sh
# ci.sh — the repo's tier-1 gate, runnable anywhere the Go toolchain is.
#
#   ./ci.sh
#
# Runs gofmt/vet, a full build, the full test suite, and a race-detector
# pass over the packages with real goroutine hand-offs (the scheduler's
# coroutine rendezvous, the trace log, and the parallel sweep harness).
# Everything is stdlib-only and deterministic, so a green run on one
# machine is a green run on all. Then three end-to-end smokes into
# artifacts/ (which stays out of git): the Figure 2 trace export, the
# parallel-vs-serial byte-identity of wfcheck's sweep output, and the
# wfbench full-matrix sweep (which asserts the same identity internally
# and records the serial/parallel timing in BENCH_sweep.json).
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go build ./...
go test ./...
go test -race ./internal/sched/... ./internal/trace/... ./internal/tracex/... ./internal/harness/... ./internal/linz/...

# The registry must cover every internal/core/ and internal/baseline/
# package; this is the gate that keeps "drive everything through the
# registry" honest.
go test ./internal/registry/ -run TestRegistryCompleteness

mkdir -p artifacts

go build -o /dev/null ./cmd/wftrace
go run ./cmd/wftrace -object unilist -seed 1 -pattern stagger -export perfetto -o artifacts/fig2.trace.json
test -s artifacts/fig2.trace.json

go run ./cmd/wfcheck -max 40 -par 1 > artifacts/wfcheck_serial.txt
go run ./cmd/wfcheck -max 40 -par 0 > artifacts/wfcheck_par.txt
cmp artifacts/wfcheck_serial.txt artifacts/wfcheck_par.txt

go run ./cmd/wfbench -exp sweep -sweepseeds 1 -outdir artifacts
test -s artifacts/BENCH_sweep.json

# Black-box mode: randomized adversary schedules judged by the
# history-based linearizability engine, all objects (baselines included),
# same parallel-vs-serial byte-identity contract as the sweep mode.
go run ./cmd/wfcheck -linz -rand 25 -par 1 > artifacts/wfcheck_linz.txt
go run ./cmd/wfcheck -linz -rand 25 -par 0 > artifacts/wfcheck_linz_par.txt
cmp artifacts/wfcheck_linz.txt artifacts/wfcheck_linz_par.txt

package main

// The -exp core experiment: the simulator-core performance trajectory.
//
// Two measurements, both taken with the run-ahead fast path off ("serial",
// one scheduler round trip per slice) and on ("runahead", batched slices):
//
//   - a Fine-granularity uncontended microbenchmark (one processor, one
//     process, a long Load/Store loop) — the pure per-slice overhead of the
//     simulator, reported as ns/slice, slices/sec, and allocs/slice;
//   - the full core-object release-point sweep (registry.Sweep at wfcheck's
//     default depth of 120, every schedule linearizability-checked) — the
//     end-to-end wall-clock the fast path buys on real verification work,
//     timed per object with the fastest of several repetitions kept.
//
// The sweep's headline speedup is the GEOMETRIC MEAN of the per-object
// speedups: the uniprocessor families run 8–16× faster under run-ahead,
// while the two-processor families are bounded near 2.5–3× because their
// workers alternate slice-by-slice across CPUs — batching across that
// boundary would reorder memory operations and break byte-identity, so
// every duet slice intrinsically pays one coroutine round trip. A
// total-time ratio would weight objects by the incidental length of their
// op scripts (and be dominated by the slowest family); the geometric mean
// weights each object equally, the usual convention for summarizing
// benchmark ratios. Both figures, and the full per-object table, are in
// the JSON.
//
// Both modes must agree exactly (same virtual elapsed time, same slice
// counts, same schedule counts); the experiment fails otherwise. Results go
// to <outdir>/BENCH_core.json, and -corebaseline compares the run-ahead
// ns/slice AND the sweep speedup against a committed baseline as CI perf
// gates.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/shmem"
)

// coreMicroOps is the number of shared-memory operations (= Fine slices) the
// microbenchmark executes per run.
const coreMicroOps = 200_000

// coreSweepMax is the release-point range of the in-process sweep; it
// matches wfcheck's default -max.
const coreSweepMax = 120

// coreSide holds one mode's microbenchmark numbers.
type coreSide struct {
	NsPerSlice     float64 `json:"ns_per_slice"`
	SlicesPerSec   float64 `json:"slices_per_sec"`
	AllocsPerSlice float64 `json:"allocs_per_slice"`
	Slices         uint64  `json:"slices"`
	ElapsedVT      int64   `json:"elapsed_vt"`
}

// coreSweepObject is one object's sweep timing (fastest repetition per
// mode).
type coreSweepObject struct {
	Name       string  `json:"name"`
	Schedules  int     `json:"schedules"`
	SerialMs   float64 `json:"serial_ms"`
	RunAheadMs float64 `json:"runahead_ms"`
	Speedup    float64 `json:"speedup"`
}

// coreDoc is the BENCH_core.json schema. SweepSpeedup is the geometric
// mean of the per-object sweep speedups (see the package comment for why);
// SweepTotalSpeedup is the plain total-time ratio.
type coreDoc struct {
	MicroOps          int               `json:"micro_ops"`
	Serial            coreSide          `json:"serial"`
	RunAhead          coreSide          `json:"runahead"`
	MicroSpeedup      float64           `json:"micro_speedup"`
	SweepMax          int64             `json:"sweep_max"`
	SweepSchedules    int               `json:"sweep_schedules"`
	SweepSerialMs     float64           `json:"sweep_serial_ms"`
	SweepRunAheadMs   float64           `json:"sweep_runahead_ms"`
	SweepSerialPerSec float64           `json:"sweep_serial_sched_per_sec"`
	SweepRunPerSec    float64           `json:"sweep_runahead_sched_per_sec"`
	SweepSpeedup      float64           `json:"sweep_speedup"`
	SweepTotalSpeedup float64           `json:"sweep_total_speedup"`
	SweepObjects      []coreSweepObject `json:"sweep_objects"`
	Identical         bool              `json:"byte_identical"`
}

// coreMicroRun executes the uncontended microbenchmark once in the given
// mode and returns its measurements.
func coreMicroRun(runAhead bool) coreSide {
	sched.SetRunAhead(runAhead)
	defer sched.SetRunAhead(true)
	s := sched.Acquire(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 12})
	defer sched.Release(s)
	s.SpawnAt(0, 0, 1, "worker", func(e *sched.Env) {
		a, b := shmem.Addr(1), shmem.Addr(2)
		for i := 0; i < coreMicroOps/2; i++ {
			v := e.Load(a)
			e.Store(b, v+1)
		}
	})
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := s.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		panic(fmt.Sprintf("core micro: %v", err))
	}
	slices := s.Slices()
	return coreSide{
		NsPerSlice:     float64(wall.Nanoseconds()) / float64(slices),
		SlicesPerSec:   float64(slices) / wall.Seconds(),
		AllocsPerSlice: float64(after.Mallocs-before.Mallocs) / float64(slices),
		Slices:         slices,
		ElapsedVT:      s.Elapsed(),
	}
}

// coreMicroBest runs the microbenchmark reps times and keeps the fastest run
// (noise on shared CI hosts only ever slows a run down).
func coreMicroBest(runAhead bool, reps int) coreSide {
	var best coreSide
	for i := 0; i < reps; i++ {
		side := coreMicroRun(runAhead)
		if i == 0 || side.NsPerSlice < best.NsPerSlice {
			best = side
		}
	}
	return best
}

// coreSweepOnce runs one object's release-point sweep in the given mode
// and returns the schedule count and wall clock.
func coreSweepOnce(name string, runAhead bool) (int, time.Duration, error) {
	sched.SetRunAhead(runAhead)
	defer sched.SetRunAhead(true)
	d := registry.Lookup0(name)
	start := time.Now()
	n, err := d.Sweep(registry.SweepConfig{Max: coreSweepMax})
	if err != nil {
		return 0, 0, fmt.Errorf("core sweep %s: %w", name, err)
	}
	return n, time.Since(start), nil
}

// coreSweep times the full core-object sweep per object in both modes,
// keeping each object's fastest of reps repetitions per mode (noise on
// shared hosts only slows runs down). The two modes must agree on every
// object's schedule count.
func coreSweep(reps int) ([]coreSweepObject, error) {
	var out []coreSweepObject
	for _, name := range registry.CoreNames() {
		obj := coreSweepObject{Name: name}
		for rep := 0; rep < reps; rep++ {
			nS, dS, err := coreSweepOnce(name, false)
			if err != nil {
				return nil, err
			}
			nR, dR, err := coreSweepOnce(name, true)
			if err != nil {
				return nil, err
			}
			if nS != nR {
				return nil, fmt.Errorf("core sweep %s: serial explored %d schedules, run-ahead %d", name, nS, nR)
			}
			ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
			if rep == 0 || ms(dS) < obj.SerialMs {
				obj.SerialMs = ms(dS)
			}
			if rep == 0 || ms(dR) < obj.RunAheadMs {
				obj.RunAheadMs = ms(dR)
			}
			obj.Schedules = nS
		}
		obj.Speedup = obj.SerialMs / obj.RunAheadMs
		out = append(out, obj)
	}
	return out, nil
}

// coreBench is the -exp core entry point.
func coreBench(outdir, baselinePath string) error {
	const reps = 3
	serial := coreMicroBest(false, reps)
	runAhead := coreMicroBest(true, reps)
	if serial.ElapsedVT != runAhead.ElapsedVT || serial.Slices != runAhead.Slices {
		return fmt.Errorf("core micro: serial and run-ahead runs diverged: vt %d vs %d, slices %d vs %d",
			serial.ElapsedVT, runAhead.ElapsedVT, serial.Slices, runAhead.Slices)
	}

	objects, err := coreSweep(reps)
	if err != nil {
		return err
	}
	doc := coreDoc{
		MicroOps:     coreMicroOps,
		Serial:       serial,
		RunAhead:     runAhead,
		MicroSpeedup: serial.NsPerSlice / runAhead.NsPerSlice,
		SweepMax:     coreSweepMax,
		SweepObjects: objects,
		Identical:    true,
	}
	logSum := 0.0
	for _, o := range objects {
		doc.SweepSchedules += o.Schedules
		doc.SweepSerialMs += o.SerialMs
		doc.SweepRunAheadMs += o.RunAheadMs
		logSum += math.Log(o.Speedup)
	}
	doc.SweepSpeedup = math.Exp(logSum / float64(len(objects)))
	doc.SweepTotalSpeedup = doc.SweepSerialMs / doc.SweepRunAheadMs
	doc.SweepSerialPerSec = float64(doc.SweepSchedules) / (doc.SweepSerialMs / 1000)
	doc.SweepRunPerSec = float64(doc.SweepSchedules) / (doc.SweepRunAheadMs / 1000)

	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outdir, "BENCH_core.json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	rows := [][]string{
		{"micro ns/slice", fmt.Sprintf("%.1f", doc.Serial.NsPerSlice),
			fmt.Sprintf("%.1f", doc.RunAhead.NsPerSlice), fmt.Sprintf("%.2fx", doc.MicroSpeedup)},
		{"micro slices/sec", fmt.Sprintf("%.0f", doc.Serial.SlicesPerSec),
			fmt.Sprintf("%.0f", doc.RunAhead.SlicesPerSec), ""},
		{"micro allocs/slice", fmt.Sprintf("%.4f", doc.Serial.AllocsPerSlice),
			fmt.Sprintf("%.4f", doc.RunAhead.AllocsPerSlice), ""},
	}
	for _, o := range objects {
		rows = append(rows, []string{"sweep ms " + o.Name,
			fmt.Sprintf("%.1f", o.SerialMs), fmt.Sprintf("%.1f", o.RunAheadMs),
			fmt.Sprintf("%.2fx", o.Speedup)})
	}
	rows = append(rows,
		[]string{fmt.Sprintf("sweep ms total (%d schedules)", doc.SweepSchedules),
			fmt.Sprintf("%.1f", doc.SweepSerialMs), fmt.Sprintf("%.1f", doc.SweepRunAheadMs),
			fmt.Sprintf("%.2fx", doc.SweepTotalSpeedup)},
		[]string{"sweep schedules/sec", fmt.Sprintf("%.0f", doc.SweepSerialPerSec),
			fmt.Sprintf("%.0f", doc.SweepRunPerSec), ""},
		[]string{"sweep speedup (geomean)", "", "", fmt.Sprintf("%.2fx", doc.SweepSpeedup)},
	)
	table("Simulator core — serial vs run-ahead fast path (byte-identical schedules)",
		[]string{"bench", "serial", "runahead", "speedup"}, rows)
	fmt.Printf("wrote %s\n", path)

	if baselinePath != "" {
		if err := coreGate(baselinePath, doc); err != nil {
			return err
		}
	}
	return nil
}

// coreGateSlack is the tolerated regression factor against the committed
// baseline: the gates fail when run-ahead ns/slice exceeds baseline × 1.25
// or the sweep speedup falls below baseline ÷ 1.25.
const coreGateSlack = 1.25

// coreGate compares the fresh run-ahead ns/slice and the sweep speedup
// against the committed baseline document. ci.sh skips the whole -exp core
// invocation under WF_SKIP_PERF_GATE, which covers both gates.
func coreGate(baselinePath string, doc coreDoc) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("core baseline: %w", err)
	}
	var base coreDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("core baseline %s: %w", baselinePath, err)
	}
	limit := base.RunAhead.NsPerSlice * coreGateSlack
	if doc.RunAhead.NsPerSlice > limit {
		return fmt.Errorf("core perf gate: run-ahead ns/slice %.1f exceeds baseline %.1f by more than %.0f%% (limit %.1f)",
			doc.RunAhead.NsPerSlice, base.RunAhead.NsPerSlice, (coreGateSlack-1)*100, limit)
	}
	fmt.Printf("core perf gate: %.1f ns/slice within %.0f%% of baseline %.1f\n",
		doc.RunAhead.NsPerSlice, (coreGateSlack-1)*100, base.RunAhead.NsPerSlice)
	if base.SweepSpeedup > 0 {
		floor := base.SweepSpeedup / coreGateSlack
		if doc.SweepSpeedup < floor {
			return fmt.Errorf("core perf gate: sweep speedup %.2fx fell below baseline %.2fx by more than %.0f%% (floor %.2fx)",
				doc.SweepSpeedup, base.SweepSpeedup, (coreGateSlack-1)*100, floor)
		}
		fmt.Printf("core perf gate: sweep speedup %.2fx within %.0f%% of baseline %.2fx\n",
			doc.SweepSpeedup, (coreGateSlack-1)*100, base.SweepSpeedup)
	}
	return nil
}

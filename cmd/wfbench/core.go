package main

// The -exp core experiment: the simulator-core performance trajectory.
//
// Two measurements, both taken with the run-ahead fast path off ("serial",
// one scheduler round trip per slice) and on ("runahead", batched slices):
//
//   - a Fine-granularity uncontended microbenchmark (one processor, one
//     process, a long Load/Store loop) — the pure per-slice overhead of the
//     simulator, reported as ns/slice, slices/sec, and allocs/slice;
//   - the full core-object release-point sweep (registry.Sweep at wfcheck's
//     default depth of 120, every schedule linearizability-checked) — the
//     end-to-end wall-clock the fast path buys on real verification work.
//
// Both modes must agree exactly (same virtual elapsed time, same slice
// counts, same schedule counts); the experiment fails otherwise. Results go
// to <outdir>/BENCH_core.json, and -corebaseline compares the run-ahead
// ns/slice against a committed baseline as a CI perf gate.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/shmem"
)

// coreMicroOps is the number of shared-memory operations (= Fine slices) the
// microbenchmark executes per run.
const coreMicroOps = 200_000

// coreSweepMax is the release-point range of the in-process sweep; it
// matches wfcheck's default -max.
const coreSweepMax = 120

// coreSide holds one mode's microbenchmark numbers.
type coreSide struct {
	NsPerSlice     float64 `json:"ns_per_slice"`
	SlicesPerSec   float64 `json:"slices_per_sec"`
	AllocsPerSlice float64 `json:"allocs_per_slice"`
	Slices         uint64  `json:"slices"`
	ElapsedVT      int64   `json:"elapsed_vt"`
}

// coreDoc is the BENCH_core.json schema.
type coreDoc struct {
	MicroOps        int      `json:"micro_ops"`
	Serial          coreSide `json:"serial"`
	RunAhead        coreSide `json:"runahead"`
	MicroSpeedup    float64  `json:"micro_speedup"`
	SweepMax        int64    `json:"sweep_max"`
	SweepSchedules  int      `json:"sweep_schedules"`
	SweepSerialMs   float64  `json:"sweep_serial_ms"`
	SweepRunAheadMs float64  `json:"sweep_runahead_ms"`
	SweepSpeedup    float64  `json:"sweep_speedup"`
	Identical       bool     `json:"byte_identical"`
}

// coreMicroRun executes the uncontended microbenchmark once in the given
// mode and returns its measurements.
func coreMicroRun(runAhead bool) coreSide {
	sched.SetRunAhead(runAhead)
	defer sched.SetRunAhead(true)
	s := sched.Acquire(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 12})
	defer sched.Release(s)
	s.SpawnAt(0, 0, 1, "worker", func(e *sched.Env) {
		a, b := shmem.Addr(1), shmem.Addr(2)
		for i := 0; i < coreMicroOps/2; i++ {
			v := e.Load(a)
			e.Store(b, v+1)
		}
	})
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := s.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		panic(fmt.Sprintf("core micro: %v", err))
	}
	slices := s.Slices()
	return coreSide{
		NsPerSlice:     float64(wall.Nanoseconds()) / float64(slices),
		SlicesPerSec:   float64(slices) / wall.Seconds(),
		AllocsPerSlice: float64(after.Mallocs-before.Mallocs) / float64(slices),
		Slices:         slices,
		ElapsedVT:      s.Elapsed(),
	}
}

// coreMicroBest runs the microbenchmark reps times and keeps the fastest run
// (noise on shared CI hosts only ever slows a run down).
func coreMicroBest(runAhead bool, reps int) coreSide {
	var best coreSide
	for i := 0; i < reps; i++ {
		side := coreMicroRun(runAhead)
		if i == 0 || side.NsPerSlice < best.NsPerSlice {
			best = side
		}
	}
	return best
}

// coreSweep runs the full core-object release-point sweep in the given mode
// and returns the schedule count and wall clock.
func coreSweep(runAhead bool) (int, time.Duration, error) {
	sched.SetRunAhead(runAhead)
	defer sched.SetRunAhead(true)
	start := time.Now()
	total := 0
	for _, name := range registry.CoreNames() {
		d := registry.Lookup0(name)
		n, err := d.Sweep(registry.SweepConfig{Max: coreSweepMax})
		if err != nil {
			return 0, 0, fmt.Errorf("core sweep %s: %w", name, err)
		}
		total += n
	}
	return total, time.Since(start), nil
}

// coreBench is the -exp core entry point.
func coreBench(outdir, baselinePath string) error {
	const reps = 3
	serial := coreMicroBest(false, reps)
	runAhead := coreMicroBest(true, reps)
	if serial.ElapsedVT != runAhead.ElapsedVT || serial.Slices != runAhead.Slices {
		return fmt.Errorf("core micro: serial and run-ahead runs diverged: vt %d vs %d, slices %d vs %d",
			serial.ElapsedVT, runAhead.ElapsedVT, serial.Slices, runAhead.Slices)
	}

	serialN, serialDur, err := coreSweep(false)
	if err != nil {
		return err
	}
	runAheadN, runAheadDur, err := coreSweep(true)
	if err != nil {
		return err
	}
	if serialN != runAheadN {
		return fmt.Errorf("core sweep: serial explored %d schedules, run-ahead %d", serialN, runAheadN)
	}

	doc := coreDoc{
		MicroOps:        coreMicroOps,
		Serial:          serial,
		RunAhead:        runAhead,
		MicroSpeedup:    serial.NsPerSlice / runAhead.NsPerSlice,
		SweepMax:        coreSweepMax,
		SweepSchedules:  serialN,
		SweepSerialMs:   float64(serialDur.Microseconds()) / 1000,
		SweepRunAheadMs: float64(runAheadDur.Microseconds()) / 1000,
		SweepSpeedup:    float64(serialDur) / float64(runAheadDur),
		Identical:       true,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outdir, "BENCH_core.json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	table("Simulator core — serial vs run-ahead fast path (byte-identical schedules)",
		[]string{"bench", "serial", "runahead", "speedup"},
		[][]string{
			{"micro ns/slice", fmt.Sprintf("%.1f", doc.Serial.NsPerSlice),
				fmt.Sprintf("%.1f", doc.RunAhead.NsPerSlice), fmt.Sprintf("%.2fx", doc.MicroSpeedup)},
			{"micro slices/sec", fmt.Sprintf("%.0f", doc.Serial.SlicesPerSec),
				fmt.Sprintf("%.0f", doc.RunAhead.SlicesPerSec), ""},
			{"micro allocs/slice", fmt.Sprintf("%.4f", doc.Serial.AllocsPerSlice),
				fmt.Sprintf("%.4f", doc.RunAhead.AllocsPerSlice), ""},
			{fmt.Sprintf("sweep ms (%d schedules)", doc.SweepSchedules),
				fmt.Sprintf("%.1f", doc.SweepSerialMs), fmt.Sprintf("%.1f", doc.SweepRunAheadMs),
				fmt.Sprintf("%.2fx", doc.SweepSpeedup)},
		})
	fmt.Printf("wrote %s\n", path)

	if baselinePath != "" {
		if err := coreGate(baselinePath, doc); err != nil {
			return err
		}
	}
	return nil
}

// coreGateSlack is the tolerated regression factor against the committed
// baseline: the gate fails when run-ahead ns/slice exceeds baseline × 1.25.
const coreGateSlack = 1.25

// coreGate compares the fresh run-ahead ns/slice against the committed
// baseline document.
func coreGate(baselinePath string, doc coreDoc) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("core baseline: %w", err)
	}
	var base coreDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("core baseline %s: %w", baselinePath, err)
	}
	limit := base.RunAhead.NsPerSlice * coreGateSlack
	if doc.RunAhead.NsPerSlice > limit {
		return fmt.Errorf("core perf gate: run-ahead ns/slice %.1f exceeds baseline %.1f by more than %.0f%% (limit %.1f)",
			doc.RunAhead.NsPerSlice, base.RunAhead.NsPerSlice, (coreGateSlack-1)*100, limit)
	}
	fmt.Printf("core perf gate: %.1f ns/slice within %.0f%% of baseline %.1f\n",
		doc.RunAhead.NsPerSlice, (coreGateSlack-1)*100, base.RunAhead.NsPerSlice)
	return nil
}

package main

// The -exp service experiment: the internal/service traffic subsystem on
// both backends. Both service objects (hot-key counter, token-bucket
// rate limiter) run in all four variants — wait-free on the registry's
// MWCAS object, plain atomic CAS, spinlock, and sharded/batched — first
// on the simulator (deterministic: byte-identical entries at a fixed
// seed, exact step counts, virtual-time percentiles), then natively
// (real goroutines, wall-clock latency histograms). The comparison table
// answers the serving-stack question — what does the wait-free guarantee
// cost per admission decision? — and the per-policy table shows the
// starvation story: how base-traffic latency degrades under each
// scheduling discipline while the wait-free bound keeps holding.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/service"
)

// serviceEntry is one (service, variant, backend) measurement.
type serviceEntry struct {
	Service string `json:"service"`
	Variant string `json:"variant"`
	// Backend is "sim" (virtual time; deterministic) or "native"
	// (wall-clock nanoseconds).
	Backend string `json:"backend"`
	Policy  string `json:"policy,omitempty"`
	Arrival string `json:"arrival,omitempty"`

	Requests int `json:"requests"`
	// Applied counts requests that reached a decision; Lost the requests
	// dropped at the wait-free retry cap; Admitted/Denied split the
	// limiter verdicts.
	Applied  int `json:"applied"`
	Lost     int `json:"lost,omitempty"`
	Admitted int `json:"admitted,omitempty"`
	Denied   int `json:"denied,omitempty"`
	Retries  int `json:"retries"`

	// BackendCalls is the shared-memory operations the variant spent;
	// Elapsed is virtual-time units (sim) or nanoseconds (native).
	BackendCalls uint64 `json:"backend_calls"`
	Elapsed      int64  `json:"elapsed"`

	// The rates are per second (native) or per 10^9 virtual-time units
	// (sim) — same arithmetic, documented scale difference.
	WritesPerSec       float64 `json:"writes_per_sec"`
	BackendCallsPerSec float64 `json:"backend_calls_per_sec"`
	AdmissionsPerSec   float64 `json:"admissions_per_sec,omitempty"`

	// P50/P95 digest the per-request hot-path latency (RecordOp virtual
	// time on sim; Begin→End nanoseconds on native).
	P50 int64 `json:"p50"`
	P95 int64 `json:"p95"`

	Report *metrics.Report `json:"report,omitempty"`
}

// servicePolicyRow is one line of the per-policy response-time table:
// the wait-free variant under one scheduling discipline, base versus
// burst traffic.
type servicePolicyRow struct {
	Policy  string `json:"policy"`
	Service string `json:"service"`

	BaseP50  int64 `json:"base_p50"`
	BaseP95  int64 `json:"base_p95"`
	BaseMax  int64 `json:"base_max"`
	BurstP50 int64 `json:"burst_p50"`
	BurstP95 int64 `json:"burst_p95"`
	Lost     int   `json:"lost,omitempty"`

	// WaitFreeOK records that the run passed AssertWaitFree — the bound
	// holds under this discipline, whatever it does to the latencies.
	WaitFreeOK bool `json:"wait_free_ok"`
}

// serviceDoc is the BENCH_service.json payload.
type serviceDoc struct {
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	Procs      int     `json:"procs"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Keys       int     `json:"keys"`
	Tenants    int     `json:"tenants"`
	Zipf       float64 `json:"zipf"`

	Entries     []serviceEntry     `json:"entries"`
	PolicyTable []servicePolicyRow `json:"policy_table,omitempty"`
}

// serviceKinds resolves the -service flag.
func serviceKinds(sel string) ([]service.Kind, error) {
	switch sel {
	case "", "both", "all":
		return service.Kinds(), nil
	case string(service.Counter):
		return []service.Kind{service.Counter}, nil
	case string(service.Limiter):
		return []service.Kind{service.Limiter}, nil
	}
	return nil, fmt.Errorf("unknown -service %q (counter|limiter|both)", sel)
}

// serviceVariants resolves the -variant flag.
func serviceVariants(sel string) ([]service.Variant, error) {
	if sel == "" || sel == "all" {
		return service.Variants(), nil
	}
	for _, v := range service.Variants() {
		if sel == string(v) {
			return []service.Variant{v}, nil
		}
	}
	return nil, fmt.Errorf("unknown -variant %q (waitfree|atomic|lock|sharded|all)", sel)
}

func simServiceEntry(res *service.SimResult) serviceEntry {
	return serviceEntry{
		Service: string(res.Cfg.Kind), Variant: string(res.Cfg.Variant), Backend: "sim",
		Policy: res.Cfg.Policy, Arrival: res.Cfg.Arrival,
		Requests: res.Requests, Applied: res.Applied, Lost: res.Lost,
		Admitted: res.Admitted, Denied: res.Denied, Retries: res.Retries,
		BackendCalls: res.Steps, Elapsed: res.ElapsedVT,
		WritesPerSec:       metrics.Throughput(res.Applied, res.ElapsedVT),
		BackendCallsPerSec: metrics.Throughput(int(res.Steps), res.ElapsedVT),
		AdmissionsPerSec:   metrics.Throughput(res.Admitted, res.ElapsedVT),
		P50:                res.Report.OpTime.P50,
		P95:                res.Report.OpTime.P95,
		Report:             res.Report,
	}
}

func nativeServiceEntry(res *service.NativeResult) serviceEntry {
	e := serviceEntry{
		Service: string(res.Cfg.Kind), Variant: string(res.Cfg.Variant), Backend: "native",
		Policy: benchPolicy, Arrival: benchArrival,
		Requests: res.Requests, Applied: res.Applied, Lost: res.Lost,
		Admitted: res.Admitted, Denied: res.Denied, Retries: res.Retries,
		BackendCalls: res.Steps, Elapsed: res.Elapsed.Nanoseconds(),
		WritesPerSec:       metrics.Throughput(res.Applied, res.Elapsed.Nanoseconds()),
		BackendCallsPerSec: metrics.Throughput(int(res.Steps), res.Elapsed.Nanoseconds()),
		AdmissionsPerSec:   metrics.Throughput(res.Admitted, res.Elapsed.Nanoseconds()),
		Report:             res.Report,
	}
	if res.Report != nil {
		e.P50 = res.Report.OpTime.P50
		e.P95 = res.Report.OpTime.P95
	}
	return e
}

// serviceBench runs the full matrix and writes BENCH_service.json.
func serviceBench(outdir string, totalOps, procs int, seed int64) error {
	kinds, err := serviceKinds(serviceSel)
	if err != nil {
		return err
	}
	variants, err := serviceVariants(serviceVariantSel)
	if err != nil {
		return err
	}
	traffic := service.TrafficConfig{
		Keys: serviceKeys, Tenants: serviceTenants, Zipf: serviceZipf,
	}.Normalized()

	// Simulator scale: requests per base worker, derived from -ops but
	// clamped so the deterministic runs stay interactive at the default.
	simReqs := totalOps / 8
	if simReqs < 50 {
		simReqs = 50
	}
	if simReqs > 400 {
		simReqs = 400
	}
	nativePer := totalOps / procs
	if nativePer < 1 {
		nativePer = 1
	}

	doc := serviceDoc{
		Experiment: "service", Seed: seed, Procs: procs,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Keys:       traffic.Keys, Tenants: traffic.Tenants, Zipf: traffic.Zipf,
	}

	for _, kind := range kinds {
		for _, variant := range variants {
			simRes, err := service.RunSim(service.SimConfig{
				Kind: kind, Variant: variant,
				Processors: 2, Requests: simReqs, BurstRequests: simReqs / 4,
				Traffic: traffic, Seed: seed,
				Policy: benchPolicy, Arrival: benchArrival,
			})
			if err != nil {
				return fmt.Errorf("service sim %s/%s: %w", kind, variant, err)
			}
			doc.Entries = append(doc.Entries, simServiceEntry(simRes))

			natRes, err := service.RunNative(service.NativeConfig{
				Kind: kind, Variant: variant,
				Procs: procs, Requests: nativePer,
				Traffic: traffic, Seed: seed, Obs: true,
			})
			if err != nil {
				return fmt.Errorf("service native %s/%s: %w", kind, variant, err)
			}
			doc.Entries = append(doc.Entries, nativeServiceEntry(natRes))
		}
	}

	// Per-policy response-time comparison (the PR 8 starvation story on a
	// service-shaped workload): the wait-free variant under every shipped
	// discipline, with AssertWaitFree checked on each run. Only the
	// default arrival participates when the user pinned one explicitly.
	for _, pol := range sched.PolicyNames() {
		for _, kind := range kinds {
			res, err := service.RunSim(service.SimConfig{
				Kind: kind, Variant: service.WaitFree,
				Processors: 2, Requests: simReqs, BurstRequests: simReqs / 4,
				Traffic: traffic, Seed: seed,
				Policy: pol, Arrival: benchArrival,
			})
			if err != nil {
				return fmt.Errorf("service policy table %s/%s: %w", pol, kind, err)
			}
			wfErr := res.AssertWaitFree()
			if wfErr != nil {
				fmt.Fprintf(os.Stderr, "wfbench: service %s/%s: %v\n", pol, kind, wfErr)
			}
			doc.PolicyTable = append(doc.PolicyTable, servicePolicyRow{
				Policy: pol, Service: string(kind),
				BaseP50: res.BaseOpTime.P50, BaseP95: res.BaseOpTime.P95, BaseMax: res.BaseOpTime.Max,
				BurstP50: res.BurstOpTime.P50, BurstP95: res.BurstOpTime.P95,
				Lost:       res.Lost,
				WaitFreeOK: wfErr == nil,
			})
		}
	}

	printService(&doc)

	path := filepath.Join(outdir, "BENCH_service.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

// printService renders the variant comparison and the per-policy
// starvation table.
func printService(doc *serviceDoc) {
	rows := make([][]string, 0, len(doc.Entries))
	for _, e := range doc.Entries {
		admitted := "-"
		if e.Service == string(service.Limiter) {
			admitted = fmt.Sprintf("%d", e.Admitted)
		}
		rows = append(rows, []string{
			e.Service, e.Variant, e.Backend,
			fmt.Sprintf("%d", e.Requests),
			fmt.Sprintf("%.0f", e.WritesPerSec),
			fmt.Sprintf("%.0f", e.BackendCallsPerSec),
			admitted,
			fmt.Sprintf("%d", e.Lost),
			fmt.Sprintf("%d", e.Retries),
			fmt.Sprintf("%d", e.P50),
			fmt.Sprintf("%d", e.P95),
		})
	}
	table(fmt.Sprintf("Service traffic: hot-key counter & rate limiter (keys=%d tenants=%d zipf=%.2f; sim rates per 1e9 vt, native per second)",
		doc.Keys, doc.Tenants, doc.Zipf),
		[]string{"service", "variant", "backend", "reqs", "writes/s", "calls/s", "admits", "lost", "retries", "p50", "p95"},
		rows)

	if len(doc.PolicyTable) == 0 {
		return
	}
	prows := make([][]string, 0, len(doc.PolicyTable))
	for _, r := range doc.PolicyTable {
		ok := "ok"
		if !r.WaitFreeOK {
			ok = "VIOLATED"
		}
		prows = append(prows, []string{
			r.Policy, r.Service,
			fmt.Sprintf("%d", r.BaseP50), fmt.Sprintf("%d", r.BaseP95), fmt.Sprintf("%d", r.BaseMax),
			fmt.Sprintf("%d", r.BurstP50), fmt.Sprintf("%d", r.BurstP95),
			fmt.Sprintf("%d", r.Lost), ok,
		})
	}
	table("Per-policy response times, wait-free variant (virtual time; base = steady priority-1 traffic, burst = priority-9 arrivals)",
		[]string{"policy", "service", "base p50", "base p95", "base max", "burst p50", "burst p95", "lost", "bound"},
		prows)
}

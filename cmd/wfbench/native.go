package main

// The -exp native experiment: real-hardware throughput. Every registered
// object runs on the native backend (internal/native) — real goroutines,
// real sync/atomic words, the paper's priority discipline enforced by
// shards — and is compared against what a pragmatic Go programmer would
// write instead: the same abstract operations under one sync.Mutex. The
// simulator experiments measure algorithmic cost in virtual time; this one
// measures wall-clock ops/sec, which is the number the paper's Section 3.4
// tables ultimately stand in for.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/registry"
)

// nativeEntry is one object's (or mutex baseline's) measured run.
type nativeEntry struct {
	Object string `json:"object"`
	// Kind classifies the implementation: "waitfree" (the paper's
	// objects), "baseline" (the repo's lock-free/lock-based baselines) or
	// "mutex" (the sync.Mutex reference).
	Kind   string `json:"kind"`
	Family string `json:"family"`
	Model  string `json:"model"`

	// Policy and Arrival record the run configuration the same way the
	// sweep entries do (empty = default, omitted from JSON so the golden
	// reports stay byte-identical). The native backend schedules with
	// real goroutines either way; the stamp keeps BENCH artifacts
	// self-describing.
	Policy  string `json:"policy,omitempty"`
	Arrival string `json:"arrival,omitempty"`

	Procs     int     `json:"procs"`
	OpsTotal  int     `json:"ops_total"`
	ElapsedNs int64   `json:"elapsed_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`

	// Goroutines is the number of process goroutines the run spawned;
	// Shards the shard count of its world (0 for free-running worlds and
	// the mutex baseline).
	Goroutines int `json:"goroutines"`
	Shards     int `json:"shards,omitempty"`

	// Mem tallies the object's shared-memory operations (zero for the
	// mutex baseline, whose state is ordinary Go memory).
	Mem metrics.OpCounts `json:"mem_total"`

	HelpGiven    uint64 `json:"help_given_total"`
	HelpReceived uint64 `json:"help_received_total"`

	// Report is the run's full observability report (internal/native metrics
	// aggregated into the simulator's report shape): per-goroutine counter
	// blocks, op-latency histograms, preemption depths, CAS2 guard retries.
	// Absent for the mutex baseline, which runs outside the memory seam.
	Report *metrics.Report `json:"report,omitempty"`
}

// nativeReport is the BENCH_native.json payload.
type nativeReport struct {
	Experiment string        `json:"experiment"`
	Seed       int64         `json:"seed"`
	Procs      int           `json:"procs"`
	GoMaxProcs int           `json:"gomaxprocs"`
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	Entries    []nativeEntry `json:"entries"`
}

func modelName(m registry.ModelKind) string {
	switch m {
	case registry.ModelSorted:
		return "sorted"
	case registry.ModelFIFO:
		return "fifo"
	case registry.ModelLIFO:
		return "lifo"
	case registry.ModelWords:
		return "words"
	}
	return fmt.Sprintf("model%d", int(m))
}

// nativeBench measures every registered object plus one mutex baseline per
// model kind and writes <outdir>/BENCH_native.json. totalOps is split
// evenly across procs goroutines; every implementation of a model kind
// consumes the identical generated op streams.
func nativeBench(outdir string, totalOps, procs int, seed int64) error {
	if procs < 1 {
		procs = 1
	}
	perProc := totalOps / procs
	if perProc < 1 {
		perProc = 1
	}
	rep := nativeReport{
		Experiment: "native",
		Seed:       seed,
		Procs:      procs,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
	}

	for _, d := range registry.All() {
		cfg := d.StressConfig(procs)
		cfg.Check = false
		if d.Name != "herlihy" {
			// Size node pools to the op budget; herlihy's capacity is its
			// state-array size, not a pool (see the stress suite).
			cfg.Capacity = 0
		}
		res, err := d.RunNative(registry.NativeRun{
			Procs: procs, Ops: perProc, Seed: seed, Cfg: cfg,
			Obs: true, // the metrics layer costs ~nothing; the report is the payload
		})
		if err != nil {
			return fmt.Errorf("native %s: %w", d.Name, err)
		}
		kind := "waitfree"
		if d.Family == registry.FamilyBaseline {
			kind = "baseline"
		}
		var received uint64
		for slot := 0; slot < procs; slot++ {
			received += res.World.HelpReceived(slot)
		}
		// Helping is pairwise, so the totals coincide.
		given := received
		done := res.OpsDone()
		rep.Entries = append(rep.Entries, nativeEntry{
			Object: d.Name, Kind: kind,
			Family: d.Family.String(), Model: modelName(d.Model),
			Policy: benchPolicy, Arrival: benchArrival,
			Procs: procs, OpsTotal: done,
			ElapsedNs:  res.Elapsed.Nanoseconds(),
			OpsPerSec:  metrics.Throughput(done, res.Elapsed.Nanoseconds()),
			Goroutines: procs, Shards: res.World.Processors(),
			Mem:       res.Counts,
			HelpGiven: given, HelpReceived: received,
			Report: res.Report,
		})
	}

	for _, m := range []registry.ModelKind{registry.ModelSorted, registry.ModelFIFO, registry.ModelLIFO, registry.ModelWords} {
		entry, err := mutexBench(m, totalOps, procs, seed)
		if err != nil {
			return err
		}
		rep.Entries = append(rep.Entries, *entry)
	}

	printNative(&rep)
	path := filepath.Join(outdir, "BENCH_native.json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

// genFor returns a descriptor whose generator produces the canonical op
// stream for the model kind (streams depend on the model, not the object).
func genFor(m registry.ModelKind) *registry.Descriptor {
	for _, d := range registry.All() {
		if d.Model == m {
			return d
		}
	}
	panic("wfbench: no descriptor for model kind")
}

// mutexBench runs the model kind's canonical op streams against plain Go
// data under one sync.Mutex — the reference any concurrent Go structure
// has to beat or justify itself against.
func mutexBench(m registry.ModelKind, totalOps, procs int, seed int64) (*nativeEntry, error) {
	d := genFor(m)
	cfg := d.StressConfig(procs)
	perProc := totalOps / procs
	if perProc < 1 {
		perProc = 1
	}
	var mu sync.Mutex
	set := map[uint64]uint64{}
	for _, k := range cfg.SeedKeys {
		set[k] = k * 10
	}
	var fifo, lifo []uint64
	words := make([]uint64, cfg.Words)
	copy(words, cfg.Initial)

	apply := func(op registry.Op) {
		mu.Lock()
		defer mu.Unlock()
		switch op.Code {
		case registry.OpInsert:
			if _, ok := set[op.Key]; !ok {
				set[op.Key] = op.Val
			}
		case registry.OpDelete:
			delete(set, op.Key)
		case registry.OpSearch:
			_ = set[op.Key]
		case registry.OpEnqueue:
			fifo = append(fifo, op.Val)
		case registry.OpDequeue:
			if len(fifo) > 0 {
				fifo = fifo[1:]
			}
		case registry.OpPush:
			lifo = append(lifo, op.Val)
		case registry.OpPop:
			if len(lifo) > 0 {
				lifo = lifo[:len(lifo)-1]
			}
		case registry.OpMWCAS:
			for _, w := range op.Words {
				words[w] += op.Delta
			}
		}
	}

	streams := make([][]registry.Op, procs)
	for slot := range streams {
		streams[slot] = d.Ops(cfg, seed, slot, perProc)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for slot := range streams {
		wg.Add(1)
		go func(ops []registry.Op) {
			defer wg.Done()
			for _, op := range ops {
				apply(op)
			}
		}(streams[slot])
	}
	wg.Wait()
	elapsed := time.Since(start)
	done := procs * perProc
	return &nativeEntry{
		Object: "mutex-" + modelName(m), Kind: "mutex",
		Family: "-", Model: modelName(m),
		Policy: benchPolicy, Arrival: benchArrival,
		Procs: procs, OpsTotal: done,
		ElapsedNs:  elapsed.Nanoseconds(),
		OpsPerSec:  metrics.Throughput(done, elapsed.Nanoseconds()),
		Goroutines: procs,
	}, nil
}

// printNative renders the comparison grouped by model kind, fastest first.
func printNative(rep *nativeReport) {
	entries := append([]nativeEntry(nil), rep.Entries...)
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].Model != entries[j].Model {
			return entries[i].Model < entries[j].Model
		}
		return entries[i].OpsPerSec > entries[j].OpsPerSec
	})
	rows := make([][]string, 0, len(entries))
	for _, e := range entries {
		p50, p95 := "-", "-"
		if e.Report != nil && e.Report.OpLatency != nil && e.Report.OpLatency.Count > 0 {
			s := e.Report.OpTime
			p50, p95 = fmt.Sprintf("%d", s.P50), fmt.Sprintf("%d", s.P95)
		}
		rows = append(rows, []string{
			e.Model, e.Object, e.Kind,
			fmt.Sprintf("%d", e.OpsTotal),
			fmt.Sprintf("%.0f", e.OpsPerSec),
			p50, p95,
			fmt.Sprintf("%d", e.Mem.CASFail+e.Mem.CAS2Fail+e.Mem.CCASFail),
			fmt.Sprintf("%d", e.HelpReceived),
		})
	}
	table(fmt.Sprintf("Native-hardware throughput (%d procs on GOMAXPROCS=%d, %d ops each, go %s)",
		rep.Procs, rep.GoMaxProcs, rep.Entries[0].OpsTotal, rep.GoVersion),
		[]string{"model", "object", "kind", "ops", "ops/sec", "p50 ns", "p95 ns", "retries", "helps"}, rows)
}

// Command wfbench regenerates the paper's tables and figures at full scale
// and prints them as text tables.
//
// Usage:
//
//	wfbench -exp all                 # everything (a few minutes)
//	wfbench -exp fig1                # Figure 1 worst-case time table
//	wfbench -exp sec34 -ops 50000    # Section 3.4 throughput comparison
//	wfbench -exp retries             # Section 3.4 worst-case comparison
//	wfbench -exp valois              # the [7]-cited CAS-only comparison
//	wfbench -exp ablations           # A1-A4 design-choice ablations
//	wfbench -exp native              # real-hardware ops/sec vs a sync.Mutex
//	wfbench -exp service             # hot-key counter & rate limiter, both backends
//
// All numbers are virtual time units (one unit per memory operation; see
// internal/sched). The shapes — linearity in W/T/P, wait-free/lock-free
// ratios, bounded worst cases — are the reproduction targets; see
// EXPERIMENTS.md for the paper-versus-measured record.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"text/tabwriter"
	"time"

	waitfree "repro"
	"repro/internal/arena"
	"repro/internal/arrival"
	"repro/internal/baseline/gclist"
	"repro/internal/baseline/herlihy"
	"repro/internal/baseline/valois"
	"repro/internal/core/multihash"
	"repro/internal/core/multilist"
	"repro/internal/core/multimwcas"
	"repro/internal/core/unilist"
	"repro/internal/core/unimwcas"
	"repro/internal/core/uniqueue"
	"repro/internal/core/unistack"
	"repro/internal/cover"
	"repro/internal/harness"
	"repro/internal/helping"
	"repro/internal/metrics"
	"repro/internal/prim"
	"repro/internal/prof"
	"repro/internal/registry"
	"repro/internal/rt"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/shmem"
	"repro/internal/trace"
	"repro/internal/tracex"
	"repro/internal/workload"
)

// withTrace is the -trace flag: record the report runs' event logs and
// write span-model exports next to the BENCH_*.json files. withProgress is
// the -progress flag: live sweep progress on stderr. benchPolicy and
// benchArrival are the -policy/-arrival flags: the scheduling discipline
// and arrival trace for the report and sweep experiments (empty = the
// paper's strict-priority model with the legacy release shapes, keeping
// every BENCH_*.json byte-identical). The service* vars are the -exp
// service knobs: which service object, which variant, and the keyed
// traffic shape (hot-key count, Zipf skew, tenant count).
var (
	withTrace         bool
	withProgress      bool
	benchPolicy       string
	benchArrival      string
	serviceSel        string
	serviceVariantSel string
	serviceKeys       int
	serviceTenants    int
	serviceZipf       float64
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|ext|mwcas|sec34|retries|valois|ablations|report|sweep|core|native|service|all")
	ops := flag.Int("ops", 50000, "total operations for the sec34 experiments (the paper used 50000)")
	procs := flag.Int("procs", 4, "processors for the sec34 experiments (the paper used 4)")
	seed := flag.Int64("seed", 11, "random seed")
	sweepSeeds := flag.Int("sweepseeds", 3, "seeds per cell for the -exp sweep matrix")
	outdir := flag.String("outdir", ".", "directory for the BENCH_<object>.json run reports")
	coreBaseline := flag.String("corebaseline", "", "with -exp core: committed BENCH_core.json to gate ns/slice regressions against")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a block (contention) profile to this file on exit")
	flag.BoolVar(&withProgress, "progress", false, "with -exp sweep: stream live progress (cells/sec, coverage, ETA) to stderr")
	flag.BoolVar(&withTrace, "trace", false, "with -exp report: also write TRACE_<object>.trace.json span exports (Perfetto)")
	flag.StringVar(&benchPolicy, "policy", "", "with -exp report/sweep: scheduling policy (default: the paper's strict-priority model)")
	flag.StringVar(&benchArrival, "arrival", "", "with -exp report/sweep: arrival trace for the burst releases (default: the legacy shapes)")
	flag.StringVar(&serviceSel, "service", "both", "with -exp service: service object (counter|limiter|both)")
	flag.StringVar(&serviceVariantSel, "variant", "all", "with -exp service: store variant (waitfree|atomic|lock|sharded|all)")
	flag.IntVar(&serviceKeys, "keys", 64, "with -exp service: hot-key space size")
	flag.IntVar(&serviceTenants, "tenants", 4, "with -exp service: tenant count for the rate limiter")
	flag.Float64Var(&serviceZipf, "zipf", 1.2, "with -exp service: Zipf skew of the key popularity (>1; <=1 disables skew)")
	flag.Parse()

	if _, err := sched.PolicyByName(benchPolicy); err != nil {
		fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
		os.Exit(1)
	}
	if benchArrival != "" {
		if _, err := arrival.ByName(benchArrival); err != nil {
			fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
			os.Exit(1)
		}
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile, *blockprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
		os.Exit(1)
	}
	// Idempotent: the defer covers error returns, the exit wrapper covers
	// os.Exit (which skips defers).
	defer stopProf()
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
		exit(1)
	}

	run := func(name string, f func() error) {
		switch *exp {
		case "all", name:
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "wfbench: %s: %v\n", name, err)
				exit(1)
			}
		}
	}
	run("fig1", func() error { return fig1(*seed) })
	run("ext", func() error { return extensions(*seed) })
	run("mwcas", func() error { return mwcasTable(*seed) })
	run("sec34", func() error { return sec34(*ops, *procs, *seed) })
	run("retries", func() error { return retries(*ops, *procs, *seed) })
	run("valois", func() error { return valoisCmp(*seed) })
	run("ablations", func() error { return ablations(*seed) })
	run("report", func() error { return reports(*outdir, *seed) })
	run("sweep", func() error { return sweep(*outdir, *sweepSeeds) })
	run("core", func() error { return coreBench(*outdir, *coreBaseline) })
	run("native", func() error { return nativeBench(*outdir, *ops, *procs, *seed) })
	run("service", func() error { return serviceBench(*outdir, *ops, *procs, *seed) })
	stopProf()
}

func table(title string, header []string, rows [][]string) {
	fmt.Printf("\n== %s ==\n", title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, h)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		for i, c := range r {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
	}
}

// fig1 regenerates the Figure 1 summary table: worst-case operation times
// for the four implementations, demonstrating Θ(W), Θ(2T), Θ(2PW), Θ(2PT).
func fig1(seed int64) error {
	var rows [][]string

	// Row 1: uniprocessor MWCAS vs W.
	for _, w := range []int{2, 4, 8, 16, 32} {
		s := sched.New(sched.Config{Processors: 1, Seed: seed, MemWords: 1 << 12})
		obj, err := unimwcas.New(s.Mem(), 2, w)
		if err != nil {
			return err
		}
		base := s.Mem().MustAlloc("app", w)
		addrs := make([]shmem.Addr, w)
		old := make([]uint32, w)
		next := make([]uint32, w)
		for j := range addrs {
			addrs[j] = base + shmem.Addr(j)
			obj.InitWord(addrs[j], 0)
			next[j] = 1
		}
		var cost int64
		s.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
			start := e.Now()
			obj.MWCAS(e, addrs, old, next)
			cost = e.Now() - start
		})
		if err := s.Run(); err != nil {
			return err
		}
		rows = append(rows, []string{"uni MWCAS (CAS)", fmt.Sprintf("W=%d", w), fmt.Sprint(cost), "Θ(W)"})
	}

	// Row 2: uniprocessor list vs T (with one helped preemption: 2T).
	for _, size := range []int{100, 200, 400, 800} {
		s := sched.New(sched.Config{Processors: 1, Seed: seed, MemWords: 1 << 17})
		ar, err := arena.New(s.Mem(), size+16, 2)
		if err != nil {
			return err
		}
		l, err := unilist.New(s.Mem(), ar, 2)
		if err != nil {
			return err
		}
		keys := make([]uint64, size)
		for j := range keys {
			keys[j] = uint64(10 * (j + 1))
		}
		if err := l.SeedAscending(keys); err != nil {
			return err
		}
		ar.Freeze()
		var cost int64
		s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
			start := e.Now()
			l.Insert(e, uint64(10*size+5), 0)
			cost = e.Now() - start
		}})
		s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 9, Slot: 1, AfterSlices: int64(size), Body: func(e *sched.Env) {
			l.Search(e, uint64(10*size+5))
		}})
		if err := s.Run(); err != nil {
			return err
		}
		rows = append(rows, []string{"uni list (CAS)", fmt.Sprintf("T=%d", size), fmt.Sprint(cost), "Θ(2T)"})
	}

	// Row 3: multiprocessor MWCAS vs P and W.
	for _, pw := range []struct{ p, w int }{{2, 8}, {4, 8}, {8, 8}, {4, 4}, {4, 16}} {
		s := sched.New(sched.Config{Processors: pw.p, Seed: seed, MemWords: 1 << 14})
		obj, err := multimwcas.New(s.Mem(), multimwcas.Config{Processors: pw.p, Procs: pw.p, Width: pw.w})
		if err != nil {
			return err
		}
		base := s.Mem().MustAlloc("app", pw.w)
		addrs := make([]shmem.Addr, pw.w)
		old := make([]uint64, pw.w)
		next := make([]uint64, pw.w)
		for j := range addrs {
			addrs[j] = base + shmem.Addr(j)
			obj.InitWord(addrs[j], 0)
			next[j] = 1
		}
		worst := make([]int64, pw.p)
		for cpu := 0; cpu < pw.p; cpu++ {
			cpu := cpu
			s.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, AfterSlices: -1, Body: func(e *sched.Env) {
				start := e.Now()
				obj.MWCAS(e, addrs, old, next)
				worst[cpu] = e.Now() - start
			}})
		}
		if err := s.Run(); err != nil {
			return err
		}
		var m int64
		for _, v := range worst {
			if v > m {
				m = v
			}
		}
		rows = append(rows, []string{"multi MWCAS (CAS+CCAS)", fmt.Sprintf("P=%d W=%d", pw.p, pw.w), fmt.Sprint(m), "Θ(2PW)"})
	}

	// Row 4: multiprocessor list vs P and T.
	for _, pt := range []struct{ p, t int }{{2, 200}, {4, 200}, {8, 200}, {4, 100}, {4, 400}} {
		s := sched.New(sched.Config{Processors: pt.p, Seed: seed, MemWords: 1 << 18})
		ar, err := arena.New(s.Mem(), pt.t+16, pt.p)
		if err != nil {
			return err
		}
		l, err := multilist.New(s.Mem(), ar, multilist.Config{Processors: pt.p, Procs: pt.p})
		if err != nil {
			return err
		}
		keys := make([]uint64, pt.t)
		for j := range keys {
			keys[j] = uint64(10 * (j + 1))
		}
		if err := l.SeedAscending(keys); err != nil {
			return err
		}
		ar.Freeze()
		worst := make([]int64, pt.p)
		for cpu := 0; cpu < pt.p; cpu++ {
			cpu := cpu
			s.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, AfterSlices: -1, Body: func(e *sched.Env) {
				start := e.Now()
				l.Search(e, uint64(10*pt.t+5))
				worst[cpu] = e.Now() - start
			}})
		}
		if err := s.Run(); err != nil {
			return err
		}
		var m int64
		for _, v := range worst {
			if v > m {
				m = v
			}
		}
		rows = append(rows, []string{"multi list (CAS+CCAS)", fmt.Sprintf("P=%d T=%d", pt.p, pt.t), fmt.Sprint(m), "Θ(2PT)"})
	}

	table("Figure 1 — worst-case operation time (virtual units)",
		[]string{"implementation", "parameters", "worst-case time", "paper bound"}, rows)
	return nil
}

// sec34 regenerates the Section 3.4 throughput experiment: total time for
// ops insertion/deletion operations on sorted lists of 200-2,000 elements,
// wait-free vs lock-free, on `procs` processors.
func sec34(ops, procs int, seed int64) error {
	var rows [][]string
	for _, size := range []int{200, 500, 1000, 1500, 2000} {
		mk := map[workload.Kind]int64{}
		for _, kind := range []workload.Kind{workload.WaitFree, workload.LockFreeGC} {
			res, err := workload.RunList(workload.ListConfig{
				Kind: kind, Processors: procs, BurstsPerCPU: 4, BurstOps: 25,
				TotalOps: ops, ListSize: size, Seed: seed,
			})
			if err != nil {
				return err
			}
			mk[kind] = res.Makespan
		}
		rows = append(rows, []string{
			fmt.Sprint(size),
			fmt.Sprint(mk[workload.WaitFree]),
			fmt.Sprint(mk[workload.LockFreeGC]),
			fmt.Sprintf("%.2f", float64(mk[workload.WaitFree])/float64(mk[workload.LockFreeGC])),
		})
	}
	table(fmt.Sprintf("Section 3.4 — total time, %d ins/del ops, %d processors (paper: ratio 1.5-2, \"1.5 more typical\")", ops, procs),
		[]string{"list size", "wait-free", "lock-free [7]", "ratio"}, rows)

	// Supplementary: a read-heavy mix (kernels mostly look things up).
	rows = nil
	for _, size := range []int{200, 1000} {
		mk := map[workload.Kind]int64{}
		for _, kind := range []workload.Kind{workload.WaitFree, workload.LockFreeGC} {
			res, err := workload.RunList(workload.ListConfig{
				Kind: kind, Processors: procs, BurstsPerCPU: 4, BurstOps: 25,
				TotalOps: ops, ListSize: size, Seed: seed, SearchPercent: 80,
			})
			if err != nil {
				return err
			}
			mk[kind] = res.Makespan
		}
		rows = append(rows, []string{
			fmt.Sprint(size),
			fmt.Sprint(mk[workload.WaitFree]),
			fmt.Sprint(mk[workload.LockFreeGC]),
			fmt.Sprintf("%.2f", float64(mk[workload.WaitFree])/float64(mk[workload.LockFreeGC])),
		})
	}
	table("Section 3.4 supplement — 80% searches (read-heavy kernel mix)",
		[]string{"list size", "wait-free", "lock-free [7]", "ratio"}, rows)
	return nil
}

// retries regenerates the Section 3.4 worst-case comparison: lock-free
// retry counts vs the wait-free bounded response.
func retries(ops, procs int, seed int64) error {
	var rows [][]string
	for _, size := range []int{200, 500, 1000} {
		lf, err := workload.RunList(workload.ListConfig{
			Kind: workload.LockFreeGC, Processors: procs, BurstsPerCPU: 4, BurstOps: 25,
			TotalOps: ops, ListSize: size, Seed: seed,
		})
		if err != nil {
			return err
		}
		wf, err := workload.RunList(workload.ListConfig{
			Kind: workload.WaitFree, Processors: procs, BurstsPerCPU: 3, BurstOps: 1,
			TotalOps: ops, ListSize: size, Seed: seed,
		})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprint(size),
			fmt.Sprint(lf.WorstRetries),
			fmt.Sprintf("%.1f", float64(wf.WorstOp)/float64(wf.BaseOp)),
		})
	}
	table(fmt.Sprintf("Section 3.4 — worst cases on %d processors (paper: retries 10-30 common, 30-50 frequent; wait-free <= %d x interference-free)", procs, 2*procs),
		[]string{"list size", "lock-free worst retries", "wait-free worst/interference-free"}, rows)
	return nil
}

// valoisCmp regenerates the [7]-cited comparison: CAS2 lock-free vs
// CAS-only (Valois) under high contention.
func valoisCmp(seed int64) error {
	runList := func(build func(s *sched.Sim, ar *arena.Arena) (workload.List, error)) (int64, error) {
		s := sched.New(sched.Config{Processors: 4, Seed: seed, MemWords: 1 << 18, Granularity: sched.Coarse, SyncCost: 8})
		ar, err := arena.New(s.Mem(), 1<<14, 4)
		if err != nil {
			return 0, err
		}
		l, err := build(s, ar)
		if err != nil {
			return 0, err
		}
		ar.Freeze()
		for cpu := 0; cpu < 4; cpu++ {
			cpu := cpu
			s.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, AfterSlices: -1, Body: func(e *sched.Env) {
				for op := 0; op < 1000; op++ {
					key := uint64(1 + e.Rand().Intn(64))
					if e.Rand().Intn(2) == 0 {
						l.Insert(e, key, key)
					} else {
						l.Delete(e, key)
					}
				}
			}})
		}
		if err := s.Run(); err != nil {
			return 0, err
		}
		return s.Elapsed(), nil
	}
	gc, err := runList(func(s *sched.Sim, ar *arena.Arena) (workload.List, error) {
		return gclist.New(s.Mem(), ar, 4)
	})
	if err != nil {
		return err
	}
	vr, err := runList(func(s *sched.Sim, ar *arena.Arena) (workload.List, error) {
		l, err := valois.New(s.Mem(), ar, 4)
		if err != nil {
			return nil, err
		}
		l.SetRefCounted(true)
		return l, nil
	})
	if err != nil {
		return err
	}
	vh, err := runList(func(s *sched.Sim, ar *arena.Arena) (workload.List, error) {
		return valois.New(s.Mem(), ar, 4)
	})
	if err != nil {
		return err
	}
	table("Section 3.4 — CAS2 lock-free vs CAS-only under high contention, sync cost 8 ([7] reports ~10x)",
		[]string{"implementation", "total time", "vs lock-free"},
		[][]string{
			{"lock-free CAS2 [7]", fmt.Sprint(gc), "1.00"},
			{"CAS-only, Valois cost model [13]", fmt.Sprint(vr), fmt.Sprintf("%.2f", float64(vr)/float64(gc))},
			{"CAS-only, modern mark-bit (no reclamation)", fmt.Sprint(vh), fmt.Sprintf("%.2f", float64(vh)/float64(gc))},
		})
	return nil
}

// ablations regenerates the design-choice ablations A1-A4.
func ablations(seed int64) error {
	// A1: 2PT vs 2NT.
	var rows [][]string
	for _, n := range []int{4, 8, 16, 32} {
		wf := func() int64 {
			s := sched.New(sched.Config{Processors: 4, Seed: seed, MemWords: 1 << 18})
			ar, err := arena.New(s.Mem(), 256, n)
			if err != nil {
				return -1
			}
			l, err := multilist.New(s.Mem(), ar, multilist.Config{Processors: 4, Procs: n})
			if err != nil {
				return -1
			}
			ar.Freeze()
			for p := 0; p < n; p++ {
				p := p
				s.Spawn(sched.JobSpec{Name: "", CPU: p % 4, Prio: sched.Priority(p / 4), Slot: p, AfterSlices: -1, Body: func(e *sched.Env) {
					l.Insert(e, uint64(p+1), 0)
				}})
			}
			if err := s.Run(); err != nil {
				return -1
			}
			return s.Elapsed()
		}()
		uc := func() int64 {
			s := sched.New(sched.Config{Processors: 4, Seed: seed, MemWords: 1 << 18})
			obj, err := herlihy.New(s.Mem(), n, 40, herlihy.SortedSetApply)
			if err != nil {
				return -1
			}
			for p := 0; p < n; p++ {
				p := p
				s.Spawn(sched.JobSpec{Name: "", CPU: p % 4, Prio: sched.Priority(p / 4), Slot: p, AfterSlices: -1, Body: func(e *sched.Env) {
					obj.Do(e, 1, uint64(p+1))
				}})
			}
			if err := s.Run(); err != nil {
				return -1
			}
			return s.Elapsed()
		}()
		rows = append(rows, []string{fmt.Sprint(n), fmt.Sprint(wf), fmt.Sprint(uc), fmt.Sprintf("%.2f", float64(uc)/float64(wf))})
	}
	table("A1 — processor-indexed helping (2PT, this paper) vs process-indexed (2NT, Herlihy [8]); P=4",
		[]string{"N processes", "wait-free list", "universal construction", "UC/WF"}, rows)

	// A2: cyclic vs priority helping for a late high-priority op.
	rows = nil
	for _, mode := range []helping.Mode{helping.Cyclic, helping.Priority} {
		s := sched.New(sched.Config{Processors: 4, Seed: seed, MemWords: 1 << 18})
		ar, err := arena.New(s.Mem(), 340, 4)
		if err != nil {
			return err
		}
		l, err := multilist.New(s.Mem(), ar, multilist.Config{Processors: 4, Procs: 4, Mode: mode})
		if err != nil {
			return err
		}
		keys := make([]uint64, 300)
		for j := range keys {
			keys[j] = uint64(10 * (j + 1))
		}
		if err := l.SeedAscending(keys); err != nil {
			return err
		}
		ar.Freeze()
		var hi int64
		for cpu := 1; cpu < 4; cpu++ {
			cpu := cpu
			s.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, AfterSlices: -1, Body: func(e *sched.Env) {
				for k := 0; k < 3; k++ {
					l.Search(e, 3005)
				}
			}})
		}
		s.Spawn(sched.JobSpec{Name: "hi", CPU: 0, Prio: 9, Slot: 0, At: 700, AfterSlices: -1, Body: func(e *sched.Env) {
			start := e.Now()
			l.Search(e, 3005)
			hi = e.Now() - start
		}})
		if err := s.Run(); err != nil {
			return err
		}
		rows = append(rows, []string{mode.String(), fmt.Sprint(hi)})
	}
	table("A2 — response time of a late high-priority operation (paper: priority helping \"very effective\")",
		[]string{"helping mode", "hi-priority op response"}, rows)

	// A3: one vs two helping rounds ([1]).
	rows = nil
	for _, oneRound := range []bool{false, true} {
		s := sched.New(sched.Config{Processors: 4, Seed: seed, MemWords: 1 << 14})
		obj, err := multimwcas.New(s.Mem(), multimwcas.Config{Processors: 4, Procs: 4, Width: 2, OneRound: oneRound})
		if err != nil {
			return err
		}
		base := s.Mem().MustAlloc("app", 2)
		words := []shmem.Addr{base, base + 1}
		obj.InitWord(words[0], 0)
		obj.InitWord(words[1], 0)
		for cpu := 0; cpu < 4; cpu++ {
			cpu := cpu
			s.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, AfterSlices: -1, Body: func(e *sched.Env) {
				for k := 0; k < 25; k++ {
					a := obj.ReadWord(e, words[0])
					c := obj.ReadWord(e, words[1])
					obj.MWCAS(e, words, []uint64{a, c}, []uint64{a + 1, c + 1})
				}
			}})
		}
		if err := s.Run(); err != nil {
			return err
		}
		name := "two rounds (general)"
		if oneRound {
			name = "one round ([1], RT scheduler)"
		}
		rows = append(rows, []string{name, fmt.Sprint(s.Elapsed())})
	}
	table("A3 — helping rounds per operation", []string{"mode", "total time"}, rows)

	// A6: priority-helping starvation (the Section 3.4 caveat).
	rows = nil
	lowResp := func(mode helping.Mode, burst int) (int64, error) {
		s := sched.New(sched.Config{Processors: 4, Seed: seed, MemWords: 1 << 19})
		ar, err := arena.New(s.Mem(), 1024, 4)
		if err != nil {
			return 0, err
		}
		l, err := multilist.New(s.Mem(), ar, multilist.Config{Processors: 4, Procs: 4, Mode: mode})
		if err != nil {
			return 0, err
		}
		keys := make([]uint64, 200)
		for j := range keys {
			keys[j] = uint64(10 * (j + 1))
		}
		if err := l.SeedAscending(keys); err != nil {
			return 0, err
		}
		ar.Freeze()
		var low int64
		s.Spawn(sched.JobSpec{Name: "low", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
			start := e.Now()
			l.Search(e, 2005)
			low = e.Now() - start
		}})
		for cpu := 1; cpu < 4; cpu++ {
			cpu := cpu
			s.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 9, Slot: cpu, At: int64(cpu), AfterSlices: -1, Body: func(e *sched.Env) {
				for i := 0; i < burst; i++ {
					l.Search(e, 2005)
				}
			}})
		}
		if err := s.Run(); err != nil {
			return 0, err
		}
		return low, nil
	}
	for _, burst := range []int{2, 4, 8} {
		c, err := lowResp(helping.Cyclic, burst)
		if err != nil {
			return err
		}
		pr, err := lowResp(helping.Priority, burst)
		if err != nil {
			return err
		}
		rows = append(rows, []string{fmt.Sprint(burst), fmt.Sprint(c), fmt.Sprint(pr)})
	}
	table("A6 — low-priority starvation under priority helping (paper's Section 3.4 caveat): cyclic bounds the wait, priority helping grows with the high-priority stream",
		[]string{"high-prio ops per cpu", "cyclic low response", "priority low response"}, rows)

	// A4: Findpos stride under cheap vs expensive synchronization.
	rows = nil
	for _, syncCost := range []int64{1, 8} {
		for _, stride := range []int{1, 10, 100} {
			res, err := waitfree.RunListExperiment(waitfree.ListExperiment{
				Kind: waitfree.KindWaitFree, Processors: 4, BurstsPerCPU: 2, BurstOps: 10,
				TotalOps: 500, ListSize: 400, Seed: seed, Stride: stride, SyncCost: syncCost,
			})
			if err != nil {
				return err
			}
			rows = append(rows, []string{fmt.Sprint(syncCost), fmt.Sprint(stride), fmt.Sprint(res.Makespan)})
		}
	}
	table("A4 — Findpos checkpoint stride (paper used k=100; pays off when synchronization is expensive)",
		[]string{"sync cost", "stride k", "total time"}, rows)
	return nil
}

// extensions measures the Section 4 extension structures (queue, stack,
// hash table) and the real-time schedulability story built on the paper's
// bounds.
func extensions(seed int64) error {
	var rows [][]string

	// Queue/stack/hash worst-case op costs under one helped preemption.
	uniCost := func(build func(s *sched.Sim, ar *arena.Arena) (func(e *sched.Env), error), nodes int) (int64, error) {
		s := sched.New(sched.Config{Processors: 1, Seed: seed, MemWords: 1 << 18})
		ar, err := arena.New(s.Mem(), nodes, 2)
		if err != nil {
			return 0, err
		}
		op, err := build(s, ar)
		if err != nil {
			return 0, err
		}
		ar.Freeze()
		var cost int64
		s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
			start := e.Now()
			op(e)
			cost = e.Now() - start
		}})
		s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 9, Slot: 1, AfterSlices: 20, Body: func(e *sched.Env) {
			op(e)
		}})
		if err := s.Run(); err != nil {
			return 0, err
		}
		return cost, nil
	}

	qCost, err := uniCost(func(s *sched.Sim, ar *arena.Arena) (func(e *sched.Env), error) {
		q, err := uniqueue.New(s.Mem(), ar, 2)
		if err != nil {
			return nil, err
		}
		return func(e *sched.Env) { q.Enqueue(e, 1); q.Dequeue(e) }, nil
	}, 64)
	if err != nil {
		return err
	}
	stCost, err := uniCost(func(s *sched.Sim, ar *arena.Arena) (func(e *sched.Env), error) {
		st, err := unistack.New(s.Mem(), ar, 2)
		if err != nil {
			return nil, err
		}
		return func(e *sched.Env) { st.Push(e, 1); st.Pop(e) }, nil
	}, 64)
	if err != nil {
		return err
	}
	rows = append(rows,
		[]string{"uni queue (enq+deq, helped once)", fmt.Sprint(qCost)},
		[]string{"uni stack (push+pop, helped once)", fmt.Sprint(stCost)})

	// Hash bucket speedup: search cost vs bucket count at 256 keys.
	for _, k := range []int{1, 4, 16} {
		s := sched.New(sched.Config{Processors: 1, Seed: seed, MemWords: 1 << 19})
		ar, err := arena.New(s.Mem(), 320, 1)
		if err != nil {
			return err
		}
		tb, err := multihash.New(s.Mem(), ar, multihash.Config{Processors: 1, Procs: 1, Buckets: k})
		if err != nil {
			return err
		}
		keys := make([]uint64, 256)
		for i := range keys {
			keys[i] = uint64(i + 1)
		}
		if err := tb.SeedKeys(keys); err != nil {
			return err
		}
		ar.Freeze()
		var cost int64
		s.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
			start := e.Now()
			tb.Search(e, 256)
			cost = e.Now() - start
		})
		if err := s.Run(); err != nil {
			return err
		}
		rows = append(rows, []string{fmt.Sprintf("hash search, 256 keys, K=%d buckets", k), fmt.Sprint(cost)})
	}
	table("Section 4 extensions — queue, stack, hash table (virtual units)",
		[]string{"operation", "cost"}, rows)

	// Real-time schedulability with the 2T helping surcharge.
	tasks := rt.AssignRateMonotonic([]rt.Task{
		{Name: "sensor", Period: 4000, BaseCost: 300, Ops: 2, OpCost: 140},
		{Name: "control", Period: 9000, BaseCost: 800, Ops: 3, OpCost: 140},
		{Name: "logger", Period: 20000, BaseCost: 2000, Ops: 4, OpCost: 140},
	})
	as, err := rt.ResponseTimeAnalysis(tasks)
	if err != nil {
		return err
	}
	rows = nil
	for _, a := range as {
		rows = append(rows, []string{a.Task.Name, fmt.Sprint(a.Task.Period), fmt.Sprint(a.WCET),
			fmt.Sprint(a.Response), fmt.Sprintf("%v", a.Schedulable)})
	}
	table(fmt.Sprintf("Real-time response-time analysis with wait-free helping surcharge (utilization %.2f, Liu-Layland bound %.2f)",
		rt.TotalUtilization(tasks), rt.LiuLaylandBound(len(tasks))),
		[]string{"task", "period", "WCET (2T ops)", "response bound", "schedulable"}, rows)
	return nil
}

// reports runs a small adversarial workload over each core object and
// writes one machine-readable run report per object as
// <outdir>/BENCH_<object>.json: per-process step counts, CAS-failure
// counts, helping and preemption accounting, and response-time summaries.
// The runs are deterministic for a fixed seed, so the files are diffable
// across commits (see EXPERIMENTS.md "Run reports").
func reports(outdir string, seed int64) error {
	var written []string
	writeReport := func(r *metrics.Report) error {
		path := filepath.Join(outdir, "BENCH_"+string(r.Object)+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := r.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}
	writeTrace := func(object string, log *trace.Log) error {
		if !withTrace || log == nil {
			return nil
		}
		b, err := tracex.Build(log).Perfetto()
		if err != nil {
			return err
		}
		path := filepath.Join(outdir, "TRACE_"+object+".trace.json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	// The list kinds run the Section 3.4 workload at report scale. The
	// workload suite accepts the disciplines its interference model
	// covers (priority/fcfs/priority-fcfs); under any other policy, or a
	// non-default arrival trace (the workload driver owns its release
	// points), these reports are skipped (loudly) and only the registry
	// objects are measured.
	listKinds := []struct {
		kind  workload.Kind
		procs int
	}{
		{workload.WaitFree, 4},
		{workload.WaitFreeUni, 1},
		{workload.LockFreeGC, 4},
	}
	if benchArrival != "" || !workload.PolicyAccepted(benchPolicy) {
		listKinds = nil
		fmt.Fprintf(os.Stderr, "wfbench: skipping workload list reports (workload policies: %v, no -arrival override); registry objects only\n",
			workload.AcceptedPolicies())
	}
	for _, lk := range listKinds {
		res, err := workload.RunList(workload.ListConfig{
			Kind: lk.kind, Processors: lk.procs, BurstsPerCPU: 2, BurstOps: 10,
			TotalOps: 400, ListSize: 100, Seed: seed, EnableTrace: withTrace,
			Policy: benchPolicy,
		})
		if err != nil {
			return err
		}
		if err := writeReport(res.Report); err != nil {
			return err
		}
		if err := writeTrace(string(lk.kind), res.TraceLog); err != nil {
			return err
		}
	}

	// Every core object runs a priority-burst workload generated from its
	// registry descriptor: uniprocessor objects get a base worker plus two
	// staggered higher-priority bursts; multiprocessor objects one worker
	// per processor plus a burst per processor.
	for _, name := range registry.CoreNames() {
		s, err := objectReportRun(name, seed)
		if err != nil {
			return err
		}
		rep := s.Report(name)
		// Report stamps the (off-default) policy itself; the arrival trace
		// is driver knowledge. Both are empty on default runs, keeping the
		// committed BENCH_*.json goldens byte-identical.
		rep.Arrival = benchArrival
		if err := writeReport(rep); err != nil {
			return err
		}
		if err := writeTrace(name, s.Trace()); err != nil {
			return err
		}
	}

	for _, p := range written {
		fmt.Printf("wrote %s\n", p)
	}
	return nil
}

// objectReportRun executes the report workload for one core object and
// returns the completed simulation.
func objectReportRun(name string, seed int64) (*sched.Sim, error) {
	d := registry.Lookup0(name)
	procs := 1
	if d.Family == registry.FamilyMulti {
		procs = 2
	}
	pol, err := sched.PolicyByName(benchPolicy)
	if err != nil {
		return nil, err
	}
	// The burst releases come from the named arrival trace; the legacy
	// shape (slices 25 and 60) is kept verbatim when no trace is named.
	burstRel := []arrival.Release{{AfterSlices: 25}, {AfterSlices: 60}}
	if benchArrival != "" {
		trc, err := arrival.ByName(benchArrival)
		if err != nil {
			return nil, err
		}
		burstRel = trc.Releases(2, seed)
	}
	s := sched.New(sched.Config{Processors: procs, Seed: seed, MemWords: 1 << 18, EnableTrace: withTrace, Policy: pol})
	cfg := registry.Config{Procs: 4, Capacity: 128, Buckets: 4, Words: 4, Width: 2}
	if d.Model == registry.ModelSorted {
		cfg.SeedKeys = []uint64{2, 4, 6, 8, 10, 12, 14, 16}
	}
	inst, err := registry.Build(s, name, cfg)
	if err != nil {
		return nil, err
	}
	run := func(slot, n int) func(e *sched.Env) {
		ops := d.Ops(cfg, seed, slot, n)
		return func(e *sched.Env) {
			for _, op := range ops {
				start := e.Now()
				inst.Apply(e, slot, op)
				e.RecordOp(e.Now() - start)
			}
		}
	}
	if d.Family == registry.FamilyUni {
		s.Spawn(sched.JobSpec{Name: "base", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Cost: 20, Body: run(0, 20)})
		s.Spawn(sched.JobSpec{Name: "burst1", CPU: 0, Prio: 5, Slot: 1, AfterSlices: burstRel[0].AfterSlices, At: burstRel[0].At, Cost: 5, Body: run(1, 5)})
		s.Spawn(sched.JobSpec{Name: "burst2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: burstRel[1].AfterSlices, At: burstRel[1].At, Cost: 5, Body: run(2, 5)})
	} else {
		s.Spawn(sched.JobSpec{Name: "w0", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Cost: 20, Body: run(0, 20)})
		s.Spawn(sched.JobSpec{Name: "w1", CPU: 1, Prio: 1, Slot: 1, AfterSlices: -1, Cost: 20, Body: run(1, 20)})
		s.Spawn(sched.JobSpec{Name: "burst0", CPU: 0, Prio: 9, Slot: 2, AfterSlices: burstRel[0].AfterSlices, At: burstRel[0].At, Cost: 5, Body: run(2, 5)})
		s.Spawn(sched.JobSpec{Name: "burst1", CPU: 1, Prio: 9, Slot: 3, AfterSlices: burstRel[1].AfterSlices, At: burstRel[1].At, Cost: 5, Body: run(3, 5)})
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	return s, nil
}

// sweepCell identifies one cell of the full-matrix sweep: an object, a CCAS
// implementation and helping mode (multiprocessor objects only), a
// preemption pattern and a seed.
type sweepCell struct {
	Object  string `json:"object"`
	CC      string `json:"cc,omitempty"`
	Mode    string `json:"mode,omitempty"`
	Pattern string `json:"pattern"`
	Seed    int64  `json:"seed"`
	// Policy and Arrival carry the -policy/-arrival flags into the cell
	// (empty on the default matrix, so cell identities are unchanged).
	Policy  string `json:"policy,omitempty"`
	Arrival string `json:"arrival,omitempty"`
}

// sweepCells enumerates the matrix over every core registry object. A
// -arrival flag replaces the legacy pattern axis with that single trace; a
// -policy flag runs every cell under that discipline.
func sweepCells(seeds int) []sweepCell {
	patterns := scenario.Patterns()
	if benchArrival != "" {
		patterns = []string{benchArrival}
	}
	var out []sweepCell
	for _, name := range registry.CoreNames() {
		d := registry.Lookup0(name)
		for _, pat := range patterns {
			for seed := int64(1); seed <= int64(seeds); seed++ {
				if d.Family != registry.FamilyMulti {
					out = append(out, sweepCell{Object: name, Pattern: pat, Seed: seed, Policy: benchPolicy, Arrival: benchArrival})
					continue
				}
				for _, cc := range prim.All() {
					for _, mode := range []helping.Mode{helping.Cyclic, helping.Priority} {
						out = append(out, sweepCell{Object: name, CC: cc.Name(), Mode: mode.String(), Pattern: pat, Seed: seed, Policy: benchPolicy, Arrival: benchArrival})
					}
				}
			}
		}
	}
	return out
}

// sweepOut is one cell's canonical report bytes plus its behavioral
// signature (the coverage unit: cover.ReportSig of the same report).
type sweepOut struct {
	b   []byte
	sig uint64
}

// runSweepCell executes one cell and returns its canonical report bytes
// and coverage signature.
func runSweepCell(c sweepCell) (sweepOut, error) {
	cfg := scenario.Config{Object: c.Object, Seed: c.Seed, Pattern: c.Pattern, Policy: c.Policy}
	if c.CC != "" {
		impl, err := prim.ByName(c.CC)
		if err != nil {
			return sweepOut{}, err
		}
		cfg.CC = impl
	}
	if c.Mode == helping.Priority.String() {
		cfg.Mode = helping.Priority
	}
	s, err := scenario.Run(cfg)
	if err != nil {
		return sweepOut{}, err
	}
	rep := s.Report(c.Object)
	// Key the report (and so its signature) by the explicit arrival trace;
	// empty on the default matrix keeps the bytes and sigs unchanged.
	rep.Arrival = c.Arrival
	b, err := rep.JSON()
	out := sweepOut{b: b, sig: cover.ReportSig(rep)}
	sched.Release(s)
	return out, err
}

// sweep runs the full object × CCAS × helping-mode × pattern × seed matrix
// twice — serially and fanned out across all cores via internal/harness —
// asserts the merged outputs are byte-identical, and records both wall-clock
// times (the repo's first real-parallelism figure) plus the campaign's
// schedule-space coverage (internal/cover, folded from the merged results
// in input order so it is identical at any worker count) in
// <outdir>/BENCH_sweep.json.
func sweep(outdir string, seeds int) error {
	cells := sweepCells(seeds)
	timed := func(workers int, label string) ([]sweepOut, time.Duration, error) {
		var meter *cover.Meter
		if withProgress {
			meter = cover.NewMeter(os.Stderr, "sweep "+label, len(cells), 0)
		}
		start := time.Now()
		out, err := harness.Map(len(cells),
			harness.Options{Workers: workers, OnDone: func(int) { meter.Done() }},
			func(i int) (sweepOut, error) {
				o, err := runSweepCell(cells[i])
				meter.Note(o.sig)
				return o, err
			})
		meter.Finish()
		return out, time.Since(start), err
	}
	serial, serialDur, err := timed(1, "serial")
	if err != nil {
		return fmt.Errorf("serial sweep: %w", err)
	}
	// At least two workers even on a single-core host, so the concurrent
	// dispatch/merge path is always exercised; on >= 2 cores the same
	// setting is where the wall-clock speedup comes from.
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	parallel, parallelDur, err := timed(workers, "parallel")
	if err != nil {
		return fmt.Errorf("parallel sweep: %w", err)
	}
	for i := range cells {
		if !bytes.Equal(serial[i].b, parallel[i].b) || serial[i].sig != parallel[i].sig {
			return fmt.Errorf("sweep cell %+v: parallel report differs from serial report", cells[i])
		}
	}
	// Coverage folds from the merged (input-order) results, so the two
	// runs produce one identical Stats; the byte-identity loop above has
	// already proven per-cell signature agreement.
	acc := cover.NewAccumulator()
	for i := range cells {
		acc.Add(serial[i].sig)
	}
	cov := acc.Stats()
	doc := struct {
		Cells      int     `json:"cells"`
		Workers    int     `json:"workers"`
		SerialMs   float64 `json:"serial_ms"`
		ParallelMs float64 `json:"parallel_ms"`
		Speedup    float64 `json:"speedup"`
		Identical  bool    `json:"byte_identical"`
		// Policy and Arrival record the matrix's scheduling discipline and
		// arrival trace when off the defaults (omitted otherwise, keeping
		// the committed BENCH_sweep.json stable).
		Policy   string      `json:"policy,omitempty"`
		Arrival  string      `json:"arrival,omitempty"`
		Coverage cover.Stats `json:"coverage"`
	}{
		Cells:      len(cells),
		Workers:    workers,
		SerialMs:   float64(serialDur.Microseconds()) / 1000,
		ParallelMs: float64(parallelDur.Microseconds()) / 1000,
		Speedup:    float64(serialDur) / float64(parallelDur),
		Identical:  true,
		Policy:     benchPolicy,
		Arrival:    benchArrival,
		Coverage:   cov,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outdir, "BENCH_sweep.json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	table("Full-matrix sweep — serial vs parallel harness (byte-identical merged reports)",
		[]string{"cells", "workers", "serial ms", "parallel ms", "speedup", "distinct behaviors"},
		[][]string{{
			fmt.Sprint(doc.Cells), fmt.Sprint(doc.Workers),
			fmt.Sprintf("%.1f", doc.SerialMs), fmt.Sprintf("%.1f", doc.ParallelMs),
			fmt.Sprintf("%.2fx", doc.Speedup),
			fmt.Sprintf("%d (%.1f%%)", cov.Distinct, 100*cov.Coverage),
		}})
	fmt.Printf("wrote %s\n", path)
	return nil
}

// mwcasTable is a supplementary table: MWCAS transaction throughput under
// priority preemption (the read-compute-MWCAS usage of Section 3.1), across
// processors and widths.
func mwcasTable(seed int64) error {
	var rows [][]string
	for _, pw := range []struct{ p, w int }{{1, 2}, {1, 4}, {2, 2}, {4, 2}, {4, 4}} {
		kind := workload.MWCASMulti
		if pw.p == 1 {
			kind = workload.MWCASUni
		}
		res, err := workload.RunMWCAS(workload.MWCASConfig{
			Kind: kind, Processors: pw.p, Words: 8, Width: pw.w,
			TotalCommits: 2000, BurstsPerCPU: 2, BurstCommits: 20, Seed: seed,
		})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			string(kind), fmt.Sprint(pw.p), fmt.Sprint(pw.w),
			fmt.Sprint(res.Makespan), fmt.Sprint(res.Failures), fmt.Sprint(res.WorstOp),
		})
	}
	table("MWCAS transactions — 2000 commits, 8 shared words, preemption bursts",
		[]string{"kind", "P", "W", "total time", "conflict retries", "worst op"}, rows)
	return nil
}

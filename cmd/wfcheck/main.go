// Command wfcheck exhaustively explores release-point schedules of small
// scenarios against the linearizability checkers.
//
// The scheduler's deterministic slice-triggered releases make "preempt the
// victim at exactly its k-th step" a first-class scheduling handle; wfcheck
// sweeps pairs of release points across entire operations, checking every
// resulting schedule. This covers, exhaustively at small scale, the
// preemption-window arguments the paper makes in prose (e.g. "if p is
// preempted between lines 37 and 48...").
//
// The object suites come from internal/registry: every core object (all ten)
// is swept through one generic driver, so registering a new object adds a
// suite with no wfcheck change. The extra "workload" suite drives the
// checked multiprocessor list workload across seeds.
//
// A second mode, -linz, trades exhaustiveness for randomized breadth: seeded
// adversary schedules (internal/linz/adversary) drive every registered
// object — baselines included — and the recorded histories are judged by
// the black-box linearizability engine (internal/linz), which needs nothing
// from the object but its sequential model. A failing (object, seed,
// strategy) triple is a perfect reproducer, replayable with wftrace -linz.
//
// Usage:
//
//	wfcheck                  # all suites, default depth
//	wfcheck -suite uniqueue  # one object
//	wfcheck -max 200         # widen the release-point range
//	wfcheck -par 0           # sweep objects in parallel on all cores
//	wfcheck -linz -rand 200  # 200 randomized schedules per object, black-box checked
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/explore"
	"repro/internal/harness"
	"repro/internal/linz"
	"repro/internal/linz/adversary"
	"repro/internal/prof"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	suite := flag.String("suite", "all", "suite: any core registry object, workload, or all")
	maxSlice := flag.Int64("max", 120, "largest release point swept")
	keepGoing := flag.Bool("keepgoing", false, "explore past failures and report every failing vector")
	par := flag.Int("par", 1, "workers for sweeping suites in parallel (0 = all cores); output is identical at any setting")
	traceFailures := flag.Bool("trace", false, "record traces and write wfcheck_fail.trace.json for a failing schedule")
	linzMode := flag.Bool("linz", false, "black-box mode: randomized adversary schedules judged by the history-based engine")
	randN := flag.Int("rand", 200, "randomized schedules per object in -linz mode (seeds 1..N, strategies alternating)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfcheck: %v\n", err)
		os.Exit(1)
	}
	// os.Exit skips deferred calls, so every exit goes through this wrapper
	// to flush the profiles first.
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	if *linzMode {
		exit(linzMain(*suite, *randN, *par))
	}

	names := append(registry.CoreNames(), "workload")
	if *suite != "all" {
		found := false
		for _, n := range names {
			if n == *suite {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "wfcheck: unknown suite %q (have %v)\n", *suite, names)
			exit(1)
		}
		names = []string{*suite}
	}

	type outcome struct {
		n   int
		err error
	}
	// Suites are independent simulations; fan them out and report in name
	// order so -par only changes wall-clock, never output.
	results, _ := harness.Map(len(names), harness.Options{Workers: *par}, func(i int) (outcome, error) {
		var o outcome
		if names[i] == "workload" {
			o.n, o.err = workloadSweep(*maxSlice)
			return o, nil
		}
		d := registry.Lookup0(names[i])
		o.n, o.err = d.Sweep(registry.SweepConfig{Max: *maxSlice, KeepGoing: *keepGoing, Trace: *traceFailures})
		return o, nil
	})

	total := 0
	failed := false
	for i, o := range results {
		if o.err != nil {
			var fs explore.Failures
			if errors.As(o.err, &fs) {
				// KeepGoing sweep: every failing vector is a reproducer;
				// report them all and keep going.
				fmt.Fprintf(os.Stderr, "wfcheck: %s: %d schedules explored: %v\n", names[i], o.n, o.err)
				failed = true
				continue
			}
			fmt.Fprintf(os.Stderr, "wfcheck: %s: %v\n", names[i], o.err)
			exit(1)
		}
		fmt.Printf("%-10s %6d schedules explored, 0 violations\n", names[i], o.n)
		total += o.n
	}
	fmt.Printf("%-10s %6d schedules total\n", "all", total)
	if failed {
		exit(1)
	}
	stopProf()
}

// linzMain is the -linz mode: randN seeded adversary schedules per object
// (seeds 1..N, strategies alternating uniform/pct), every recorded history
// judged by the black-box engine. Covers all registered objects, baselines
// included — black-box checking needs only the sequential model.
func linzMain(suite string, randN, par int) int {
	names := registry.Names()
	if suite != "all" {
		if _, err := registry.Lookup(suite); err != nil {
			fmt.Fprintf(os.Stderr, "wfcheck: %v\n", err)
			return 1
		}
		names = []string{suite}
	}

	type outcome struct {
		runs, ops, states int
		err               error
	}
	results, _ := harness.Map(len(names), harness.Options{Workers: par}, func(i int) (outcome, error) {
		var o outcome
		for n := 0; n < randN; n++ {
			strat := adversary.Uniform
			if n%2 == 1 {
				strat = adversary.PCT
			}
			cfg := adversary.Config{Object: names[i], Seed: int64(n + 1), Strategy: strat}
			r, err := adversary.Execute(cfg)
			if err != nil {
				o.err = err
				return o, nil
			}
			out, err := r.Check(linz.Options{})
			if err != nil {
				o.err = fmt.Errorf("%s seed=%d strategy=%s: %w", names[i], cfg.Seed, strat, err)
				return o, nil
			}
			if !out.OK {
				o.err = fmt.Errorf("%s seed=%d strategy=%s: NOT linearizable\n%s\n%s",
					names[i], cfg.Seed, strat, r.History.Text(), out.Counterexample.Tree(r.History))
				return o, nil
			}
			o.runs++
			o.ops += len(r.History.Ops)
			o.states += out.States
			r.Close()
		}
		return o, nil
	})

	total := 0
	for i, o := range results {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "wfcheck: %v\n", o.err)
			return 1
		}
		fmt.Printf("%-10s %6d schedules, %6d ops, %8d states, linearizable\n", names[i], o.runs, o.ops, o.states)
		total += o.runs
	}
	fmt.Printf("%-10s %6d randomized schedules total\n", "all", total)
	return 0
}

// workloadSweep drives the checked multiprocessor workload across many
// seeds (each seed is a distinct schedule of cross-processor interleavings
// and preemptions).
func workloadSweep(maxSlice int64) (int, error) {
	n := 0
	for seed := int64(0); seed < maxSlice; seed++ {
		res, err := workload.RunList(workload.ListConfig{
			Kind: workload.WaitFree, Processors: 3, BurstsPerCPU: 2, BurstOps: 4,
			TotalOps: 120, ListSize: 16, Seed: seed, Check: true,
			Granularity: sched.Fine,
		})
		if err != nil {
			return n, fmt.Errorf("seed %d: %w", seed, err)
		}
		if res.Livelocked {
			return n, fmt.Errorf("seed %d: livelocked", seed)
		}
		n++
	}
	return n, nil
}

// Command wfcheck exhaustively explores release-point schedules of small
// scenarios against the linearizability checkers.
//
// The scheduler's deterministic slice-triggered releases make "preempt the
// victim at exactly its k-th step" a first-class scheduling handle; wfcheck
// sweeps k (and pairs of release points for two adversaries) across entire
// operations, checking every resulting schedule. This covers, exhaustively
// at small scale, the preemption-window arguments the paper makes in prose
// (e.g. "if p is preempted between lines 37 and 48...").
//
// Usage:
//
//	wfcheck                  # all suites, default depth
//	wfcheck -suite unilist   # one suite
//	wfcheck -max 200         # widen the release-point range
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/unihash"
	"repro/internal/core/unilist"
	"repro/internal/core/unimwcas"
	"repro/internal/core/uniqueue"
	"repro/internal/core/unistack"
	"repro/internal/explore"
	"repro/internal/sched"
	"repro/internal/shmem"
	"repro/internal/tracex"
	"repro/internal/workload"
)

// traceFailures is the -trace flag: run the sweeps with event recording on
// and dump the span model of the first failing schedule, so a violation
// arrives with its causal history instead of just a release vector.
var traceFailures bool

func main() {
	suite := flag.String("suite", "all", "suite: unilist|unimwcas|multilist|uniqueue|unistack|unihash|all")
	maxSlice := flag.Int64("max", 120, "largest release point swept")
	pairs := flag.Bool("pairs", false, "also sweep pairs of adversaries (quadratic)")
	keepGoing := flag.Bool("keepgoing", false, "explore past failures and report every failing vector (explore-driven suites)")
	flag.BoolVar(&traceFailures, "trace", false, "record traces and write wfcheck_fail.trace.json for a failing schedule")
	flag.Parse()

	total := 0
	failed := false
	run := func(name string, f func() (int, error)) {
		if *suite != "all" && *suite != name {
			return
		}
		n, err := f()
		if err != nil {
			var fs explore.Failures
			if errors.As(err, &fs) {
				// KeepGoing sweep: every failing vector is a reproducer;
				// report them all and keep running the other suites.
				fmt.Fprintf(os.Stderr, "wfcheck: %s: %d schedules explored: %v\n", name, n, err)
				failed = true
				return
			}
			fmt.Fprintf(os.Stderr, "wfcheck: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %6d schedules explored, 0 violations\n", name, n)
		total += n
	}
	run("unilist", func() (int, error) { return uniListSweep(*maxSlice, *pairs) })
	run("unimwcas", func() (int, error) { return uniMWCASSweep(*maxSlice) })
	run("multilist", func() (int, error) { return multiListSweep(*maxSlice) })
	run("uniqueue", func() (int, error) { return uniQueueSweep(*maxSlice) })
	run("unistack", func() (int, error) { return uniStackSweep(*maxSlice) })
	run("unihash", func() (int, error) { return uniHashSweep(*maxSlice, *keepGoing) })
	fmt.Printf("%-10s %6d schedules total\n", "all", total)
	if failed {
		os.Exit(1)
	}
}

// newSim constructs a sweep simulation; with -trace its runs are recorded
// so a failing schedule can be dumped as a span model.
func newSim(memWords int) *sched.Sim {
	return sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: memWords, EnableTrace: traceFailures})
}

// dumpFailure, under -trace, writes the failing run's span model and points
// the error at it.
func dumpFailure(s *sched.Sim, err error) error {
	if !traceFailures || err == nil || s.Trace() == nil {
		return err
	}
	b, perr := tracex.Build(s.Trace()).Perfetto()
	if perr != nil {
		return err
	}
	const path = "wfcheck_fail.trace.json"
	if werr := os.WriteFile(path, b, 0o644); werr != nil {
		return err
	}
	return fmt.Errorf("%w (span trace written to %s)", err, path)
}

// uniListSweep releases a high-priority adversary at every slice of a
// victim's list operations, for several adversary operations; with -pairs it
// additionally nests a second, higher-priority adversary.
func uniListSweep(maxSlice int64, pairs bool) (int, error) {
	type advOp struct {
		name string
		run  func(l *unilist.List, e *sched.Env) bool
	}
	advs := []advOp{
		{"del10", func(l *unilist.List, e *sched.Env) bool { return l.Delete(e, 10) }},
		{"ins10", func(l *unilist.List, e *sched.Env) bool { return l.Insert(e, 10, 9) }},
		{"ins7", func(l *unilist.List, e *sched.Env) bool { return l.Insert(e, 7, 9) }},
		{"del15", func(l *unilist.List, e *sched.Env) bool { return l.Delete(e, 15) }},
		{"sch10", func(l *unilist.List, e *sched.Env) bool { return l.Search(e, 10) }},
	}
	n := 0
	for _, adv := range advs {
		for k := int64(0); k < maxSlice; k++ {
			secondaries := []int64{-1}
			if pairs {
				secondaries = nil
				for j := k + 1; j < k+20; j += 3 {
					secondaries = append(secondaries, j)
				}
			}
			for _, k2 := range secondaries {
				s := newSim(1 << 14)
				ar, err := arena.New(s.Mem(), 32, 3)
				if err != nil {
					return n, err
				}
				l, err := unilist.New(s.Mem(), ar, 3)
				if err != nil {
					return n, err
				}
				if err := l.SeedAscending([]uint64{5, 15}); err != nil {
					return n, err
				}
				ar.Freeze()
				chk := check.NewUniListChecker(l, s.Mem(), 3)
				s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
					chk.EndOp(0, l.Insert(e, 10, 1))
					chk.EndOp(0, l.Delete(e, 5))
				}})
				adv := adv
				s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: k, Body: func(e *sched.Env) {
					chk.EndOp(1, adv.run(l, e))
				}})
				if k2 >= 0 {
					s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: k2, Body: func(e *sched.Env) {
						chk.EndOp(2, l.Insert(e, 12, 0))
					}})
				}
				if err := s.Run(); err != nil {
					return n, dumpFailure(s, fmt.Errorf("%s k=%d k2=%d: %w", adv.name, k, k2, err))
				}
				chk.Finish()
				if err := chk.Err(); err != nil {
					return n, dumpFailure(s, fmt.Errorf("%s k=%d k2=%d: %w", adv.name, k, k2, err))
				}
				n++
			}
		}
	}
	return n, nil
}

// uniMWCASSweep releases an interfering MWCAS at every slice of a victim
// 3-word MWCAS, checking linearizability of both.
func uniMWCASSweep(maxSlice int64) (int, error) {
	n := 0
	for k := int64(0); k < maxSlice; k++ {
		for variant := 0; variant < 3; variant++ {
			s := newSim(1 << 14)
			obj, err := unimwcas.New(s.Mem(), 4, 4)
			if err != nil {
				return n, err
			}
			base := s.Mem().MustAlloc("app", 3)
			words := []shmem.Addr{base, base + 1, base + 2}
			for i, v := range []uint32{12, 22, 8} {
				obj.InitWord(words[i], v)
			}
			chk := check.NewMWCASChecker(obj, s.Mem(), words)
			s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				chk.BeginOp(0, words, []uint32{12, 22, 8}, []uint32{5, 10, 17})
				chk.EndOp(0, obj.MWCAS(e, words, []uint32{12, 22, 8}, []uint32{5, 10, 17}))
				// Reads after the operation must also linearize.
				for _, w := range words {
					rw := chk.BeginRead(w)
					chk.EndRead(rw, obj.Read(e, w))
				}
			}})
			variant := variant
			s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 9, Slot: 1, AfterSlices: k, Body: func(e *sched.Env) {
				var a []shmem.Addr
				var old, val []uint32
				switch variant {
				case 0: // overlap one word
					a, old, val = words[2:3], []uint32{8}, []uint32{56}
				case 1: // overlap all words (stale olds: should fail or win)
					a, old, val = words, []uint32{12, 22, 8}, []uint32{1, 2, 3}
				default: // read-modify on the middle word
					a, old, val = words[1:2], []uint32{22}, []uint32{23}
				}
				chk.BeginOp(1, a, old, val)
				chk.EndOp(1, obj.MWCAS(e, a, old, val))
			}})
			if err := s.Run(); err != nil {
				return n, dumpFailure(s, fmt.Errorf("k=%d variant=%d: %w", k, variant, err))
			}
			if err := chk.Err(); err != nil {
				return n, dumpFailure(s, fmt.Errorf("k=%d variant=%d: %w", k, variant, err))
			}
			n++
		}
	}
	return n, nil
}

// multiListSweep drives the checked multiprocessor workload across many
// seeds (each seed is a distinct schedule of cross-processor interleavings
// and preemptions).
func multiListSweep(maxSlice int64) (int, error) {
	n := 0
	for seed := int64(0); seed < maxSlice; seed++ {
		res, err := workload.RunList(workload.ListConfig{
			Kind: workload.WaitFree, Processors: 3, BurstsPerCPU: 2, BurstOps: 4,
			TotalOps: 120, ListSize: 16, Seed: seed, Check: true,
			Granularity: sched.Fine,
		})
		if err != nil {
			return n, fmt.Errorf("seed %d: %w", seed, err)
		}
		if res.Livelocked {
			return n, fmt.Errorf("seed %d: livelocked", seed)
		}
		n++
	}
	return n, nil
}

// uniQueueSweep releases adversaries at every slice of a victim's queue
// operations, checked against a FIFO model.
func uniQueueSweep(maxSlice int64) (int, error) {
	n := 0
	for k := int64(0); k < maxSlice; k++ {
		s := newSim(1 << 14)
		ar, err := arena.New(s.Mem(), 32, 3)
		if err != nil {
			return n, err
		}
		q, err := uniqueue.New(s.Mem(), ar, 3)
		if err != nil {
			return n, err
		}
		ar.Freeze()
		var model []uint64
		chk := check.NewSerialChecker(s.Mem(), q.Engine().AnnPidAddr(), 3,
			func(p int) bool {
				node, op := q.PeekPar(p)
				if op == 1 {
					model = append(model, s.Mem().Peek(ar.ValAddr(arena.Ref(node))))
					return true
				}
				if len(model) == 0 {
					return false
				}
				model = model[1:]
				return true
			},
			func() error { return check.SliceEqual(q.Snapshot(), model) })
		s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
			q.Enqueue(e, 100)
			chk.EndOp(0, true)
			q.Enqueue(e, 200)
			chk.EndOp(0, true)
			_, ok := q.Dequeue(e)
			chk.EndOp(0, ok)
		}})
		s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: k, Body: func(e *sched.Env) {
			q.Enqueue(e, 300)
			chk.EndOp(1, true)
			_, ok := q.Dequeue(e)
			chk.EndOp(1, ok)
		}})
		s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: k + 9, Body: func(e *sched.Env) {
			_, ok := q.Dequeue(e)
			chk.EndOp(2, ok)
		}})
		if err := s.Run(); err != nil {
			return n, dumpFailure(s, fmt.Errorf("k=%d: %w", k, err))
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			return n, dumpFailure(s, fmt.Errorf("k=%d: %w", k, err))
		}
		n++
	}
	return n, nil
}

// uniStackSweep is the LIFO analog of uniQueueSweep.
func uniStackSweep(maxSlice int64) (int, error) {
	n := 0
	for k := int64(0); k < maxSlice; k++ {
		s := newSim(1 << 14)
		ar, err := arena.New(s.Mem(), 32, 3)
		if err != nil {
			return n, err
		}
		st, err := unistack.New(s.Mem(), ar, 3)
		if err != nil {
			return n, err
		}
		ar.Freeze()
		var model []uint64 // model[0] = top
		chk := check.NewSerialChecker(s.Mem(), st.Engine().AnnPidAddr(), 3,
			func(p int) bool {
				node, op := st.PeekPar(p)
				if op == 1 {
					model = append([]uint64{s.Mem().Peek(ar.ValAddr(arena.Ref(node)))}, model...)
					return true
				}
				if len(model) == 0 {
					return false
				}
				model = model[1:]
				return true
			},
			func() error { return check.SliceEqual(st.Snapshot(), model) })
		s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
			st.Push(e, 100)
			chk.EndOp(0, true)
			st.Push(e, 200)
			chk.EndOp(0, true)
			_, ok := st.Pop(e)
			chk.EndOp(0, ok)
		}})
		s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: k, Body: func(e *sched.Env) {
			st.Push(e, 300)
			chk.EndOp(1, true)
			_, ok := st.Pop(e)
			chk.EndOp(1, ok)
		}})
		s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: k + 7, Body: func(e *sched.Env) {
			_, ok := st.Pop(e)
			chk.EndOp(2, ok)
		}})
		if err := s.Run(); err != nil {
			return n, dumpFailure(s, fmt.Errorf("k=%d: %w", k, err))
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			return n, dumpFailure(s, fmt.Errorf("k=%d: %w", k, err))
		}
		n++
	}
	return n, nil
}

// uniHashSweep drives nested two-adversary release-point sweeps over the
// uniprocessor hash table via the explore library, with colliding and
// non-colliding buckets, checked against a set model.
func uniHashSweep(maxSlice int64, keepGoing bool) (int, error) {
	return explore.Sweep(explore.Config{Adversaries: 2, Max: maxSlice, Stride: 2, Gap: 8, KeepGoing: keepGoing},
		func(rel []int64) error {
			s := newSim(1 << 14)
			ar, err := arena.New(s.Mem(), 48, 3)
			if err != nil {
				return err
			}
			tb, err := unihash.New(s.Mem(), ar, 3, 4)
			if err != nil {
				return err
			}
			if err := tb.SeedKeys([]uint64{5, 9}); err != nil {
				return err
			}
			ar.Freeze()
			model := map[uint64]bool{5: true, 9: true}
			chk := check.NewSerialChecker(s.Mem(), tb.Engine().AnnPidAddr(), 3,
				func(p int) bool {
					_, key, op := tb.PeekPar(p)
					switch op {
					case 1:
						if model[key] {
							return false
						}
						model[key] = true
						return true
					case 2:
						if model[key] {
							delete(model, key)
							return true
						}
						return false
					default:
						return model[key]
					}
				},
				func() error {
					want := make([]uint64, 0, len(model))
					for k := range model {
						want = append(want, k)
					}
					sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
					return check.SliceEqual(tb.Snapshot(), want)
				})
			s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				chk.EndOp(0, tb.Insert(e, 13, 1)) // collides with 5, 9
				chk.EndOp(0, tb.Delete(e, 5))
			}})
			s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel[0], Body: func(e *sched.Env) {
				chk.EndOp(1, tb.Insert(e, 17, 2)) // same bucket
				chk.EndOp(1, tb.Delete(e, 13))
			}})
			s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel[1], Body: func(e *sched.Env) {
				chk.EndOp(2, tb.Search(e, 9))
				chk.EndOp(2, tb.Insert(e, 10, 3)) // different bucket
			}})
			if err := s.Run(); err != nil {
				return dumpFailure(s, err)
			}
			chk.Finish()
			return dumpFailure(s, chk.Err())
		})
}

// Command wfcheck exhaustively explores release-point schedules of small
// scenarios against the linearizability checkers.
//
// The scheduler's deterministic slice-triggered releases make "preempt the
// victim at exactly its k-th step" a first-class scheduling handle; wfcheck
// sweeps pairs of release points across entire operations, checking every
// resulting schedule. This covers, exhaustively at small scale, the
// preemption-window arguments the paper makes in prose (e.g. "if p is
// preempted between lines 37 and 48...").
//
// The object suites come from internal/registry: every core object (all ten)
// is swept through one generic driver, so registering a new object adds a
// suite with no wfcheck change. The extra "workload" suite drives the
// checked multiprocessor list workload across seeds.
//
// A second mode, -linz, trades exhaustiveness for randomized breadth: seeded
// adversary schedules (internal/linz/adversary) drive every registered
// object — baselines included — and the recorded histories are judged by
// the black-box linearizability engine (internal/linz), which needs nothing
// from the object but its sequential model. A failing (object, seed,
// strategy) triple is a perfect reproducer, replayable with wftrace -linz.
//
// Two scale levers ride on the sweep mode. -prune turns on quiescence
// pruning (explore.SweepPruned): schedules provably equivalent to an
// already-explored one are skipped and reported as a pruned count — the
// failure set is provably identical to the full sweep's (DESIGN.md §15).
// -swarm -budget N replaces exhaustion with seeded stratified sampling
// over the (release-vector × policy × arrival) grid, splitting the budget
// across one stratum per (object, policy, arrival) triple; a single
// invocation scales to millions of checked schedules (see swarm.go).
//
// -cover adds schedule-space coverage to any mode: every executed
// schedule is signed (internal/cover) and the suite lines are followed by
// "cover" lines reporting distinct-behavior counts and the saturation
// curve. Signatures are collected per suite and folded post-merge in suite
// order, so coverage output is byte-identical at any -par setting.
// -progress streams live schedules/sec, coverage-so-far and an ETA to
// stderr (wall-clock, deliberately outside the byte-identity contract).
//
// Usage:
//
//	wfcheck                  # all suites, default depth
//	wfcheck -suite uniqueue  # one object
//	wfcheck -max 200         # widen the release-point range
//	wfcheck -par 0           # sweep objects in parallel on all cores
//	wfcheck -cover -progress # coverage accounting + live progress
//	wfcheck -prune           # skip provably-equivalent schedules
//	wfcheck -swarm -budget 1000000 -cover -par 0  # sample a million schedules
//	wfcheck -linz -rand 200  # 200 randomized schedules per object, black-box checked
//	wfcheck -policy fcfs -arrival bursty   # sweep under another discipline/arrival shape
//	wfcheck -linz -policy reverse-priority # randomized schedules under the stressor policy
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/arrival"
	"repro/internal/cover"
	"repro/internal/explore"
	"repro/internal/harness"
	"repro/internal/linz"
	"repro/internal/linz/adversary"
	"repro/internal/prof"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	suite := flag.String("suite", "all", "suite: any core registry object, workload, or all")
	maxSlice := flag.Int64("max", 120, "largest release point swept")
	keepGoing := flag.Bool("keepgoing", false, "explore past failures and report every failing vector")
	prune := flag.Bool("prune", false, "skip schedules provably equivalent to an explored one (quiescence pruning)")
	swarm := flag.Bool("swarm", false, "stratified sampling over the (release × policy × arrival) space instead of the exhaustive sweep")
	budget := flag.Int("budget", 100_000, "total schedules sampled across all strata in -swarm mode")
	policy := flag.String("policy", "", "scheduling policy for every schedule (default: the paper's strict-priority model)")
	arrivalName := flag.String("arrival", "", "arrival trace shaping the base workers' releases (default: immediate)")
	par := flag.Int("par", 1, "workers for sweeping suites in parallel (0 = all cores); output is identical at any setting")
	traceFailures := flag.Bool("trace", false, "record traces and write wfcheck_fail.trace.json for a failing schedule")
	coverage := flag.Bool("cover", false, "sign every schedule and report distinct-behavior coverage per suite")
	progress := flag.Bool("progress", false, "stream live progress (schedules/sec, coverage, ETA) to stderr")
	linzMode := flag.Bool("linz", false, "black-box mode: randomized adversary schedules judged by the history-based engine")
	randN := flag.Int("rand", 200, "randomized schedules per object in -linz mode (seeds 1..N, strategies alternating)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a block (contention) profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile, *blockprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfcheck: %v\n", err)
		os.Exit(1)
	}
	// The stop function is idempotent: deferring it covers error panics,
	// and the exit wrapper still flushes ahead of os.Exit, which skips
	// deferred calls.
	defer stopProf()
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	// Resolve the policy and arrival names up front so a typo fails fast
	// with the known template lists, before any schedule runs.
	if _, err := sched.PolicyByName(*policy); err != nil {
		fmt.Fprintf(os.Stderr, "wfcheck: %v\n", err)
		exit(1)
	}
	if *arrivalName != "" {
		if _, err := arrival.ByName(*arrivalName); err != nil {
			fmt.Fprintf(os.Stderr, "wfcheck: %v\n", err)
			exit(1)
		}
	}

	if *linzMode {
		if *arrivalName != "" {
			fmt.Fprintf(os.Stderr, "wfcheck: -arrival shapes the sweep cast; -linz generates its own randomized releases\n")
			exit(1)
		}
		if *swarm {
			fmt.Fprintf(os.Stderr, "wfcheck: -swarm samples the sweep space; -linz generates its own randomized schedules\n")
			exit(1)
		}
		exit(linzMain(*suite, *randN, *par, *coverage, *progress, *policy))
	}

	if *swarm {
		// The swarm enumerates the policy and arrival axes itself; a fixed
		// -policy/-arrival would silently shadow most of its grid.
		if *policy != "" || *arrivalName != "" {
			fmt.Fprintf(os.Stderr, "wfcheck: -swarm spans every policy and arrival template; -policy/-arrival apply to the exhaustive sweep\n")
			exit(1)
		}
		objects := registry.CoreNames()
		if *suite != "all" {
			ok := false
			for _, n := range objects {
				if n == *suite {
					ok = true
				}
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "wfcheck: -swarm covers the core objects (have %v), not %q\n", objects, *suite)
				exit(1)
			}
			objects = []string{*suite}
		}
		exit(swarmMain(objects, *budget, *par, *maxSlice, *coverage, *progress))
	}

	offDefault := *policy != "" || *arrivalName != ""
	names := append(registry.CoreNames(), "workload")
	if *suite != "all" {
		found := false
		for _, n := range names {
			if n == *suite {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "wfcheck: unknown suite %q (have %v)\n", *suite, names)
			exit(1)
		}
		if *suite == "workload" && offDefault {
			fmt.Fprintf(os.Stderr, "wfcheck: the workload suite drives its own scheduler config; -policy/-arrival apply to the registry sweeps only\n")
			exit(1)
		}
		names = []string{*suite}
	} else if offDefault {
		// The workload suite builds its own simulator configuration; under
		// a non-default policy or arrival trace it is skipped (loudly, not
		// silently passed over).
		names = names[:len(names)-1]
		fmt.Fprintf(os.Stderr, "wfcheck: skipping workload suite under -policy/-arrival (registry sweeps only)\n")
	}

	var meter *cover.Meter
	if *progress {
		meter = cover.NewMeter(os.Stderr, "wfcheck", sweepTotal(names, *maxSlice), 0)
	}

	type outcome struct {
		n      int
		pruned int
		sigs   []uint64
		err    error
	}
	observing := *coverage || *progress
	// Suites are independent simulations; fan them out and report in name
	// order so -par only changes wall-clock, never output. Signatures are
	// collected per suite (enumeration order within each) and folded after
	// the merge, which keeps the cover lines inside the same contract.
	results, _ := harness.Map(len(names), harness.Options{Workers: *par}, func(i int) (outcome, error) {
		var o outcome
		observe := func(sig uint64) {
			if *coverage {
				o.sigs = append(o.sigs, sig)
			}
			meter.Note(sig)
			meter.Done()
		}
		if names[i] == "workload" {
			var obs func(uint64)
			if observing {
				obs = observe
			}
			o.n, o.err = workloadSweep(*maxSlice, obs)
			return o, nil
		}
		cfg := registry.SweepConfig{Max: *maxSlice, KeepGoing: *keepGoing, Trace: *traceFailures,
			Policy: *policy, Arrival: *arrivalName, Prune: *prune}
		if observing {
			cfg.Observe = func(rel []int64, sig uint64) { observe(sig) }
		}
		d := registry.Lookup0(names[i])
		si, err := d.SweepStats(cfg)
		o.n, o.pruned, o.err = si.Explored, si.Pruned, err
		return o, nil
	})
	meter.Finish()

	total, totalPruned := 0, 0
	failed := false
	acc := cover.NewAccumulator()
	for i, o := range results {
		if o.err != nil {
			var fs explore.Failures
			if errors.As(o.err, &fs) {
				// KeepGoing sweep: every failing vector is a reproducer;
				// report them all and keep going.
				fmt.Fprintf(os.Stderr, "wfcheck: %s: %d schedules explored: %v\n", names[i], o.n, o.err)
				failed = true
				continue
			}
			fmt.Fprintf(os.Stderr, "wfcheck: %s: %v\n", names[i], o.err)
			exit(1)
		}
		if *prune {
			// The pruned count rides along only when asked for, so the
			// default output (and its committed golden) is untouched.
			fmt.Printf("%-10s %6d schedules explored (%d pruned), 0 violations\n", names[i], o.n, o.pruned)
		} else {
			fmt.Printf("%-10s %6d schedules explored, 0 violations\n", names[i], o.n)
		}
		if *coverage {
			suiteAcc := cover.NewAccumulator()
			for _, sig := range o.sigs {
				suiteAcc.Add(sig)
				acc.Add(sig)
			}
			printCover(names[i], suiteAcc, false)
		}
		total += o.n
		totalPruned += o.pruned
	}
	if *prune {
		fmt.Printf("%-10s %6d schedules total (%d pruned)\n", "all", total, totalPruned)
	} else {
		fmt.Printf("%-10s %6d schedules total\n", "all", total)
	}
	if *coverage {
		printCover("all", acc, true)
	}
	if failed {
		exit(1)
	}
}

// sweepTotal prices the whole campaign up front (the progress meter's ETA
// denominator): the exact per-object schedule counts via SweepSpace plus
// one workload run per seed.
func sweepTotal(names []string, maxSlice int64) int {
	total := 0
	for _, name := range names {
		if name == "workload" {
			total += int(maxSlice)
			continue
		}
		n, err := registry.Lookup0(name).SweepSpace(registry.SweepConfig{Max: maxSlice})
		if err != nil {
			return 0 // unpriceable: the meter just drops the ETA
		}
		total += n
	}
	return total
}

// printCover renders one suite's coverage line; the saturation curve rides
// along on the aggregate line only (per-suite curves would be noise).
func printCover(name string, a *cover.Accumulator, curve bool) {
	st := a.Stats()
	if st.Schedules == 0 {
		fmt.Printf("%-10s cover  no schedules signed\n", name)
		return
	}
	fmt.Printf("%-10s cover  %6d distinct behaviors / %d schedules (%.1f%%)\n",
		name, st.Distinct, st.Schedules, 100*st.Coverage)
	if !curve {
		return
	}
	fmt.Printf("%-10s curve ", name)
	for _, p := range st.Saturation {
		fmt.Printf(" %d:%d", p.Schedules, p.Distinct)
	}
	fmt.Println()
}

// linzMain is the -linz mode: randN seeded adversary schedules per object
// (seeds 1..N, strategies alternating uniform/pct), every recorded history
// judged by the black-box engine. Covers all registered objects, baselines
// included — black-box checking needs only the sequential model. With
// coverage on, every run is signed by its interleaving shape (Run.Sig).
func linzMain(suite string, randN, par int, coverage, progress bool, policy string) int {
	names := registry.Names()
	if suite != "all" {
		if _, err := registry.Lookup(suite); err != nil {
			fmt.Fprintf(os.Stderr, "wfcheck: %v\n", err)
			return 1
		}
		names = []string{suite}
	}

	var meter *cover.Meter
	if progress {
		meter = cover.NewMeter(os.Stderr, "wfcheck -linz", len(names)*randN, 0)
	}

	type outcome struct {
		runs, ops, states int
		sigs              []uint64
		err               error
	}
	results, _ := harness.Map(len(names), harness.Options{Workers: par}, func(i int) (outcome, error) {
		var o outcome
		for n := 0; n < randN; n++ {
			strat := adversary.Uniform
			if n%2 == 1 {
				strat = adversary.PCT
			}
			cfg := adversary.Config{Object: names[i], Seed: int64(n + 1), Strategy: strat, Policy: policy}
			r, err := adversary.Execute(cfg)
			if err != nil {
				o.err = err
				return o, nil
			}
			out, err := r.Check(linz.Options{})
			if err != nil {
				o.err = fmt.Errorf("%s seed=%d strategy=%s: %w", names[i], cfg.Seed, strat, err)
				return o, nil
			}
			if !out.OK {
				o.err = fmt.Errorf("%s seed=%d strategy=%s: NOT linearizable\n%s\n%s",
					names[i], cfg.Seed, strat, r.History.Text(), out.Counterexample.Tree(r.History))
				return o, nil
			}
			if coverage || progress {
				sig := r.Sig()
				if coverage {
					o.sigs = append(o.sigs, sig)
				}
				meter.Note(sig)
			}
			meter.Done()
			o.runs++
			o.ops += len(r.History.Ops)
			o.states += out.States
			r.Close()
		}
		return o, nil
	})
	meter.Finish()

	total := 0
	acc := cover.NewAccumulator()
	for i, o := range results {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "wfcheck: %v\n", o.err)
			return 1
		}
		fmt.Printf("%-10s %6d schedules, %6d ops, %8d states, linearizable\n", names[i], o.runs, o.ops, o.states)
		if coverage {
			suiteAcc := cover.NewAccumulator()
			for _, sig := range o.sigs {
				suiteAcc.Add(sig)
				acc.Add(sig)
			}
			printCover(names[i], suiteAcc, false)
		}
		total += o.runs
	}
	fmt.Printf("%-10s %6d randomized schedules total\n", "all", total)
	if coverage {
		printCover("all", acc, true)
	}
	return 0
}

// workloadSweep drives the checked multiprocessor workload across many
// seeds (each seed is a distinct schedule of cross-processor interleavings
// and preemptions). observe, when non-nil, receives one behavioral
// signature per seed.
func workloadSweep(maxSlice int64, observe func(sig uint64)) (int, error) {
	n := 0
	for seed := int64(0); seed < maxSlice; seed++ {
		res, err := workload.RunList(workload.ListConfig{
			Kind: workload.WaitFree, Processors: 3, BurstsPerCPU: 2, BurstOps: 4,
			TotalOps: 120, ListSize: 16, Seed: seed, Check: true,
			Granularity: sched.Fine,
		})
		if err != nil {
			return n, fmt.Errorf("seed %d: %w", seed, err)
		}
		if res.Livelocked {
			return n, fmt.Errorf("seed %d: livelocked", seed)
		}
		if observe != nil {
			h := cover.NewHasher()
			h.String("workload")
			h.Word(uint64(res.Ops))
			h.Word(uint64(res.Makespan))
			h.Word(uint64(res.WorstOp))
			h.Word(uint64(res.Retries))
			h.Word(uint64(res.Final))
			observe(h.Sum())
		}
		n++
	}
	return n, nil
}

package main

// Swarm mode: -swarm -budget N does seeded stratified sampling over the
// (release-vector × policy × arrival) space. The budget is split evenly
// across strata — one stratum per (core object, policy template, arrival
// template) triple, the remainder going one schedule each to the earliest
// strata — and every stratum samples its release vectors from its own
// deterministic seed. A stratum's outcome is therefore a pure function of
// the invocation's flags, independent of scheduling order, so the merged
// report keeps wfcheck's byte-identity contract at any -par: strata fan out
// over internal/harness, results merge in strata order, and signatures fold
// post-merge exactly as the sweep mode's do.
//
// Unlike the exhaustive sweep, the swarm's job is volume: millions of
// checked schedules in one invocation, with -cover's saturation curve
// reporting how much behavioral novelty the extra volume still buys.

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/arrival"
	"repro/internal/cover"
	"repro/internal/explore"
	"repro/internal/harness"
	"repro/internal/registry"
	"repro/internal/sched"
)

// stratum is one cell of the sampling grid.
type stratum struct {
	object  string
	policy  string // "" = the paper's strict-priority default
	arrival string // "" = immediate release
	seed    int64
	n       int // schedules allotted from the budget
}

// swarmPolicies is the policy axis: the default discipline plus every
// registered template except "priority", which names the same discipline as
// the default and would sample the stratum twice under a different label.
func swarmPolicies() []string {
	out := []string{""}
	for _, p := range sched.PolicyNames() {
		if p != "priority" {
			out = append(out, p)
		}
	}
	return out
}

// swarmStrata builds the grid in its canonical order — object-major, then
// policy, then arrival — and splits the budget. Strata beyond the budget
// get zero schedules and are dropped, so tiny smoke budgets still touch the
// earliest strata deterministically.
func swarmStrata(objects []string, budget int) []stratum {
	policies := swarmPolicies()
	arrivals := append([]string{""}, arrival.Names()...)
	grid := make([]stratum, 0, len(objects)*len(policies)*len(arrivals))
	for _, obj := range objects {
		for _, pol := range policies {
			for _, arr := range arrivals {
				grid = append(grid, stratum{object: obj, policy: pol, arrival: arr,
					seed: int64(1 + len(grid))})
			}
		}
	}
	per, rem := budget/len(grid), budget%len(grid)
	out := grid[:0]
	for i := range grid {
		grid[i].n = per
		if i < rem {
			grid[i].n++
		}
		if grid[i].n > 0 {
			out = append(out, grid[i])
		}
	}
	return out
}

// swarmMain runs the stratified sampling campaign and renders the merged
// report. Returns the process exit code.
func swarmMain(objects []string, budget, par int, maxSlice int64, coverage, progress bool) int {
	if budget < 1 {
		fmt.Fprintf(os.Stderr, "wfcheck: -swarm needs a positive -budget\n")
		return 1
	}
	strata := swarmStrata(objects, budget)
	policies, arrivals := swarmPolicies(), append([]string{""}, arrival.Names()...)
	fmt.Printf("%-10s %8d schedules over %d strata (%d objects × %d policies × %d arrivals), max %d\n",
		"swarm", budget, len(strata), len(objects), len(policies), len(arrivals), maxSlice)

	var meter *cover.Meter
	if progress {
		meter = cover.NewMeter(os.Stderr, "wfcheck -swarm", budget, 0)
	}
	observing := coverage || progress

	type outcome struct {
		n     int
		sigs  []uint64
		fails explore.Failures
	}
	results, err := harness.Map(len(strata), harness.Options{Workers: par}, func(i int) (outcome, error) {
		st := strata[i]
		var o outcome
		cfg := registry.SwarmConfig{
			Schedules: st.n, Seed: st.seed, Max: maxSlice,
			Policy: st.policy, Arrival: st.arrival,
		}
		if observing {
			cfg.Observe = func(rel []int64, sig uint64) {
				if coverage {
					o.sigs = append(o.sigs, sig)
				}
				meter.Note(sig)
				meter.Done()
			}
		}
		n, err := registry.Lookup0(st.object).Swarm(cfg)
		o.n = n
		if err != nil {
			var fs explore.Failures
			if !errors.As(err, &fs) {
				return o, fmt.Errorf("%s policy=%q arrival=%q seed=%d: %w", st.object, st.policy, st.arrival, st.seed, err)
			}
			o.fails = fs
			// Failed schedules never reach Observe; keep the meter's
			// progress numerator honest anyway.
			for range fs {
				meter.Done()
			}
		}
		return o, nil
	})
	meter.Finish()
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfcheck: %v\n", err)
		return 1
	}

	// Merge in strata order: per-object totals (strata are object-major, so
	// each object's cells are contiguous), failures to stderr as perfect
	// reproducers, signatures folded per object and into the aggregate.
	total, violations := 0, 0
	acc := cover.NewAccumulator()
	objAcc := cover.NewAccumulator()
	objN, objViol := 0, 0
	flush := func(object string) {
		fmt.Printf("%-10s %8d schedules sampled, %d violations\n", object, objN, objViol)
		if coverage {
			printCover(object, objAcc, false)
		}
		objAcc = cover.NewAccumulator()
		objN, objViol = 0, 0
	}
	for i, o := range results {
		st := strata[i]
		if i > 0 && strata[i-1].object != st.object {
			flush(strata[i-1].object)
		}
		total += o.n
		objN += o.n
		violations += len(o.fails)
		objViol += len(o.fails)
		for _, sig := range o.sigs {
			objAcc.Add(sig)
			acc.Add(sig)
		}
		for _, f := range o.fails {
			fmt.Fprintf(os.Stderr, "wfcheck: swarm %s policy=%q arrival=%q seed=%d rel=%v: %v\n",
				st.object, st.policy, st.arrival, st.seed, f.Vector, f.Err)
		}
	}
	flush(strata[len(strata)-1].object)
	fmt.Printf("%-10s %8d schedules total, %d violations\n", "all", total, violations)
	if coverage {
		printCover("all", acc, true)
	}
	if violations > 0 {
		return 1
	}
	return 0
}

// Command wftrace runs a named scenario and inspects its causal structure:
// operation spans (invoke → announce → linearization → response), scheduler
// slices, helping edges and CAS-failure edges, reconstructed from the run's
// event log by internal/tracex.
//
// Usage:
//
//	wftrace -object uniqueue -seed 1                  # span report on stdout
//	wftrace -object unilist -pattern stagger -export perfetto -o fig2.trace.json
//	wftrace -object multiqueue -export text           # deterministic text form
//	wftrace -linz -object uniqueue -seed 7 -strategy pct  # replay an adversary schedule
//
// The -linz mode replays one randomized adversary schedule (the same
// (object, seed, strategy) triple wfcheck -linz reports on failure),
// prints the recorded black-box history, the engine's verdict, and — when
// the history is not linearizable — the counterexample window as a span
// tree. -export still works: the exported span model is the adversary
// run's trace.
//
// The -native mode runs the object on the native backend (real goroutines,
// internal/native) with the flight recorder on, drains the per-goroutine
// rings into the same span model, and exports it — so a real-hardware run
// is inspectable with the same tooling as a simulated one. Times are
// wall-clock nanoseconds there, virtual units everywhere else.
//
// The perfetto export is Chrome trace-event JSON: open it at ui.perfetto.dev
// or chrome://tracing.
//
//	wftrace -native -object uniqueue -procs 4 -ops 10 -export perfetto
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arrival"
	"repro/internal/linz"
	"repro/internal/linz/adversary"
	"repro/internal/registry"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/tracex"
)

func main() {
	object := flag.String("object", "unilist", "object: "+strings.Join(scenario.Objects(), "|"))
	seed := flag.Int64("seed", 1, "simulation seed")
	pat := flag.String("pattern", "stagger", "preemption pattern: "+strings.Join(scenario.Patterns(), "|"))
	policy := flag.String("policy", "", "scheduling policy (default: the paper's strict-priority model)")
	arrivalName := flag.String("arrival", "", "arrival trace for the adversary/burst releases: "+strings.Join(arrival.Names(), "|")+" (default: -pattern)")
	export := flag.String("export", "", "also export the span model: perfetto|text")
	out := flag.String("o", "", "export path (default <object>.trace.json or <object>.trace.txt)")
	report := flag.Bool("report", false, "print the run report after the span summary")
	linzMode := flag.Bool("linz", false, "replay one randomized adversary schedule and print its black-box history and verdict")
	strategy := flag.String("strategy", "uniform", "adversary strategy in -linz mode: uniform|pct")
	nativeMode := flag.Bool("native", false, "record a native-backend run (flight recorder) instead of a simulation")
	procs := flag.Int("procs", 4, "goroutines in -native mode")
	ops := flag.Int("ops", 10, "operations per goroutine in -native mode")
	flag.Parse()

	var err error
	switch {
	case *linzMode:
		if *arrivalName != "" {
			err = fmt.Errorf("-arrival shapes scenario releases; -linz generates its own randomized schedule")
		} else {
			err = runLinz(*object, *seed, *strategy, *policy, *export, *out)
		}
	case *nativeMode:
		if *policy != "" || *arrivalName != "" {
			err = fmt.Errorf("-policy/-arrival configure the simulator; the native backend runs under the host scheduler")
		} else {
			err = runNative(*object, *seed, *procs, *ops, *export, *out, *report)
		}
	default:
		err = run(*object, *seed, *pat, *policy, *arrivalName, *export, *out, *report)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wftrace: %v\n", err)
		os.Exit(1)
	}
}

// runNative executes one observed native run and exports the drained
// flight recording through the standard span pipeline.
func runNative(object string, seed int64, procs, ops int, export, out string, report bool) error {
	d, err := registry.Lookup(object)
	if err != nil {
		return err
	}
	cfg := d.StressConfig(procs)
	cfg.Check = false // white-box checkers are simulator-only
	if d.Name != "herlihy" {
		cfg.Capacity = 0 // size node pools to the op budget
	}
	res, err := d.RunNative(registry.NativeRun{
		Procs: procs, Ops: ops, Seed: seed, Cfg: cfg,
		Obs: true, Recorder: true,
	})
	if err != nil {
		return err
	}
	t := tracex.Build(res.TraceLog)

	fmt.Printf("%s seed=%d native procs=%d ops=%d: %d events (%d dropped), %d slices, %d operations, %v\n",
		object, seed, procs, ops, res.TraceLog.Len(), res.DroppedEvents,
		len(t.SliceSpans()), len(t.OpSpans()), res.Elapsed)
	fmt.Println()
	printOps(t)
	printEdges(t)

	if report {
		fmt.Println()
		if err := res.Report.WriteText(os.Stdout); err != nil {
			return err
		}
	}

	switch export {
	case "":
		return nil
	case "perfetto":
		b, err := t.Perfetto()
		if err != nil {
			return err
		}
		return write(defaultPath(out, object+".native.trace.json"), b)
	case "text":
		return write(defaultPath(out, object+".native.trace.txt"), []byte(t.Text()))
	default:
		return fmt.Errorf("unknown export format %q (want perfetto or text)", export)
	}
}

// runLinz replays one adversary schedule with tracing on: the reproducer
// path for wfcheck -linz failures.
func runLinz(object string, seed int64, strategy, policy, export, out string) error {
	strat, err := adversary.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	r, err := adversary.Execute(adversary.Config{Object: object, Seed: seed, Strategy: strat, Policy: policy, Trace: true})
	if err != nil {
		return err
	}
	verdict, err := r.Check(linz.Options{})
	if err != nil {
		return err
	}

	fmt.Printf("%s seed=%d strategy=%s%s: %d slices\n\n", object, seed, strat, policySuffix(r.Sim.Policy()), r.Sim.Slices())
	fmt.Print(r.History.Text())
	fmt.Printf("\nverdict: %s\n", verdict.Summary())
	if !verdict.OK {
		fmt.Println()
		fmt.Print(verdict.Counterexample.Tree(r.History))
	}

	t := tracex.Build(r.Sim.Trace())
	switch export {
	case "":
		return nil
	case "perfetto":
		b, err := t.Perfetto()
		if err != nil {
			return err
		}
		return write(defaultPath(out, object+".linz.trace.json"), b)
	case "text":
		return write(defaultPath(out, object+".linz.trace.txt"), []byte(t.Text()))
	default:
		return fmt.Errorf("unknown export format %q (want perfetto or text)", export)
	}
}

func run(object string, seed int64, pat, policy, arrivalName, export, out string, report bool) error {
	s, err := scenario.Run(scenario.Config{Object: object, Seed: seed, Pattern: pat, Arrival: arrivalName, Policy: policy, Trace: true})
	if err != nil {
		return err
	}
	t := tracex.Build(s.Trace())

	// An explicit -arrival supersedes -pattern as the release-shape label;
	// the off-default policy rides as a suffix. Default runs keep the
	// historical header byte-for-byte (the wftrace golden).
	label := pat
	if arrivalName != "" {
		label = arrivalName
	}
	fmt.Printf("%s seed=%d pattern=%s%s: %d events, %d slices, %d operations\n",
		object, seed, label, policySuffix(s.Policy()), s.Trace().Len(), len(t.SliceSpans()), len(t.OpSpans()))
	fmt.Println()
	printOps(t)
	printEdges(t)

	if report {
		fmt.Println()
		if err := s.Report(object).WriteText(os.Stdout); err != nil {
			return err
		}
	}

	switch export {
	case "":
		return nil
	case "perfetto":
		b, err := t.Perfetto()
		if err != nil {
			return err
		}
		return write(defaultPath(out, object+".trace.json"), b)
	case "text":
		return write(defaultPath(out, object+".trace.txt"), []byte(t.Text()))
	default:
		return fmt.Errorf("unknown export format %q (want perfetto or text)", export)
	}
}

// policySuffix renders " policy=<name>" for off-default policies and ""
// for the default, so historical headers stay byte-identical.
func policySuffix(p sched.Policy) string {
	if p == sched.DefaultPolicy() {
		return ""
	}
	return " policy=" + p.Name()
}

func defaultPath(out, fallback string) string {
	if out != "" {
		return out
	}
	return fallback
}

func write(path string, b []byte) error {
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d bytes)\n", path, len(b))
	return nil
}

// printOps renders each operation span as a small tree: its lifecycle
// marks, then its interference breakdown.
func printOps(t *tracex.Trace) {
	fmt.Println("operations:")
	for _, sp := range t.OpSpans() {
		state := ""
		if sp.Open {
			state = "  [never completed]"
		}
		fmt.Printf("  op #%d  %s (slot %d, cpu%d)  t=[%d,%d]%s\n",
			sp.ID, sp.ProcName, sp.Slot, sp.CPU, sp.Start, sp.End, state)
		if sp.Announce != nil {
			fmt.Printf("  ├─ announce   t=%d\n", sp.Announce.Time)
		}
		if sp.Linearize != nil {
			who := "by owner"
			if sp.Linearize.Proc != sp.Proc {
				who = fmt.Sprintf("by helper proc %d", sp.Linearize.Proc)
			}
			fmt.Printf("  ├─ linearize  t=%d  %s (%s)\n", sp.Linearize.Time, sp.LinearizeKey, who)
		}
		fmt.Printf("  └─ interference: %d helps received, %d CAS failures, %d preemptions\n",
			sp.HelpsReceived, sp.CASFails, sp.Preemptions)
	}
}

// printEdges renders the causality edges and the helping-depth summary.
func printEdges(t *tracex.Trace) {
	help, casf := t.HelpEdges(), t.CASFailEdges()
	fmt.Printf("\ncausality: %d help edges, %d casfail edges, longest help chain %d\n",
		len(help), len(casf), t.LongestHelpChain())
	for _, e := range help {
		fmt.Printf("  help    proc %d → proc %d  (span #%d → #%d)  t=%d\n",
			e.FromProc, e.ToProc, e.From, e.To, e.Time)
	}
	for _, e := range casf {
		fmt.Printf("  casfail proc %d → proc %d  (span #%d → #%d)  addr=%d t=%d\n",
			e.FromProc, e.ToProc, e.From, e.To, e.Addr, e.Time)
	}
}

// Command wfsim runs scripted scenarios from the paper and prints their
// scheduling and helping traces.
//
// Usage:
//
//	wfsim -scenario fig2   # Figure 2: incremental helping (p, q, r)
//	wfsim -scenario fig4   # Figure 4: uniprocessor MWCAS interference
//	wfsim -scenario inversion  # spin-lock priority inversion (motivation)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/arena"
	"repro/internal/baseline/locklist"
	"repro/internal/core/unilist"
	"repro/internal/core/unimwcas"
	"repro/internal/sched"
	"repro/internal/shmem"
	"repro/internal/tracex"
)

var (
	csvPath    string
	tracePath  string
	showReport bool
)

func main() {
	scenario := flag.String("scenario", "fig2", "scenario: fig2|fig4|inversion")
	policyName := flag.String("policy", "", "scheduling policy (default: the paper's strict-priority model)")
	flag.StringVar(&csvPath, "csv", "", "also write the trace as CSV to this file")
	flag.StringVar(&tracePath, "trace", "", "also write the span model as Perfetto/Chrome trace-event JSON to this file")
	flag.BoolVar(&showReport, "report", false, "print the run report (step/help/preemption accounting)")
	flag.Parse()
	pol, err := sched.PolicyByName(*policyName)
	if err == nil {
		switch *scenario {
		case "fig2":
			err = fig2(pol)
		case "fig4":
			err = fig4(pol)
		case "inversion":
			err = inversion(pol)
		default:
			err = fmt.Errorf("unknown scenario %q", *scenario)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfsim: %v\n", err)
		os.Exit(1)
	}
}

// fig2 reproduces the paper's Figure 2: process p announces an operation and
// is preempted by q, which starts helping p and is preempted by r; r helps p
// to completion, runs its own operation, and relinquishes to q, which runs
// its own operation and relinquishes to p, which finds its operation done.
func fig2(pol sched.Policy) error {
	fmt.Println("Figure 2 — incremental helping on a priority uniprocessor")
	fmt.Println("p (prio 1) inserts 10; q (prio 2) inserts 20; r (prio 3) inserts 30")
	fmt.Println()
	s := sched.New(sched.Config{Processors: 1, Seed: 1, EnableTrace: true, MemWords: 1 << 12, Policy: pol})
	ar, err := arena.New(s.Mem(), 32, 3)
	if err != nil {
		return err
	}
	l, err := unilist.New(s.Mem(), ar, 3)
	if err != nil {
		return err
	}
	ar.Freeze()
	s.Spawn(sched.JobSpec{Name: "p", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		l.Insert(e, 10, 1)
	}})
	s.Spawn(sched.JobSpec{Name: "q", CPU: 0, Prio: 2, Slot: 1, AfterSlices: 15, Body: func(e *sched.Env) {
		l.Insert(e, 20, 2)
	}})
	s.Spawn(sched.JobSpec{Name: "r", CPU: 0, Prio: 3, Slot: 2, AfterSlices: 28, Body: func(e *sched.Env) {
		l.Insert(e, 30, 3)
	}})
	if err := s.Run(); err != nil {
		return err
	}
	if _, err := s.Trace().WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(s.Trace().Gantt(72))
	fmt.Printf("\nfinal list: %v\n", l.Snapshot())
	if err := dumpReport(s, "fig2"); err != nil {
		return err
	}
	return dumpTrace(s, dumpCSV(s))
}

// dumpReport pretty-prints the run report when -report is given.
func dumpReport(s *sched.Sim, object string) error {
	if !showReport {
		return nil
	}
	fmt.Println()
	return s.Report(object).WriteText(os.Stdout)
}

// dumpCSV writes the trace to the -csv path, if given.
func dumpCSV(s *sched.Sim) error {
	if csvPath == "" || s.Trace() == nil {
		return nil
	}
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := s.Trace().WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	fmt.Printf("trace written to %s\n", csvPath)
	return f.Close()
}

// dumpTrace writes the span model to the -trace path, if given; prior is
// threaded through so callers can chain it after dumpCSV.
func dumpTrace(s *sched.Sim, prior error) error {
	if prior != nil || tracePath == "" || s.Trace() == nil {
		return prior
	}
	b, err := tracex.Build(s.Trace()).Perfetto()
	if err != nil {
		return err
	}
	if err := os.WriteFile(tracePath, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("span trace written to %s\n", tracePath)
	return nil
}

// fig4 reproduces the paper's Figure 4: process 4 performs MWCAS on words
// x, y, z (old/new 12/5, 22/10, 8/17); process 9 interferes on z with new
// value 56, so process 4's operation fails and restores x and y.
func fig4(pol sched.Policy) error {
	fmt.Println("Figure 4 — uniprocessor MWCAS interference (insets (d)/(f))")
	fmt.Println()
	s := sched.New(sched.Config{Processors: 1, Seed: 1, EnableTrace: true, MemWords: 1 << 12, Policy: pol})
	obj, err := unimwcas.New(s.Mem(), 10, 3)
	if err != nil {
		return err
	}
	base := s.Mem().MustAlloc("xyz", 3)
	words := []shmem.Addr{base, base + 1, base + 2}
	for i, v := range []uint32{12, 22, 8} {
		obj.InitWord(words[i], v)
	}
	show := func(when string) {
		fmt.Printf("%-18s x=%-3d y=%-3d z=%-3d Status[4]=%d Status[9]=%d\n", when,
			obj.Val(words[0]), obj.Val(words[1]), obj.Val(words[2]),
			s.Mem().Peek(obj.StatusAddr(4)), s.Mem().Peek(obj.StatusAddr(9)))
	}
	show("initial:")
	var ok4, ok9 bool
	s.Spawn(sched.JobSpec{Name: "proc4", CPU: 0, Prio: 4, Slot: 4, AfterSlices: -1, Body: func(e *sched.Env) {
		ok4 = obj.MWCAS(e, words, []uint32{12, 22, 8}, []uint32{5, 10, 17})
	}})
	s.Spawn(sched.JobSpec{Name: "proc9", CPU: 0, Prio: 9, Slot: 9, AfterSlices: 13, Body: func(e *sched.Env) {
		ok9 = obj.MWCAS(e, []shmem.Addr{words[2]}, []uint32{8}, []uint32{56})
	}})
	if err := s.Run(); err != nil {
		return err
	}
	show("final:")
	fmt.Printf("\nproc4 MWCAS(x,y,z: 12,22,8 -> 5,10,17) = %v (interfered with on z)\n", ok4)
	fmt.Printf("proc9 MWCAS(z: 8 -> 56)               = %v\n", ok9)
	return dumpTrace(s, dumpReport(s, "fig4"))
}

// inversion demonstrates the motivating failure of lock-based objects on a
// priority uniprocessor: the spinning high-priority process livelocks and
// the watchdog fires.
func inversion(pol sched.Policy) error {
	fmt.Println("Priority inversion with a spin-lock list (Section 1 motivation)")
	fmt.Println()
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 12, MaxSteps: 100_000, Policy: pol})
	ar, err := arena.New(s.Mem(), 32, 2)
	if err != nil {
		return err
	}
	l, err := locklist.New(s.Mem(), ar)
	if err != nil {
		return err
	}
	ar.Freeze()
	s.Spawn(sched.JobSpec{Name: "low", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		l.Lock(e)
		for i := 0; i < 100; i++ {
			e.Yield()
		}
		l.Unlock(e)
	}})
	s.Spawn(sched.JobSpec{Name: "high", CPU: 0, Prio: 9, Slot: 1, AfterSlices: 40, Body: func(e *sched.Env) {
		l.Search(e, 1)
	}})
	err = s.Run()
	switch {
	case errors.Is(err, sched.ErrWatchdog):
		fmt.Printf("watchdog fired after %d lock spins: the high-priority process\n", l.Spins)
		fmt.Println("spins forever on a lock held by a process it preempted — unbounded")
		fmt.Println("priority inversion. The wait-free lists complete the same scenario")
		fmt.Println("via helping (run -scenario fig2).")
		return dumpReport(s, "inversion")
	case err != nil:
		return err
	case pol != sched.DefaultPolicy():
		// Under a discipline that never lets the waiter preempt the lock
		// holder, the motivating failure dissolves — worth showing, since
		// it is exactly the scheduling assumption the paper's wait-free
		// constructions are built to survive.
		fmt.Printf("no inversion under policy=%s: the lock holder was never preempted\n", pol.Name())
		fmt.Printf("by the spinning waiter (%d lock spins), so the lock-based list completed.\n", l.Spins)
		fmt.Println("The paper's priority model is what makes spin locks unbounded; rerun")
		fmt.Println("without -policy to see the watchdog fire.")
		return dumpReport(s, "inversion")
	default:
		return fmt.Errorf("expected the watchdog to fire, but the run completed")
	}
}

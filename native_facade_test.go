package waitfree_test

import (
	"sync"
	"testing"

	waitfree "repro"
)

// TestNativeFacadeQueue drives the package-level native quick-start: a
// wait-free queue on real goroutines, with FIFO value conservation as the
// oracle (every enqueued value is unique, so multiset(in) must equal
// multiset(out) + multiset(remaining)).
func TestNativeFacadeQueue(t *testing.T) {
	const procs, perProc = 6, 50
	w := waitfree.NewNativeWorld(1<<16, 1)
	q, err := waitfree.NewUniQueueOn(waitfree.NativeBackend(w), waitfree.QueueConfig{
		Procs: procs, Capacity: procs*perProc + 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	popped := make([][]uint64, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			p := w.NewProc(slot, 0, waitfree.Priority(slot))
			for n := 0; n < perProc; n++ {
				p.Begin()
				if n%2 == 0 {
					q.Enqueue(p, uint64(1000*(slot+1)+n))
				} else if v, ok := q.Dequeue(p); ok {
					popped[slot] = append(popped[slot], v)
				}
				p.End()
			}
		}(i)
	}
	wg.Wait()

	seen := map[uint64]bool{}
	for _, vs := range popped {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
		}
	}
	// The run is quiescent; drain from slot 0 (slots index the announce
	// structures, so they must stay within Procs).
	remaining := 0
	p := w.NewProc(0, 0, 0)
	for {
		p.Begin()
		v, ok := q.Dequeue(p)
		p.End()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d both dequeued and remaining", v)
		}
		seen[v] = true
		remaining++
	}
	enqueued := procs * ((perProc + 1) / 2)
	if len(seen) != enqueued {
		t.Fatalf("accounted for %d values, enqueued %d (%d remained)", len(seen), enqueued, remaining)
	}
}

// TestNativeFacadeMWCAS runs the multiprocessor MWCAS through the facade
// on a sharded native world and checks delta accounting.
func TestNativeFacadeMWCAS(t *testing.T) {
	const procs, perProc = 4, 200
	w := waitfree.NewNativeWorld(1<<16, 2)
	o, err := waitfree.NewMultiMWCASOn(waitfree.NativeBackend(w), waitfree.MWCASConfig{
		Procs: procs, Words: 2, Width: 2, Initial: []uint64{100, 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wins [procs]uint64
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			p := w.NewProc(slot, slot%2, waitfree.Priority(slot/2))
			for n := 0; n < perProc; n++ {
				p.Begin()
				olds := []uint64{o.Read(p, o.Words[0]), o.Read(p, o.Words[1])}
				if o.MWCAS(p, o.Words, olds, []uint64{olds[0] + 1, olds[1] + 2}) {
					wins[slot]++
				}
				p.End()
			}
		}(i)
	}
	wg.Wait()

	var total uint64
	for _, n := range wins {
		total += n
	}
	p := w.NewProc(0, 0, 0)
	p.Begin()
	got0, got1 := o.Read(p, o.Words[0]), o.Read(p, o.Words[1])
	p.End()
	if got0 != 100+total || got1 != 200+2*total {
		t.Fatalf("words = (%d,%d) after %d successes, want (%d,%d)", got0, got1, total, 100+total, 200+2*total)
	}
}

// TestNativeRejectsSimulatorOnlyConfig pins the Normalize guard rails:
// white-box checking and the hardware CCAS model have no native
// equivalents and must be rejected up front, not fail mysteriously later.
func TestNativeRejectsSimulatorOnlyConfig(t *testing.T) {
	w := waitfree.NewNativeWorld(1<<12, 1)
	if _, err := waitfree.NewMultiListOn(waitfree.NativeBackend(w), waitfree.ListConfig{
		Procs: 2, Capacity: 16, CC: waitfree.CCASNative(),
	}); err == nil {
		t.Fatal("hardware-CCAS config should be rejected on the native backend")
	}
}

// Real-time task set sharing multi-word state via wait-free MWCAS.
//
// The paper targets priority-based real-time systems: tasks with fixed
// priorities (rate-monotonic here — shorter period, higher priority) that
// must never block each other unboundedly. This example models a two-
// processor controller whose tasks share a three-word navigation state
// (position, velocity, timestamp) that must be updated *atomically* —
// exactly the job of the multiprocessor MWCAS (Figure 6).
//
// Sensor tasks read the block, compute, and commit with MWCAS in the usual
// read-compute-MWCAS pattern (Section 3.1's read discussion); a failed MWCAS
// means a concurrent commit won and the task retries with fresh values at
// its next period. A high-priority watchdog task concurrently verifies the
// invariant position == velocity * timestamp that only holds if updates are
// atomic.
//
//	go run ./examples/rtsched
package main

import (
	"fmt"
	"os"

	waitfree "repro"
)

const (
	wordPos = iota
	wordVel
	wordTime
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rtsched: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sim := waitfree.NewSim(waitfree.SimConfig{Processors: 2, Seed: 9})
	// Invariant initially: pos = vel * time with vel=2, time=0, pos=0.
	state, err := waitfree.NewMultiMWCAS(sim, waitfree.MWCASConfig{
		Procs: 5, Width: 3, Words: 3, Initial: []uint64{0, 2, 0},
	})
	if err != nil {
		return err
	}

	commit := func(e *waitfree.Env) bool {
		// Read-compute-MWCAS: advance time by one tick, keep velocity,
		// move position by velocity.
		pos := state.Read(e, state.Words[wordPos])
		vel := state.Read(e, state.Words[wordVel])
		tm := state.Read(e, state.Words[wordTime])
		return state.MWCAS(e,
			state.Words,
			[]uint64{pos, vel, tm},
			[]uint64{pos + vel, vel, tm + 1})
	}

	type task struct {
		name   string
		cpu    int
		prio   waitfree.Priority
		period int64
		jobs   int
	}
	tasks := []task{
		{"nav-integrator", 0, 3, 400, 6}, // high rate, high priority
		{"imu-fuser", 0, 1, 900, 3},      // low rate, low priority, preempted
		{"gps-fuser", 1, 2, 700, 4},
		{"telemetry", 1, 1, 1100, 2},
	}
	committed := make(map[string]int)
	retried := make(map[string]int)
	slot := 0
	for _, tk := range tasks {
		for j := 0; j < tk.jobs; j++ {
			tk, slot := tk, slot
			sim.Spawn(waitfree.JobSpec{
				Name: fmt.Sprintf("%s#%d", tk.name, j),
				CPU:  tk.cpu, Prio: tk.prio, Slot: slot % 4,
				At: int64(j) * tk.period, AfterSlices: -1,
				Body: func(e *waitfree.Env) {
					// Application-level retry at task level: a lost
					// race means recompute from fresh sensor data.
					for !commit(e) {
						retried[tk.name]++
					}
					committed[tk.name]++
				},
			})
		}
		slot++
	}
	// The watchdog runs at top priority on CPU 0, checking the invariant
	// with the helping-scheme consistent read (Section 3.1, third
	// solution): each read first finishes any in-flight MWCAS.
	violations := 0
	checks := 0
	sim.Spawn(waitfree.JobSpec{
		Name: "watchdog", CPU: 0, Prio: 9, Slot: 4, At: 1500, AfterSlices: -1,
		Body: func(e *waitfree.Env) {
			for i := 0; i < 5; i++ {
				pos := state.Object.ReadConsistent(e, state.Words[wordPos])
				vel := state.Object.ReadConsistent(e, state.Words[wordVel])
				tm := state.Object.ReadConsistent(e, state.Words[wordTime])
				checks++
				if pos != vel*tm {
					violations++
				}
				e.Delay(200) // watchdog period
			}
		},
	})

	if err := sim.Run(); err != nil {
		return err
	}

	totalJobs := 0
	fmt.Println("task                commits  app-level retries")
	for _, tk := range tasks {
		fmt.Printf("%-18s  %7d  %17d\n", tk.name, committed[tk.name], retried[tk.name])
		totalJobs += tk.jobs
	}
	pos := state.Object.Val(state.Words[wordPos])
	vel := state.Object.Val(state.Words[wordVel])
	tm := state.Object.Val(state.Words[wordTime])
	fmt.Printf("\nfinal state: pos=%d vel=%d time=%d (invariant pos == vel*time: %v)\n",
		pos, vel, tm, pos == vel*tm)
	fmt.Printf("watchdog: %d consistent-read checks, %d violations\n", checks, violations)
	fmt.Printf("ticks committed: %d (= total jobs %d)\n", tm, totalJobs)
	if violations > 0 || pos != vel*tm || int(tm) != totalJobs {
		return fmt.Errorf("atomicity invariant violated")
	}
	return nil
}

// Cyclic vs priority helping (Section 3.1).
//
// With cyclic helping the help counter tours the processor ring, so an
// urgent operation can wait for up to 2P earlier operations. Priority
// helping advances the counter straight to the highest-priority pending
// operation — "if an operation is of highest priority, then at most two
// other concurrent operations can be completed before it". This example
// measures the response time of one urgent operation arriving while three
// processors grind through long low-priority scans, under both modes.
//
//	go run ./examples/priorityhelp
package main

import (
	"fmt"
	"os"

	waitfree "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "priorityhelp: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = uint64(10 * (i + 1))
	}
	measure := func(mode waitfree.HelpingMode) (int64, error) {
		sim := waitfree.NewSim(waitfree.SimConfig{Processors: 4, Seed: 5})
		list, err := waitfree.NewMultiList(sim, waitfree.ListConfig{
			Procs: 4, Capacity: 340, Seed: keys, Mode: mode, Stride: 1,
		})
		if err != nil {
			return 0, err
		}
		// Three processors run back-to-back full-list scans at low
		// priority.
		for cpu := 1; cpu < 4; cpu++ {
			cpu := cpu
			sim.Spawn(waitfree.JobSpec{
				Name: fmt.Sprintf("grind%d", cpu), CPU: cpu, Prio: 1, Slot: cpu, AfterSlices: -1,
				Body: func(e *waitfree.Env) {
					for k := 0; k < 3; k++ {
						list.Search(e, 3005)
					}
				},
			})
		}
		// The urgent operation lands on the idle processor mid-grind.
		var response int64
		sim.Spawn(waitfree.JobSpec{
			Name: "urgent", CPU: 0, Prio: 9, Slot: 0, At: 700, AfterSlices: -1,
			Body: func(e *waitfree.Env) {
				start := e.Now()
				list.Search(e, 3005)
				response = e.Now() - start
			},
		})
		if err := sim.Run(); err != nil {
			return 0, err
		}
		return response, nil
	}

	cyc, err := measure(waitfree.CyclicHelping)
	if err != nil {
		return err
	}
	pri, err := measure(waitfree.PriorityHelping)
	if err != nil {
		return err
	}
	fmt.Println("urgent operation response (virtual units) while 3 CPUs grind low-priority scans:")
	fmt.Printf("  cyclic helping:   %6d   (waits its turn on the ring)\n", cyc)
	fmt.Printf("  priority helping: %6d   (counter jumps to the urgent op; %.1fx faster)\n",
		pri, float64(cyc)/float64(pri))
	if pri >= cyc {
		return fmt.Errorf("priority helping was not faster (cyclic %d, priority %d)", cyc, pri)
	}
	return nil
}

// Flow table: a dual-core packet processor combining the wait-free hash
// table with response-time analysis.
//
// Two cores classify packets against a shared flow table (a wait-free hash
// map, Section 4) while a management task installs and removes flows at a
// lower priority. The paper's bounds make the whole thing analyzable: each
// table operation costs at most 2·P times its interference-free cost, so
// classic response-time analysis (internal/rt) can admit the task set
// before the system runs — and the simulation then confirms every deadline.
//
//	go run ./examples/flowtable
package main

import (
	"fmt"
	"os"

	waitfree "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "flowtable: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const nCPU = 2

	// Admission control first: analyze the task set with the 2PT
	// surcharge before building anything.
	tasks := []waitfree.RTTask{
		{Name: "rx0", Period: 3000, BaseCost: 250, Ops: 2, OpCost: 40},
		{Name: "rx1", Period: 3000, BaseCost: 250, Ops: 2, OpCost: 40},
		{Name: "mgmt", Period: 12000, BaseCost: 600, Ops: 4, OpCost: 40},
	}
	assign := []int{0, 1, 0}
	analysis, err := waitfree.RTPartitionedAnalysis(tasks, assign, nCPU)
	if err != nil {
		return err
	}
	fmt.Println("admission (response-time analysis with 2PT surcharge):")
	for cpu := 0; cpu < nCPU; cpu++ {
		for _, a := range analysis[cpu] {
			fmt.Printf("  cpu%d %-5s response %5d / period %5d  schedulable=%v\n",
				cpu, a.Task.Name, a.Response, a.Task.Period, a.Schedulable)
			if !a.Schedulable {
				return fmt.Errorf("task %s not schedulable; refuse to run", a.Task.Name)
			}
		}
	}

	// Build and run the admitted system.
	sim := waitfree.NewSim(waitfree.SimConfig{Processors: nCPU, Seed: 21})
	flows, err := waitfree.NewMultiHash(sim, waitfree.HashConfig{
		Procs: 3, Buckets: 8, Capacity: 256,
		Seed: []uint64{101, 102, 103, 104, 105},
	})
	if err != nil {
		return err
	}

	const horizon = 36000
	hits, misses, installed, removed := 0, 0, 0, 0
	type jobT struct {
		name string
		cpu  int
		prio waitfree.Priority
		slot int
	}
	var worst = map[string]int64{}
	spawnPeriodic := func(j jobT, period int64, body func(e *waitfree.Env)) {
		for rel := int64(0); rel+period <= horizon; rel += period {
			rel := rel
			sim.Spawn(waitfree.JobSpec{
				Name: j.name, CPU: j.cpu, Prio: j.prio, Slot: j.slot, At: rel, AfterSlices: -1,
				Body: func(e *waitfree.Env) {
					start := e.Now()
					body(e)
					if d := e.Now() - start; d > worst[j.name] {
						worst[j.name] = d
					}
				},
			})
		}
	}
	// Packet classification at interrupt priority on both cores.
	for cpu := 0; cpu < nCPU; cpu++ {
		cpu := cpu
		spawnPeriodic(jobT{fmt.Sprintf("rx%d", cpu), cpu, 5, cpu}, 3000, func(e *waitfree.Env) {
			for i := 0; i < 2; i++ {
				flow := uint64(101 + e.Rand().Intn(8))
				if flows.Search(e, flow) {
					hits++
				} else {
					misses++
				}
			}
			e.Delay(250)
		})
	}
	// Flow management at base priority on core 0.
	spawnPeriodic(jobT{"mgmt", 0, 1, 2}, 12000, func(e *waitfree.Env) {
		for i := 0; i < 2; i++ {
			flow := uint64(101 + e.Rand().Intn(8))
			if flows.Insert(e, flow, flow) {
				installed++
			}
			flow = uint64(101 + e.Rand().Intn(8))
			if flows.Delete(e, flow) {
				removed++
			}
		}
		e.Delay(600)
	})

	if err := sim.Run(); err != nil {
		return err
	}
	fmt.Printf("\nclassified: %d hits, %d misses; flows installed %d, removed %d; table now %d flows\n",
		hits, misses, installed, removed, len(flows.Snapshot()))
	fmt.Println("measured worst job responses vs admitted bounds:")
	bound := map[string]int64{}
	for _, as := range analysis {
		for _, a := range as {
			bound[a.Task.Name] = a.Response
		}
	}
	for _, name := range []string{"rx0", "rx1", "mgmt"} {
		ok := worst[name] <= bound[name]
		fmt.Printf("  %-5s measured %5d <= bound %5d : %v\n", name, worst[name], bound[name], ok)
		if !ok {
			return fmt.Errorf("task %s exceeded its admitted bound", name)
		}
	}
	return nil
}

// Kernel run-queue: the paper's motivating scenario (Section 1).
//
// "Wait-free and lock-free kernel data structures facilitate the design of
// re-entrant kernels, because their use eliminates the possibility of
// deadlock resulting from a preempted object access."
//
// This example models a uniprocessor kernel whose interrupt handlers are
// prioritized "processes": a timer interrupt (low), a disk interrupt
// (medium) and an NMI-ish network interrupt (high) all manipulate one
// shared, key-ordered run queue — nested, because each may fire while a
// lower handler is mid-operation. With the wait-free list everything
// completes; with the spin-lock list the same nesting deadlocks (the
// simulator's watchdog catches the spinning handler).
//
//	go run ./examples/kernelqueue
package main

import (
	"errors"
	"fmt"
	"os"

	waitfree "repro"
	"repro/internal/arena"
	"repro/internal/baseline/locklist"
	"repro/internal/sched"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "kernelqueue: %v\n", err)
		os.Exit(1)
	}
}

// handlerFires describes the nested interrupt pattern: each handler fires
// after the one below it has executed a given number of steps, so every
// handler interrupts the previous one mid-operation.
var handlerFires = []struct {
	name  string
	prio  waitfree.Priority
	slice int64
}{
	{"timer-irq", 1, -1}, // base handler, starts immediately
	{"disk-irq", 5, 35},  // fires while timer-irq is mid-insert
	{"net-irq", 9, 50},   // fires while disk-irq is helping/inserting
}

func run() error {
	fmt.Println("== wait-free run queue (paper's kernel scenario) ==")
	if err := waitFreeKernel(); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("== the same nesting with a spin-lock run queue ==")
	return lockedKernel()
}

// enqueueTasks is what each handler does: pull some task IDs into the run
// queue and retire one.
func enqueueTasks(list *waitfree.UniList, base uint64) func(*waitfree.Env) {
	return func(e *waitfree.Env) {
		for i := uint64(0); i < 3; i++ {
			list.Insert(e, base+i*10, base)
		}
		list.Delete(e, base)
	}
}

func waitFreeKernel() error {
	sim := waitfree.NewSim(waitfree.SimConfig{Processors: 1, Seed: 7, EnableTrace: true})
	queue, err := waitfree.NewUniList(sim, waitfree.ListConfig{Procs: 3, Capacity: 64})
	if err != nil {
		return err
	}
	for slot, h := range handlerFires {
		slot, h := slot, h
		sim.Spawn(waitfree.JobSpec{
			Name: h.name, CPU: 0, Prio: h.prio, Slot: slot, AfterSlices: h.slice,
			Body: enqueueTasks(queue, uint64(100*(slot+1))),
		})
	}
	if err := sim.Run(); err != nil {
		return err
	}
	fmt.Printf("all handlers completed; run queue: %v\n", queue.Snapshot())
	helped := 0
	for _, ev := range sim.Trace().Annotations() {
		if msg := ev.Message(); len(msg) >= 4 && msg[:4] == "help" {
			helped++
			fmt.Printf("  %s helped the preempted handler below it\n", ev.ProcName)
		}
	}
	if helped == 0 {
		fmt.Println("  (no helping was needed in this interleaving)")
	}
	return nil
}

func lockedKernel() error {
	sim := sched.New(sched.Config{Processors: 1, Seed: 7, MemWords: 1 << 12, MaxSteps: 100_000})
	ar, err := arena.New(sim.Mem(), 64, 3)
	if err != nil {
		return err
	}
	queue, err := locklist.New(sim.Mem(), ar)
	if err != nil {
		return err
	}
	ar.Freeze()
	for slot, h := range handlerFires {
		slot, h := slot, h
		sim.Spawn(sched.JobSpec{
			Name: h.name, CPU: 0, Prio: sched.Priority(h.prio), Slot: slot, AfterSlices: h.slice,
			Body: func(e *sched.Env) {
				base := uint64(100 * (slot + 1))
				for i := uint64(0); i < 3; i++ {
					queue.Insert(e, base+i*10, base)
				}
				queue.Delete(e, base)
			},
		})
	}
	err = sim.Run()
	if errors.Is(err, sched.ErrWatchdog) {
		fmt.Println("DEADLOCK (watchdog): a handler interrupted the lock holder and now")
		fmt.Printf("spins forever (%d spins recorded). This is why the Synthesis and\n", queue.Spins)
		fmt.Println("Cache kernels went lock-free, and what wait-freedom fixes outright.")
		return nil
	}
	if err != nil {
		return err
	}
	return errors.New("expected the locked kernel to deadlock under this nesting")
}

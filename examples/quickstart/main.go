// Quickstart: a wait-free sorted list on a simulated priority uniprocessor.
//
// Three prioritized jobs share one list. The low-priority worker is
// preempted mid-operation by higher-priority jobs, which — instead of
// blocking or corrupting the list — first *help* the preempted operation to
// completion (the paper's incremental helping, Figure 2), then run their
// own. Run it:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	waitfree "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// One simulated processor; deterministic given the seed; trace on so
	// we can show the helping events.
	sim := waitfree.NewSim(waitfree.SimConfig{Processors: 1, Seed: 42, EnableTrace: true})

	// A wait-free list for up to 3 processes, pre-loaded with two keys.
	list, err := waitfree.NewUniList(sim, waitfree.ListConfig{
		Procs:    3,
		Capacity: 64,
		Seed:     []uint64{100, 300},
	})
	if err != nil {
		return err
	}

	// A low-priority background worker inserts a batch of keys.
	sim.Spawn(waitfree.JobSpec{
		Name: "background", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1,
		Body: func(e *waitfree.Env) {
			for k := uint64(110); k < 160; k += 10 {
				list.Insert(e, k, k)
			}
		},
	})
	// A medium-priority job arrives while the worker is mid-insert...
	sim.Spawn(waitfree.JobSpec{
		Name: "interrupt", CPU: 0, Prio: 5, Slot: 1, AfterSlices: 40,
		Body: func(e *waitfree.Env) {
			if !list.Delete(e, 300) {
				fmt.Println("interrupt: delete(300) failed?!")
			}
			list.Insert(e, 200, 200)
		},
	})
	// ...and a high-priority job preempts that one in turn.
	sim.Spawn(waitfree.JobSpec{
		Name: "urgent", CPU: 0, Prio: 9, Slot: 2, AfterSlices: 55,
		Body: func(e *waitfree.Env) {
			found := list.Search(e, 100)
			fmt.Printf("urgent: search(100) -> %v (ran to completion despite two preempted writers below it)\n", found)
		},
	})

	if err := sim.Run(); err != nil {
		return err
	}

	fmt.Printf("\nfinal list: %v\n", list.Snapshot())
	fmt.Printf("virtual time: %d units\n\n", sim.Elapsed())
	fmt.Println("scheduling/helping trace:")
	if _, err := sim.Trace().WriteTo(os.Stdout); err != nil {
		return err
	}
	return nil
}

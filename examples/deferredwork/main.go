// Deferred work: interrupt top halves feed worker tasks through a wait-free
// FIFO queue on a two-processor system.
//
// Kernels split interrupt handling into a minimal top half (runs at
// interrupt priority) and deferred bottom-half work. The hand-off queue is
// exactly where a lock would deadlock a re-entrant kernel (Section 1), and
// where the paper's wait-free queue fits: top halves enqueue at interrupt
// priority — preempting workers mid-dequeue, helping them finish first —
// and workers drain at base priority. FIFO order across producers is
// preserved per producer.
//
//	go run ./examples/deferredwork
package main

import (
	"fmt"
	"os"

	waitfree "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "deferredwork: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nCPU      = 2
		irqBursts = 4
		perBurst  = 5
	)
	sim := waitfree.NewSim(waitfree.SimConfig{Processors: nCPU, Seed: 13})
	workq, err := waitfree.NewMultiQueue(sim, waitfree.QueueConfig{
		Procs: 2 + nCPU*irqBursts, Capacity: 256,
	})
	if err != nil {
		return err
	}

	// Worker tasks at base priority drain the queue continuously.
	processed := make([][]uint64, nCPU)
	for cpu := 0; cpu < nCPU; cpu++ {
		cpu := cpu
		sim.Spawn(waitfree.JobSpec{
			Name: fmt.Sprintf("worker%d", cpu), CPU: cpu, Prio: 1, Slot: cpu, AfterSlices: -1,
			Body: func(e *waitfree.Env) {
				idle := 0
				for idle < 40 {
					if item, ok := workq.Dequeue(e); ok {
						processed[cpu] = append(processed[cpu], item)
						idle = 0
					} else {
						idle++
						e.Delay(25) // back off while the queue is empty
					}
				}
			},
		})
	}
	// Interrupt top halves: bursts of enqueues at interrupt priority,
	// spread over the run so they land mid-dequeue. Each burst job gets
	// its own process slot: concurrent jobs must never share one.
	for cpu := 0; cpu < nCPU; cpu++ {
		for b := 0; b < irqBursts; b++ {
			cpu, b := cpu, b
			slot := nCPU + cpu*irqBursts + b
			sim.Spawn(waitfree.JobSpec{
				Name: fmt.Sprintf("irq%d.%d", cpu, b), CPU: cpu, Prio: 9, Slot: slot,
				At: int64(150 + 400*b + 37*cpu), AfterSlices: -1,
				Body: func(e *waitfree.Env) {
					for i := 0; i < perBurst; i++ {
						// Item id encodes (producer, sequence).
						workq.Enqueue(e, uint64(1000*(cpu*irqBursts+b)+i))
					}
				},
			})
		}
	}

	if err := sim.Run(); err != nil {
		return err
	}

	total := 0
	for cpu, items := range processed {
		fmt.Printf("worker%d processed %d items\n", cpu, len(items))
		total += len(items)
	}
	left := len(workq.Snapshot())
	fmt.Printf("items left in queue: %d\n", left)
	want := nCPU * irqBursts * perBurst
	if total+left != want {
		return fmt.Errorf("lost work: processed %d + queued %d != produced %d", total, left, want)
	}
	// Per-producer FIFO as observed by each consumer: the items of one
	// burst that a given worker dequeued appear in burst order. (The
	// global dequeue order interleaves across workers, so the check is
	// per worker.)
	for cpu, items := range processed {
		seen := map[uint64]uint64{}
		for _, it := range items {
			producer, seq := it/1000, it%1000
			if last, ok := seen[producer]; ok && seq <= last {
				return fmt.Errorf("worker%d saw producer %d's items reordered", cpu, producer)
			}
			seen[producer] = seq
		}
	}
	fmt.Printf("all %d produced items accounted for; per-producer FIFO preserved\n", want)
	return nil
}

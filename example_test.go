package waitfree_test

import (
	"fmt"

	waitfree "repro"
)

// The canonical usage pattern: build a simulation, create an object, spawn
// prioritized jobs, run, inspect.
func Example() {
	sim := waitfree.NewSim(waitfree.SimConfig{Processors: 1, Seed: 1})
	list, err := waitfree.NewUniList(sim, waitfree.ListConfig{Procs: 2, Capacity: 64})
	if err != nil {
		fmt.Println(err)
		return
	}
	// A low-priority worker and a high-priority interrupt share the list;
	// the interrupt preempts the worker mid-operation and helps it finish
	// before doing its own work (wait-freedom via incremental helping).
	sim.Spawn(waitfree.JobSpec{Name: "worker", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1,
		Body: func(e *waitfree.Env) {
			list.Insert(e, 10, 100)
			list.Insert(e, 20, 200)
		}})
	sim.Spawn(waitfree.JobSpec{Name: "irq", CPU: 0, Prio: 9, Slot: 1, AfterSlices: 30,
		Body: func(e *waitfree.Env) {
			list.Insert(e, 15, 150)
		}})
	if err := sim.Run(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(list.Snapshot())
	// Output: [10 15 20]
}

// Multi-word compare-and-swap: the read-compute-MWCAS pattern on a
// multiprocessor.
func ExampleNewMultiMWCAS() {
	sim := waitfree.NewSim(waitfree.SimConfig{Processors: 2, Seed: 1})
	obj, err := waitfree.NewMultiMWCAS(sim, waitfree.MWCASConfig{
		Procs: 2, Width: 2, Words: 2, Initial: []uint64{10, 20},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for cpu := 0; cpu < 2; cpu++ {
		cpu := cpu
		sim.Spawn(waitfree.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, AfterSlices: -1,
			Body: func(e *waitfree.Env) {
				for {
					a := obj.Read(e, obj.Words[0])
					b := obj.Read(e, obj.Words[1])
					// Transfer 5 from word 0 to word 1, atomically.
					if obj.MWCAS(e, obj.Words, []uint64{a, b}, []uint64{a - 5, b + 5}) {
						return
					}
				}
			}})
	}
	if err := sim.Run(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(obj.Object.Val(obj.Words[0]), obj.Object.Val(obj.Words[1]))
	// Output: 0 30
}

// Response-time analysis with the paper's wait-free helping surcharge.
func ExampleResponseTimeAnalysis() {
	tasks := waitfree.AssignRateMonotonic([]waitfree.RTTask{
		{Name: "control", Period: 5000, BaseCost: 400, Ops: 2, OpCost: 100},
		{Name: "sensor", Period: 2000, BaseCost: 200, Ops: 1, OpCost: 100},
	})
	as, err := waitfree.ResponseTimeAnalysis(tasks)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, a := range as {
		fmt.Printf("%s: response %d of period %d (schedulable=%v)\n",
			a.Task.Name, a.Response, a.Task.Period, a.Schedulable)
	}
	// Output:
	// sensor: response 400 of period 2000 (schedulable=true)
	// control: response 1200 of period 5000 (schedulable=true)
}

// Package arena provides the fixed node pool that the linked-list
// implementations allocate from.
//
// The paper's delete-safety argument (Section 2.2) depends on the allocator:
// "a node cannot be reinserted until it has been deallocated by the process
// that deletes it and subsequently reallocated by the process wanting to
// insert it", and free-list nodes must have non-NIL next pointers
// ("assuming the free list is implemented with sentinels"). This arena
// provides exactly those properties:
//
//   - nodes live in the simulated shared memory (three words each: key,
//     val, next), addressed by a Ref index; Ref 0 is NIL and names a
//     reserved nil-node whose key is the maximum key, so a stray
//     dereference of NIL is harmless;
//   - each algorithm-level process slot owns a private free list threaded
//     through the nodes' next fields and terminated by a shared sentinel
//     node, so a free node's next is never NIL;
//   - Alloc and Free only touch the calling slot's list, so they are
//     naturally wait-free and match the paper's usage (the deleting process
//     frees the node it removed; an inserting process allocates from its own
//     pool).
//
// Because next fields may be managed by a software CCAS representation
// (internal/prim), the arena writes them through a configurable prim.Impl.
package arena

import (
	"fmt"

	"repro/internal/prim"
	"repro/internal/shmem"
)

// Ref is a node index. NIL (0) is the null reference.
type Ref uint32

// NIL is the null node reference.
const NIL Ref = 0

// wordsPerNode is the node footprint: key, val, next.
const wordsPerNode = 3

// Arena is a fixed pool of list nodes in simulated shared memory.
type Arena struct {
	mem      shmem.Memory
	nodes    shmem.Addr // base of node storage
	heads    shmem.Addr // per-slot free-list head words
	capacity int
	slots    int
	sentinel Ref // free-list terminator
	nextImpl prim.Impl

	staticNext Ref
	frozen     bool
}

// New creates an arena with the given total node capacity for the given
// number of process slots. Capacity includes the nil-node and the free-list
// sentinel, so usable capacity is capacity-2 minus any static nodes.
func New(m shmem.Memory, capacity, slots int) (*Arena, error) {
	if capacity < 3 {
		return nil, fmt.Errorf("arena: capacity %d too small (need >= 3)", capacity)
	}
	if slots < 1 {
		return nil, fmt.Errorf("arena: need at least one slot, got %d", slots)
	}
	nodes, err := m.Alloc("nodes", capacity*wordsPerNode)
	if err != nil {
		return nil, fmt.Errorf("arena: %w", err)
	}
	heads, err := m.Alloc("freeheads", slots)
	if err != nil {
		return nil, fmt.Errorf("arena: %w", err)
	}
	a := &Arena{
		mem:      m,
		nodes:    nodes,
		heads:    heads,
		capacity: capacity,
		slots:    slots,
		nextImpl: prim.Native{},
	}
	// Ref 0: the nil-node. Key is the maximum key so that a scan that
	// strays onto it stops; next points to itself.
	m.Poke(a.KeyAddr(NIL), ^uint64(0))
	m.Poke(a.NextAddr(NIL), 0)
	// Ref 1: the free-list sentinel. Non-NIL next (itself).
	a.sentinel = 1
	m.Poke(a.KeyAddr(a.sentinel), ^uint64(0))
	m.Poke(a.NextAddr(a.sentinel), uint64(a.sentinel))
	a.staticNext = 2
	return a, nil
}

// SetNextImpl selects the representation used for node next fields. It must
// be called before Freeze and must match the implementation the list
// algorithm uses for next-field CCAS operations.
func (a *Arena) SetNextImpl(impl prim.Impl) {
	if a.frozen {
		panic("arena: SetNextImpl after Freeze")
	}
	a.nextImpl = impl
}

// Static allocates a node at setup time (for list sentinels such as First
// and Last). It panics after Freeze.
func (a *Arena) Static() Ref {
	if a.frozen {
		panic("arena: Static after Freeze")
	}
	if int(a.staticNext) >= a.capacity {
		panic(fmt.Sprintf("arena: static allocation exceeds capacity %d", a.capacity))
	}
	r := a.staticNext
	a.staticNext++
	return r
}

// Freeze distributes all remaining nodes evenly across the slots' free
// lists. No further static allocation is possible.
func (a *Arena) Freeze() {
	if a.frozen {
		panic("arena: Freeze called twice")
	}
	a.frozen = true
	for s := 0; s < a.slots; s++ {
		a.mem.Poke(a.heads+shmem.Addr(s), uint64(a.sentinel))
	}
	slot := 0
	for r := a.staticNext; int(r) < a.capacity; r++ {
		head := a.mem.Peek(a.heads + shmem.Addr(slot))
		a.nextImpl.InitWord(a.mem, a.NextAddr(r), head)
		a.mem.Poke(a.heads+shmem.Addr(slot), uint64(r))
		slot = (slot + 1) % a.slots
	}
}

// NodeRegion returns the address bounds [lo, hi) of this arena's node
// storage. Every container snapshot built on the arena is a pure function
// of the words in this region (key/val/next per node; CCAS Logical depends
// only on the raw word), so a write outside it can never change a
// snapshot. Per-write checkers use the bounds to skip snapshot diffs on
// engine bookkeeping writes.
func (a *Arena) NodeRegion() (lo, hi shmem.Addr) {
	return a.nodes, a.nodes + shmem.Addr(a.capacity*wordsPerNode)
}

// Capacity returns the total node capacity (including reserved nodes).
func (a *Arena) Capacity() int { return a.capacity }

// Sentinel returns the free-list terminator node.
func (a *Arena) Sentinel() Ref { return a.sentinel }

// KeyAddr returns the address of node r's key word.
func (a *Arena) KeyAddr(r Ref) shmem.Addr { return a.nodes + shmem.Addr(int(r)*wordsPerNode) }

// ValAddr returns the address of node r's value word.
func (a *Arena) ValAddr(r Ref) shmem.Addr { return a.nodes + shmem.Addr(int(r)*wordsPerNode+1) }

// NextAddr returns the address of node r's next word.
func (a *Arena) NextAddr(r Ref) shmem.Addr { return a.nodes + shmem.Addr(int(r)*wordsPerNode+2) }

// Contains reports whether r is a valid reference in this arena.
func (a *Arena) Contains(r Ref) bool { return int(r) < a.capacity }

// Alloc pops a node from the calling slot's free list (the paper's
// nodealloc, line 1 of Insert). It reports false when the slot's pool is
// exhausted.
func (a *Arena) Alloc(e shmem.Ctx, slot int) (Ref, bool) {
	a.checkSlot(slot)
	headAddr := a.heads + shmem.Addr(slot)
	head := Ref(e.Load(headAddr))
	if head == a.sentinel {
		return NIL, false
	}
	next := Ref(a.nextImpl.Read(e, a.NextAddr(head)))
	e.Store(headAddr, uint64(next))
	return head, true
}

// Free pushes a node onto the calling slot's free list (the paper's
// nodefree, line 10 of Delete). The node's next field is overwritten with
// the chain link, which is always non-NIL — the property the uniprocessor
// insert protocol relies on.
func (a *Arena) Free(e shmem.Ctx, slot int, r Ref) {
	a.checkSlot(slot)
	if r == NIL || r == a.sentinel || !a.Contains(r) {
		panic(fmt.Sprintf("arena: Free of invalid ref %d", r))
	}
	headAddr := a.heads + shmem.Addr(slot)
	head := e.Load(headAddr)
	a.nextImpl.Write(e, a.NextAddr(r), head)
	e.Store(headAddr, uint64(r))
}

// FreeCount walks slot's free list (setup/verification only; charges no
// simulated time) and returns its length.
func (a *Arena) FreeCount(slot int) int {
	a.checkSlot(slot)
	n := 0
	r := Ref(a.mem.Peek(a.heads + shmem.Addr(slot)))
	for r != a.sentinel {
		n++
		if n > a.capacity {
			panic("arena: free list cycle detected")
		}
		r = Ref(a.nextImpl.Logical(a.mem.Peek(a.NextAddr(r))))
	}
	return n
}

func (a *Arena) checkSlot(slot int) {
	if slot < 0 || slot >= a.slots {
		panic(fmt.Sprintf("arena: slot %d out of range [0,%d)", slot, a.slots))
	}
}

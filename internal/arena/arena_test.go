package arena

import (
	"testing"
	"testing/quick"

	"repro/internal/prim"
	"repro/internal/sched"
	"repro/internal/shmem"
)

func newSim(t *testing.T, words int) *sched.Sim {
	t.Helper()
	return sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: words})
}

func TestNewValidation(t *testing.T) {
	m := shmem.New(1024)
	if _, err := New(m, 2, 1); err == nil {
		t.Error("capacity 2 accepted, want error")
	}
	if _, err := New(m, 10, 0); err == nil {
		t.Error("0 slots accepted, want error")
	}
	if _, err := New(shmem.New(4), 100, 1); err == nil {
		t.Error("oversized arena accepted, want allocation error")
	}
}

func TestStaticAndFreeze(t *testing.T) {
	m := shmem.New(1024)
	a, err := New(m, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	first := a.Static()
	last := a.Static()
	if first == NIL || last == NIL || first == a.Sentinel() || last == a.Sentinel() {
		t.Fatalf("static refs collide with reserved nodes: %d, %d", first, last)
	}
	a.Freeze()
	// 12 nodes - nil - sentinel - 2 static = 8, split 4/4.
	if got := a.FreeCount(0); got != 4 {
		t.Errorf("slot 0 free count = %d, want 4", got)
	}
	if got := a.FreeCount(1); got != 4 {
		t.Errorf("slot 1 free count = %d, want 4", got)
	}
}

func TestAllocFreeCycle(t *testing.T) {
	s := newSim(t, 1024)
	a, err := New(s.Mem(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Freeze()
	total := a.FreeCount(0)
	s.SpawnAt(0, 0, 1, "t", func(e *sched.Env) {
		var got []Ref
		for {
			r, ok := a.Alloc(e, 0)
			if !ok {
				break
			}
			// Freshly allocated nodes are real and distinct.
			if r == NIL || r == a.Sentinel() {
				t.Errorf("allocated reserved ref %d", r)
			}
			got = append(got, r)
		}
		if len(got) != total {
			t.Errorf("allocated %d nodes, want %d", len(got), total)
		}
		seen := map[Ref]bool{}
		for _, r := range got {
			if seen[r] {
				t.Errorf("ref %d allocated twice", r)
			}
			seen[r] = true
			a.Free(e, 0, r)
		}
		// Everything is reusable after free.
		for range got {
			if _, ok := a.Alloc(e, 0); !ok {
				t.Error("arena lost capacity across free/alloc cycle")
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestFreeNodeNextNonNIL verifies the property the uniprocessor insert
// protocol depends on: a node on the free list never has a NIL next field.
func TestFreeNodeNextNonNIL(t *testing.T) {
	s := newSim(t, 1024)
	a, err := New(s.Mem(), 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Freeze()
	s.SpawnAt(0, 0, 1, "t", func(e *sched.Env) {
		r, ok := a.Alloc(e, 0)
		if !ok {
			t.Fatal("alloc failed")
		}
		e.Store(a.NextAddr(r), 0) // simulate Insert line 2: next := NIL
		a.Free(e, 0, r)
		if e.Load(a.NextAddr(r)) == 0 {
			t.Error("freed node has NIL next; free list must use sentinels")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSlotsAreIndependent: freeing into one slot does not make the node
// available to another slot.
func TestSlotsAreIndependent(t *testing.T) {
	s := newSim(t, 1024)
	a, err := New(s.Mem(), 8, 2) // 6 usable, 3 per slot
	if err != nil {
		t.Fatal(err)
	}
	a.Freeze()
	s.SpawnAt(0, 0, 1, "t", func(e *sched.Env) {
		for i := 0; i < 3; i++ {
			if _, ok := a.Alloc(e, 1); !ok {
				t.Fatal("slot 1 exhausted early")
			}
		}
		if _, ok := a.Alloc(e, 1); ok {
			t.Error("slot 1 allocated beyond its pool")
		}
		if _, ok := a.Alloc(e, 0); !ok {
			t.Error("slot 0 affected by slot 1 exhaustion")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeInvalidPanics(t *testing.T) {
	s := newSim(t, 1024)
	a, err := New(s.Mem(), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Freeze()
	s.SpawnAt(0, 0, 1, "t", func(e *sched.Env) {
		a.Free(e, 0, NIL)
	})
	if err := s.Run(); err == nil {
		t.Fatal("Free(NIL) did not fail the run")
	}
}

func TestNilNodeIsGuard(t *testing.T) {
	m := shmem.New(1024)
	a, err := New(m, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(a.KeyAddr(NIL)); got != ^uint64(0) {
		t.Errorf("nil-node key = %#x, want max", got)
	}
}

// TestTaggedNextImpl: with the Figure 8(b) representation, free-list links
// still round-trip through the tag bits.
func TestTaggedNextImpl(t *testing.T) {
	s := newSim(t, 1024)
	a, err := New(s.Mem(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.SetNextImpl(prim.Tagged{})
	a.Freeze()
	s.SpawnAt(0, 0, 1, "t", func(e *sched.Env) {
		var refs []Ref
		for {
			r, ok := a.Alloc(e, 0)
			if !ok {
				break
			}
			refs = append(refs, r)
		}
		if len(refs) == 0 {
			t.Fatal("no nodes allocated")
		}
		for _, r := range refs {
			a.Free(e, 0, r)
		}
		if got := a.FreeCount(0); got != len(refs) {
			t.Errorf("free count after cycle = %d, want %d", got, len(refs))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAllocNeverDuplicates: under arbitrary interleaved alloc/free
// by one slot, live refs are always distinct and capacity is conserved.
func TestPropertyAllocNeverDuplicates(t *testing.T) {
	f := func(seed int64) bool {
		s := sched.New(sched.Config{Processors: 1, Seed: seed, MemWords: 4096})
		a, err := New(s.Mem(), 20, 1)
		if err != nil {
			return false
		}
		a.Freeze()
		ok := true
		s.SpawnAt(0, 0, 1, "t", func(e *sched.Env) {
			live := map[Ref]bool{}
			var order []Ref
			for i := 0; i < 200; i++ {
				if e.Rand().Intn(2) == 0 {
					r, allocOK := a.Alloc(e, 0)
					if !allocOK {
						continue
					}
					if live[r] {
						ok = false
						return
					}
					live[r] = true
					order = append(order, r)
				} else if len(order) > 0 {
					r := order[len(order)-1]
					order = order[:len(order)-1]
					delete(live, r)
					a.Free(e, 0, r)
				}
			}
			if len(live)+a.FreeCount(0) != 18 { // 20 - nil - sentinel
				ok = false
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

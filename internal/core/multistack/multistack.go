// Package multistack implements a wait-free LIFO stack for priority-based
// multiprocessors, completing the Section 4 set (queue, stack, hash table)
// on the cyclic/priority helping engine.
//
// Both operations work at the head sentinel: push is the Figure 7 insert
// protocol at the head position (set the new node's next from NIL, then a
// version-guarded CCAS swings the head), pop fixes its victim in
// Par[p].node before unsplicing (the line-53 discipline). No scan and no
// checkpoint are needed, so operations cost Θ(1) plus the Θ(2P) helping
// bound.
package multistack

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Operation codes stored in Par[p].op.
const (
	opPush uint64 = iota + 1
	opPop
)

// Rv values.
const (
	// RvPending: the operation has not completed.
	RvPending uint64 = 0
	// RvFalse: the operation completed and reports false (empty pop).
	RvFalse uint64 = 1
	// RvTrue: the operation completed and reports true.
	RvTrue uint64 = 2
)

// Done is the completion predicate.
func Done(rv uint64) bool { return rv != RvPending }

// Config configures the stack.
type Config struct {
	// Processors is P; Procs is N.
	Processors, Procs int
	// CC selects the CCAS implementation; defaults to Native.
	CC prim.Impl
	// Mode selects cyclic or priority helping; defaults to Cyclic.
	Mode helping.Mode
	// OneRound enables the single-traversal optimization of [1].
	OneRound bool
}

// Stack is a wait-free LIFO stack.
type Stack struct {
	mem shmem.Memory
	ar  *arena.Arena
	cc  prim.Impl
	eng *helping.Engine
	n   int

	first, last arena.Ref
	par         shmem.Addr // Par[p]: node, op (N+1 rows)
}

const (
	parNode   = 0
	parOp     = 1
	parStride = 2
)

// New creates a stack; the arena must not be frozen.
func New(m shmem.Memory, ar *arena.Arena, cfg Config) (*Stack, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("multistack: process count %d out of range", cfg.Procs)
	}
	if cfg.CC == nil {
		cfg.CC = prim.Native{}
	}
	if cfg.Mode == 0 {
		cfg.Mode = helping.Cyclic
	}
	par, err := m.Alloc("SPar", (cfg.Procs+1)*parStride)
	if err != nil {
		return nil, fmt.Errorf("multistack: %w", err)
	}
	s := &Stack{mem: m, ar: ar, cc: cfg.CC, n: cfg.Procs, par: par}
	ar.SetNextImpl(cfg.CC)
	s.first = ar.Static()
	s.last = ar.Static()
	cfg.CC.InitWord(m, ar.NextAddr(s.first), uint64(s.last))
	cfg.CC.InitWord(m, ar.NextAddr(s.last), uint64(arena.NIL))
	eng, err := helping.New(m, helping.Config{
		Processors: cfg.Processors,
		Procs:      cfg.Procs,
		Mode:       cfg.Mode,
		CC:         cfg.CC,
		Done:       Done,
		Help:       s.help,
		OnAnnounce: func(shmem.Ctx) {},
		OneRound:   cfg.OneRound,
	}, RvTrue)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	return s, nil
}

func (s *Stack) parAddr(p int, f shmem.Addr) shmem.Addr {
	return s.par + shmem.Addr(p*parStride) + f
}

// Engine exposes the helping engine for checkers and benches.
func (s *Stack) Engine() *helping.Engine { return s.eng }

// Push adds val to the top of the stack.
func (s *Stack) Push(e shmem.Ctx, val uint64) {
	p := e.Slot()
	node, ok := s.ar.Alloc(e, p)
	if !ok {
		panic(fmt.Sprintf("multistack: process %d exhausted its node pool", p))
	}
	e.Store(s.ar.ValAddr(node), val)
	s.cc.Write(e, s.ar.NextAddr(node), uint64(arena.NIL))
	s.cc.Write(e, s.parAddr(p, parNode), uint64(node))
	e.Store(s.parAddr(p, parOp), opPush)
	s.cc.Write(e, s.eng.RvAddr(p), RvPending)
	s.eng.DoOp(e)
}

// Pop removes and returns the most recently pushed value; ok is false when
// the stack was empty.
func (s *Stack) Pop(e shmem.Ctx) (val uint64, ok bool) {
	p := e.Slot()
	e.Store(s.parAddr(p, parOp), opPop)
	s.cc.Write(e, s.parAddr(p, parNode), uint64(arena.NIL))
	s.cc.Write(e, s.eng.RvAddr(p), RvPending)
	s.eng.DoOp(e)
	node := arena.Ref(s.cc.Read(e, s.parAddr(p, parNode)))
	if node == arena.NIL {
		return 0, false
	}
	val = e.Load(s.ar.ValAddr(node))
	s.ar.Free(e, p, node)
	return val, true
}

// help drives the operation announced on ver.Target.
func (s *Stack) help(e shmem.Ctx, ver helping.Version) {
	vw := helping.PackVersion(ver)
	pid := s.eng.AnnPid(e, ver.Target)
	switch e.Load(s.parAddr(pid, parOp)) {
	case opPush:
		s.helpPush(e, vw, pid)
	case opPop:
		s.helpPop(e, vw, pid)
	default:
		// Guard row or stale announce; CCASes would fail anyway.
	}
}

func (s *Stack) helpPush(e shmem.Ctx, vw uint64, pid int) {
	head := arena.Ref(s.cc.Read(e, s.ar.NextAddr(s.first)))
	if s.cc.Read(e, s.eng.RvAddr(pid)) != RvPending {
		return
	}
	newNode := arena.Ref(s.cc.Read(e, s.parAddr(pid, parNode)))
	if head != newNode {
		// Point the new node at the old head (once per op: NIL guard),
		// then swing the head. Both version-guarded.
		s.cc.Exec(e, s.eng.VAddr(), vw, s.ar.NextAddr(newNode), uint64(arena.NIL), uint64(head))
		succ := arena.Ref(s.cc.Read(e, s.ar.NextAddr(newNode)))
		if succ == head {
			if s.cc.Exec(e, s.eng.VAddr(), vw, s.ar.NextAddr(s.first), uint64(head), uint64(newNode)) {
				if e.Traced() {
					e.Note("mpush", trace.I("p", int64(pid)), trace.I("node", int64(newNode)))
				}
			}
		}
	}
	// head == newNode: the splice already happened this round.
	s.cc.Exec(e, s.eng.VAddr(), vw, s.eng.RvAddr(pid), RvPending, RvTrue)
}

func (s *Stack) helpPop(e shmem.Ctx, vw uint64, pid int) {
	victim := arena.Ref(s.cc.Read(e, s.parAddr(pid, parNode)))
	if victim == arena.NIL {
		head := arena.Ref(s.cc.Read(e, s.ar.NextAddr(s.first)))
		if s.cc.Read(e, s.eng.RvAddr(pid)) != RvPending {
			return
		}
		if head == s.last {
			s.cc.Exec(e, s.eng.VAddr(), vw, s.eng.RvAddr(pid), RvPending, RvFalse)
			return
		}
		s.cc.Exec(e, s.eng.VAddr(), vw, s.parAddr(pid, parNode), uint64(arena.NIL), uint64(head))
		victim = arena.Ref(s.cc.Read(e, s.parAddr(pid, parNode)))
		if victim == arena.NIL {
			return // stale round
		}
	}
	succ := arena.Ref(s.cc.Read(e, s.ar.NextAddr(victim)))
	if s.cc.Read(e, s.eng.RvAddr(pid)) != RvPending {
		return
	}
	if s.cc.Exec(e, s.eng.VAddr(), vw, s.ar.NextAddr(s.first), uint64(victim), uint64(succ)) {
		if e.Traced() {
			e.Note("mpop", trace.I("p", int64(pid)), trace.I("node", int64(victim)))
		}
	}
	s.cc.Exec(e, s.eng.VAddr(), vw, s.eng.RvAddr(pid), RvPending, RvTrue)
}

// Snapshot returns the stacked values, top first (quiescent use only).
// SnapshotRegion reports the address range whose words fully determine
// Snapshot, so per-write checkers can skip writes that cannot change it.
func (s *Stack) SnapshotRegion() (lo, hi shmem.Addr) { return s.ar.NodeRegion() }

func (s *Stack) Snapshot() []uint64 { return s.AppendSnapshot(nil) }

// AppendSnapshot appends the snapshot to dst and returns the extended
// slice, letting per-write checkers reuse one scratch buffer across a
// sweep instead of allocating a fresh slice per observed write.
func (s *Stack) AppendSnapshot(dst []uint64) []uint64 {
	vals := dst
	base := len(dst)
	r := arena.Ref(s.cc.Logical(s.mem.Peek(s.ar.NextAddr(s.first))))
	for r != s.last && r != arena.NIL {
		vals = append(vals, s.mem.Peek(s.ar.ValAddr(r)))
		if len(vals)-base > s.ar.Capacity() {
			panic("multistack: stack cycle detected")
		}
		r = arena.Ref(s.cc.Logical(s.mem.Peek(s.ar.NextAddr(r))))
	}
	return vals
}

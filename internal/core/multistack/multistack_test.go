package multistack_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/multistack"
	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/sched"
)

type fixture struct {
	sim *sched.Sim
	ar  *arena.Arena
	st  *multistack.Stack
}

func newFixture(t testing.TB, scfg sched.Config, cfg multistack.Config, nodes int) *fixture {
	t.Helper()
	if scfg.MemWords == 0 {
		scfg.MemWords = 1 << 16
	}
	s := sched.New(scfg)
	ar, err := arena.New(s.Mem(), nodes, cfg.Procs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := multistack.New(s.Mem(), ar, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ar.Freeze()
	return &fixture{sim: s, ar: ar, st: st}
}

func TestSequentialLIFO(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1},
		multistack.Config{Processors: 1, Procs: 1}, 32)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		for v := uint64(1); v <= 8; v++ {
			fx.st.Push(e, v)
		}
		for v := uint64(8); v >= 1; v-- {
			got, ok := fx.st.Pop(e)
			if !ok || got != v {
				t.Errorf("Pop = (%d, %v), want (%d, true)", got, ok, v)
			}
		}
		if _, ok := fx.st.Pop(e); ok {
			t.Error("Pop on empty stack returned ok")
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStressAllVariants: cross-processor pushers/poppers under all CCAS
// implementations and helping modes, validated by the LIFO checker.
func TestStressAllVariants(t *testing.T) {
	for _, cc := range prim.All() {
		for _, mode := range []helping.Mode{helping.Cyclic, helping.Priority} {
			cc, mode := cc, mode
			t.Run(fmt.Sprintf("%s_%s", cc.Name(), mode), func(t *testing.T) {
				f := func(seed int64) bool {
					const (
						nCPU   = 3
						nProcs = 6
						nOps   = 8
					)
					fx := newFixture(t, sched.Config{Processors: nCPU, Seed: seed, MemWords: 1 << 17},
						multistack.Config{Processors: nCPU, Procs: nProcs, CC: cc, Mode: mode}, 256)
					chk := check.NewLIFOChecker(fx.st, fx.sim.Mem())
					rng := fx.sim.Rand()
					for p := 0; p < nProcs; p++ {
						p := p
						fx.sim.Spawn(sched.JobSpec{
							Name: "", CPU: p % nCPU, Prio: sched.Priority(rng.Intn(6)), Slot: p,
							At: rng.Int63n(400), AfterSlices: -1,
							Body: func(e *sched.Env) {
								for op := 0; op < nOps; op++ {
									if e.Rand().Intn(2) == 0 {
										val := uint64(1000*p + op + 1)
										chk.BeginPush(p, val)
										fx.st.Push(e, val)
										chk.EndPush(p)
									} else {
										chk.BeginPop(p)
										v, ok := fx.st.Pop(e)
										chk.EndPop(p, v, ok)
									}
								}
							},
						})
					}
					if err := fx.sim.Run(); err != nil {
						t.Fatalf("seed %d (%s/%v): %v", seed, cc.Name(), mode, err)
					}
					chk.Finish()
					if err := chk.Err(); err != nil {
						t.Fatalf("seed %d (%s/%v): %v", seed, cc.Name(), mode, err)
					}
					return true
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestNodeConservation under contention.
func TestNodeConservation(t *testing.T) {
	const nProcs = 4
	fx := newFixture(t, sched.Config{Processors: 2, Seed: 9, MemWords: 1 << 17},
		multistack.Config{Processors: 2, Procs: nProcs}, 64)
	usable := 0
	for p := 0; p < nProcs; p++ {
		usable += fx.ar.FreeCount(p)
	}
	for p := 0; p < nProcs; p++ {
		p := p
		fx.sim.Spawn(sched.JobSpec{Name: "", CPU: p % 2, Prio: sched.Priority(p / 2), Slot: p, At: int64(p) * 7, AfterSlices: -1, Body: func(e *sched.Env) {
			for i := 0; i < 25; i++ {
				if e.Rand().Intn(2) == 0 {
					fx.st.Push(e, uint64(100*p+i))
				} else {
					fx.st.Pop(e)
				}
			}
		}})
	}
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	free := 0
	for p := 0; p < nProcs; p++ {
		free += fx.ar.FreeCount(p)
	}
	if free+len(fx.st.Snapshot()) != usable {
		t.Errorf("node conservation violated: %d free + %d stacked != %d usable",
			free, len(fx.st.Snapshot()), usable)
	}
}

// TestPreemptedPushHelped: a preempted push completes via helping before the
// preemptor's pop.
func TestPreemptedPushHelped(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1},
		multistack.Config{Processors: 1, Procs: 2}, 32)
	var got uint64
	var ok bool
	fx.sim.Spawn(sched.JobSpec{Name: "low", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		fx.st.Push(e, 42)
	}})
	fx.sim.Spawn(sched.JobSpec{Name: "high", CPU: 0, Prio: 9, Slot: 1, AfterSlices: 25, Body: func(e *sched.Env) {
		got, ok = fx.st.Pop(e)
	}})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || got != 42 {
		t.Errorf("pop = (%d, %v), want (42, true)", got, ok)
	}
}

// Package multihash implements a wait-free hash table for priority-based
// multiprocessors — the third "linear" structure of the paper's Section 4
// ("queues, stacks, and hash tables are just as straightforward to
// implement as linked lists").
//
// The table is an array of K sorted bucket chains, each running from its
// own head sentinel to one shared tail sentinel, operated like the
// multiprocessor list (Figure 7): per-processor announce records, cyclic or
// priority helping rings, version-guarded CCAS for every structural update,
// and the round-stable duplicate/absence discriminators. An operation costs
// Θ(T/K) expected — the classic hash speedup — with the same Θ(2·P·(T/K))
// helping bound.
//
// Unlike the list, the scan does NOT use a shared checkpoint. The list's
// Ann[R].ptr trick is only sound because its announce resets the checkpoint
// to a *constant* start (the global head): the reset and the pid publish
// are separate writes, and a preemption between them lets another process
// on the same processor move the checkpoint — harmlessly for the list,
// whose every announce restores the same constant, but fatally for a hash,
// whose reset target depends on the operation's bucket (we hit exactly this
// as a wrong-bucket splice during development; see the test
// TestAnnounceSplitPreemption). Buckets are short, so helpers simply scan
// privately from the bucket head.
package multihash

import (
	"fmt"
	"slices"

	"repro/internal/arena"
	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Operation codes stored in Par[p].op.
const (
	opIns uint64 = iota + 1
	opDel
	opSch
)

// Rv values (as in the multiprocessor list).
const (
	// RvPending: the operation has not completed.
	RvPending uint64 = 0
	// RvFalse: the operation completed and reports false.
	RvFalse uint64 = 1
	// RvTrue: the operation completed and reports true.
	RvTrue uint64 = 2
)

// Done is the completion predicate.
func Done(rv uint64) bool { return rv != RvPending }

// KeyMin and KeyMax are reserved sentinel keys.
const (
	KeyMin = uint64(0)
	KeyMax = ^uint64(0)
)

// Config configures the table.
type Config struct {
	// Processors is P; Procs is N; Buckets is K.
	Processors, Procs, Buckets int
	// CC selects the CCAS implementation; defaults to Native.
	CC prim.Impl
	// Mode selects cyclic or priority helping; defaults to Cyclic.
	Mode helping.Mode
	// OneRound enables the single-traversal optimization of [1].
	OneRound bool
}

// Table is a wait-free hash table.
type Table struct {
	mem shmem.Memory
	ar  *arena.Arena
	cc  prim.Impl
	eng *helping.Engine
	n   int
	k   int

	heads []arena.Ref // bucket head sentinels
	last  arena.Ref   // shared tail sentinel
	par   shmem.Addr  // Par[p]: node, key, op (N+1 rows)
}

const (
	parNode   = 0
	parKey    = 1
	parOp     = 2
	parStride = 3
)

// New creates a table; the arena must not be frozen.
func New(m shmem.Memory, ar *arena.Arena, cfg Config) (*Table, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("multihash: process count %d out of range", cfg.Procs)
	}
	if cfg.Buckets < 1 {
		return nil, fmt.Errorf("multihash: bucket count %d out of range", cfg.Buckets)
	}
	if cfg.CC == nil {
		cfg.CC = prim.Native{}
	}
	if cfg.Mode == 0 {
		cfg.Mode = helping.Cyclic
	}
	par, err := m.Alloc("HPar", (cfg.Procs+1)*parStride)
	if err != nil {
		return nil, fmt.Errorf("multihash: %w", err)
	}
	t := &Table{mem: m, ar: ar, cc: cfg.CC, n: cfg.Procs, k: cfg.Buckets, par: par}
	ar.SetNextImpl(cfg.CC)
	t.last = ar.Static()
	m.Poke(ar.KeyAddr(t.last), KeyMax)
	cfg.CC.InitWord(m, ar.NextAddr(t.last), uint64(arena.NIL))
	t.heads = make([]arena.Ref, cfg.Buckets)
	for b := range t.heads {
		h := ar.Static()
		t.heads[b] = h
		m.Poke(ar.KeyAddr(h), KeyMin)
		cfg.CC.InitWord(m, ar.NextAddr(h), uint64(t.last))
	}
	eng, err := helping.New(m, helping.Config{
		Processors: cfg.Processors,
		Procs:      cfg.Procs,
		Mode:       cfg.Mode,
		CC:         cfg.CC,
		Done:       Done,
		Help:       t.help,
		OnAnnounce: func(shmem.Ctx) {},
		OneRound:   cfg.OneRound,
	}, RvTrue)
	if err != nil {
		return nil, err
	}
	t.eng = eng
	return t, nil
}

// bucket maps a key to its bucket head sentinel.
func (t *Table) bucket(key uint64) arena.Ref { return t.heads[int(key%uint64(t.k))] }

func (t *Table) parAddr(p int, f shmem.Addr) shmem.Addr {
	return t.par + shmem.Addr(p*parStride) + f
}

// Engine exposes the helping engine for checkers and benches.
func (t *Table) Engine() *helping.Engine { return t.eng }

// Buckets returns K.
func (t *Table) Buckets() int { return t.k }

// Insert adds key, reporting false on duplicate.
func (t *Table) Insert(e shmem.Ctx, key, val uint64) bool {
	t.checkKey(key)
	p := e.Slot()
	node, ok := t.ar.Alloc(e, p)
	if !ok {
		panic(fmt.Sprintf("multihash: process %d exhausted its node pool", p))
	}
	e.Store(t.ar.KeyAddr(node), key)
	e.Store(t.ar.ValAddr(node), val)
	t.cc.Write(e, t.ar.NextAddr(node), uint64(arena.NIL))
	t.cc.Write(e, t.parAddr(p, parNode), uint64(node))
	e.Store(t.parAddr(p, parKey), key)
	e.Store(t.parAddr(p, parOp), opIns)
	t.cc.Write(e, t.eng.RvAddr(p), RvPending)
	t.eng.DoOp(e)
	if t.cc.Read(e, t.eng.RvAddr(p)) == RvTrue {
		return true
	}
	t.ar.Free(e, p, node)
	return false
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(e shmem.Ctx, key uint64) bool {
	t.checkKey(key)
	p := e.Slot()
	e.Store(t.parAddr(p, parKey), key)
	e.Store(t.parAddr(p, parOp), opDel)
	t.cc.Write(e, t.parAddr(p, parNode), uint64(arena.NIL))
	t.cc.Write(e, t.eng.RvAddr(p), RvPending)
	t.eng.DoOp(e)
	node := arena.Ref(t.cc.Read(e, t.parAddr(p, parNode)))
	if node == arena.NIL {
		return false
	}
	t.ar.Free(e, p, node)
	return true
}

// Search reports whether key is present.
func (t *Table) Search(e shmem.Ctx, key uint64) bool {
	t.checkKey(key)
	p := e.Slot()
	e.Store(t.parAddr(p, parKey), key)
	e.Store(t.parAddr(p, parOp), opSch)
	t.cc.Write(e, t.eng.RvAddr(p), RvPending)
	t.eng.DoOp(e)
	return t.cc.Read(e, t.eng.RvAddr(p)) == RvTrue
}

// help mirrors the multiprocessor list's Help (Figure 7 lines 38-58); the
// scan simply starts at the operation's bucket.
func (t *Table) help(e shmem.Ctx, ver helping.Version) {
	vw := helping.PackVersion(ver)
	pid := t.eng.AnnPid(e, ver.Target)
	key := e.Load(t.parAddr(pid, parKey))
	curr := t.findpos(e, key, ver, pid)
	if e.Load(t.eng.VAddr()) != vw {
		return
	}
	nextp := arena.Ref(t.cc.Read(e, t.ar.NextAddr(curr)))
	if e.Load(t.eng.VAddr()) != vw {
		return
	}
	nextnextp := arena.Ref(t.cc.Read(e, t.ar.NextAddr(nextp)))
	nextkey := e.Load(t.ar.KeyAddr(nextp))
	if t.cc.Read(e, t.eng.RvAddr(pid)) != RvPending {
		return
	}
	switch e.Load(t.parAddr(pid, parOp)) {
	case opIns:
		newNode := arena.Ref(t.cc.Read(e, t.parAddr(pid, parNode)))
		if nextkey != key {
			t.cc.Exec(e, t.eng.VAddr(), vw, t.ar.NextAddr(newNode), uint64(arena.NIL), uint64(nextp))
			if t.cc.Exec(e, t.eng.VAddr(), vw, t.ar.NextAddr(curr), uint64(nextp), uint64(newNode)) {
				if e.Traced() {
					e.Note("hsplice", trace.I("p", int64(pid)), trace.I("key", int64(key)))
				}
			}
		} else if arena.Ref(t.cc.Read(e, t.ar.NextAddr(newNode))) == arena.NIL {
			t.cc.Exec(e, t.eng.VAddr(), vw, t.eng.RvAddr(pid), RvPending, RvFalse)
			return
		}
	case opDel:
		if nextkey == key {
			t.cc.Exec(e, t.eng.VAddr(), vw, t.parAddr(pid, parNode), uint64(arena.NIL), uint64(nextp))
			if t.cc.Exec(e, t.eng.VAddr(), vw, t.ar.NextAddr(curr), uint64(nextp), uint64(nextnextp)) {
				if e.Traced() {
					e.Note("hunsplice", trace.I("p", int64(pid)), trace.I("key", int64(key)))
				}
			}
		} else if arena.Ref(t.cc.Read(e, t.parAddr(pid, parNode))) == arena.NIL {
			t.cc.Exec(e, t.eng.VAddr(), vw, t.eng.RvAddr(pid), RvPending, RvFalse)
			return
		}
	case opSch:
		if nextkey != key {
			t.cc.Exec(e, t.eng.VAddr(), vw, t.eng.RvAddr(pid), RvPending, RvFalse)
			return
		}
	default:
		return
	}
	t.cc.Exec(e, t.eng.VAddr(), vw, t.eng.RvAddr(pid), RvPending, RvTrue)
}

// findpos scans the operation's bucket privately from its head (see the
// package comment for why no shared checkpoint is used), returning the
// predecessor of the first node with key >= key. The walk checks the round
// version per hop so it never strays onto recycled chains.
func (t *Table) findpos(e shmem.Ctx, key uint64, ver helping.Version, help int) arena.Ref {
	vw := helping.PackVersion(ver)
	probe := t.bucket(key)
	for hops := 0; hops <= t.ar.Capacity(); hops++ {
		nextp := arena.Ref(t.cc.Read(e, t.ar.NextAddr(probe)))
		if e.Load(t.eng.VAddr()) != vw {
			return t.bucket(key)
		}
		if t.cc.Read(e, t.eng.RvAddr(help)) != RvPending {
			return probe
		}
		nextkey := e.Load(t.ar.KeyAddr(nextp))
		if nextkey >= key || nextp == t.last || nextp == arena.NIL {
			return probe
		}
		probe = nextp
	}
	return t.bucket(key)
}

// SeedKeys bulk-loads the table at setup time (keys need not be sorted; they
// must be distinct and non-reserved).
func (t *Table) SeedKeys(keys []uint64) error {
	perBucket := make([][]uint64, t.k)
	for _, k := range keys {
		if k == KeyMin || k == KeyMax {
			return fmt.Errorf("multihash: seed key %#x is reserved", k)
		}
		b := int(k % uint64(t.k))
		perBucket[b] = append(perBucket[b], k)
	}
	for b, bk := range perBucket {
		slices.Sort(bk)
		prev := t.heads[b]
		for i, k := range bk {
			if i > 0 && bk[i-1] == k {
				return fmt.Errorf("multihash: duplicate seed key %d", k)
			}
			node := t.ar.Static()
			t.mem.Poke(t.ar.KeyAddr(node), k)
			t.mem.Poke(t.ar.ValAddr(node), k)
			t.cc.InitWord(t.mem, t.ar.NextAddr(node), uint64(t.last))
			t.cc.InitWord(t.mem, t.ar.NextAddr(prev), uint64(node))
			prev = node
		}
	}
	return nil
}

// Snapshot returns all keys in the table, sorted ascending (quiescent use).
// SnapshotRegion reports the address range whose words fully determine
// Snapshot, so per-write checkers can skip writes that cannot change it.
func (t *Table) SnapshotRegion() (lo, hi shmem.Addr) { return t.ar.NodeRegion() }

func (t *Table) Snapshot() []uint64 { return t.AppendSnapshot(nil) }

// AppendSnapshot appends the snapshot to dst and returns the extended
// slice, letting per-write checkers reuse one scratch buffer across a
// sweep instead of allocating a fresh slice per observed write.
func (t *Table) AppendSnapshot(dst []uint64) []uint64 {
	keys := dst
	base := len(dst)
	for _, h := range t.heads {
		r := arena.Ref(t.cc.Logical(t.mem.Peek(t.ar.NextAddr(h))))
		hops := 0
		for r != t.last && r != arena.NIL {
			if hops++; hops > t.ar.Capacity() {
				panic("multihash: bucket cycle detected")
			}
			keys = append(keys, t.mem.Peek(t.ar.KeyAddr(r)))
			r = arena.Ref(t.cc.Logical(t.mem.Peek(t.ar.NextAddr(r))))
		}
	}
	slices.Sort(keys[base:])
	return keys
}

func (t *Table) checkKey(key uint64) {
	if key == KeyMin || key == KeyMax {
		panic(fmt.Sprintf("multihash: key %#x is reserved for sentinels", key))
	}
	if key > t.cc.MaxLogical() {
		panic(fmt.Sprintf("multihash: key %#x exceeds CCAS logical capacity", key))
	}
}

package multihash_test

import (
	"fmt"
	"testing"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/multihash"
	"repro/internal/helping"
	"repro/internal/sched"
)

// TestAnnounceSplitPreemption pins the wrong-bucket splice bug found during
// development: the announce's scan-state reset and pid publish are separate
// writes, and a preemption between them let an intervening same-processor
// process leave a shared checkpoint pointing into its own operation's
// bucket — the insert of key 8 was spliced into key 9's bucket and became
// invisible to subsequent deletes and searches. The fix removed the shared
// checkpoint (hash scans run privately from the bucket head); this exact
// seed reproduces the original interleaving.
func TestAnnounceSplitPreemption(t *testing.T) {
	seed := int64(-4628020244947129241)
	const (
		nCPU   = 3
		nProcs = 6
		nOps   = 8
	)
	s := sched.New(sched.Config{Processors: nCPU, Seed: seed, MemWords: 1 << 17})
	ar, err := arena.New(s.Mem(), 256, nProcs)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := multihash.New(s.Mem(), ar, multihash.Config{Processors: nCPU, Procs: nProcs, Buckets: 4, Mode: helping.Priority})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SeedKeys([]uint64{2, 5, 9}); err != nil {
		t.Fatal(err)
	}
	ar.Freeze()
	chk := check.NewMultiListChecker(tb, s.Mem())
	rng := s.Rand()
	for p := 0; p < nProcs; p++ {
		p := p
		s.Spawn(sched.JobSpec{
			Name: fmt.Sprintf("w%d", p), CPU: p % nCPU, Prio: sched.Priority(rng.Intn(6)), Slot: p,
			At: rng.Int63n(400), AfterSlices: -1,
			Body: func(e *sched.Env) {
				for op := 0; op < nOps; op++ {
					key := uint64(1 + e.Rand().Intn(12))
					var ok bool
					switch e.Rand().Intn(3) {
					case 0:
						chk.BeginOp(p, check.ListIns, key)
						ok = tb.Insert(e, key, key)
					case 1:
						chk.BeginOp(p, check.ListDel, key)
						ok = tb.Delete(e, key)
					default:
						chk.BeginOp(p, check.ListSch, key)
						ok = tb.Search(e, key)
					}
					chk.EndOp(p, ok)
				}
			},
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	chk.Finish()
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
}

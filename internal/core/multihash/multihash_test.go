package multihash_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/multihash"
	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/sched"
)

type fixture struct {
	sim *sched.Sim
	ar  *arena.Arena
	tb  *multihash.Table
}

func newFixture(t testing.TB, scfg sched.Config, hcfg multihash.Config, nodes int, seed []uint64) *fixture {
	t.Helper()
	if scfg.MemWords == 0 {
		scfg.MemWords = 1 << 17
	}
	s := sched.New(scfg)
	ar, err := arena.New(s.Mem(), nodes, hcfg.Procs)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := multihash.New(s.Mem(), ar, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) > 0 {
		if err := tb.SeedKeys(seed); err != nil {
			t.Fatal(err)
		}
	}
	ar.Freeze()
	return &fixture{sim: s, ar: ar, tb: tb}
}

func TestSequentialSemantics(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1},
		multihash.Config{Processors: 1, Procs: 1, Buckets: 4}, 64, nil)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		tb := fx.tb
		// Keys chosen to hit every bucket and collide within buckets.
		for _, k := range []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9} {
			if !tb.Insert(e, k, k*10) {
				t.Errorf("Insert(%d) failed", k)
			}
		}
		if tb.Insert(e, 5, 0) {
			t.Error("duplicate insert succeeded")
		}
		if !tb.Search(e, 9) || tb.Search(e, 13) {
			t.Error("search wrong")
		}
		if !tb.Delete(e, 4) || tb.Delete(e, 4) {
			t.Error("delete wrong")
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	got := fx.tb.Snapshot()
	want := []uint64{1, 2, 3, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("table = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("table = %v, want %v", got, want)
		}
	}
}

func TestSeededTable(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 2, Seed: 1},
		multihash.Config{Processors: 2, Procs: 2, Buckets: 8}, 128,
		[]uint64{10, 20, 30, 40, 50, 17, 23})
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		for _, k := range []uint64{10, 20, 30, 40, 50, 17, 23} {
			if !fx.tb.Search(e, k) {
				t.Errorf("Search(%d) failed on seeded table", k)
			}
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStressAllVariants: randomized cross-processor workloads, checked with
// the structural event-claiming checker (the table satisfies Snapshotter).
func TestStressAllVariants(t *testing.T) {
	for _, cc := range prim.All() {
		for _, mode := range []helping.Mode{helping.Cyclic, helping.Priority} {
			cc, mode := cc, mode
			t.Run(fmt.Sprintf("%s_%s", cc.Name(), mode), func(t *testing.T) {
				f := func(seed int64) bool {
					const (
						nCPU   = 3
						nProcs = 6
						nOps   = 8
					)
					fx := newFixture(t, sched.Config{Processors: nCPU, Seed: seed, MemWords: 1 << 17},
						multihash.Config{Processors: nCPU, Procs: nProcs, Buckets: 4, CC: cc, Mode: mode},
						256, []uint64{2, 5, 9})
					chk := check.NewMultiListChecker(fx.tb, fx.sim.Mem())
					rng := fx.sim.Rand()
					for p := 0; p < nProcs; p++ {
						p := p
						fx.sim.Spawn(sched.JobSpec{
							Name: "", CPU: p % nCPU, Prio: sched.Priority(rng.Intn(6)), Slot: p,
							At: rng.Int63n(400), AfterSlices: -1,
							Body: func(e *sched.Env) {
								for op := 0; op < nOps; op++ {
									key := uint64(1 + e.Rand().Intn(12))
									var ok bool
									switch e.Rand().Intn(3) {
									case 0:
										chk.BeginOp(p, check.ListIns, key)
										ok = fx.tb.Insert(e, key, key)
									case 1:
										chk.BeginOp(p, check.ListDel, key)
										ok = fx.tb.Delete(e, key)
									default:
										chk.BeginOp(p, check.ListSch, key)
										ok = fx.tb.Search(e, key)
									}
									chk.EndOp(p, ok)
								}
							},
						})
					}
					if err := fx.sim.Run(); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					chk.Finish()
					if err := chk.Err(); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					return true
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestBucketSpeedup: with the same total key count, a search costs Θ(T/K):
// more buckets, shorter scans.
func TestBucketSpeedup(t *testing.T) {
	cost := func(buckets int) int64 {
		keys := make([]uint64, 256)
		for i := range keys {
			keys[i] = uint64(i + 1)
		}
		fx := newFixture(t, sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 18},
			multihash.Config{Processors: 1, Procs: 1, Buckets: buckets}, 300, keys)
		var elapsed int64
		fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
			start := e.Now()
			// Probe a key hashing to the end of its bucket.
			fx.tb.Search(e, 256)
			elapsed = e.Now() - start
		})
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	c1, c16 := cost(1), cost(16)
	if c16*4 > c1 {
		t.Errorf("16 buckets did not speed up the scan: K=1 cost %d, K=16 cost %d", c1, c16)
	}
}

// TestNoLeaksUnderContention: node conservation across a contended run.
func TestNoLeaksUnderContention(t *testing.T) {
	const nProcs = 4
	fx := newFixture(t, sched.Config{Processors: 2, Seed: 9, MemWords: 1 << 17},
		multihash.Config{Processors: 2, Procs: nProcs, Buckets: 4}, 64, nil)
	usable := 0
	for p := 0; p < nProcs; p++ {
		usable += fx.ar.FreeCount(p)
	}
	for p := 0; p < nProcs; p++ {
		p := p
		fx.sim.Spawn(sched.JobSpec{Name: "", CPU: p % 2, Prio: sched.Priority(p / 2), Slot: p, At: int64(p) * 7, AfterSlices: -1, Body: func(e *sched.Env) {
			for i := 0; i < 25; i++ {
				key := uint64(1 + e.Rand().Intn(8))
				if e.Rand().Intn(2) == 0 {
					fx.tb.Insert(e, key, 0)
				} else {
					fx.tb.Delete(e, key)
				}
			}
		}})
	}
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	free := 0
	for p := 0; p < nProcs; p++ {
		free += fx.ar.FreeCount(p)
	}
	if free+len(fx.tb.Snapshot()) != usable {
		t.Errorf("node conservation violated: %d free + %d stored != %d usable",
			free, len(fx.tb.Snapshot()), usable)
	}
}

func TestConfigValidation(t *testing.T) {
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 12})
	ar, err := arena.New(s.Mem(), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multihash.New(s.Mem(), ar, multihash.Config{Processors: 1, Procs: 0, Buckets: 4}); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := multihash.New(s.Mem(), ar, multihash.Config{Processors: 1, Procs: 1, Buckets: 0}); err == nil {
		t.Error("zero buckets accepted")
	}
}

package unihash_test

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/unihash"
	"repro/internal/sched"
)

type fixture struct {
	sim *sched.Sim
	ar  *arena.Arena
	tb  *unihash.Table
}

func newFixture(t testing.TB, cfg sched.Config, n, k, nodes int, seed []uint64) *fixture {
	t.Helper()
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 16
	}
	s := sched.New(cfg)
	ar, err := arena.New(s.Mem(), nodes, n)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := unihash.New(s.Mem(), ar, n, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) > 0 {
		if err := tb.SeedKeys(seed); err != nil {
			t.Fatal(err)
		}
	}
	ar.Freeze()
	return &fixture{sim: s, ar: ar, tb: tb}
}

func TestSequentialSemantics(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 4, 64, nil)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		for _, k := range []uint64{1, 2, 3, 4, 5, 6, 7, 8} {
			if !fx.tb.Insert(e, k, k) {
				t.Errorf("Insert(%d) failed", k)
			}
		}
		if fx.tb.Insert(e, 6, 0) {
			t.Error("duplicate insert succeeded")
		}
		if !fx.tb.Search(e, 8) || fx.tb.Search(e, 12) {
			t.Error("search wrong")
		}
		if !fx.tb.Delete(e, 4) || fx.tb.Delete(e, 4) {
			t.Error("delete wrong")
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	got := fx.tb.Snapshot()
	want := []uint64{1, 2, 3, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("table = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("table = %v, want %v", got, want)
		}
	}
}

// newChecker attaches a SerialChecker with a set model seeded from the
// table's current contents.
func newChecker(fx *fixture, n int) *check.SerialChecker {
	model := map[uint64]bool{}
	for _, k := range fx.tb.Snapshot() {
		model[k] = true
	}
	return check.NewSerialChecker(fx.sim.Mem(), fx.tb.Engine().AnnPidAddr(), n,
		func(p int) bool {
			_, key, op := fx.tb.PeekPar(p)
			switch op {
			case 1: // insert
				if model[key] {
					return false
				}
				model[key] = true
				return true
			case 2: // delete
				if model[key] {
					delete(model, key)
					return true
				}
				return false
			default: // search
				return model[key]
			}
		},
		func() error {
			want := make([]uint64, 0, len(model))
			for k := range model {
				want = append(want, k)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			return check.SliceEqual(fx.tb.Snapshot(), want)
		})
}

// TestPreemptionPointSweep: adversaries at every slice, checked against the
// set model, with colliding and non-colliding buckets.
func TestPreemptionPointSweep(t *testing.T) {
	for k := int64(0); k < 100; k += 1 {
		fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 3, 4, 64, []uint64{5, 9})
		chk := newChecker(fx, 3)
		fx.sim.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
			chk.EndOp(0, fx.tb.Insert(e, 13, 1)) // collides with 5, 9 (mod 4 = 1)
			chk.EndOp(0, fx.tb.Delete(e, 5))
		}})
		fx.sim.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: k, Body: func(e *sched.Env) {
			chk.EndOp(1, fx.tb.Insert(e, 17, 2)) // same bucket
			chk.EndOp(1, fx.tb.Delete(e, 13))
		}})
		fx.sim.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: k + 6, Body: func(e *sched.Env) {
			chk.EndOp(2, fx.tb.Search(e, 9))
			chk.EndOp(2, fx.tb.Insert(e, 10, 3)) // different bucket
		}})
		if err := fx.sim.Run(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

// TestStressWithChecker: randomized prioritized jobs against the set model.
func TestStressWithChecker(t *testing.T) {
	f := func(seed int64) bool {
		const nProcs = 4
		fx := newFixture(t, sched.Config{Processors: 1, Seed: seed, MemWords: 1 << 17}, nProcs, 4, 256, nil)
		chk := newChecker(fx, nProcs)
		rng := fx.sim.Rand()
		for p := 0; p < nProcs; p++ {
			p := p
			fx.sim.Spawn(sched.JobSpec{
				Name: "", CPU: 0, Prio: sched.Priority(rng.Intn(6)), Slot: p,
				At: rng.Int63n(300), AfterSlices: -1,
				Body: func(e *sched.Env) {
					for op := 0; op < 12; op++ {
						key := uint64(1 + e.Rand().Intn(12))
						var ok bool
						switch e.Rand().Intn(3) {
						case 0:
							ok = fx.tb.Insert(e, key, key)
						case 1:
							ok = fx.tb.Delete(e, key)
						default:
							ok = fx.tb.Search(e, key)
						}
						chk.EndOp(p, ok)
					}
				},
			})
		}
		if err := fx.sim.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 12})
	ar, err := arena.New(s.Mem(), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unihash.New(s.Mem(), ar, 0, 4); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := unihash.New(s.Mem(), ar, 1, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

// Package unihash implements a wait-free hash table for priority-based
// uniprocessors — the hash-table instance of the paper's Section 4 claim,
// built from the Figure 5 list machinery over K bucket chains.
//
// Each bucket is a sorted chain from its own head sentinel to one shared
// tail sentinel, operated with the Figure 5 protocol: incremental helping,
// the (pointer, bit) insert splice, and key-guarded idempotent deletes.
// Operation cost is Θ(T/K) expected, Θ(2·T/K) helped.
//
// Unlike the list, the scan uses no shared checkpoint: the list's Ann.ptr
// reset is only sound because its target is a constant (the global head) —
// the reset and the pid publish are separate writes, and a preemption
// between them lets an intervening process on the processor leave the
// checkpoint pointing into *its* operation's bucket. Buckets are short, so
// each helper scans privately from the bucket head instead.
package unihash

import (
	"fmt"
	"slices"

	"repro/internal/arena"
	"repro/internal/inchelp"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Operation codes stored in Par[p].op.
const (
	opIns uint64 = iota + 1
	opDel
	opSch
)

// KeyMin and KeyMax are reserved sentinel keys.
const (
	KeyMin = uint64(0)
	KeyMax = ^uint64(0)
)

func packPtr(r arena.Ref, bit uint64) uint64 { return uint64(r)<<1 | bit&1 }
func unpackPtr(w uint64) (arena.Ref, uint64) { return arena.Ref(w >> 1), w & 1 }

// Table is a wait-free hash table for one priority-scheduled processor.
type Table struct {
	mem shmem.Memory
	ar  *arena.Arena
	eng *inchelp.Engine
	n   int
	k   int

	heads []arena.Ref
	last  arena.Ref
	par   shmem.Addr // Par[p]: node, key, op
}

const (
	parNode   = 0
	parKey    = 1
	parOp     = 2
	parStride = 3
)

// New creates a table with k buckets for n process slots; the arena must
// not be frozen.
func New(m shmem.Memory, ar *arena.Arena, n, k int) (*Table, error) {
	if n < 1 {
		return nil, fmt.Errorf("unihash: process count %d out of range", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("unihash: bucket count %d out of range", k)
	}
	par, err := m.Alloc("HPar", n*parStride)
	if err != nil {
		return nil, fmt.Errorf("unihash: %w", err)
	}
	t := &Table{mem: m, ar: ar, n: n, k: k, par: par}
	t.last = ar.Static()
	m.Poke(ar.KeyAddr(t.last), KeyMax)
	m.Poke(ar.NextAddr(t.last), packPtr(arena.NIL, 0))
	t.heads = make([]arena.Ref, k)
	for b := range t.heads {
		h := ar.Static()
		t.heads[b] = h
		m.Poke(ar.KeyAddr(h), KeyMin)
		m.Poke(ar.NextAddr(h), packPtr(t.last, 0))
	}
	eng, err := inchelp.New(m, inchelp.Config{
		Procs: n,
		Help:  t.help,
	})
	if err != nil {
		return nil, err
	}
	t.eng = eng
	return t, nil
}

func (t *Table) bucket(key uint64) arena.Ref { return t.heads[int(key%uint64(t.k))] }

func (t *Table) parAddr(p int, f shmem.Addr) shmem.Addr {
	return t.par + shmem.Addr(p*parStride) + f
}

// Engine exposes the helping engine, for checkers.
func (t *Table) Engine() *inchelp.Engine { return t.eng }

// PeekPar returns process p's Par record, for checkers.
func (t *Table) PeekPar(p int) (node, key, op uint64) {
	return t.mem.Peek(t.parAddr(p, parNode)),
		t.mem.Peek(t.parAddr(p, parKey)),
		t.mem.Peek(t.parAddr(p, parOp))
}

// Insert adds key, reporting false on duplicate.
func (t *Table) Insert(e shmem.Ctx, key, val uint64) bool {
	t.checkKey(key)
	p := e.Slot()
	node, ok := t.ar.Alloc(e, p)
	if !ok {
		panic(fmt.Sprintf("unihash: process %d exhausted its node pool", p))
	}
	e.Store(t.ar.KeyAddr(node), key)
	e.Store(t.ar.ValAddr(node), val)
	e.Store(t.ar.NextAddr(node), packPtr(arena.NIL, 0))
	e.Store(t.parAddr(p, parNode), uint64(node))
	e.Store(t.parAddr(p, parKey), key)
	e.Store(t.parAddr(p, parOp), opIns)
	t.eng.DoOp(e)
	if t.eng.Rv(e, p) == inchelp.RvTrue {
		return true
	}
	t.ar.Free(e, p, node)
	return false
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(e shmem.Ctx, key uint64) bool {
	t.checkKey(key)
	p := e.Slot()
	e.Store(t.parAddr(p, parKey), key)
	e.Store(t.parAddr(p, parOp), opDel)
	e.Store(t.parAddr(p, parNode), uint64(arena.NIL))
	t.eng.DoOp(e)
	node := arena.Ref(e.Load(t.parAddr(p, parNode)))
	if node != arena.NIL {
		t.ar.Free(e, p, node)
	}
	return t.eng.Rv(e, p) == inchelp.RvTrue
}

// Search reports whether key is present.
func (t *Table) Search(e shmem.Ctx, key uint64) bool {
	t.checkKey(key)
	p := e.Slot()
	e.Store(t.parAddr(p, parKey), key)
	e.Store(t.parAddr(p, parOp), opSch)
	t.eng.DoOp(e)
	return t.eng.Rv(e, p) == inchelp.RvTrue
}

// help mirrors the Figure 5 Help procedure over the operation's bucket.
func (t *Table) help(e shmem.Ctx, pid int) {
	key := e.Load(t.parAddr(pid, parKey))
	curr := t.findpos(e, key, pid)
	nextp := e.Load(t.ar.NextAddr(curr))
	nextRef, _ := unpackPtr(nextp)
	nextkey := e.Load(t.ar.KeyAddr(nextRef))
	nextnextp := e.Load(t.ar.NextAddr(nextRef))
	nextnextRef, _ := unpackPtr(nextnextp)
	if t.eng.Rv(e, pid) != inchelp.RvPending {
		return
	}
	switch e.Load(t.parAddr(pid, parOp)) {
	case opIns:
		newNode := arena.Ref(e.Load(t.parAddr(pid, parNode)))
		if nextkey == key {
			t.eng.SetRv(e, pid, inchelp.RvFalse) // duplicate
			return
		}
		e.CAS(t.ar.NextAddr(newNode), packPtr(arena.NIL, 0), packPtr(nextRef, 0))
		e.CAS(t.ar.NextAddr(curr), nextp, packPtr(nextRef, 1))
		nextp = packPtr(nextRef, 1)
		if t.eng.Rv(e, pid) == inchelp.RvPending {
			if e.CAS(t.ar.NextAddr(curr), nextp, packPtr(newNode, 0)) {
				if e.Traced() {
					e.Note("hsplice", trace.I("p", int64(pid)), trace.I("key", int64(key)))
				}
			}
		} else {
			e.CAS(t.ar.NextAddr(curr), nextp, packPtr(nextRef, 0))
		}
	case opDel:
		if nextkey != key {
			t.eng.SetRv(e, pid, inchelp.RvFalse) // absent
			return
		}
		if e.CAS(t.ar.NextAddr(curr), nextp, packPtr(nextnextRef, 0)) {
			if e.Traced() {
				e.Note("hunsplice", trace.I("p", int64(pid)), trace.I("key", int64(key)))
			}
		}
		e.Store(t.parAddr(pid, parNode), uint64(nextRef))
	case opSch:
		if nextkey != key {
			t.eng.SetRv(e, pid, inchelp.RvFalse)
			return
		}
	}
	t.eng.SetRv(e, pid, inchelp.RvTrue)
}

// findpos scans the operation's bucket privately from its head, returning
// the predecessor of the first node with key >= key.
func (t *Table) findpos(e shmem.Ctx, key uint64, pid int) arena.Ref {
	probe := t.bucket(key)
	for hops := 0; hops <= t.ar.Capacity(); hops++ {
		if t.eng.Rv(e, pid) != inchelp.RvPending {
			return probe
		}
		nextp := e.Load(t.ar.NextAddr(probe))
		nextRef, _ := unpackPtr(nextp)
		nextkey := e.Load(t.ar.KeyAddr(nextRef))
		if nextkey >= key || nextRef == t.last || nextRef == arena.NIL {
			return probe
		}
		probe = nextRef
	}
	return t.bucket(key)
}

// SeedKeys bulk-loads the table at setup time.
func (t *Table) SeedKeys(keys []uint64) error {
	perBucket := make([][]uint64, t.k)
	for _, k := range keys {
		if k == KeyMin || k == KeyMax {
			return fmt.Errorf("unihash: seed key %#x is reserved", k)
		}
		b := int(k % uint64(t.k))
		perBucket[b] = append(perBucket[b], k)
	}
	for b, bk := range perBucket {
		slices.Sort(bk)
		prev := t.heads[b]
		for i, k := range bk {
			if i > 0 && bk[i-1] == k {
				return fmt.Errorf("unihash: duplicate seed key %d", k)
			}
			node := t.ar.Static()
			t.mem.Poke(t.ar.KeyAddr(node), k)
			t.mem.Poke(t.ar.ValAddr(node), k)
			t.mem.Poke(t.ar.NextAddr(node), packPtr(t.last, 0))
			t.mem.Poke(t.ar.NextAddr(prev), packPtr(node, 0))
			prev = node
		}
	}
	return nil
}

// Snapshot returns all keys, sorted ascending (quiescent use only).
// SnapshotRegion reports the address range whose words fully determine
// Snapshot, so per-write checkers can skip writes that cannot change it.
func (t *Table) SnapshotRegion() (lo, hi shmem.Addr) { return t.ar.NodeRegion() }

func (t *Table) Snapshot() []uint64 { return t.AppendSnapshot(nil) }

// AppendSnapshot appends the snapshot to dst and returns the extended
// slice, letting per-write checkers reuse one scratch buffer across a
// sweep instead of allocating a fresh slice per observed write.
func (t *Table) AppendSnapshot(dst []uint64) []uint64 {
	keys := dst
	base := len(dst)
	for _, h := range t.heads {
		r, _ := unpackPtr(t.mem.Peek(t.ar.NextAddr(h)))
		hops := 0
		for r != t.last && r != arena.NIL {
			if hops++; hops > t.ar.Capacity() {
				panic("unihash: bucket cycle detected")
			}
			keys = append(keys, t.mem.Peek(t.ar.KeyAddr(r)))
			r, _ = unpackPtr(t.mem.Peek(t.ar.NextAddr(r)))
		}
	}
	slices.Sort(keys[base:])
	return keys
}

func (t *Table) checkKey(key uint64) {
	if key == KeyMin || key == KeyMax {
		panic(fmt.Sprintf("unihash: key %#x is reserved for sentinels", key))
	}
}

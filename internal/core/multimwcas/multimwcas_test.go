package multimwcas_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/core/multimwcas"
	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/sched"
	"repro/internal/shmem"
)

type fixture struct {
	sim   *sched.Sim
	obj   *multimwcas.Object
	words []shmem.Addr
}

func newFixture(t testing.TB, scfg sched.Config, ocfg multimwcas.Config, nwords int) *fixture {
	t.Helper()
	if scfg.MemWords == 0 {
		scfg.MemWords = 1 << 15
	}
	s := sched.New(scfg)
	obj, err := multimwcas.New(s.Mem(), ocfg)
	if err != nil {
		t.Fatal(err)
	}
	base := s.Mem().MustAlloc("app", nwords)
	words := make([]shmem.Addr, nwords)
	for i := range words {
		words[i] = base + shmem.Addr(i)
		obj.InitWord(words[i], 0)
	}
	return &fixture{sim: s, obj: obj, words: words}
}

func TestSingleSuccessAndMismatch(t *testing.T) {
	for _, cc := range prim.All() {
		cc := cc
		t.Run(cc.Name(), func(t *testing.T) {
			fx := newFixture(t, sched.Config{Processors: 2, Seed: 1},
				multimwcas.Config{Processors: 2, Procs: 2, Width: 4, CC: cc}, 3)
			var ok1, ok2 bool
			fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
				ok1 = fx.obj.MWCAS(e, fx.words, []uint64{0, 0, 0}, []uint64{7, 8, 9})
				ok2 = fx.obj.MWCAS(e, fx.words, []uint64{0, 8, 9}, []uint64{1, 2, 3})
			})
			if err := fx.sim.Run(); err != nil {
				t.Fatal(err)
			}
			if !ok1 {
				t.Error("uncontended MWCAS failed")
			}
			if ok2 {
				t.Error("MWCAS with stale old values succeeded")
			}
			for i, want := range []uint64{7, 8, 9} {
				if got := fx.obj.Val(fx.words[i]); got != want {
					t.Errorf("word %d = %d, want %d", i, got, want)
				}
			}
		})
	}
}

func TestUnchangedWordOptimization(t *testing.T) {
	// old == new words are skipped in the swap phase (line 27) but still
	// participate in the compare phase.
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1},
		multimwcas.Config{Processors: 1, Procs: 1, Width: 4}, 2)
	var ok, okMismatch bool
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		ok = fx.obj.MWCAS(e, fx.words, []uint64{0, 0}, []uint64{0, 5})
		okMismatch = fx.obj.MWCAS(e, fx.words, []uint64{9, 5}, []uint64{9, 6})
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("MWCAS with an unchanged word failed")
	}
	if okMismatch {
		t.Error("MWCAS succeeded despite mismatch on unchanged word")
	}
	if got := fx.obj.Val(fx.words[1]); got != 5 {
		t.Errorf("word 1 = %d, want 5", got)
	}
}

// TestStressAllVariants runs the randomized cross-processor workload with
// full checking for every CCAS implementation and both helping modes.
func TestStressAllVariants(t *testing.T) {
	for _, cc := range prim.All() {
		for _, mode := range []helping.Mode{helping.Cyclic, helping.Priority} {
			cc, mode := cc, mode
			t.Run(fmt.Sprintf("%s_%s", cc.Name(), mode), func(t *testing.T) {
				f := func(seed int64) bool {
					runStress(t, seed, cc, mode)
					return true
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func runStress(t *testing.T, seed int64, cc prim.Impl, mode helping.Mode) {
	t.Helper()
	const (
		nCPU   = 3
		nProcs = 6
		nWords = 4
		nOps   = 6
	)
	fx := newFixture(t, sched.Config{Processors: nCPU, Seed: seed, MemWords: 1 << 16},
		multimwcas.Config{Processors: nCPU, Procs: nProcs, Width: nWords, CC: cc, Mode: mode}, nWords)
	chk := check.NewMultiMWCASChecker(fx.obj, fx.sim.Mem(), nProcs, fx.words)
	rng := fx.sim.Rand()
	for p := 0; p < nProcs; p++ {
		p := p
		fx.sim.Spawn(sched.JobSpec{
			Name: "", CPU: p % nCPU, Prio: sched.Priority(rng.Intn(6)), Slot: p,
			At: rng.Int63n(400), AfterSlices: -1,
			Body: func(e *sched.Env) {
				for op := 0; op < nOps; op++ {
					w := 1 + e.Rand().Intn(nWords-1)
					perm := e.Rand().Perm(nWords)[:w]
					addrs := make([]shmem.Addr, w)
					old := make([]uint64, w)
					next := make([]uint64, w)
					for i, wi := range perm {
						addrs[i] = fx.words[wi]
						old[i] = fx.obj.ReadWord(e, addrs[i])
						if e.Rand().Intn(4) == 0 {
							old[i] ^= 1 // force occasional mismatch
						}
						next[i] = uint64(e.Rand().Intn(40))
					}
					chk.BeginOp(p, addrs, old, next)
					ok := fx.obj.MWCAS(e, addrs, old, next)
					chk.EndOp(p, ok)
				}
			},
		})
	}
	if err := fx.sim.Run(); err != nil {
		t.Fatalf("seed %d (%s/%v): %v", seed, cc.Name(), mode, err)
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("seed %d (%s/%v): %v", seed, cc.Name(), mode, err)
	}
	if chk.Commits()+chk.Fails() != nProcs*nOps {
		t.Fatalf("seed %d (%s/%v): %d decided ops, want %d", seed, cc.Name(), mode, chk.Commits()+chk.Fails(), nProcs*nOps)
	}
}

// TestReadConsistent: the helping-scheme read (Section 3.1, third solution)
// finishes any partially-complete MWCAS before reading, so a pair of reads
// bracketing a concurrent 2-word MWCAS can never observe the torn state
// (new X, old Y).
func TestReadConsistent(t *testing.T) {
	torn := 0
	for seed := int64(0); seed < 20; seed++ {
		fx := newFixture(t, sched.Config{Processors: 2, Seed: seed},
			multimwcas.Config{Processors: 2, Procs: 2, Width: 2}, 2)
		var xs, ys []uint64
		fx.sim.SpawnAt(0, 0, 1, "writer", func(e *sched.Env) {
			cur := uint64(0)
			for i := 0; i < 20; i++ {
				if fx.obj.MWCAS(e, fx.words, []uint64{cur, cur}, []uint64{cur + 1, cur + 1}) {
					cur++
				}
			}
		})
		fx.sim.SpawnAt(0, 1, 1, "reader", func(e *sched.Env) {
			for i := 0; i < 30; i++ {
				x := fx.obj.ReadConsistent(e, fx.words[0])
				y := fx.obj.ReadConsistent(e, fx.words[1])
				xs = append(xs, x)
				ys = append(ys, y)
			}
		})
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			// The writer keeps X == Y at every linearization point;
			// x sampled before y, so y may be newer but never older.
			if ys[i] < xs[i] {
				torn++
			}
		}
	}
	if torn > 0 {
		t.Errorf("ReadConsistent observed %d torn states (new X with old Y)", torn)
	}
}

// TestTheta2PW reproduces the Figure 1 shape for the multiprocessor MWCAS:
// worst-case operation time grows linearly in W and in P.
func TestTheta2PW(t *testing.T) {
	cost := func(nCPU, w int) int64 {
		fx := newFixture(t, sched.Config{Processors: nCPU, Seed: 7, MemWords: 1 << 17},
			multimwcas.Config{Processors: nCPU, Procs: nCPU, Width: w}, w)
		old := make([]uint64, w)
		next := make([]uint64, w)
		for i := range next {
			next[i] = 1
		}
		// Every processor runs one op concurrently; measure the worst
		// response time — each op may traverse the ring twice, helping
		// one W-word op per processor.
		worst := make([]int64, nCPU)
		for cpu := 0; cpu < nCPU; cpu++ {
			cpu := cpu
			fx.sim.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, At: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				start := e.Now()
				fx.obj.MWCAS(e, fx.words, old, next)
				worst[cpu] = e.Now() - start
			}})
		}
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		var max int64
		for _, w := range worst {
			if w > max {
				max = w
			}
		}
		return max
	}
	// Linear in W at fixed P. (Only the first of the concurrent ops
	// commits; all are still driven through full helping rounds.)
	c4, c8, c16 := cost(4, 4), cost(4, 8), cost(4, 16)
	if r := float64(c16-c8) / float64(c8-c4); r < 1.2 || r > 3.2 {
		t.Errorf("W-scaling not linear: costs %d, %d, %d (difference ratio %.2f)", c4, c8, c16, r)
	}
	// Increasing in P at fixed W.
	p2, p4, p8 := cost(2, 8), cost(4, 8), cost(8, 8)
	if !(p2 < p4 && p4 < p8) {
		t.Errorf("P-scaling not increasing: P=2:%d P=4:%d P=8:%d", p2, p4, p8)
	}
}

// TestOneRoundMode: with run-to-completion jobs (no same-CPU overlap), the
// one-round optimization of [1] is sound and roughly halves helping work.
func TestOneRoundMode(t *testing.T) {
	run := func(oneRound bool) (int64, bool) {
		fx := newFixture(t, sched.Config{Processors: 4, Seed: 3, MemWords: 1 << 16},
			multimwcas.Config{Processors: 4, Procs: 4, Width: 2, OneRound: oneRound}, 2)
		okAll := true
		var total int64
		for cpu := 0; cpu < 4; cpu++ {
			cpu := cpu
			fx.sim.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, At: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				start := e.Now()
				for i := 0; i < 10; i++ {
					old := fx.obj.ReadWord(e, fx.words[0])
					old1 := fx.obj.ReadWord(e, fx.words[1])
					fx.obj.MWCAS(e, fx.words, []uint64{old, old1}, []uint64{old + 1, old1 + 1})
				}
				total += e.Now() - start
			}})
		}
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		// Sanity: the two words move in lockstep.
		if fx.obj.Val(fx.words[0]) != fx.obj.Val(fx.words[1]) {
			okAll = false
		}
		return total, okAll
	}
	two, ok2 := run(false)
	one, ok1 := run(true)
	if !ok1 || !ok2 {
		t.Fatal("lockstep invariant violated")
	}
	if one >= two {
		t.Errorf("one-round mode not faster: one=%d two=%d", one, two)
	}
}

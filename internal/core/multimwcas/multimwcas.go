// Package multimwcas implements the paper's wait-free multi-word
// compare-and-swap for priority-based multiprocessors (Section 3.1,
// Figure 6).
//
// The implementation combines incremental helping (one announce variable per
// processor), cyclic or priority helping across processors (internal/
// helping), and the CCAS primitive (internal/prim). A W-word MWCAS on P
// processors completes in Θ(2·P·W) time: at most two traversals of the
// helping ring, helping at most one W-word operation per processor per
// traversal. Unlike the uniprocessor algorithm (internal/core/unimwcas), no
// control bits are packed into application words, so it could also be used
// on a uniprocessor at the price of CCAS; the trade-off the paper discusses
// at the end of Section 2.1.
//
// Rv[p] encodes the state of process p's latest operation: 0 — compare phase
// not complete; 1 — compare complete, swap phase in progress; 2 — committed
// (returns true); 3 — failed (returns false). Rv[N] is permanently 2 so an
// empty announce slot reads as "nothing to do".
package multimwcas

import (
	"fmt"

	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/shmem"
)

// Rv values.
const (
	// RvComparing: compare phase not completed.
	RvComparing uint64 = 0
	// RvSwapping: compare phase completed, swap phase not completed.
	RvSwapping uint64 = 1
	// RvTrue: the MWCAS committed.
	RvTrue uint64 = 2
	// RvFalse: the MWCAS failed.
	RvFalse uint64 = 3
)

// Done is the completion predicate for Rv values (rv >= 2).
func Done(rv uint64) bool { return rv >= RvTrue }

// Config configures the object.
type Config struct {
	// Processors is P, Procs is N, Width is B (max words per operation).
	Processors, Procs, Width int
	// CC selects the CCAS implementation (native, tagged, delayed).
	CC prim.Impl
	// Mode selects cyclic or priority helping; defaults to Cyclic.
	Mode helping.Mode
	// OneRound enables the single-traversal real-time optimization of
	// reference [1] (see helping.Config.OneRound for the soundness
	// condition).
	OneRound bool
}

// Object is a multiprocessor wait-free MWCAS instance.
type Object struct {
	mem shmem.Memory
	cc  prim.Impl
	eng *helping.Engine
	n   int
	b   int

	par shmem.Addr // Par[p]: numwds, B addrs, B olds, B news per process
}

// Par row layout: numwds, then addr[0..B), old[0..B), new[0..B).
func (o *Object) parNumwds(p int) shmem.Addr { return o.par + shmem.Addr(p*(1+3*o.b)) }
func (o *Object) parAddr(p, i int) shmem.Addr {
	return o.parNumwds(p) + 1 + shmem.Addr(i)
}
func (o *Object) parOld(p, i int) shmem.Addr {
	return o.parNumwds(p) + 1 + shmem.Addr(o.b+i)
}
func (o *Object) parNew(p, i int) shmem.Addr {
	return o.parNumwds(p) + 1 + shmem.Addr(2*o.b+i)
}

// New allocates the object and its helping engine.
func New(m shmem.Memory, cfg Config) (*Object, error) {
	if cfg.Width < 1 {
		return nil, fmt.Errorf("multimwcas: width %d out of range", cfg.Width)
	}
	if cfg.CC == nil {
		cfg.CC = prim.Native{}
	}
	if cfg.Mode == 0 {
		cfg.Mode = helping.Cyclic
	}
	o := &Object{mem: m, cc: cfg.CC, n: cfg.Procs, b: cfg.Width}
	// One guard row at index N so a stale read of Ann[R] == N dereferences
	// in-bounds memory (the paper types announce pids as 0..N).
	par, err := m.Alloc("Par", (cfg.Procs+1)*(1+3*cfg.Width))
	if err != nil {
		return nil, fmt.Errorf("multimwcas: %w", err)
	}
	o.par = par
	eng, err := helping.New(m, helping.Config{
		Processors: cfg.Processors,
		Procs:      cfg.Procs,
		Mode:       cfg.Mode,
		CC:         cfg.CC,
		Done:       Done,
		Help:       o.help,
		OnAnnounce: func(shmem.Ctx) {},
		OneRound:   cfg.OneRound,
	}, RvTrue)
	if err != nil {
		return nil, err
	}
	o.eng = eng
	return o, nil
}

// Engine exposes the helping engine, for checkers and ablation benches.
func (o *Object) Engine() *helping.Engine { return o.eng }

// InitWord initializes an application word at setup time. Under the tagged
// CCAS representation values are limited to the implementation's MaxLogical.
func (o *Object) InitWord(a shmem.Addr, val uint64) {
	o.cc.InitWord(o.mem, a, val)
}

// ReadWord returns the logical value of an application word. See Section
// 3.1's discussion of reads: a plain read does not serialize against
// in-progress MWCAS operations; use ReadConsistent for the helping-scheme
// read the paper describes as the third solution.
func (o *Object) ReadWord(e shmem.Ctx, a shmem.Addr) uint64 {
	return o.cc.Read(e, a)
}

// ReadConsistent advances the help counter once before reading, so any
// partially-complete MWCAS over the word is finished first (the paper's
// third read strategy; ~2·T per read).
func (o *Object) ReadConsistent(e shmem.Ctx, a shmem.Addr) uint64 {
	ver := helping.UnpackVersion(e.Load(o.eng.VAddr()))
	if ver.Needhelp {
		o.help(e, ver)
	}
	o.eng.Advance(e, ver)
	return o.cc.Read(e, a)
}

// Val returns the logical value of an application word without charging
// simulated time (checkers and quiescent inspection).
func (o *Object) Val(a shmem.Addr) uint64 { return o.cc.Logical(o.mem.Peek(a)) }

// RvAddr exposes Rv[p]'s address for checkers.
func (o *Object) RvAddr(p int) shmem.Addr { return o.eng.RvAddr(p) }

// MWCAS performs the multi-word compare-and-swap (lines 1-15 of Figure 6).
// It reports whether the operation committed.
func (o *Object) MWCAS(e shmem.Ctx, addrs []shmem.Addr, old, new []uint64) bool {
	p := e.Slot()
	o.checkArgs(p, addrs, old, new)
	// Line 1: Par[p] := (numwds, addr, old, new).
	e.Store(o.parNumwds(p), uint64(len(addrs)))
	for i := range addrs {
		e.Store(o.parAddr(p, i), uint64(addrs[i]))
		e.Store(o.parOld(p, i), old[i])
		e.Store(o.parNew(p, i), new[i])
	}
	// Line 2: Rv[p] := 0. A protocol write: no helper can hold a live
	// CCAS on Rv[p] because the previous operation's round is over.
	o.cc.Write(e, o.eng.RvAddr(p), RvComparing)
	// Lines 3-15: two rounds of helping drive the operation.
	o.eng.DoOp(e)
	return o.cc.Read(e, o.eng.RvAddr(p)) == RvTrue
}

// help helps the operation announced on ver.Target (lines 16-30).
func (o *Object) help(e shmem.Ctx, ver helping.Version) {
	cpid := o.eng.AnnPid(e, ver.Target) // line 16
	rv := o.cc.Read(e, o.eng.RvAddr(cpid))
	if Done(rv) { // line 17
		return
	}
	numwds := int(e.Load(o.parNumwds(cpid))) // line 18: par := &Par[cpid]
	for i := 0; i < numwds; i++ {            // line 19
		a := shmem.Addr(e.Load(o.parAddr(cpid, i)))
		oldv := e.Load(o.parOld(cpid, i))
		if o.cc.Read(e, a) != oldv { // line 20
			if !o.cc.Exec(e, o.eng.VAddr(), versionWord(ver), o.eng.RvAddr(cpid), RvComparing, RvFalse) { // line 21
				break
			}
			return // line 22
		}
	}
	o.cc.Exec(e, o.eng.VAddr(), versionWord(ver), o.eng.RvAddr(cpid), RvComparing, RvSwapping) // line 23
	for i := 0; i < numwds; i++ {                                                              // line 24
		if e.Load(o.eng.VAddr()) != versionWord(ver) { // line 25
			return
		}
		if Done(o.cc.Read(e, o.eng.RvAddr(cpid))) { // line 26
			return
		}
		oldv := e.Load(o.parOld(cpid, i))
		newv := e.Load(o.parNew(cpid, i))
		if oldv != newv { // line 27
			a := shmem.Addr(e.Load(o.parAddr(cpid, i)))
			o.cc.Exec(e, o.eng.VAddr(), versionWord(ver), a, oldv, newv) // line 28
		}
	}
	o.cc.Exec(e, o.eng.VAddr(), versionWord(ver), o.eng.RvAddr(cpid), RvSwapping, RvTrue) // line 29
}

// versionWord re-packs a Version for CCAS's compare-only parameter.
func versionWord(v helping.Version) uint64 { return helping.PackVersion(v) }

func (o *Object) checkArgs(p int, addrs []shmem.Addr, old, new []uint64) {
	if p < 0 || p >= o.n {
		panic(fmt.Sprintf("multimwcas: slot %d out of range [0,%d)", p, o.n))
	}
	if len(addrs) == 0 || len(addrs) > o.b {
		panic(fmt.Sprintf("multimwcas: %d words out of range [1,%d]", len(addrs), o.b))
	}
	if len(old) != len(addrs) || len(new) != len(addrs) {
		panic("multimwcas: addrs, old, new must have equal length")
	}
	max := o.cc.MaxLogical()
	for i, a := range addrs {
		if old[i] > max || new[i] > max {
			panic(fmt.Sprintf("multimwcas: value exceeds CCAS logical capacity %#x", max))
		}
		for j := 0; j < i; j++ {
			if addrs[j] == a {
				panic(fmt.Sprintf("multimwcas: duplicate address %d at positions %d and %d", int(a), j, i))
			}
		}
	}
}

package unilist_test

import (
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/unilist"
	"repro/internal/sched"
)

// fixture bundles a sim, arena and list.
type fixture struct {
	sim  *sched.Sim
	ar   *arena.Arena
	list *unilist.List
}

func newFixture(t *testing.T, cfg sched.Config, n, nodes int) *fixture {
	t.Helper()
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 16
	}
	s := sched.New(cfg)
	ar, err := arena.New(s.Mem(), nodes, n)
	if err != nil {
		t.Fatal(err)
	}
	l, err := unilist.New(s.Mem(), ar, n)
	if err != nil {
		t.Fatal(err)
	}
	ar.Freeze()
	return &fixture{sim: s, ar: ar, list: l}
}

func TestSequentialSemantics(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 32)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		l := fx.list
		if !l.Insert(e, 10, 100) {
			t.Error("Insert(10) = false, want true")
		}
		if !l.Insert(e, 5, 50) {
			t.Error("Insert(5) = false, want true")
		}
		if !l.Insert(e, 15, 150) {
			t.Error("Insert(15) = false, want true")
		}
		if l.Insert(e, 10, 101) {
			t.Error("duplicate Insert(10) = true, want false")
		}
		if !l.Search(e, 10) {
			t.Error("Search(10) = false, want true")
		}
		if l.Search(e, 7) {
			t.Error("Search(7) = true, want false")
		}
		if !l.Delete(e, 10) {
			t.Error("Delete(10) = false, want true")
		}
		if l.Delete(e, 10) {
			t.Error("second Delete(10) = true, want false")
		}
		if l.Search(e, 10) {
			t.Error("Search(10) after delete = true, want false")
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	got := fx.list.Snapshot()
	want := []uint64{5, 15}
	if len(got) != len(want) {
		t.Fatalf("final list = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("final list = %v, want %v", got, want)
		}
	}
}

func TestSortedOrderMaintained(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 64)
	keys := []uint64{42, 7, 99, 1, 63, 20, 88, 3}
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		for _, k := range keys {
			fx.list.Insert(e, k, k)
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	got := fx.list.Snapshot()
	if len(got) != len(keys) {
		t.Fatalf("list has %d keys, want %d", len(got), len(keys))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("list not sorted: %v", got)
		}
	}
}

func TestNodeRecycling(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 8)
	free := fx.ar.FreeCount(0)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		// Far more insert/delete cycles than pool capacity: recycling
		// must sustain them.
		for i := 0; i < 100; i++ {
			if !fx.list.Insert(e, 30, 1) {
				t.Fatalf("cycle %d: Insert failed", i)
			}
			if !fx.list.Delete(e, 30) {
				t.Fatalf("cycle %d: Delete failed", i)
			}
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fx.ar.FreeCount(0); got != free {
		t.Errorf("free count after cycles = %d, want %d (no leaks)", got, free)
	}
}

func TestDuplicateInsertRecyclesNode(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 8)
	free := fx.ar.FreeCount(0)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		fx.list.Insert(e, 30, 1)
		for i := 0; i < 20; i++ {
			if fx.list.Insert(e, 30, 1) {
				t.Fatal("duplicate insert succeeded")
			}
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fx.ar.FreeCount(0); got != free-1 {
		t.Errorf("free count = %d, want %d (duplicate inserts must not leak)", got, free-1)
	}
}

func TestReservedKeysPanic(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 8)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		fx.list.Insert(e, unilist.KeyMax, 0)
	})
	if err := fx.sim.Run(); err == nil {
		t.Fatal("sentinel key accepted")
	}
}

// TestFigure2Trace reproduces the paper's Figure 2 incremental-helping
// scenario: p announces; q preempts p and starts helping it; r preempts q,
// helps p to completion, runs its own operation; q resumes, runs its own
// operation; p returns. Each process helps at most one other process.
func TestFigure2Trace(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1, EnableTrace: true}, 3, 32)
	var pOK, qOK, rOK bool
	fx.sim.Spawn(sched.JobSpec{Name: "p", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		pOK = fx.list.Insert(e, 10, 1)
	}})
	// q arrives while p is between announce and completion.
	fx.sim.Spawn(sched.JobSpec{Name: "q", CPU: 0, Prio: 2, Slot: 1, AfterSlices: 15, Body: func(e *sched.Env) {
		qOK = fx.list.Insert(e, 20, 2)
	}})
	// r arrives while q is inside Help(p).
	fx.sim.Spawn(sched.JobSpec{Name: "r", CPU: 0, Prio: 3, Slot: 2, AfterSlices: 28, Body: func(e *sched.Env) {
		rOK = fx.list.Insert(e, 30, 3)
	}})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !pOK || !qOK || !rOK {
		t.Fatalf("operations failed: p=%v q=%v r=%v", pOK, qOK, rOK)
	}
	log := fx.sim.Trace()

	// The Figure 2 event pattern, in order.
	i := log.FindNote(0, "announce p=0")
	if i < 0 {
		t.Fatalf("no announce by p; trace:\n%s", log)
	}
	j := log.FindNote(i+1, "help p=0")
	if j < 0 || log.Events()[j].ProcName != "q" {
		t.Fatalf("q does not help p after p's announce; trace:\n%s", log)
	}
	k := log.FindNote(j+1, "help p=0")
	if k < 0 || log.Events()[k].ProcName != "r" {
		t.Fatalf("r does not help p after q; trace:\n%s", log)
	}
	a := log.FindNote(k+1, "announce p=2")
	if a < 0 {
		t.Fatalf("r does not announce its own operation after helping; trace:\n%s", log)
	}
	b := log.FindNote(a+1, "announce p=1")
	if b < 0 {
		t.Fatalf("q does not announce its own operation after r; trace:\n%s", log)
	}

	// "With incremental helping, each process helps at most one other
	// process."
	helpsBy := map[string]int{}
	for _, ev := range log.Annotations() {
		if msg := ev.Message(); len(msg) >= 4 && msg[:4] == "help" {
			helpsBy[ev.ProcName]++
		}
	}
	for name, n := range helpsBy {
		if n > 1 {
			t.Errorf("process %s helped %d operations, want at most 1", name, n)
		}
	}

	got := fx.list.Snapshot()
	want := []uint64{10, 20, 30}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("final list = %v, want %v", got, want)
	}
}

// TestPreemptionPointSweep releases a higher-priority adversary at every
// possible slice of a victim's operation and checks the model at each
// release point. This exhaustively covers the preemption windows the paper
// argues about informally (between lines 37-42, 42-45, 37-48 of Figure 5).
func TestPreemptionPointSweep(t *testing.T) {
	type advOp struct {
		name string
		run  func(l *unilist.List, e *sched.Env) bool
	}
	advs := []advOp{
		{"delete_same_key", func(l *unilist.List, e *sched.Env) bool { return l.Delete(e, 10) }},
		{"insert_same_key", func(l *unilist.List, e *sched.Env) bool { return l.Insert(e, 10, 99) }},
		{"insert_before", func(l *unilist.List, e *sched.Env) bool { return l.Insert(e, 7, 99) }},
		{"delete_neighbor", func(l *unilist.List, e *sched.Env) bool { return l.Delete(e, 15) }},
	}
	for _, adv := range advs {
		adv := adv
		t.Run(adv.name, func(t *testing.T) {
			for k := int64(0); k < 90; k++ {
				fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 2, 32)
				chk := check.NewUniListChecker(fx.list, fx.sim.Mem(), 2)
				// Seed the list with {5, 15} sequentially.
				seedDone := false
				fx.sim.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
					fx.list.Insert(e, 5, 0)
					chk.EndOp(0, true)
					fx.list.Insert(e, 15, 0)
					chk.EndOp(0, true)
					seedDone = true
					ok := fx.list.Insert(e, 10, 1)
					chk.EndOp(0, ok)
				}})
				fx.sim.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 9, Slot: 1, AfterSlices: 60 + k, Body: func(e *sched.Env) {
					ok := adv.run(fx.list, e)
					chk.EndOp(1, ok)
				}})
				if err := fx.sim.Run(); err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if !seedDone {
					t.Fatalf("k=%d: adversary released before seeding finished; widen offset", k)
				}
				chk.Finish()
				if err := chk.Err(); err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
			}
		})
	}
}

// TestStressWithChecker: randomized prioritized jobs, all operations checked
// against the serialized model.
func TestStressWithChecker(t *testing.T) {
	f := func(seed int64) bool {
		const nProcs = 5
		fx := newFixture(t, sched.Config{Processors: 1, Seed: seed, MemWords: 1 << 17}, nProcs, 256)
		chk := check.NewUniListChecker(fx.list, fx.sim.Mem(), nProcs)
		rng := fx.sim.Rand()
		for p := 0; p < nProcs; p++ {
			p := p
			fx.sim.Spawn(sched.JobSpec{
				Name: "", CPU: 0, Prio: sched.Priority(rng.Intn(8)), Slot: p,
				At: rng.Int63n(300), AfterSlices: -1,
				Body: func(e *sched.Env) {
					for op := 0; op < 12; op++ {
						key := uint64(1 + e.Rand().Intn(12))
						var ok bool
						switch e.Rand().Intn(3) {
						case 0:
							ok = fx.list.Insert(e, key, key*10)
						case 1:
							ok = fx.list.Delete(e, key)
						default:
							ok = fx.list.Search(e, key)
						}
						chk.EndOp(p, ok)
					}
				},
			})
		}
		if err := fx.sim.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if chk.Announces() != nProcs*12 {
			t.Fatalf("seed %d: %d announces, want %d", seed, chk.Announces(), nProcs*12)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// seededFixture builds a fixture whose list is pre-loaded with keys
// 10, 20, ..., 10*m at setup time.
func seededFixture(t *testing.T, n, m int) *fixture {
	t.Helper()
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 18})
	ar, err := arena.New(s.Mem(), m+16, n)
	if err != nil {
		t.Fatal(err)
	}
	l, err := unilist.New(s.Mem(), ar, n)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, m)
	for i := range keys {
		keys[i] = uint64(10 * (i + 1))
	}
	if err := l.SeedAscending(keys); err != nil {
		t.Fatal(err)
	}
	ar.Freeze()
	return &fixture{sim: s, ar: ar, list: l}
}

// TestSeedAscending validates the bulk loader.
func TestSeedAscending(t *testing.T) {
	fx := seededFixture(t, 1, 5)
	got := fx.list.Snapshot()
	want := []uint64{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("seeded list = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seeded list = %v, want %v", got, want)
		}
	}
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		if !fx.list.Search(e, 30) {
			t.Error("Search(30) on seeded list failed")
		}
		if !fx.list.Delete(e, 30) {
			t.Error("Delete(30) on seeded list failed")
		}
		if !fx.list.Insert(e, 35, 0) {
			t.Error("Insert(35) on seeded list failed")
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTheta2T: an operation helped once costs at most about twice an
// interference-free operation of the same length (the Θ(2T) bound of
// Figure 1, with the constant 2 reflecting "the cost of helping"). The key
// mechanism is the Ann.ptr scan checkpoint: a preemptor resumes the
// victim's scan rather than restarting it.
func TestTheta2T(t *testing.T) {
	const m = 80
	// Interference-free cost of a tail insert (scan of ~m nodes).
	base := func() int64 {
		fx := seededFixture(t, 2, m)
		var elapsed int64
		fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
			start := e.Now()
			fx.list.Insert(e, uint64(10*m+5), 0)
			elapsed = e.Now() - start
		})
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}()
	// Response time of the same insert when a full-list search preempts
	// it mid-scan: the preemptor first helps the victim to completion
	// (one scan suffix), then runs its own scan. The victim's response
	// time includes the preemptor's entire execution, bounded by ~2T.
	var worst int64
	for _, k := range []int64{base / 4, base / 2, 3 * base / 4} {
		fx := seededFixture(t, 2, m)
		var elapsed int64
		fx.sim.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
			start := e.Now()
			fx.list.Insert(e, uint64(10*m+5), 0)
			elapsed = e.Now() - start
		}})
		fx.sim.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 9, Slot: 1, AfterSlices: k, Body: func(e *sched.Env) {
			fx.list.Search(e, uint64(10*m+5))
		}})
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		if elapsed > worst {
			worst = elapsed
		}
	}
	ratio := float64(worst) / float64(base)
	// One helping round plus own work: ratio should sit near 2 and must
	// stay well under 3 (a restarted scan would push it past 2 per
	// preemption; the checkpoint keeps total work ~2T).
	if ratio > 2.6 {
		t.Errorf("helped op response %d vs interference-free %d: ratio %.2f, want <= ~2 (Θ(2T))", worst, base, ratio)
	}
}

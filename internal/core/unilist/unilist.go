// Package unilist implements the paper's wait-free sorted linked list for
// priority-based uniprocessors (Section 2.2, Figure 5).
//
// The implementation is built on incremental helping (Figure 2): a single
// announce variable Ann serves the whole processor. Before announcing its
// own operation, a process first helps any previously-announced (necessarily
// lower-priority, necessarily preempted) operation to completion; therefore
// at most one operation is ever pending, each process helps at most one
// other process, and a list operation completes in Θ(2T) worst-case time
// where T is the cost of one list traversal.
//
// Scan work is never repeated: Ann.ptr records the last node successfully
// scanned, so a helper resumes a partially-complete scan at its checkpoint
// rather than from the head (Findpos, lines 24-31).
//
// Insertion uses the (pointer, bit) protocol of lines 38-46: the bit field
// of the predecessor's next pointer is raised before the splice so that a
// helper that completes the operation forces any stale helper's subsequent
// CAS to fail. Deletion safety (lines 47-49) relies on the arena allocator:
// a deleted node is freed by the process that requested the deletion, inside
// its Delete call, so on a priority uniprocessor no stale helper can observe
// the node recycled mid-help.
//
// Reconstruction notes (the PODC press copy is ambiguous in two places):
// inserting a key that is already present skips the splice and reports
// failure (Rv=1), mirroring the search case on line 50; deleting an absent
// key likewise reports failure. Both choices give Insert/Delete/Search the
// standard set semantics implied by the prose ("If the key is not already in
// the list, then the next field ...").
package unilist

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Operation codes stored in Par[p].op.
const (
	opIns uint64 = iota + 1
	opDel
	opSch
)

// Return values stored in Rv[p].
const (
	// RvPending: the operation has not completed.
	RvPending uint64 = 0
	// RvFalse: the operation completed and reports false.
	RvFalse uint64 = 1
	// RvTrue: the operation completed and reports true.
	RvTrue uint64 = 2
)

// KeyMin and KeyMax bound the user key space; they are the sentinel keys of
// First and Last.
const (
	KeyMin = uint64(0)
	KeyMax = ^uint64(0)
)

// packPtr encodes a nodeptr (pointer plus one control bit) into a word.
func packPtr(r arena.Ref, bit uint64) uint64 { return uint64(r)<<1 | bit&1 }

// unpackPtr decodes a nodeptr word.
func unpackPtr(w uint64) (arena.Ref, uint64) { return arena.Ref(w >> 1), w & 1 }

// List is a wait-free sorted linked list shared by n processes on one
// priority-scheduled processor.
type List struct {
	mem shmem.Memory
	ar  *arena.Arena
	n   int

	first, last arena.Ref
	par         shmem.Addr // Par[p]: node, key, op (3 words per process)
	ann         shmem.Addr // Ann.ptr, Ann.pid (2 words)
	rv          shmem.Addr // Rv[0..N]
}

// Par field offsets.
const (
	parNode   = 0
	parKey    = 1
	parOp     = 2
	parStride = 3
)

// New creates a list for n processes, allocating its sentinels from ar.
// The arena must not be frozen yet.
func New(m shmem.Memory, ar *arena.Arena, n int) (*List, error) {
	if n < 1 {
		return nil, fmt.Errorf("unilist: process count %d out of range", n)
	}
	par, err := m.Alloc("Par", n*parStride)
	if err != nil {
		return nil, fmt.Errorf("unilist: %w", err)
	}
	ann, err := m.Alloc("Ann", 2)
	if err != nil {
		return nil, fmt.Errorf("unilist: %w", err)
	}
	rv, err := m.Alloc("Rv", n+1)
	if err != nil {
		return nil, fmt.Errorf("unilist: %w", err)
	}
	l := &List{mem: m, ar: ar, n: n, par: par, ann: ann, rv: rv}
	l.first = ar.Static()
	l.last = ar.Static()
	// First = (-inf, 0, (&Last, 0)); Last = (+inf, 0, (NIL, 0)).
	m.Poke(ar.KeyAddr(l.first), KeyMin)
	m.Poke(ar.ValAddr(l.first), 0)
	m.Poke(ar.NextAddr(l.first), packPtr(l.last, 0))
	m.Poke(ar.KeyAddr(l.last), KeyMax)
	m.Poke(ar.ValAddr(l.last), 0)
	m.Poke(ar.NextAddr(l.last), packPtr(arena.NIL, 0))
	// Ann = (&First, N): no operation pending.
	m.Poke(l.annPtr(), uint64(l.first))
	m.Poke(l.annPid(), uint64(n))
	return l, nil
}

func (l *List) annPtr() shmem.Addr { return l.ann }
func (l *List) annPid() shmem.Addr { return l.ann + 1 }

func (l *List) parAddr(p int, field shmem.Addr) shmem.Addr {
	return l.par + shmem.Addr(p*parStride) + field
}

// RvAddr returns the address of Rv[p], for checkers.
func (l *List) RvAddr(p int) shmem.Addr { return l.rv + shmem.Addr(p) }

// AnnPidAddr returns the address of Ann.pid, for checkers.
func (l *List) AnnPidAddr() shmem.Addr { return l.annPid() }

// PeekPar returns process p's Par record (node, key, op) read directly from
// memory, for checkers.
func (l *List) PeekPar(p int) (node, key, op uint64) {
	return l.mem.Peek(l.parAddr(p, parNode)),
		l.mem.Peek(l.parAddr(p, parKey)),
		l.mem.Peek(l.parAddr(p, parOp))
}

// First returns the head sentinel, for checkers.
func (l *List) First() arena.Ref { return l.first }

// Last returns the tail sentinel, for checkers.
func (l *List) Last() arena.Ref { return l.last }

// Arena returns the node arena the list allocates from.
func (l *List) Arena() *arena.Arena { return l.ar }

// Insert adds key with the given value (lines 1-5 of Figure 5). It reports
// false if the key was already present. Keys must lie strictly between
// KeyMin and KeyMax.
func (l *List) Insert(e shmem.Ctx, key, val uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	node, ok := l.ar.Alloc(e, p) // line 1: nodealloc()
	if !ok {
		panic(fmt.Sprintf("unilist: process %d exhausted its node pool", p))
	}
	// Line 2: *Par[p].node := (key, val, (NIL, 0)).
	e.Store(l.ar.KeyAddr(node), key)
	e.Store(l.ar.ValAddr(node), val)
	e.Store(l.ar.NextAddr(node), packPtr(arena.NIL, 0))
	e.Store(l.parAddr(p, parNode), uint64(node))
	e.Store(l.parAddr(p, parKey), key)  // line 3
	e.Store(l.parAddr(p, parOp), opIns) // line 4
	l.doOp(e)                           // line 5
	if e.Load(l.RvAddr(p)) == RvTrue {
		return true
	}
	// Duplicate key: the node was not linked; recycle it. This must
	// happen inside Insert, before relinquishing, so stale helpers can
	// never see the node re-initialized while they still hold it.
	l.ar.Free(e, p, node)
	return false
}

// Delete removes key (lines 6-10 of Figure 5), reporting whether it was
// present. The removed node is recycled into the calling process's pool.
func (l *List) Delete(e shmem.Ctx, key uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	e.Store(l.parAddr(p, parKey), key)                // line 6
	e.Store(l.parAddr(p, parOp), opDel)               // line 7
	e.Store(l.parAddr(p, parNode), uint64(arena.NIL)) // line 8
	l.doOp(e)                                         // line 9
	node := arena.Ref(e.Load(l.parAddr(p, parNode)))
	if node != arena.NIL {
		l.ar.Free(e, p, node) // line 10: nodefree(Par[p].node)
	}
	return e.Load(l.RvAddr(p)) == RvTrue
}

// Search reports whether key is present (lines 11-14 of Figure 5).
func (l *List) Search(e shmem.Ctx, key uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	e.Store(l.parAddr(p, parKey), key)   // line 11
	e.Store(l.parAddr(p, parOp), opSch)  // line 12
	l.doOp(e)                            // line 13
	return e.Load(l.RvAddr(p)) == RvTrue // line 14
}

// doOp is the Do_op procedure (lines 15-23): help any previously-announced
// operation, announce ours, execute it, and clear the announcement.
func (l *List) doOp(e shmem.Ctx) {
	p := e.Slot()
	if e.Traced() {
		e.Note("invoke", trace.I("p", int64(p)))
	}
	pid := int(e.Load(l.annPid()))                       // line 15
	if pid < l.n && e.Load(l.RvAddr(pid)) == RvPending { // line 16
		l.help(e, pid) // line 17
	}
	e.Store(l.RvAddr(p), RvPending)      // line 18
	e.Store(l.annPtr(), uint64(l.first)) // line 19
	e.Store(l.annPid(), uint64(p))       // line 20
	if e.Traced() {
		e.Note("announce", trace.I("p", int64(p)))
	}
	l.help(e, p)                         // line 21
	e.Store(l.annPtr(), uint64(l.first)) // line 22
	e.Store(l.annPid(), uint64(l.n))     // line 23
	if e.Traced() {
		e.Note("response", trace.I("p", int64(p)))
	}
}

// help executes (or helps) process pid's announced operation (the Help
// procedure, lines 32-51).
func (l *List) help(e shmem.Ctx, pid int) {
	if pid != e.Slot() {
		e.NoteHelp(pid)
	}
	key := e.Load(l.parAddr(pid, parKey)) // line 32
	curr := l.findpos(e, key, pid)        // line 33
	nextp := e.Load(l.ar.NextAddr(curr))  // line 34
	nextRef, _ := unpackPtr(nextp)
	nextkey := e.Load(l.ar.KeyAddr(nextRef))    // line 35
	nextnextp := e.Load(l.ar.NextAddr(nextRef)) // line 36
	nextnextRef, _ := unpackPtr(nextnextp)
	if e.Load(l.RvAddr(pid)) != RvPending { // line 37
		return
	}
	switch e.Load(l.parAddr(pid, parOp)) {
	case opIns:
		newNode := arena.Ref(e.Load(l.parAddr(pid, parNode))) // line 39
		if nextkey == key {
			// Reconstructed duplicate-key path (see package doc).
			e.Store(l.RvAddr(pid), RvFalse)
			return
		}
		// Line 41: point the new node at its successor. The expected
		// old value (NIL, 0) makes this a no-op for stale helpers:
		// once the node is linked or recycled its next is non-NIL.
		e.CAS(l.ar.NextAddr(newNode), packPtr(arena.NIL, 0), packPtr(nextRef, 0))
		// Line 42: raise the bit on the predecessor's next field
		// without changing the pointer.
		e.CAS(l.ar.NextAddr(curr), nextp, packPtr(nextRef, 1))
		// Line 43: nextp.bit := 1 (local).
		nextp = packPtr(nextRef, 1)
		if e.Load(l.RvAddr(pid)) == RvPending { // line 44
			if e.CAS(l.ar.NextAddr(curr), nextp, packPtr(newNode, 0)) { // line 45
				if e.Traced() {
					e.Note("splice", trace.I("p", int64(pid)), trace.I("key", int64(key)))
				}
			}
		} else {
			e.CAS(l.ar.NextAddr(curr), nextp, packPtr(nextRef, 0)) // line 46
		}
	case opDel:
		if nextkey == key { // line 47
			if e.CAS(l.ar.NextAddr(curr), nextp, packPtr(nextnextRef, 0)) { // line 48
				if e.Traced() {
					e.Note("unsplice", trace.I("p", int64(pid)), trace.I("key", int64(key)))
				}
			}
			e.Store(l.parAddr(pid, parNode), uint64(nextRef)) // line 49
		} else {
			// Reconstructed absent-key path (see package doc).
			e.Store(l.RvAddr(pid), RvFalse)
			return
		}
	case opSch:
		if nextkey != key { // line 50
			e.Store(l.RvAddr(pid), RvFalse)
			return
		}
	}
	e.Store(l.RvAddr(pid), RvTrue) // line 51
}

// findpos performs (or resumes) the scan for process pid's operation,
// returning the predecessor of the first node whose key is at least key
// (the Findpos procedure, lines 24-31). The scan checkpoint lives in
// Ann.ptr so helpers never rescan completed prefixes.
func (l *List) findpos(e shmem.Ctx, key uint64, pid int) arena.Ref {
	for e.Load(l.RvAddr(pid)) == RvPending { // line 24
		curr := arena.Ref(e.Load(l.annPtr())) // line 25
		nextp := e.Load(l.ar.NextAddr(curr))  // line 26
		nextRef, _ := unpackPtr(nextp)
		nextkey := e.Load(l.ar.KeyAddr(nextRef))                                       // line 27
		if e.Load(l.RvAddr(pid)) != RvPending || nextkey >= key || nextRef == l.last { // line 28
			return curr // line 29
		}
		e.Store(l.annPtr(), uint64(nextRef)) // line 30
	}
	return l.first // line 31
}

// SeedAscending bulk-loads the list with the given strictly ascending keys
// at setup time (before the arena is frozen and the run starts), using
// static arena nodes. Values are set equal to the keys. It is how the
// benchmark harness builds its initial lists of 200-2,000 elements.
func (l *List) SeedAscending(keys []uint64) error {
	prev := l.first
	for i, k := range keys {
		if k == KeyMin || k == KeyMax {
			return fmt.Errorf("unilist: seed key %#x is reserved", k)
		}
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("unilist: seed keys not strictly ascending at %d", i)
		}
		node := l.ar.Static()
		l.mem.Poke(l.ar.KeyAddr(node), k)
		l.mem.Poke(l.ar.ValAddr(node), k)
		l.mem.Poke(l.ar.NextAddr(node), packPtr(l.last, 0))
		l.mem.Poke(l.ar.NextAddr(prev), packPtr(node, 0))
		prev = node
	}
	return nil
}

// Snapshot returns the keys currently in the list, in order. It reads
// memory directly (no simulated time) and is meaningful only at quiescence;
// it is for tests and checkers.
// SnapshotRegion reports the address range whose words fully determine
// Snapshot, so per-write checkers can skip writes that cannot change it.
func (l *List) SnapshotRegion() (lo, hi shmem.Addr) { return l.ar.NodeRegion() }

func (l *List) Snapshot() []uint64 { return l.AppendSnapshot(nil) }

// AppendSnapshot appends the snapshot to dst and returns the extended
// slice, letting per-write checkers reuse one scratch buffer across a
// sweep instead of allocating a fresh slice per observed write.
func (l *List) AppendSnapshot(dst []uint64) []uint64 {
	keys := dst
	base := len(dst)
	r, _ := unpackPtr(l.mem.Peek(l.ar.NextAddr(l.first)))
	for r != l.last && r != arena.NIL {
		keys = append(keys, l.mem.Peek(l.ar.KeyAddr(r)))
		if len(keys)-base > l.ar.Capacity() {
			panic("unilist: list cycle detected")
		}
		r, _ = unpackPtr(l.mem.Peek(l.ar.NextAddr(r)))
	}
	return keys
}

func (l *List) checkKey(key uint64) {
	if key == KeyMin || key == KeyMax {
		panic(fmt.Sprintf("unilist: key %#x is reserved for sentinels", key))
	}
}

// Package multiqueue implements a wait-free FIFO queue for priority-based
// multiprocessors — the queue instance of the paper's Section 4 claim,
// built exactly like the multiprocessor list (Figure 7): per-processor
// announce records, cyclic or priority helping, and version-guarded CCAS
// for every structural update.
//
// Enqueue is the list's insert protocol at the tail position (the scan for
// the tail checkpoints in Ann[R].ptr); dequeue fixes its victim in
// Par[p].node with a version-guarded CCAS before unsplicing, exactly as the
// list's delete records its node on line 53. All the round-stability
// arguments of the list transfer: an operation completes inside the round
// that decides it, so the "already done" discriminators (the new node's
// next pointer for enqueues, Par[p].node for dequeues) are safe.
package multiqueue

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Operation codes stored in Par[p].op.
const (
	opEnq uint64 = iota + 1
	opDeq
)

// Rv values.
const (
	// RvPending: the operation has not completed.
	RvPending uint64 = 0
	// RvFalse: the operation completed and reports false (empty dequeue).
	RvFalse uint64 = 1
	// RvTrue: the operation completed and reports true.
	RvTrue uint64 = 2
)

// Done is the completion predicate.
func Done(rv uint64) bool { return rv != RvPending }

// Config configures the queue.
type Config struct {
	// Processors is P; Procs is N.
	Processors, Procs int
	// CC selects the CCAS implementation; defaults to Native.
	CC prim.Impl
	// Mode selects cyclic or priority helping; defaults to Cyclic.
	Mode helping.Mode
	// OneRound enables the single-traversal optimization of [1].
	OneRound bool
}

// Queue is a wait-free FIFO queue.
type Queue struct {
	mem shmem.Memory
	ar  *arena.Arena
	cc  prim.Impl
	eng *helping.Engine
	n   int

	first, last arena.Ref
	par         shmem.Addr // Par[p]: node, op (N+1 rows)
	annPtr      shmem.Addr // Ann[R].ptr tail-scan checkpoints
}

const (
	parNode   = 0
	parOp     = 1
	parStride = 2
)

// New creates a queue; the arena must not be frozen.
func New(m shmem.Memory, ar *arena.Arena, cfg Config) (*Queue, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("multiqueue: process count %d out of range", cfg.Procs)
	}
	if cfg.CC == nil {
		cfg.CC = prim.Native{}
	}
	if cfg.Mode == 0 {
		cfg.Mode = helping.Cyclic
	}
	par, err := m.Alloc("QPar", (cfg.Procs+1)*parStride)
	if err != nil {
		return nil, fmt.Errorf("multiqueue: %w", err)
	}
	annPtr, err := m.Alloc("QAnnPtr", cfg.Processors)
	if err != nil {
		return nil, fmt.Errorf("multiqueue: %w", err)
	}
	q := &Queue{mem: m, ar: ar, cc: cfg.CC, n: cfg.Procs, par: par, annPtr: annPtr}
	ar.SetNextImpl(cfg.CC)
	q.first = ar.Static()
	q.last = ar.Static()
	cfg.CC.InitWord(m, ar.NextAddr(q.first), uint64(q.last))
	cfg.CC.InitWord(m, ar.NextAddr(q.last), uint64(arena.NIL))
	for r := 0; r < cfg.Processors; r++ {
		cfg.CC.InitWord(m, q.annPtrAddr(r), uint64(q.first))
	}
	eng, err := helping.New(m, helping.Config{
		Processors: cfg.Processors,
		Procs:      cfg.Procs,
		Mode:       cfg.Mode,
		CC:         cfg.CC,
		Done:       Done,
		Help:       q.help,
		OnAnnounce: func(e shmem.Ctx) {
			q.cc.Write(e, q.annPtrAddr(e.CPU()), uint64(q.first))
		},
		OneRound: cfg.OneRound,
	}, RvTrue)
	if err != nil {
		return nil, err
	}
	q.eng = eng
	return q, nil
}

func (q *Queue) annPtrAddr(r int) shmem.Addr { return q.annPtr + shmem.Addr(r) }

func (q *Queue) parAddr(p int, f shmem.Addr) shmem.Addr {
	return q.par + shmem.Addr(p*parStride) + f
}

// Engine exposes the helping engine for checkers and benches.
func (q *Queue) Engine() *helping.Engine { return q.eng }

// Enqueue appends val to the queue.
func (q *Queue) Enqueue(e shmem.Ctx, val uint64) {
	p := e.Slot()
	node, ok := q.ar.Alloc(e, p)
	if !ok {
		panic(fmt.Sprintf("multiqueue: process %d exhausted its node pool", p))
	}
	e.Store(q.ar.ValAddr(node), val)
	q.cc.Write(e, q.ar.NextAddr(node), uint64(arena.NIL))
	q.cc.Write(e, q.parAddr(p, parNode), uint64(node))
	e.Store(q.parAddr(p, parOp), opEnq)
	q.cc.Write(e, q.eng.RvAddr(p), RvPending)
	q.eng.DoOp(e)
}

// Dequeue removes and returns the oldest value; ok is false when the queue
// was empty.
func (q *Queue) Dequeue(e shmem.Ctx) (val uint64, ok bool) {
	p := e.Slot()
	e.Store(q.parAddr(p, parOp), opDeq)
	q.cc.Write(e, q.parAddr(p, parNode), uint64(arena.NIL))
	q.cc.Write(e, q.eng.RvAddr(p), RvPending)
	q.eng.DoOp(e)
	node := arena.Ref(q.cc.Read(e, q.parAddr(p, parNode)))
	if node == arena.NIL {
		return 0, false
	}
	val = e.Load(q.ar.ValAddr(node))
	q.ar.Free(e, p, node)
	return val, true
}

// help drives the operation announced on ver.Target.
func (q *Queue) help(e shmem.Ctx, ver helping.Version) {
	vw := helping.PackVersion(ver)
	pid := q.eng.AnnPid(e, ver.Target)
	switch e.Load(q.parAddr(pid, parOp)) {
	case opEnq:
		q.helpEnq(e, vw, ver, pid)
	case opDeq:
		q.helpDeq(e, vw, pid)
	default:
		// Guard row or stale announce; all CCASes would fail anyway.
	}
}

func (q *Queue) helpEnq(e shmem.Ctx, vw uint64, ver helping.Version, pid int) {
	curr := q.findtail(e, ver, pid)
	if e.Load(q.eng.VAddr()) != vw {
		return
	}
	nextp := arena.Ref(q.cc.Read(e, q.ar.NextAddr(curr)))
	if q.cc.Read(e, q.eng.RvAddr(pid)) != RvPending {
		return
	}
	newNode := arena.Ref(q.cc.Read(e, q.parAddr(pid, parNode)))
	if curr != newNode {
		// Splice before the tail sentinel (the list's lines 50-51).
		q.cc.Exec(e, q.eng.VAddr(), vw, q.ar.NextAddr(newNode), uint64(arena.NIL), uint64(q.last))
		if nextp == q.last {
			if q.cc.Exec(e, q.eng.VAddr(), vw, q.ar.NextAddr(curr), uint64(q.last), uint64(newNode)) {
				if e.Traced() {
					e.Note("enqueue", trace.I("p", int64(pid)), trace.I("node", int64(newNode)))
				}
			}
		}
	}
	// curr == newNode: the scan landed on the operation's own node — the
	// splice is already done this round. Fall through either way.
	q.cc.Exec(e, q.eng.VAddr(), vw, q.eng.RvAddr(pid), RvPending, RvTrue)
}

func (q *Queue) helpDeq(e shmem.Ctx, vw uint64, pid int) {
	victim := arena.Ref(q.cc.Read(e, q.parAddr(pid, parNode)))
	if victim == arena.NIL {
		head := arena.Ref(q.cc.Read(e, q.ar.NextAddr(q.first)))
		if q.cc.Read(e, q.eng.RvAddr(pid)) != RvPending {
			return
		}
		if head == q.last {
			q.cc.Exec(e, q.eng.VAddr(), vw, q.eng.RvAddr(pid), RvPending, RvFalse)
			return
		}
		// Fix the victim (line 53 of Figure 7).
		q.cc.Exec(e, q.eng.VAddr(), vw, q.parAddr(pid, parNode), uint64(arena.NIL), uint64(head))
		victim = arena.Ref(q.cc.Read(e, q.parAddr(pid, parNode)))
		if victim == arena.NIL {
			return // version moved; a newer round will finish the job
		}
	}
	succ := arena.Ref(q.cc.Read(e, q.ar.NextAddr(victim)))
	if q.cc.Read(e, q.eng.RvAddr(pid)) != RvPending {
		return
	}
	if q.cc.Exec(e, q.eng.VAddr(), vw, q.ar.NextAddr(q.first), uint64(victim), uint64(succ)) {
		if e.Traced() {
			e.Note("dequeue", trace.I("p", int64(pid)), trace.I("node", int64(victim)))
		}
	}
	q.cc.Exec(e, q.eng.VAddr(), vw, q.eng.RvAddr(pid), RvPending, RvTrue)
}

// findtail scans for the tail predecessor from the processor's checkpoint.
func (q *Queue) findtail(e shmem.Ctx, ver helping.Version, pid int) arena.Ref {
	vw := helping.PackVersion(ver)
	for q.cc.Read(e, q.eng.RvAddr(pid)) == RvPending {
		curr := arena.Ref(q.cc.Read(e, q.annPtrAddr(ver.Target)))
		nextp := arena.Ref(q.cc.Read(e, q.ar.NextAddr(curr)))
		if e.Load(q.eng.VAddr()) != vw {
			return q.first
		}
		if nextp == q.last || nextp == arena.NIL {
			return curr
		}
		q.cc.Exec(e, q.eng.VAddr(), vw, q.annPtrAddr(ver.Target), uint64(curr), uint64(nextp))
	}
	return q.first
}

// Snapshot returns the queued values in FIFO order (quiescent use only).
// SnapshotRegion reports the address range whose words fully determine
// Snapshot, so per-write checkers can skip writes that cannot change it.
func (q *Queue) SnapshotRegion() (lo, hi shmem.Addr) { return q.ar.NodeRegion() }

func (q *Queue) Snapshot() []uint64 { return q.AppendSnapshot(nil) }

// AppendSnapshot appends the snapshot to dst and returns the extended
// slice, letting per-write checkers reuse one scratch buffer across a
// sweep instead of allocating a fresh slice per observed write.
func (q *Queue) AppendSnapshot(dst []uint64) []uint64 {
	vals := dst
	base := len(dst)
	r := arena.Ref(q.cc.Logical(q.mem.Peek(q.ar.NextAddr(q.first))))
	for r != q.last && r != arena.NIL {
		vals = append(vals, q.mem.Peek(q.ar.ValAddr(r)))
		if len(vals)-base > q.ar.Capacity() {
			panic("multiqueue: queue cycle detected")
		}
		r = arena.Ref(q.cc.Logical(q.mem.Peek(q.ar.NextAddr(r))))
	}
	return vals
}

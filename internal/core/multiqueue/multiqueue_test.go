package multiqueue_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/multiqueue"
	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/sched"
)

type fixture struct {
	sim *sched.Sim
	ar  *arena.Arena
	q   *multiqueue.Queue
}

func newFixture(t testing.TB, scfg sched.Config, qcfg multiqueue.Config, nodes int) *fixture {
	t.Helper()
	if scfg.MemWords == 0 {
		scfg.MemWords = 1 << 16
	}
	s := sched.New(scfg)
	ar, err := arena.New(s.Mem(), nodes, qcfg.Procs)
	if err != nil {
		t.Fatal(err)
	}
	q, err := multiqueue.New(s.Mem(), ar, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	ar.Freeze()
	return &fixture{sim: s, ar: ar, q: q}
}

func TestSequentialFIFO(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1},
		multiqueue.Config{Processors: 1, Procs: 1}, 32)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		for v := uint64(1); v <= 8; v++ {
			fx.q.Enqueue(e, v)
		}
		for v := uint64(1); v <= 8; v++ {
			got, ok := fx.q.Dequeue(e)
			if !ok || got != v {
				t.Errorf("Dequeue = (%d, %v), want (%d, true)", got, ok, v)
			}
		}
		if _, ok := fx.q.Dequeue(e); ok {
			t.Error("Dequeue on empty queue returned ok")
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStressAllVariants: cross-processor producers/consumers under all CCAS
// implementations and helping modes, validated by the FIFO checker.
func TestStressAllVariants(t *testing.T) {
	for _, cc := range prim.All() {
		for _, mode := range []helping.Mode{helping.Cyclic, helping.Priority} {
			cc, mode := cc, mode
			t.Run(fmt.Sprintf("%s_%s", cc.Name(), mode), func(t *testing.T) {
				f := func(seed int64) bool {
					runStress(t, seed, cc, mode)
					return true
				}
				if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func runStress(t *testing.T, seed int64, cc prim.Impl, mode helping.Mode) {
	t.Helper()
	const (
		nCPU   = 3
		nProcs = 6
		nOps   = 8
	)
	fx := newFixture(t, sched.Config{Processors: nCPU, Seed: seed, MemWords: 1 << 17},
		multiqueue.Config{Processors: nCPU, Procs: nProcs, CC: cc, Mode: mode}, 256)
	chk := check.NewFIFOChecker(fx.q, fx.sim.Mem())
	rng := fx.sim.Rand()
	for p := 0; p < nProcs; p++ {
		p := p
		fx.sim.Spawn(sched.JobSpec{
			Name: "", CPU: p % nCPU, Prio: sched.Priority(rng.Intn(6)), Slot: p,
			At: rng.Int63n(400), AfterSlices: -1,
			Body: func(e *sched.Env) {
				for op := 0; op < nOps; op++ {
					if e.Rand().Intn(2) == 0 {
						val := uint64(1000*p + op + 1) // unique per op
						chk.BeginEnq(p, val)
						fx.q.Enqueue(e, val)
						chk.EndEnq(p)
					} else {
						chk.BeginDeq(p)
						v, ok := fx.q.Dequeue(e)
						chk.EndDeq(p, v, ok)
					}
				}
			},
		})
	}
	if err := fx.sim.Run(); err != nil {
		t.Fatalf("seed %d (%s/%v): %v", seed, cc.Name(), mode, err)
	}
	chk.Finish()
	if err := chk.Err(); err != nil {
		t.Fatalf("seed %d (%s/%v): %v", seed, cc.Name(), mode, err)
	}
	// Per-producer FIFO: each producer's values leave in enqueue order.
	lastSeen := map[int]int{}
	for _, v := range chk.PopOrder() {
		p := int(v / 1000)
		op := int(v % 1000)
		if op <= lastSeen[p] {
			t.Fatalf("seed %d: producer %d's values dequeued out of order (op %d after %d)", seed, p, op, lastSeen[p])
		}
		lastSeen[p] = op
	}
}

// TestNodeConservation under contention.
func TestNodeConservation(t *testing.T) {
	const nProcs = 4
	fx := newFixture(t, sched.Config{Processors: 2, Seed: 9, MemWords: 1 << 17},
		multiqueue.Config{Processors: 2, Procs: nProcs}, 64)
	usable := 0
	for p := 0; p < nProcs; p++ {
		usable += fx.ar.FreeCount(p)
	}
	for p := 0; p < nProcs; p++ {
		p := p
		fx.sim.Spawn(sched.JobSpec{Name: "", CPU: p % 2, Prio: sched.Priority(p / 2), Slot: p, At: int64(p) * 7, AfterSlices: -1, Body: func(e *sched.Env) {
			for i := 0; i < 25; i++ {
				if e.Rand().Intn(2) == 0 {
					fx.q.Enqueue(e, uint64(100*p+i))
				} else {
					fx.q.Dequeue(e)
				}
			}
		}})
	}
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	free := 0
	for p := 0; p < nProcs; p++ {
		free += fx.ar.FreeCount(p)
	}
	if free+len(fx.q.Snapshot()) != usable {
		t.Errorf("node conservation violated: %d free + %d queued != %d usable",
			free, len(fx.q.Snapshot()), usable)
	}
}

// TestPreemptedEnqueueHelped: a preempted enqueue completes via helping
// before the preemptor's dequeue observes the queue.
func TestPreemptedEnqueueHelped(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1},
		multiqueue.Config{Processors: 1, Procs: 2}, 32)
	var got uint64
	var ok bool
	fx.sim.Spawn(sched.JobSpec{Name: "low", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		fx.q.Enqueue(e, 42)
	}})
	fx.sim.Spawn(sched.JobSpec{Name: "high", CPU: 0, Prio: 9, Slot: 1, AfterSlices: 25, Body: func(e *sched.Env) {
		got, ok = fx.q.Dequeue(e)
	}})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok || got != 42 {
		t.Errorf("dequeue = (%d, %v), want (42, true): the preempted enqueue must be helped first", got, ok)
	}
}

func TestConfigValidation(t *testing.T) {
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 12})
	ar, err := arena.New(s.Mem(), 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multiqueue.New(s.Mem(), ar, multiqueue.Config{Processors: 1, Procs: 0}); err == nil {
		t.Error("zero procs accepted")
	}
}

// Package uniqueue implements a wait-free FIFO queue for priority-based
// uniprocessors, following the paper's Section 4 remark that "other 'linear'
// data structures, like queues, stacks, and hash tables, are just as
// straightforward to implement as linked lists".
//
// The implementation transfers the Figure 5 machinery directly:
//
//   - incremental helping (internal/inchelp): one announce variable, at
//     most one pending operation, each process helps at most one other;
//   - enqueue is the list's insert protocol at the tail position — the
//     (pointer, bit) splice on the predecessor's next field, with the same
//     stale-helper safety arguments (a recycled node's next is never NIL;
//     a spurious bit set by a stale helper is absorbed or cleared);
//   - dequeue removes the node after the head sentinel. Idempotence across
//     helpers cannot key on a node's key (dequeue targets a position, not
//     a key), so the victim is fixed first with a CAS on Par[p].node from
//     NIL — the same discipline as line 53 of the multiprocessor list —
//     and every helper unsplices that recorded victim;
//   - the tail scan checkpoints its progress in a shared hint word (the
//     Ann.ptr pattern), reset at announce, so helpers never rescan a
//     completed prefix. An enqueue therefore costs Θ(T) like a list
//     operation, and Θ(2T) with helping.
package uniqueue

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/inchelp"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Operation codes stored in Par[p].op.
const (
	opEnq uint64 = iota + 1
	opDeq
)

// packPtr encodes a (pointer, bit) next field.
func packPtr(r arena.Ref, bit uint64) uint64 { return uint64(r)<<1 | bit&1 }

// unpackPtr decodes a next field.
func unpackPtr(w uint64) (arena.Ref, uint64) { return arena.Ref(w >> 1), w & 1 }

// Queue is a wait-free FIFO queue for one priority-scheduled processor.
type Queue struct {
	mem shmem.Memory
	ar  *arena.Arena
	eng *inchelp.Engine
	n   int

	first, last arena.Ref
	par         shmem.Addr // Par[p]: node, op (2 words per process)
	hint        shmem.Addr // tail-scan checkpoint (the Ann.ptr pattern)
}

const (
	parNode   = 0
	parOp     = 1
	parStride = 2
)

// New creates a queue for n process slots; the arena must not be frozen.
func New(m shmem.Memory, ar *arena.Arena, n int) (*Queue, error) {
	if n < 1 {
		return nil, fmt.Errorf("uniqueue: process count %d out of range", n)
	}
	par, err := m.Alloc("QPar", n*parStride)
	if err != nil {
		return nil, fmt.Errorf("uniqueue: %w", err)
	}
	hint, err := m.Alloc("QHint", 1)
	if err != nil {
		return nil, fmt.Errorf("uniqueue: %w", err)
	}
	q := &Queue{mem: m, ar: ar, n: n, par: par, hint: hint}
	q.first = ar.Static()
	q.last = ar.Static()
	m.Poke(ar.NextAddr(q.first), packPtr(q.last, 0))
	m.Poke(ar.NextAddr(q.last), packPtr(arena.NIL, 0))
	m.Poke(hint, uint64(q.first))
	eng, err := inchelp.New(m, inchelp.Config{
		Procs: n,
		Help:  q.help,
		OnAnnounce: func(e shmem.Ctx) {
			e.Store(q.hint, uint64(q.first))
		},
	})
	if err != nil {
		return nil, err
	}
	q.eng = eng
	return q, nil
}

// Engine exposes the helping engine, for checkers.
func (q *Queue) Engine() *inchelp.Engine { return q.eng }

// PeekPar returns process p's Par record (node, op), for checkers.
func (q *Queue) PeekPar(p int) (node, op uint64) {
	return q.mem.Peek(q.parAddr(p, parNode)), q.mem.Peek(q.parAddr(p, parOp))
}

func (q *Queue) parAddr(p int, f shmem.Addr) shmem.Addr {
	return q.par + shmem.Addr(p*parStride) + f
}

// Enqueue appends val to the queue.
func (q *Queue) Enqueue(e shmem.Ctx, val uint64) {
	p := e.Slot()
	node, ok := q.ar.Alloc(e, p)
	if !ok {
		panic(fmt.Sprintf("uniqueue: process %d exhausted its node pool", p))
	}
	e.Store(q.ar.ValAddr(node), val)
	e.Store(q.ar.NextAddr(node), packPtr(arena.NIL, 0))
	e.Store(q.parAddr(p, parNode), uint64(node))
	e.Store(q.parAddr(p, parOp), opEnq)
	q.eng.DoOp(e)
}

// Dequeue removes and returns the oldest value; ok is false when the queue
// was empty. The dequeued node is recycled into the caller's pool.
func (q *Queue) Dequeue(e shmem.Ctx) (val uint64, ok bool) {
	p := e.Slot()
	e.Store(q.parAddr(p, parNode), uint64(arena.NIL))
	e.Store(q.parAddr(p, parOp), opDeq)
	q.eng.DoOp(e)
	node := arena.Ref(e.Load(q.parAddr(p, parNode)))
	if node == arena.NIL {
		return 0, false // queue was empty
	}
	val = e.Load(q.ar.ValAddr(node))
	q.ar.Free(e, p, node)
	return val, true
}

// help executes (or helps) process pid's announced operation.
func (q *Queue) help(e shmem.Ctx, pid int) {
	switch e.Load(q.parAddr(pid, parOp)) {
	case opEnq:
		q.helpEnq(e, pid)
	case opDeq:
		q.helpDeq(e, pid)
	}
}

// helpEnq is the Figure 5 insert protocol at the tail position.
func (q *Queue) helpEnq(e shmem.Ctx, pid int) {
	curr := q.findtail(e, pid)
	nextp := e.Load(q.ar.NextAddr(curr))
	nextRef, _ := unpackPtr(nextp)
	if q.eng.Rv(e, pid) != inchelp.RvPending {
		return
	}
	newNode := arena.Ref(e.Load(q.parAddr(pid, parNode)))
	if curr == newNode {
		// The scan landed on the operation's own node: the splice is
		// already done (this is the queue's analog of the list's
		// "nextkey == key means our own node" case — without the
		// guard a late helper would splice the node after itself).
		q.eng.SetRv(e, pid, inchelp.RvTrue)
		return
	}
	// Point the new node at the tail sentinel; no-op for stale helpers
	// (a linked or recycled node's next is never NIL).
	e.CAS(q.ar.NextAddr(newNode), packPtr(arena.NIL, 0), packPtr(q.last, 0))
	// Raise the bit on the predecessor, then swing in the new node.
	e.CAS(q.ar.NextAddr(curr), nextp, packPtr(nextRef, 1))
	nextp = packPtr(nextRef, 1)
	if q.eng.Rv(e, pid) == inchelp.RvPending {
		if e.CAS(q.ar.NextAddr(curr), nextp, packPtr(newNode, 0)) {
			if e.Traced() {
				e.Note("enqueue", trace.I("p", int64(pid)), trace.I("node", int64(newNode)))
			}
		}
	} else {
		e.CAS(q.ar.NextAddr(curr), nextp, packPtr(nextRef, 0))
	}
	q.eng.SetRv(e, pid, inchelp.RvTrue)
}

// helpDeq removes the node after the head sentinel, fixing the victim in
// Par[pid].node before unsplicing so helpers agree on a single node.
func (q *Queue) helpDeq(e shmem.Ctx, pid int) {
	victim := arena.Ref(e.Load(q.parAddr(pid, parNode)))
	if victim == arena.NIL {
		headp := e.Load(q.ar.NextAddr(q.first))
		head, _ := unpackPtr(headp)
		if q.eng.Rv(e, pid) != inchelp.RvPending {
			return
		}
		if head == q.last {
			q.eng.SetRv(e, pid, inchelp.RvFalse) // empty
			return
		}
		// Fix the victim (first writer wins; the CAS guards against a
		// stale helper of a previous operation re-fixing).
		e.CAS(q.parAddr(pid, parNode), uint64(arena.NIL), uint64(head))
		victim = arena.Ref(e.Load(q.parAddr(pid, parNode)))
	}
	// Unsplice using the raw head pointer (bit included, exactly as
	// Figure 5's delete uses its raw nextp): a stale enqueue helper may
	// have transiently raised the bit, and under the priority model its
	// set/clear pair is net-zero unless one of this operation's helpers
	// completed the unsplice in between — in which case our CAS fails
	// because the work is already done.
	raw := e.Load(q.ar.NextAddr(q.first))
	ptr, _ := unpackPtr(raw)
	succp := e.Load(q.ar.NextAddr(victim))
	succ, _ := unpackPtr(succp)
	if q.eng.Rv(e, pid) != inchelp.RvPending {
		return
	}
	if ptr == victim {
		if e.CAS(q.ar.NextAddr(q.first), raw, packPtr(succ, 0)) {
			if e.Traced() {
				e.Note("dequeue", trace.I("p", int64(pid)), trace.I("node", int64(victim)))
			}
		}
	}
	q.eng.SetRv(e, pid, inchelp.RvTrue)
}

// findtail scans for the node whose successor is the tail sentinel,
// checkpointing progress in the shared hint.
func (q *Queue) findtail(e shmem.Ctx, pid int) arena.Ref {
	for q.eng.Rv(e, pid) == inchelp.RvPending {
		curr := arena.Ref(e.Load(q.hint))
		nextp := e.Load(q.ar.NextAddr(curr))
		nextRef, _ := unpackPtr(nextp)
		if q.eng.Rv(e, pid) != inchelp.RvPending || nextRef == q.last || nextRef == arena.NIL {
			return curr
		}
		e.Store(q.hint, uint64(nextRef))
	}
	return q.first
}

// Snapshot returns the queued values in FIFO order (quiescent use only).
// SnapshotRegion reports the address range whose words fully determine
// Snapshot, so per-write checkers can skip writes that cannot change it.
func (q *Queue) SnapshotRegion() (lo, hi shmem.Addr) { return q.ar.NodeRegion() }

func (q *Queue) Snapshot() []uint64 { return q.AppendSnapshot(nil) }

// AppendSnapshot appends the snapshot to dst and returns the extended
// slice, letting per-write checkers reuse one scratch buffer across a
// sweep instead of allocating a fresh slice per observed write.
func (q *Queue) AppendSnapshot(dst []uint64) []uint64 {
	vals := dst
	base := len(dst)
	r, _ := unpackPtr(q.mem.Peek(q.ar.NextAddr(q.first)))
	for r != q.last && r != arena.NIL {
		vals = append(vals, q.mem.Peek(q.ar.ValAddr(r)))
		if len(vals)-base > q.ar.Capacity() {
			panic("uniqueue: queue cycle detected")
		}
		r, _ = unpackPtr(q.mem.Peek(q.ar.NextAddr(r)))
	}
	return vals
}

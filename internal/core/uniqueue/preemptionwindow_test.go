package uniqueue_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/explore"
	"repro/internal/sched"
)

// TestPreemptionWindowSweepFIFO drives a nested two-adversary release-point
// sweep through the explore library, validating every schedule with the
// structural FIFO checker: each splice must append at the tail, each
// unsplice must remove the head, and every structural event must be claimed
// by exactly one operation inside its window. This covers the helper
// windows (spurious bit set/clear, helper-completes-victim) that the
// single-adversary sweep in uniqueue_test.go cannot reach.
func TestPreemptionWindowSweepFIFO(t *testing.T) {
	n, err := explore.Sweep(explore.Config{Adversaries: 2, Max: 30, Gap: 8},
		func(rel []int64) error {
			fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 3, 32)
			chk := check.NewFIFOChecker(fx.q, fx.sim.Mem())
			fx.sim.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				chk.BeginEnq(0, 100)
				fx.q.Enqueue(e, 100)
				chk.EndEnq(0)
				chk.BeginEnq(0, 200)
				fx.q.Enqueue(e, 200)
				chk.EndEnq(0)
				chk.BeginDeq(0)
				v, ok := fx.q.Dequeue(e)
				chk.EndDeq(0, v, ok)
			}})
			fx.sim.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel[0], Body: func(e *sched.Env) {
				chk.BeginEnq(1, 300)
				fx.q.Enqueue(e, 300)
				chk.EndEnq(1)
				chk.BeginDeq(1)
				v, ok := fx.q.Dequeue(e)
				chk.EndDeq(1, v, ok)
			}})
			fx.sim.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel[1], Body: func(e *sched.Env) {
				chk.BeginDeq(2)
				v, ok := fx.q.Dequeue(e)
				chk.EndDeq(2, v, ok)
			}})
			if err := fx.sim.Run(); err != nil {
				return err
			}
			chk.Finish()
			if err := chk.Err(); err != nil {
				return err
			}
			// Independent FIFO assertion: the victim enqueued 100 before
			// 200, so pops must respect that order.
			i100, i200 := -1, -1
			for i, v := range chk.PopOrder() {
				switch v {
				case 100:
					i100 = i
				case 200:
					i200 = i
				}
			}
			if i100 >= 0 && i200 >= 0 && i200 < i100 {
				return fmt.Errorf("FIFO violated: 200 popped at %d before 100 at %d (pops %v)",
					i200, i100, chk.PopOrder())
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d two-adversary queue schedules", n)
}

package uniqueue_test

import (
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/uniqueue"
	"repro/internal/sched"
)

type fixture struct {
	sim *sched.Sim
	ar  *arena.Arena
	q   *uniqueue.Queue
}

func newFixture(t testing.TB, cfg sched.Config, n, nodes int) *fixture {
	t.Helper()
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 15
	}
	s := sched.New(cfg)
	ar, err := arena.New(s.Mem(), nodes, n)
	if err != nil {
		t.Fatal(err)
	}
	q, err := uniqueue.New(s.Mem(), ar, n)
	if err != nil {
		t.Fatal(err)
	}
	ar.Freeze()
	return &fixture{sim: s, ar: ar, q: q}
}

func TestFIFOOrder(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 32)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		for v := uint64(1); v <= 8; v++ {
			fx.q.Enqueue(e, v*10)
		}
		for v := uint64(1); v <= 8; v++ {
			got, ok := fx.q.Dequeue(e)
			if !ok || got != v*10 {
				t.Errorf("Dequeue #%d = (%d, %v), want (%d, true)", v, got, ok, v*10)
			}
		}
		if _, ok := fx.q.Dequeue(e); ok {
			t.Error("Dequeue on empty queue returned ok")
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fx.q.Snapshot(); len(got) != 0 {
		t.Errorf("final queue = %v, want empty", got)
	}
}

func TestInterleavedEnqDeq(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 16)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		fx.q.Enqueue(e, 1)
		fx.q.Enqueue(e, 2)
		if v, _ := fx.q.Dequeue(e); v != 1 {
			t.Errorf("got %d, want 1", v)
		}
		fx.q.Enqueue(e, 3)
		if v, _ := fx.q.Dequeue(e); v != 2 {
			t.Errorf("got %d, want 2", v)
		}
		if v, _ := fx.q.Dequeue(e); v != 3 {
			t.Errorf("got %d, want 3", v)
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeConservation(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 8)
	free := fx.ar.FreeCount(0)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		for i := 0; i < 50; i++ {
			fx.q.Enqueue(e, uint64(i))
			if _, ok := fx.q.Dequeue(e); !ok {
				t.Fatal("dequeue failed")
			}
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fx.ar.FreeCount(0); got != free {
		t.Errorf("free count = %d, want %d (no leaks)", got, free)
	}
}

// newChecker attaches a SerialChecker with a FIFO model.
func newChecker(fx *fixture, n int) *check.SerialChecker {
	var model []uint64
	return check.NewSerialChecker(fx.sim.Mem(), fx.q.Engine().AnnPidAddr(), n,
		func(p int) bool {
			node, op := fx.q.PeekPar(p)
			if op == 1 { // enqueue
				val := fx.sim.Mem().Peek(fx.ar.ValAddr(arena.Ref(node)))
				model = append(model, val)
				return true
			}
			if len(model) == 0 {
				return false
			}
			model = model[1:]
			return true
		},
		func() error { return check.SliceEqual(fx.q.Snapshot(), model) })
}

// TestPreemptionPointSweep releases higher-priority adversaries at every
// slice of a victim's queue operations, fully checked — covering the stale
// helper windows (spurious bit set/clear, victim fixing) exhaustively at
// small scale.
func TestPreemptionPointSweep(t *testing.T) {
	for k := int64(0); k < 110; k++ {
		fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 3, 32)
		chk := newChecker(fx, 3)
		fx.sim.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
			fx.q.Enqueue(e, 100)
			chk.EndOp(0, true)
			fx.q.Enqueue(e, 200)
			chk.EndOp(0, true)
			_, ok := fx.q.Dequeue(e)
			chk.EndOp(0, ok)
		}})
		fx.sim.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: k, Body: func(e *sched.Env) {
			fx.q.Enqueue(e, 300)
			chk.EndOp(1, true)
			_, ok := fx.q.Dequeue(e)
			chk.EndOp(1, ok)
		}})
		fx.sim.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: k + 7, Body: func(e *sched.Env) {
			_, ok := fx.q.Dequeue(e)
			chk.EndOp(2, ok)
		}})
		if err := fx.sim.Run(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

// TestStressWithChecker runs randomized prioritized jobs against the FIFO
// model.
func TestStressWithChecker(t *testing.T) {
	f := func(seed int64) bool {
		const nProcs = 4
		fx := newFixture(t, sched.Config{Processors: 1, Seed: seed, MemWords: 1 << 16}, nProcs, 128)
		chk := newChecker(fx, nProcs)
		rng := fx.sim.Rand()
		for p := 0; p < nProcs; p++ {
			p := p
			fx.sim.Spawn(sched.JobSpec{
				Name: "", CPU: 0, Prio: sched.Priority(rng.Intn(6)), Slot: p,
				At: rng.Int63n(300), AfterSlices: -1,
				Body: func(e *sched.Env) {
					for op := 0; op < 10; op++ {
						if e.Rand().Intn(2) == 0 {
							fx.q.Enqueue(e, uint64(100*p+op))
							chk.EndOp(p, true)
						} else {
							_, ok := fx.q.Dequeue(e)
							chk.EndOp(p, ok)
						}
					}
				},
			})
		}
		if err := fx.sim.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHelpedCompletion: a preempted enqueue is finished by its preemptor.
func TestHelpedCompletion(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1, EnableTrace: true}, 2, 32)
	fx.sim.Spawn(sched.JobSpec{Name: "low", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		fx.q.Enqueue(e, 1)
		fx.q.Enqueue(e, 2)
	}})
	fx.sim.Spawn(sched.JobSpec{Name: "high", CPU: 0, Prio: 9, Slot: 1, AfterSlices: 30, Body: func(e *sched.Env) {
		fx.q.Enqueue(e, 3)
	}})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fx.sim.Trace().FindNote(0, "help p=0") < 0 {
		t.Skip("no helping occurred at this release point")
	}
	got := fx.q.Snapshot()
	// Order: the preempted op completes (helped) before the preemptor's.
	if len(got) != 3 {
		t.Fatalf("queue = %v, want 3 values", got)
	}
}

package unistack_test

import (
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/unistack"
	"repro/internal/sched"
)

type fixture struct {
	sim *sched.Sim
	ar  *arena.Arena
	st  *unistack.Stack
}

func newFixture(t testing.TB, cfg sched.Config, n, nodes int) *fixture {
	t.Helper()
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 15
	}
	s := sched.New(cfg)
	ar, err := arena.New(s.Mem(), nodes, n)
	if err != nil {
		t.Fatal(err)
	}
	st, err := unistack.New(s.Mem(), ar, n)
	if err != nil {
		t.Fatal(err)
	}
	ar.Freeze()
	return &fixture{sim: s, ar: ar, st: st}
}

func TestLIFOOrder(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 32)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		for v := uint64(1); v <= 8; v++ {
			fx.st.Push(e, v*10)
		}
		for v := uint64(8); v >= 1; v-- {
			got, ok := fx.st.Pop(e)
			if !ok || got != v*10 {
				t.Errorf("Pop = (%d, %v), want (%d, true)", got, ok, v*10)
			}
		}
		if _, ok := fx.st.Pop(e); ok {
			t.Error("Pop on empty stack returned ok")
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeConservation(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 8)
	free := fx.ar.FreeCount(0)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		for i := 0; i < 50; i++ {
			fx.st.Push(e, uint64(i))
			if _, ok := fx.st.Pop(e); !ok {
				t.Fatal("pop failed")
			}
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := fx.ar.FreeCount(0); got != free {
		t.Errorf("free count = %d, want %d (no leaks)", got, free)
	}
}

// newChecker attaches a SerialChecker with a LIFO model.
func newChecker(fx *fixture, n int) *check.SerialChecker {
	var model []uint64 // model[0] is the top
	return check.NewSerialChecker(fx.sim.Mem(), fx.st.Engine().AnnPidAddr(), n,
		func(p int) bool {
			node, op := fx.st.PeekPar(p)
			if op == 1 { // push
				val := fx.sim.Mem().Peek(fx.ar.ValAddr(arena.Ref(node)))
				model = append([]uint64{val}, model...)
				return true
			}
			if len(model) == 0 {
				return false
			}
			model = model[1:]
			return true
		},
		func() error { return check.SliceEqual(fx.st.Snapshot(), model) })
}

// TestPreemptionPointSweep: adversaries at every slice, fully checked.
func TestPreemptionPointSweep(t *testing.T) {
	for k := int64(0); k < 90; k++ {
		fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 3, 32)
		chk := newChecker(fx, 3)
		fx.sim.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
			fx.st.Push(e, 100)
			chk.EndOp(0, true)
			fx.st.Push(e, 200)
			chk.EndOp(0, true)
			_, ok := fx.st.Pop(e)
			chk.EndOp(0, ok)
		}})
		fx.sim.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: k, Body: func(e *sched.Env) {
			fx.st.Push(e, 300)
			chk.EndOp(1, true)
			_, ok := fx.st.Pop(e)
			chk.EndOp(1, ok)
		}})
		fx.sim.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: k + 5, Body: func(e *sched.Env) {
			_, ok := fx.st.Pop(e)
			chk.EndOp(2, ok)
		}})
		if err := fx.sim.Run(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

// TestStressWithChecker: randomized prioritized jobs against the LIFO model.
func TestStressWithChecker(t *testing.T) {
	f := func(seed int64) bool {
		const nProcs = 4
		fx := newFixture(t, sched.Config{Processors: 1, Seed: seed, MemWords: 1 << 16}, nProcs, 128)
		chk := newChecker(fx, nProcs)
		rng := fx.sim.Rand()
		for p := 0; p < nProcs; p++ {
			p := p
			fx.sim.Spawn(sched.JobSpec{
				Name: "", CPU: 0, Prio: sched.Priority(rng.Intn(6)), Slot: p,
				At: rng.Int63n(300), AfterSlices: -1,
				Body: func(e *sched.Env) {
					for op := 0; op < 10; op++ {
						if e.Rand().Intn(2) == 0 {
							fx.st.Push(e, uint64(100*p+op))
							chk.EndOp(p, true)
						} else {
							_, ok := fx.st.Pop(e)
							chk.EndOp(p, ok)
						}
					}
				},
			})
		}
		if err := fx.sim.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPopEmptyDuringHelp: an empty-stack pop and a push racing across
// priorities still agree with the serialized model (covered broadly by the
// sweep; this pins the simplest instance).
func TestPopEmptyDuringHelp(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 2, 16)
	var popOK bool
	var popVal uint64
	fx.sim.Spawn(sched.JobSpec{Name: "low", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		fx.st.Push(e, 7)
	}})
	fx.sim.Spawn(sched.JobSpec{Name: "high", CPU: 0, Prio: 9, Slot: 1, AfterSlices: 20, Body: func(e *sched.Env) {
		popVal, popOK = fx.st.Pop(e)
	}})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	// The high-priority pop runs after helping the push to completion,
	// so it must observe the pushed value.
	if !popOK || popVal != 7 {
		t.Errorf("pop = (%d, %v), want (7, true)", popVal, popOK)
	}
	if got := fx.st.Snapshot(); len(got) != 0 {
		t.Errorf("final stack = %v, want empty", got)
	}
}

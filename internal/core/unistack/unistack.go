// Package unistack implements a wait-free LIFO stack for priority-based
// uniprocessors — another of the "linear" data structures the paper's
// Section 4 describes as directly amenable to its helping schemes.
//
// Both operations work at the head sentinel, so no scan (and no Ann.ptr
// checkpoint) is needed; every operation is Θ(1), Θ(2) with helping. Push
// is the Figure 5 insert protocol at the head position; pop fixes its
// victim in Par[p].node with a CAS from NIL (the line-53 discipline of the
// multiprocessor list) and unsplices using raw pointer values, so stale
// helpers are harmless under the priority model.
package unistack

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/inchelp"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Operation codes stored in Par[p].op.
const (
	opPush uint64 = iota + 1
	opPop
)

func packPtr(r arena.Ref, bit uint64) uint64 { return uint64(r)<<1 | bit&1 }
func unpackPtr(w uint64) (arena.Ref, uint64) { return arena.Ref(w >> 1), w & 1 }

// Stack is a wait-free LIFO stack for one priority-scheduled processor.
type Stack struct {
	mem shmem.Memory
	ar  *arena.Arena
	eng *inchelp.Engine
	n   int

	first, last arena.Ref // head sentinel and bottom sentinel
	par         shmem.Addr
}

const (
	parNode   = 0
	parOp     = 1
	parStride = 2
)

// New creates a stack for n process slots; the arena must not be frozen.
func New(m shmem.Memory, ar *arena.Arena, n int) (*Stack, error) {
	if n < 1 {
		return nil, fmt.Errorf("unistack: process count %d out of range", n)
	}
	par, err := m.Alloc("SPar", n*parStride)
	if err != nil {
		return nil, fmt.Errorf("unistack: %w", err)
	}
	s := &Stack{mem: m, ar: ar, n: n, par: par}
	s.first = ar.Static()
	s.last = ar.Static()
	m.Poke(ar.NextAddr(s.first), packPtr(s.last, 0))
	m.Poke(ar.NextAddr(s.last), packPtr(arena.NIL, 0))
	eng, err := inchelp.New(m, inchelp.Config{Procs: n, Help: s.help})
	if err != nil {
		return nil, err
	}
	s.eng = eng
	return s, nil
}

// Engine exposes the helping engine, for checkers.
func (s *Stack) Engine() *inchelp.Engine { return s.eng }

// PeekPar returns process p's Par record (node, op), for checkers.
func (s *Stack) PeekPar(p int) (node, op uint64) {
	return s.mem.Peek(s.parAddr(p, parNode)), s.mem.Peek(s.parAddr(p, parOp))
}

func (s *Stack) parAddr(p int, f shmem.Addr) shmem.Addr {
	return s.par + shmem.Addr(p*parStride) + f
}

// Push adds val to the top of the stack.
func (s *Stack) Push(e shmem.Ctx, val uint64) {
	p := e.Slot()
	node, ok := s.ar.Alloc(e, p)
	if !ok {
		panic(fmt.Sprintf("unistack: process %d exhausted its node pool", p))
	}
	e.Store(s.ar.ValAddr(node), val)
	e.Store(s.ar.NextAddr(node), packPtr(arena.NIL, 0))
	e.Store(s.parAddr(p, parNode), uint64(node))
	e.Store(s.parAddr(p, parOp), opPush)
	s.eng.DoOp(e)
}

// Pop removes and returns the most recently pushed value; ok is false when
// the stack was empty.
func (s *Stack) Pop(e shmem.Ctx) (val uint64, ok bool) {
	p := e.Slot()
	e.Store(s.parAddr(p, parNode), uint64(arena.NIL))
	e.Store(s.parAddr(p, parOp), opPop)
	s.eng.DoOp(e)
	node := arena.Ref(e.Load(s.parAddr(p, parNode)))
	if node == arena.NIL {
		return 0, false
	}
	val = e.Load(s.ar.ValAddr(node))
	s.ar.Free(e, p, node)
	return val, true
}

func (s *Stack) help(e shmem.Ctx, pid int) {
	switch e.Load(s.parAddr(pid, parOp)) {
	case opPush:
		s.helpPush(e, pid)
	case opPop:
		s.helpPop(e, pid)
	}
}

// helpPush splices the new node after the head sentinel (Figure 5's insert
// protocol with curr = First).
func (s *Stack) helpPush(e shmem.Ctx, pid int) {
	nextp := e.Load(s.ar.NextAddr(s.first))
	nextRef, _ := unpackPtr(nextp)
	if s.eng.Rv(e, pid) != inchelp.RvPending {
		return
	}
	newNode := arena.Ref(e.Load(s.parAddr(pid, parNode)))
	if nextRef == newNode {
		// The head already is the operation's own node: the splice is
		// done (the re-splice below would be a harmless same-value
		// write, but skipping is clearer and cheaper).
		s.eng.SetRv(e, pid, inchelp.RvTrue)
		return
	}
	e.CAS(s.ar.NextAddr(newNode), packPtr(arena.NIL, 0), packPtr(nextRef, 0))
	e.CAS(s.ar.NextAddr(s.first), nextp, packPtr(nextRef, 1))
	nextp = packPtr(nextRef, 1)
	if s.eng.Rv(e, pid) == inchelp.RvPending {
		if e.CAS(s.ar.NextAddr(s.first), nextp, packPtr(newNode, 0)) {
			if e.Traced() {
				e.Note("push", trace.I("p", int64(pid)), trace.I("node", int64(newNode)))
			}
		}
	} else {
		e.CAS(s.ar.NextAddr(s.first), nextp, packPtr(nextRef, 0))
	}
	s.eng.SetRv(e, pid, inchelp.RvTrue)
}

// helpPop fixes the victim then unsplices it from the head.
func (s *Stack) helpPop(e shmem.Ctx, pid int) {
	victim := arena.Ref(e.Load(s.parAddr(pid, parNode)))
	if victim == arena.NIL {
		headp := e.Load(s.ar.NextAddr(s.first))
		head, _ := unpackPtr(headp)
		if s.eng.Rv(e, pid) != inchelp.RvPending {
			return
		}
		if head == s.last {
			s.eng.SetRv(e, pid, inchelp.RvFalse) // empty
			return
		}
		e.CAS(s.parAddr(pid, parNode), uint64(arena.NIL), uint64(head))
		victim = arena.Ref(e.Load(s.parAddr(pid, parNode)))
	}
	raw := e.Load(s.ar.NextAddr(s.first))
	ptr, _ := unpackPtr(raw)
	succp := e.Load(s.ar.NextAddr(victim))
	succ, _ := unpackPtr(succp)
	if s.eng.Rv(e, pid) != inchelp.RvPending {
		return
	}
	if ptr == victim {
		if e.CAS(s.ar.NextAddr(s.first), raw, packPtr(succ, 0)) {
			if e.Traced() {
				e.Note("pop", trace.I("p", int64(pid)), trace.I("node", int64(victim)))
			}
		}
	}
	s.eng.SetRv(e, pid, inchelp.RvTrue)
}

// Snapshot returns the stacked values, top first (quiescent use only).
// SnapshotRegion reports the address range whose words fully determine
// Snapshot, so per-write checkers can skip writes that cannot change it.
func (s *Stack) SnapshotRegion() (lo, hi shmem.Addr) { return s.ar.NodeRegion() }

func (s *Stack) Snapshot() []uint64 { return s.AppendSnapshot(nil) }

// AppendSnapshot appends the snapshot to dst and returns the extended
// slice, letting per-write checkers reuse one scratch buffer across a
// sweep instead of allocating a fresh slice per observed write.
func (s *Stack) AppendSnapshot(dst []uint64) []uint64 {
	vals := dst
	base := len(dst)
	r, _ := unpackPtr(s.mem.Peek(s.ar.NextAddr(s.first)))
	for r != s.last && r != arena.NIL {
		vals = append(vals, s.mem.Peek(s.ar.ValAddr(r)))
		if len(vals)-base > s.ar.Capacity() {
			panic("unistack: stack cycle detected")
		}
		r, _ = unpackPtr(s.mem.Peek(s.ar.NextAddr(r)))
	}
	return vals
}

package unistack_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/explore"
	"repro/internal/sched"
)

// TestPreemptionWindowSweepLIFO is the stack analog of the queue's
// explore-driven sweep: two nested adversaries released at every pair of
// victim slices (within the Gap window), every schedule validated by the
// structural LIFO checker — pushes must prepend at the top, pops must
// remove the top, and every structural event must be claimed by exactly one
// operation inside its window.
func TestPreemptionWindowSweepLIFO(t *testing.T) {
	n, err := explore.Sweep(explore.Config{Adversaries: 2, Max: 30, Gap: 8},
		func(rel []int64) error {
			fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 3, 32)
			chk := check.NewLIFOChecker(fx.st, fx.sim.Mem())
			fx.sim.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				chk.BeginPush(0, 100)
				fx.st.Push(e, 100)
				chk.EndPush(0)
				chk.BeginPush(0, 200)
				fx.st.Push(e, 200)
				chk.EndPush(0)
				chk.BeginPop(0)
				v, ok := fx.st.Pop(e)
				chk.EndPop(0, v, ok)
			}})
			fx.sim.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel[0], Body: func(e *sched.Env) {
				chk.BeginPush(1, 300)
				fx.st.Push(e, 300)
				chk.EndPush(1)
				chk.BeginPop(1)
				v, ok := fx.st.Pop(e)
				chk.EndPop(1, v, ok)
			}})
			fx.sim.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel[1], Body: func(e *sched.Env) {
				chk.BeginPop(2)
				v, ok := fx.st.Pop(e)
				chk.EndPop(2, v, ok)
			}})
			if err := fx.sim.Run(); err != nil {
				return err
			}
			chk.Finish()
			return chk.Err()
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("explored %d two-adversary stack schedules", n)
}

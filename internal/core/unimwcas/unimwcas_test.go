package unimwcas_test

import (
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/core/unimwcas"
	"repro/internal/sched"
	"repro/internal/shmem"
)

// fixture bundles a sim, an object and three application words.
type fixture struct {
	sim   *sched.Sim
	obj   *unimwcas.Object
	words []shmem.Addr
}

func newFixture(t *testing.T, cfg sched.Config, n, b, nwords int, initial []uint32) *fixture {
	t.Helper()
	s := sched.New(cfg)
	obj, err := unimwcas.New(s.Mem(), n, b)
	if err != nil {
		t.Fatal(err)
	}
	base := s.Mem().MustAlloc("app", nwords)
	words := make([]shmem.Addr, nwords)
	for i := range words {
		words[i] = base + shmem.Addr(i)
		var v uint32
		if i < len(initial) {
			v = initial[i]
		}
		obj.InitWord(words[i], v)
	}
	return &fixture{sim: s, obj: obj, words: words}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(val uint32, cnt uint8, valid bool, pid uint16) bool {
		w := unimwcas.Word{Val: val, Cnt: cnt, Valid: valid, Pid: pid}
		return unimwcas.Unpack(unimwcas.Pack(w)) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	m := shmem.New(64)
	cases := []struct {
		n, b int
	}{
		{0, 1}, {-1, 4}, {1 << 20, 1}, {1, 0}, {1, 1 << 20},
	}
	for _, c := range cases {
		if _, err := unimwcas.New(m, c.n, c.b); err == nil {
			t.Errorf("New(n=%d, b=%d) succeeded, want error", c.n, c.b)
		}
	}
}

func TestSingleSuccess(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 2, 4, 3, []uint32{12, 22, 8})
	var ok bool
	var reads []uint32
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		ok = fx.obj.MWCAS(e, fx.words, []uint32{12, 22, 8}, []uint32{5, 10, 17})
		for _, w := range fx.words {
			reads = append(reads, fx.obj.Read(e, w))
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("uncontended MWCAS failed")
	}
	want := []uint32{5, 10, 17}
	for i, w := range fx.words {
		if got := fx.obj.Val(w); got != want[i] {
			t.Errorf("Val(word %d) = %d, want %d", i, got, want[i])
		}
		if reads[i] != want[i] {
			t.Errorf("Read(word %d) = %d, want %d", i, reads[i], want[i])
		}
		// Cleanup must leave words valid (inset (c) of Figure 4).
		if w := unimwcas.Unpack(fx.sim.Mem().Peek(w)); !w.Valid {
			t.Errorf("word %d left invalid after completed MWCAS", i)
		}
	}
}

func TestSingleMismatch(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 2, 4, 3, []uint32{12, 22, 8})
	var ok bool
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		ok = fx.obj.MWCAS(e, fx.words, []uint32{12, 99, 8}, []uint32{5, 10, 17})
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("MWCAS succeeded despite mismatching old value")
	}
	want := []uint32{12, 22, 8}
	for i, w := range fx.words {
		if got := fx.obj.Val(w); got != want[i] {
			t.Errorf("Val(word %d) = %d, want %d (failed MWCAS must not change values)", i, got, want[i])
		}
	}
}

func TestUnchangedWordStaysRestored(t *testing.T) {
	// old == new for one word: the cleanup path restores the original
	// representation (line 20) rather than committing (line 17).
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 2, 4, 2, []uint32{7, 9})
	var ok bool
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		ok = fx.obj.MWCAS(e, fx.words, []uint32{7, 9}, []uint32{7, 100})
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("MWCAS failed")
	}
	if got := fx.obj.Val(fx.words[0]); got != 7 {
		t.Errorf("unchanged word = %d, want 7", got)
	}
	if got := fx.obj.Val(fx.words[1]); got != 100 {
		t.Errorf("changed word = %d, want 100", got)
	}
	if w := unimwcas.Unpack(fx.sim.Mem().Peek(fx.words[0])); !w.Valid {
		t.Error("unchanged word left invalid")
	}
}

// TestFigure4 reproduces the paper's Figure 4: process 4 performs a MWCAS on
// words x, y, z with old/new values 12/5, 22/10, 8/17.
func TestFigure4(t *testing.T) {
	// Inset (c): no interference; operation succeeds.
	t.Run("inset_c_success", func(t *testing.T) {
		fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 10, 3, 3, []uint32{12, 22, 8})
		var ok bool
		fx.sim.Spawn(sched.JobSpec{Name: "proc4", CPU: 0, Prio: 4, Slot: 4, AfterSlices: -1, Body: func(e *sched.Env) {
			ok = fx.obj.MWCAS(e, fx.words, []uint32{12, 22, 8}, []uint32{5, 10, 17})
		}})
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("MWCAS failed without interference")
		}
		for i, want := range []uint32{5, 10, 17} {
			if got := fx.obj.Val(fx.words[i]); got != want {
				t.Errorf("Val(word %d) = %d, want %d", i, got, want)
			}
			w := unimwcas.Unpack(fx.sim.Mem().Peek(fx.words[i]))
			if !w.Valid || w.Pid != 4 {
				t.Errorf("word %d = %+v, want valid with pid 4", i, w)
			}
		}
	})

	// Inset (d)/(f): process 9 (higher priority) preempts process 4 after
	// its first phase and successfully writes 56 to z. Process 4's
	// operation fails; x and y are restored.
	t.Run("inset_d_interference", func(t *testing.T) {
		fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 10, 3, 3, []uint32{12, 22, 8})
		z := fx.words[2]
		var ok4, ok9 bool
		var phase1 []unimwcas.Word // state observed by proc 9 before it runs
		var savedByProc4 []uint64
		fx.sim.Spawn(sched.JobSpec{Name: "proc4", CPU: 0, Prio: 4, Slot: 4, AfterSlices: -1, Body: func(e *sched.Env) {
			ok4 = fx.obj.MWCAS(e, fx.words, []uint32{12, 22, 8}, []uint32{5, 10, 17})
		}})
		// Release proc 9 after 13 slices: past proc 4's three installs
		// (first phase), before its commit CAS. Verified below via the
		// inset (b) assertions on phase1.
		fx.sim.Spawn(sched.JobSpec{Name: "proc9", CPU: 0, Prio: 9, Slot: 9, AfterSlices: 13, Body: func(e *sched.Env) {
			m := e.Sim().Mem()
			for _, w := range fx.words {
				phase1 = append(phase1, unimwcas.Unpack(m.Peek(w)))
			}
			for i := range fx.words {
				savedByProc4 = append(savedByProc4, m.Peek(fx.obj.SaveAddr(4, i)))
			}
			ok9 = fx.obj.MWCAS(e, []shmem.Addr{z}, []uint32{8}, []uint32{56})
		}})
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}

		// Inset (b): after phase one, each word holds the proposed new
		// value with valid=false, pid=4, cnt=i, and Save[4] holds the
		// old values; current values are unchanged.
		wantNew := []uint32{5, 10, 17}
		wantOld := []uint64{12, 22, 8}
		for i, w := range phase1 {
			if w.Val != wantNew[i] || w.Valid || w.Pid != 4 || w.Cnt != uint8(i) {
				t.Errorf("inset (b): word %d = %+v, want {Val:%d Cnt:%d Valid:false Pid:4}", i, w, wantNew[i], i)
			}
			if savedByProc4[i] != wantOld[i] {
				t.Errorf("inset (b): Save[4][%d] = %d, want %d", i, savedByProc4[i], wantOld[i])
			}
		}

		// Inset (d): process 9 succeeded, process 4 failed, x and y
		// restored, z = 56.
		if !ok9 {
			t.Error("proc 9's interfering MWCAS failed, want success")
		}
		if ok4 {
			t.Error("proc 4's MWCAS succeeded despite interference on z")
		}
		for i, want := range []uint32{12, 22, 56} {
			if got := fx.obj.Val(fx.words[i]); got != want {
				t.Errorf("inset (d): Val(word %d) = %d, want %d", i, got, want)
			}
		}
		if got := fx.sim.Mem().Peek(fx.obj.StatusAddr(4)); got != unimwcas.StatusInvalid {
			t.Errorf("Status[4] = %d, want 1 (invalid)", got)
		}
	})
}

// TestReadSeesOldValueDuringPendingOp: a higher-priority reader preempting
// an undecided MWCAS must read the old value via the Save array.
func TestReadSeesOldValueDuringPendingOp(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 4, 2, 2, []uint32{1, 2})
	var seen uint32
	fx.sim.Spawn(sched.JobSpec{Name: "writer", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		fx.obj.MWCAS(e, fx.words, []uint32{1, 2}, []uint32{100, 200})
	}})
	// After 9 slices the writer has installed both words but not
	// committed; the reader must still see 1.
	fx.sim.Spawn(sched.JobSpec{Name: "reader", CPU: 0, Prio: 5, Slot: 1, AfterSlices: 9, Body: func(e *sched.Env) {
		w := unimwcas.Unpack(e.Sim().Mem().Peek(fx.words[0]))
		if w.Valid {
			t.Error("test miscalibrated: word 0 not in pending state at read time")
		}
		seen = fx.obj.Read(e, fx.words[0])
	}})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Errorf("Read during pending MWCAS = %d, want old value 1", seen)
	}
}

// TestThetaW: the operation's step cost is linear in W (Figure 1, row 1:
// Θ(W) worst-case time on uniprocessors).
func TestThetaW(t *testing.T) {
	cost := func(w int) int64 {
		fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 2, w, w, nil)
		old := make([]uint32, w)
		next := make([]uint32, w)
		for i := range next {
			next[i] = uint32(i + 1)
		}
		var elapsed int64
		fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
			start := e.Now()
			if !fx.obj.MWCAS(e, fx.words, old, next) {
				t.Error("MWCAS failed")
			}
			elapsed = e.Now() - start
		})
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	c8, c16, c32 := cost(8), cost(16), cost(32)
	r1 := float64(c16) / float64(c8)
	r2 := float64(c32) / float64(c16)
	for _, r := range []float64{r1, r2} {
		if r < 1.6 || r > 2.4 {
			t.Errorf("doubling W scaled cost by %.2f (costs %d, %d, %d), want ~2 (Θ(W))", r, c8, c16, c32)
		}
	}
}

// TestStressWithChecker runs randomized prioritized jobs on one processor
// and validates every operation and the continuous Val invariant against the
// shadow model.
func TestStressWithChecker(t *testing.T) {
	f := func(seed int64) bool {
		const (
			nProcs = 6
			nWords = 5
			nOps   = 8
		)
		fx := newFixture(t, sched.Config{Processors: 1, Seed: seed, MemWords: 1 << 14},
			nProcs, nWords, nWords, []uint32{0, 0, 0, 0, 0})
		chk := check.NewMWCASChecker(fx.obj, fx.sim.Mem(), fx.words)
		rng := fx.sim.Rand()
		for p := 0; p < nProcs; p++ {
			p := p
			at := rng.Int63n(200)
			prio := sched.Priority(rng.Intn(10))
			fx.sim.Spawn(sched.JobSpec{
				Name: "", CPU: 0, Prio: prio, Slot: p, At: at, AfterSlices: -1,
				Body: func(e *sched.Env) {
					for op := 0; op < nOps; op++ {
						w := 1 + e.Rand().Intn(nWords-1)
						perm := e.Rand().Perm(nWords)[:w]
						addrs := make([]shmem.Addr, w)
						old := make([]uint32, w)
						next := make([]uint32, w)
						for i, wi := range perm {
							addrs[i] = fx.words[wi]
							// Guess the old value via Read; often
							// stale, so both success and failure
							// paths are exercised.
							var rw = chk.BeginRead(addrs[i])
							old[i] = fx.obj.Read(e, addrs[i])
							chk.EndRead(rw, old[i])
							if e.Rand().Intn(4) == 0 {
								old[i] ^= 1 // force occasional mismatch
							}
							next[i] = uint32(e.Rand().Intn(50))
						}
						chk.BeginOp(p, addrs, old, next)
						ok := fx.obj.MWCAS(e, addrs, old, next)
						chk.EndOp(p, ok)
					}
				},
			})
		}
		if err := fx.sim.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := chk.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateAddressPanics: the algorithm requires distinct addresses.
func TestDuplicateAddressPanics(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 2, 4, 2, nil)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		fx.obj.MWCAS(e, []shmem.Addr{fx.words[0], fx.words[0]}, []uint32{0, 0}, []uint32{1, 1})
	})
	if err := fx.sim.Run(); err == nil {
		t.Fatal("duplicate addresses accepted")
	}
}

// Package unimwcas implements the paper's wait-free multi-word
// compare-and-swap for priority-based uniprocessors (Section 2.1, Figure 3).
//
// A W-word MWCAS executes in Θ(W) time, which is asymptotically optimal. The
// implementation needs only CAS. Each word accessible by MWCAS carries three
// control fields packed beside its 32-bit value:
//
//	bits  0..31  val    — the application value
//	bits 32..39  cnt    — index of the word within the writing MWCAS (log B bits)
//	bits 40..55  pid    — the process whose MWCAS last wrote the word (log N bits)
//	bit  56      valid  — clear while an MWCAS that wrote val is undecided
//
// The current (linearized) value of a word w is
//
//	Val(w) = w.val                     if w.valid or Status[w.pid] = 2
//	         Save[w.pid][w.cnt]        otherwise
//
// A MWCAS operation runs in three phases: install proposed values with
// valid=false while saving the old values (lines 1-14), commit by a single
// CAS on Status[p] from 0 to 2 (line 15), and clean up so no word's current
// value depends on Status[p] any longer (lines 16-22). Interfering
// operations of lower priority are invalidated by CASing their Status from 0
// to 1 (lines 10, 13, 19, 21).
//
// Correctness requires the priority-based preemption model enforced by
// internal/sched; under arbitrary (non-priority) interleaving the algorithm
// is expected to fail, and a test demonstrates exactly that.
package unimwcas

import (
	"fmt"

	"repro/internal/shmem"
)

// Field layout of a wordtype word.
const (
	valBits = 32
	cntBits = 8
	pidBits = 16

	cntShift   = valBits
	pidShift   = valBits + cntBits
	validShift = valBits + cntBits + pidBits

	valMask = (uint64(1) << valBits) - 1
	cntMask = (uint64(1) << cntBits) - 1
	pidMask = (uint64(1) << pidBits) - 1
)

// MaxProcs is the largest supported process count (log N pid bits).
const MaxProcs = 1 << pidBits

// MaxWidth is the largest supported per-operation word count B (log B cnt
// bits).
const MaxWidth = 1 << cntBits

// Word is the decoded form of a wordtype word.
type Word struct {
	Val   uint32
	Cnt   uint8
	Valid bool
	Pid   uint16
}

// Pack encodes a Word into its shared-memory representation.
func Pack(w Word) uint64 {
	v := uint64(w.Val) | uint64(w.Cnt)<<cntShift | uint64(w.Pid)<<pidShift
	if w.Valid {
		v |= 1 << validShift
	}
	return v
}

// Unpack decodes a shared-memory word.
func Unpack(raw uint64) Word {
	return Word{
		Val:   uint32(raw & valMask),
		Cnt:   uint8(raw >> cntShift & cntMask),
		Pid:   uint16(raw >> pidShift & pidMask),
		Valid: raw>>validShift&1 == 1,
	}
}

// Status values (shared variable Status in Figure 3).
const (
	// StatusPending (0): the process's latest MWCAS is undecided.
	StatusPending uint64 = 0
	// StatusInvalid (1): the MWCAS failed (mismatch or interference).
	StatusInvalid uint64 = 1
	// StatusValid (2): the MWCAS committed.
	StatusValid uint64 = 2
)

// Object is one instance of the uniprocessor MWCAS: the Status and Save
// arrays shared by N processes, each of whose operations accesses at most B
// words.
type Object struct {
	mem    shmem.Memory
	n      int
	b      int
	status shmem.Addr // Status: array[0..N-1] of integer
	save   shmem.Addr // Save: array[0..N-1, 0..B-1] of valtype
}

// New allocates an MWCAS object for n processes with width limit b.
func New(m shmem.Memory, n, b int) (*Object, error) {
	if n < 1 || n > MaxProcs {
		return nil, fmt.Errorf("unimwcas: process count %d out of range [1,%d]", n, MaxProcs)
	}
	if b < 1 || b > MaxWidth {
		return nil, fmt.Errorf("unimwcas: width %d out of range [1,%d]", b, MaxWidth)
	}
	status, err := m.Alloc("Status", n)
	if err != nil {
		return nil, fmt.Errorf("unimwcas: %w", err)
	}
	save, err := m.Alloc("Save", n*b)
	if err != nil {
		return nil, fmt.Errorf("unimwcas: %w", err)
	}
	return &Object{mem: m, n: n, b: b, status: status, save: save}, nil
}

// InitWord initializes a word for use with this object (setup time): value
// val, valid set, as the paper requires ("the valid field should be
// initially true").
func (o *Object) InitWord(a shmem.Addr, val uint32) {
	o.mem.Poke(a, Pack(Word{Val: val, Valid: true}))
}

// StatusAddr returns the address of Status[p], for checkers.
func (o *Object) StatusAddr(p int) shmem.Addr { return o.status + shmem.Addr(p) }

// SaveAddr returns the address of Save[p][c], for checkers.
func (o *Object) SaveAddr(p, c int) shmem.Addr { return o.save + shmem.Addr(p*o.b+c) }

// Width returns B, the per-operation word limit.
func (o *Object) Width() int { return o.b }

// Procs returns N, the process count.
func (o *Object) Procs() int { return o.n }

// Val computes the current (linearized) value of word a per the paper's
// definition, reading memory directly. It is for checkers and quiescent
// inspection only; concurrent processes must use Read.
func (o *Object) Val(a shmem.Addr) uint32 {
	w := Unpack(o.mem.Peek(a))
	if w.Valid || o.mem.Peek(o.StatusAddr(int(w.Pid))) == StatusValid {
		return w.Val
	}
	return uint32(o.mem.Peek(o.SaveAddr(int(w.Pid), int(w.Cnt))))
}

// MWCAS performs a multi-word compare-and-swap on behalf of the calling
// process (lines 1-22 of Figure 3): iff every addrs[i] currently holds
// old[i], atomically set each to new[i]. It reports whether the operation
// committed. The addresses must be distinct and len(addrs) <= B.
func (o *Object) MWCAS(e shmem.Ctx, addrs []shmem.Addr, old, new []uint32) bool {
	p := e.Slot()
	o.checkArgs(p, addrs, old, new)
	numwds := len(addrs)
	init := make([]Word, numwds) // private: values initially read
	assn := make([]uint64, numwds)

	e.Store(o.StatusAddr(p), StatusPending)                      // line 1
	i := 0                                                       // line 2
	for i < numwds && e.Load(o.StatusAddr(p)) == StatusPending { // line 3
		init[i] = Unpack(e.Load(addrs[i])) // line 4
		var val uint32
		if init[i].Valid || e.Load(o.StatusAddr(int(init[i].Pid))) == StatusValid { // line 5
			val = init[i].Val // line 6
		} else {
			val = uint32(e.Load(o.SaveAddr(int(init[i].Pid), int(init[i].Cnt)))) // line 7
		}
		e.Store(o.SaveAddr(p, i), uint64(val)) // line 8
		if old[i] != val {                     // line 9
			e.Store(o.StatusAddr(p), StatusInvalid) // line 10
		} else {
			assn[i] = Pack(Word{Val: new[i], Cnt: uint8(i), Valid: false, Pid: uint16(p)}) // line 11
			if !e.CAS(addrs[i], Pack(init[i]), assn[i]) {                                  // line 12
				e.Store(o.StatusAddr(p), StatusInvalid) // line 13
			}
			i++ // line 14
		}
	}

	retval := e.CAS(o.StatusAddr(p), StatusPending, StatusValid) // line 15
	for j := 0; j < i; j++ {                                     // line 16
		if old[j] != new[j] && retval { // line 17
			// Commit the word: same value, cnt 0, valid, pid p.
			e.CAS(addrs[j], assn[j], Pack(Word{Val: new[j], Cnt: 0, Valid: true, Pid: uint16(p)})) // line 18
			if !init[j].Valid {                                                                    // line 19
				e.CAS(o.StatusAddr(int(init[j].Pid)), StatusPending, StatusInvalid)
			}
		} else if !e.CAS(addrs[j], assn[j], Pack(init[j])) { // line 20
			if !init[j].Valid { // line 21
				e.CAS(o.StatusAddr(int(init[j].Pid)), StatusPending, StatusInvalid)
			}
		}
	}
	return retval // line 22
}

// Read returns the current value of word a (lines 23-26 of Figure 3).
func (o *Object) Read(e shmem.Ctx, a shmem.Addr) uint32 {
	w := Unpack(e.Load(a))                                          // line 23
	if w.Valid || e.Load(o.StatusAddr(int(w.Pid))) == StatusValid { // line 24
		return w.Val // line 25
	}
	return uint32(e.Load(o.SaveAddr(int(w.Pid), int(w.Cnt)))) // line 26
}

func (o *Object) checkArgs(p int, addrs []shmem.Addr, old, new []uint32) {
	if p < 0 || p >= o.n {
		panic(fmt.Sprintf("unimwcas: process slot %d out of range [0,%d)", p, o.n))
	}
	if len(addrs) == 0 || len(addrs) > o.b {
		panic(fmt.Sprintf("unimwcas: %d words out of range [1,%d]", len(addrs), o.b))
	}
	if len(old) != len(addrs) || len(new) != len(addrs) {
		panic("unimwcas: addrs, old, new must have equal length")
	}
	for i, a := range addrs {
		for j := 0; j < i; j++ {
			if addrs[j] == a {
				panic(fmt.Sprintf("unimwcas: duplicate address %d at positions %d and %d", int(a), j, i))
			}
		}
	}
}

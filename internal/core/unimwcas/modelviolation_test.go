package unimwcas_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/core/unimwcas"
	"repro/internal/sched"
	"repro/internal/shmem"
)

// TestModelViolationAcrossProcessors documents the algorithm's reliance on
// the uniprocessor priority model: the very same code that passes the
// single-processor stress test produces linearizability violations when its
// processes run truly concurrently on two processors (which is exactly why
// this reproduction cannot run on raw goroutines — repro band "goroutine
// scheduler has no priorities; model violated").
//
// The scenario forces the known failure: process A installs its proposed
// value on word w (valid=false, old value parked in Save[A]). Process B on
// the other processor concurrently installs over the same word, destroying
// A's installation without A's knowledge. On a priority uniprocessor B's
// whole operation would nest inside A's preemption window and B would
// invalidate A (lines 19/21); with true concurrency the two first phases
// interleave and both operations commit, double-applying updates.
func TestModelViolationAcrossProcessors(t *testing.T) {
	violated := false
	for seed := int64(0); seed < 30 && !violated; seed++ {
		s := sched.New(sched.Config{Processors: 2, Seed: seed, MemWords: 1 << 14})
		obj, err := unimwcas.New(s.Mem(), 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		base := s.Mem().MustAlloc("app", 3)
		words := []shmem.Addr{base, base + 1, base + 2}
		for _, w := range words {
			obj.InitWord(w, 0)
		}
		chk := check.NewMWCASChecker(obj, s.Mem(), words)
		body := func(p int) func(*sched.Env) {
			return func(e *sched.Env) {
				for op := 0; op < 20; op++ {
					old := make([]uint32, len(words))
					next := make([]uint32, len(words))
					for i, w := range words {
						old[i] = obj.Read(e, w)
						next[i] = uint32(e.Rand().Intn(30))
					}
					chk.BeginOp(p, words, old, next)
					ok := obj.MWCAS(e, words, old, next)
					chk.EndOp(p, ok)
				}
			}
		}
		s.Spawn(sched.JobSpec{Name: "A", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: body(0)})
		s.Spawn(sched.JobSpec{Name: "B", CPU: 1, Prio: 1, Slot: 1, AfterSlices: -1, Body: body(1)})
		if err := s.Run(); err != nil {
			// A panic inside the algorithm under an illegal schedule
			// also counts as a detected violation.
			violated = true
			break
		}
		if chk.Err() != nil {
			violated = true
		}
	}
	if !violated {
		t.Skip("no violation found in 30 seeds; the uniprocessor algorithm happened to survive these cross-processor schedules")
	}
}

// Package multilist implements the paper's wait-free sorted linked list for
// priority-based multiprocessors (Section 3.2, Figure 7).
//
// It reuses the uniprocessor list's structure — sentinel-bounded sorted
// nodes, per-process Par records, announce-pointer scan checkpointing — but
// replaces the (pointer, bit) protocol with CCAS guarded by the helping
// engine's version word: every structural update names the version of the
// helping round it belongs to, so stale helpers' updates have no effect. As
// the paper notes, this makes the insert path simpler than the uniprocessor
// one and leaves node words free of control bits (under the native and
// delayed CCAS representations).
//
// An operation completes in Θ(2·P·T) worst-case time: two traversals of the
// helping ring, at most one list operation helped per processor per
// traversal.
//
// The Findpos scan advances the shared checkpoint Ann[R].ptr with CCAS. The
// paper's measured configuration performed that CCAS "once for every 100
// nodes scanned"; Config.Stride reproduces the optimization (ablation A4).
//
// Figure 7 gives insert and delete no failure reporting (a helper that runs
// after the splice cannot naively distinguish "the key was already there"
// from "our own splice just completed"). To provide set semantics we extend
// the helper with a distinction that is safe within the deciding round:
// operations always complete inside the round that decides them (the version
// word cannot advance before some helper finishes the case), so the new
// node's next field (for inserts) and Par[p].node (for deletes) are
// round-stable discriminators between "already done by us" and a genuine
// duplicate/absence. Rv=1 then reports failure exactly as in the search
// case, and the owner recycles an unlinked insert node.
package multilist

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Operation codes stored in Par[p].op.
const (
	opIns uint64 = iota + 1
	opDel
	opSch
)

// Rv values.
const (
	// RvPending: the operation has not completed.
	RvPending uint64 = 0
	// RvFalse: the operation completed and reports false.
	RvFalse uint64 = 1
	// RvTrue: the operation completed and reports true.
	RvTrue uint64 = 2
)

// Done is the completion predicate for Rv values (rv != 0).
func Done(rv uint64) bool { return rv != RvPending }

// KeyMin and KeyMax bound the user key space (sentinel keys).
const (
	KeyMin = uint64(0)
	KeyMax = ^uint64(0)
)

// Config configures the list.
type Config struct {
	// Processors is P; Procs is N.
	Processors, Procs int
	// CC selects the CCAS implementation; defaults to Native.
	CC prim.Impl
	// Mode selects cyclic or priority helping; defaults to Cyclic.
	Mode helping.Mode
	// Stride is the number of nodes scanned privately between checkpoint
	// CCAS operations in Findpos (1 = checkpoint every node, the
	// figure's literal code; 100 = the paper's measured configuration).
	Stride int
	// OneRound enables the single-traversal real-time optimization of
	// reference [1].
	OneRound bool
}

// List is a multiprocessor wait-free sorted linked list.
type List struct {
	mem    shmem.Memory
	ar     *arena.Arena
	cc     prim.Impl
	eng    *helping.Engine
	n      int
	stride int

	first, last arena.Ref
	par         shmem.Addr // Par[p]: node, key, op (3 words; N+1 rows)
	annPtr      shmem.Addr // Ann[R].ptr (P words)
}

// Par field offsets.
const (
	parNode   = 0
	parKey    = 1
	parOp     = 2
	parStride = 3
)

// New creates a list. The arena must not be frozen; its next-field
// representation is set to cfg.CC.
func New(m shmem.Memory, ar *arena.Arena, cfg Config) (*List, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("multilist: process count %d out of range", cfg.Procs)
	}
	if cfg.CC == nil {
		cfg.CC = prim.Native{}
	}
	if cfg.Mode == 0 {
		cfg.Mode = helping.Cyclic
	}
	if cfg.Stride < 1 {
		cfg.Stride = 1
	}
	par, err := m.Alloc("Par", (cfg.Procs+1)*parStride) // guard row at N
	if err != nil {
		return nil, fmt.Errorf("multilist: %w", err)
	}
	annPtr, err := m.Alloc("AnnPtr", cfg.Processors)
	if err != nil {
		return nil, fmt.Errorf("multilist: %w", err)
	}
	l := &List{mem: m, ar: ar, cc: cfg.CC, n: cfg.Procs, stride: cfg.Stride, par: par, annPtr: annPtr}
	ar.SetNextImpl(cfg.CC)
	l.first = ar.Static()
	l.last = ar.Static()
	m.Poke(ar.KeyAddr(l.first), KeyMin)
	m.Poke(ar.ValAddr(l.first), 0)
	cfg.CC.InitWord(m, ar.NextAddr(l.first), uint64(l.last))
	m.Poke(ar.KeyAddr(l.last), KeyMax)
	m.Poke(ar.ValAddr(l.last), 0)
	cfg.CC.InitWord(m, ar.NextAddr(l.last), uint64(arena.NIL))
	for r := 0; r < cfg.Processors; r++ {
		cfg.CC.InitWord(m, l.annPtrAddr(r), uint64(l.first))
	}
	eng, err := helping.New(m, helping.Config{
		Processors: cfg.Processors,
		Procs:      cfg.Procs,
		Mode:       cfg.Mode,
		CC:         cfg.CC,
		Done:       Done,
		Help:       l.help,
		OnAnnounce: func(e shmem.Ctx) {
			// Line 27: Ann[mypr].ptr := &First (protocol write).
			l.cc.Write(e, l.annPtrAddr(e.CPU()), uint64(l.first))
		},
		OneRound: cfg.OneRound,
	}, RvTrue)
	if err != nil {
		return nil, err
	}
	l.eng = eng
	return l, nil
}

func (l *List) annPtrAddr(r int) shmem.Addr { return l.annPtr + shmem.Addr(r) }

func (l *List) parAddr(p int, field shmem.Addr) shmem.Addr {
	return l.par + shmem.Addr(p*parStride) + field
}

// Engine exposes the helping engine for checkers and benches.
func (l *List) Engine() *helping.Engine { return l.eng }

// Arena returns the node arena.
func (l *List) Arena() *arena.Arena { return l.ar }

// First returns the head sentinel.
func (l *List) First() arena.Ref { return l.first }

// Last returns the tail sentinel.
func (l *List) Last() arena.Ref { return l.last }

// RvAddr exposes Rv[p]'s address for checkers.
func (l *List) RvAddr(p int) shmem.Addr { return l.eng.RvAddr(p) }

// Insert adds key with the given value, reporting false on duplicate
// (Figure 5 lines 1-5 with NIL next initialization per Figure 7's caption).
func (l *List) Insert(e shmem.Ctx, key, val uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	node, ok := l.ar.Alloc(e, p)
	if !ok {
		panic(fmt.Sprintf("multilist: process %d exhausted its node pool", p))
	}
	e.Store(l.ar.KeyAddr(node), key)
	e.Store(l.ar.ValAddr(node), val)
	l.cc.Write(e, l.ar.NextAddr(node), uint64(arena.NIL)) // next := NIL
	// Par[p].node is CCAS-managed (the delete path CCASes it), so all
	// writes go through the representation.
	l.cc.Write(e, l.parAddr(p, parNode), uint64(node))
	e.Store(l.parAddr(p, parKey), key)
	e.Store(l.parAddr(p, parOp), opIns)
	l.cc.Write(e, l.eng.RvAddr(p), RvPending)
	l.eng.DoOp(e)
	// Rv distinguishes the outcomes: 2 — our node was spliced; 1 — true
	// duplicate, the node was never linked and can be recycled. Rv[p] is
	// stable after completion (only the owner re-arms it; stale helper
	// CCAS operations fail on the version check), unlike the node's own
	// next field, which another process may recycle as soon as a
	// subsequent delete of the key commits.
	if l.cc.Read(e, l.eng.RvAddr(p)) == RvTrue {
		return true
	}
	l.ar.Free(e, p, node) // duplicate key: the node was never linked
	return false
}

// Delete removes key, reporting whether it was present. The removed node is
// recycled into the caller's pool.
func (l *List) Delete(e shmem.Ctx, key uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	e.Store(l.parAddr(p, parKey), key)
	e.Store(l.parAddr(p, parOp), opDel)
	l.cc.Write(e, l.parAddr(p, parNode), uint64(arena.NIL))
	l.cc.Write(e, l.eng.RvAddr(p), RvPending)
	l.eng.DoOp(e)
	// The key was actually removed iff some helper recorded the victim
	// node in Par[p].node (line 53); Par[p].node is round-stable and
	// owner-reset, so it is a safe discriminator even after the node's
	// memory has been recycled.
	node := arena.Ref(l.cc.Read(e, l.parAddr(p, parNode)))
	if node == arena.NIL {
		return false // key was absent
	}
	l.ar.Free(e, p, node)
	return true
}

// Search reports whether key is present.
func (l *List) Search(e shmem.Ctx, key uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	e.Store(l.parAddr(p, parKey), key)
	e.Store(l.parAddr(p, parOp), opSch)
	l.cc.Write(e, l.eng.RvAddr(p), RvPending)
	l.eng.DoOp(e)
	return l.cc.Read(e, l.eng.RvAddr(p)) == RvTrue
}

// help helps the operation announced on ver.Target (lines 38-58 of
// Figure 7).
func (l *List) help(e shmem.Ctx, ver helping.Version) {
	vw := helping.PackVersion(ver)
	pid := l.eng.AnnPid(e, ver.Target)    // line 38
	key := e.Load(l.parAddr(pid, parKey)) // line 39
	curr := l.findpos(e, key, ver, pid)   // line 40
	if e.Load(l.eng.VAddr()) != vw {      // line 41
		return
	}
	nextp := arena.Ref(l.cc.Read(e, l.ar.NextAddr(curr))) // line 42
	if e.Load(l.eng.VAddr()) != vw {                      // line 43: guards the dereference of nextp
		return
	}
	nextnextp := arena.Ref(l.cc.Read(e, l.ar.NextAddr(nextp))) // line 44
	nextkey := e.Load(l.ar.KeyAddr(nextp))                     // line 45
	if l.cc.Read(e, l.eng.RvAddr(pid)) != RvPending {          // line 46
		return
	}
	switch e.Load(l.parAddr(pid, parOp)) { // line 47
	case opIns:
		newNode := arena.Ref(l.cc.Read(e, l.parAddr(pid, parNode))) // line 49
		if nextkey != key {                                         // line 48
			l.cc.Exec(e, l.eng.VAddr(), vw, l.ar.NextAddr(newNode), uint64(arena.NIL), uint64(nextp)) // line 50
			if l.cc.Exec(e, l.eng.VAddr(), vw, l.ar.NextAddr(curr), uint64(nextp), uint64(newNode)) { // line 51
				if e.Traced() {
					e.Note("splice", trace.I("p", int64(pid)), trace.I("key", int64(key)))
				}
			}
		} else if arena.Ref(l.cc.Read(e, l.ar.NextAddr(newNode))) == arena.NIL {
			// True duplicate. Distinguishing it from "our own node
			// was just spliced by another helper" is safe *within
			// the deciding round*: the new node's next pointer is
			// round-stable (only this operation's line 50 moves it
			// off NIL, and an operation always completes inside the
			// round that decides it — the version word cannot
			// advance until some helper has finished the case, and
			// the first finisher runs it to completion). A stale
			// helper's Rv CCAS fails on the version check.
			l.cc.Exec(e, l.eng.VAddr(), vw, l.eng.RvAddr(pid), RvPending, RvFalse)
			return
		}
		// nextkey == key with new->next != NIL: our own splice is
		// already done; fall through to line 58.
	case opDel:
		if nextkey == key { // line 52
			l.cc.Exec(e, l.eng.VAddr(), vw, l.parAddr(pid, parNode), uint64(arena.NIL), uint64(nextp))  // line 53
			if l.cc.Exec(e, l.eng.VAddr(), vw, l.ar.NextAddr(curr), uint64(nextp), uint64(nextnextp)) { // line 54
				if e.Traced() {
					e.Note("unsplice", trace.I("p", int64(pid)), trace.I("key", int64(key)))
				}
			}
		} else if arena.Ref(l.cc.Read(e, l.parAddr(pid, parNode))) == arena.NIL {
			// True absence, distinguished from "we just unspliced
			// it" by Par[pid].node, which is round-stable (only
			// line 53 sets it, version-guarded).
			l.cc.Exec(e, l.eng.VAddr(), vw, l.eng.RvAddr(pid), RvPending, RvFalse)
			return
		}
		// nextkey != key with Par[pid].node set: the unsplice is
		// already done; fall through to line 58.
	case opSch:
		if nextkey != key { // line 55
			l.cc.Exec(e, l.eng.VAddr(), vw, l.eng.RvAddr(pid), RvPending, RvFalse) // line 56
			return                                                                 // line 57
		}
	default:
		// Guard row (pid == N) or a stale announce: all subsequent
		// CCAS operations would fail on the version check anyway.
		return
	}
	l.cc.Exec(e, l.eng.VAddr(), vw, l.eng.RvAddr(pid), RvPending, RvTrue) // line 58
}

// findpos resumes the scan for the operation of process help on the round
// ver, returning the predecessor of the first node with key >= key (lines
// 30-37 of Figure 7). The checkpoint Ann[ver.Target].ptr advances by CCAS —
// every Stride nodes under the Section 3.4 optimization.
func (l *List) findpos(e shmem.Ctx, key uint64, ver helping.Version, help int) arena.Ref {
	vw := helping.PackVersion(ver)
	for l.cc.Read(e, l.eng.RvAddr(help)) == RvPending { // line 30
		curr := arena.Ref(l.cc.Read(e, l.annPtrAddr(ver.Target))) // line 31
		// Walk up to stride nodes privately before publishing the
		// checkpoint.
		probe := curr
		var nextp arena.Ref
		var nextkey uint64
		for hop := 0; hop < l.stride; hop++ {
			nextp = arena.Ref(l.cc.Read(e, l.ar.NextAddr(probe))) // line 32
			if e.Load(l.eng.VAddr()) != vw {                      // line 33
				return l.first
			}
			nextkey = e.Load(l.ar.KeyAddr(nextp)) // line 34
			if nextkey >= key || nextp == l.last {
				break
			}
			probe = nextp
		}
		if l.cc.Read(e, l.eng.RvAddr(help)) != RvPending || nextkey >= key || nextp == l.last { // line 35
			if probe != curr {
				// Publish the partial progress so other helpers
				// resume close to the position (harmless if it
				// fails).
				l.cc.Exec(e, l.eng.VAddr(), vw, l.annPtrAddr(ver.Target), uint64(curr), uint64(probe))
			}
			return probe
		}
		l.cc.Exec(e, l.eng.VAddr(), vw, l.annPtrAddr(ver.Target), uint64(curr), uint64(nextp)) // line 36
	}
	return l.first // line 37
}

// SeedAscending bulk-loads the list at setup time (see unilist.SeedAscending).
func (l *List) SeedAscending(keys []uint64) error {
	prev := l.first
	for i, k := range keys {
		if k == KeyMin || k == KeyMax {
			return fmt.Errorf("multilist: seed key %#x is reserved", k)
		}
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("multilist: seed keys not strictly ascending at %d", i)
		}
		node := l.ar.Static()
		l.mem.Poke(l.ar.KeyAddr(node), k)
		l.mem.Poke(l.ar.ValAddr(node), k)
		l.cc.InitWord(l.mem, l.ar.NextAddr(node), uint64(l.last))
		l.cc.InitWord(l.mem, l.ar.NextAddr(prev), uint64(node))
		prev = node
	}
	return nil
}

// Snapshot returns the keys currently in the list, in order (tests and
// checkers; no simulated time).
// SnapshotRegion reports the address range whose words fully determine
// Snapshot, so per-write checkers can skip writes that cannot change it.
func (l *List) SnapshotRegion() (lo, hi shmem.Addr) { return l.ar.NodeRegion() }

func (l *List) Snapshot() []uint64 { return l.AppendSnapshot(nil) }

// AppendSnapshot appends the snapshot to dst and returns the extended
// slice, letting per-write checkers reuse one scratch buffer across a
// sweep instead of allocating a fresh slice per observed write.
func (l *List) AppendSnapshot(dst []uint64) []uint64 {
	keys := dst
	base := len(dst)
	r := arena.Ref(l.cc.Logical(l.mem.Peek(l.ar.NextAddr(l.first))))
	for r != l.last && r != arena.NIL {
		keys = append(keys, l.mem.Peek(l.ar.KeyAddr(r)))
		if len(keys)-base > l.ar.Capacity() {
			panic("multilist: list cycle detected")
		}
		r = arena.Ref(l.cc.Logical(l.mem.Peek(l.ar.NextAddr(r))))
	}
	return keys
}

func (l *List) checkKey(key uint64) {
	if key == KeyMin || key == KeyMax {
		panic(fmt.Sprintf("multilist: key %#x is reserved for sentinels", key))
	}
	if key > l.cc.MaxLogical() {
		panic(fmt.Sprintf("multilist: key %#x exceeds CCAS logical capacity", key))
	}
}

// ParNodeAddr exposes Par[p].node's address, for checkers and debugging.
func (l *List) ParNodeAddr(p int) shmem.Addr { return l.parAddr(p, parNode) }

package multilist_test

import (
	"testing"

	"repro/internal/arena"
	"repro/internal/core/multilist"
	"repro/internal/helping"
	"repro/internal/sched"
)

// TestPriorityHelpingStarvation is ablation A6, the caveat at the end of
// Section 3.4: "in non-real-time systems, priority helping could result in
// the starvation of low-priority processes if high-priority processes
// perform operations very frequently." A low-priority operation's response
// time under a stream of high-priority operations grows with the stream
// under priority helping, while cyclic helping bounds it by the ring
// (2P operations).
func TestPriorityHelpingStarvation(t *testing.T) {
	response := func(mode helping.Mode, burst int) int64 {
		s := sched.New(sched.Config{Processors: 4, Seed: 5, MemWords: 1 << 19})
		ar, err := arena.New(s.Mem(), 1024, 4)
		if err != nil {
			t.Fatal(err)
		}
		l, err := multilist.New(s.Mem(), ar, multilist.Config{Processors: 4, Procs: 4, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]uint64, 200)
		for i := range keys {
			keys[i] = uint64(10 * (i + 1))
		}
		if err := l.SeedAscending(keys); err != nil {
			t.Fatal(err)
		}
		ar.Freeze()
		var low int64
		// The low-priority operation arrives first on cpu 0.
		s.Spawn(sched.JobSpec{Name: "low", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
			start := e.Now()
			l.Search(e, 2005) // full scan
			low = e.Now() - start
		}})
		// High-priority op streams on the other processors, arriving
		// staggered so there is always a high-priority op pending.
		for cpu := 1; cpu < 4; cpu++ {
			cpu := cpu
			s.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 9, Slot: cpu, At: int64(cpu), AfterSlices: -1, Body: func(e *sched.Env) {
				for i := 0; i < burst; i++ {
					l.Search(e, 2005)
				}
			}})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return low
	}
	cyc := response(helping.Cyclic, 6)
	priShort := response(helping.Priority, 2)
	priLong := response(helping.Priority, 6)
	// Under priority helping the low op's response grows with the
	// high-priority stream; under cyclic helping it does not exceed the
	// long-stream priority response (the ring serves it within 2P ops).
	if priLong <= priShort {
		t.Errorf("priority-helping low response did not grow with the stream: burst2=%d burst6=%d", priShort, priLong)
	}
	if cyc >= priLong {
		t.Errorf("cyclic helping (%d) should bound the low op better than priority helping under load (%d)", cyc, priLong)
	}
	t.Logf("low-prio response: cyclic=%d, priority(short stream)=%d, priority(long stream)=%d", cyc, priShort, priLong)
}

package multilist_test

import (
	"testing"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/multilist"
	"repro/internal/sched"
)

// TestConcurrentSlotSharingDetected documents the process-slot discipline:
// two jobs that run CONCURRENTLY (different processors) with the same slot
// violate the model — the slot's Par/Rv records are per-operation state —
// and the structural checker catches the resulting misbehaviour. (Sequential
// slot reuse, which the workload layer performs, is fine.)
func TestConcurrentSlotSharingDetected(t *testing.T) {
	violated := false
	for seed := int64(0); seed < 40 && !violated; seed++ {
		s := sched.New(sched.Config{Processors: 2, Seed: seed, MemWords: 1 << 16})
		ar, err := arena.New(s.Mem(), 128, 2)
		if err != nil {
			t.Fatal(err)
		}
		l, err := multilist.New(s.Mem(), ar, multilist.Config{Processors: 2, Procs: 2})
		if err != nil {
			t.Fatal(err)
		}
		ar.Freeze()
		chk := check.NewMultiListChecker(l, s.Mem())
		body := func(base uint64) func(*sched.Env) {
			return func(e *sched.Env) {
				for i := uint64(0); i < 10; i++ {
					key := base + i
					chk.BeginOp(int(base), check.ListIns, key)
					ok := l.Insert(e, key, key)
					chk.EndOp(int(base), ok)
				}
			}
		}
		// Both jobs use slot 0 — the violation.
		s.Spawn(sched.JobSpec{Name: "a", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: body(100)})
		s.Spawn(sched.JobSpec{Name: "b", CPU: 1, Prio: 1, Slot: 0, AfterSlices: -1, Body: body(200)})
		if err := s.Run(); err != nil {
			violated = true // a panic (pool exhaustion, cycle) also counts
			break
		}
		chk.Finish()
		if chk.Err() != nil {
			violated = true
		}
		// Silent data loss also counts: 20 unique inserts must yield 20 keys.
		if len(l.Snapshot()) != 20 {
			violated = true
		}
	}
	if !violated {
		t.Skip("no violation surfaced in 40 seeds; slot sharing happened to serialize")
	}
}

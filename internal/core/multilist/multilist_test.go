package multilist_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/multilist"
	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/sched"
)

type fixture struct {
	sim  *sched.Sim
	ar   *arena.Arena
	list *multilist.List
}

func newFixture(t testing.TB, scfg sched.Config, lcfg multilist.Config, nodes int, seed []uint64) *fixture {
	t.Helper()
	if scfg.MemWords == 0 {
		scfg.MemWords = 1 << 17
	}
	s := sched.New(scfg)
	ar, err := arena.New(s.Mem(), nodes, lcfg.Procs)
	if err != nil {
		t.Fatal(err)
	}
	l, err := multilist.New(s.Mem(), ar, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) > 0 {
		if err := l.SeedAscending(seed); err != nil {
			t.Fatal(err)
		}
	}
	ar.Freeze()
	return &fixture{sim: s, ar: ar, list: l}
}

func TestSequentialSemantics(t *testing.T) {
	for _, cc := range prim.All() {
		cc := cc
		t.Run(cc.Name(), func(t *testing.T) {
			fx := newFixture(t, sched.Config{Processors: 1, Seed: 1},
				multilist.Config{Processors: 1, Procs: 1, CC: cc}, 32, nil)
			fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
				l := fx.list
				if !l.Insert(e, 10, 100) || !l.Insert(e, 5, 50) || !l.Insert(e, 15, 150) {
					t.Error("inserts failed")
				}
				if l.Insert(e, 10, 101) {
					t.Error("duplicate insert succeeded")
				}
				if !l.Search(e, 5) || l.Search(e, 7) {
					t.Error("search wrong")
				}
				if !l.Delete(e, 10) || l.Delete(e, 10) {
					t.Error("delete wrong")
				}
			})
			if err := fx.sim.Run(); err != nil {
				t.Fatal(err)
			}
			got := fx.list.Snapshot()
			if len(got) != 2 || got[0] != 5 || got[1] != 15 {
				t.Errorf("final list = %v, want [5 15]", got)
			}
		})
	}
}

func TestSeededList(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 2, Seed: 1},
		multilist.Config{Processors: 2, Procs: 2}, 64, []uint64{10, 20, 30, 40})
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		if !fx.list.Search(e, 30) {
			t.Error("Search(30) failed on seeded list")
		}
		if !fx.list.Delete(e, 20) {
			t.Error("Delete(20) failed")
		}
		if !fx.list.Insert(e, 25, 0) {
			t.Error("Insert(25) failed")
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	got := fx.list.Snapshot()
	want := []uint64{10, 25, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("list = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list = %v, want %v", got, want)
		}
	}
}

// TestStressAllVariants: the randomized cross-processor workload with the
// event-claiming checker, for every CCAS implementation, both helping modes
// and both Findpos strides.
func TestStressAllVariants(t *testing.T) {
	type variant struct {
		cc     prim.Impl
		mode   helping.Mode
		stride int
	}
	var variants []variant
	for _, cc := range prim.All() {
		variants = append(variants,
			variant{cc, helping.Cyclic, 1},
			variant{cc, helping.Priority, 1})
	}
	variants = append(variants,
		variant{prim.Native{}, helping.Cyclic, 10},
		variant{prim.Tagged{}, helping.Cyclic, 100})
	for _, v := range variants {
		v := v
		t.Run(fmt.Sprintf("%s_%s_stride%d", v.cc.Name(), v.mode, v.stride), func(t *testing.T) {
			f := func(seed int64) bool {
				runStress(t, seed, v.cc, v.mode, v.stride)
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func runStress(t *testing.T, seed int64, cc prim.Impl, mode helping.Mode, stride int) {
	t.Helper()
	const (
		nCPU   = 3
		nProcs = 6
		nOps   = 8
	)
	fx := newFixture(t, sched.Config{Processors: nCPU, Seed: seed, MemWords: 1 << 17},
		multilist.Config{Processors: nCPU, Procs: nProcs, CC: cc, Mode: mode, Stride: stride},
		256, []uint64{2, 4, 6, 8})
	chk := check.NewMultiListChecker(fx.list, fx.sim.Mem())
	rng := fx.sim.Rand()
	for p := 0; p < nProcs; p++ {
		p := p
		fx.sim.Spawn(sched.JobSpec{
			Name: "", CPU: p % nCPU, Prio: sched.Priority(rng.Intn(6)), Slot: p,
			At: rng.Int63n(500), AfterSlices: -1,
			Body: func(e *sched.Env) {
				for op := 0; op < nOps; op++ {
					key := uint64(1 + e.Rand().Intn(10))
					var ok bool
					switch e.Rand().Intn(3) {
					case 0:
						chk.BeginOp(p, check.ListIns, key)
						ok = fx.list.Insert(e, key, key)
					case 1:
						chk.BeginOp(p, check.ListDel, key)
						ok = fx.list.Delete(e, key)
					default:
						chk.BeginOp(p, check.ListSch, key)
						ok = fx.list.Search(e, key)
					}
					chk.EndOp(p, ok)
				}
			},
		})
	}
	if err := fx.sim.Run(); err != nil {
		t.Fatalf("seed %d (%s/%v/stride %d): %v", seed, cc.Name(), mode, stride, err)
	}
	chk.Finish()
	if err := chk.Err(); err != nil {
		t.Fatalf("seed %d (%s/%v/stride %d): %v", seed, cc.Name(), mode, stride, err)
	}
	// The final list must be a sorted duplicate-free subset of the key
	// space.
	snap := fx.list.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("seed %d: final list unsorted or duplicated: %v", seed, snap)
		}
	}
}

// TestNoLeaksUnderContention: arena capacity is conserved across a contended
// run (every node is in the list or on some free list afterwards).
func TestNoLeaksUnderContention(t *testing.T) {
	const nProcs = 4
	fx := newFixture(t, sched.Config{Processors: 2, Seed: 9, MemWords: 1 << 17},
		multilist.Config{Processors: 2, Procs: nProcs}, 64, nil)
	usable := 0
	for p := 0; p < nProcs; p++ {
		usable += fx.ar.FreeCount(p)
	}
	for p := 0; p < nProcs; p++ {
		p := p
		fx.sim.Spawn(sched.JobSpec{Name: "", CPU: p % 2, Prio: sched.Priority(p / 2), Slot: p, At: int64(p) * 7, AfterSlices: -1, Body: func(e *sched.Env) {
			for i := 0; i < 25; i++ {
				key := uint64(1 + e.Rand().Intn(6))
				if e.Rand().Intn(2) == 0 {
					fx.list.Insert(e, key, 0)
				} else {
					fx.list.Delete(e, key)
				}
			}
		}})
	}
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	free := 0
	for p := 0; p < nProcs; p++ {
		free += fx.ar.FreeCount(p)
	}
	if free+len(fx.list.Snapshot()) != usable {
		t.Errorf("node conservation violated: %d free + %d listed != %d usable",
			free, len(fx.list.Snapshot()), usable)
	}
}

// TestTheta2PT reproduces the Figure 1 shape for the multiprocessor list:
// worst-case operation time grows linearly in T (list size) and in P.
func TestTheta2PT(t *testing.T) {
	cost := func(nCPU, listSize int) int64 {
		keys := make([]uint64, listSize)
		for i := range keys {
			keys[i] = uint64(10 * (i + 1))
		}
		fx := newFixture(t, sched.Config{Processors: nCPU, Seed: 7, MemWords: 1 << 20},
			multilist.Config{Processors: nCPU, Procs: nCPU}, listSize+16, keys)
		worst := make([]int64, nCPU)
		for cpu := 0; cpu < nCPU; cpu++ {
			cpu := cpu
			fx.sim.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, At: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				start := e.Now()
				fx.list.Search(e, uint64(10*listSize+5)) // full scan
				worst[cpu] = e.Now() - start
			}})
		}
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		var max int64
		for _, w := range worst {
			if w > max {
				max = w
			}
		}
		return max
	}
	// Linear in T at fixed P.
	c100, c200, c400 := cost(4, 100), cost(4, 200), cost(4, 400)
	if r := float64(c400-c200) / float64(c200-c100); r < 1.2 || r > 3.2 {
		t.Errorf("T-scaling not linear: %d, %d, %d (difference ratio %.2f)", c100, c200, c400, r)
	}
	// Increasing in P at fixed T.
	p2, p4, p8 := cost(2, 100), cost(4, 100), cost(8, 100)
	if !(p2 < p4 && p4 < p8) {
		t.Errorf("P-scaling not increasing: P=2:%d P=4:%d P=8:%d", p2, p4, p8)
	}
}

// TestPriorityHelpingUrgency: with priority helping, a high-priority
// operation is helped ahead of earlier-announced low-priority operations on
// other processors ("at most two other concurrent operations can be
// completed before it").
func TestPriorityHelpingUrgency(t *testing.T) {
	const nCPU = 4
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = uint64(10 * (i + 1))
	}
	run := func(mode helping.Mode) int {
		fx := newFixture(t, sched.Config{Processors: nCPU, Seed: 5, MemWords: 1 << 20},
			multilist.Config{Processors: nCPU, Procs: nCPU, Mode: mode}, 340, keys)
		// Low-priority scanners on cpus 1..3 start first; a
		// high-priority op on cpu 0 starts later. Count how many
		// low-priority ops complete before the high one.
		var order []int
		for cpu := 1; cpu < nCPU; cpu++ {
			cpu := cpu
			fx.sim.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, At: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				for i := 0; i < 3; i++ {
					fx.list.Search(e, 3005)
					order = append(order, cpu)
				}
			}})
		}
		fx.sim.Spawn(sched.JobSpec{Name: "hi", CPU: 0, Prio: 9, Slot: 0, At: 900, AfterSlices: -1, Body: func(e *sched.Env) {
			fx.list.Search(e, 3005)
			order = append(order, 0)
		}})
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		before := 0
		for _, c := range order {
			if c == 0 {
				break
			}
			before++
		}
		return before
	}
	cyc := run(helping.Cyclic)
	pri := run(helping.Priority)
	if pri > cyc {
		t.Errorf("priority helping let %d low-priority ops finish first, cyclic %d — priority should not be worse", pri, cyc)
	}
}

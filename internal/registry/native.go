package registry

import (
	"repro/internal/native"
	"repro/internal/sched"
	"repro/internal/shmem"
)

// nativeBackend adapts *native.World to Backend. Sim() is nil, which is
// what steers Normalize: white-box checkers are rejected and the CCAS
// implementation defaults to a software construction.
type nativeBackend struct{ w *native.World }

func (b nativeBackend) Memory() shmem.Memory { return b.w.Mem() }
func (b nativeBackend) Processors() int      { return b.w.Processors() }
func (b nativeBackend) Sim() *sched.Sim      { return nil }

// NativeBackend wraps a native world as a construction Backend for
// BuildOn.
func NativeBackend(w *native.World) Backend { return nativeBackend{w: w} }

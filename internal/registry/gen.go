package registry

import (
	"math/rand"
)

// genKeyRange is the op generator's key universe. It is deliberately small
// so generated schedules collide: same-key insert/delete races are where
// the helping proofs earn their keep.
const genKeyRange = 16

// Ops returns the object's canonical deterministic operation stream for
// one process slot: n operations drawn from the object's model kind, fully
// determined by (seed, slot). Identical (seed, slot, n) triples yield
// identical streams across objects sharing a model kind — the differential
// tests run one stream against both members of a uni/multi pair.
func (d *Descriptor) Ops(cfg Config, seed int64, slot, n int) []Op {
	rng := rand.New(rand.NewSource(seed*1000003 + int64(slot)*7919 + int64(d.Model)))
	out := make([]Op, n)
	for i := range out {
		out[i] = genOne(d.Model, cfg, rng, slot, i)
	}
	return out
}

func genOne(kind ModelKind, cfg Config, rng *rand.Rand, slot, i int) Op {
	switch kind {
	case ModelSorted:
		key := uint64(1 + rng.Intn(genKeyRange))
		switch rng.Intn(5) {
		case 0:
			return Op{Code: OpSearch, Key: key}
		case 1, 2:
			return Op{Code: OpDelete, Key: key}
		default:
			return Op{Code: OpInsert, Key: key, Val: key*10 + uint64(slot)}
		}
	case ModelFIFO:
		if rng.Intn(2) == 0 {
			return Op{Code: OpDequeue}
		}
		return Op{Code: OpEnqueue, Val: uint64(1000*(slot+1) + i + 1)}
	case ModelLIFO:
		if rng.Intn(2) == 0 {
			return Op{Code: OpPop}
		}
		return Op{Code: OpPush, Val: uint64(1000*(slot+1) + i + 1)}
	case ModelWords:
		words := cfg.Words
		if words < 1 {
			words = 1
		}
		width := cfg.Width
		if width > words {
			width = words
		}
		if width < 1 {
			width = 1
		}
		k := 1 + rng.Intn(width)
		idx := rng.Perm(words)[:k]
		// Sorted indices keep the schedule independent of Perm's
		// internal order and give MWCAS a canonical address order.
		sortInts(idx)
		return Op{Code: OpMWCAS, Words: idx, Delta: uint64(1 + rng.Intn(5))}
	}
	panic("registry: op generation for unknown model kind")
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

package registry

import (
	"encoding/json"
	"testing"

	"repro/internal/metrics"
)

// TestNativeObsEveryObject is the tentpole acceptance check: a native run
// of every registered object with the metrics layer on must produce a
// metrics.Report with nonzero step counters, a populated latency
// histogram, and CAS traffic on the objects that synchronize with CAS.
func TestNativeObsEveryObject(t *testing.T) {
	const procs, ops = 4, 40
	for _, d := range All() {
		cfg := d.StressConfig(procs)
		cfg.Check = false
		if d.Name != "herlihy" {
			// Let RunNative size node pools to the op budget (herlihy's
			// capacity is its state-array size, not a pool).
			cfg.Capacity = 0
		}
		res, err := d.RunNative(NativeRun{
			Procs: procs, Ops: ops, Seed: 7, Cfg: cfg, Obs: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		rep := res.Report
		if rep == nil {
			t.Fatalf("%s: Obs run returned nil Report", d.Name)
		}
		if rep.Granularity != "native" {
			t.Errorf("%s: Granularity = %q, want native", d.Name, rep.Granularity)
		}
		if rep.Mem.Steps() == 0 {
			t.Errorf("%s: zero memory steps in native report", d.Name)
		}
		if rep.Mem.CAS+rep.Mem.CAS2+rep.Mem.CCAS == 0 {
			t.Errorf("%s: no synchronization attempts recorded", d.Name)
		}
		if rep.OpLatency == nil || rep.OpLatency.Count != uint64(procs*ops) {
			t.Errorf("%s: OpLatency count = %v, want %d samples", d.Name, rep.OpLatency, procs*ops)
		}
		if len(rep.Procs) != procs {
			t.Fatalf("%s: %d proc reports, want %d", d.Name, len(rep.Procs), procs)
		}
		for _, pr := range rep.Procs {
			if pr.Mem.Steps() == 0 {
				t.Errorf("%s: proc %s executed zero steps", d.Name, pr.Name)
			}
			if pr.Latency == nil || pr.Latency.Count != uint64(ops) {
				t.Errorf("%s: proc %s latency histogram has %v samples, want %d",
					d.Name, pr.Name, pr.Latency, ops)
			}
		}
		if d.Family != FamilyBaseline && rep.Slices == 0 {
			t.Errorf("%s: sharded family reported zero slices", d.Name)
		}
	}

	// Helping depends on real preemption timing — it shows up on roughly
	// half a percent of contended queue operations — so the check targets
	// the queue objects with a real op budget and retries seeds. Dead
	// helping counters would make every attempt read zero.
	totalHelps := 0
	for seed := int64(1); seed <= 4 && totalHelps == 0; seed++ {
		for _, name := range []string{"uniqueue", "multiqueue"} {
			d, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := d.StressConfig(4)
			cfg.Check = false
			cfg.Capacity = 0
			res, err := d.RunNative(NativeRun{Procs: 4, Ops: 4000, Seed: seed, Cfg: cfg, Obs: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			totalHelps += res.Report.HelpGiven
			if res.Report.HelpGiven != res.Report.HelpReceived {
				t.Errorf("%s: HelpGiven %d != HelpReceived %d (pairwise helping must balance)",
					name, res.Report.HelpGiven, res.Report.HelpReceived)
			}
		}
	}
	if totalHelps == 0 {
		t.Error("no helping observed on the queue objects over 4 seeds; helping counters are dead")
	}
}

// TestNativeObsDeterministicAggregation pins that the aggregation itself
// is stable: two single-proc runs (fully deterministic op streams, no
// contention) must produce byte-identical reports once the wall-clock
// fields are zeroed.
func TestNativeObsDeterministicAggregation(t *testing.T) {
	for _, name := range []string{"unilist", "multiqueue", "gclist"} {
		d, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func() []byte {
			cfg := d.StressConfig(1)
			cfg.Check = false
			cfg.Capacity = 0
			res, err := d.RunNative(NativeRun{Procs: 1, Ops: 60, Seed: 3, Cfg: cfg, Obs: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			rep := res.Report
			stripWallClock(rep)
			b, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		a, b := run(), run()
		if string(a) != string(b) {
			t.Errorf("%s: single-proc native reports differ after zeroing wall-clock fields:\n%s\n%s", name, a, b)
		}
	}
}

// stripWallClock zeroes every field derived from the wall clock, leaving
// only the deterministic content (counters, structure, scheduling shape).
func stripWallClock(r *metrics.Report) {
	r.ElapsedVT = 0
	r.OpTime = metrics.Summary{}
	r.OpLatency = nil
	r.Response = metrics.Summary{}
	r.DispatchLatency = metrics.Summary{}
	for i := range r.Procs {
		p := &r.Procs[i]
		p.ReleasedVT, p.StartedVT, p.CompletedVT = 0, 0, 0
		p.DispatchLatencyVT, p.ResponseVT = 0, 0
		p.OpTime = metrics.Summary{}
		p.Latency = nil
	}
}

// TestNativeObsRecorderDrains checks the registry plumbing of the flight
// recorder: a recorded run returns a non-empty TraceLog whose invoke and
// response annotation counts match the op budget.
func TestNativeObsRecorderDrains(t *testing.T) {
	d, err := Lookup("unistack")
	if err != nil {
		t.Fatal(err)
	}
	const procs, ops = 3, 25
	cfg := d.StressConfig(procs)
	cfg.Check = false
	cfg.Capacity = 0
	res, err := d.RunNative(NativeRun{
		Procs: procs, Ops: ops, Seed: 11, Cfg: cfg, Obs: true, Recorder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceLog == nil {
		t.Fatal("Recorder run returned nil TraceLog")
	}
	if res.DroppedEvents != 0 {
		t.Fatalf("default ring capacity dropped %d events on a %d-op run", res.DroppedEvents, procs*ops)
	}
	invokes, responses := 0, 0
	for _, ev := range res.TraceLog.Annotations() {
		switch ev.Key {
		case "invoke":
			invokes++
		case "response":
			responses++
		}
	}
	if invokes != procs*ops || responses != procs*ops {
		t.Fatalf("trace has %d invokes / %d responses, want %d each", invokes, responses, procs*ops)
	}
}

// TestNativeObsOffByDefault: the default run must not collect.
func TestNativeObsOffByDefault(t *testing.T) {
	d, err := Lookup("unilist")
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.StressConfig(2)
	cfg.Check = false
	res, err := d.RunNative(NativeRun{Procs: 2, Ops: 10, Seed: 1, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != nil || res.TraceLog != nil {
		t.Fatal("unobserved run returned a Report or TraceLog")
	}
}

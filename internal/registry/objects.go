package registry

// The descriptor table: the ten core objects and the four evaluation
// baselines, each answering the registry op model through a small adapter.
// The adapters own the construction order the objects require (arena, then
// object, then seeding, then freeze) and, under Config.Check, wire the
// object's linearizability checker so Apply drives it.

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/baseline/gclist"
	"repro/internal/baseline/herlihy"
	"repro/internal/baseline/locklist"
	"repro/internal/baseline/valois"
	"repro/internal/check"
	"repro/internal/core/multihash"
	"repro/internal/core/multilist"
	"repro/internal/core/multimwcas"
	"repro/internal/core/multiqueue"
	"repro/internal/core/multistack"
	"repro/internal/core/unihash"
	"repro/internal/core/unilist"
	"repro/internal/core/unimwcas"
	"repro/internal/core/uniqueue"
	"repro/internal/core/unistack"
	"repro/internal/shmem"
)

type applyFn func(e shmem.Ctx, slot int, op Op) Result

// instance is the one concrete Instance implementation; descriptors fill
// in the closures.
type instance struct {
	under    any
	apply    applyFn
	snapshot func() []uint64
	words    []shmem.Addr
	finish   func() error
}

func (in *instance) Apply(e shmem.Ctx, slot int, op Op) Result { return in.apply(e, slot, op) }
func (in *instance) Snapshot() []uint64                        { return in.snapshot() }
func (in *instance) Underlying() any                           { return in.under }
func (in *instance) AppWords() []shmem.Addr                    { return in.words }
func (in *instance) CheckErr() error {
	if in.finish == nil {
		return nil
	}
	return in.finish()
}

// listApply adapts the shared list surface to the op model.
func listApply(l List) applyFn {
	return func(e shmem.Ctx, slot int, op Op) Result {
		switch op.Code {
		case OpInsert:
			return Result{OK: l.Insert(e, op.Key, op.Val)}
		case OpDelete:
			return Result{OK: l.Delete(e, op.Key)}
		case OpSearch:
			return Result{OK: l.Search(e, op.Key)}
		}
		panic("registry: list object got " + op.Code.String())
	}
}

func listKind(c OpCode) uint64 {
	switch c {
	case OpInsert:
		return check.ListIns
	case OpDelete:
		return check.ListDel
	default:
		return check.ListSch
	}
}

// multiListChecked arms the structural-event checker shared by the
// multiprocessor list, the hash tables' bucket chains, and the lock-free
// baselines.
func multiListChecked(l List, chk *check.MultiListChecker) (applyFn, func() error) {
	base := listApply(l)
	apply := func(e shmem.Ctx, slot int, op Op) Result {
		chk.BeginOp(slot, listKind(op.Code), op.Key)
		r := base(e, slot, op)
		chk.EndOp(slot, r.OK)
		return r
	}
	return apply, func() error { chk.Finish(); return chk.Err() }
}

// simMem returns the simulated memory behind b for the white-box checkers.
// Normalize rejects Config.Check off-simulator, so b.Sim() is non-nil on
// every path that reaches here.
func simMem(b Backend) *shmem.Mem { return b.Sim().Mem() }

func newArena(b Backend, cfg Config) (*arena.Arena, error) {
	return arena.New(b.Memory(), cfg.Capacity, cfg.Procs)
}

func init() {
	register(&Descriptor{
		Name: "unilist", Pkg: "core/unilist", Family: FamilyUni, Model: ModelSorted,
		Scenario: ScenarioSpec{
			Capacity: 32,
			Scripts: [][]Op{
				{{Code: OpInsert, Key: 10, Val: 1}},
				{{Code: OpInsert, Key: 20, Val: 2}},
				{{Code: OpInsert, Key: 30, Val: 3}},
			},
		},
		New: func(b Backend, cfg Config) (Instance, error) {
			ar, err := newArena(b, cfg)
			if err != nil {
				return nil, err
			}
			l, err := unilist.New(b.Memory(), ar, cfg.Procs)
			if err != nil {
				return nil, err
			}
			if len(cfg.SeedKeys) > 0 {
				if err := l.SeedAscending(cfg.SeedKeys); err != nil {
					return nil, err
				}
			}
			ar.Freeze()
			in := &instance{under: l, snapshot: l.Snapshot, apply: listApply(l)}
			if cfg.Check {
				chk := check.NewUniListChecker(l, simMem(b), cfg.Procs)
				base := listApply(l)
				in.apply = func(e shmem.Ctx, slot int, op Op) Result {
					r := base(e, slot, op)
					chk.EndOp(slot, r.OK)
					return r
				}
				in.finish = func() error { chk.Finish(); return chk.Err() }
			}
			return in, nil
		},
	})

	register(&Descriptor{
		Name: "uniqueue", Pkg: "core/uniqueue", Family: FamilyUni, Model: ModelFIFO,
		Scenario: ScenarioSpec{
			Capacity: 32,
			Scripts: [][]Op{
				{{Code: OpEnqueue, Val: 10}},
				{{Code: OpEnqueue, Val: 20}},
				{{Code: OpDequeue}},
			},
		},
		New: func(b Backend, cfg Config) (Instance, error) {
			ar, err := newArena(b, cfg)
			if err != nil {
				return nil, err
			}
			q, err := uniqueue.New(b.Memory(), ar, cfg.Procs)
			if err != nil {
				return nil, err
			}
			ar.Freeze()
			apply := func(e shmem.Ctx, slot int, op Op) Result {
				switch op.Code {
				case OpEnqueue:
					q.Enqueue(e, op.Val)
					return Result{OK: true}
				case OpDequeue:
					v, ok := q.Dequeue(e)
					return Result{OK: ok, Val: v}
				}
				panic("registry: uniqueue got " + op.Code.String())
			}
			in := &instance{under: q, snapshot: q.Snapshot, apply: apply}
			if cfg.Check {
				// Incremental helping totally orders operations by
				// announce; replay them against the FIFO model.
				model := &fifoModel{}
				var objBuf, modBuf []uint64 // reused across invariant checks
				chk := check.NewSerialChecker(simMem(b), q.Engine().AnnPidAddr(), cfg.Procs,
					func(p int) bool {
						node, opc := q.PeekPar(p)
						if opc == 1 {
							val := simMem(b).Peek(ar.ValAddr(arena.Ref(node)))
							return model.Apply(Op{Code: OpEnqueue, Val: val}).OK
						}
						return model.Apply(Op{Code: OpDequeue}).OK
					},
					func() error {
						objBuf = appendSnap(q)(objBuf[:0])
						modBuf = appendSnap(model)(modBuf[:0])
						return check.SliceEqual(objBuf, modBuf)
					})
				in.apply = func(e shmem.Ctx, slot int, op Op) Result {
					r := apply(e, slot, op)
					chk.EndOp(slot, r.OK)
					return r
				}
				in.finish = func() error { chk.Finish(); return chk.Err() }
			}
			return in, nil
		},
	})

	register(&Descriptor{
		Name: "unistack", Pkg: "core/unistack", Family: FamilyUni, Model: ModelLIFO,
		Scenario: ScenarioSpec{
			Capacity: 32,
			Scripts: [][]Op{
				{{Code: OpPush, Val: 10}},
				{{Code: OpPush, Val: 20}},
				{{Code: OpPop}},
			},
		},
		New: func(b Backend, cfg Config) (Instance, error) {
			ar, err := newArena(b, cfg)
			if err != nil {
				return nil, err
			}
			st, err := unistack.New(b.Memory(), ar, cfg.Procs)
			if err != nil {
				return nil, err
			}
			ar.Freeze()
			apply := func(e shmem.Ctx, slot int, op Op) Result {
				switch op.Code {
				case OpPush:
					st.Push(e, op.Val)
					return Result{OK: true}
				case OpPop:
					v, ok := st.Pop(e)
					return Result{OK: ok, Val: v}
				}
				panic("registry: unistack got " + op.Code.String())
			}
			in := &instance{under: st, snapshot: st.Snapshot, apply: apply}
			if cfg.Check {
				model := &lifoModel{}
				var objBuf, modBuf []uint64 // reused across invariant checks
				chk := check.NewSerialChecker(simMem(b), st.Engine().AnnPidAddr(), cfg.Procs,
					func(p int) bool {
						node, opc := st.PeekPar(p)
						if opc == 1 {
							val := simMem(b).Peek(ar.ValAddr(arena.Ref(node)))
							return model.Apply(Op{Code: OpPush, Val: val}).OK
						}
						return model.Apply(Op{Code: OpPop}).OK
					},
					func() error {
						objBuf = appendSnap(st)(objBuf[:0])
						modBuf = appendSnap(model)(modBuf[:0])
						return check.SliceEqual(objBuf, modBuf)
					})
				in.apply = func(e shmem.Ctx, slot int, op Op) Result {
					r := apply(e, slot, op)
					chk.EndOp(slot, r.OK)
					return r
				}
				in.finish = func() error { chk.Finish(); return chk.Err() }
			}
			return in, nil
		},
	})

	register(&Descriptor{
		Name: "unihash", Pkg: "core/unihash", Family: FamilyUni, Model: ModelSorted,
		Scenario: ScenarioSpec{
			Capacity: 64, Buckets: 4, SeedKeys: []uint64{40, 41},
			Scripts: [][]Op{
				{{Code: OpInsert, Key: 10, Val: 1}},
				{{Code: OpInsert, Key: 20, Val: 2}},
				{{Code: OpDelete, Key: 40}},
			},
		},
		New: func(b Backend, cfg Config) (Instance, error) {
			ar, err := newArena(b, cfg)
			if err != nil {
				return nil, err
			}
			tb, err := unihash.New(b.Memory(), ar, cfg.Procs, cfg.Buckets)
			if err != nil {
				return nil, err
			}
			if len(cfg.SeedKeys) > 0 {
				if err := tb.SeedKeys(cfg.SeedKeys); err != nil {
					return nil, err
				}
			}
			ar.Freeze()
			in := &instance{under: tb, snapshot: tb.Snapshot, apply: listApply(tb)}
			if cfg.Check {
				model := Lookup0("unihash").NewModel(cfg)
				var objBuf, modBuf []uint64 // reused across invariant checks
				chk := check.NewSerialChecker(simMem(b), tb.Engine().AnnPidAddr(), cfg.Procs,
					func(p int) bool {
						_, key, opc := tb.PeekPar(p)
						switch opc {
						case 1:
							return model.Apply(Op{Code: OpInsert, Key: key}).OK
						case 2:
							return model.Apply(Op{Code: OpDelete, Key: key}).OK
						default:
							return model.Apply(Op{Code: OpSearch, Key: key}).OK
						}
					},
					func() error {
						objBuf = appendSnap(tb)(objBuf[:0])
						modBuf = appendSnap(model)(modBuf[:0])
						return check.SliceEqual(objBuf, modBuf)
					})
				base := listApply(tb)
				in.apply = func(e shmem.Ctx, slot int, op Op) Result {
					r := base(e, slot, op)
					chk.EndOp(slot, r.OK)
					return r
				}
				in.finish = func() error { chk.Finish(); return chk.Err() }
			}
			return in, nil
		},
	})

	register(&Descriptor{
		Name: "unimwcas", Pkg: "core/unimwcas", Family: FamilyUni, Model: ModelWords,
		Scenario: ScenarioSpec{
			Words: 3, Width: 4,
			Scripts: [][]Op{
				{{Code: OpMWCAS, Words: []int{0, 1, 2}, Delta: 1}},
				{{Code: OpMWCAS, Words: []int{0, 1}, Delta: 2}},
				{{Code: OpMWCAS, Words: []int{2}, Delta: 3}},
			},
		},
		New: func(b Backend, cfg Config) (Instance, error) {
			obj, err := unimwcas.New(b.Memory(), cfg.Procs, cfg.Width)
			if err != nil {
				return nil, err
			}
			words, err := allocWords(b.Memory(), cfg.Words)
			if err != nil {
				return nil, err
			}
			for i, w := range words {
				var v uint64
				if i < len(cfg.Initial) {
					v = cfg.Initial[i]
				}
				if v > uint64(^uint32(0)) {
					return nil, fmt.Errorf("registry: initial value %#x exceeds the uniprocessor MWCAS's 32-bit value field", v)
				}
				obj.InitWord(w, uint32(v))
			}
			var chk *check.MWCASChecker
			if cfg.Check {
				chk = check.NewMWCASChecker(obj, simMem(b), words)
			}
			in := &instance{under: obj, words: words}
			in.snapshot = func() []uint64 {
				out := make([]uint64, len(words))
				for i, w := range words {
					out[i] = uint64(unimwcas.Unpack(b.Memory().Peek(w)).Val)
				}
				return out
			}
			// Per-slot scratch, reused across applies: procs yield inside
			// MWCAS, so another slot's apply may interleave mid-operation —
			// the buffers must not be shared across slots.
			type mwcasScratch struct {
				addrs      []shmem.Addr
				olds, news []uint32
			}
			scratch := make([]mwcasScratch, cfg.Procs)
			in.apply = func(e shmem.Ctx, slot int, op Op) Result {
				if op.Code != OpMWCAS {
					panic("registry: unimwcas got " + op.Code.String())
				}
				sc := &scratch[slot]
				if cap(sc.addrs) < len(op.Words) {
					sc.addrs = make([]shmem.Addr, len(op.Words))
					sc.olds = make([]uint32, len(op.Words))
					sc.news = make([]uint32, len(op.Words))
				}
				addrs := sc.addrs[:len(op.Words)]
				olds := sc.olds[:len(op.Words)]
				news := sc.news[:len(op.Words)]
				for i, wi := range op.Words {
					addrs[i] = words[wi]
					if chk != nil {
						rw := chk.BeginRead(addrs[i])
						olds[i] = obj.Read(e, addrs[i])
						chk.EndRead(rw, olds[i])
					} else {
						olds[i] = obj.Read(e, addrs[i])
					}
					news[i] = olds[i] + uint32(op.Delta)
				}
				if chk != nil {
					chk.BeginOp(slot, addrs, olds, news)
				}
				ok := obj.MWCAS(e, addrs, olds, news)
				if chk != nil {
					chk.EndOp(slot, ok)
				}
				return Result{OK: ok, Val: uint64(olds[0])}
			}
			if chk != nil {
				in.finish = chk.Err
			}
			return in, nil
		},
	})

	register(&Descriptor{
		Name: "multilist", Pkg: "core/multilist", Family: FamilyMulti, Model: ModelSorted,
		UniPeer: "unilist",
		Scenario: ScenarioSpec{
			Capacity: 64, SeedKeys: []uint64{5, 50}, Stride: 1,
			Scripts: [][]Op{
				{{Code: OpInsert, Key: 10, Val: 1}, {Code: OpInsert, Key: 20, Val: 2}},
				{{Code: OpInsert, Key: 15, Val: 3}, {Code: OpInsert, Key: 25, Val: 4}},
			},
		},
		New: func(b Backend, cfg Config) (Instance, error) {
			ar, err := newArena(b, cfg)
			if err != nil {
				return nil, err
			}
			stride := cfg.Stride
			if stride == 0 {
				stride = 100
			}
			l, err := multilist.New(b.Memory(), ar, multilist.Config{
				Processors: cfg.Processors, Procs: cfg.Procs, CC: cfg.CC,
				Mode: cfg.Mode, Stride: stride, OneRound: cfg.OneRound,
			})
			if err != nil {
				return nil, err
			}
			if len(cfg.SeedKeys) > 0 {
				if err := l.SeedAscending(cfg.SeedKeys); err != nil {
					return nil, err
				}
			}
			ar.Freeze()
			in := &instance{under: l, snapshot: l.Snapshot, apply: listApply(l)}
			if cfg.Check {
				in.apply, in.finish = multiListChecked(l, check.NewMultiListChecker(l, simMem(b)))
			}
			return in, nil
		},
	})

	register(&Descriptor{
		Name: "multiqueue", Pkg: "core/multiqueue", Family: FamilyMulti, Model: ModelFIFO,
		UniPeer: "uniqueue",
		Scenario: ScenarioSpec{
			Capacity: 64,
			Scripts: [][]Op{
				{{Code: OpEnqueue, Val: 10}, {Code: OpEnqueue, Val: 20}},
				{{Code: OpDequeue}, {Code: OpDequeue}},
			},
		},
		New: func(b Backend, cfg Config) (Instance, error) {
			ar, err := newArena(b, cfg)
			if err != nil {
				return nil, err
			}
			q, err := multiqueue.New(b.Memory(), ar, multiqueue.Config{
				Processors: cfg.Processors, Procs: cfg.Procs, CC: cfg.CC,
				Mode: cfg.Mode, OneRound: cfg.OneRound,
			})
			if err != nil {
				return nil, err
			}
			ar.Freeze()
			var chk *check.FIFOChecker
			if cfg.Check {
				chk = check.NewFIFOChecker(q, simMem(b))
			}
			in := &instance{under: q, snapshot: q.Snapshot}
			in.apply = func(e shmem.Ctx, slot int, op Op) Result {
				switch op.Code {
				case OpEnqueue:
					if chk != nil {
						chk.BeginEnq(slot, op.Val)
					}
					q.Enqueue(e, op.Val)
					if chk != nil {
						chk.EndEnq(slot)
					}
					return Result{OK: true}
				case OpDequeue:
					if chk != nil {
						chk.BeginDeq(slot)
					}
					v, ok := q.Dequeue(e)
					if chk != nil {
						chk.EndDeq(slot, v, ok)
					}
					return Result{OK: ok, Val: v}
				}
				panic("registry: multiqueue got " + op.Code.String())
			}
			if chk != nil {
				in.finish = func() error { chk.Finish(); return chk.Err() }
			}
			return in, nil
		},
	})

	register(&Descriptor{
		Name: "multistack", Pkg: "core/multistack", Family: FamilyMulti, Model: ModelLIFO,
		UniPeer: "unistack",
		Scenario: ScenarioSpec{
			Capacity: 64,
			Scripts: [][]Op{
				{{Code: OpPush, Val: 10}, {Code: OpPush, Val: 20}},
				{{Code: OpPop}, {Code: OpPop}},
			},
		},
		New: func(b Backend, cfg Config) (Instance, error) {
			ar, err := newArena(b, cfg)
			if err != nil {
				return nil, err
			}
			st, err := multistack.New(b.Memory(), ar, multistack.Config{
				Processors: cfg.Processors, Procs: cfg.Procs, CC: cfg.CC,
				Mode: cfg.Mode, OneRound: cfg.OneRound,
			})
			if err != nil {
				return nil, err
			}
			ar.Freeze()
			var chk *check.LIFOChecker
			if cfg.Check {
				chk = check.NewLIFOChecker(st, simMem(b))
			}
			in := &instance{under: st, snapshot: st.Snapshot}
			in.apply = func(e shmem.Ctx, slot int, op Op) Result {
				switch op.Code {
				case OpPush:
					if chk != nil {
						chk.BeginPush(slot, op.Val)
					}
					st.Push(e, op.Val)
					if chk != nil {
						chk.EndPush(slot)
					}
					return Result{OK: true}
				case OpPop:
					if chk != nil {
						chk.BeginPop(slot)
					}
					v, ok := st.Pop(e)
					if chk != nil {
						chk.EndPop(slot, v, ok)
					}
					return Result{OK: ok, Val: v}
				}
				panic("registry: multistack got " + op.Code.String())
			}
			if chk != nil {
				in.finish = func() error { chk.Finish(); return chk.Err() }
			}
			return in, nil
		},
	})

	register(&Descriptor{
		Name: "multihash", Pkg: "core/multihash", Family: FamilyMulti, Model: ModelSorted,
		UniPeer: "unihash",
		Scenario: ScenarioSpec{
			Capacity: 64, Buckets: 4, SeedKeys: []uint64{40, 41},
			Scripts: [][]Op{
				{{Code: OpInsert, Key: 10, Val: 1}, {Code: OpInsert, Key: 20, Val: 2}},
				{{Code: OpDelete, Key: 40}, {Code: OpInsert, Key: 30, Val: 3}},
			},
		},
		New: func(b Backend, cfg Config) (Instance, error) {
			ar, err := newArena(b, cfg)
			if err != nil {
				return nil, err
			}
			tb, err := multihash.New(b.Memory(), ar, multihash.Config{
				Processors: cfg.Processors, Procs: cfg.Procs, Buckets: cfg.Buckets,
				CC: cfg.CC, Mode: cfg.Mode, OneRound: cfg.OneRound,
			})
			if err != nil {
				return nil, err
			}
			if len(cfg.SeedKeys) > 0 {
				if err := tb.SeedKeys(cfg.SeedKeys); err != nil {
					return nil, err
				}
			}
			ar.Freeze()
			in := &instance{under: tb, snapshot: tb.Snapshot, apply: listApply(tb)}
			if cfg.Check {
				in.apply, in.finish = multiListChecked(tb, check.NewMultiListChecker(tb, simMem(b)))
			}
			return in, nil
		},
	})

	register(&Descriptor{
		Name: "multimwcas", Pkg: "core/multimwcas", Family: FamilyMulti, Model: ModelWords,
		UniPeer: "unimwcas",
		Scenario: ScenarioSpec{
			Words: 3, Width: 4,
			Scripts: [][]Op{
				{{Code: OpMWCAS, Words: []int{0, 1}, Delta: 1}, {Code: OpMWCAS, Words: []int{1, 2}, Delta: 1}},
				{{Code: OpMWCAS, Words: []int{0, 2}, Delta: 2}, {Code: OpMWCAS, Words: []int{0, 1}, Delta: 3}},
			},
		},
		New: func(b Backend, cfg Config) (Instance, error) {
			obj, err := multimwcas.New(b.Memory(), multimwcas.Config{
				Processors: cfg.Processors, Procs: cfg.Procs, Width: cfg.Width,
				CC: cfg.CC, Mode: cfg.Mode, OneRound: cfg.OneRound,
			})
			if err != nil {
				return nil, err
			}
			words, err := allocWords(b.Memory(), cfg.Words)
			if err != nil {
				return nil, err
			}
			for i, w := range words {
				var v uint64
				if i < len(cfg.Initial) {
					v = cfg.Initial[i]
				}
				obj.InitWord(w, v)
			}
			var chk *check.MultiMWCASChecker
			if cfg.Check {
				chk = check.NewMultiMWCASChecker(obj, simMem(b), cfg.Procs, words)
			}
			in := &instance{under: obj, words: words}
			in.snapshot = func() []uint64 {
				out := make([]uint64, len(words))
				for i, w := range words {
					out[i] = obj.Val(w)
				}
				return out
			}
			// Per-slot scratch, reused across applies: procs yield inside
			// MWCAS, so another slot's apply may interleave mid-operation —
			// the buffers must not be shared across slots.
			type mwcasScratch struct {
				addrs      []shmem.Addr
				olds, news []uint64
			}
			scratch := make([]mwcasScratch, cfg.Procs)
			in.apply = func(e shmem.Ctx, slot int, op Op) Result {
				if op.Code != OpMWCAS {
					panic("registry: multimwcas got " + op.Code.String())
				}
				sc := &scratch[slot]
				if cap(sc.addrs) < len(op.Words) {
					sc.addrs = make([]shmem.Addr, len(op.Words))
					sc.olds = make([]uint64, len(op.Words))
					sc.news = make([]uint64, len(op.Words))
				}
				addrs := sc.addrs[:len(op.Words)]
				olds := sc.olds[:len(op.Words)]
				news := sc.news[:len(op.Words)]
				for i, wi := range op.Words {
					addrs[i] = words[wi]
					olds[i] = obj.ReadWord(e, addrs[i])
					news[i] = olds[i] + op.Delta
				}
				if chk != nil {
					chk.BeginOp(slot, addrs, olds, news)
				}
				ok := obj.MWCAS(e, addrs, olds, news)
				if chk != nil {
					chk.EndOp(slot, ok)
				}
				return Result{OK: ok, Val: olds[0]}
			}
			if chk != nil {
				in.finish = chk.Err
			}
			return in, nil
		},
	})

	// Baselines. They answer the same op model so the workload harness and
	// report sweeps treat them uniformly; wfcheck's schedule sweeps cover
	// the core objects only (the spin-lock list livelocks by design under
	// priority preemption — that is the paper's motivating failure).
	register(&Descriptor{
		Name: "gclist", Pkg: "baseline/gclist", Family: FamilyBaseline, Model: ModelSorted,
		New: func(b Backend, cfg Config) (Instance, error) {
			ar, err := newArena(b, cfg)
			if err != nil {
				return nil, err
			}
			l, err := gclist.New(b.Memory(), ar, cfg.Procs)
			if err != nil {
				return nil, err
			}
			if len(cfg.SeedKeys) > 0 {
				if err := l.SeedAscending(cfg.SeedKeys); err != nil {
					return nil, err
				}
			}
			ar.Freeze()
			in := &instance{under: l, snapshot: l.Snapshot, apply: listApply(l)}
			if cfg.Check {
				in.apply, in.finish = multiListChecked(l, check.NewMultiListChecker(l, simMem(b)))
			}
			return in, nil
		},
	})

	register(&Descriptor{
		Name: "valois", Pkg: "baseline/valois", Family: FamilyBaseline, Model: ModelSorted,
		New: func(b Backend, cfg Config) (Instance, error) {
			ar, err := newArena(b, cfg)
			if err != nil {
				return nil, err
			}
			l, err := valois.New(b.Memory(), ar, cfg.Procs)
			if err != nil {
				return nil, err
			}
			if len(cfg.SeedKeys) > 0 {
				if err := l.SeedAscending(cfg.SeedKeys); err != nil {
					return nil, err
				}
			}
			ar.Freeze()
			in := &instance{under: l, snapshot: l.Snapshot, apply: listApply(l)}
			if cfg.Check {
				in.apply, in.finish = multiListChecked(l, check.NewMultiListChecker(l, simMem(b)))
			}
			return in, nil
		},
	})

	register(&Descriptor{
		Name: "locklist", Pkg: "baseline/locklist", Family: FamilyBaseline, Model: ModelSorted,
		New: func(b Backend, cfg Config) (Instance, error) {
			ar, err := newArena(b, cfg)
			if err != nil {
				return nil, err
			}
			l, err := locklist.New(b.Memory(), ar)
			if err != nil {
				return nil, err
			}
			if len(cfg.SeedKeys) > 0 {
				if err := l.SeedAscending(cfg.SeedKeys); err != nil {
					return nil, err
				}
			}
			ar.Freeze()
			return &instance{under: l, snapshot: l.Snapshot, apply: listApply(l)}, nil
		},
	})

	register(&Descriptor{
		Name: "herlihy", Pkg: "baseline/herlihy", Family: FamilyBaseline, Model: ModelSorted,
		New: func(b Backend, cfg Config) (Instance, error) {
			if len(cfg.SeedKeys) > 0 {
				return nil, fmt.Errorf("registry: the herlihy universal construction does not support seeding")
			}
			obj, err := herlihy.New(b.Memory(), cfg.Procs, cfg.Capacity, herlihy.SortedSetApply)
			if err != nil {
				return nil, err
			}
			in := &instance{under: obj}
			in.snapshot = func() []uint64 {
				var out []uint64
				for _, v := range obj.PeekState() {
					if v != 0 {
						out = append(out, v)
					}
				}
				sortUint64(out)
				return out
			}
			in.apply = func(e shmem.Ctx, slot int, op Op) Result {
				switch op.Code {
				case OpInsert:
					return Result{OK: obj.Do(e, 1, op.Key) == 1}
				case OpDelete:
					return Result{OK: obj.Do(e, 2, op.Key) == 1}
				case OpSearch:
					return Result{OK: obj.Do(e, 3, op.Key) == 1}
				}
				panic("registry: herlihy got " + op.Code.String())
			}
			return in, nil
		},
	})
}

// Lookup0 is Lookup for callers that know the name is registered.
func Lookup0(name string) *Descriptor {
	d, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return d
}

func allocWords(m shmem.Memory, n int) ([]shmem.Addr, error) {
	if n <= 0 {
		return nil, nil
	}
	base, err := m.Alloc("appwords", n)
	if err != nil {
		return nil, err
	}
	words := make([]shmem.Addr, n)
	for i := range words {
		words[i] = base + shmem.Addr(i)
	}
	return words, nil
}

func sortUint64(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

package registry

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"testing"

	"repro/internal/sched"
)

// TestRegistryCompleteness pins the registry against the filesystem: every
// package under internal/core/ and internal/baseline/ must have exactly one
// descriptor, and every descriptor must point at a package that exists.
// Adding an object without registering it (or registering a phantom) fails
// here, which is what makes "drive everything through the registry" safe.
func TestRegistryCompleteness(t *testing.T) {
	onDisk := map[string]bool{}
	for _, root := range []string{"core", "baseline"} {
		ents, err := os.ReadDir("../" + root)
		if err != nil {
			t.Fatalf("reading internal/%s: %v", root, err)
		}
		for _, ent := range ents {
			if ent.IsDir() {
				onDisk[root+"/"+ent.Name()] = true
			}
		}
	}
	registered := map[string]bool{}
	for _, d := range All() {
		if registered[d.Pkg] {
			t.Errorf("package %s has more than one descriptor", d.Pkg)
		}
		registered[d.Pkg] = true
		if !onDisk[d.Pkg] {
			t.Errorf("descriptor %s names internal/%s, which does not exist", d.Name, d.Pkg)
		}
		if d.New == nil {
			t.Errorf("descriptor %s has no constructor", d.Name)
		}
		if len(d.Scenario.Scripts) == 0 && d.Family != FamilyBaseline {
			t.Errorf("core descriptor %s has no scenario scripts", d.Name)
		}
	}
	for pkg := range onDisk {
		if !registered[pkg] {
			t.Errorf("internal/%s exists but has no descriptor", pkg)
		}
	}
}

// TestNormalizeRejectsBadProcConfig pins the single shared rejection: every
// invalid Processors/Procs combination, on any object, is ErrProcConfig.
func TestNormalizeRejectsBadProcConfig(t *testing.T) {
	s := sched.New(sched.Config{Processors: 2, Seed: 1, MemWords: 1 << 16})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"unilist", Config{Procs: -1}},
		{"multiqueue", Config{Procs: 2, Processors: 3}}, // > sim's 2
		{"multilist", Config{Procs: -4}},
	}
	for _, c := range cases {
		if _, err := Build(s, c.name, c.cfg); !errors.Is(err, ErrProcConfig) {
			t.Errorf("Build(%s, %+v) = %v, want ErrProcConfig", c.name, c.cfg, err)
		}
	}
	// Uniprocessor objects ignore Processors entirely (P is forced to 1),
	// so a uni object is buildable even on a multiprocessor simulation.
	if _, err := Build(s, "uniqueue", Config{Processors: 7}); err != nil {
		t.Errorf("uni object on 2-CPU sim: %v", err)
	}
}

// TestOpsDeterministic pins the generator: same (cfg, seed, slot) yields the
// same ops, different slots yield different streams.
func TestOpsDeterministic(t *testing.T) {
	for _, d := range All() {
		cfg := d.StressConfig(3)
		a := d.Ops(cfg, 7, 1, 20)
		b := d.Ops(cfg, 7, 1, 20)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: generator is not deterministic", d.Name)
		}
		c := d.Ops(cfg, 7, 2, 20)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: slots 1 and 2 generated identical streams", d.Name)
		}
	}
}

// TestModels sanity-checks the sequential specifications the checkers and
// differential tests replay against.
func TestModels(t *testing.T) {
	sorted := Lookup0("unilist").NewModel(Config{})
	if !sorted.Apply(Op{Code: OpInsert, Key: 5}).OK ||
		sorted.Apply(Op{Code: OpInsert, Key: 5}).OK {
		t.Error("sorted: duplicate insert accepted")
	}
	if !sorted.Apply(Op{Code: OpSearch, Key: 5}).OK ||
		!sorted.Apply(Op{Code: OpDelete, Key: 5}).OK ||
		sorted.Apply(Op{Code: OpDelete, Key: 5}).OK {
		t.Error("sorted: search/delete semantics wrong")
	}

	fifo := Lookup0("uniqueue").NewModel(Config{})
	fifo.Apply(Op{Code: OpEnqueue, Val: 1})
	fifo.Apply(Op{Code: OpEnqueue, Val: 2})
	if r := fifo.Apply(Op{Code: OpDequeue}); !r.OK || r.Val != 1 {
		t.Errorf("fifo: dequeue = %+v, want 1", r)
	}

	lifo := Lookup0("unistack").NewModel(Config{})
	lifo.Apply(Op{Code: OpPush, Val: 1})
	lifo.Apply(Op{Code: OpPush, Val: 2})
	if r := lifo.Apply(Op{Code: OpPop}); !r.OK || r.Val != 2 {
		t.Errorf("lifo: pop = %+v, want 2", r)
	}

	words := Lookup0("unimwcas").NewModel(Config{Words: 2, Initial: []uint64{10, 20}})
	if r := words.Apply(Op{Code: OpMWCAS, Words: []int{0, 1}, Delta: 3}); !r.OK || r.Val != 10 {
		t.Errorf("words: mwcas = %+v, want OK with old value 10", r)
	}
	if got := words.Snapshot(); !reflect.DeepEqual(got, []uint64{13, 23}) {
		t.Errorf("words: snapshot = %v, want [13 23]", got)
	}
}

// TestDifferentialMultiVsUni is the Section 4 family claim as a test: each
// multiprocessor object configured with Processors=1, run on a preemption-free
// uniprocessor schedule, must be op-for-op identical to its uniprocessor
// counterpart on the same registry-generated op streams (seeds 1-5). The
// pairing comes from Descriptor.UniPeer, so new multi objects are covered by
// registering one.
func TestDifferentialMultiVsUni(t *testing.T) {
	paired := 0
	for _, d := range All() {
		if d.UniPeer == "" {
			continue
		}
		paired++
		peer := Lookup0(d.UniPeer)
		if peer.Model != d.Model {
			t.Fatalf("%s and %s disagree on ModelKind", d.Name, d.UniPeer)
		}
		for seed := int64(1); seed <= 5; seed++ {
			mres, msnap := runSerialized(t, d, seed)
			ures, usnap := runSerialized(t, peer, seed)
			if !reflect.DeepEqual(mres, ures) {
				t.Errorf("%s vs %s seed %d: results diverge\nmulti: %+v\nuni:   %+v",
					d.Name, d.UniPeer, seed, mres, ures)
			}
			if !reflect.DeepEqual(msnap, usnap) {
				t.Errorf("%s vs %s seed %d: final snapshots diverge: %v vs %v",
					d.Name, d.UniPeer, seed, msnap, usnap)
			}
		}
	}
	if paired != 5 {
		t.Errorf("expected 5 multi/uni pairs, found %d", paired)
	}
}

// runSerialized builds d on a 1-processor simulation and runs three process
// slots released together at time zero: priority order serializes them, so
// there is no mid-operation preemption and the object's behavior is exactly
// its sequential specification.
func runSerialized(t *testing.T, d *Descriptor, seed int64) ([][]Result, []uint64) {
	t.Helper()
	const slots, opsPerSlot = 3, 12
	s := sched.New(sched.Config{Processors: 1, Seed: seed, MemWords: 1 << 16})
	cfg := d.StressConfig(slots)
	cfg.Processors = 1
	inst, err := Build(s, d.Name, cfg)
	if err != nil {
		t.Fatalf("%s: %v", d.Name, err)
	}
	out := make([][]Result, slots)
	for slot := 0; slot < slots; slot++ {
		slot := slot
		ops := d.Ops(cfg, seed, slot, opsPerSlot)
		s.Spawn(sched.JobSpec{
			Name: fmt.Sprintf("p%d", slot), CPU: 0,
			Prio: sched.Priority(slots - slot), Slot: slot, AfterSlices: -1,
			Body: func(e *sched.Env) {
				for _, op := range ops {
					out[slot] = append(out[slot], inst.Apply(e, slot, op))
				}
			},
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("%s seed %d: %v", d.Name, seed, err)
	}
	if err := inst.CheckErr(); err != nil {
		t.Fatalf("%s seed %d: checker: %v", d.Name, seed, err)
	}
	return out, inst.Snapshot()
}

// TestSweepSmoke runs a shallow schedule sweep of every core object — the
// same driver wfcheck uses, at a depth fast enough for the unit-test tier.
func TestSweepSmoke(t *testing.T) {
	for _, name := range CoreNames() {
		d := Lookup0(name)
		n, err := d.Sweep(SweepConfig{Max: 6})
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if n == 0 {
			t.Errorf("%s: sweep explored no schedules", name)
		}
	}
}

// TestBaselineSweepRejected: schedule sweeps are a core-object tool; the
// baselines (whose point is that some of them fail under priority
// preemption) are rejected rather than silently skipped.
func TestBaselineSweepRejected(t *testing.T) {
	if _, err := Lookup0("locklist").Sweep(SweepConfig{Max: 4}); err == nil {
		t.Error("baseline sweep accepted")
	}
}

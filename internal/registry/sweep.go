package registry

// The registry's schedule-exploration driver: one release-point sweep that
// works for every core descriptor, replacing cmd/wfcheck's hand-written
// per-object suites. Uniprocessor objects get the Figure 2 cast (low-priority
// victim, two higher-priority adversaries released at swept slice counts on
// one CPU); multiprocessor objects get one worker per processor plus two
// swept high-priority adversaries. Operations come from the descriptor's
// deterministic generator and every run is linearizability-checked
// (Config.Check).

import (
	"fmt"
	"os"

	"repro/internal/arrival"
	"repro/internal/cover"
	"repro/internal/explore"
	"repro/internal/sched"
	"repro/internal/tracex"
)

// SweepConfig configures one object's release-point sweep.
type SweepConfig struct {
	// Max is the largest release point swept (wfcheck -max).
	Max int64
	// KeepGoing explores past failures and aggregates every failing
	// vector into an explore.Failures error.
	KeepGoing bool
	// Policy names the scheduling discipline every schedule runs under
	// (sched.PolicyNames()); empty means the paper's strict-priority
	// model. The swept release vector is policy-independent — the same
	// vectors are enumerated, only dispatch order changes.
	Policy string
	// Arrival names an arrival trace (arrival.Names()) shaping the BASE
	// workers' releases — the victim on uniprocessor sweeps, both workers
	// on multiprocessor ones. The adversaries always keep the swept
	// release vector (that enumeration is the sweep). Empty keeps the
	// legacy immediate release.
	Arrival string
	// Trace records every run and dumps the first failing schedule's span
	// model to TracePath.
	Trace bool
	// TracePath defaults to "wfcheck_fail.trace.json".
	TracePath string
	// Observe, when set, receives every successfully checked schedule's
	// release vector and behavioral signature (cover.ReportSig of the
	// run's report), in enumeration order — the coverage-accumulation
	// hook. Signing a schedule builds its report, so leave Observe nil
	// when coverage is not wanted.
	Observe func(rel []int64, sig uint64)
}

// sweepOps sizes the generated scripts: victims and workers run three
// operations, adversaries two.
const (
	sweepVictimOps = 3
	sweepAdvOps    = 2
	sweepSeed      = 1
)

// StressConfig sizes a checked instance for schedule stressing: the
// release-point sweeps here and the randomized adversary runs
// (internal/linz/adversary) both build instances from it, so one config
// shape covers every core object and baseline.
func (d *Descriptor) StressConfig(slots int) Config {
	cfg := Config{Procs: slots, Capacity: 48, Buckets: 4, Check: true}
	switch d.Model {
	case ModelSorted:
		// Two seeded keys inside the generator's key range, so deletes
		// and colliding inserts both happen. The herlihy universal
		// construction starts empty (its constructor rejects seeding).
		if d.Name != "herlihy" {
			cfg.SeedKeys = []uint64{5, 9}
		}
	case ModelWords:
		cfg.Words = 3
		cfg.Width = 3
		cfg.Initial = []uint64{12, 22, 8}
	}
	return cfg
}

// exploreConfig is the release-point enumeration Sweep drives, shared
// with SweepSpace so the progress meter's denominator matches exactly.
func exploreConfig(cfg SweepConfig) explore.Config {
	return explore.Config{Adversaries: 2, Max: cfg.Max, Stride: 2, Gap: 8, KeepGoing: cfg.KeepGoing}
}

// SweepSpace returns the number of schedules Sweep would run for cfg
// without executing any (explore.Count over the same enumeration).
func (d *Descriptor) SweepSpace(cfg SweepConfig) (int, error) {
	if d.Family == FamilyBaseline {
		return 0, fmt.Errorf("registry: %s is a baseline; sweeps cover the core objects", d.Name)
	}
	return explore.Count(exploreConfig(cfg))
}

// Sweep explores release-point schedules of the object and checks every one,
// returning the number of schedules explored.
func (d *Descriptor) Sweep(cfg SweepConfig) (int, error) {
	if d.Family == FamilyBaseline {
		return 0, fmt.Errorf("registry: %s is a baseline; sweeps cover the core objects", d.Name)
	}
	pol, err := sched.PolicyByName(cfg.Policy)
	if err != nil {
		return 0, fmt.Errorf("registry: %w", err)
	}
	// The base workers' releases come from the named arrival trace; a nil
	// trace (no -arrival) keeps the legacy immediate release.
	var base []arrival.Release
	if cfg.Arrival != "" {
		trc, err := arrival.ByName(cfg.Arrival)
		if err != nil {
			return 0, fmt.Errorf("registry: %w", err)
		}
		base = trc.Releases(2, sweepSeed)
	}
	// The generated scripts depend only on the descriptor, the stress
	// config, and the slot — not on the release vector — so generate them
	// once for the whole sweep instead of reseeding a generator in every
	// schedule.
	icfg := d.StressConfig(4)
	scripts := make([][]Op, 4)
	for slot := range scripts {
		n := sweepVictimOps
		if (d.Family == FamilyUni && slot >= 1) || (d.Family == FamilyMulti && slot >= 2) {
			n = sweepAdvOps
		}
		scripts[slot] = d.Ops(icfg, sweepSeed, slot, n)
	}
	return explore.Sweep(exploreConfig(cfg),
		func(rel []int64) error { return d.sweepOne(cfg, icfg, pol, base, scripts, rel) })
}

func (d *Descriptor) sweepOne(cfg SweepConfig, icfg Config, pol sched.Policy, base []arrival.Release, scripts [][]Op, rel []int64) error {
	procs := 1
	memWords := 1 << 15
	if d.Family == FamilyMulti {
		procs = 2
		memWords = 1 << 16
	}
	// Sweeps build thousands of short-lived Sims; the pool reuses their
	// memory words and bookkeeping across schedules.
	s := sched.Acquire(sched.Config{Processors: procs, Seed: 1, MemWords: memWords, EnableTrace: cfg.Trace, Policy: pol})
	defer sched.Release(s)
	inst, err := Build(s, d.Name, icfg)
	if err != nil {
		return err
	}
	script := func(slot int) func(e *sched.Env) {
		ops := scripts[slot]
		return func(e *sched.Env) {
			for _, op := range ops {
				inst.Apply(e, slot, op)
			}
		}
	}
	cost := func(slot int) int64 { return int64(len(scripts[slot])) }
	// Base workers release immediately unless an arrival trace reshapes
	// them; the adversaries always carry the swept vector.
	baseRel := func(i int) arrival.Release {
		if i < len(base) {
			return base[i]
		}
		return arrival.Release{AfterSlices: -1}
	}
	if d.Family == FamilyUni {
		b := baseRel(0)
		s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: b.AfterSlices, At: b.At, Cost: cost(0), Body: script(0)})
		s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel[0], Cost: cost(1), Body: script(1)})
		s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel[1], Cost: cost(2), Body: script(2)})
	} else {
		b0, b1 := baseRel(0), baseRel(1)
		s.Spawn(sched.JobSpec{Name: "w0", CPU: 0, Prio: 1, Slot: 0, AfterSlices: b0.AfterSlices, At: b0.At, Cost: cost(0), Body: script(0)})
		s.Spawn(sched.JobSpec{Name: "w1", CPU: 1, Prio: 1, Slot: 1, AfterSlices: b1.AfterSlices, At: b1.At, Cost: cost(1), Body: script(1)})
		s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel[0], Cost: cost(2), Body: script(2)})
		s.Spawn(sched.JobSpec{Name: "adv2", CPU: 1, Prio: 9, Slot: 3, AfterSlices: rel[1], Cost: cost(3), Body: script(3)})
	}
	if err := s.Run(); err != nil {
		return dumpFailure(s, cfg, fmt.Errorf("%s rel=%v: %w", d.Name, rel, err))
	}
	if err := inst.CheckErr(); err != nil {
		return dumpFailure(s, cfg, fmt.Errorf("%s rel=%v: %w", d.Name, rel, err))
	}
	if cfg.Observe != nil {
		rep := s.Report(d.Name)
		// Key the signature by the arrival trace (the policy is already
		// stamped by Report when off-default); empty folds nothing, so
		// default sweeps keep their historical signatures.
		rep.Arrival = cfg.Arrival
		cfg.Observe(rel, cover.ReportSig(rep))
	}
	return nil
}

// dumpFailure, under Trace, writes the failing run's span model and points
// the error at it.
func dumpFailure(s *sched.Sim, cfg SweepConfig, err error) error {
	if !cfg.Trace || err == nil || s.Trace() == nil {
		return err
	}
	b, perr := tracex.Build(s.Trace()).Perfetto()
	if perr != nil {
		return err
	}
	path := cfg.TracePath
	if path == "" {
		path = "wfcheck_fail.trace.json"
	}
	if werr := os.WriteFile(path, b, 0o644); werr != nil {
		return err
	}
	return fmt.Errorf("%w (span trace written to %s)", err, path)
}

package registry

// The registry's schedule-exploration driver: one release-point sweep that
// works for every core descriptor, replacing cmd/wfcheck's hand-written
// per-object suites. Uniprocessor objects get the Figure 2 cast (low-priority
// victim, two higher-priority adversaries released at swept slice counts on
// one CPU); multiprocessor objects get one worker per processor plus two
// swept high-priority adversaries. Operations come from the descriptor's
// deterministic generator and every run is linearizability-checked
// (Config.Check).
//
// The driver is built to amortize: everything a schedule does not depend on
// — op scripts, the policy and arrival trace, the job-spec cast, the body
// closures, and the pooled simulation itself — is constructed once per sweep
// and reused across every schedule (see sweeper). Per schedule only the
// object instance is rebuilt and the release vector patched in, which is
// what lets sweeps run at the simulator core's run-ahead speed.

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/arrival"
	"repro/internal/cover"
	"repro/internal/explore"
	"repro/internal/sched"
	"repro/internal/tracex"
)

// SweepConfig configures one object's release-point sweep.
type SweepConfig struct {
	// Max is the largest release point swept (wfcheck -max).
	Max int64
	// KeepGoing explores past failures and aggregates every failing
	// vector into an explore.Failures error.
	KeepGoing bool
	// Policy names the scheduling discipline every schedule runs under
	// (sched.PolicyNames()); empty means the paper's strict-priority
	// model. The swept release vector is policy-independent — the same
	// vectors are enumerated, only dispatch order changes.
	Policy string
	// Arrival names an arrival trace (arrival.Names()) shaping the BASE
	// workers' releases — the victim on uniprocessor sweeps, both workers
	// on multiprocessor ones. The adversaries always keep the swept
	// release vector (that enumeration is the sweep). Empty keeps the
	// legacy immediate release.
	Arrival string
	// Seed seeds the deterministic op-script generator and the base
	// arrival trace. Zero means 1, the historical value, so default
	// sweeps (and their committed coverage goldens) are unchanged.
	Seed int64
	// Prune enables quiescence-equivalence pruning (explore.Config.Prune):
	// schedules provably identical to an already-checked one are skipped.
	// Off by default; disabled pruning enumerates exactly the same
	// schedules in the same order.
	Prune bool
	// Trace records every run and dumps the first failing schedule's span
	// model to TracePath.
	Trace bool
	// TracePath defaults to "wfcheck_fail.trace.json".
	TracePath string
	// Observe, when set, receives every successfully checked schedule's
	// release vector and behavioral signature, in enumeration order — the
	// coverage-accumulation hook. The signature is computed incrementally
	// from the simulator's own counters (cover.SimSig), not by building a
	// metrics.Report per schedule, so Observe is cheap enough to leave on
	// for full sweeps. The rel slice is reused across calls; copy it if
	// retained.
	Observe func(rel []int64, sig uint64)
}

// sweepOps sizes the generated scripts: victims and workers run three
// operations, adversaries two.
const (
	sweepVictimOps = 3
	sweepAdvOps    = 2
	sweepSeed      = 1
	// sweepGap is the Gap of the swept release enumeration and the window
	// swarm sampling draws the second release offset from.
	sweepGap = 8
)

// StressConfig sizes a checked instance for schedule stressing: the
// release-point sweeps here and the randomized adversary runs
// (internal/linz/adversary) both build instances from it, so one config
// shape covers every core object and baseline.
func (d *Descriptor) StressConfig(slots int) Config {
	cfg := Config{Procs: slots, Capacity: 48, Buckets: 4, Check: true}
	switch d.Model {
	case ModelSorted:
		// Two seeded keys inside the generator's key range, so deletes
		// and colliding inserts both happen. The herlihy universal
		// construction starts empty (its constructor rejects seeding).
		if d.Name != "herlihy" {
			cfg.SeedKeys = []uint64{5, 9}
		}
	case ModelWords:
		cfg.Words = 3
		cfg.Width = 3
		cfg.Initial = []uint64{12, 22, 8}
	}
	return cfg
}

// exploreConfig is the release-point enumeration Sweep drives, shared
// with SweepSpace so the progress meter's denominator matches exactly.
func exploreConfig(cfg SweepConfig) explore.Config {
	return explore.Config{
		Adversaries: 2, Max: cfg.Max, Stride: 2, Gap: sweepGap,
		KeepGoing: cfg.KeepGoing, Prune: cfg.Prune,
	}
}

// SweepSpace returns the number of schedules Sweep would run for cfg
// without executing any (explore.Count over the same enumeration, pruning
// not deducted).
func (d *Descriptor) SweepSpace(cfg SweepConfig) (int, error) {
	if d.Family == FamilyBaseline {
		return 0, fmt.Errorf("registry: %s is a baseline; sweeps cover the core objects", d.Name)
	}
	cfg.Prune = false
	return explore.Count(exploreConfig(cfg))
}

// sweeper carries the per-sweep state shared by every schedule: the pooled
// simulation, the hoisted op scripts, the job-spec cast and the body
// closures. A schedule only rebuilds the object instance and patches the
// adversaries' release points, so per-schedule allocation stays near the
// instance's own footprint (pinned by TestSweepAllocsPerSchedule).
type sweeper struct {
	d    *Descriptor
	cfg  SweepConfig
	icfg Config
	scfg sched.Config
	sim  *sched.Sim
	// inst is the current schedule's instance; the body closures read it
	// through the sweeper so they are built once for the whole sweep.
	inst Instance
	// specs is the cast in spawn order; adv[i] indexes the two specs
	// whose AfterSlices carries the swept vector.
	specs []sched.JobSpec
	adv   [2]int
	// advProc holds the adversaries' procs for the current schedule, for
	// the pruner's quiescent-release question.
	advProc [2]*sched.Proc
}

// newSweeper resolves the policy and arrival trace, generates the op
// scripts, and precomputes the cast. It acquires a pooled simulation; the
// caller must call sw.close.
func (d *Descriptor) newSweeper(cfg SweepConfig) (*sweeper, error) {
	if d.Family == FamilyBaseline {
		return nil, fmt.Errorf("registry: %s is a baseline; sweeps cover the core objects", d.Name)
	}
	pol, err := sched.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = sweepSeed
	}
	// The base workers' releases come from the named arrival trace; a nil
	// trace (no -arrival) keeps the legacy immediate release.
	var base []arrival.Release
	if cfg.Arrival != "" {
		trc, err := arrival.ByName(cfg.Arrival)
		if err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
		base = trc.Releases(2, seed)
	}
	// The generated scripts depend only on the descriptor, the stress
	// config, and the slot — not on the release vector — so generate them
	// once for the whole sweep instead of reseeding a generator in every
	// schedule.
	icfg := d.StressConfig(4)
	scripts := make([][]Op, 4)
	for slot := range scripts {
		n := sweepVictimOps
		if (d.Family == FamilyUni && slot >= 1) || (d.Family == FamilyMulti && slot >= 2) {
			n = sweepAdvOps
		}
		scripts[slot] = d.Ops(icfg, seed, slot, n)
	}
	sw := &sweeper{d: d, cfg: cfg, icfg: icfg}
	body := func(slot int) func(e *sched.Env) {
		ops := scripts[slot]
		return func(e *sched.Env) {
			for _, op := range ops {
				sw.inst.Apply(e, slot, op)
			}
		}
	}
	cost := func(slot int) int64 { return int64(len(scripts[slot])) }
	// Base workers release immediately unless an arrival trace reshapes
	// them; the adversaries always carry the swept vector.
	baseRel := func(i int) arrival.Release {
		if i < len(base) {
			return base[i]
		}
		return arrival.Release{AfterSlices: -1}
	}
	procs, memWords := 1, 1<<15
	if d.Family == FamilyUni {
		b := baseRel(0)
		sw.specs = []sched.JobSpec{
			{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: b.AfterSlices, At: b.At, Cost: cost(0), Body: body(0)},
			{Name: "adv", CPU: 0, Prio: 5, Slot: 1, Cost: cost(1), Body: body(1)},
			{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, Cost: cost(2), Body: body(2)},
		}
		sw.adv = [2]int{1, 2}
	} else {
		procs, memWords = 2, 1<<16
		b0, b1 := baseRel(0), baseRel(1)
		sw.specs = []sched.JobSpec{
			{Name: "w0", CPU: 0, Prio: 1, Slot: 0, AfterSlices: b0.AfterSlices, At: b0.At, Cost: cost(0), Body: body(0)},
			{Name: "w1", CPU: 1, Prio: 1, Slot: 1, AfterSlices: b1.AfterSlices, At: b1.At, Cost: cost(1), Body: body(1)},
			{Name: "adv", CPU: 0, Prio: 9, Slot: 2, Cost: cost(2), Body: body(2)},
			{Name: "adv2", CPU: 1, Prio: 9, Slot: 3, Cost: cost(3), Body: body(3)},
		}
		sw.adv = [2]int{2, 3}
	}
	sw.scfg = sched.Config{
		Processors: procs, Seed: seed, MemWords: memWords,
		EnableTrace: cfg.Trace, Policy: pol,
	}
	// One pooled simulation serves the whole sweep; runOne resets it per
	// schedule, reusing its memory words, procs and bookkeeping.
	sw.sim = sched.Acquire(sw.scfg)
	return sw, nil
}

// close returns the sweeper's simulation to the pool.
func (sw *sweeper) close() { sched.Release(sw.sim) }

// runOne executes and checks one schedule for the given release vector,
// reporting the quiescent-release info the pruner needs.
func (sw *sweeper) runOne(rel []int64) (explore.RunInfo, error) {
	info := explore.RunInfo{QuiescentFrom: len(rel)}
	s := sw.sim.Reset(sw.scfg)
	inst, err := Build(s, sw.d.Name, sw.icfg)
	if err != nil {
		return info, err
	}
	sw.inst = inst
	sw.specs[sw.adv[0]].AfterSlices = rel[0]
	sw.specs[sw.adv[1]].AfterSlices = rel[1]
	for i := range sw.specs {
		p := s.Spawn(sw.specs[i])
		if i == sw.adv[0] {
			sw.advProc[0] = p
		} else if i == sw.adv[1] {
			sw.advProc[1] = p
		}
	}
	if err := s.Run(); err != nil {
		return info, dumpFailure(s, sw.cfg, fmt.Errorf("%s rel=%v: %w", sw.d.Name, rel, err))
	}
	if err := inst.CheckErr(); err != nil {
		return info, dumpFailure(s, sw.cfg, fmt.Errorf("%s rel=%v: %w", sw.d.Name, rel, err))
	}
	for i, p := range sw.advProc {
		if p.QuiescentRelease() {
			info.QuiescentFrom = i
			break
		}
	}
	if sw.cfg.Observe != nil {
		// Keyed by the arrival trace; the policy is folded by SimSig
		// itself (empty on the default, preserving historical
		// signatures), exactly as ReportSig does on a report.
		sw.cfg.Observe(rel, cover.SimSig(s, sw.d.Name, sw.cfg.Arrival))
	}
	return info, nil
}

// Sweep explores release-point schedules of the object and checks every one,
// returning the number of schedules executed.
func (d *Descriptor) Sweep(cfg SweepConfig) (int, error) {
	info, err := d.SweepStats(cfg)
	return info.Explored, err
}

// SweepStats is Sweep reporting both executed and pruned schedule counts
// (the latter nonzero only under cfg.Prune).
func (d *Descriptor) SweepStats(cfg SweepConfig) (explore.SweepInfo, error) {
	sw, err := d.newSweeper(cfg)
	if err != nil {
		return explore.SweepInfo{}, err
	}
	defer sw.close()
	return explore.SweepPruned(exploreConfig(cfg), sw.runOne)
}

// SwarmConfig configures one object's stratum of a swarm run: Schedules
// release vectors sampled uniformly from the sweep's (release, gap) space
// under one (policy, arrival) pair. Everything is derived deterministically
// from Seed, so a stratum's outcome — failures, coverage signatures, counts
// — is a pure function of its config; the swarm driver (cmd/wfcheck
// -swarm) exploits that to merge per-stratum outputs byte-identically at
// any parallelism.
type SwarmConfig struct {
	// Schedules is the number of sampled schedules to run.
	Schedules int
	// Seed drives the release-vector sampler and the op generator.
	Seed int64
	// Max bounds the first release point, as SweepConfig.Max.
	Max int64
	// Policy and Arrival name the stratum's discipline and arrival trace.
	Policy  string
	Arrival string
	// MaxFailures bounds collected failures (default
	// explore.DefaultMaxFailures); the stratum keeps sampling past
	// failures regardless, so counts stay budget-exact.
	MaxFailures int
	// Observe is the coverage hook, as SweepConfig.Observe.
	Observe func(rel []int64, sig uint64)
}

// Swarm runs one swarm stratum: cfg.Schedules release vectors sampled from
// the sweep space, each checked. It returns the number of schedules run and
// an explore.Failures error when any failed.
func (d *Descriptor) Swarm(cfg SwarmConfig) (int, error) {
	if cfg.Schedules < 1 {
		return 0, nil
	}
	if cfg.Max < 2 {
		return 0, fmt.Errorf("registry: swarm Max must be at least 2")
	}
	maxFail := cfg.MaxFailures
	if maxFail < 1 {
		maxFail = explore.DefaultMaxFailures
	}
	sw, err := d.newSweeper(SweepConfig{
		Max: cfg.Max, Policy: cfg.Policy, Arrival: cfg.Arrival,
		Seed: cfg.Seed, Observe: cfg.Observe,
	})
	if err != nil {
		return 0, err
	}
	defer sw.close()
	// The sampler must not share state with anything schedule-dependent:
	// vector i is the same for a given (object, policy, arrival, seed)
	// no matter what the schedules before it did.
	rng := rand.New(rand.NewSource(cfg.Seed))
	rel := make([]int64, 2)
	var failures explore.Failures
	for i := 0; i < cfg.Schedules; i++ {
		rel[0] = rng.Int63n(cfg.Max)
		rel[1] = rel[0] + 1 + rng.Int63n(sweepGap)
		if _, err := sw.runOne(rel); err != nil {
			if len(failures) < maxFail {
				failures = append(failures, explore.Failure{
					Vector: append([]int64(nil), rel...), Err: err,
				})
			}
		}
	}
	if len(failures) > 0 {
		return cfg.Schedules, failures
	}
	return cfg.Schedules, nil
}

// dumpFailure, under Trace, writes the failing run's span model and points
// the error at it.
func dumpFailure(s *sched.Sim, cfg SweepConfig, err error) error {
	if !cfg.Trace || err == nil || s.Trace() == nil {
		return err
	}
	b, perr := tracex.Build(s.Trace()).Perfetto()
	if perr != nil {
		return err
	}
	path := cfg.TracePath
	if path == "" {
		path = "wfcheck_fail.trace.json"
	}
	if werr := os.WriteFile(path, b, 0o644); werr != nil {
		return err
	}
	return fmt.Errorf("%w (span trace written to %s)", err, path)
}

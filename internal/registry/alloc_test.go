package registry

import (
	"testing"

	"repro/internal/explore"
)

// sweepAllocsCap bounds the allocations one swept schedule may perform
// (instance Build + checker state; the sweeper itself must contribute
// nothing per schedule). The burn-down that introduced the sweeper brought
// the real figures to 19–87 allocs/schedule (object-dependent; unimwcas's
// universal-construction Build is the ceiling) from several hundred; the
// cap has headroom for noise but fails long before the old per-schedule
// construction pattern — a metrics.Report, op scripts, or a fresh Sim per
// schedule — can sneak back in.
const sweepAllocsCap = 100

// TestSweepAllocsPerSchedule pins the per-schedule allocation count of the
// sweep driver for every core object, in both scheduler modes: op scripts,
// job specs, body closures, signature computation and the pooled Sim are
// all per-sweep costs, so a schedule pays only for its object instance.
func TestSweepAllocsPerSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is exact but slow across all objects")
	}
	vecs, err := explore.Vectors(exploreConfig(SweepConfig{Max: 16}))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range CoreNames() {
		t.Run(name, func(t *testing.T) {
			d := Lookup0(name)
			cfg := SweepConfig{Max: 16, Observe: func(rel []int64, sig uint64) {}}
			sw, err := d.newSweeper(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer sw.close()
			i := 0
			avg := testing.AllocsPerRun(len(vecs)*2, func() {
				if _, err := sw.runOne(vecs[i%len(vecs)]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			t.Logf("%s: %.1f allocs/schedule", name, avg)
			if avg > sweepAllocsCap {
				t.Errorf("%s: %.1f allocs per swept schedule, cap %d — per-schedule work crept back into the sweep loop",
					name, avg, sweepAllocsCap)
			}
		})
	}
}

package registry

// The native-backend run harness: one function that builds any registered
// object on real hardware (internal/native) and drives it with real
// goroutines, so the race stress suite, the off-simulator differential
// tests and cmd/wfbench's native experiment all share one spawn/join
// protocol instead of three.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/native"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// NativeRun parameterizes one native execution of a descriptor.
type NativeRun struct {
	// Procs is the number of process goroutines; Ops the operations each
	// one performs, drawn from the descriptor's deterministic generator
	// with Seed.
	Procs, Ops int
	Seed       int64
	// Shards overrides the shard count for the multiprocessor family
	// (default GOMAXPROCS). The uniprocessor family always runs on one
	// shard; the baselines always run free.
	Shards int
	// Cfg sizes the instance. The harness fills Procs and, when zero,
	// a Capacity large enough that no process exhausts its node pool
	// (arena exhaustion panics by design).
	Cfg Config
	// Wrap optionally wraps the built instance before the run (the linz
	// history recorder). The wrapper must be safe for concurrent Apply.
	Wrap func(Instance) Instance
	// Obs enables the native metrics layer (per-goroutine counter blocks
	// and latency histograms, aggregated into NativeResult.Report);
	// Recorder enables the flight recorder (per-goroutine ring buffers
	// drained into NativeResult.TraceLog); RingCap overrides the
	// per-goroutine ring capacity (default native.DefaultRingCap). Both
	// are off by default: an unobserved run pays nothing.
	Obs      bool
	Recorder bool
	RingCap  int
}

// NativeResult is what one native run observed.
type NativeResult struct {
	// Inst is the (unwrapped) instance; quiescent after the join, so
	// Snapshot and CheckErr are safe.
	Inst Instance
	// World is the finished execution (help counters).
	World *native.World
	// Results holds each process's per-op outcomes, index-aligned with
	// the generator's op stream.
	Results [][]Result
	// Elapsed is the wall-clock spawn-to-join time; Counts the summed
	// memory-operation tallies of all processes.
	Elapsed time.Duration
	Counts  metrics.OpCounts
	// PerProc holds each process's own tally.
	PerProc []metrics.OpCounts
	// Report is the run's aggregated metrics.Report (nil unless
	// NativeRun.Obs): the same shape the simulator produces, with
	// Granularity "native", wall-clock nanoseconds in the virtual-time
	// fields, and the native-only histogram/depth/retry fields set.
	Report *metrics.Report
	// TraceLog is the drained flight recording (nil unless
	// NativeRun.Recorder); DroppedEvents counts ring overwrites.
	TraceLog      *trace.Log
	DroppedEvents uint64
}

// OpsDone returns the total operations applied.
func (r *NativeResult) OpsDone() int {
	n := 0
	for _, rs := range r.Results {
		n += len(rs)
	}
	return n
}

// nativeLayout maps a descriptor's family onto a world and a per-process
// (cpu, priority) assignment:
//
//   - uni: one shard, priorities slot%8 — ties interleave at operation
//     boundaries, strict inequalities preempt mid-operation, which is the
//     paper's uniprocessor model and exercises incremental helping;
//   - multi: Shards priority-disciplined shards, processes dealt
//     round-robin with distinct priorities within each shard (Figures 6-7:
//     one announce ring, P processors);
//   - baseline: free-running goroutines — the anything-goes scheduling the
//     lock-free and lock-based baselines are designed for.
func nativeLayout(d *Descriptor, mem *native.Mem, shards int) (*native.World, func(slot int) (cpu int, prio shmem.Priority)) {
	switch d.Family {
	case FamilyUni:
		w := native.NewWorld(mem, 1)
		return w, func(slot int) (int, shmem.Priority) { return 0, shmem.Priority(slot % 8) }
	case FamilyMulti:
		w := native.NewWorld(mem, shards)
		return w, func(slot int) (int, shmem.Priority) {
			return slot % shards, shmem.Priority(slot / shards)
		}
	default:
		w := native.NewFreeWorld(mem)
		return w, func(slot int) (int, shmem.Priority) { return 0, 0 }
	}
}

// RunNative builds the object on a fresh native world and drives it to
// quiescence: Procs goroutines, each applying its generated op stream with
// one Begin/End shard window per operation.
func (d *Descriptor) RunNative(r NativeRun) (*NativeResult, error) {
	if r.Procs <= 0 || r.Ops < 0 {
		return nil, fmt.Errorf("registry: native run needs Procs >= 1 and Ops >= 0 (got %d, %d)", r.Procs, r.Ops)
	}
	shards := r.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	cfg := r.Cfg
	cfg.Procs = r.Procs
	if cfg.Capacity == 0 {
		// Worst case every op of every process allocates a node and frees
		// go to the freeing slot's pool, so size per-slot pools to the
		// full op budget plus the seeds.
		cfg.Capacity = r.Procs*(r.Ops+4) + 2*len(cfg.SeedKeys) + 8
	}
	mem := native.NewMem(1<<15 + cfg.Capacity*8 + r.Procs*64)
	w, place := nativeLayout(d, mem, shards)
	if r.Obs || r.Recorder {
		// Before BuildOn/NewProc: procs created earlier collect nothing.
		w.EnableObs(native.ObsConfig{Metrics: r.Obs, Recorder: r.Recorder, RingCap: r.RingCap})
	}
	inst, err := BuildOn(NativeBackend(w), d.Name, cfg)
	if err != nil {
		return nil, err
	}
	driven := inst
	if r.Wrap != nil {
		driven = r.Wrap(inst)
	}
	procs := make([]*native.Proc, r.Procs)
	for i := range procs {
		cpu, prio := place(i)
		procs[i] = w.NewProc(i, cpu, prio)
	}
	res := &NativeResult{Inst: inst, World: w, Results: make([][]Result, r.Procs)}
	var wg sync.WaitGroup
	start := time.Now()
	for i := range procs {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			p := procs[slot]
			ops := d.Ops(cfg, r.Seed, slot, r.Ops)
			out := make([]Result, len(ops))
			for j, op := range ops {
				p.Begin()
				out[j] = driven.Apply(p, slot, op)
				p.End()
			}
			res.Results[slot] = out
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.PerProc = make([]metrics.OpCounts, r.Procs)
	for i, p := range procs {
		res.PerProc[i] = p.Counts
		res.Counts.Add(p.Counts)
	}
	if r.Obs {
		res.Report = buildNativeReport(d, w, procs, r.Seed, res)
	}
	if r.Recorder {
		res.TraceLog = w.DrainTrace()
		res.DroppedEvents = w.DroppedEvents()
	}
	return res, nil
}

// buildNativeReport aggregates the per-goroutine observability blocks into
// the simulator's report shape, so AssertWaitFree and the BENCH JSON
// consumers read native runs through the same fields. Mapping:
// Granularity is "native"; every *VT field carries wall-clock nanoseconds;
// Slices/Dispatches count shard-runner tenures; OpTime digests the per-op
// latency histogram (Begin→End, shard wait included — the response-time
// figure the "practically wait-free" question asks about); Interference
// uses the simulator's rule (own preemptions plus processes on other
// shards). The native-only fields (Latency, OpLatency, MaxPreemptDepth,
// CAS2GuardRetries) are the omitempty extras the simulator never sets.
func buildNativeReport(d *Descriptor, w *native.World, procs []*native.Proc, seed int64, res *NativeResult) *metrics.Report {
	return NativeReport(d.Name, seed, w, procs, res.Elapsed, res.Counts)
}

// NativeReport is the exported form of the aggregation for drivers that
// spawn their own goroutines against a native world (internal/service)
// instead of going through RunNative: same mapping, same report shape.
func NativeReport(object string, seed int64, w *native.World, procs []*native.Proc, elapsed time.Duration, counts metrics.OpCounts) *metrics.Report {
	rep := &metrics.Report{
		Object:      object,
		Seed:        seed,
		Processors:  w.Processors(),
		Granularity: "native",
		SyncCost:    1,
		ElapsedVT:   elapsed.Nanoseconds(),
		Mem:         counts,
		OpLatency:   &metrics.Hist{},
	}
	for i, p := range procs {
		s := p.Stats()
		pr := metrics.ProcReport{
			ID:               i,
			Name:             fmt.Sprintf("g%d", i),
			CPU:              p.CPU(),
			Prio:             int(p.Prio()),
			Slot:             p.Slot(),
			Mem:              p.Counts,
			HelpGiven:        int(p.HelpGiven),
			HelpReceived:     int(w.HelpReceived(p.Slot())),
			Slices:           s.Dispatches,
			Dispatches:       int(s.Dispatches),
			Preemptions:      int(s.Preemptions),
			OpTime:           s.Latency.Summary(),
			Latency:          s.Latency,
			MaxPreemptDepth:  int(s.MaxPreemptDepth),
			CAS2GuardRetries: s.CAS2GuardRetries,
		}
		pr.Interference = int(s.Preemptions)
		for _, q := range procs {
			if q != p && q.CPU() != p.CPU() {
				pr.Interference++
			}
		}
		rep.Slices += s.Dispatches
		rep.OpLatency.Add(s.Latency)
		rep.CAS2GuardRetries += s.CAS2GuardRetries
		rep.Procs = append(rep.Procs, pr)
	}
	rep.Finalize()
	rep.OpTime = rep.OpLatency.Summary()
	return rep
}

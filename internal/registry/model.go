package registry

import "slices"

// Model is an object's sequential specification: the golden in-memory
// implementation an execution's operation sequence is replayed against.
// The wfcheck sweeps and the differential tests compare concrete objects
// to it op for op, and the black-box checker (internal/linz) searches over
// its states, which is what Fork and Hash exist for.
type Model interface {
	// Apply performs op sequentially and returns the specified outcome.
	Apply(op Op) Result
	// Snapshot returns the canonical state (same convention as
	// Instance.Snapshot).
	Snapshot() []uint64
	// Fork returns an independent copy of the model; applying operations
	// to either side never affects the other (backtracking search).
	Fork() Model
	// Hash returns a canonical hash of the current state: equal states
	// hash equal regardless of how they were reached (memoization).
	Hash() uint64
}

// NewModel returns a fresh sequential model of the descriptor's kind,
// pre-seeded like an instance built with cfg would be.
func (d *Descriptor) NewModel(cfg Config) Model {
	switch d.Model {
	case ModelSorted:
		m := &sortedModel{present: map[uint64]bool{}}
		for _, k := range cfg.SeedKeys {
			m.present[k] = true
		}
		return m
	case ModelFIFO:
		return &fifoModel{}
	case ModelLIFO:
		return &lifoModel{}
	case ModelWords:
		words := make([]uint64, cfg.Words)
		copy(words, cfg.Initial)
		return &wordsModel{words: words}
	}
	panic("registry: no model for descriptor " + d.Name)
}

// mix64 is the SplitMix64 finalizer, used to spread state values before
// they are combined into a hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashSeq hashes an ordered value sequence (queues, stacks, word arrays).
func hashSeq(vals []uint64) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, v := range vals {
		h = (h ^ mix64(v)) * 1099511628211
	}
	return h
}

type sortedModel struct{ present map[uint64]bool }

func (m *sortedModel) Fork() Model {
	c := &sortedModel{present: make(map[uint64]bool, len(m.present))}
	for k := range m.present {
		c.present[k] = true
	}
	return c
}

// Hash combines member hashes with XOR so the result is independent of map
// iteration order.
func (m *sortedModel) Hash() uint64 {
	h := uint64(0x5e7414441f4bc) ^ uint64(len(m.present))
	for k := range m.present {
		h ^= mix64(k + 1)
	}
	return h
}

func (m *sortedModel) Apply(op Op) Result {
	switch op.Code {
	case OpInsert:
		if m.present[op.Key] {
			return Result{OK: false}
		}
		m.present[op.Key] = true
		return Result{OK: true}
	case OpDelete:
		if !m.present[op.Key] {
			return Result{OK: false}
		}
		delete(m.present, op.Key)
		return Result{OK: true}
	case OpSearch:
		return Result{OK: m.present[op.Key]}
	}
	panic("registry: sorted model got " + op.Code.String())
}

func (m *sortedModel) Snapshot() []uint64 { return m.AppendSnapshot(nil) }

// AppendSnapshot appends the sorted key set to dst, letting per-announce
// invariant checks reuse one scratch buffer across a sweep.
func (m *sortedModel) AppendSnapshot(dst []uint64) []uint64 {
	base := len(dst)
	for k := range m.present {
		dst = append(dst, k)
	}
	slices.Sort(dst[base:])
	return dst
}

type fifoModel struct{ q []uint64 }

func (m *fifoModel) Fork() Model { return &fifoModel{q: append([]uint64(nil), m.q...)} }
func (m *fifoModel) Hash() uint64 {
	return 0x1f1f0 ^ hashSeq(m.q)
}

func (m *fifoModel) Apply(op Op) Result {
	switch op.Code {
	case OpEnqueue:
		m.q = append(m.q, op.Val)
		return Result{OK: true}
	case OpDequeue:
		if len(m.q) == 0 {
			return Result{OK: false}
		}
		v := m.q[0]
		m.q = m.q[1:]
		return Result{OK: true, Val: v}
	}
	panic("registry: fifo model got " + op.Code.String())
}

func (m *fifoModel) Snapshot() []uint64 { return m.AppendSnapshot(nil) }

func (m *fifoModel) AppendSnapshot(dst []uint64) []uint64 { return append(dst, m.q...) }

type lifoModel struct{ st []uint64 } // st[0] = top

func (m *lifoModel) Fork() Model { return &lifoModel{st: append([]uint64(nil), m.st...)} }
func (m *lifoModel) Hash() uint64 {
	return 0x11f0 ^ hashSeq(m.st)
}

func (m *lifoModel) Apply(op Op) Result {
	switch op.Code {
	case OpPush:
		m.st = append([]uint64{op.Val}, m.st...)
		return Result{OK: true}
	case OpPop:
		if len(m.st) == 0 {
			return Result{OK: false}
		}
		v := m.st[0]
		m.st = m.st[1:]
		return Result{OK: true, Val: v}
	}
	panic("registry: lifo model got " + op.Code.String())
}

func (m *lifoModel) Snapshot() []uint64 { return m.AppendSnapshot(nil) }

func (m *lifoModel) AppendSnapshot(dst []uint64) []uint64 { return append(dst, m.st...) }

// wordsModel: sequentially, a read-modify-write transaction always
// succeeds.
type wordsModel struct{ words []uint64 }

func (m *wordsModel) Fork() Model { return &wordsModel{words: append([]uint64(nil), m.words...)} }
func (m *wordsModel) Hash() uint64 {
	return 0x3d0 ^ hashSeq(m.words)
}

func (m *wordsModel) Apply(op Op) Result {
	if op.Code != OpMWCAS {
		panic("registry: words model got " + op.Code.String())
	}
	var first uint64
	for i, w := range op.Words {
		if i == 0 {
			first = m.words[w]
		}
		m.words[w] += op.Delta
	}
	return Result{OK: true, Val: first}
}

func (m *wordsModel) Snapshot() []uint64 { return m.AppendSnapshot(nil) }

func (m *wordsModel) AppendSnapshot(dst []uint64) []uint64 { return append(dst, m.words...) }

// appendSnap returns a buffer-reusing snapshot function for any object or
// model, falling back to the allocating Snapshot when AppendSnapshot is
// not implemented.
func appendSnap(s interface{ Snapshot() []uint64 }) func(dst []uint64) []uint64 {
	if sa, ok := s.(interface {
		AppendSnapshot(dst []uint64) []uint64
	}); ok {
		return sa.AppendSnapshot
	}
	return func(dst []uint64) []uint64 { return append(dst, s.Snapshot()...) }
}

package registry

// Tests for the policy/arrival seams in the release-point sweep driver:
// every template sweeps clean, the fcfs+bursty queue sweep is pinned to a
// golden signature stream that parallel execution reproduces byte-for-byte,
// and the reverse-priority stressor demonstrably visits behavioral
// signatures the paper's strict-priority discipline never produces.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arrival"
	"repro/internal/cover"
	"repro/internal/explore"
	"repro/internal/harness"
	"repro/internal/sched"
)

// TestSweepEveryPolicy: each policy template drives a full uniqueue sweep
// with zero violations — wait-freedom checking is policy-agnostic.
func TestSweepEveryPolicy(t *testing.T) {
	d, err := Lookup("uniqueue")
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range sched.PolicyNames() {
		t.Run(pol, func(t *testing.T) {
			n, err := d.Sweep(SweepConfig{Max: 16, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Errorf("sweep explored no schedules")
			}
		})
	}
}

// TestSweepEveryArrival: each arrival template reshapes the base workers of
// a uni and a multi sweep without breaking any schedule.
func TestSweepEveryArrival(t *testing.T) {
	for _, object := range []string{"uniqueue", "multiqueue"} {
		d, err := Lookup(object)
		if err != nil {
			t.Fatal(err)
		}
		for _, arr := range arrival.Names() {
			t.Run(object+"/"+arr, func(t *testing.T) {
				n, err := d.Sweep(SweepConfig{Max: 16, Arrival: arr})
				if err != nil {
					t.Fatal(err)
				}
				if n == 0 {
					t.Errorf("sweep explored no schedules")
				}
			})
		}
	}
}

// fcfsBurstySweepLines runs the fcfs+bursty uniqueue sweep with the given
// worker count, one schedule per line ("rel=[a b] sig=<16 hex>"), in
// enumeration order. Workers>1 exercises the parallel path: the same
// sweepOne cell driver harness.Map'd over explore.Vectors.
func fcfsBurstySweepLines(t *testing.T, workers int) []string {
	t.Helper()
	d, err := Lookup("uniqueue")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Max: 16, Policy: "fcfs", Arrival: "bursty"}
	if workers <= 1 {
		var lines []string
		cfg.Observe = func(rel []int64, sig uint64) {
			lines = append(lines, fmt.Sprintf("rel=%v sig=%016x", rel, sig))
		}
		if _, err := d.Sweep(cfg); err != nil {
			t.Fatal(err)
		}
		return lines
	}
	// Parallel path: enumerate the vectors once, then fan the cells out
	// across workers, each cell running one schedule on its own sweeper.
	// harness.Map returns results in input order, so the line stream must
	// be byte-identical to the serial loop's.
	vecs, err := explore.Vectors(exploreConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	lines, err := harness.Map(len(vecs), harness.Options{Workers: workers}, func(i int) (string, error) {
		var line string
		cell := cfg
		cell.Observe = func(rel []int64, sig uint64) {
			line = fmt.Sprintf("rel=%v sig=%016x", rel, sig)
		}
		sw, err := d.newSweeper(cell)
		if err != nil {
			return "", err
		}
		defer sw.close()
		if _, err := sw.runOne(vecs[i]); err != nil {
			return "", err
		}
		return line, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestFcfsBurstySweepGolden pins the fcfs+bursty queue sweep's signature
// stream to a golden file and requires the 4-worker parallel run to produce
// byte-identical output to the serial loop. Regenerate the golden with
// WF_UPDATE_GOLDEN=1.
func TestFcfsBurstySweepGolden(t *testing.T) {
	serial := strings.Join(fcfsBurstySweepLines(t, 1), "\n") + "\n"
	par := strings.Join(fcfsBurstySweepLines(t, 4), "\n") + "\n"
	if serial != par {
		t.Fatalf("parallel sweep output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
	golden := filepath.Join("testdata", "fcfs_bursty_uniqueue_sweep.golden")
	if os.Getenv("WF_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(serial), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with WF_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if serial != string(want) {
		t.Errorf("fcfs+bursty sweep diverged from golden %s:\n--- got ---\n%s--- want ---\n%s", golden, serial, want)
	}
}

// TestReversePriorityCoverageDivergence: the pathological stressor must
// visit behavioral signatures the default policy cannot. The cast inverts
// the sweep's usual shape — the victim runs at the TOP priority and the
// swept adversaries below it — because under reverse-priority it is
// exactly the lower-priority arrivals that preempt. The default policy
// never lets them, so every mid-operation preemption of the victim here is
// a schedule outside the strict-priority reachable set. Signatures are
// compared with the policy stamp cleared, so only behavior distinguishes
// the sets.
func TestReversePriorityCoverageDivergence(t *testing.T) {
	d, err := Lookup("uniqueue")
	if err != nil {
		t.Fatal(err)
	}
	icfg := d.StressConfig(3)
	scripts := make([][]Op, 3)
	for slot := range scripts {
		n := sweepVictimOps
		if slot >= 1 {
			n = sweepAdvOps
		}
		scripts[slot] = d.Ops(icfg, sweepSeed, slot, n)
	}
	vecs, err := explore.Vectors(explore.Config{Adversaries: 2, Max: 24, Stride: 2, Gap: 8})
	if err != nil {
		t.Fatal(err)
	}
	run := func(polName string, rel []int64) (uint64, int) {
		pol, err := sched.PolicyByName(polName)
		if err != nil {
			t.Fatal(err)
		}
		s := sched.Acquire(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 15, Policy: pol})
		defer sched.Release(s)
		inst, err := Build(s, d.Name, icfg)
		if err != nil {
			t.Fatal(err)
		}
		script := func(slot int) func(e *sched.Env) {
			ops := scripts[slot]
			return func(e *sched.Env) {
				for _, op := range ops {
					inst.Apply(e, slot, op)
				}
			}
		}
		s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 9, Slot: 0, AfterSlices: -1, Cost: int64(len(scripts[0])), Body: script(0)})
		s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel[0], Cost: int64(len(scripts[1])), Body: script(1)})
		s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 1, Slot: 2, AfterSlices: rel[1], Cost: int64(len(scripts[2])), Body: script(2)})
		if err := s.Run(); err != nil {
			t.Fatalf("%s rel=%v: %v", polName, rel, err)
		}
		if err := inst.CheckErr(); err != nil {
			t.Fatalf("%s rel=%v: %v", polName, rel, err)
		}
		var victimPreempted int
		for _, p := range s.Procs() {
			if p.Name() == "victim" {
				victimPreempted = p.Preemptions
			}
		}
		rep := s.Report(d.Name)
		rep.Policy = "" // compare behavior, not the label
		return cover.ReportSig(rep), victimPreempted
	}
	defaultSigs := make(map[uint64]bool)
	for _, rel := range vecs {
		sig, _ := run("", rel)
		defaultSigs[sig] = true
	}
	novel, preempted := 0, 0
	for _, rel := range vecs {
		sig, vp := run("reverse-priority", rel)
		if !defaultSigs[sig] {
			novel++
		}
		preempted += vp
	}
	if preempted == 0 {
		t.Errorf("reverse-priority never preempted the top-priority victim; the stressor is inert")
	}
	if novel == 0 {
		t.Errorf("reverse-priority visited no signature outside the default policy's %d-signature set across %d vectors",
			len(defaultSigs), len(vecs))
	} else {
		t.Logf("reverse-priority: %d/%d vectors produced signatures the default policy never visits (default set: %d sigs)",
			novel, len(vecs), len(defaultSigs))
	}
}

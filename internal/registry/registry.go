// Package registry is the repo's single object-descriptor layer: one
// Descriptor per wait-free object (and per evaluation baseline) carrying
// everything the driver layers need — a constructor over (sim, Config), a
// deterministic operation generator, a sequential model for linearizability
// checking, and the object's named-scenario recipe. internal/scenario,
// internal/workload, cmd/wfbench, cmd/wfcheck and cmd/wftrace all drive
// through it, so adding an object means writing one descriptor, not
// touching five tools.
//
// The paper's Section 4 claim is per-object-family ("queues, stacks, and
// hash tables are just as straightforward to implement as linked lists");
// the registry is that claim made executable: every object answers the same
// surface, and the completeness test pins that every package under
// internal/core/ is registered.
package registry

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sched"
	"repro/internal/shmem"

	"repro/internal/helping"
	"repro/internal/prim"
)

// Family classifies a descriptor by its scheduling model.
type Family int

// The three families.
const (
	// FamilyUni objects are the incremental-helping uniprocessor objects
	// (Figures 3 and 5 and their Section 4 extensions).
	FamilyUni Family = iota + 1
	// FamilyMulti objects are the ring-helping multiprocessor objects
	// (Figures 6 and 7 and their Section 4 extensions).
	FamilyMulti
	// FamilyBaseline objects are the evaluation baselines (lock-free,
	// lock-based, universal construction).
	FamilyBaseline
)

func (f Family) String() string {
	switch f {
	case FamilyUni:
		return "uni"
	case FamilyMulti:
		return "multi"
	case FamilyBaseline:
		return "baseline"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// ModelKind selects the object's abstract sequential specification; the op
// generator and the sequential models key off it.
type ModelKind int

// The model kinds.
const (
	// ModelSorted is a sorted key set (lists, hash tables, sorted-set
	// baselines).
	ModelSorted ModelKind = iota + 1
	// ModelFIFO is a queue.
	ModelFIFO
	// ModelLIFO is a stack.
	ModelLIFO
	// ModelWords is an MWCAS word array driven by read-modify-write
	// increment transactions.
	ModelWords
)

// OpCode identifies one abstract operation.
type OpCode int

// The operation codes. Which codes an object accepts follows from its
// ModelKind.
const (
	OpInsert OpCode = iota + 1
	OpDelete
	OpSearch
	OpEnqueue
	OpDequeue
	OpPush
	OpPop
	// OpMWCAS is a read-modify-write transaction: read the words at
	// Words, MWCAS them to value+Delta each. It fails (OK=false) when a
	// concurrent transaction moved any word between the reads and the
	// MWCAS.
	OpMWCAS
)

func (c OpCode) String() string {
	switch c {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpSearch:
		return "search"
	case OpEnqueue:
		return "enqueue"
	case OpDequeue:
		return "dequeue"
	case OpPush:
		return "push"
	case OpPop:
		return "pop"
	case OpMWCAS:
		return "mwcas"
	}
	return fmt.Sprintf("OpCode(%d)", int(c))
}

// Op is one abstract operation instance.
type Op struct {
	Code OpCode
	// Key and Val parameterize the keyed and value-carrying codes.
	Key, Val uint64
	// Words indexes into the instance's application words (OpMWCAS).
	Words []int
	// Delta is the OpMWCAS increment.
	Delta uint64
}

// Result is the outcome of one operation.
type Result struct {
	// OK is the operation's boolean result (insert/delete/search hit,
	// nonempty dequeue/pop, MWCAS success). Unconditional operations
	// (enqueue, push) always report true.
	OK bool
	// Val is the value observed: the dequeued/popped element, or the
	// first word's pre-transaction value for OpMWCAS.
	Val uint64
}

// List is the op surface shared by the list family — the wait-free lists,
// the hash tables, and the lock-free / lock-based baselines. It is the
// interface internal/workload measures through.
type List interface {
	Insert(e shmem.Ctx, key, val uint64) bool
	Delete(e shmem.Ctx, key uint64) bool
	Search(e shmem.Ctx, key uint64) bool
	Snapshot() []uint64
}

// Backend is the execution substrate a descriptor constructs an instance
// on: the memory words come from Memory(), the helping-ring width bound
// from Processors(). The simulator backend additionally exposes its Sim for
// the white-box checkers (Config.Check); the native backend returns nil
// there, and Build rejects Check off-simulator.
type Backend interface {
	// Memory returns the backend's shared memory (allocation surface).
	Memory() shmem.Memory
	// Processors returns the number of processors (simulator) or shards
	// (native backend) available to the helping ring.
	Processors() int
	// Sim returns the simulation when this backend is the simulator, or
	// nil on any other backend.
	Sim() *sched.Sim
}

// simBackend adapts *sched.Sim to Backend.
type simBackend struct{ sim *sched.Sim }

func (b simBackend) Memory() shmem.Memory { return b.sim.Mem() }
func (b simBackend) Processors() int      { return b.sim.Processors() }
func (b simBackend) Sim() *sched.Sim      { return b.sim }

// SimBackend wraps a simulation as a construction Backend.
func SimBackend(sim *sched.Sim) Backend { return simBackend{sim: sim} }

// Config parameterizes an instance of any registered object; irrelevant
// fields are ignored by objects that don't use them. The zero value gets
// usable defaults from Normalize.
type Config struct {
	// Processors is P, the helping-ring width (multiprocessor family;
	// defaults to the simulation's processor count).
	Processors int
	// Procs is N, the number of process slots that may operate on the
	// object.
	Procs int
	// Capacity is the node arena size (node-based objects).
	Capacity int
	// Buckets is K (hash tables).
	Buckets int
	// Width is B, the per-operation word limit (MWCAS).
	Width int
	// Words is the number of application words to allocate (MWCAS).
	Words int
	// Initial optionally initializes the application words (MWCAS).
	Initial []uint64
	// SeedKeys pre-loads keyed structures (ascending for lists).
	SeedKeys []uint64
	// CC, Mode, Stride, OneRound configure the multiprocessor helping
	// machinery.
	CC       prim.Impl
	Mode     helping.Mode
	Stride   int
	OneRound bool
	// Check arms the object's linearizability checker; Apply then drives
	// it and CheckErr returns its verdict.
	Check bool
}

// ErrProcConfig is the single rejection for invalid processor/process
// combinations, shared by every object and facade constructor.
var ErrProcConfig = errors.New("invalid Processors/Procs configuration")

// Instance is a constructed object answering the registry op model.
type Instance interface {
	// Apply performs one operation as process slot. With Config.Check it
	// also drives the linearizability checker.
	Apply(e shmem.Ctx, slot int, op Op) Result
	// Snapshot returns the canonical quiescent state (sorted keys, queue
	// front-to-back, stack top-down, MWCAS word values).
	Snapshot() []uint64
	// Underlying exposes the concrete object for callers that need the
	// full surface (the facade constructors).
	Underlying() any
	// CheckErr finalizes the armed checker and returns its verdict; it
	// is nil when Config.Check was unset.
	CheckErr() error
}

// WordHolder is implemented by MWCAS instances, whose constructor also
// allocates the application words.
type WordHolder interface {
	AppWords() []shmem.Addr
}

// ScenarioSpec is the object's named-run recipe for internal/scenario and
// cmd/wftrace: small fixed op scripts sized so a human can read the trace.
// Uniprocessor scripts are the Figure 2 cast (victim, two adversaries);
// multiprocessor scripts are one worker per processor.
type ScenarioSpec struct {
	// Capacity, Buckets, Words, Width, Stride and SeedKeys size the
	// instance. Stride is explicit because the scenarios pin the figures'
	// literal checkpoint-every-node traversal, not the measured default.
	Capacity     int
	Buckets      int
	Words, Width int
	Stride       int
	SeedKeys     []uint64
	// Scripts are the per-process op sequences (uni: victim, adv1, adv2;
	// multi: w0, w1).
	Scripts [][]Op
}

// Descriptor describes one registered object.
type Descriptor struct {
	// Name is the registry key (the package basename: "uniqueue").
	Name string
	// Pkg is the package directory under internal/ ("core/uniqueue");
	// the completeness test matches it against the filesystem.
	Pkg string
	// Family is the scheduling family.
	Family Family
	// Model is the abstract sequential specification.
	Model ModelKind
	// UniPeer names the uniprocessor counterpart of a multiprocessor
	// object ("" if none); the differential tests pair objects by it.
	UniPeer string
	// Scenario is the named-run recipe.
	Scenario ScenarioSpec
	// New constructs an instance on the given backend. Callers go through
	// Build/BuildOn, which normalize and validate cfg first.
	New func(b Backend, cfg Config) (Instance, error)
}

var byName = map[string]*Descriptor{}

func register(d *Descriptor) {
	if _, dup := byName[d.Name]; dup {
		panic("registry: duplicate descriptor " + d.Name)
	}
	byName[d.Name] = d
}

// Lookup returns the named descriptor.
func Lookup(name string) (*Descriptor, error) {
	d, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("registry: unknown object %q (have %v)", name, Names())
	}
	return d, nil
}

// Names returns every registered name, sorted.
func Names() []string {
	out := make([]string, 0, len(byName))
	for name := range byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CoreNames returns the registered core objects (uni + multi families),
// sorted.
func CoreNames() []string {
	var out []string
	for name, d := range byName {
		if d.Family != FamilyBaseline {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// All returns every descriptor, sorted by name.
func All() []*Descriptor {
	names := Names()
	out := make([]*Descriptor, len(names))
	for i, n := range names {
		out[i] = byName[n]
	}
	return out
}

// Normalize applies the shared defaults to cfg and validates the
// processor/process combination; every constructor path (registry, facade,
// workload) funnels through it, so an invalid combination is rejected with
// the one ErrProcConfig message everywhere.
func (d *Descriptor) Normalize(b Backend, cfg *Config) error {
	if cfg.Capacity == 0 {
		cfg.Capacity = 1024
	}
	if cfg.Procs == 0 {
		cfg.Procs = 1
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = 16
	}
	if cfg.Width == 0 {
		cfg.Width = 4
	}
	switch d.Family {
	case FamilyUni:
		// Uniprocessor objects have no ring; P is definitionally 1.
		cfg.Processors = 1
	default:
		if cfg.Processors == 0 {
			cfg.Processors = b.Processors()
		}
	}
	if cfg.Procs < 1 || cfg.Processors < 1 ||
		(d.Family == FamilyMulti && cfg.Processors > b.Processors()) {
		return fmt.Errorf("%s: %w: Processors=%d Procs=%d (need Procs >= 1 and 1 <= Processors <= the backend's %d)",
			d.Name, ErrProcConfig, cfg.Processors, cfg.Procs, b.Processors())
	}
	if b.Sim() == nil {
		if cfg.Check {
			return fmt.Errorf("%s: Config.Check drives the white-box checkers, which observe simulated memory; off-simulator use the black-box engine (internal/linz) instead", d.Name)
		}
		// Real hardware has no CCAS instruction (the Figure 8 premise):
		// default to the tagged software construction and refuse the
		// simulator-only atomic one.
		if cfg.CC == nil {
			cfg.CC = prim.Tagged{}
		} else if _, hw := cfg.CC.(prim.Native); hw {
			return fmt.Errorf("%s: prim.Native is the simulator's atomic CCAS; off-simulator use a software construction (prim.Tagged or prim.Delayed)", d.Name)
		}
	}
	return nil
}

// Build normalizes cfg and constructs an instance of the named object
// inside sim.
func Build(sim *sched.Sim, name string, cfg Config) (Instance, error) {
	return BuildOn(SimBackend(sim), name, cfg)
}

// BuildOn normalizes cfg and constructs an instance of the named object on
// an arbitrary backend.
func BuildOn(b Backend, name string, cfg Config) (Instance, error) {
	d, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if err := d.Normalize(b, &cfg); err != nil {
		return nil, err
	}
	return d.New(b, cfg)
}

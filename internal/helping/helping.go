// Package helping implements the paper's multiprocessor helping schemes:
// cyclic helping and priority helping (Sections 1 and 3.1), layered over
// per-processor incremental helping.
//
// The processors form a logical ring. A shared version word V holds the help
// counter: V.cnt is the version number (assumed not to cycle during any
// operation), V.target is the processor currently designated for help, and
// V.needhelp says whether that processor had a pending announced operation
// at the moment the counter advanced. Because the needhelp decision is fixed
// atomically by the CAS that advances the counter, processes can never
// disagree about whether the target should be helped.
//
// With cyclic helping the counter advances around the ring, so an operation
// completes after at most two traversals: one to drain a previously
// announced lower-priority operation on the caller's processor, one to drive
// the caller's own operation — Θ(2·P·T). With priority helping the counter
// always advances to the processor with the highest-priority pending
// operation (an O(P) scan), and announce entries carry the priority of the
// currently-running process on each processor — the priority-inheritance
// analogue the paper describes: a process helping a lower-priority operation
// on its own processor re-publishes its own priority.
//
// The engine is object-agnostic: the multiprocessor MWCAS (Figure 6) and
// linked list (Figure 7) plug in their Help routines and announce actions.
package helping

import (
	"fmt"

	"repro/internal/prim"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Mode selects the counter-advance policy.
type Mode int

const (
	// Cyclic advances the help counter around the logical ring of
	// processors (the paper's default scheme).
	Cyclic Mode = iota + 1
	// Priority advances the help counter to the processor with the
	// highest-priority pending operation.
	Priority
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Cyclic:
		return "cyclic"
	case Priority:
		return "priority"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Version word layout: cnt in the low bits, then target, then needhelp.
const (
	cntBits    = 46
	targetBits = 8

	targetShift   = cntBits
	needhelpShift = cntBits + targetBits

	cntMask    = (uint64(1) << cntBits) - 1
	targetMask = (uint64(1) << targetBits) - 1
)

// MaxProcessors is the largest supported processor count.
const MaxProcessors = 1 << targetBits

// Version is the decoded form of the shared version word V.
type Version struct {
	// Cnt is the version number (V.cnt). It does not cycle during any
	// operation (46 bits).
	Cnt uint64
	// Target is the processor the help counter points to (V.cnt mod P
	// under cyclic helping; the chosen processor under priority helping).
	Target int
	// Needhelp reports whether Target had a pending announced operation
	// when the counter advanced to it.
	Needhelp bool
}

// PackVersion encodes a Version.
func PackVersion(v Version) uint64 {
	w := v.Cnt&cntMask | uint64(v.Target)&targetMask<<targetShift
	if v.Needhelp {
		w |= 1 << needhelpShift
	}
	return w
}

// UnpackVersion decodes a version word.
func UnpackVersion(w uint64) Version {
	return Version{
		Cnt:      w & cntMask,
		Target:   int(w >> targetShift & targetMask),
		Needhelp: w>>needhelpShift&1 == 1,
	}
}

// Config configures an Engine.
type Config struct {
	// Processors is P.
	Processors int
	// Procs is N, the number of algorithm-level process slots.
	Procs int
	// Mode selects cyclic or priority helping.
	Mode Mode
	// CC is the CCAS implementation shared with the object.
	CC prim.Impl
	// Done reports whether an Rv value means "operation complete" (the
	// MWCAS object uses rv >= 2, the list uses rv != 0).
	Done func(rv uint64) bool
	// Help executes one helping step for the operation announced on
	// ver.Target. It must be idempotent under CCAS guards.
	Help func(e shmem.Ctx, ver Version)
	// OnAnnounce publishes the calling process's operation parameters
	// into the object's announce record for the caller's processor
	// (e.g. the list's Ann[mypr].ptr := &First). The engine itself
	// writes the pid and, under priority helping, the priority.
	OnAnnounce func(e shmem.Ctx)
	// OneRound, when set, skips the first helping round. This is the
	// real-time optimization of reference [1]: under a real-time
	// scheduler an operation needs only one traversal of the helping
	// ring. It is only sound when the workload guarantees no pending
	// lower-priority operation can exist on the caller's processor at
	// operation start (e.g. run-to-completion jobs that never begin an
	// operation they cannot finish before relinquishing).
	OneRound bool
}

// Engine carries the shared helping state: the version word V and the
// per-processor announce arrays.
type Engine struct {
	cfg Config
	mem shmem.Memory

	v       shmem.Addr // version word V
	annPid  shmem.Addr // Ann[R].pid (P words)
	annPrio shmem.Addr // Ann[R].prio (P words; priority helping only)
	rv      shmem.Addr // Rv[0..N]; Rv[N] is permanently "done"

	doneRv uint64 // the value stored in Rv[N]
}

// New allocates an engine. doneRv is the Rv value meaning "complete" that is
// permanently stored in Rv[N] (2 for both of the paper's objects).
func New(m shmem.Memory, cfg Config, doneRv uint64) (*Engine, error) {
	if cfg.Processors < 1 || cfg.Processors > MaxProcessors {
		return nil, fmt.Errorf("helping: processor count %d out of range [1,%d]", cfg.Processors, MaxProcessors)
	}
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("helping: process count %d out of range", cfg.Procs)
	}
	if cfg.Mode != Cyclic && cfg.Mode != Priority {
		return nil, fmt.Errorf("helping: invalid mode %v", cfg.Mode)
	}
	if cfg.CC == nil || cfg.Done == nil || cfg.Help == nil || cfg.OnAnnounce == nil {
		return nil, fmt.Errorf("helping: CC, Done, Help and OnAnnounce are required")
	}
	v, err := m.Alloc("V", 1)
	if err != nil {
		return nil, fmt.Errorf("helping: %w", err)
	}
	annPid, err := m.Alloc("AnnPid", cfg.Processors)
	if err != nil {
		return nil, fmt.Errorf("helping: %w", err)
	}
	annPrio, err := m.Alloc("AnnPrio", cfg.Processors)
	if err != nil {
		return nil, fmt.Errorf("helping: %w", err)
	}
	rv, err := m.Alloc("Rv", cfg.Procs+1)
	if err != nil {
		return nil, fmt.Errorf("helping: %w", err)
	}
	g := &Engine{cfg: cfg, mem: m, v: v, annPid: annPid, annPrio: annPrio, rv: rv, doneRv: doneRv}
	m.Poke(v, PackVersion(Version{}))
	for r := 0; r < cfg.Processors; r++ {
		m.Poke(g.annPidAddr(r), uint64(cfg.Procs)) // Ann[R] = N: nothing announced
	}
	cfg.CC.InitWord(m, g.RvAddr(cfg.Procs), doneRv) // Rv[N] is always "done"
	return g, nil
}

// VAddr returns the address of the version word, for the object's CCAS
// calls.
func (g *Engine) VAddr() shmem.Addr { return g.v }

// RvAddr returns the address of Rv[pid].
func (g *Engine) RvAddr(pid int) shmem.Addr { return g.rv + shmem.Addr(pid) }

// AnnPid returns the announced process on processor r (N if none), read
// with simulated time charged.
func (g *Engine) AnnPid(e shmem.Ctx, r int) int {
	return int(e.Load(g.annPidAddr(r)))
}

// PeekRv returns the logical Rv[pid] without charging time (checkers).
func (g *Engine) PeekRv(pid int) uint64 {
	return g.cfg.CC.Logical(g.mem.Peek(g.RvAddr(pid)))
}

// Procs returns N.
func (g *Engine) Procs() int { return g.cfg.Procs }

// Processors returns P.
func (g *Engine) Processors() int { return g.cfg.Processors }

// Mode returns the configured helping mode.
func (g *Engine) Mode() Mode { return g.cfg.Mode }

func (g *Engine) annPidAddr(r int) shmem.Addr  { return g.annPid + shmem.Addr(r) }
func (g *Engine) annPrioAddr(r int) shmem.Addr { return g.annPrio + shmem.Addr(r) }

// DoOp drives the calling process's announced-parameters operation to
// completion: it performs one round of helping to drain any
// previously-announced operation on its processor, announces, then helps
// until its own operation completes (lines 3-15 of Figure 6 / 16-29 of
// Figure 7). The caller must have published its operation parameters and
// reset Rv[p] before calling.
func (g *Engine) DoOp(e shmem.Ctx) {
	mypr := e.CPU()
	p := e.Slot()
	if p >= g.cfg.Procs {
		panic(fmt.Sprintf("helping: slot %d out of range [0,%d)", p, g.cfg.Procs))
	}
	if e.Traced() {
		e.Note("invoke", trace.I("p", int64(p)))
	}
	for i := 0; i < 2; i++ { // line 3
		if i == 0 && g.cfg.OneRound {
			g.announce(e, mypr, p)
			continue
		}
		pid := int(e.Load(g.annPidAddr(mypr))) // line 4
		if pid < g.cfg.Procs {                 // line 5
			if g.cfg.Mode == Priority && i == 0 {
				// Priority inheritance: while helping a
				// lower-priority process on our processor,
				// publish our own priority so helpers
				// elsewhere order us correctly.
				e.Store(g.annPrioAddr(mypr), prioWord(e.Prio()))
			}
			for { // line 6
				ver := UnpackVersion(e.Load(g.v)) // line 7
				if g.cfg.Done(g.cfg.CC.Read(e, g.RvAddr(pid))) &&
					(ver.Target != mypr || !ver.Needhelp) { // line 8
					break
				}
				if ver.Needhelp { // line 9
					if e.Traced() {
						e.Note("help ring", trace.I("target", int64(ver.Target)), trace.I("ver", int64(ver.Cnt)))
					}
					// Observability only (Peek: no simulated time):
					// the helped operation is whatever is announced
					// on the target processor right now. NoteHelp
					// counts it and emits the help causality edge.
					if hp := int(g.mem.Peek(g.annPidAddr(ver.Target))); hp < g.cfg.Procs {
						e.NoteHelp(hp)
					}
					g.cfg.Help(e, ver)
				}
				g.Advance(e, ver) // lines 10-13
			}
		}
		g.announce(e, mypr, p) // line 14
	}
	e.Store(g.annPidAddr(mypr), uint64(g.cfg.Procs)) // line 15
	if e.Traced() {
		e.Note("response", trace.I("p", int64(p)))
	}
}

// announce publishes process p as the pending operation on processor mypr.
func (g *Engine) announce(e shmem.Ctx, mypr, p int) {
	g.cfg.OnAnnounce(e)
	if g.cfg.Mode == Priority {
		e.Store(g.annPrioAddr(mypr), prioWord(e.Prio()))
	}
	e.Store(g.annPidAddr(mypr), uint64(p))
	if e.Traced() {
		e.Note("announce", trace.I("p", int64(p)))
	}
}

// Advance moves the help counter one step (lines 10-13 of Figure 6). Under
// cyclic helping the next target is the next processor on the ring; under
// priority helping it is the processor with the highest-priority pending
// operation. The needhelp bit is fixed atomically by the CAS.
func (g *Engine) Advance(e shmem.Ctx, ver Version) {
	var nextTarget int
	var needhelp bool
	switch g.cfg.Mode {
	case Cyclic:
		nextTarget = (ver.Target + 1) % g.cfg.Processors
		nxthelp := int(e.Load(g.annPidAddr(nextTarget))) // line 10
		needhelp = nxthelp < g.cfg.Procs && !g.cfg.Done(g.cfg.CC.Read(e, g.RvAddr(nxthelp)))
	case Priority:
		// O(P) scan for the highest-priority pending operation.
		best := -1
		var bestPrio uint64
		for r := 0; r < g.cfg.Processors; r++ {
			pid := int(e.Load(g.annPidAddr(r)))
			if pid >= g.cfg.Procs {
				continue
			}
			if g.cfg.Done(g.cfg.CC.Read(e, g.RvAddr(pid))) {
				continue
			}
			prio := e.Load(g.annPrioAddr(r))
			if best < 0 || prio > bestPrio {
				best, bestPrio = r, prio
			}
		}
		if best >= 0 {
			nextTarget, needhelp = best, true
		} else {
			nextTarget, needhelp = (ver.Target+1)%g.cfg.Processors, false
		}
	}
	next := Version{Cnt: (ver.Cnt + 1) & cntMask, Target: nextTarget, Needhelp: needhelp}
	if e.CAS(g.v, PackVersion(ver), PackVersion(next)) { // lines 11-13
		if e.Traced() {
			e.Note("advance ring",
				trace.I("ver", int64(next.Cnt)),
				trace.I("target", int64(next.Target)),
				trace.B("needhelp", next.Needhelp))
		}
	}
	prim.AfterAdvance(g.cfg.CC, e)
}

// prioWord encodes a scheduler priority as an unsigned announce word.
func prioWord(p shmem.Priority) uint64 {
	if p < 0 {
		panic(fmt.Sprintf("helping: negative priority %d not supported under priority helping", p))
	}
	return uint64(p)
}

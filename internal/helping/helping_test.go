package helping_test

import (
	"testing"
	"testing/quick"

	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/sched"
	"repro/internal/shmem"
)

func TestVersionPackRoundTrip(t *testing.T) {
	f := func(cnt uint64, target uint8, needhelp bool) bool {
		v := helping.Version{
			Cnt:      cnt & ((1 << 46) - 1),
			Target:   int(target),
			Needhelp: needhelp,
		}
		return helping.UnpackVersion(helping.PackVersion(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if helping.Cyclic.String() != "cyclic" || helping.Priority.String() != "priority" {
		t.Error("mode names wrong")
	}
	if helping.Mode(99).String() != "mode(99)" {
		t.Error("unknown mode formatting wrong")
	}
}

// counterObject is a minimal helping-engine client: a one-word MWCAS-style
// compare-and-add. Each operation fixes (old, new) in its Par record before
// announcing — the paper's discipline that makes helpers idempotent: every
// data CCAS writes values fixed per operation, never freshly re-read ones.
type counterObject struct {
	eng     *helping.Engine
	cc      prim.Impl
	counter shmem.Addr
	par     shmem.Addr // (old, new) per slot, N+1 rows
}

func newCounterObject(t *testing.T, m *shmem.Mem, p, n int, mode helping.Mode) *counterObject {
	t.Helper()
	o := &counterObject{cc: prim.Native{}}
	o.counter = m.MustAlloc("counter", 1)
	o.par = m.MustAlloc("cpar", 2*(n+1))
	eng, err := helping.New(m, helping.Config{
		Processors: p,
		Procs:      n,
		Mode:       mode,
		CC:         o.cc,
		Done:       func(rv uint64) bool { return rv >= 2 },
		Help: func(e shmem.Ctx, ver helping.Version) {
			vw := helping.PackVersion(ver)
			pid := o.eng.AnnPid(e, ver.Target)
			if o.cc.Read(e, o.eng.RvAddr(pid)) >= 2 {
				return
			}
			oldv := e.Load(o.par + shmem.Addr(2*pid))
			newv := e.Load(o.par + shmem.Addr(2*pid+1))
			if o.cc.Read(e, o.counter) != oldv {
				// Figure 6 line 21: on a failed invalidation the
				// helper must FALL THROUGH to the swap phase, not
				// return — Rv may already be 1 (compare validated,
				// swap half-done by a stalled helper), in which
				// case this helper finishes the swap and sets
				// Rv=2. Returning here deadlocks the operation
				// (the soak test caught exactly that).
				if o.cc.Exec(e, o.eng.VAddr(), vw, o.eng.RvAddr(pid), 0, 3) {
					return
				}
			}
			o.cc.Exec(e, o.eng.VAddr(), vw, o.eng.RvAddr(pid), 0, 1)
			if e.Load(o.eng.VAddr()) != vw {
				return
			}
			if o.cc.Read(e, o.eng.RvAddr(pid)) >= 2 {
				return
			}
			o.cc.Exec(e, o.eng.VAddr(), vw, o.counter, oldv, newv)
			o.cc.Exec(e, o.eng.VAddr(), vw, o.eng.RvAddr(pid), 1, 2)
		},
		OnAnnounce: func(shmem.Ctx) {},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	o.eng = eng
	return o
}

// Add retries the compare-and-add until it commits (the standard
// read-compute-MWCAS usage pattern).
func (o *counterObject) Add(e shmem.Ctx, v uint64) {
	p := e.Slot()
	for {
		oldv := o.cc.Read(e, o.counter)
		e.Store(o.par+shmem.Addr(2*p), oldv)
		e.Store(o.par+shmem.Addr(2*p+1), oldv+v)
		o.cc.Write(e, o.eng.RvAddr(p), 0)
		o.eng.DoOp(e)
		if o.cc.Read(e, o.eng.RvAddr(p)) == 2 {
			return
		}
	}
}

// TestEngineDrivesOperations: concurrent adds across processors all land
// exactly once, under both helping modes.
func TestEngineDrivesOperations(t *testing.T) {
	for _, mode := range []helping.Mode{helping.Cyclic, helping.Priority} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				const nCPU, nProc, ops = 3, 6, 5
				s := sched.New(sched.Config{Processors: nCPU, Seed: seed, MemWords: 1 << 12})
				o := newCounterObject(t, s.Mem(), nCPU, nProc, mode)
				want := uint64(0)
				rng := s.Rand()
				for p := 0; p < nProc; p++ {
					p := p
					s.Spawn(sched.JobSpec{
						Name: "", CPU: p % nCPU, Prio: sched.Priority(rng.Intn(4)), Slot: p,
						At: rng.Int63n(150), AfterSlices: -1,
						Body: func(e *sched.Env) {
							for i := 0; i < ops; i++ {
								o.Add(e, uint64(p+1))
							}
						},
					})
					want += uint64(p+1) * ops
				}
				if err := s.Run(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if got := s.Mem().Peek(o.counter); got != want {
					t.Fatalf("seed %d (%v): counter = %d, want %d (lost or doubled adds)", seed, mode, got, want)
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPreemptedOperationIsHelped: a low-priority add preempted mid-operation
// is completed by the preemptor before the preemptor's own add.
func TestPreemptedOperationIsHelped(t *testing.T) {
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 12, EnableTrace: true})
	o := newCounterObject(t, s.Mem(), 1, 2, helping.Cyclic)
	s.Spawn(sched.JobSpec{Name: "low", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		o.Add(e, 10)
	}})
	s.Spawn(sched.JobSpec{Name: "high", CPU: 0, Prio: 9, Slot: 1, AfterSlices: 9, Body: func(e *sched.Env) {
		o.Add(e, 100)
	}})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem().Peek(o.counter); got != 110 {
		t.Fatalf("counter = %d, want 110", got)
	}
}

// TestValidation covers the engine's configuration errors.
func TestValidation(t *testing.T) {
	m := shmem.New(64)
	base := helping.Config{
		Processors: 1, Procs: 1, Mode: helping.Cyclic, CC: prim.Native{},
		Done: func(uint64) bool { return true },
		Help: func(shmem.Ctx, helping.Version) {}, OnAnnounce: func(shmem.Ctx) {},
	}
	bad := base
	bad.Processors = 0
	if _, err := helping.New(m, bad, 2); err == nil {
		t.Error("zero processors accepted")
	}
	bad = base
	bad.Procs = 0
	if _, err := helping.New(m, bad, 2); err == nil {
		t.Error("zero procs accepted")
	}
	bad = base
	bad.Help = nil
	if _, err := helping.New(m, bad, 2); err == nil {
		t.Error("nil Help accepted")
	}
	bad = base
	bad.Mode = helping.Mode(7)
	if _, err := helping.New(m, bad, 2); err == nil {
		t.Error("invalid mode accepted")
	}
}

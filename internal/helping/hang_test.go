package helping_test

import (
	"testing"

	"repro/internal/helping"
	"repro/internal/sched"
)

// TestMismatchFallThroughRegression pins a liveness hazard found by soak
// testing: a helper whose invalidation CCAS (the Figure 6 line 21 path)
// fails must fall through to the swap phase rather than return. Otherwise
// an operation can wedge in the compare-validated state (Rv=1) forever: its
// value was already swapped by a stalled helper, every later helper sees a
// "mismatch", and the 0->3 invalidation can never fire. This seed drove the
// buggy variant to a 200M-step watchdog; the correct fall-through (which
// both Figure 6 and internal/core/multimwcas implement) finishes in a few
// thousand steps.
func TestMismatchFallThroughRegression(t *testing.T) {
	seed := int64(6045429180043275507)
	const nCPU, nProc, ops = 3, 6, 5
	s := sched.New(sched.Config{Processors: nCPU, Seed: seed, MemWords: 1 << 12, MaxSteps: 2_000_000})
	o := newCounterObject(t, s.Mem(), nCPU, nProc, helping.Priority)
	rng := s.Rand()
	want := uint64(0)
	for p := 0; p < nProc; p++ {
		p := p
		s.Spawn(sched.JobSpec{
			Name: "", CPU: p % nCPU, Prio: sched.Priority(rng.Intn(4)), Slot: p,
			At: rng.Int63n(150), AfterSlices: -1,
			Body: func(e *sched.Env) {
				for i := 0; i < ops; i++ {
					o.Add(e, uint64(p+1))
				}
			},
		})
		want += uint64(p+1) * ops
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Mem().Peek(o.counter); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

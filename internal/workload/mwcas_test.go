package workload

import "testing"

// TestMWCASWorkloadUni: the uniprocessor MWCAS workload conserves commits
// under preemption bursts.
func TestMWCASWorkloadUni(t *testing.T) {
	res, err := RunMWCAS(MWCASConfig{
		Kind: MWCASUni, Processors: 1, Words: 6, Width: 3,
		TotalCommits: 200, BurstsPerCPU: 3, BurstCommits: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Commits != 200 {
		t.Errorf("commits = %d, want 200", res.Commits)
	}
	if res.Makespan <= 0 || res.WorstOp <= 0 {
		t.Errorf("degenerate measurements: %+v", res)
	}
}

// TestMWCASWorkloadMulti: the multiprocessor MWCAS workload conserves
// commits across processors and helping modes, and contention causes
// application-level retries.
func TestMWCASWorkloadMulti(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		res, err := RunMWCAS(MWCASConfig{
			Kind: MWCASMulti, Processors: 4, Words: 4, Width: 2,
			TotalCommits: 200, BurstsPerCPU: 2, BurstCommits: 5, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Commits != 200 {
			t.Errorf("seed %d: commits = %d, want 200", seed, res.Commits)
		}
		if res.Failures == 0 {
			t.Logf("seed %d: no conflicts observed (unusual but legal)", seed)
		}
	}
}

// TestMWCASWorkloadValidation covers the error paths.
func TestMWCASWorkloadValidation(t *testing.T) {
	if _, err := RunMWCAS(MWCASConfig{Kind: MWCASUni, Processors: 2, Words: 4, Width: 2, TotalCommits: 10}); err == nil {
		t.Error("uni kind on 2 processors accepted")
	}
	if _, err := RunMWCAS(MWCASConfig{Kind: MWCASMulti, Processors: 2, Words: 2, Width: 5, TotalCommits: 10}); err == nil {
		t.Error("width beyond words accepted")
	}
	if _, err := RunMWCAS(MWCASConfig{Kind: MWCASKind("bogus"), Processors: 1, Words: 2, Width: 1, TotalCommits: 10}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := RunMWCAS(MWCASConfig{Kind: MWCASMulti, Processors: 1, Words: 2, Width: 1, TotalCommits: 5, BurstsPerCPU: 10, BurstCommits: 10}); err == nil {
		t.Error("burst overflow accepted")
	}
}

// Package workload builds and runs the paper's evaluation workloads
// (Section 3.4) and the Figure 1 parameter sweeps.
//
// The §3.4 experiment: processes on P processors perform a fixed total
// number of insertion/deletion operations on a sorted list seeded with
// listSize elements, under priority-based preemption. The paper simulated
// preemption by random relinquishment at predefined preemption points; here
// preemption arises from genuinely prioritized job arrivals: each processor
// runs a base-priority worker plus bursts of higher-priority jobs released
// throughout the run, so operations are preempted mid-flight and the helping
// machinery is exercised exactly as the model intends.
//
// The same harness runs all four list implementations (wait-free,
// Greenwald–Cheriton CAS2 lock-free, CAS-only lock-free, spin-lock) so
// total-time ratios and worst-case behaviour are directly comparable.
package workload

import (
	"errors"
	"fmt"

	"repro/internal/baseline/gclist"
	"repro/internal/baseline/valois"
	"repro/internal/check"
	"repro/internal/helping"
	"repro/internal/metrics"
	"repro/internal/prim"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/trace"
)

// List is the common surface of all list implementations under test: the
// list-family instance of the registry op model.
type List = registry.List

// Kind selects a list implementation.
type Kind string

// The list implementations the harness can run.
const (
	// WaitFree is the paper's multiprocessor wait-free list (Figure 7).
	WaitFree Kind = "waitfree"
	// WaitFreeUni is the paper's uniprocessor wait-free list (Figure 5);
	// requires Processors == 1.
	WaitFreeUni Kind = "waitfree-uni"
	// LockFreeGC is the Greenwald–Cheriton CAS2 lock-free list [7].
	LockFreeGC Kind = "lockfree-gc"
	// CASOnly is the Valois-lineage CAS-only lock-free list [13].
	CASOnly Kind = "casonly-valois"
	// LockBased is the test-and-set spin-lock list.
	LockBased Kind = "lockbased"
)

// Kinds lists all runnable kinds.
func Kinds() []Kind {
	return []Kind{WaitFree, WaitFreeUni, LockFreeGC, CASOnly, LockBased}
}

// ListConfig parameterizes one experiment run.
type ListConfig struct {
	Kind Kind
	// Processors is P. BurstsPerCPU higher-priority bursts of BurstOps
	// operations each are injected per processor over the run.
	Processors   int
	BurstsPerCPU int
	BurstOps     int
	// TotalOps is the total operation count across all jobs (the paper
	// used 50,000).
	TotalOps int
	// ListSize is the seeded list length (the paper used 200-2,000).
	// Keys are drawn from [1, 2*ListSize] so roughly half the operations
	// hit present keys.
	ListSize int
	Seed     int64
	// CC, Mode, Stride, OneRound configure the wait-free list (ignored
	// otherwise). Stride defaults to 100, the paper's measured setup.
	CC       prim.Impl
	Mode     helping.Mode
	Stride   int
	OneRound bool
	// Granularity defaults to Coarse (preemption at synchronizing
	// operations), which the big sweeps need for speed; correctness
	// tests use Fine.
	Granularity sched.Granularity
	// SyncCost prices synchronizing operations (sched.Config.SyncCost).
	SyncCost int64
	// SearchPercent is the percentage of operations that are searches
	// (the remainder splits evenly between inserts and deletes). The
	// paper's workload used none; real kernels are read-heavy.
	SearchPercent int
	// Policy names the scheduling discipline ("" = strict priority). The
	// suite accepts the disciplines its helping-protocol model is sound
	// for (see PolicyAccepted) and refuses the rest with a wrapped
	// sched.ErrNonPriorityPolicy.
	Policy string
	// Check attaches the structural linearizability checker (slower).
	Check bool
	// EnableTrace records the run's event log (ListResult.TraceLog) for
	// span reconstruction with internal/tracex. Emission charges no
	// virtual time, so traced and untraced runs measure identically.
	EnableTrace bool
}

// ListResult is the measured outcome of one run.
type ListResult struct {
	Cfg      ListConfig
	Ops      int
	Makespan int64
	// WorstOp and AvgOp are operation response times (virtual units),
	// including preemption and helping delay.
	WorstOp int64
	AvgOp   float64
	// BaseOp is the interference-free cost of one operation at this list
	// size, measured in a separate single-process run. WorstOp/BaseOp is
	// the paper's "at most eight times that of an interference-free
	// operation" metric.
	BaseOp int64
	// Retries/WorstRetries are retry statistics for the lock-free kinds
	// (zero for wait-free: wait-free operations never retry).
	Retries      int
	WorstRetries int
	// Final is the final list length (sanity).
	Final int
	// Livelocked is set when the run tripped the step watchdog — the
	// expected outcome for the lock-based list under priority
	// preemption (unbounded priority inversion), and a hard failure for
	// every other kind.
	Livelocked bool
	// Report is the run's full observability report: per-process step
	// counts, CAS-failure counts, helping and preemption accounting, and
	// response-time histograms. On a livelocked run it is the snapshot at
	// watchdog time.
	Report *metrics.Report
	// TraceLog is the run's event log when Cfg.EnableTrace was set, nil
	// otherwise; feed it to tracex.Build for the span model.
	TraceLog *trace.Log
}

// acceptedPolicies names the scheduling disciplines the suite runs
// under. The workload's measurement model leans on two properties: a
// dispatched job keeps its processor until a *higher-priority* release
// preempts it (so the burst jobs are the only interference source), and
// the base workers are never starved outright (so every run terminates
// with its op budget spent). Strict priority is the paper's model;
// fcfs and priority-fcfs are non-preemptive, which only removes
// preemption edges — the helping protocol stays sound and the bursts
// still serialize against the base workers. The remaining disciplines
// (sjf, age-slo, reverse-priority) reorder or invert dispatch in ways
// the suite's burst-interference accounting does not model, so they are
// refused rather than silently mismeasured.
var acceptedPolicies = map[string]bool{
	"":              true,
	"priority":      true,
	"fcfs":          true,
	"priority-fcfs": true,
}

// PolicyAccepted reports whether the suite runs under the named policy
// ("" = the strict-priority default).
func PolicyAccepted(name string) bool { return acceptedPolicies[name] }

// AcceptedPolicies lists the non-empty accepted policy names, sorted.
func AcceptedPolicies() []string { return []string{"fcfs", "priority", "priority-fcfs"} }

// resolvePolicy gate-checks and resolves a ListConfig/MWCASConfig policy
// name.
func resolvePolicy(name string) (sched.Policy, error) {
	pol, err := sched.PolicyByName(name)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if !acceptedPolicies[name] {
		return nil, fmt.Errorf("workload: %w: the workload suite models burst interference under priority/fcfs/priority-fcfs only, not policy %q",
			sched.ErrNonPriorityPolicy, pol.Name())
	}
	return pol, nil
}

// kindToObject maps the workload kinds onto registry names.
var kindToObject = map[Kind]string{
	WaitFree:    "multilist",
	WaitFreeUni: "unilist",
	LockFreeGC:  "gclist",
	CASOnly:     "valois",
	LockBased:   "locklist",
}

// build constructs the configured list inside sim via the registry.
func build(cfg ListConfig, s *sched.Sim, slots int) (List, error) {
	name, ok := kindToObject[cfg.Kind]
	if !ok {
		return nil, fmt.Errorf("workload: unknown kind %q", cfg.Kind)
	}
	if cfg.Kind == WaitFreeUni && cfg.Processors != 1 {
		return nil, fmt.Errorf("workload: %s requires one processor, got %d", cfg.Kind, cfg.Processors)
	}
	keys := make([]uint64, cfg.ListSize)
	for i := range keys {
		keys[i] = uint64(2 * (i + 1)) // even keys seeded
	}
	inst, err := registry.Build(s, name, registry.Config{
		Processors: cfg.Processors,
		Procs:      slots,
		Capacity:   cfg.ListSize + cfg.TotalOps + 4*slots + 8,
		SeedKeys:   keys,
		CC:         cfg.CC, Mode: cfg.Mode, Stride: cfg.Stride, OneRound: cfg.OneRound,
	})
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return inst.Underlying().(List), nil
}

// RunList executes one experiment run and returns its measurements.
func RunList(cfg ListConfig) (*ListResult, error) {
	if cfg.Processors < 1 {
		return nil, fmt.Errorf("workload: processors %d out of range", cfg.Processors)
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = sched.Coarse
	}
	if cfg.BurstsPerCPU < 0 || cfg.BurstOps < 0 {
		return nil, fmt.Errorf("workload: negative burst configuration")
	}
	if cfg.SearchPercent < 0 || cfg.SearchPercent > 100 {
		return nil, fmt.Errorf("workload: search percentage %d out of range", cfg.SearchPercent)
	}
	pol, err := resolvePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}

	// Job layout: one base worker per processor plus the bursts; each
	// burst job gets its own slot (slots never execute concurrently
	// within a job, and distinct jobs have distinct slots).
	burstJobs := cfg.Processors * cfg.BurstsPerCPU
	burstOpsTotal := burstJobs * cfg.BurstOps
	if burstOpsTotal > cfg.TotalOps {
		return nil, fmt.Errorf("workload: burst ops %d exceed total %d", burstOpsTotal, cfg.TotalOps)
	}
	baseOpsTotal := cfg.TotalOps - burstOpsTotal
	slots := cfg.Processors + burstJobs

	capacity := cfg.ListSize + cfg.TotalOps + 4*slots + 8
	memWords := 3*capacity + 64*slots + 1<<13
	s := sched.New(sched.Config{
		Processors:  cfg.Processors,
		Seed:        cfg.Seed,
		MemWords:    memWords,
		Granularity: cfg.Granularity,
		SyncCost:    cfg.SyncCost,
		MaxSteps:    uint64(cfg.TotalOps)*uint64(cfg.ListSize+64)*8*uint64(max(cfg.SyncCost, 1)) + 1<<22,
		EnableTrace: cfg.EnableTrace,
		Policy:      pol,
	})
	l, err := build(cfg, s, slots)
	if err != nil {
		return nil, err
	}
	var chk *check.MultiListChecker
	if cfg.Check {
		chk = check.NewMultiListChecker(l, s.Mem())
	}

	res := &ListResult{Cfg: cfg, BaseOp: 1}
	keyRange := 2 * cfg.ListSize
	var totalOpTime int64

	runOps := func(e *sched.Env, slot, ops int) {
		for i := 0; i < ops; i++ {
			key := uint64(1 + e.Rand().Intn(keyRange))
			start := e.Now()
			var ok bool
			switch {
			case e.Rand().Intn(100) < cfg.SearchPercent:
				if chk != nil {
					chk.BeginOp(slot, check.ListSch, key)
				}
				ok = l.Search(e, key)
			case e.Rand().Intn(2) == 0:
				if chk != nil {
					chk.BeginOp(slot, check.ListIns, key)
				}
				ok = l.Insert(e, key, key)
			default:
				if chk != nil {
					chk.BeginOp(slot, check.ListDel, key)
				}
				ok = l.Delete(e, key)
			}
			if chk != nil {
				chk.EndOp(slot, ok)
			}
			elapsed := e.Now() - start
			e.RecordOp(elapsed)
			totalOpTime += elapsed
			if elapsed > res.WorstOp {
				res.WorstOp = elapsed
			}
			res.Ops++
		}
	}

	// Base workers.
	basePer := baseOpsTotal / cfg.Processors
	for cpu := 0; cpu < cfg.Processors; cpu++ {
		cpu := cpu
		ops := basePer
		if cpu == 0 {
			ops += baseOpsTotal - basePer*cfg.Processors
		}
		s.Spawn(sched.JobSpec{
			Name: fmt.Sprintf("base%d", cpu), CPU: cpu, Prio: 1, Slot: cpu,
			AfterSlices: -1,
			Body:        func(e *sched.Env) { runOps(e, cpu, ops) },
		})
	}
	// Priority bursts, staggered across the estimated run length. A
	// rough per-op slice estimate suffices: late triggers fire at
	// quiescence, early ones merely shift the preemption pattern.
	estSlicesPerOp := 8 + cfg.ListSize/16
	estTotal := int64(cfg.TotalOps * estSlicesPerOp)
	job := 0
	for cpu := 0; cpu < cfg.Processors; cpu++ {
		for b := 0; b < cfg.BurstsPerCPU; b++ {
			slot := cfg.Processors + job
			prio := sched.Priority(2 + b%3) // a few nested levels
			release := estTotal * int64(b+1) / int64(cfg.BurstsPerCPU+1)
			release += s.Rand().Int63n(estTotal/int64(cfg.BurstsPerCPU+1) + 1)
			s.Spawn(sched.JobSpec{
				Name: fmt.Sprintf("burst%d", job), CPU: cpu, Prio: prio, Slot: slot,
				AfterSlices: release,
				Body:        func(e *sched.Env) { runOps(e, slot, cfg.BurstOps) },
			})
			job++
		}
	}

	if err := s.Run(); err != nil {
		if errors.Is(err, sched.ErrWatchdog) {
			// Livelock: report it as a measurement (the paper's
			// motivating failure mode for lock-based objects).
			res.Livelocked = true
			res.Makespan = s.Elapsed()
			res.Report = s.Report(string(cfg.Kind))
			res.TraceLog = s.Trace()
			return res, nil
		}
		return nil, fmt.Errorf("workload: %w", err)
	}
	if chk != nil {
		chk.Finish()
		if err := chk.Err(); err != nil {
			return nil, err
		}
	}
	res.Makespan = s.Elapsed()
	if res.Ops > 0 {
		res.AvgOp = float64(totalOpTime) / float64(res.Ops)
	}
	res.Final = len(l.Snapshot())
	switch v := l.(type) {
	case *gclist.List:
		st := v.TotalStats()
		res.Retries, res.WorstRetries = st.Retries, st.WorstRetries
	case *valois.List:
		st := v.TotalStats()
		res.Retries, res.WorstRetries = st.Retries, st.WorstRetries
	}
	res.BaseOp = measureBaseOp(cfg)
	res.Report = s.Report(string(cfg.Kind))
	res.TraceLog = s.Trace()
	return res, nil
}

// measureBaseOp runs a single-process, interference-free version of the
// workload to obtain the baseline per-operation cost at this list size.
func measureBaseOp(cfg ListConfig) int64 {
	const probeOps = 32
	base := cfg
	base.Processors = 1
	base.BurstsPerCPU = 0
	base.BurstOps = 0
	base.TotalOps = probeOps
	base.Check = false
	if base.Kind == WaitFree && cfg.Processors == 1 {
		base.Kind = WaitFree
	}
	if base.Kind == WaitFreeUni {
		base.Kind = WaitFreeUni
	}
	pol, err := resolvePolicy(base.Policy)
	if err != nil {
		return 1
	}
	s := sched.New(sched.Config{
		Processors:  1,
		Seed:        cfg.Seed + 1,
		MemWords:    3*(base.ListSize+probeOps+32) + 1<<13,
		Granularity: base.Granularity,
		Policy:      pol,
	})
	l, err := build(base, s, 1)
	if err != nil {
		return 1
	}
	var worst int64 = 1
	s.SpawnAt(0, 0, 1, "probe", func(e *sched.Env) {
		for i := 0; i < probeOps; i++ {
			key := uint64(1 + e.Rand().Intn(2*base.ListSize))
			start := e.Now()
			if e.Rand().Intn(2) == 0 {
				l.Insert(e, key, key)
			} else {
				l.Delete(e, key)
			}
			if d := e.Now() - start; d > worst {
				worst = d
			}
		}
	})
	if err := s.Run(); err != nil {
		return 1
	}
	return worst
}

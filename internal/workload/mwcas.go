package workload

import (
	"errors"
	"fmt"

	"repro/internal/core/multimwcas"
	"repro/internal/core/unimwcas"
	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/sched"
	"repro/internal/shmem"
)

// MWCASKind selects the MWCAS implementation under test.
type MWCASKind string

// The MWCAS implementations the harness can run.
const (
	// MWCASUni is the uniprocessor Figure 3 algorithm (requires P=1).
	MWCASUni MWCASKind = "mwcas-uni"
	// MWCASMulti is the multiprocessor Figure 6 algorithm.
	MWCASMulti MWCASKind = "mwcas-multi"
)

// MWCASConfig parameterizes an MWCAS throughput run: processes perform
// read-compute-MWCAS transactions (the paper's Section 3.1 usage pattern)
// over a shared word set, retrying on conflict, under priority preemption
// bursts.
type MWCASConfig struct {
	Kind MWCASKind
	// Processors is P; Words is the shared word count; Width is the
	// number of words each transaction updates.
	Processors, Words, Width int
	// TotalCommits is the total number of committed transactions to
	// perform across all workers.
	TotalCommits int
	// BurstsPerCPU higher-priority jobs of BurstCommits each preempt the
	// base workers.
	BurstsPerCPU, BurstCommits int
	Seed                       int64
	// CC and Mode configure the multiprocessor object.
	CC   prim.Impl
	Mode helping.Mode
	// Granularity defaults to Coarse.
	Granularity sched.Granularity
	// Policy names the scheduling discipline; the same accept/refuse
	// gate as ListConfig.Policy applies (see PolicyAccepted).
	Policy string
}

// MWCASResult is the measured outcome.
type MWCASResult struct {
	Cfg      MWCASConfig
	Commits  int
	Failures int // failed attempts (application-level retries)
	Makespan int64
	WorstOp  int64 // worst single MWCAS call response
}

// RunMWCAS executes one MWCAS throughput run.
func RunMWCAS(cfg MWCASConfig) (*MWCASResult, error) {
	if cfg.Processors < 1 {
		return nil, fmt.Errorf("workload: processors %d out of range", cfg.Processors)
	}
	if cfg.Kind == MWCASUni && cfg.Processors != 1 {
		return nil, fmt.Errorf("workload: %s requires one processor", cfg.Kind)
	}
	if cfg.Width < 1 || cfg.Width > cfg.Words {
		return nil, fmt.Errorf("workload: width %d out of range [1,%d]", cfg.Width, cfg.Words)
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = sched.Coarse
	}
	burstJobs := cfg.Processors * cfg.BurstsPerCPU
	burstCommits := burstJobs * cfg.BurstCommits
	if burstCommits > cfg.TotalCommits {
		return nil, fmt.Errorf("workload: burst commits %d exceed total %d", burstCommits, cfg.TotalCommits)
	}
	slots := cfg.Processors + burstJobs
	pol, err := resolvePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}

	s := sched.New(sched.Config{
		Processors:  cfg.Processors,
		Seed:        cfg.Seed,
		MemWords:    1 << 16,
		Granularity: cfg.Granularity,
		MaxSteps:    uint64(cfg.TotalCommits)*uint64(cfg.Words+64)*64 + 1<<22,
		Policy:      pol,
	})

	// Build the object and a transaction function.
	var txn func(e *sched.Env, rng func(int) int) (bool, error)
	base := s.Mem().MustAlloc("appwords", cfg.Words)
	words := make([]shmem.Addr, cfg.Words)
	for i := range words {
		words[i] = base + shmem.Addr(i)
	}
	switch cfg.Kind {
	case MWCASUni:
		obj, err := unimwcas.New(s.Mem(), slots, cfg.Width)
		if err != nil {
			return nil, err
		}
		for _, w := range words {
			obj.InitWord(w, 0)
		}
		txn = func(e *sched.Env, rng func(int) int) (bool, error) {
			idx := pick(rng, cfg.Words, cfg.Width)
			addrs := make([]shmem.Addr, cfg.Width)
			old := make([]uint32, cfg.Width)
			next := make([]uint32, cfg.Width)
			for i, wi := range idx {
				addrs[i] = words[wi]
				old[i] = obj.Read(e, addrs[i])
				next[i] = old[i] + 1
			}
			return obj.MWCAS(e, addrs, old, next), nil
		}
	case MWCASMulti:
		obj, err := multimwcas.New(s.Mem(), multimwcas.Config{
			Processors: cfg.Processors, Procs: slots, Width: cfg.Width,
			CC: cfg.CC, Mode: cfg.Mode,
		})
		if err != nil {
			return nil, err
		}
		for _, w := range words {
			obj.InitWord(w, 0)
		}
		txn = func(e *sched.Env, rng func(int) int) (bool, error) {
			idx := pick(rng, cfg.Words, cfg.Width)
			addrs := make([]shmem.Addr, cfg.Width)
			old := make([]uint64, cfg.Width)
			next := make([]uint64, cfg.Width)
			for i, wi := range idx {
				addrs[i] = words[wi]
				old[i] = obj.ReadWord(e, addrs[i])
				next[i] = old[i] + 1
			}
			return obj.MWCAS(e, addrs, old, next), nil
		}
	default:
		return nil, fmt.Errorf("workload: unknown MWCAS kind %q", cfg.Kind)
	}

	res := &MWCASResult{Cfg: cfg}
	var runErr error
	commitLoop := func(e *sched.Env, commits int) {
		for done := 0; done < commits; {
			start := e.Now()
			ok, err := txn(e, e.Rand().Intn)
			if err != nil {
				runErr = err
				return
			}
			if d := e.Now() - start; d > res.WorstOp {
				res.WorstOp = d
			}
			if ok {
				done++
				res.Commits++
			} else {
				res.Failures++
			}
		}
	}

	baseTotal := cfg.TotalCommits - burstCommits
	basePer := baseTotal / cfg.Processors
	for cpu := 0; cpu < cfg.Processors; cpu++ {
		cpu := cpu
		commits := basePer
		if cpu == 0 {
			commits += baseTotal - basePer*cfg.Processors
		}
		s.Spawn(sched.JobSpec{
			Name: fmt.Sprintf("base%d", cpu), CPU: cpu, Prio: 1, Slot: cpu, AfterSlices: -1,
			Body: func(e *sched.Env) { commitLoop(e, commits) },
		})
	}
	est := int64(cfg.TotalCommits * (16 + 4*cfg.Width))
	job := 0
	for cpu := 0; cpu < cfg.Processors; cpu++ {
		for b := 0; b < cfg.BurstsPerCPU; b++ {
			slot := cfg.Processors + job
			release := est*int64(b+1)/int64(cfg.BurstsPerCPU+1) + s.Rand().Int63n(est/int64(cfg.BurstsPerCPU+1)+1)
			s.Spawn(sched.JobSpec{
				Name: fmt.Sprintf("burst%d", job), CPU: cpu, Prio: sched.Priority(2 + b%3), Slot: slot,
				AfterSlices: release,
				Body:        func(e *sched.Env) { commitLoop(e, cfg.BurstCommits) },
			})
			job++
		}
	}
	if err := s.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	res.Makespan = s.Elapsed()

	// Conservation check: every committed transaction incremented Width
	// words by one, so the word sum equals Commits * Width.
	var sum uint64
	for _, w := range words {
		switch cfg.Kind {
		case MWCASUni:
			sum += uint64(unimwcasVal(s, w))
		default:
			sum += multimwcasVal(s, w, cfg.CC)
		}
	}
	if sum != uint64(res.Commits*cfg.Width) {
		return nil, errors.New("workload: MWCAS conservation violated (lost or doubled commits)")
	}
	return res, nil
}

// pick chooses width distinct indices in [0, words).
func pick(rng func(int) int, words, width int) []int {
	idx := make([]int, 0, width)
	used := make(map[int]bool, width)
	for len(idx) < width {
		i := rng(words)
		if !used[i] {
			used[i] = true
			idx = append(idx, i)
		}
	}
	return idx
}

func unimwcasVal(s *sched.Sim, w shmem.Addr) uint32 {
	word := unimwcas.Unpack(s.Mem().Peek(w))
	// Quiescent: valid words only.
	return word.Val
}

func multimwcasVal(s *sched.Sim, w shmem.Addr, cc prim.Impl) uint64 {
	if cc == nil {
		cc = prim.Native{}
	}
	return cc.Logical(s.Mem().Peek(w))
}

package workload

import (
	"testing"

	"repro/internal/sched"
)

// TestAllKindsRun exercises every list kind through the harness; the
// lock-based list is expected to livelock under preemption (priority
// inversion), every other kind must finish.
func TestAllKindsRun(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			p := 4
			if k == WaitFreeUni {
				p = 1
			}
			res, err := RunList(ListConfig{
				Kind: k, Processors: p, BurstsPerCPU: 2, BurstOps: 10,
				TotalOps: 400, ListSize: 50, Seed: 1, Check: k != LockBased,
			})
			if err != nil {
				t.Fatal(err)
			}
			if k == LockBased {
				if !res.Livelocked {
					t.Error("lock-based list did not livelock under priority preemption")
				}
				return
			}
			if res.Livelocked {
				t.Error("run livelocked")
			}
			if res.Ops != 400 {
				t.Errorf("ops = %d, want 400", res.Ops)
			}
			if res.Final <= 0 {
				t.Errorf("final list empty (size %d)", res.Final)
			}
		})
	}
}

// TestCheckedRunsAcrossSeeds runs the checked workload for several seeds on
// the two headline kinds — an end-to-end linearizability test of the whole
// §3.4 pipeline.
func TestCheckedRunsAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, k := range []Kind{WaitFree, LockFreeGC} {
			res, err := RunList(ListConfig{
				Kind: k, Processors: 3, BurstsPerCPU: 3, BurstOps: 5,
				TotalOps: 300, ListSize: 40, Seed: seed, Check: true,
			})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, k, err)
			}
			if res.Livelocked {
				t.Fatalf("seed %d %s: livelocked", seed, k)
			}
		}
	}
}

// TestSec34RatioShape is the headline §3.4 reproduction at reduced scale:
// the wait-free list's total time must be within the paper's reported band —
// higher than the lock-free list, but by a bounded factor (the paper:
// "typically 1.5 to 2 times higher", our harness: up to ~2.3 under heavy
// preemption).
func TestSec34RatioShape(t *testing.T) {
	mk := map[Kind]int64{}
	for _, k := range []Kind{WaitFree, LockFreeGC} {
		res, err := RunList(ListConfig{
			Kind: k, Processors: 4, BurstsPerCPU: 4, BurstOps: 25,
			TotalOps: 3000, ListSize: 200, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		mk[k] = res.Makespan
	}
	ratio := float64(mk[WaitFree]) / float64(mk[LockFreeGC])
	if ratio < 1.2 || ratio > 3.0 {
		t.Errorf("wait-free/lock-free total-time ratio = %.2f, want within the paper's regime (~1.5-2, harness band 1.2-3.0)", ratio)
	}
}

// TestSec34RetriesShape: the lock-free list exhibits substantial worst-case
// retries under contention, while wait-free operations never retry.
func TestSec34RetriesShape(t *testing.T) {
	res, err := RunList(ListConfig{
		Kind: LockFreeGC, Processors: 4, BurstsPerCPU: 4, BurstOps: 25,
		TotalOps: 3000, ListSize: 200, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstRetries < 5 {
		t.Errorf("lock-free worst retries = %d, want the paper's contention regime (>= 5)", res.WorstRetries)
	}
	wf, err := RunList(ListConfig{
		Kind: WaitFree, Processors: 4, BurstsPerCPU: 4, BurstOps: 25,
		TotalOps: 3000, ListSize: 200, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wf.Retries != 0 {
		t.Errorf("wait-free list reported %d retries; wait-free operations never retry", wf.Retries)
	}
}

// TestWaitFreeWorstCaseBound: with brief preemptions (single-operation
// bursts, the regime of the paper's claim), a wait-free operation's response
// time stays within a small factor of an interference-free operation —
// the paper reports "at most eight times" on four processors (2·P·T with
// both traversals). We allow headroom for burst nesting.
func TestWaitFreeWorstCaseBound(t *testing.T) {
	res, err := RunList(ListConfig{
		Kind: WaitFree, Processors: 4, BurstsPerCPU: 3, BurstOps: 1,
		TotalOps: 2000, ListSize: 200, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.WorstOp) / float64(res.BaseOp)
	if ratio > 16 {
		t.Errorf("worst/base = %.1f, want <= 16 (paper: <= 8 on P=4 plus preemption headroom)", ratio)
	}
}

// TestConfigValidation covers the error paths.
func TestConfigValidation(t *testing.T) {
	if _, err := RunList(ListConfig{Kind: WaitFree, Processors: 0}); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := RunList(ListConfig{Kind: WaitFreeUni, Processors: 2, TotalOps: 10, ListSize: 5}); err == nil {
		t.Error("uniprocessor list on 2 processors accepted")
	}
	if _, err := RunList(ListConfig{Kind: Kind("bogus"), Processors: 1, TotalOps: 10, ListSize: 5}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := RunList(ListConfig{Kind: WaitFree, Processors: 2, BurstsPerCPU: 10, BurstOps: 100, TotalOps: 10, ListSize: 5}); err == nil {
		t.Error("burst ops exceeding total accepted")
	}
}

// TestRegressionDuplicateRace pins the two historical corruption scenarios:
// a same-round helper misreporting a completed insert as a duplicate, and an
// insert owner misreading its recycled node. Both manifested as list cycles
// under these exact configurations.
func TestRegressionDuplicateRace(t *testing.T) {
	cases := []ListConfig{
		{Kind: WaitFree, Processors: 3, BurstsPerCPU: 3, BurstOps: 5, TotalOps: 300, ListSize: 40, Seed: 4, Check: true},
		{Kind: WaitFree, Processors: 4, BurstsPerCPU: 3, BurstOps: 1, TotalOps: 2000, ListSize: 200, Seed: 7, Check: true},
		{Kind: WaitFree, Processors: 4, BurstsPerCPU: 2, BurstOps: 20, TotalOps: 1000, ListSize: 200, Seed: 11, Check: true},
	}
	for i, cfg := range cases {
		res, err := RunList(cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.Livelocked {
			t.Fatalf("case %d livelocked", i)
		}
	}
}

// TestGranularityAgreement: Fine and Coarse preemption-point densities give
// different virtual timings but identical logical outcomes under the
// checker, for the same seed.
func TestGranularityAgreement(t *testing.T) {
	for _, g := range []sched.Granularity{sched.Fine, sched.Coarse} {
		res, err := RunList(ListConfig{
			Kind: WaitFree, Processors: 3, BurstsPerCPU: 2, BurstOps: 5,
			TotalOps: 200, ListSize: 30, Seed: 12, Check: true, Granularity: g,
		})
		if err != nil {
			t.Fatalf("granularity %d: %v", g, err)
		}
		if res.Ops != 200 {
			t.Fatalf("granularity %d: ops = %d", g, res.Ops)
		}
	}
}

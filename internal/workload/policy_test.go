package workload

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sched"
)

func policyListCfg(policy string) ListConfig {
	return ListConfig{
		Kind: WaitFree, Processors: 2,
		BurstsPerCPU: 1, BurstOps: 4, TotalOps: 60, ListSize: 16,
		Seed: 5, Policy: policy,
	}
}

// TestRunListPolicyGate: one subtest per shipped policy — the suite runs
// under the disciplines its interference model covers and refuses the
// rest with the wrapped typed error naming the policy.
func TestRunListPolicyGate(t *testing.T) {
	for _, pol := range append([]string{""}, sched.PolicyNames()...) {
		pol := pol
		name := pol
		if name == "" {
			name = "default"
		}
		t.Run(name, func(t *testing.T) {
			res, err := RunList(policyListCfg(pol))
			if PolicyAccepted(pol) {
				if err != nil {
					t.Fatalf("accepted policy %q refused: %v", pol, err)
				}
				if res.Ops != 60 {
					t.Fatalf("ran %d ops, want 60", res.Ops)
				}
				want := pol
				if pol == "priority" {
					// The explicit default resolves to the default
					// discipline, which reports leave unstamped.
					want = ""
				}
				if res.Report.Policy != want {
					t.Fatalf("report policy %q, want %q", res.Report.Policy, want)
				}
			} else {
				if !errors.Is(err, sched.ErrNonPriorityPolicy) {
					t.Fatalf("policy %q: err = %v, want wrapped ErrNonPriorityPolicy", pol, err)
				}
				if pol != "" && !strings.Contains(err.Error(), pol) {
					t.Fatalf("refusal does not name policy %q: %v", pol, err)
				}
			}
		})
	}
}

// TestRunListUnknownPolicy: unknown names fail resolution, not the gate.
func TestRunListUnknownPolicy(t *testing.T) {
	_, err := RunList(policyListCfg("no-such-policy"))
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if errors.Is(err, sched.ErrNonPriorityPolicy) {
		t.Fatalf("unknown policy hit the gate instead of name resolution: %v", err)
	}
}

// TestRunMWCASPolicyGate: the MWCAS harness shares the gate.
func TestRunMWCASPolicyGate(t *testing.T) {
	cfg := MWCASConfig{
		Kind: MWCASMulti, Processors: 2, Words: 6, Width: 2,
		TotalCommits: 40, BurstsPerCPU: 1, BurstCommits: 4, Seed: 3,
	}
	for _, pol := range []string{"fcfs", "age-slo"} {
		cfg.Policy = pol
		res, err := RunMWCAS(cfg)
		if PolicyAccepted(pol) {
			if err != nil {
				t.Fatalf("accepted policy %q refused: %v", pol, err)
			}
			if res.Commits != cfg.TotalCommits {
				t.Fatalf("policy %q: %d commits, want %d", pol, res.Commits, cfg.TotalCommits)
			}
		} else if !errors.Is(err, sched.ErrNonPriorityPolicy) {
			t.Fatalf("policy %q: err = %v, want wrapped ErrNonPriorityPolicy", pol, err)
		}
	}
}

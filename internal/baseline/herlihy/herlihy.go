// Package herlihy implements a Herlihy-style universal construction
// (reference [8] of the paper; footnote 3), the asynchronous-systems
// baseline the paper's helping schemes are measured against.
//
// Structure: the object's state lives in fixed-size blocks; a shared head
// word names the current block. To operate, a process announces its
// operation, then repeatedly: copies the current block into one of its two
// private blocks, applies every announced-but-unapplied operation of every
// process (helping all N processes — this is the point of comparison: the
// paper's processor-indexed schemes help at most one operation per processor,
// giving 2·P·T instead of 2·N·T), and installs the copy with a CAS on the
// head.
//
// Simplifications relative to Herlihy's paper: per-process sequence numbers
// replace the cell/consensus machinery, and copy consistency is validated by
// re-reading the head instead of bounded-memory ownership accounting. Both
// preserve the cost structure — a full state copy plus up to N helped
// operations per attempt — which is what the A1 ablation measures.
package herlihy

import (
	"fmt"

	"repro/internal/shmem"
)

// Apply is the sequential object semantics: it mutates state (block word
// addresses) and returns the operation's result. It must access memory only
// through e.
type Apply func(e shmem.Ctx, state []shmem.Addr, op, arg uint64) uint64

// head word packing: block index in the low 16 bits, version above.
func packHead(blk int, ver uint64) uint64 { return uint64(blk)&0xFFFF | ver<<16 }
func unpackHead(w uint64) (int, uint64)   { return int(w & 0xFFFF), w >> 16 }

// Object is a universal-construction object for n processes with k state
// words.
type Object struct {
	mem   shmem.Memory
	apply Apply
	n, k  int

	head     shmem.Addr
	announce shmem.Addr // per process: op, arg, seq (3 words)
	blocks   shmem.Addr // (2n+1) blocks of k + 2n words
	blockLen int

	localSeq []uint64 // owner-side operation counters
	toggle   []int    // which private block to use next
}

const annStride = 3

// New creates the object. The initial state is all-zero k words.
func New(m shmem.Memory, n, k int, apply Apply) (*Object, error) {
	if n < 1 || n > 0xFFF {
		return nil, fmt.Errorf("herlihy: process count %d out of range", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("herlihy: state size %d out of range", k)
	}
	o := &Object{mem: m, apply: apply, n: n, k: k, blockLen: k + 2*n,
		localSeq: make([]uint64, n), toggle: make([]int, n)}
	var err error
	if o.head, err = m.Alloc("UCHead", 1); err != nil {
		return nil, fmt.Errorf("herlihy: %w", err)
	}
	if o.announce, err = m.Alloc("UCAnnounce", n*annStride); err != nil {
		return nil, fmt.Errorf("herlihy: %w", err)
	}
	if o.blocks, err = m.Alloc("UCBlocks", (2*n+1)*o.blockLen); err != nil {
		return nil, fmt.Errorf("herlihy: %w", err)
	}
	m.Poke(o.head, packHead(2*n, 1)) // block 2n is the initial state
	return o, nil
}

// Block word addressing: [k object words][n appliedSeq][n results].
func (o *Object) blockWord(blk, i int) shmem.Addr {
	return o.blocks + shmem.Addr(blk*o.blockLen+i)
}
func (o *Object) blockApplied(blk, q int) shmem.Addr { return o.blockWord(blk, o.k+q) }
func (o *Object) blockResult(blk, q int) shmem.Addr  { return o.blockWord(blk, o.k+o.n+q) }

func (o *Object) annOp(p int) shmem.Addr  { return o.announce + shmem.Addr(p*annStride) }
func (o *Object) annArg(p int) shmem.Addr { return o.announce + shmem.Addr(p*annStride+1) }
func (o *Object) annSeq(p int) shmem.Addr { return o.announce + shmem.Addr(p*annStride+2) }

// StateAddrs returns the object-word addresses of block blk.
func (o *Object) stateAddrs(blk int) []shmem.Addr {
	addrs := make([]shmem.Addr, o.k)
	for i := range addrs {
		addrs[i] = o.blockWord(blk, i)
	}
	return addrs
}

// PeekState returns the current object words (quiescent use).
func (o *Object) PeekState() []uint64 {
	blk, _ := unpackHead(o.mem.Peek(o.head))
	out := make([]uint64, o.k)
	for i := range out {
		out[i] = o.mem.Peek(o.blockWord(blk, i))
	}
	return out
}

// Do announces and completes one operation, returning its result. The
// worst-case work is O(N·T): each attempt copies the whole state and helps
// every announced operation.
func (o *Object) Do(e shmem.Ctx, op, arg uint64) uint64 {
	p := e.Slot()
	o.localSeq[p]++
	mySeq := o.localSeq[p]
	// Announce: op and arg first, seq last (the "ready" flag).
	e.Store(o.annOp(p), op)
	e.Store(o.annArg(p), arg)
	e.Store(o.annSeq(p), mySeq)

	guard := 0
	for {
		if guard++; guard > 20*o.n+40 {
			panic("herlihy: helping did not converge (construction bug)")
		}
		headWord := e.Load(o.head)
		blk, ver := unpackHead(headWord)
		// Already applied by a helper? Validate against head tearing.
		if e.Load(o.blockApplied(blk, p)) >= mySeq {
			res := e.Load(o.blockResult(blk, p))
			if e.Load(o.head) == headWord {
				return res
			}
			continue
		}
		// Copy the current block into a private one.
		buf := 2*p + o.toggle[p]
		torn := false
		for i := 0; i < o.blockLen; i++ {
			v := e.Load(o.blockWord(blk, i))
			e.Store(o.blockWord(buf, i), v)
			// Cheap incremental validation keeps torn copies from
			// wasting full applies.
			if i%16 == 15 && e.Load(o.head) != headWord {
				torn = true
				break
			}
		}
		if torn || e.Load(o.head) != headWord {
			continue
		}
		// Help every announced, unapplied operation (including ours).
		state := o.stateAddrs(buf)
		for q := 0; q < o.n; q++ {
			qseq := e.Load(o.annSeq(q))
			if qseq == 0 || e.Load(o.blockApplied(buf, q)) >= qseq {
				continue
			}
			qop := e.Load(o.annOp(q))
			qarg := e.Load(o.annArg(q))
			res := o.apply(e, state, qop, qarg)
			e.Store(o.blockApplied(buf, q), qseq)
			e.Store(o.blockResult(buf, q), res)
		}
		if e.CAS(o.head, headWord, packHead(buf, ver+1)) {
			o.toggle[p] ^= 1
			res := e.Load(o.blockResult(buf, p))
			return res
		}
	}
}

// SortedSetApply is a sequential sorted-set object over k slots (0 = empty)
// for use with New: op 1 = insert, 2 = delete, 3 = search; arg is the key
// (nonzero). The result is 1 for true, 0 for false. It is the sequential
// counterpart of the paper's linked lists for the A1 comparison.
func SortedSetApply(e shmem.Ctx, state []shmem.Addr, op, arg uint64) uint64 {
	freeSlot := -1
	for i, a := range state {
		v := e.Load(a)
		if v == arg {
			switch op {
			case 1: // insert: duplicate
				return 0
			case 2: // delete
				e.Store(a, 0)
				return 1
			default: // search
				return 1
			}
		}
		if v == 0 && freeSlot < 0 {
			freeSlot = i
		}
	}
	if op == 1 {
		if freeSlot < 0 {
			panic("herlihy: sorted-set capacity exhausted")
		}
		e.Store(state[freeSlot], arg)
		return 1
	}
	return 0
}

package herlihy_test

import (
	"testing"
	"testing/quick"

	"repro/internal/baseline/herlihy"
	"repro/internal/sched"
	"repro/internal/shmem"
)

// counterApply is a trivial sequential object: one word, op 1 increments by
// arg and returns the new value, op 2 reads.
func counterApply(e shmem.Ctx, state []shmem.Addr, op, arg uint64) uint64 {
	switch op {
	case 1:
		v := e.Load(state[0]) + arg
		e.Store(state[0], v)
		return v
	default:
		return e.Load(state[0])
	}
}

func TestSequentialCounter(t *testing.T) {
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 14})
	obj, err := herlihy.New(s.Mem(), 2, 1, counterApply)
	if err != nil {
		t.Fatal(err)
	}
	s.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		for i := uint64(1); i <= 5; i++ {
			if got := obj.Do(e, 1, 1); got != i {
				t.Errorf("increment %d returned %d", i, got)
			}
		}
		if got := obj.Do(e, 2, 0); got != 5 {
			t.Errorf("read returned %d, want 5", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := obj.PeekState()[0]; got != 5 {
		t.Errorf("final state %d, want 5", got)
	}
}

// TestConcurrentCounter: the final count must equal the total number of
// increments no matter how processes interleave, and every increment's
// return value must be distinct (atomicity).
func TestConcurrentCounter(t *testing.T) {
	f := func(seed int64) bool {
		const (
			nCPU  = 3
			nProc = 6
			nOps  = 8
		)
		s := sched.New(sched.Config{Processors: nCPU, Seed: seed, MemWords: 1 << 16})
		obj, err := herlihy.New(s.Mem(), nProc, 1, counterApply)
		if err != nil {
			t.Fatal(err)
		}
		results := make(map[uint64]int)
		rng := s.Rand()
		for p := 0; p < nProc; p++ {
			p := p
			s.Spawn(sched.JobSpec{
				Name: "", CPU: p % nCPU, Prio: sched.Priority(rng.Intn(4)), Slot: p,
				At: rng.Int63n(200), AfterSlices: -1,
				Body: func(e *sched.Env) {
					for i := 0; i < nOps; i++ {
						v := obj.Do(e, 1, 1)
						results[v]++
					}
				},
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := obj.PeekState()[0]; got != nProc*nOps {
			t.Fatalf("seed %d: final count %d, want %d", seed, got, nProc*nOps)
		}
		for v, c := range results {
			if c != 1 {
				t.Fatalf("seed %d: increment result %d returned %d times", seed, v, c)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestSortedSetObject exercises the set semantics used by the A1 ablation.
func TestSortedSetObject(t *testing.T) {
	s := sched.New(sched.Config{Processors: 2, Seed: 2, MemWords: 1 << 16})
	obj, err := herlihy.New(s.Mem(), 2, 16, herlihy.SortedSetApply)
	if err != nil {
		t.Fatal(err)
	}
	s.SpawnAt(0, 0, 1, "a", func(e *sched.Env) {
		if obj.Do(e, 1, 10) != 1 {
			t.Error("insert 10 failed")
		}
		if obj.Do(e, 1, 10) != 0 {
			t.Error("duplicate insert succeeded")
		}
		if obj.Do(e, 3, 10) != 1 {
			t.Error("search 10 failed")
		}
		if obj.Do(e, 2, 10) != 1 {
			t.Error("delete 10 failed")
		}
		if obj.Do(e, 2, 10) != 0 {
			t.Error("double delete succeeded")
		}
	})
	s.SpawnAt(0, 1, 1, "b", func(e *sched.Env) {
		for k := uint64(20); k < 30; k++ {
			obj.Do(e, 1, k)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, v := range obj.PeekState() {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 10 {
		t.Errorf("final set has %d keys, want 10", nonzero)
	}
}

// TestHelpingCostScalesWithN: the defining property of the asynchronous
// universal construction — per-operation cost grows with the number of
// processes N, not the number of processors P. This is the contrast the
// paper's Figure 1 footnote draws (2·N·T for Herlihy [8] vs 2·P·T here).
func TestHelpingCostScalesWithN(t *testing.T) {
	cost := func(nProc int) int64 {
		s := sched.New(sched.Config{Processors: 2, Seed: 5, MemWords: 1 << 18})
		obj, err := herlihy.New(s.Mem(), nProc, 20, herlihy.SortedSetApply)
		if err != nil {
			t.Fatal(err)
		}
		var elapsed int64
		for p := 0; p < nProc; p++ {
			p := p
			s.Spawn(sched.JobSpec{Name: "", CPU: p % 2, Prio: sched.Priority(p / 2), Slot: p, At: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				start := e.Now()
				obj.Do(e, 1, uint64(p+1))
				if p == 0 {
					elapsed = e.Now() - start
				}
			}})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	c4, c16 := cost(4), cost(16)
	if c16 <= c4 {
		t.Errorf("cost did not grow with N: N=4: %d, N=16: %d", c4, c16)
	}
}

package valois_test

import (
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/baseline/valois"
	"repro/internal/check"
	"repro/internal/sched"
)

func newList(t testing.TB, s *sched.Sim, n, nodes int, seed []uint64) (*arena.Arena, *valois.List) {
	t.Helper()
	ar, err := arena.New(s.Mem(), nodes, n)
	if err != nil {
		t.Fatal(err)
	}
	l, err := valois.New(s.Mem(), ar, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) > 0 {
		if err := l.SeedAscending(seed); err != nil {
			t.Fatal(err)
		}
	}
	ar.Freeze()
	return ar, l
}

func TestSequentialSemantics(t *testing.T) {
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 16})
	_, l := newList(t, s, 1, 64, nil)
	s.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		if !l.Insert(e, 10, 0) || !l.Insert(e, 5, 0) || !l.Insert(e, 15, 0) {
			t.Error("inserts failed")
		}
		if l.Insert(e, 10, 0) {
			t.Error("duplicate insert succeeded")
		}
		if !l.Search(e, 15) || l.Search(e, 11) {
			t.Error("search wrong")
		}
		if !l.Delete(e, 5) || l.Delete(e, 5) {
			t.Error("delete wrong")
		}
		// Reinsert after delete: a fresh node is used (deferred
		// reclamation), and the key is visible again.
		if !l.Insert(e, 5, 0) {
			t.Error("reinsert after delete failed")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := l.Snapshot()
	if len(got) != 3 || got[0] != 5 || got[1] != 10 || got[2] != 15 {
		t.Errorf("final list = %v, want [5 10 15]", got)
	}
}

// TestStressWithChecker validates the CAS-only list under cross-processor
// contention with the generic structural checker.
func TestStressWithChecker(t *testing.T) {
	f := func(seed int64) bool {
		const (
			nCPU   = 3
			nProcs = 6
			nOps   = 10
		)
		s := sched.New(sched.Config{Processors: nCPU, Seed: seed, MemWords: 1 << 18})
		_, l := newList(t, s, nProcs, 1024, []uint64{2, 4, 6})
		chk := check.NewMultiListChecker(l, s.Mem())
		rng := s.Rand()
		for p := 0; p < nProcs; p++ {
			p := p
			s.Spawn(sched.JobSpec{
				Name: "", CPU: p % nCPU, Prio: sched.Priority(rng.Intn(5)), Slot: p,
				At: rng.Int63n(400), AfterSlices: -1,
				Body: func(e *sched.Env) {
					for op := 0; op < nOps; op++ {
						key := uint64(1 + e.Rand().Intn(10))
						var ok bool
						switch e.Rand().Intn(3) {
						case 0:
							chk.BeginOp(p, check.ListIns, key)
							ok = l.Insert(e, key, key)
						case 1:
							chk.BeginOp(p, check.ListDel, key)
							ok = l.Delete(e, key)
						default:
							chk.BeginOp(p, check.ListSch, key)
							ok = l.Search(e, key)
						}
						chk.EndOp(p, ok)
					}
				},
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestMarkedNodesInvisible: a logically deleted node disappears from
// snapshots even before physical unlinking.
func TestMarkedNodesInvisible(t *testing.T) {
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 16})
	_, l := newList(t, s, 1, 32, []uint64{10, 20, 30})
	s.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		if !l.Delete(e, 20) {
			t.Error("Delete(20) failed")
		}
		if l.Search(e, 20) {
			t.Error("deleted key still found")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	got := l.Snapshot()
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Errorf("list = %v, want [10 30]", got)
	}
}

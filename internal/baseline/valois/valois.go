// Package valois implements a CAS-only lock-free linked list in the lineage
// of Valois (PODC 1995, reference [13] of the paper).
//
// The paper does not run Valois's algorithm itself; it cites Greenwald and
// Cheriton's report that their CAS2 list beats it "by a factor of about ten
// under high contention" and uses that to argue the wait-free list would
// also beat it. This package exists to regenerate that secondary comparison
// (DESIGN.md experiment §3.4-valois).
//
// Substitution note: Valois's original uses auxiliary cells and reference
// counting for reclamation and is notoriously intricate; we implement the
// modern realization of the same CAS-only idea — logical deletion via a mark
// bit packed into the next pointer, with physical unlinking during traversal
// (Harris's formulation). Reclamation is deferred: deleted nodes are not
// recycled during a run (the arena must be sized for the total number of
// inserts). This preserves what the comparison measures: pure-CAS retry
// traffic under contention.
package valois

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/shmem"
)

// KeyMin and KeyMax bound the user key space (sentinel keys).
const (
	KeyMin = uint64(0)
	KeyMax = ^uint64(0)
)

// next-word packing: ref<<1 | mark.
func pack(r arena.Ref, mark uint64) uint64 { return uint64(r)<<1 | mark&1 }
func unpack(w uint64) (arena.Ref, uint64)  { return arena.Ref(w >> 1), w & 1 }

// Stats mirrors gclist.Stats for comparison tables.
type Stats struct {
	Ops          int
	Retries      int
	WorstRetries int
}

func (s *Stats) record(retries int) {
	s.Ops++
	s.Retries += retries
	if retries > s.WorstRetries {
		s.WorstRetries = retries
	}
}

// auxHopCost is the extra plain-access cost per traversed cell when the
// reference-counted model is enabled: Valois's algorithm interposes an
// auxiliary cell between every pair of nodes, doubling traversal length.
// On top of it, two reference-count RMW operations per visited cell are
// charged at the machine's synchronization cost. Greenwald and Cheriton
// attribute their reported ten-fold advantage under contention to exactly
// this overhead.
const auxHopCost = 2

// List is the CAS-only lock-free list.
type List struct {
	mem         shmem.Memory
	ar          *arena.Arena
	first, last arena.Ref
	stats       []Stats
	refCounted  bool
}

// SetRefCounted enables the reference-counted traversal cost model (see
// refCountHopCost). Call before the run starts.
func (l *List) SetRefCounted(on bool) { l.refCounted = on }

// New creates a list for n process slots. The arena must not be frozen.
func New(m shmem.Memory, ar *arena.Arena, n int) (*List, error) {
	if n < 1 {
		return nil, fmt.Errorf("valois: process count %d out of range", n)
	}
	l := &List{mem: m, ar: ar, stats: make([]Stats, n)}
	l.first = ar.Static()
	l.last = ar.Static()
	m.Poke(ar.KeyAddr(l.first), KeyMin)
	m.Poke(ar.NextAddr(l.first), pack(l.last, 0))
	m.Poke(ar.KeyAddr(l.last), KeyMax)
	m.Poke(ar.NextAddr(l.last), pack(arena.NIL, 0))
	return l, nil
}

// Stats returns the statistics for slot p.
func (l *List) Stats(p int) *Stats { return &l.stats[p] }

// TotalStats merges all slots' statistics.
func (l *List) TotalStats() Stats {
	var total Stats
	for i := range l.stats {
		total.Ops += l.stats[i].Ops
		total.Retries += l.stats[i].Retries
		if l.stats[i].WorstRetries > total.WorstRetries {
			total.WorstRetries = l.stats[i].WorstRetries
		}
	}
	return total
}

// find locates (prev, cur) such that cur is the first unmarked node with
// key >= key, physically unlinking marked nodes on the way. retries counts
// restarts caused by CAS interference.
func (l *List) find(e shmem.Ctx, key uint64, retries *int) (prev, cur arena.Ref, curKey uint64) {
retry:
	for {
		prev = l.first
		curWord := e.Load(l.ar.NextAddr(prev))
		cur, _ = unpack(curWord)
		for {
			nextWord := e.Load(l.ar.NextAddr(cur))
			succ, marked := unpack(nextWord)
			if marked == 1 {
				// Physically unlink the marked node.
				if !e.CAS(l.ar.NextAddr(prev), pack(cur, 0), pack(succ, 0)) {
					*retries++
					continue retry
				}
				cur = succ
				continue
			}
			curKey = e.Load(l.ar.KeyAddr(cur))
			if curKey >= key {
				return prev, cur, curKey
			}
			if l.refCounted {
				// Auxiliary-cell hop plus two reference-count
				// RMW operations (cost model; see auxHopCost).
				e.Delay(auxHopCost + 2*e.SyncCostUnits())
			}
			prev = cur
			cur = succ
		}
	}
}

// Insert adds key, reporting false if present.
func (l *List) Insert(e shmem.Ctx, key, val uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	retries := 0
	node, okAlloc := l.ar.Alloc(e, p)
	if !okAlloc {
		panic(fmt.Sprintf("valois: process %d exhausted its node pool (deferred reclamation: size the arena for total inserts)", p))
	}
	e.Store(l.ar.KeyAddr(node), key)
	e.Store(l.ar.ValAddr(node), val)
	for {
		prev, cur, curKey := l.find(e, key, &retries)
		if curKey == key {
			// Present. The node cannot be recycled (deferred
			// reclamation), so it is simply abandoned to the pool.
			l.ar.Free(e, p, node)
			l.stats[p].record(retries)
			return false
		}
		e.Store(l.ar.NextAddr(node), pack(cur, 0))
		if e.CAS(l.ar.NextAddr(prev), pack(cur, 0), pack(node, 0)) {
			l.stats[p].record(retries)
			return true
		}
		retries++
	}
}

// Delete removes key, reporting whether it was present. The node is only
// logically deleted (marked) and physically unlinked by subsequent
// traversals; it is never recycled during the run.
func (l *List) Delete(e shmem.Ctx, key uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	retries := 0
	for {
		prev, cur, curKey := l.find(e, key, &retries)
		if curKey != key {
			l.stats[p].record(retries)
			return false
		}
		nextWord := e.Load(l.ar.NextAddr(cur))
		succ, marked := unpack(nextWord)
		if marked == 1 {
			retries++
			continue // already being deleted; re-find
		}
		// Logical deletion: mark cur's next pointer.
		if !e.CAS(l.ar.NextAddr(cur), pack(succ, 0), pack(succ, 1)) {
			retries++
			continue
		}
		// Physical unlink (best effort; traversals finish it).
		e.CAS(l.ar.NextAddr(prev), pack(cur, 0), pack(succ, 0))
		l.stats[p].record(retries)
		return true
	}
}

// Search reports whether key is present.
func (l *List) Search(e shmem.Ctx, key uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	retries := 0
	_, _, curKey := l.find(e, key, &retries)
	l.stats[p].record(retries)
	return curKey == key
}

// SeedAscending bulk-loads the list at setup time.
func (l *List) SeedAscending(keys []uint64) error {
	prev := l.first
	for i, k := range keys {
		if k == KeyMin || k == KeyMax {
			return fmt.Errorf("valois: seed key %#x is reserved", k)
		}
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("valois: seed keys not strictly ascending at %d", i)
		}
		node := l.ar.Static()
		l.mem.Poke(l.ar.KeyAddr(node), k)
		l.mem.Poke(l.ar.ValAddr(node), k)
		l.mem.Poke(l.ar.NextAddr(node), pack(l.last, 0))
		l.mem.Poke(l.ar.NextAddr(prev), pack(node, 0))
		prev = node
	}
	return nil
}

// Snapshot returns the unmarked keys currently in the list (quiescent use).
func (l *List) Snapshot() []uint64 {
	var keys []uint64
	hops := 0
	r, _ := unpack(l.mem.Peek(l.ar.NextAddr(l.first)))
	for r != l.last && r != arena.NIL {
		if hops++; hops > l.ar.Capacity() {
			panic("valois: list cycle detected")
		}
		next, marked := unpack(l.mem.Peek(l.ar.NextAddr(r)))
		if marked == 0 {
			keys = append(keys, l.mem.Peek(l.ar.KeyAddr(r)))
		}
		r = next
	}
	return keys
}

func (l *List) checkKey(key uint64) {
	if key == KeyMin || key == KeyMax {
		panic(fmt.Sprintf("valois: key %#x is reserved for sentinels", key))
	}
}

package gclist_test

import (
	"testing"
	"testing/quick"

	"repro/internal/arena"
	"repro/internal/baseline/gclist"
	"repro/internal/check"
	"repro/internal/sched"
)

type fixture struct {
	sim  *sched.Sim
	ar   *arena.Arena
	list *gclist.List
}

func newFixture(t testing.TB, scfg sched.Config, n, nodes int, seed []uint64) *fixture {
	t.Helper()
	if scfg.MemWords == 0 {
		scfg.MemWords = 1 << 17
	}
	s := sched.New(scfg)
	ar, err := arena.New(s.Mem(), nodes, n)
	if err != nil {
		t.Fatal(err)
	}
	l, err := gclist.New(s.Mem(), ar, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) > 0 {
		if err := l.SeedAscending(seed); err != nil {
			t.Fatal(err)
		}
	}
	ar.Freeze()
	return &fixture{sim: s, ar: ar, list: l}
}

func TestSequentialSemantics(t *testing.T) {
	fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 32, nil)
	fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		l := fx.list
		if !l.Insert(e, 10, 0) || !l.Insert(e, 5, 0) || !l.Insert(e, 15, 0) {
			t.Error("inserts failed")
		}
		if l.Insert(e, 10, 0) {
			t.Error("duplicate insert succeeded")
		}
		if !l.Search(e, 15) || l.Search(e, 11) {
			t.Error("search wrong")
		}
		if !l.Delete(e, 5) || l.Delete(e, 5) {
			t.Error("delete wrong")
		}
	})
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	got := fx.list.Snapshot()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Errorf("final list = %v, want [10 15]", got)
	}
	if s := fx.list.TotalStats(); s.Ops != 8 {
		t.Errorf("stats recorded %d ops, want 8", s.Ops)
	}
}

// TestStressWithChecker: the generic list checker validates gclist under
// cross-processor contention with preemption.
func TestStressWithChecker(t *testing.T) {
	f := func(seed int64) bool {
		const (
			nCPU   = 3
			nProcs = 6
			nOps   = 10
		)
		fx := newFixture(t, sched.Config{Processors: nCPU, Seed: seed, MemWords: 1 << 17},
			nProcs, 256, []uint64{2, 4, 6})
		chk := check.NewMultiListChecker(fx.list, fx.sim.Mem())
		rng := fx.sim.Rand()
		for p := 0; p < nProcs; p++ {
			p := p
			fx.sim.Spawn(sched.JobSpec{
				Name: "", CPU: p % nCPU, Prio: sched.Priority(rng.Intn(5)), Slot: p,
				At: rng.Int63n(400), AfterSlices: -1,
				Body: func(e *sched.Env) {
					for op := 0; op < nOps; op++ {
						key := uint64(1 + e.Rand().Intn(10))
						var ok bool
						switch e.Rand().Intn(3) {
						case 0:
							chk.BeginOp(p, check.ListIns, key)
							ok = fx.list.Insert(e, key, key)
						case 1:
							chk.BeginOp(p, check.ListDel, key)
							ok = fx.list.Delete(e, key)
						default:
							chk.BeginOp(p, check.ListSch, key)
							ok = fx.list.Search(e, key)
						}
						chk.EndOp(p, ok)
					}
				},
			})
		}
		if err := fx.sim.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestRetriesUnderContention: concurrent updaters on other processors force
// retries (the behaviour the paper's worst-case comparison is about), while
// an uncontended run needs none.
func TestRetriesUnderContention(t *testing.T) {
	uncontended := func() int {
		fx := newFixture(t, sched.Config{Processors: 1, Seed: 1}, 1, 64, nil)
		fx.sim.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
			for i := 1; i <= 20; i++ {
				fx.list.Insert(e, uint64(i), 0)
			}
		})
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return fx.list.TotalStats().WorstRetries
	}()
	if uncontended != 0 {
		t.Errorf("uncontended run had %d retries, want 0", uncontended)
	}

	contended := func() int {
		fx := newFixture(t, sched.Config{Processors: 4, Seed: 2, MemWords: 1 << 18}, 4, 512, []uint64{50})
		for cpu := 0; cpu < 4; cpu++ {
			cpu := cpu
			fx.sim.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, At: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				for i := 0; i < 30; i++ {
					key := uint64(1 + e.Rand().Intn(40))
					if e.Rand().Intn(2) == 0 {
						fx.list.Insert(e, key, 0)
					} else {
						fx.list.Delete(e, key)
					}
				}
			}})
		}
		if err := fx.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return fx.list.TotalStats().WorstRetries
	}()
	if contended == 0 {
		t.Error("contended 4-processor run had zero retries; contention instrumentation broken")
	}
}

// TestNodeConservation: immediate recycling never loses or duplicates nodes.
func TestNodeConservation(t *testing.T) {
	const nProcs = 4
	fx := newFixture(t, sched.Config{Processors: 2, Seed: 3, MemWords: 1 << 17}, nProcs, 64, nil)
	usable := 0
	for p := 0; p < nProcs; p++ {
		usable += fx.ar.FreeCount(p)
	}
	for p := 0; p < nProcs; p++ {
		p := p
		fx.sim.Spawn(sched.JobSpec{Name: "", CPU: p % 2, Prio: sched.Priority(p / 2), Slot: p, At: int64(p * 5), AfterSlices: -1, Body: func(e *sched.Env) {
			for i := 0; i < 30; i++ {
				key := uint64(1 + e.Rand().Intn(8))
				if e.Rand().Intn(2) == 0 {
					fx.list.Insert(e, key, 0)
				} else {
					fx.list.Delete(e, key)
				}
			}
		}})
	}
	if err := fx.sim.Run(); err != nil {
		t.Fatal(err)
	}
	free := 0
	for p := 0; p < nProcs; p++ {
		free += fx.ar.FreeCount(p)
	}
	if free+len(fx.list.Snapshot()) != usable {
		t.Errorf("node conservation violated: %d free + %d listed != %d usable", free, len(fx.list.Snapshot()), usable)
	}
}

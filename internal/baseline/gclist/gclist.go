// Package gclist implements the lock-free linked list the paper benchmarks
// against in Section 3.4: Greenwald and Cheriton's CAS2-based design from
// "The Synergy Between Non-blocking Synchronization and Operating System
// Structure" (OSDI 1996), reference [7].
//
// The design is the one the paper describes as "a very simple lock-free
// retry loop": the list is guarded by a global version counter; an operation
// scans the list privately, then commits with a single CAS2 (two-word
// compare-and-swap) that simultaneously checks the version counter is
// unchanged and splices the predecessor's next pointer, incrementing the
// version. Any successful update invalidates every concurrent operation,
// which then retries from scratch.
//
// The original is closed source and ran on type-stable kernel memory; this
// reconstruction preserves the essential behaviour — short optimistic
// retries, unbounded worst case under preemption, immediate node reuse made
// safe by the version counter (a recycled node implies a version bump, which
// makes every concurrent CAS2 fail). Retry counts are instrumented; they are
// the paper's worst-case comparison metric ("worst-case values of 10 to 30
// retries were common").
package gclist

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/shmem"
)

// KeyMin and KeyMax bound the user key space (sentinel keys).
const (
	KeyMin = uint64(0)
	KeyMax = ^uint64(0)
)

// Stats accumulates retry-loop statistics across operations.
type Stats struct {
	// Ops is the number of completed operations.
	Ops int
	// Retries is the total number of retries (attempts beyond the
	// first).
	Retries int
	// WorstRetries is the largest retry count of any single operation.
	WorstRetries int
	// RetryHist counts operations by retry count (index capped at
	// len-1).
	RetryHist [64]int
}

func (s *Stats) record(retries int) {
	s.Ops++
	s.Retries += retries
	if retries > s.WorstRetries {
		s.WorstRetries = retries
	}
	idx := retries
	if idx >= len(s.RetryHist) {
		idx = len(s.RetryHist) - 1
	}
	s.RetryHist[idx]++
}

// List is the version-guarded lock-free list.
type List struct {
	mem shmem.Memory
	ar  *arena.Arena

	version     shmem.Addr
	first, last arena.Ref
	stats       []Stats // per process slot
}

// New creates a list for n process slots. The arena must not be frozen.
func New(m shmem.Memory, ar *arena.Arena, n int) (*List, error) {
	if n < 1 {
		return nil, fmt.Errorf("gclist: process count %d out of range", n)
	}
	version, err := m.Alloc("GCVersion", 1)
	if err != nil {
		return nil, fmt.Errorf("gclist: %w", err)
	}
	l := &List{mem: m, ar: ar, version: version, stats: make([]Stats, n)}
	l.first = ar.Static()
	l.last = ar.Static()
	m.Poke(ar.KeyAddr(l.first), KeyMin)
	m.Poke(ar.NextAddr(l.first), uint64(l.last))
	m.Poke(ar.KeyAddr(l.last), KeyMax)
	m.Poke(ar.NextAddr(l.last), uint64(arena.NIL))
	return l, nil
}

// Stats returns the accumulated statistics for process slot p.
func (l *List) Stats(p int) *Stats { return &l.stats[p] }

// TotalStats merges all slots' statistics.
func (l *List) TotalStats() Stats {
	var total Stats
	for i := range l.stats {
		s := &l.stats[i]
		total.Ops += s.Ops
		total.Retries += s.Retries
		if s.WorstRetries > total.WorstRetries {
			total.WorstRetries = s.WorstRetries
		}
		for j, c := range s.RetryHist {
			total.RetryHist[j] += c
		}
	}
	return total
}

// scan locates the predecessor of the first node with key >= key under the
// given version. It reports !ok if the structure changed underfoot (version
// bump or a bounded-scan overflow caused by node recycling).
func (l *List) scan(e shmem.Ctx, key, ver uint64) (prev, next arena.Ref, nextKey uint64, ok bool) {
	prev = l.first
	for hops := 0; ; hops++ {
		if hops > l.ar.Capacity() {
			return 0, 0, 0, false // cycle via recycled nodes: retry
		}
		next = arena.Ref(e.Load(l.ar.NextAddr(prev)))
		if next == arena.NIL {
			return 0, 0, 0, false // walked onto a recycled node
		}
		nextKey = e.Load(l.ar.KeyAddr(next))
		if nextKey >= key {
			break
		}
		prev = next
	}
	if e.Load(l.version) != ver {
		return 0, 0, 0, false
	}
	return prev, next, nextKey, true
}

// Insert adds key, reporting false if present.
func (l *List) Insert(e shmem.Ctx, key, val uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	node, okAlloc := l.ar.Alloc(e, p)
	if !okAlloc {
		panic(fmt.Sprintf("gclist: process %d exhausted its node pool", p))
	}
	e.Store(l.ar.KeyAddr(node), key)
	e.Store(l.ar.ValAddr(node), val)
	retries := 0
	for ; ; retries++ {
		ver := e.Load(l.version)
		prev, next, nextKey, ok := l.scan(e, key, ver)
		if !ok {
			continue
		}
		if nextKey == key {
			// Present: linearize via the unchanged version.
			if e.Load(l.version) != ver {
				continue
			}
			l.ar.Free(e, p, node)
			l.stats[p].record(retries)
			return false
		}
		e.Store(l.ar.NextAddr(node), uint64(next))
		if e.CAS2(l.version, l.ar.NextAddr(prev), ver, uint64(next), ver+1, uint64(node)) {
			l.stats[p].record(retries)
			return true
		}
	}
}

// Delete removes key, reporting whether it was present. The node is
// recycled immediately (safe: recycling implies a version bump).
func (l *List) Delete(e shmem.Ctx, key uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	retries := 0
	for ; ; retries++ {
		ver := e.Load(l.version)
		prev, next, nextKey, ok := l.scan(e, key, ver)
		if !ok {
			continue
		}
		if nextKey != key {
			if e.Load(l.version) != ver {
				continue
			}
			l.stats[p].record(retries)
			return false
		}
		succ := e.Load(l.ar.NextAddr(next))
		if e.Load(l.version) != ver {
			continue // succ read may be stale
		}
		if e.CAS2(l.version, l.ar.NextAddr(prev), ver, uint64(next), ver+1, succ) {
			l.ar.Free(e, p, next)
			l.stats[p].record(retries)
			return true
		}
	}
}

// Search reports whether key is present, validating against the version.
func (l *List) Search(e shmem.Ctx, key uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	retries := 0
	for ; ; retries++ {
		ver := e.Load(l.version)
		_, _, nextKey, ok := l.scan(e, key, ver)
		if !ok {
			continue
		}
		l.stats[p].record(retries)
		return nextKey == key
	}
}

// SeedAscending bulk-loads the list at setup time.
func (l *List) SeedAscending(keys []uint64) error {
	prev := l.first
	for i, k := range keys {
		if k == KeyMin || k == KeyMax {
			return fmt.Errorf("gclist: seed key %#x is reserved", k)
		}
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("gclist: seed keys not strictly ascending at %d", i)
		}
		node := l.ar.Static()
		l.mem.Poke(l.ar.KeyAddr(node), k)
		l.mem.Poke(l.ar.ValAddr(node), k)
		l.mem.Poke(l.ar.NextAddr(node), uint64(l.last))
		l.mem.Poke(l.ar.NextAddr(prev), uint64(node))
		prev = node
	}
	return nil
}

// Snapshot returns the keys currently in the list (quiescent use only).
func (l *List) Snapshot() []uint64 {
	var keys []uint64
	r := arena.Ref(l.mem.Peek(l.ar.NextAddr(l.first)))
	for r != l.last && r != arena.NIL {
		keys = append(keys, l.mem.Peek(l.ar.KeyAddr(r)))
		if len(keys) > l.ar.Capacity() {
			panic("gclist: list cycle detected")
		}
		r = arena.Ref(l.mem.Peek(l.ar.NextAddr(r)))
	}
	return keys
}

func (l *List) checkKey(key uint64) {
	if key == KeyMin || key == KeyMax {
		panic(fmt.Sprintf("gclist: key %#x is reserved for sentinels", key))
	}
}

// Package locklist implements a sorted linked list protected by a
// test-and-set spin lock.
//
// It exists to demonstrate the failure mode that motivates the paper's
// wait-free constructions (Section 1): on a priority-scheduled uniprocessor,
// a lock holder preempted inside its critical section can never run again
// while a higher-priority process spins on the lock — unbounded priority
// inversion, which in a kernel becomes deadlock. The package's tests show
// the simulator's watchdog catching exactly this, while the same code runs
// fine when the lock holder cannot be preempted mid-section.
package locklist

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/shmem"
)

// KeyMin and KeyMax bound the user key space (sentinel keys).
const (
	KeyMin = uint64(0)
	KeyMax = ^uint64(0)
)

// List is a lock-protected sorted list.
type List struct {
	mem         shmem.Memory
	ar          *arena.Arena
	lock        shmem.Addr
	first, last arena.Ref

	// Spins counts lock-acquisition spin iterations (contention metric).
	Spins int
}

// New creates a list for processes that allocate from ar.
func New(m shmem.Memory, ar *arena.Arena) (*List, error) {
	lock, err := m.Alloc("ListLock", 1)
	if err != nil {
		return nil, fmt.Errorf("locklist: %w", err)
	}
	l := &List{mem: m, ar: ar, lock: lock}
	l.first = ar.Static()
	l.last = ar.Static()
	m.Poke(ar.KeyAddr(l.first), KeyMin)
	m.Poke(ar.NextAddr(l.first), uint64(l.last))
	m.Poke(ar.KeyAddr(l.last), KeyMax)
	m.Poke(ar.NextAddr(l.last), uint64(arena.NIL))
	return l, nil
}

// Lock acquires the list lock explicitly. Exposed so demonstrations can
// hold the lock across a preemption point; normal operations manage the
// lock themselves.
func (l *List) Lock(e shmem.Ctx) { l.acquire(e) }

// Unlock releases the list lock acquired with Lock.
func (l *List) Unlock(e shmem.Ctx) { l.release(e) }

// acquire spins on the test-and-set lock.
func (l *List) acquire(e shmem.Ctx) {
	for !e.CAS(l.lock, 0, 1) {
		l.Spins++
		e.Yield() // a preemption point; the spin burns processor time
	}
}

// release frees the lock.
func (l *List) release(e shmem.Ctx) {
	e.Store(l.lock, 0)
}

// scan finds the predecessor of the first node with key >= key. Caller must
// hold the lock.
func (l *List) scan(e shmem.Ctx, key uint64) (prev, next arena.Ref, nextKey uint64) {
	prev = l.first
	for {
		next = arena.Ref(e.Load(l.ar.NextAddr(prev)))
		nextKey = e.Load(l.ar.KeyAddr(next))
		if nextKey >= key {
			return prev, next, nextKey
		}
		prev = next
	}
}

// Insert adds key, reporting false if present.
func (l *List) Insert(e shmem.Ctx, key, val uint64) bool {
	l.checkKey(key)
	p := e.Slot()
	node, ok := l.ar.Alloc(e, p)
	if !ok {
		panic(fmt.Sprintf("locklist: process %d exhausted its node pool", p))
	}
	e.Store(l.ar.KeyAddr(node), key)
	e.Store(l.ar.ValAddr(node), val)
	l.acquire(e)
	prev, next, nextKey := l.scan(e, key)
	if nextKey == key {
		l.release(e)
		l.ar.Free(e, p, node)
		return false
	}
	e.Store(l.ar.NextAddr(node), uint64(next))
	e.Store(l.ar.NextAddr(prev), uint64(node))
	l.release(e)
	return true
}

// Delete removes key, reporting whether it was present.
func (l *List) Delete(e shmem.Ctx, key uint64) bool {
	l.checkKey(key)
	l.acquire(e)
	prev, next, nextKey := l.scan(e, key)
	if nextKey != key {
		l.release(e)
		return false
	}
	succ := e.Load(l.ar.NextAddr(next))
	e.Store(l.ar.NextAddr(prev), succ)
	l.release(e)
	l.ar.Free(e, e.Slot(), next)
	return true
}

// Search reports whether key is present.
func (l *List) Search(e shmem.Ctx, key uint64) bool {
	l.checkKey(key)
	l.acquire(e)
	_, _, nextKey := l.scan(e, key)
	l.release(e)
	return nextKey == key
}

// SeedAscending bulk-loads the list at setup time.
func (l *List) SeedAscending(keys []uint64) error {
	prev := l.first
	for i, k := range keys {
		if k == KeyMin || k == KeyMax {
			return fmt.Errorf("locklist: seed key %#x is reserved", k)
		}
		if i > 0 && keys[i-1] >= k {
			return fmt.Errorf("locklist: seed keys not strictly ascending at %d", i)
		}
		node := l.ar.Static()
		l.mem.Poke(l.ar.KeyAddr(node), k)
		l.mem.Poke(l.ar.ValAddr(node), k)
		l.mem.Poke(l.ar.NextAddr(node), uint64(l.last))
		l.mem.Poke(l.ar.NextAddr(prev), uint64(node))
		prev = node
	}
	return nil
}

// Snapshot returns the keys currently in the list (quiescent use).
func (l *List) Snapshot() []uint64 {
	var keys []uint64
	r := arena.Ref(l.mem.Peek(l.ar.NextAddr(l.first)))
	for r != l.last && r != arena.NIL {
		keys = append(keys, l.mem.Peek(l.ar.KeyAddr(r)))
		if len(keys) > l.ar.Capacity() {
			panic("locklist: list cycle detected")
		}
		r = arena.Ref(l.mem.Peek(l.ar.NextAddr(r)))
	}
	return keys
}

func (l *List) checkKey(key uint64) {
	if key == KeyMin || key == KeyMax {
		panic(fmt.Sprintf("locklist: key %#x is reserved for sentinels", key))
	}
}

package locklist_test

import (
	"errors"
	"testing"

	"repro/internal/arena"
	"repro/internal/baseline/locklist"
	"repro/internal/sched"
)

func newList(t testing.TB, s *sched.Sim, slots, nodes int) (*arena.Arena, *locklist.List) {
	t.Helper()
	ar, err := arena.New(s.Mem(), nodes, slots)
	if err != nil {
		t.Fatal(err)
	}
	l, err := locklist.New(s.Mem(), ar)
	if err != nil {
		t.Fatal(err)
	}
	ar.Freeze()
	return ar, l
}

func TestSequentialSemantics(t *testing.T) {
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 16})
	_, l := newList(t, s, 1, 32)
	s.SpawnAt(0, 0, 1, "p", func(e *sched.Env) {
		if !l.Insert(e, 10, 0) || !l.Insert(e, 5, 0) || l.Insert(e, 10, 0) {
			t.Error("insert semantics wrong")
		}
		if !l.Search(e, 5) || l.Search(e, 6) {
			t.Error("search semantics wrong")
		}
		if !l.Delete(e, 10) || l.Delete(e, 10) {
			t.Error("delete semantics wrong")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := l.Snapshot(); len(got) != 1 || got[0] != 5 {
		t.Errorf("final list = %v, want [5]", got)
	}
}

// TestMultiprocessorWithoutPreemptionWorks: with one process per processor
// (no preemption), the lock-based list is perfectly fine.
func TestMultiprocessorWithoutPreemptionWorks(t *testing.T) {
	s := sched.New(sched.Config{Processors: 4, Seed: 2, MemWords: 1 << 16})
	_, l := newList(t, s, 4, 128)
	for cpu := 0; cpu < 4; cpu++ {
		cpu := cpu
		s.Spawn(sched.JobSpec{Name: "", CPU: cpu, Prio: 1, Slot: cpu, At: 0, AfterSlices: -1, Body: func(e *sched.Env) {
			for i := 0; i < 20; i++ {
				key := uint64(1 + e.Rand().Intn(30))
				if e.Rand().Intn(2) == 0 {
					l.Insert(e, key, 0)
				} else {
					l.Delete(e, key)
				}
			}
		}})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("list unsorted or duplicated: %v", snap)
		}
	}
}

// TestPriorityInversionLivelock is ablation A5: on a priority uniprocessor,
// a higher-priority process spinning on a lock held by a preempted
// lower-priority process spins forever. The run's step watchdog detects the
// livelock. This is the motivating failure for wait-free kernel objects
// (Section 1).
func TestPriorityInversionLivelock(t *testing.T) {
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 16, MaxSteps: 200_000})
	_, l := newList(t, s, 2, 128)
	// Low priority: holds the lock across a long critical section.
	s.Spawn(sched.JobSpec{Name: "low", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		l.Lock(e)
		for i := 1; i <= 100; i++ {
			e.Yield() // critical-section work with preemption points
		}
		l.Unlock(e)
	}})
	// High priority: arrives mid-critical-section and spins forever.
	s.Spawn(sched.JobSpec{Name: "high", CPU: 0, Prio: 9, Slot: 1, AfterSlices: 40, Body: func(e *sched.Env) {
		l.Search(e, 1)
	}})
	err := s.Run()
	if !errors.Is(err, sched.ErrWatchdog) {
		t.Fatalf("Run err = %v, want watchdog livelock (unbounded priority inversion)", err)
	}
	if l.Spins == 0 {
		t.Error("no spins recorded; the high-priority process never contended")
	}
}

// TestInversionAvoidedIfNotMidSection: the same two processes do not
// livelock when the preemption lands outside the critical section.
func TestInversionAvoidedIfNotMidSection(t *testing.T) {
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 16, MaxSteps: 200_000})
	_, l := newList(t, s, 2, 64)
	s.Spawn(sched.JobSpec{Name: "low", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		for i := 1; i <= 10; i++ {
			l.Insert(e, uint64(i), 0)
		}
	}})
	// Released at a virtual time when the low process is between
	// operations (the lock is free): t=0 arrival preempts before the
	// first acquire.
	s.Spawn(sched.JobSpec{Name: "high", CPU: 0, Prio: 9, Slot: 1, At: 1, AfterSlices: -1, Body: func(e *sched.Env) {
		l.Search(e, 1)
	}})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v (no inversion expected)", err)
	}
}

// Package native is the real-hardware execution backend: the counterpart of
// the discrete simulator (internal/sched) behind the shmem.Ctx / shmem.Memory
// seam. Words are a real []uint64 operated on with sync/atomic, processes are
// real goroutines, and the race detector — not a virtual-time scheduler — is
// the memory-model oracle.
//
// What the backend preserves from the paper's machine model, and how:
//
//   - Priority scheduling. The uniprocessor algorithms (Figures 3 and 5) are
//     only correct under strict priority scheduling: a preempted process
//     resumes only after every higher-priority process has finished. A shard
//     (world.go) enforces exactly that discipline over a set of goroutines,
//     turning each one into a "processor" in the paper's sense.
//   - CCAS. Hardware has no CCAS (the premise of Figure 8), so the backend
//     refuses prim.Native and runs the software constructions from
//     internal/prim; Tagged's no-preemption window maps to the shard's
//     NoPreempt.
//   - CAS2. Hardware has no double-word CAS either; Mem emulates it behind a
//     guard word (see CAS2 below). The emulation is honest about what it is:
//     a tiny lock, not a lock-free primitive — which is itself the paper's
//     argument for why the Greenwald–Cheriton baseline is not portable.
package native

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/shmem"
)

// Mem is a shared memory of real 64-bit words. It implements shmem.Memory
// for setup and teardown; running processes operate on it through Proc
// (shmem.Ctx). All word access — including Peek/Poke — is performed with
// sync/atomic, so snapshots taken after a goroutine join are race-clean.
type Mem struct {
	words []uint64
	next  int
	// regions records allocations newest-first for Name, mirroring the
	// simulated memory's debug naming.
	regions []region
	// guard serializes CAS2 emulation (see CAS2).
	guard atomic.Uint32
}

type region struct {
	name    string
	base, n int
}

// NewMem returns a native memory of the given capacity in words.
func NewMem(words int) *Mem {
	if words <= 0 {
		panic(fmt.Sprintf("native: memory capacity %d must be positive", words))
	}
	return &Mem{words: make([]uint64, words)}
}

// Alloc reserves n consecutive words under a debug name. It is setup-time
// API: callers allocate before spawning processes.
func (m *Mem) Alloc(name string, n int) (shmem.Addr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("native: allocation %q of %d words", name, n)
	}
	if m.next+n > len(m.words) {
		return 0, fmt.Errorf("native: %w: %q needs %d words, %d of %d free",
			shmem.ErrOutOfMemory, name, n, len(m.words)-m.next, len(m.words))
	}
	base := m.next
	m.next += n
	m.regions = append(m.regions, region{name: name, base: base, n: n})
	return shmem.Addr(base), nil
}

// MustAlloc is Alloc for setup code that sizes its memory up front.
func (m *Mem) MustAlloc(name string, n int) shmem.Addr {
	a, err := m.Alloc(name, n)
	if err != nil {
		panic(err)
	}
	return a
}

// Peek reads a word without process context (checkers, snapshots). The load
// is atomic, so post-join snapshot reads are race-clean.
func (m *Mem) Peek(a shmem.Addr) uint64 { return atomic.LoadUint64(&m.words[a]) }

// Poke writes a word without process context (setup code).
func (m *Mem) Poke(a shmem.Addr, v uint64) { atomic.StoreUint64(&m.words[a], v) }

// Name returns a human-readable description of an address.
func (m *Mem) Name(a shmem.Addr) string {
	i := int(a)
	for _, r := range m.regions {
		if i >= r.base && i < r.base+r.n {
			if r.n == 1 {
				return r.name
			}
			return fmt.Sprintf("%s[%d]", r.name, i-r.base)
		}
	}
	return fmt.Sprintf("word%d", i)
}

// Capacity returns the total number of words.
func (m *Mem) Capacity() int { return len(m.words) }

// Allocated returns the number of words handed out so far.
func (m *Mem) Allocated() int { return m.next }

func (m *Mem) load(a shmem.Addr) uint64     { return atomic.LoadUint64(&m.words[a]) }
func (m *Mem) store(a shmem.Addr, v uint64) { atomic.StoreUint64(&m.words[a], v) }

func (m *Mem) cas(a shmem.Addr, old, val uint64) bool {
	return atomic.CompareAndSwapUint64(&m.words[a], old, val)
}

// cas2 emulates double-word compare-and-swap behind a spin-acquired guard
// word. Concurrent CAS2s serialize on the guard; on success the data word
// (a2) is stored before the control word (a1), because the one consumer
// (the Greenwald–Cheriton baseline) passes (version, pointer) and validates
// its reads against the version word — a reader that observes the new
// pointer under the old version sees a state the committing operation has
// already reached within its own invoke–response window, which linearizes.
//
// The guard makes CAS2 blocking, not lock-free: a goroutine descheduled
// between acquire and release stalls other CAS2s. That is the honest cost
// of emulating a primitive real hardware does not have — the paper's own
// premise (Section 3.4) for preferring CAS-plus-CCAS constructions. The
// returned retry count is the number of guard-acquisition spins — the
// direct measure of that cost, surfaced by the observability layer as
// the cas2_guard_retries counter.
func (m *Mem) cas2(a1, a2 shmem.Addr, old1, old2, new1, new2 uint64) (ok bool, retries int) {
	for !m.guard.CompareAndSwap(0, 1) {
		retries++
		runtime.Gosched()
	}
	if m.load(a1) != old1 || m.load(a2) != old2 {
		m.guard.Store(0)
		return false, retries
	}
	m.store(a2, new2)
	m.store(a1, new1)
	m.guard.Store(0)
	return true, retries
}

var _ shmem.Memory = (*Mem)(nil)

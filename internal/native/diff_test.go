// Differential test: the simulator and the native backend must implement
// the same objects (satellite of the native-backend tentpole). Histories
// recorded from real concurrent goroutines are fed to the same Wing–Gong
// engine that certifies simulator schedules; a bug that only real hardware
// can expose (a missing fence, a shard handoff hole, an unsound CAS2
// emulation) shows up as a non-linearizable history here.
//
// Runs are kept small — a handful of processes and operations per seed —
// because Wing–Gong search cost grows with the overlap the recorder
// observes, and because small histories make failures readable.
package native_test

import (
	"fmt"
	"testing"

	"repro/internal/linz"
	"repro/internal/registry"
)

func diffSeeds() []int64 {
	if testing.Short() {
		return []int64{1, 2}
	}
	return []int64{1, 2, 3, 4, 5}
}

func TestNativeDifferential(t *testing.T) {
	const procs, ops = 4, 6
	for _, d := range registry.All() {
		for _, seed := range diffSeeds() {
			t.Run(fmt.Sprintf("%s/seed%d", d.Name, seed), func(t *testing.T) {
				d, seed := d, seed
				t.Parallel()
				cfg := d.StressConfig(procs)
				cfg.Check = false
				var rec *linz.Recorder
				res, err := d.RunNative(registry.NativeRun{
					Procs: procs, Ops: ops, Seed: seed, Cfg: cfg,
					Wrap: func(inst registry.Instance) registry.Instance {
						r, wrapped := linz.RecordShared(inst)
						rec = r
						return wrapped
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				h := rec.History()
				if len(h.Ops) != procs*ops {
					t.Fatalf("recorded %d ops, want %d", len(h.Ops), procs*ops)
				}
				out, err := linz.Check(h, linz.SpecFor(d, cfg), linz.Options{})
				if err != nil {
					t.Fatalf("engine gave up: %v", err)
				}
				if !out.OK {
					t.Errorf("native history of %s (seed %d) is not linearizable\n%s\ncounterexample:\n%s",
						d.Name, seed, h.Text(), out.Counterexample.Tree(h))
				}
				_ = res
			})
		}
	}
}

package native

// Observability for the native backend: per-goroutine atomic counter
// blocks, lock-free latency histograms, and a flight recorder of
// per-goroutine trace-event ring buffers, drained post-run into the same
// trace.Log / metrics shapes the simulator produces.
//
// Design constraints, in order:
//
//  1. Zero overhead when disabled. A world without EnableObs must run the
//     exact hot path it ran before this layer existed, plus at most a nil
//     check (internal/native's obs regression test gates this with an
//     allocation count and a ns/op ratio).
//  2. No locks on the hot path when enabled. Counters are per-goroutine
//     padded atomic blocks (one writer, any number of snapshot readers);
//     the latency histogram has fixed power-of-two buckets, so observing
//     a sample is one atomic increment; the flight recorder is a
//     per-goroutine overwrite-oldest ring with a single writer. The only
//     shared mutable word is the recorder's global sequence counter (one
//     atomic add per recorded event), which buys an exact causal order
//     at drain time.
//  3. Deterministic drain. DrainTrace orders events by the global
//     sequence — the true happens-before order for shard-serialized
//     events — and clamps wall-clock timestamps to be monotone per CPU,
//     so the resulting log satisfies trace.Log's per-processor
//     monotonicity invariant and tracex.Build reconstructs spans exactly
//     as it does for simulator logs.

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// ObsConfig selects which observability layers a world collects.
type ObsConfig struct {
	// Metrics enables the per-goroutine counter blocks and latency
	// histograms (ProcStats).
	Metrics bool
	// Recorder enables the flight recorder: per-goroutine ring buffers of
	// trace events drained by DrainTrace.
	Recorder bool
	// RingCap is the per-goroutine ring capacity in events (default
	// DefaultRingCap). When a goroutine records more, the oldest events
	// are overwritten and counted as dropped.
	RingCap int
}

// DefaultRingCap is the per-goroutine flight-recorder capacity when
// ObsConfig.RingCap is zero.
const DefaultRingCap = 4096

// obsState is the world-level observability context shared by its procs.
type obsState struct {
	cfg   ObsConfig
	epoch time.Time
	// seq is the recorder's global event sequence. It is the only shared
	// word the hot path touches (one atomic add per recorded event).
	seq atomic.Uint64
	// lastWriter[a] holds slot+1 of the last process that wrote word a
	// (0 = setup code or unknown), maintained only while the recorder is
	// on; it attributes CAS failures to the winning writer, which is what
	// turns a failed CAS into a causality edge in the span model.
	lastWriter []atomic.Int32
	// procs registers every Proc created under this world, for drain and
	// aggregation.
	procs []*Proc
}

// EnableObs switches observability on for this world. Call it before
// NewProc — procs created earlier collect nothing. mem is consulted to
// size the CAS-failure attribution table when the recorder is enabled.
func (w *World) EnableObs(cfg ObsConfig) {
	if cfg.RingCap <= 0 {
		cfg.RingCap = DefaultRingCap
	}
	o := &obsState{cfg: cfg, epoch: time.Now()}
	if cfg.Recorder {
		o.lastWriter = make([]atomic.Int32, w.mem.Capacity())
	}
	w.obs = o
}

// ProcStats is one process's padded, atomically-updated counter block.
// The process goroutine is the only writer; progress pollers and the
// post-run aggregator read with atomic loads, so snapshots are race-clean
// at any moment. The pads keep two processes' blocks off one cache line.
type ProcStats struct {
	_ [64]byte // leading pad

	// Ops counts completed abstract operations (End calls);
	// Dispatches counts times the process became its shard's runner;
	// Preemptions counts times a higher-priority arrival displaced it.
	Ops         atomic.Uint64
	Dispatches  atomic.Uint64
	Preemptions atomic.Uint64
	// MaxPreemptDepth is the deepest shard preempted-stack this process
	// was ever buried at (its own position, 1-based).
	MaxPreemptDepth atomic.Uint64
	// CAS2GuardRetries counts spin iterations waiting for the CAS2
	// emulation's guard word.
	CAS2GuardRetries atomic.Uint64

	// hist is the per-op wall-clock latency histogram (ns, Begin→End —
	// response time including shard wait, the figure the "practically
	// wait-free" question is about).
	hist atomicHist

	_ [64]byte // trailing pad
}

// atomicHist is the lock-free collection form of metrics.Hist: fixed
// power-of-two buckets updated with atomic increments.
type atomicHist struct {
	count   atomic.Uint64
	buckets [metrics.HistBuckets]atomic.Uint64
}

func (h *atomicHist) observe(v int64) {
	h.buckets[metrics.HistBucket(v)].Add(1)
	h.count.Add(1)
}

// snapshot drains the atomic histogram into the plain report form.
func (h *atomicHist) snapshot() *metrics.Hist {
	out := &metrics.Hist{Count: h.count.Load()}
	for i := range h.buckets {
		out.Buckets[i] = h.buckets[i].Load()
	}
	return out
}

// StatsSnapshot is a plain-data copy of a ProcStats block, safe to take
// while the process is still running.
type StatsSnapshot struct {
	Ops              uint64
	Dispatches       uint64
	Preemptions      uint64
	MaxPreemptDepth  uint64
	CAS2GuardRetries uint64
	Latency          *metrics.Hist
}

// Stats snapshots this process's counter block; nil when the world's
// metrics layer is off.
func (p *Proc) Stats() *StatsSnapshot {
	s := p.stats
	if s == nil {
		return nil
	}
	return &StatsSnapshot{
		Ops:              s.Ops.Load(),
		Dispatches:       s.Dispatches.Load(),
		Preemptions:      s.Preemptions.Load(),
		MaxPreemptDepth:  s.MaxPreemptDepth.Load(),
		CAS2GuardRetries: s.CAS2GuardRetries.Load(),
		Latency:          s.hist.snapshot(),
	}
}

// maxDepth raises MaxPreemptDepth to d if larger. Single writer, so a
// load-check-store is enough; the atomic store keeps readers race-clean.
func (s *ProcStats) maxDepth(d uint64) {
	if d > s.MaxPreemptDepth.Load() {
		s.MaxPreemptDepth.Store(d)
	}
}

// recKind classifies a flight-recorder event. The set mirrors exactly
// what tracex.Build consumes: scheduler events open and close slice
// spans, annotations open/close op spans and carry causality.
type recKind uint8

const (
	evInvoke recKind = iota + 1
	evResponse
	evDispatch
	evPreempt
	evComplete
	evHelp
	evCASFail
)

// recEvent is one flight-recorder entry: 40 bytes, no pointers, so the
// ring never allocates after construction.
type recEvent struct {
	seq  uint64
	t    int64 // ns since the obs epoch
	a, b int64 // payload (help target; casfail winner/addr)
	kind recKind
}

// evRing is a single-writer overwrite-oldest ring. The owning goroutine
// is the only writer; it is read only after the goroutine joins.
type evRing struct {
	buf []recEvent
	n   uint64 // total events ever recorded
}

func (r *evRing) push(ev recEvent) {
	r.buf[r.n%uint64(len(r.buf))] = ev
	r.n++
}

// oldestFirst returns the retained events in recording order, plus the
// number overwritten.
func (r *evRing) oldestFirst() ([]recEvent, uint64) {
	if r.n <= uint64(len(r.buf)) {
		return r.buf[:r.n], 0
	}
	dropped := r.n - uint64(len(r.buf))
	start := int(r.n % uint64(len(r.buf)))
	out := make([]recEvent, 0, len(r.buf))
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out, dropped
}

// rec records one flight-recorder event. Callers guard with p.ring != nil.
func (p *Proc) rec(kind recKind, a, b int64) {
	p.ring.push(recEvent{
		seq:  p.obs.seq.Add(1),
		t:    int64(time.Since(p.obs.epoch)),
		a:    a,
		b:    b,
		kind: kind,
	})
}

// noteWrite records slot+1 as the last writer of word a (CAS-failure
// attribution). Callers guard with p.obs != nil && recorder on.
func (p *Proc) noteWrite(a int) {
	if w := p.obs.lastWriter; w != nil {
		w[a].Store(int32(p.slot) + 1)
	}
}

// DroppedEvents returns how many flight-recorder events were overwritten
// across all processes (0 when every ring kept everything).
func (w *World) DroppedEvents() uint64 {
	if w.obs == nil {
		return 0
	}
	var total uint64
	for _, p := range w.obs.procs {
		if p.ring != nil && p.ring.n > uint64(len(p.ring.buf)) {
			total += p.ring.n - uint64(len(p.ring.buf))
		}
	}
	return total
}

// DrainTrace merges every process's flight-recorder ring into one
// trace.Log in global causal (sequence) order. Call it only after all
// process goroutines have joined. It returns nil when the recorder was
// not enabled.
//
// Timestamps are wall-clock ns since the obs epoch, clamped to be
// monotone per CPU: events on one shard are serialized by the shard
// hand-off protocol, so sequence order is their real order, but an
// annotation recorded outside the shard (an invoke while another process
// runs) can carry a clock reading that lags a causally-later event;
// clamping repairs exactly those, preserving order.
func (w *World) DrainTrace() *trace.Log {
	if w.obs == nil || !w.obs.cfg.Recorder {
		return nil
	}
	type drained struct {
		recEvent
		slot, cpu int
	}
	var all []drained
	for _, p := range w.obs.procs {
		if p.ring == nil {
			continue
		}
		evs, _ := p.ring.oldestFirst()
		for _, ev := range evs {
			all = append(all, drained{recEvent: ev, slot: p.slot, cpu: p.cpu})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })

	l := &trace.Log{}
	lastT := map[int]int64{}
	for _, d := range all {
		t := d.t
		if last, ok := lastT[d.cpu]; ok && t < last {
			t = last
		}
		lastT[d.cpu] = t
		ev := trace.Event{
			Time: t, CPU: d.cpu, Proc: d.slot,
			ProcName: procName(d.slot),
		}
		switch d.kind {
		case evInvoke:
			ev.Kind = trace.KindAnnotate
			ev.Key = "invoke"
			ev.Args = []trace.Field{trace.I("p", int64(d.slot))}
		case evResponse:
			ev.Kind = trace.KindAnnotate
			ev.Key = "response"
			ev.Args = []trace.Field{trace.I("p", int64(d.slot))}
		case evDispatch:
			ev.Kind = trace.KindDispatch
		case evPreempt:
			ev.Kind = trace.KindPreempt
		case evComplete:
			ev.Kind = trace.KindComplete
		case evHelp:
			ev.Kind = trace.KindAnnotate
			ev.Key = "help"
			ev.Args = []trace.Field{trace.I("p", d.a)}
		case evCASFail:
			ev.Kind = trace.KindAnnotate
			ev.Key = "casfail"
			ev.Args = []trace.Field{trace.I("winner", d.a), trace.I("addr", d.b)}
		default:
			continue
		}
		l.Append(ev)
	}
	return l
}

func procName(slot int) string {
	// Small-int names dominate; avoid fmt on the drain path.
	const digits = "0123456789"
	if slot < 10 {
		return "g" + digits[slot:slot+1]
	}
	if slot < 100 {
		return "g" + digits[slot/10:slot/10+1] + digits[slot%10:slot%10+1]
	}
	buf := []byte{'g'}
	var rec func(n int)
	rec = func(n int) {
		if n >= 10 {
			rec(n / 10)
		}
		buf = append(buf, digits[n%10])
	}
	rec(slot)
	return string(buf)
}

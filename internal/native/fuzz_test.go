package native

import (
	"sync"
	"testing"
)

// FuzzCAS2Tape runs the guard-emulated double-word CAS through an
// arbitrary sequential tape of stores and CAS2 attempts with
// fuzzer-controlled correct/perturbed old guesses, cross-checked against a
// two-variable reference: CAS2 succeeds iff both olds match, and then
// writes both news atomically.
func FuzzCAS2Tape(f *testing.F) {
	f.Add([]byte("\x00\x00\x01\x02\x02\x03"))
	f.Add([]byte("0123456789"))
	f.Add([]byte("\x03\xff\x00\x01\x00\x02\x00\x04"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 128 {
			data = data[:128]
		}
		m := NewMem(4)
		a := m.MustAlloc("a", 1)
		b := m.MustAlloc("b", 1)
		var refA, refB uint64
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], uint64(data[i+1])
			switch op % 4 {
			case 0:
				o1, o2 := refA, refB
				if arg&1 != 0 {
					o1++
				}
				if arg&2 != 0 {
					o2 += 3
				}
				n1, n2 := arg>>2, arg>>3
				got, _ := m.cas2(a, b, o1, o2, n1, n2)
				want := o1 == refA && o2 == refB
				if got != want {
					t.Fatalf("step %d: cas2(olds=%d,%d) = %v, want %v (ref %d,%d)", i, o1, o2, got, want, refA, refB)
				}
				if want {
					refA, refB = n1, n2
				}
			case 1:
				m.store(a, arg)
				refA = arg
			case 2:
				m.store(b, arg)
				refB = arg
			case 3:
				if m.load(a) != refA || m.load(b) != refB {
					t.Fatalf("step %d: words (%d,%d), want (%d,%d)", i, m.load(a), m.load(b), refA, refB)
				}
			}
		}
		if m.Peek(a) != refA || m.Peek(b) != refB {
			t.Fatalf("final words (%d,%d), want (%d,%d)", m.Peek(a), m.Peek(b), refA, refB)
		}
	})
}

// FuzzCAS2Concurrent turns the fuzzer loose on the guard protocol's
// concurrency: fuzzer-chosen worker counts and retry budgets hammer a
// (version, value) pair gclist-style, and the run must satisfy the same
// atomic-transition law the unit test checks — final version equals total
// successes and the value word tracks it exactly.
func FuzzCAS2Concurrent(f *testing.F) {
	f.Add([]byte("\x02\x08"))
	f.Add([]byte("\x06\x20\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		workers := 2 + int(data[0]%6)
		perWorker := 1 + int(data[1]%32)
		m := NewMem(4)
		ver := m.MustAlloc("ver", 1)
		val := m.MustAlloc("val", 1)
		wins := make([]uint64, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for n := 0; n < perWorker; n++ {
					for {
						v := m.load(ver)
						x := m.load(val)
						if ok, _ := m.cas2(ver, val, v, x, v+1, x+3); ok {
							wins[i]++
							break
						}
					}
				}
			}(i)
		}
		wg.Wait()
		var total uint64
		for _, w := range wins {
			total += w
		}
		if total != uint64(workers*perWorker) {
			t.Fatalf("wins = %d, want %d", total, workers*perWorker)
		}
		if m.Peek(ver) != total || m.Peek(val) != 3*total {
			t.Fatalf("final (ver,val) = (%d,%d), want (%d,%d)", m.Peek(ver), m.Peek(val), total, 3*total)
		}
	})
}

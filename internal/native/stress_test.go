// Race-detector stress for every registered object on the native backend
// (satellite of the native-backend tentpole). Each object runs its canonical
// generated op streams from real goroutines; the oracles are quiescent
// conservation laws that hold for ANY linearizable execution, so they need
// no schedule knowledge:
//
//   - sorted sets: per-key flow balance — seeded + successful inserts −
//     successful deletes must equal final membership, and the snapshot must
//     be strictly sorted;
//   - queues/stacks: value conservation — the generator emits globally
//     unique values, so multiset(enqueued) = multiset(dequeued) +
//     multiset(remaining);
//   - MWCAS arrays: delta accounting — each word's final value is its
//     initial value plus the deltas of the successful operations that
//     touched it.
//
// Under -race the run doubles as a memory-model audit: every shared access
// of every object goes through native.Mem's atomics or a shard's handoff,
// and the detector certifies no object smuggles an unsynchronized access.
package native_test

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"repro/internal/registry"
)

// stressSizes returns the goroutine counts to stress. The full run covers
// 2×GOMAXPROCS (maximum genuine parallelism plus oversubscription) and 64
// (the acceptance bar); -short keeps one 32-wide run on the ci race line.
func stressSizes() []int {
	if testing.Short() {
		return []int{32}
	}
	sizes := []int{2 * runtime.GOMAXPROCS(0), 64}
	if sizes[0] >= sizes[1] {
		sizes = sizes[:1]
	}
	return sizes
}

func TestNativeStress(t *testing.T) {
	ops := 120
	if testing.Short() {
		ops = 40
	}
	for _, d := range registry.All() {
		for _, procs := range stressSizes() {
			t.Run(fmt.Sprintf("%s/p%d", d.Name, procs), func(t *testing.T) {
				d, procs := d, procs
				t.Parallel()
				cfg := d.StressConfig(procs)
				cfg.Check = false // white-box checkers are simulator-only
				if d.Name != "herlihy" {
					// Let the harness size the per-process node pools to the
					// op budget (arena exhaustion panics by design). Herlihy
					// keeps StressConfig's capacity: there it is the state
					// array size and its block store scales with
					// capacity×procs, not with operations.
					cfg.Capacity = 0
				}
				res, err := d.RunNative(registry.NativeRun{
					Procs: procs, Ops: ops, Seed: 42, Cfg: cfg,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := res.OpsDone(); got != procs*ops {
					t.Fatalf("applied %d ops, want %d", got, procs*ops)
				}
				checkConservation(t, d, res)
				if err := res.Inst.CheckErr(); err != nil {
					t.Fatalf("CheckErr: %v", err)
				}
			})
		}
	}
}

// checkConservation applies the model-kind's quiescent invariant to the
// finished run.
func checkConservation(t *testing.T, d *registry.Descriptor, res *registry.NativeResult) {
	t.Helper()
	snap := res.Inst.Snapshot()
	switch d.Model {
	case registry.ModelSorted:
		checkSortedFlow(t, d, res, snap)
	case registry.ModelFIFO, registry.ModelLIFO:
		checkValueConservation(t, d, res, snap)
	case registry.ModelWords:
		checkDeltaAccounting(t, d, res, snap)
	default:
		t.Fatalf("no conservation oracle for model %v", d.Model)
	}
}

func checkSortedFlow(t *testing.T, d *registry.Descriptor, res *registry.NativeResult, snap []uint64) {
	t.Helper()
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("snapshot not strictly sorted at %d: %v", i, snap)
		}
	}
	// balance[k] = seeded + inserts that reported success − deletes that
	// reported success. Inserts succeed only on absent keys and deletes
	// only on present ones, so the balance must be exactly the final
	// membership (0 or 1) for every key.
	balance := map[uint64]int{}
	for _, k := range seedKeysOf(d) {
		balance[k]++
	}
	for slot, results := range res.Results {
		ops := opsFor(d, res, slot)
		for i, r := range results {
			if !r.OK {
				continue
			}
			switch ops[i].Code {
			case registry.OpInsert:
				balance[ops[i].Key]++
			case registry.OpDelete:
				balance[ops[i].Key]--
			}
		}
	}
	final := map[uint64]bool{}
	for _, k := range snap {
		final[k] = true
	}
	for k, b := range balance {
		want := 0
		if final[k] {
			want = 1
		}
		if b != want {
			t.Fatalf("key %d: seed+insertOK-deleteOK = %d but final membership = %d (snapshot %v)", k, b, want, snap)
		}
	}
	for k := range final {
		if _, seen := balance[k]; !seen {
			t.Fatalf("key %d in final snapshot was never seeded or inserted", k)
		}
	}
}

func checkValueConservation(t *testing.T, d *registry.Descriptor, res *registry.NativeResult, snap []uint64) {
	t.Helper()
	var in, out []uint64
	for slot, results := range res.Results {
		ops := opsFor(d, res, slot)
		for i, r := range results {
			switch ops[i].Code {
			case registry.OpEnqueue, registry.OpPush:
				if r.OK {
					in = append(in, ops[i].Val)
				}
			case registry.OpDequeue, registry.OpPop:
				if r.OK {
					out = append(out, r.Val)
				}
			}
		}
	}
	out = append(out, snap...)
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(in) != len(out) {
		t.Fatalf("value conservation: %d values in, %d accounted for (removed + %d remaining)", len(in), len(out), len(snap))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("value conservation: multiset mismatch at %d: inserted %d, accounted %d", i, in[i], out[i])
		}
	}
}

func checkDeltaAccounting(t *testing.T, d *registry.Descriptor, res *registry.NativeResult, snap []uint64) {
	t.Helper()
	cfg := d.StressConfig(len(res.Results))
	want := make([]uint64, cfg.Words)
	copy(want, cfg.Initial)
	for slot, results := range res.Results {
		ops := opsFor(d, res, slot)
		for i, r := range results {
			if !r.OK {
				continue
			}
			for _, w := range ops[i].Words {
				want[w] += ops[i].Delta
			}
		}
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d words, want %d", len(snap), len(want))
	}
	for w := range want {
		if snap[w] != want[w] {
			t.Fatalf("word %d = %d, want initial+successful deltas = %d", w, snap[w], want[w])
		}
	}
}

// opsFor regenerates the deterministic op stream the run used for one slot.
func opsFor(d *registry.Descriptor, res *registry.NativeResult, slot int) []registry.Op {
	cfg := d.StressConfig(len(res.Results))
	return d.Ops(cfg, 42, slot, len(res.Results[slot]))
}

func seedKeysOf(d *registry.Descriptor) []uint64 {
	return d.StressConfig(1).SeedKeys
}

package native

import (
	"sync"
	"testing"

	"repro/internal/shmem"
)

func TestMemAllocPeekPokeName(t *testing.T) {
	m := NewMem(8)
	a, err := m.Alloc("head", 1)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	b := m.MustAlloc("nodes", 3)
	if m.Allocated() != 4 || m.Capacity() != 8 {
		t.Fatalf("Allocated=%d Capacity=%d, want 4, 8", m.Allocated(), m.Capacity())
	}
	m.Poke(a, 7)
	if m.Peek(a) != 7 {
		t.Fatalf("Peek(a) = %d, want 7", m.Peek(a))
	}
	if got := m.Name(a); got != "head" {
		t.Errorf("Name(a) = %q, want %q", got, "head")
	}
	if got := m.Name(b + 2); got != "nodes[2]" {
		t.Errorf("Name(b+2) = %q, want %q", got, "nodes[2]")
	}
	if got := m.Name(7); got != "word7" {
		t.Errorf("Name(unallocated) = %q, want %q", got, "word7")
	}
	if _, err := m.Alloc("huge", 5); err == nil {
		t.Error("over-capacity Alloc should fail")
	}
}

func TestCAS2Semantics(t *testing.T) {
	m := NewMem(4)
	a := m.MustAlloc("a", 1)
	b := m.MustAlloc("b", 1)
	m.Poke(a, 1)
	m.Poke(b, 2)
	if ok, _ := m.cas2(a, b, 9, 2, 10, 20); ok {
		t.Fatal("CAS2 succeeded with wrong old1")
	}
	if ok, _ := m.cas2(a, b, 1, 9, 10, 20); ok {
		t.Fatal("CAS2 succeeded with wrong old2")
	}
	if m.Peek(a) != 1 || m.Peek(b) != 2 {
		t.Fatal("failed CAS2 modified memory")
	}
	if ok, _ := m.cas2(a, b, 1, 2, 10, 20); !ok {
		t.Fatal("CAS2 failed with matching olds")
	}
	if m.Peek(a) != 10 || m.Peek(b) != 20 {
		t.Fatalf("CAS2 left (%d,%d), want (10,20)", m.Peek(a), m.Peek(b))
	}
}

// TestCAS2Concurrent hammers the guard emulation from free-running
// goroutines on a (version, value) pair, gclist-style: each success must be
// exactly one atomic (ver+1, val+2) transition, so the final words equal
// the success totals.
func TestCAS2Concurrent(t *testing.T) {
	m := NewMem(4)
	ver := m.MustAlloc("ver", 1)
	val := m.MustAlloc("val", 1)
	const procs, perProc = 8, 2000
	wins := make([]uint64, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < perProc; n++ {
				for {
					v := m.load(ver)
					x := m.load(val)
					if ok, _ := m.cas2(ver, val, v, x, v+1, x+2); ok {
						wins[i]++
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()
	var total uint64
	for _, w := range wins {
		total += w
	}
	if total != procs*perProc {
		t.Fatalf("wins = %d, want %d", total, procs*perProc)
	}
	if m.Peek(ver) != total || m.Peek(val) != 2*total {
		t.Fatalf("final (ver,val) = (%d,%d), want (%d,%d)", m.Peek(ver), m.Peek(val), total, 2*total)
	}
}

// TestShardSerializesEqualPriorities: equal-priority processes on one shard
// never preempt each other, so Begin/End windows are mutually exclusive.
// The plain (unsynchronized) counter is the assertion: a lost update fails
// the count and any overlap is a data race the race detector reports.
func TestShardSerializesEqualPriorities(t *testing.T) {
	m := NewMem(8)
	scratch := m.MustAlloc("scratch", 1)
	w := NewWorld(m, 1)
	const procs, perProc = 8, 400
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := w.NewProc(i, 0, 0)
			for n := 0; n < perProc; n++ {
				p.Begin()
				v := counter
				// Memory operations are preemption points; with equal
				// priorities they must not hand the shard away.
				p.Store(scratch, uint64(v))
				p.Load(scratch)
				counter = v + 1
				p.End()
			}
		}(i)
	}
	wg.Wait()
	if counter != procs*perProc {
		t.Fatalf("counter = %d, want %d (shard windows overlapped)", counter, procs*perProc)
	}
}

// TestShardPreemptsHigherPriority proves preemption actually happens: a
// low-priority process spins inside one Begin/End window until a value only
// a higher-priority arrival can write. If the arrival could not preempt
// mid-window, the spin would never terminate.
func TestShardPreemptsHigherPriority(t *testing.T) {
	m := NewMem(8)
	scratch := m.MustAlloc("scratch", 1)
	flagAddr := m.MustAlloc("flag", 1)
	w := NewWorld(m, 1)
	low := w.NewProc(0, 0, 1)
	high := w.NewProc(1, 0, 9)

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		low.Begin()
		close(started)
		for low.Load(flagAddr) == 0 {
		}
		low.End()
	}()
	<-started
	high.Begin() // blocks until low yields at a preemption point
	high.Store(flagAddr, 1)
	high.Store(scratch, 2)
	high.End()
	<-done
}

// TestShardNoPreemptMasksPreemption: inside NoPreempt, memory operations
// must not hand the shard away even to a higher priority; the handoff
// happens at the section's end.
func TestShardNoPreemptMasksPreemption(t *testing.T) {
	m := NewMem(8)
	scratch := m.MustAlloc("scratch", 1)
	w := NewWorld(m, 1)
	low := w.NewProc(0, 0, 1)
	high := w.NewProc(1, 0, 9)

	inSection := make(chan struct{})
	highDone := make(chan struct{})
	witness := 0
	go func() {
		low.Begin()
		low.NoPreempt(func() {
			close(inSection)
			// Give the high-priority proc time to queue up, then cross
			// many preemption points; none may yield.
			for i := 0; i < 50_000; i++ {
				low.Store(scratch, uint64(i))
			}
			select {
			case <-highDone:
				witness = 1
			default:
			}
		})
		low.End()
	}()
	<-inSection
	high.Begin()
	high.Store(scratch, 99)
	high.End()
	close(highDone)
	if witness == 1 {
		t.Fatal("high-priority process ran inside the low process's NoPreempt section")
	}
}

// TestPickNextOrder checks the scheduler's choice rule directly: highest
// priority wins between the preempted stack and the arrivals, with the
// preempted process winning ties.
func TestPickNextOrder(t *testing.T) {
	mk := func(prio shmem.Priority) *Proc { return &Proc{prio: prio} }
	s := &shard{}
	p3, p5a, p5b, p7 := mk(3), mk(5), mk(5), mk(7)
	s.preempted = []*Proc{p3, p5a} // stack: p5a on top
	s.waiting = []*Proc{p5b, p7}

	if got := s.pickNextLocked(); got != p7 {
		t.Fatalf("pick 1: got prio %d, want the prio-7 arrival", got.prio)
	}
	if got := s.pickNextLocked(); got != p5a {
		t.Fatalf("pick 2: got prio %d, want the preempted prio-5 (tie goes to the stack)", got.prio)
	}
	if got := s.pickNextLocked(); got != p5b {
		t.Fatalf("pick 3: got prio %d, want the waiting prio-5", got.prio)
	}
	if got := s.pickNextLocked(); got != p3 {
		t.Fatalf("pick 4: got prio %d, want the preempted prio-3", got.prio)
	}
	if got := s.pickNextLocked(); got != nil {
		t.Fatalf("pick 5: got prio %d, want nil (shard idle)", got.prio)
	}
}

func TestCCASNativePanics(t *testing.T) {
	m := NewMem(8)
	v := m.MustAlloc("v", 1)
	x := m.MustAlloc("x", 1)
	w := NewFreeWorld(m)
	p := w.NewProc(0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("CCASNative should panic on the native backend")
		}
	}()
	p.CCASNative(v, 1, x, 0, 1)
}

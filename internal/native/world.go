package native

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// maxSlots bounds the helping bookkeeping arrays. It is far above anything
// the stress suites spawn; NewProc rejects slots beyond it.
const maxSlots = 1024

// World is one native execution: a memory, a set of processes, and — for
// the paper's families — the shards that impose priority-uniprocessor
// scheduling on them.
//
// Three configurations map to the repo's three object families:
//
//   - NewWorld(mem, 1): one shard. Every process shares it, so exactly one
//     runs at a time and preemption follows strict priority — the machine
//     model of the uniprocessor algorithms (Figures 2–5).
//   - NewWorld(mem, P): P shards, true parallelism across them, priority
//     discipline within each — the multiprocessor model of Figures 6–7,
//     where mypr is the shard index.
//   - NewFreeWorld(mem): no shards. Goroutines run wherever the Go
//     scheduler puts them, which is the anything-goes model the baselines
//     (lock-free and lock-based) are designed for.
//
// A World is not reusable across runs; build a fresh one per experiment.
type World struct {
	mem    *Mem
	shards []*shard
	// helpReceived[p] counts help invocations received by slot p; written
	// with atomics because helpers on different shards run concurrently.
	helpReceived [maxSlots]atomic.Uint64
	// obs is the observability context (nil unless EnableObs was called;
	// see obs.go). Procs created while it is nil collect nothing and pay
	// nothing beyond a nil check.
	obs *obsState
}

// NewWorld returns a world whose processes are scheduled on `shards`
// priority-disciplined shards.
func NewWorld(mem *Mem, shards int) *World {
	if shards <= 0 {
		panic(fmt.Sprintf("native: shard count %d must be positive (use NewFreeWorld for undisciplined runs)", shards))
	}
	w := &World{mem: mem, shards: make([]*shard, shards)}
	for i := range w.shards {
		w.shards[i] = &shard{}
	}
	return w
}

// NewFreeWorld returns a world with no scheduling discipline: processes are
// plain goroutines. This is the right model for the baselines, which do not
// assume priority scheduling (the lock-based baseline in fact livelocks
// under it — the paper's motivating failure).
func NewFreeWorld(mem *Mem) *World { return &World{mem: mem} }

// Mem returns the world's memory.
func (w *World) Mem() *Mem { return w.mem }

// Processors returns the number of shards, or GOMAXPROCS for a free world —
// the value that bounds the helping-ring width P.
func (w *World) Processors() int {
	if len(w.shards) > 0 {
		return len(w.shards)
	}
	return runtime.GOMAXPROCS(0)
}

// HelpReceived returns the number of help invocations slot p received.
func (w *World) HelpReceived(p int) uint64 {
	if p < 0 || p >= maxSlots {
		return 0
	}
	return w.helpReceived[p].Load()
}

// shard serializes a set of processes onto one virtual processor under
// strict priority preemption:
//
//   - at most one process runs at a time;
//   - a runnable process with strictly higher priority than the runner
//     preempts it at the runner's next preemption point (every memory
//     operation outside a NoPreempt section);
//   - when the runner finishes or is preempted, the highest-priority
//     runnable process runs next, with the preempted resumed in LIFO order
//     among equals.
//
// The preempted stack is ordered by priority (each preemption is by a
// strictly higher priority), so its top is always the highest-priority
// preempted process; pickNextLocked compares it against the best waiting
// arrival.
type shard struct {
	mu        sync.Mutex
	running   *Proc
	waiting   []*Proc
	preempted []*Proc
	// wanted is the runner's cheap preemption-pending flag: set exactly
	// when some waiter outranks the current runner. Runners poll it with
	// one atomic load per memory operation.
	wanted atomic.Bool
}

func (s *shard) bestWaitingLocked() int {
	best := -1
	for i, q := range s.waiting {
		if best < 0 || q.prio > s.waiting[best].prio {
			best = i
		}
	}
	return best
}

func (s *shard) refreshWantedLocked() {
	want := false
	if s.running != nil {
		for _, q := range s.waiting {
			if q.prio > s.running.prio {
				want = true
				break
			}
		}
	}
	s.wanted.Store(want)
}

// pickNextLocked removes and returns the highest-priority runnable process:
// the top of the preempted stack or the best waiting arrival, whichever
// outranks the other (the preempted process wins ties — it was there first).
func (s *shard) pickNextLocked() *Proc {
	var next *Proc
	fromStack := false
	if n := len(s.preempted); n > 0 {
		next = s.preempted[n-1]
		fromStack = true
	}
	if best := s.bestWaitingLocked(); best >= 0 && (next == nil || s.waiting[best].prio > next.prio) {
		q := s.waiting[best]
		s.waiting = append(s.waiting[:best], s.waiting[best+1:]...)
		return q
	}
	if fromStack {
		s.preempted = s.preempted[:len(s.preempted)-1]
	}
	return next
}

// Proc is one native process: a goroutine's execution context, implementing
// shmem.Ctx. Create one per goroutine with World.NewProc and bracket each
// abstract operation with Begin/End so the shard discipline sees operation
// boundaries. A Proc must only be used from the goroutine it was created
// for (its op counters are intentionally unsynchronized and are read after
// the goroutine joins).
type Proc struct {
	w     *World
	shard *shard
	slot  int
	cpu   int
	prio  shmem.Priority
	// gate blocks the process while it is not scheduled; buffered so the
	// scheduler-side send never blocks.
	gate      chan struct{}
	noPreempt int
	// Counts tallies this process's memory operations, in the same shape
	// the simulator reports (metrics.OpCounts).
	Counts metrics.OpCounts
	// HelpGiven counts help invocations this process performed.
	HelpGiven uint64

	// Observability plumbing (all nil/zero unless the world's EnableObs
	// ran before NewProc; see obs.go). obs is the shared context, stats
	// the padded atomic counter block, ring the flight-recorder ring, lw
	// the CAS-failure attribution table, opStart the Begin timestamp of
	// the in-flight operation (ns since the obs epoch).
	obs     *obsState
	stats   *ProcStats
	ring    *evRing
	lw      []atomic.Int32
	opStart int64
}

// NewProc creates the execution context for one process goroutine. cpu
// selects the shard (ignored in a free world); prio is the process's fixed
// priority. Slots must be unique per World when the helping algorithms are
// in play — they index announce arrays, exactly as on the simulator.
func (w *World) NewProc(slot, cpu int, prio shmem.Priority) *Proc {
	if slot < 0 || slot >= maxSlots {
		panic(fmt.Sprintf("native: slot %d out of range [0,%d)", slot, maxSlots))
	}
	p := &Proc{w: w, slot: slot, cpu: cpu, prio: prio, gate: make(chan struct{}, 1)}
	if w.obs != nil {
		p.obs = w.obs
		if w.obs.cfg.Metrics {
			p.stats = &ProcStats{}
		}
		if w.obs.cfg.Recorder {
			p.ring = &evRing{buf: make([]recEvent, w.obs.cfg.RingCap)}
			p.lw = w.obs.lastWriter
		}
		// NewProc is setup-time API (called before goroutines spawn), so
		// the registration append needs no lock.
		w.obs.procs = append(w.obs.procs, p)
	}
	if len(w.shards) > 0 {
		if cpu < 0 || cpu >= len(w.shards) {
			panic(fmt.Sprintf("native: cpu %d out of range [0,%d)", cpu, len(w.shards)))
		}
		p.shard = w.shards[cpu]
	}
	return p
}

// Begin enters the shard for one abstract operation, blocking until this
// process is the shard's runner (immediately if it outranks the current
// runner — the preemption itself happens at the runner's next preemption
// point). In a free world it is a no-op.
func (p *Proc) Begin() {
	if p.stats != nil {
		p.opStart = int64(time.Since(p.obs.epoch))
	}
	if p.ring != nil {
		p.rec(evInvoke, 0, 0)
	}
	s := p.shard
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.running == nil {
		s.running = p
		s.mu.Unlock()
		p.obsDispatch()
		return
	}
	s.waiting = append(s.waiting, p)
	if p.prio > s.running.prio {
		s.wanted.Store(true)
	}
	s.mu.Unlock()
	<-p.gate
	p.obsDispatch()
}

// obsDispatch records that this process just became its shard's runner.
func (p *Proc) obsDispatch() {
	if p.stats != nil {
		p.stats.Dispatches.Add(1)
	}
	if p.ring != nil {
		p.rec(evDispatch, 0, 0)
	}
}

// End leaves the shard after one abstract operation and hands the shard to
// the highest-priority runnable process.
func (p *Proc) End() {
	// Record before the hand-off below: the next runner records its
	// dispatch only after receiving the gate (or after observing this
	// unlock), so the response/complete events order before it.
	if p.stats != nil {
		p.stats.Ops.Add(1)
		p.stats.hist.observe(int64(time.Since(p.obs.epoch)) - p.opStart)
	}
	if p.ring != nil {
		p.rec(evResponse, 0, 0)
		if p.shard != nil {
			p.rec(evComplete, 0, 0)
		}
	}
	s := p.shard
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.running != p {
		s.mu.Unlock()
		panic("native: End called by a process that is not the shard's runner (missing Begin, or Proc shared across goroutines)")
	}
	next := s.pickNextLocked()
	s.running = next
	s.refreshWantedLocked()
	s.mu.Unlock()
	if next != nil {
		next.gate <- struct{}{}
	}
}

// point is the preemption point at every memory operation: if a waiter
// outranks this process, hand the shard over and block until resumed. The
// fast path is one atomic load of the shard's wanted flag.
func (p *Proc) point() {
	s := p.shard
	if s == nil || p.noPreempt > 0 || !s.wanted.Load() {
		return
	}
	s.mu.Lock()
	best := s.bestWaitingLocked()
	if best < 0 || s.waiting[best].prio <= p.prio {
		// Stale flag (the outranking waiter was already scheduled).
		s.refreshWantedLocked()
		s.mu.Unlock()
		return
	}
	q := s.waiting[best]
	s.waiting = append(s.waiting[:best], s.waiting[best+1:]...)
	s.preempted = append(s.preempted, p)
	depth := len(s.preempted)
	s.running = q
	s.refreshWantedLocked()
	s.mu.Unlock()
	if p.stats != nil {
		p.stats.Preemptions.Add(1)
		p.stats.maxDepth(uint64(depth))
	}
	if p.ring != nil {
		// Before the gate send: q records its dispatch only after
		// receiving it, keeping preempt < dispatch in sequence order.
		p.rec(evPreempt, 0, 0)
	}
	q.gate <- struct{}{}
	<-p.gate
	p.obsDispatch()
}

// Load reads word a.
func (p *Proc) Load(a shmem.Addr) uint64 {
	v := p.w.mem.load(a)
	p.Counts.Loads++
	p.point()
	return v
}

// Store writes word a.
func (p *Proc) Store(a shmem.Addr, v uint64) {
	p.w.mem.store(a, v)
	p.Counts.Stores++
	if p.lw != nil {
		p.lw[a].Store(int32(p.slot) + 1)
	}
	p.point()
}

// CAS performs a hardware compare-and-swap on word a.
func (p *Proc) CAS(a shmem.Addr, old, val uint64) bool {
	ok := p.w.mem.cas(a, old, val)
	p.Counts.CAS++
	if !ok {
		p.Counts.CASFail++
	}
	if p.lw != nil {
		if ok {
			p.lw[a].Store(int32(p.slot) + 1)
		} else {
			p.rec(evCASFail, int64(p.lw[a].Load())-1, int64(a))
		}
	}
	p.point()
	return ok
}

// CAS2 performs the software-emulated double-word compare-and-swap (see
// Mem.cas2 for the emulation and its honesty clause).
func (p *Proc) CAS2(a1, a2 shmem.Addr, old1, old2, new1, new2 uint64) bool {
	ok, retries := p.w.mem.cas2(a1, a2, old1, old2, new1, new2)
	p.Counts.CAS2++
	if !ok {
		p.Counts.CAS2Fail++
	}
	if retries > 0 && p.stats != nil {
		p.stats.CAS2GuardRetries.Add(uint64(retries))
	}
	if p.lw != nil {
		if ok {
			p.lw[a1].Store(int32(p.slot) + 1)
			p.lw[a2].Store(int32(p.slot) + 1)
		} else {
			// Attribute the failure to the control word's last writer.
			p.rec(evCASFail, int64(p.lw[a1].Load())-1, int64(a1))
		}
	}
	p.point()
	return ok
}

// CCASNative panics: real hardware has no CCAS, which is the paper's very
// premise for the Figure 8 software constructions. Configure prim.Tagged or
// prim.Delayed instead (registry.Normalize does so by default off-simulator).
func (p *Proc) CCASNative(v shmem.Addr, ver uint64, x shmem.Addr, old, val uint64) bool {
	panic("native: CCAS is not a hardware primitive (the Figure 8 premise); use the software constructions in internal/prim (Tagged or Delayed)")
}

// NoPreempt runs f with shard preemption masked, the native realization of
// the paper's "executed without preemption" sections (Figure 8(b)).
// Processes on other shards still interleave with f's memory operations.
func (p *Proc) NoPreempt(f func()) {
	p.noPreempt++
	defer func() {
		p.noPreempt--
		p.point()
	}()
	f()
}

// Yield is an explicit preemption point. In a free world it defers to the
// Go scheduler, which keeps spin loops polite.
func (p *Proc) Yield() {
	if p.shard == nil {
		runtime.Gosched()
		return
	}
	p.point()
}

// Delay is a plain preemption point: real hardware gives no virtual-time
// guarantee, which is the documented caveat on the Delayed CCAS
// construction (its correctness argument needs the simulator's clock).
func (p *Proc) Delay(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("native: negative delay %d", d))
	}
	p.Yield()
}

// Slot returns the algorithm-level process identifier.
func (p *Proc) Slot() int { return p.slot }

// CPU returns the shard index (mypr in the paper); 0 in a free world.
func (p *Proc) CPU() int { return p.cpu }

// Prio returns this process's priority.
func (p *Proc) Prio() shmem.Priority { return p.prio }

// Note drops the annotation: the native backend has no deterministic trace
// to attach structured events to.
func (p *Proc) Note(key string, args ...trace.Field) {}

// Traced reports false: Note always drops, so algorithms skip building its
// arguments entirely.
func (p *Proc) Traced() bool { return false }

// NoteHelp records one help invocation on the operation announced under
// slot pid (bookkeeping only, as on the simulator).
func (p *Proc) NoteHelp(pid int) {
	if pid == p.slot {
		return
	}
	p.HelpGiven++
	if pid >= 0 && pid < maxSlots {
		p.w.helpReceived[pid].Add(1)
	}
	if p.ring != nil {
		p.rec(evHelp, int64(pid), 0)
	}
}

// SyncCostUnits returns 1: the native backend has no cost model, and the
// only consumer (the Valois baseline's reference-count emulation) uses it
// to size a delay, which is a plain yield here anyway.
func (p *Proc) SyncCostUnits() int64 { return 1 }

// Proc is the native backend's execution context.
var _ shmem.Ctx = (*Proc)(nil)

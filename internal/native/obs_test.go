package native

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/shmem"
	"repro/internal/trace"
	"repro/internal/tracex"
)

// TestObsDisabledAllocFree pins the zero-overhead-when-disabled contract's
// allocation half: the full Begin/op/End hot path of a world that never
// called EnableObs allocates nothing.
func TestObsDisabledAllocFree(t *testing.T) {
	m := NewMem(64)
	a := m.MustAlloc("w", 1)
	w := NewWorld(m, 1)
	p := w.NewProc(0, 0, 1)
	allocs := testing.AllocsPerRun(200, func() {
		p.Begin()
		v := p.Load(a)
		p.Store(a, v+1)
		p.CAS(a, v+1, v+2)
		p.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled-observability hot path allocates %.1f per op, want 0", allocs)
	}
}

// baselineProc replicates the pre-observability hot path (memory op,
// unsynchronized counter, one preemption-point call that atomically loads
// the wanted flag) as a measurement floor for the ns/op gate below. The
// methods are noinline to mirror the real call structure: Proc.Load,
// Proc.Store and Proc.point have never been inlinable (point carries the
// mutex slow path), so an inlined floor would under-measure call overhead
// and gate the wrong thing.
type baselineProc struct {
	m      *Mem
	loads  uint64
	stores uint64
	wanted *atomic.Bool
}

//go:noinline
func (p *baselineProc) point() {
	if !p.wanted.Load() {
		return
	}
}

//go:noinline
func (p *baselineProc) load(a shmem.Addr) uint64 {
	v := p.m.load(a)
	p.loads++
	p.point()
	return v
}

//go:noinline
func (p *baselineProc) store(a shmem.Addr, v uint64) {
	p.m.store(a, v)
	p.stores++
	p.point()
}

// TestObsDisabledNsGate is the timing half of the contract, mirroring the
// PR 5 simulator-core CI gate: with observability off, a Load/Store pair
// through Proc must stay within 25% of the replicated pre-observability
// hot path. Set WF_SKIP_PERF_GATE=1 on hosts too noisy for timing
// assertions (the CI gate honors the same variable).
func TestObsDisabledNsGate(t *testing.T) {
	if os.Getenv("WF_SKIP_PERF_GATE") != "" {
		t.Skip("WF_SKIP_PERF_GATE set")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	m := NewMem(64)
	a := m.MustAlloc("w", 1)
	w := NewWorld(m, 1)
	p := w.NewProc(0, 0, 1)
	p.Begin()
	defer p.End()
	base := &baselineProc{m: m, wanted: &p.shard.wanted}

	const iters = 1 << 20
	measure := func(f func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 5; round++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	procLoop := func() {
		for i := 0; i < iters; i++ {
			v := p.Load(a)
			p.Store(a, v+1)
		}
	}
	baseLoop := func() {
		for i := 0; i < iters; i++ {
			v := base.load(a)
			base.store(a, v+1)
		}
	}
	procLoop() // warm up both paths before timing
	baseLoop()
	got := measure(procLoop)
	floor := measure(baseLoop)
	if floor <= 0 {
		t.Skip("clock too coarse to gate")
	}
	ratio := float64(got) / float64(floor)
	t.Logf("disabled-obs hot path: %.2f ns/op vs floor %.2f ns/op (ratio %.3f)",
		float64(got)/(2*iters), float64(floor)/(2*iters), ratio)
	if ratio > 1.25 {
		t.Fatalf("disabled-observability hot path is %.2fx the pre-observability floor, gate is 1.25x", ratio)
	}
}

func TestRingOverwriteOldest(t *testing.T) {
	r := &evRing{buf: make([]recEvent, 8)}
	for i := 0; i < 20; i++ {
		r.push(recEvent{seq: uint64(i + 1)})
	}
	evs, dropped := r.oldestFirst()
	if dropped != 12 {
		t.Fatalf("dropped = %d, want 12", dropped)
	}
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(13 + i); ev.seq != want {
			t.Fatalf("retained[%d].seq = %d, want %d (oldest-first order broken)", i, ev.seq, want)
		}
	}
}

// TestObsStatsAndDrain runs a small contended uni-shard workload with both
// layers on and checks the counter blocks, the latency histograms, and
// that the drained flight recording is a well-formed trace.Log from which
// tracex reconstructs the run's op spans.
func TestObsStatsAndDrain(t *testing.T) {
	const procs, ops = 3, 50
	m := NewMem(256)
	a := m.MustAlloc("w", 1)
	w := NewWorld(m, 1)
	w.EnableObs(ObsConfig{Metrics: true, Recorder: true})
	ps := make([]*Proc, procs)
	for i := range ps {
		ps[i] = w.NewProc(i, 0, shmem.Priority(i))
	}
	var wg sync.WaitGroup
	for i := range ps {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			for n := 0; n < ops; n++ {
				p.Begin()
				for {
					v := p.Load(a)
					if p.CAS(a, v, v+1) {
						break
					}
				}
				p.End()
			}
		}(ps[i])
	}
	wg.Wait()

	for i, p := range ps {
		s := p.Stats()
		if s == nil {
			t.Fatalf("proc %d: Stats() = nil with metrics enabled", i)
		}
		if s.Ops != ops {
			t.Errorf("proc %d: Ops = %d, want %d", i, s.Ops, ops)
		}
		if s.Dispatches < ops {
			t.Errorf("proc %d: Dispatches = %d, want >= %d (one per op)", i, s.Dispatches, ops)
		}
		if s.Latency == nil || s.Latency.Count != ops {
			t.Errorf("proc %d: latency histogram count = %v, want %d samples", i, s.Latency, ops)
		}
	}
	if m.Peek(a) != procs*ops {
		t.Fatalf("counter word = %d, want %d", m.Peek(a), procs*ops)
	}

	l := w.DrainTrace() // panics internally if per-CPU monotonicity broke
	if l == nil {
		t.Fatal("DrainTrace returned nil with the recorder enabled")
	}
	if w.DroppedEvents() != 0 {
		t.Fatalf("dropped %d events with default ring capacity", w.DroppedEvents())
	}
	x := tracex.Build(l)
	opSpans := x.OpSpans()
	if len(opSpans) != procs*ops {
		t.Fatalf("reconstructed %d op spans, want %d", len(opSpans), procs*ops)
	}
	for _, sp := range opSpans {
		if sp.Open {
			t.Fatalf("op span for slot %d never saw its response", sp.Slot)
		}
	}
	if len(x.SliceSpans()) < procs*ops {
		t.Fatalf("reconstructed %d slice spans, want >= %d", len(x.SliceSpans()), procs*ops)
	}
	// Uncontended-CAS runs exist, but 3 procs × 50 increments on one word
	// under strict priority handoff reliably fail at least one CAS; if
	// this ever flakes the workload is wrong, not the recorder.
	var fails uint64
	for _, p := range ps {
		fails += p.Counts.CASFail
	}
	if fails > 0 && len(x.CASFailEdges()) == 0 {
		t.Fatalf("%d CAS failures counted but no casfail edges in the drained trace", fails)
	}
}

// TestObsStatsDisabledNil: without EnableObs, Stats is nil and DrainTrace
// returns nil rather than an empty log.
func TestObsStatsDisabledNil(t *testing.T) {
	m := NewMem(64)
	w := NewWorld(m, 1)
	p := w.NewProc(0, 0, 0)
	if p.Stats() != nil {
		t.Fatal("Stats() non-nil without EnableObs")
	}
	if w.DrainTrace() != nil {
		t.Fatal("DrainTrace() non-nil without EnableObs")
	}
}

// TestCAS2GuardRetryCount verifies the guard-spin counter: with the guard
// held, cas2 must report the spins it waited.
func TestCAS2GuardRetryCount(t *testing.T) {
	m := NewMem(4)
	a := m.MustAlloc("a", 1)
	b := m.MustAlloc("b", 1)
	m.guard.Store(1)
	done := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		m.guard.Store(0)
		close(done)
	}()
	ok, retries := m.cas2(a, b, 0, 0, 1, 2)
	<-done
	if !ok {
		t.Fatal("cas2 failed with matching olds")
	}
	if retries == 0 {
		t.Fatal("cas2 reported zero guard retries despite a held guard")
	}
}

// TestObsPreemptionDepth drives a strict-priority preemption chain and
// checks the preemption counters, the max-depth watermark, and that the
// drained trace carries the preempt events.
func TestObsPreemptionDepth(t *testing.T) {
	m := NewMem(64)
	a := m.MustAlloc("w", 1)
	w := NewWorld(m, 1)
	w.EnableObs(ObsConfig{Metrics: true, Recorder: true})
	low := w.NewProc(0, 0, 0)
	high := w.NewProc(1, 0, 5)

	lowRunning := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		low.Begin()
		close(lowRunning)
		// Spin at preemption points until the high-priority proc has
		// arrived and (necessarily) preempted us at one of them.
		<-release
		for i := 0; i < 1000; i++ {
			low.Store(a, uint64(i))
		}
		low.End()
	}()
	go func() {
		defer wg.Done()
		<-lowRunning
		high.Begin() // queues as an outranking waiter
		high.Store(a, 9999)
		high.End()
	}()
	// Let the high proc enqueue, then release the low proc into its
	// preemption points.
	go func() {
		<-lowRunning
		for !low.shard.wanted.Load() {
			time.Sleep(50 * time.Microsecond)
		}
		close(release)
	}()
	wg.Wait()

	s := low.Stats()
	if s.Preemptions == 0 {
		t.Fatal("low-priority proc was never preempted")
	}
	if s.MaxPreemptDepth == 0 {
		t.Fatal("MaxPreemptDepth stayed 0 across a preemption")
	}
	l := w.DrainTrace()
	found := false
	for _, ev := range l.Events() {
		if ev.Kind == trace.KindPreempt && ev.Proc == 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no preempt event for the preempted proc in the drained trace")
	}
}

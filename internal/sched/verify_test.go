package sched

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/shmem"
	"repro/internal/trace"
)

// TestVerifyPriorityModelCleanRuns: randomized multi-processor job sets
// always produce traces that satisfy the model invariants.
func TestVerifyPriorityModelCleanRuns(t *testing.T) {
	f := func(seed int64) bool {
		s := New(Config{Processors: 3, Seed: seed, MemWords: 1 << 12, EnableTrace: true})
		x := s.Mem().MustAlloc("x", 1)
		rng := s.Rand()
		for i := 0; i < 8; i++ {
			i := i
			s.Spawn(JobSpec{
				Name: "", CPU: rng.Intn(3), Prio: Priority(rng.Intn(5)), Slot: i,
				At: rng.Int63n(100), AfterSlices: -1,
				Body: func(e *Env) {
					for j := 0; j < 5+i; j++ {
						e.CAS(x, e.Load(x), uint64(i))
					}
				},
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := VerifyPriorityModel(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyRequiresTrace: calling the verifier without tracing fails.
func TestVerifyRequiresTrace(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	if err := VerifyPriorityModel(s); err == nil {
		t.Fatal("verifier accepted a run without a trace")
	}
}

// fakeSim builds a sim with two procs and an empty trace for hand-crafted
// event sequences.
func fakeSim(t *testing.T) (*Sim, *trace.Log) {
	t.Helper()
	s := New(Config{Processors: 2, Seed: 1, EnableTrace: true})
	s.Spawn(JobSpec{Name: "low", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(*Env) {}})
	s.Spawn(JobSpec{Name: "high", CPU: 0, Prio: 9, Slot: 1, AfterSlices: -1, Body: func(*Env) {}})
	return s, s.Trace()
}

// TestVerifyDetectsPriorityViolation: dispatching a low-priority process
// while a higher one is ready must be flagged.
func TestVerifyDetectsPriorityViolation(t *testing.T) {
	s, log := fakeSim(t)
	log.Append(trace.Event{CPU: 0, Proc: 0, Kind: trace.KindArrival})
	log.Append(trace.Event{CPU: 0, Proc: 1, Kind: trace.KindArrival})
	log.Append(trace.Event{CPU: 0, Proc: 0, Kind: trace.KindDispatch}) // low despite high ready
	err := VerifyPriorityModel(s)
	if err == nil || !strings.Contains(err.Error(), "while process") {
		t.Fatalf("verifier missed a priority violation: %v", err)
	}
}

// TestVerifyDetectsMigration: the same process on two processors is flagged.
func TestVerifyDetectsMigration(t *testing.T) {
	s, log := fakeSim(t)
	log.Append(trace.Event{CPU: 0, Proc: 0, Kind: trace.KindArrival})
	log.Append(trace.Event{CPU: 0, Proc: 0, Kind: trace.KindDispatch})
	log.Append(trace.Event{CPU: 1, Proc: 0, Kind: trace.KindDispatch})
	err := VerifyPriorityModel(s)
	if err == nil || !strings.Contains(err.Error(), "migrated") {
		t.Fatalf("verifier missed a migration: %v", err)
	}
}

// TestVerifyDetectsGroundlessPreemption: preempting with no higher-priority
// arrival is flagged.
func TestVerifyDetectsGroundlessPreemption(t *testing.T) {
	s, log := fakeSim(t)
	log.Append(trace.Event{CPU: 0, Proc: 1, Kind: trace.KindArrival})
	log.Append(trace.Event{CPU: 0, Proc: 1, Kind: trace.KindDispatch})
	log.Append(trace.Event{CPU: 0, Proc: 1, Kind: trace.KindPreempt}) // nothing higher exists
	err := VerifyPriorityModel(s)
	if err == nil || !strings.Contains(err.Error(), "no higher-priority") {
		t.Fatalf("verifier missed a groundless preemption: %v", err)
	}
}

// TestVerifyDetectsDispatchOfUnready: dispatching a process that never
// arrived is flagged.
func TestVerifyDetectsDispatchOfUnready(t *testing.T) {
	s, log := fakeSim(t)
	log.Append(trace.Event{CPU: 0, Proc: 1, Kind: trace.KindDispatch})
	err := VerifyPriorityModel(s)
	if err == nil || !strings.Contains(err.Error(), "not ready") {
		t.Fatalf("verifier missed an unready dispatch: %v", err)
	}
}

// TestVerifyWorkloadTraces: the full §3.4-style workload respects the model
// (end-to-end, all kinds of events, preemption bursts).
func TestVerifyWorkloadTraces(t *testing.T) {
	s := New(Config{Processors: 2, Seed: 3, MemWords: 1 << 14, EnableTrace: true})
	x := s.Mem().MustAlloc("x", 4)
	for i := 0; i < 6; i++ {
		i := i
		s.Spawn(JobSpec{
			Name: "", CPU: i % 2, Prio: Priority(i / 2), Slot: i,
			AfterSlices: int64(i * 13),
			Body: func(e *Env) {
				for j := 0; j < 30; j++ {
					e.Store(x+shmem.Addr(j%4), uint64(j))
					if j%7 == 0 {
						e.CAS(x, e.Load(x), uint64(i))
					}
				}
			},
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyPriorityModel(s); err != nil {
		t.Fatal(err)
	}
}

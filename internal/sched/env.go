package sched

import (
	"fmt"
	"math/rand"

	"repro/internal/shmem"
	"repro/internal/trace"
)

// Env is the execution context handed to a simulated process's body. All
// shared-memory access and all timing-relevant actions go through it; that
// is what makes every memory operation a potential preemption point and what
// charges virtual time.
//
// An Env is only valid inside the body of the process it was created for.
//
// Env is the simulator's implementation of shmem.Ctx, the backend seam the
// algorithms are written against; internal/native provides the other.
type Env struct {
	sim *Sim
	p   *Proc
	// cpu is the process's processor state, cached at Spawn so the yield
	// fast path and Now avoid the indexing round trip.
	cpu *cpuState

	// pending is the virtual-time cost accumulated since the last yield.
	pending int64
	// yieldFast, when non-nil, is the pull-mode slow yield: a direct
	// goroutine switch back to the scheduler (iter.Pull — see
	// Sim.startIfNeeded). nil selects the channel rendezvous. Both
	// transports serialize the scheduler and the coroutine strictly, so
	// the shared-state exclusivity argument is the same.
	yieldFast func(yieldMsg) bool
	// budget and horizon arm the run-ahead fast path (Sim.grantRunAhead):
	// while budget > 0, yieldNow may conclude a slice locally — advancing
	// the processor clock and the slice counters without the two-channel
	// scheduler round trip — as long as the new clock stays strictly below
	// horizon. Both are written by the scheduler goroutine before it
	// resumes this process and read/written by the coroutine afterwards;
	// the resume/yield channel pair orders those accesses.
	budget  int64
	horizon int64
	// noPreempt > 0 suppresses preemption on this processor (Figure 8(b)
	// "executed without preemption"); preemption points still yield so
	// other processors can interleave, but this processor's scheduler
	// sticks to the current process.
	noPreempt int
	// sliceOps counts non-yielding operations since the last preemption
	// point (Coarse granularity slice bounding).
	sliceOps int
	// rng is lazily created per process for workload decisions inside
	// bodies; deterministic from the run seed and process id.
	rng *rand.Rand
}

// point charges cost units and yields if this operation is a preemption
// point under the configured granularity. Coarse granularity still bounds
// slice length (coarseSliceOps): long scans made only of plain loads must
// remain interruptible and interleavable across processors, otherwise whole
// list traversals would execute atomically and contention would vanish.
func (e *Env) point(cost int64, sync bool) {
	e.pending += cost
	e.sliceOps++
	if e.sim.cfg.Granularity == Fine || sync || e.sliceOps >= coarseSliceOps {
		e.sliceOps = 0
		e.yieldNow()
	}
}

// coarseSliceOps is the maximum number of non-synchronizing memory
// operations between preemption points under Coarse granularity.
const coarseSliceOps = 32

// yieldNow hands control back to the scheduler and blocks until this process
// is dispatched again. The pending cost is reset before the send: after the
// send this goroutine and the scheduler run concurrently until the blocking
// receive below, so the coroutine must not touch shared state (including
// its own Env fields the scheduler might read) in that window.
func (e *Env) yieldNow() {
	if e.sim.aborting {
		panic(errAborted)
	}
	if e.budget > 0 {
		// Run-ahead fast path: the scheduler granted this process a
		// batch of slices (grantRunAhead). Conclude the slice locally —
		// same clock advance, same slice accounting, no channel round
		// trip — while the clock stays strictly below the event
		// horizon. The scheduler goroutine is blocked in runSlice's
		// yield receive for the whole batch, so these writes to shared
		// simulator state are exclusive.
		if nc := e.cpu.clock + e.pending; nc < e.horizon {
			e.budget--
			e.cpu.clock = nc
			e.pending = 0
			e.sim.slices++
			e.p.Slices++
			return
		}
	}
	cost := e.pending
	e.pending = 0
	if e.yieldFast != nil {
		if !e.yieldFast(yieldMsg{kind: yieldPoint, cost: cost}) {
			panic(errAborted)
		}
	} else {
		e.p.yield <- yieldMsg{kind: yieldPoint, cost: cost}
		<-e.p.resume
	}
	if e.sim.aborting {
		panic(errAborted)
	}
}

// Yield is an explicit preemption point with no memory operation. In Coarse
// granularity it is the only way (besides synchronizing operations) for a
// long computation to admit preemption.
func (e *Env) Yield() { e.point(0, true) }

// Delay charges d units of virtual time, as the paper's delay(Δ) statement
// (Section 3.3, Figure 8(c)). It is a preemption point.
func (e *Env) Delay(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("sched: negative delay %d", d))
	}
	e.point(d, true)
}

// NoPreempt runs f with preemption disabled on this processor, the mechanism
// the paper assumes for CCAS lines 3-4 ("either disabling interrupts or
// having the operating system roll back"). Other processors still interleave
// with f's memory operations; only local preemption is masked. Nesting is
// allowed.
func (e *Env) NoPreempt(f func()) {
	e.noPreempt++
	defer func() { e.noPreempt-- }()
	f()
}

// Load reads word a. One time unit; a preemption point in Fine granularity.
func (e *Env) Load(a shmem.Addr) uint64 {
	v := e.sim.mem.Load(a)
	e.point(1, false)
	return v
}

// Store writes word a. One time unit; a preemption point in Fine
// granularity. (The paper's uniprocessor algorithms use plain writes for
// announce and status variables; their correctness under preemption comes
// from the priority model, which the scheduler enforces.)
func (e *Env) Store(a shmem.Addr, v uint64) {
	e.sim.mem.Store(a, v)
	e.point(1, false)
}

// CAS performs an atomic compare-and-swap. One time unit; always a
// preemption point.
func (e *Env) CAS(a shmem.Addr, old, val uint64) bool {
	ok := e.sim.mem.CAS(a, old, val)
	e.point(e.sim.cfg.SyncCost, true)
	return ok
}

// CAS2 performs an atomic two-word compare-and-swap (used only by the
// Greenwald–Cheriton baseline; the paper's own algorithms need just CAS and
// CCAS). One time unit; always a preemption point.
func (e *Env) CAS2(a1, a2 shmem.Addr, old1, old2, new1, new2 uint64) bool {
	ok := e.sim.mem.CAS2(a1, a2, old1, old2, new1, new2)
	e.point(e.sim.cfg.SyncCost, true)
	return ok
}

// CCASNative performs the paper's CCAS (Figure 8(a)) as a single atomic
// machine step. The software implementations built from CAS live in
// internal/prim. One time unit; always a preemption point.
func (e *Env) CCASNative(v shmem.Addr, ver uint64, x shmem.Addr, old, val uint64) bool {
	ok := e.sim.mem.CCAS(v, ver, x, old, val)
	e.point(e.sim.cfg.SyncCost, true)
	return ok
}

// Me returns the sched-level process id of this process.
func (e *Env) Me() int { return e.p.id }

// Slot returns the algorithm-level process identifier (the p of Status[p],
// Par[p], Rv[p], ...).
func (e *Env) Slot() int { return e.p.spec.Slot }

// CPU returns the processor this process runs on (mypr in the paper).
func (e *Env) CPU() int { return e.p.spec.CPU }

// Prio returns this process's priority.
func (e *Env) Prio() Priority { return e.p.spec.Prio }

// Now returns the current virtual time on this process's processor,
// including cost accumulated since the last yield.
func (e *Env) Now() int64 { return e.cpu.clock + e.pending }

// Rand returns a deterministic per-process random source for workload
// decisions made inside process bodies.
func (e *Env) Rand() *rand.Rand {
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(e.sim.cfg.Seed*1_000_003 + int64(e.p.id)))
	}
	return e.rng
}

// Note records a structured algorithm annotation in the run trace (no-op
// when tracing is disabled). The key names the semantic event ("invoke",
// "announce", "splice", "response", ...) and the fields carry its typed
// arguments; the span layer (internal/tracex) reconstructs operation spans
// and causality edges from these. Like all trace emission it charges zero
// virtual time, so instrumented schedules are identical to uninstrumented
// ones.
func (e *Env) Note(key string, args ...trace.Field) {
	if e.sim.log == nil {
		return
	}
	e.sim.emitNote(e.p.spec.CPU, e.p, key, args)
}

// Traced reports whether this run records a trace. Algorithms use it to
// skip building Note's variadic field arguments on untraced runs: through
// the shmem.Ctx interface those arguments always escape to the heap, and on
// sweep-sized runs they dominated the per-schedule allocation profile.
func (e *Env) Traced() bool { return e.sim.log != nil }

// NoteHelp records that this process performed one help invocation on the
// operation announced under slot pid. It is observability bookkeeping only —
// no simulated time is charged and no schedule is perturbed — so the helping
// engines call it unconditionally. Help given to the caller's own slot is
// ignored (executing your own operation is not help). NoteHelp is also the
// canonical emission point for the trace's help causality edges: it emits
// the structured "help p=<pid>" annotation that internal/tracex turns into a
// helper-span → helpee-span edge.
func (e *Env) NoteHelp(pid int) {
	if pid == e.p.spec.Slot {
		return
	}
	e.p.helpGiven++
	e.sim.helpReceived[pid]++
	e.Note("help", trace.I("p", int64(pid)))
}

// RecordOp records one completed operation's response time (virtual units)
// for the run report's per-operation histograms. Like NoteHelp it charges
// no simulated time. Typical use:
//
//	start := e.Now()
//	obj.Insert(e, key, val)
//	e.RecordOp(e.Now() - start)
func (e *Env) RecordOp(elapsed int64) {
	e.p.opSamples = append(e.p.opSamples, elapsed)
}

// SyncCostUnits returns the configured virtual cost of a synchronizing
// operation, for cost models that emulate RMW-heavy algorithms (the Valois
// baseline's reference counting).
func (e *Env) SyncCostUnits() int64 { return e.sim.cfg.SyncCost }

// Sim returns the simulation this process belongs to.
func (e *Env) Sim() *Sim { return e.sim }

// Env is the simulator backend's execution context.
var _ shmem.Ctx = (*Env)(nil)

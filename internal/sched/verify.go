package sched

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// ErrNonPriorityPolicy is returned (wrapped) by VerifyPriorityModel when the
// run was scheduled by a non-default policy: the invariants it replays are
// the paper's strict-priority model, so checking them against another
// discipline would be vacuous at best and a false alarm at worst. The
// explicit error (rather than a silent pass) keeps callers honest about
// what was and was not verified.
var ErrNonPriorityPolicy = errors.New("sched: VerifyPriorityModel checks the strict-priority discipline only")

// VerifyPriorityModel replays a run's trace and checks the scheduling
// invariants of the paper's model:
//
//   - a process is dispatched only if no strictly higher-priority process
//     is ready on its processor;
//   - a preemption is recorded only when a strictly higher-priority process
//     had just arrived on that processor;
//   - processes never appear on more than one processor (no migration);
//   - every completion is of the process most recently dispatched there.
//
// It is evidence that the simulator itself enforces the model the
// algorithms rely on — independent of the scheduler's implementation,
// since it only reads the emitted trace. The trace must have been recorded
// with Config.EnableTrace.
func VerifyPriorityModel(s *Sim) error {
	if !s.policyDefault {
		return fmt.Errorf("%w: this run was scheduled by %q, whose dispatch and preemption order is not the paper's priority model",
			ErrNonPriorityPolicy, s.policy.Name())
	}
	if s.log == nil {
		return fmt.Errorf("sched: VerifyPriorityModel requires EnableTrace")
	}
	type cpuView struct {
		ready   map[int]bool // proc ids ready (including running)
		running int          // -1 when idle
	}
	cpus := make([]*cpuView, s.cfg.Processors)
	for i := range cpus {
		cpus[i] = &cpuView{ready: make(map[int]bool), running: -1}
	}
	prio := func(id int) Priority { return s.proc[id].spec.Prio }
	home := make(map[int]int) // proc -> cpu first seen on

	for _, ev := range s.log.Events() {
		if ev.Proc < 0 {
			continue
		}
		if ev.Kind == trace.KindAnnotate {
			// Annotations still witness *where* the process ran.
			if c, seen := home[ev.Proc]; seen && c != ev.CPU {
				return fmt.Errorf("sched: process %d migrated from cpu %d to cpu %d (event %d)", ev.Proc, c, ev.CPU, ev.Seq)
			}
			continue
		}
		c := cpus[ev.CPU]
		if prev, seen := home[ev.Proc]; seen && prev != ev.CPU {
			return fmt.Errorf("sched: process %d migrated from cpu %d to cpu %d (event %d)", ev.Proc, prev, ev.CPU, ev.Seq)
		}
		home[ev.Proc] = ev.CPU
		switch ev.Kind {
		case trace.KindArrival:
			c.ready[ev.Proc] = true
		case trace.KindDispatch:
			if !c.ready[ev.Proc] {
				return fmt.Errorf("sched: event %d dispatches process %d which was not ready on cpu %d", ev.Seq, ev.Proc, ev.CPU)
			}
			for other := range c.ready {
				if other != ev.Proc && prio(other) > prio(ev.Proc) {
					return fmt.Errorf(
						"sched: event %d dispatches process %d (prio %d) while process %d (prio %d) is ready on cpu %d",
						ev.Seq, ev.Proc, prio(ev.Proc), other, prio(other), ev.CPU)
				}
			}
			c.running = ev.Proc
		case trace.KindPreempt:
			if c.running != ev.Proc {
				return fmt.Errorf("sched: event %d preempts process %d but process %d was running on cpu %d", ev.Seq, ev.Proc, c.running, ev.CPU)
			}
			// The victim stays ready; a strictly higher-priority
			// process must exist among the ready set.
			higher := false
			for other := range c.ready {
				if other != ev.Proc && prio(other) > prio(ev.Proc) {
					higher = true
				}
			}
			if !higher {
				return fmt.Errorf("sched: event %d preempts process %d with no higher-priority process ready on cpu %d", ev.Seq, ev.Proc, ev.CPU)
			}
			c.running = -1
		case trace.KindComplete:
			if c.running != ev.Proc && c.running != -1 {
				return fmt.Errorf("sched: event %d completes process %d but process %d was running on cpu %d", ev.Seq, ev.Proc, c.running, ev.CPU)
			}
			delete(c.ready, ev.Proc)
			c.running = -1
		}
	}
	return nil
}

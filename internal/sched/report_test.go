package sched

import (
	"strings"
	"testing"
)

// TestReportSingleCPURun checks every field of the run report against a
// hand-computed two-process schedule: a low-priority victim preempted once
// by a high-priority reader.
func TestReportSingleCPURun(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 7})
	x := s.Mem().MustAlloc("x", 1)
	s.Mem().Poke(x, 0) // Poke must not appear in any tally

	s.SpawnAt(0, 0, 1, "low", func(e *Env) {
		start := e.Now()
		for i := 0; i < 5; i++ {
			e.Store(x, uint64(i))
		}
		if e.CAS(x, 99, 1) { // x is 4: a deliberate CAS failure
			t.Error("CAS(99) unexpectedly succeeded")
		}
		e.NoteHelp(1)
		e.RecordOp(e.Now() - start)
	})
	s.SpawnAt(2, 0, 5, "high", func(e *Env) {
		e.Load(x)
		e.Load(x)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}

	r := s.Report("reporttest")
	if r.Object != "reporttest" || r.Seed != 7 || r.Processors != 1 || r.Granularity != "fine" {
		t.Fatalf("report identity wrong: %+v", r)
	}
	if r.Slices != s.Slices() || r.ElapsedVT != s.Elapsed() {
		t.Errorf("slices/elapsed = %d/%d, want %d/%d", r.Slices, r.ElapsedVT, s.Slices(), s.Elapsed())
	}
	if len(r.Procs) != 2 {
		t.Fatalf("got %d proc reports, want 2", len(r.Procs))
	}
	low, high := r.Procs[0], r.Procs[1]
	if low.Name != "low" || high.Name != "high" {
		t.Fatalf("proc order wrong: %q %q", low.Name, high.Name)
	}

	// Memory attribution: the victim's 5 stores and 1 failed CAS, the
	// reader's 2 loads — nothing else, setup Pokes excluded.
	if low.Mem.Stores != 5 || low.Mem.CAS != 1 || low.Mem.CASFail != 1 || low.Mem.Loads != 0 {
		t.Errorf("low mem tally wrong: %+v", low.Mem)
	}
	if high.Mem.Loads != 2 || high.Mem.Stores != 0 {
		t.Errorf("high mem tally wrong: %+v", high.Mem)
	}
	if r.Mem.Loads != 2 || r.Mem.Stores != 5 || r.Mem.CASFail != 1 {
		t.Errorf("total mem tally wrong: %+v", r.Mem)
	}

	// Scheduling: high arrives at t=2 (after two victim stores), preempts,
	// runs its two loads, completes at t=4; the victim finishes its
	// remaining 3 stores + CAS at t=8.
	if low.Preemptions != 1 || high.Preemptions != 0 {
		t.Errorf("preemptions = %d/%d, want 1/0", low.Preemptions, high.Preemptions)
	}
	if low.ReleasedVT != 0 || low.DispatchLatencyVT != 0 || low.ResponseVT != 8 {
		t.Errorf("low timing wrong: %+v", low)
	}
	if high.ReleasedVT != 2 || high.DispatchLatencyVT != 0 || high.ResponseVT != 2 {
		t.Errorf("high timing wrong: %+v", high)
	}
	if low.Slices == 0 || high.Slices == 0 || low.Dispatches != 2 || high.Dispatches != 1 {
		t.Errorf("slices/dispatches wrong: low %d/%d high %d/%d",
			low.Slices, low.Dispatches, high.Slices, high.Dispatches)
	}

	// Helping: the victim noted one help for slot 1 (= high).
	if low.HelpGiven != 1 || low.HelpReceived != 0 {
		t.Errorf("low help = %d given / %d received, want 1/0", low.HelpGiven, low.HelpReceived)
	}
	if high.HelpGiven != 0 || high.HelpReceived != 1 {
		t.Errorf("high help = %d given / %d received, want 0/1", high.HelpGiven, high.HelpReceived)
	}
	if r.HelpGiven != 1 || r.HelpReceived != 1 || r.Preemptions != 1 {
		t.Errorf("report totals wrong: %+v", r)
	}

	// One recorded op spanning the whole victim execution (t=0..8).
	if low.OpTime.Count != 1 || low.OpTime.Min != 8 || low.OpTime.Max != 8 {
		t.Errorf("low op summary wrong: %+v", low.OpTime)
	}
	if r.OpTime.Count != 1 {
		t.Errorf("aggregate op summary wrong: %+v", r.OpTime)
	}

	// Uniprocessor interference is just preemption count.
	if low.Interference != 1 || high.Interference != 0 {
		t.Errorf("interference = %d/%d, want 1/0", low.Interference, high.Interference)
	}

	// The real report must satisfy a generous wait-freedom bound and
	// violate an absurdly tight one.
	if err := r.AssertWaitFree(100, 100); err != nil {
		t.Errorf("generous bound rejected: %v", err)
	}
	err := r.AssertWaitFree(1, 0)
	if err == nil {
		t.Fatal("1-step bound accepted a 6-step process")
	}
	if !strings.Contains(err.Error(), "low") {
		t.Errorf("violation message does not name the worst process: %v", err)
	}
}

// TestReportMultiCPUInterference: with one process per processor and no
// preemption, interference is the number of remote processes.
func TestReportMultiCPUInterference(t *testing.T) {
	s := New(Config{Processors: 3, Seed: 1})
	x := s.Mem().MustAlloc("x", 1)
	for cpu := 0; cpu < 3; cpu++ {
		s.SpawnAt(0, cpu, 1, "", func(e *Env) { e.Load(x) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := s.Report("multi")
	for _, p := range r.Procs {
		if p.Preemptions != 0 || p.Interference != 2 {
			t.Errorf("proc %d: preempt %d interference %d, want 0 and 2",
				p.ID, p.Preemptions, p.Interference)
		}
	}
}

// TestReportCoarseGranularity: the report records the granularity it ran
// under, and coarse runs still tally every memory operation.
func TestReportCoarseGranularity(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1, Granularity: Coarse})
	x := s.Mem().MustAlloc("x", 1)
	s.SpawnAt(0, 0, 1, "w", func(e *Env) {
		for i := 0; i < 10; i++ {
			e.Store(x, uint64(i))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := s.Report("coarse")
	if r.Granularity != "coarse" {
		t.Errorf("granularity = %q, want coarse", r.Granularity)
	}
	if r.Procs[0].Mem.Stores != 10 {
		t.Errorf("coarse run lost store tallies: %+v", r.Procs[0].Mem)
	}
	if r.Procs[0].Slices >= 10 {
		t.Errorf("coarse run took %d slices for 10 plain stores; batching broken", r.Procs[0].Slices)
	}
}

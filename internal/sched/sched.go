// Package sched simulates the priority-based preemption model that the
// paper's algorithms require and that Go's own scheduler does not provide.
//
// The model (paper, Section 1):
//
//   - processes are scheduled per processor and never migrate during an
//     object access;
//   - on a given processor, process p may preempt process q only if p has
//     strictly higher priority than q; a preempted process does not run
//     again until everything of higher priority on its processor has
//     completed;
//   - a process's priority does not change during an object access;
//   - memory is sequentially consistent and CAS (and, natively, CCAS/CAS2)
//     is atomic.
//
// Simulated processes are coroutines: each is a goroutine that blocks on a
// private channel and is woken by the scheduler, runs until its next
// preemption point (every shared-memory operation in Fine granularity), and
// hands control back. Exactly one simulated process executes at any real
// instant, so simulated shared memory needs no locking and every run is
// deterministic given its seed and job set.
//
// Multiprocessor parallelism is modelled as an interleaving: each simulated
// processor has a virtual clock that advances by the cost of the operations
// it executes, and the scheduler always advances the processor with the
// smallest clock. This yields a fair, deterministic, sequentially-consistent
// interleaving of the processors' operations.
package sched

import (
	"errors"
	"fmt"
	"iter"
	"math"
	"math/rand"
	"runtime/debug"
	"sync"

	"repro/internal/shmem"
	"repro/internal/trace"
)

// Priority is a process priority; larger values are more urgent. Priorities
// on one processor need not be distinct, but a process can only be preempted
// by a strictly higher priority. The type itself lives in internal/shmem so
// the algorithms (written against shmem.Ctx) can name it without depending
// on the simulator.
type Priority = shmem.Priority

// Granularity selects where preemption points fall.
type Granularity int

const (
	// Fine places a preemption point at every shared-memory operation.
	// This is the faithful model; use it for all correctness testing.
	Fine Granularity = iota + 1
	// Coarse places preemption points only at synchronizing operations
	// (CAS, CAS2, CCAS) and explicit Yields. Plain loads and stores run
	// without yielding, which makes large throughput experiments about
	// two orders of magnitude faster while preserving the helping
	// behaviour (helping is triggered at synchronizing operations).
	Coarse
)

// String returns the granularity name.
func (g Granularity) String() string {
	switch g {
	case Fine:
		return "fine"
	case Coarse:
		return "coarse"
	default:
		return fmt.Sprintf("granularity(%d)", int(g))
	}
}

// Config configures a simulation.
type Config struct {
	// Processors is the number of simulated processors (P in the paper).
	Processors int
	// MemWords is the capacity of the simulated shared memory.
	MemWords int
	// Seed seeds all randomness of the run.
	Seed int64
	// Granularity selects preemption-point density; defaults to Fine.
	Granularity Granularity
	// SyncCost is the virtual-time cost of a synchronizing operation
	// (CAS, CAS2, CCAS); plain loads and stores always cost one unit.
	// The default (0 meaning 1) prices synchronization like an ordinary
	// access; real machines pay a coherence premium, which the stride
	// ablation (A4) explores by raising this.
	SyncCost int64
	// MaxSteps aborts the run when the global count of executed slices
	// exceeds it; 0 means a large default. A triggered watchdog is how
	// livelock (e.g. the spin-lock priority-inversion demo) is detected.
	MaxSteps uint64
	// EnableTrace records scheduling events and algorithm annotations.
	EnableTrace bool
	// DisableRunAhead turns off the run-ahead slice-batching fast path for
	// this run, forcing one scheduler round trip per slice. The schedule is
	// identical either way (see DESIGN.md §10); the switch exists for
	// benchmarking and differential testing, not for correctness.
	DisableRunAhead bool
	// Policy is the scheduling discipline; nil means DefaultPolicy (the
	// paper's strict-priority model). The run-ahead fast path is armed for
	// the default policy and for every NonPreemptive template
	// (fcfs/priority-fcfs/sjf — run-to-completion dispatch makes batching
	// trivially sound); preemptive non-default policies (age-slo,
	// reverse-priority) take the serial scheduler loop (see DESIGN.md §13).
	Policy Policy
}

// DefaultMaxSteps is the watchdog limit used when Config.MaxSteps is zero.
const DefaultMaxSteps = 200_000_000

// ErrWatchdog is returned (wrapped) by Run when the step watchdog fires.
var ErrWatchdog = errors.New("sched: watchdog: step limit exceeded (livelock or runaway workload)")

// errAborted is the sentinel panic value used to unwind aborted coroutines.
var errAborted = errors.New("sched: aborted")

// procState tracks a simulated process through its lifecycle.
type procState int

const (
	stateUnreleased procState = iota + 1
	stateReady
	stateRunning
	stateDone
)

// JobSpec describes one simulated process (one "job" in the workloads).
type JobSpec struct {
	// Name appears in traces; defaults to "p<id>".
	Name string
	// CPU is the processor the job runs on (0-based).
	CPU int
	// Prio is the job's fixed priority.
	Prio Priority
	// Slot is the algorithm-level process identifier (the p in Status[p],
	// Par[p], ...). Several jobs may reuse one slot as long as their
	// executions never overlap; the workload layer is responsible for
	// that. Defaults to the job's own id if negative.
	Slot int
	// At releases the job at the given virtual time on its processor.
	At int64
	// AfterSlices, when >= 0, releases the job after the given number of
	// globally-executed slices instead of at a virtual time. This is the
	// deterministic handle used by adversarial and exhaustive schedules:
	// "release q exactly when the victim has executed k steps".
	AfterSlices int64
	// Cost is an advance estimate of the job's length for cost-aware
	// policies (sjf): the registry drivers pass their op counts. It buys
	// no execution time — the job still runs until its body returns — and
	// the default policy ignores it.
	Cost int64
	// Body is the job's code. It runs on the simulated processor and must
	// perform all shared-memory access through the provided Env.
	Body func(*Env)
}

// Proc is a simulated process.
type Proc struct {
	id    int
	spec  JobSpec
	state procState
	env   *Env

	resume chan struct{}
	yield  chan yieldMsg
	// next, when non-nil, resumes the coroutine through iter.Pull's direct
	// goroutine switch instead of the channel rendezvous — the run-ahead
	// fast core's handoff (see startIfNeeded). The coroutine is a
	// persistent loop (coloop): it parks at the final yield of one job
	// body and picks up the next body on resume, so a pooled Proc reuses
	// one coroutine (and its stack) across every schedule of a sweep.
	// stop unwinds the parked loop (stopCoro); the serial mode keeps the
	// channel pair as the reference implementation.
	next func() (yieldMsg, bool)
	stop func()

	started   bool
	enqueueNo int   // FIFO tiebreak among equal policy keys
	key       int64 // policy ordering key, computed once at release
	// quiescent marks a slice-triggered release that fired at system
	// quiescence: its AfterSlices threshold lay beyond the work that
	// actually ran, so any larger threshold produces the identical
	// schedule. The equivalence pruner (internal/explore) keys on it.
	quiescent bool

	// Released, Started, Completed are virtual times on the job's CPU.
	Released  int64
	Started   int64
	Completed int64
	// Preemptions counts how many times the process was preempted.
	Preemptions int
	// Slices counts the scheduler slices the process executed;
	// Dispatches counts how many times it was (re)placed on its
	// processor. Both feed the run report (internal/metrics).
	Slices     uint64
	Dispatches int
	// helpGiven counts help invocations this process performed on
	// another process's operation (Env.NoteHelp); opSamples holds the
	// per-operation response times it recorded (Env.RecordOp).
	helpGiven int
	opSamples []int64
}

// ID returns the process identifier (dense, in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the job's display name.
func (p *Proc) Name() string { return p.spec.Name }

// Slot returns the algorithm-level process identifier (JobSpec.Slot).
func (p *Proc) Slot() int { return p.spec.Slot }

// HelpGiven returns the number of help invocations this process performed
// on other processes' operations (Env.NoteHelp).
func (p *Proc) HelpGiven() int { return p.helpGiven }

// QuiescentRelease reports whether the process's slice-triggered release
// fired at system quiescence rather than at its AfterSlices threshold —
// i.e. the threshold was aimed past the work that actually ran, so every
// larger threshold yields the identical schedule.
func (p *Proc) QuiescentRelease() bool { return p.quiescent }

type yieldKind int

const (
	yieldPoint yieldKind = iota + 1
	yieldFinished
	yieldPanicked
)

type yieldMsg struct {
	kind  yieldKind
	cost  int64
	pval  any
	stack []byte
}

type cpuState struct {
	id      int
	clock   int64
	current *Proc
	ready   readyHeap // not including current
}

// Sim is one simulation run: a memory, a set of processors, and a job set.
type Sim struct {
	cfg  Config
	mem  *shmem.Mem
	cpus []*cpuState
	proc []*Proc
	log  *trace.Log

	// rng is seeded lazily: rngDirty marks that rng does not yet reflect
	// rngSeed. Most sweep schedules never draw randomness, and seeding a
	// math/rand source costs ~600 iterations — eager reseeding on every
	// Reset dominated short-run sweeps.
	rng      *rand.Rand
	rngSeed  int64
	rngDirty bool

	pendingTime  []*Proc // released by virtual time, sorted by (At, id)
	pendingSlice []*Proc // released by slice count, sorted by (AfterSlices, id)

	slices    uint64
	enqueueNo int
	ran       bool
	aborting  bool
	failure   error

	// policy is the run's scheduling discipline (never nil after Reset);
	// policyDefault caches whether it is the strict-priority default (the
	// reports' and signatures' "no policy stamp" case), and policyRunAhead
	// whether the run-ahead fast path is sound for it: the default or any
	// NonPreemptive template.
	policy         Policy
	policyDefault  bool
	policyRunAhead bool

	// procFree recycles Proc/Env pairs (and their coroutine channels)
	// across Reset: sweeps spawn the same small cast thousands of times,
	// and the Proc+Env+2-channel allocation per job was a top line in the
	// per-schedule profile.
	procFree []*Proc

	// busy and idle cache the occupancy partition of cpus (both in cpu-id
	// order, so min-clock scans preserve the lowest-index tie-break).
	// occDirty marks the partition stale; it is set whenever a processor
	// gains its first ready process or loses its last one, and the run
	// loop rebuilds the partition lazily. This replaces the per-slice
	// O(P) occupancy rescan.
	busy     []*cpuState
	idle     []*cpuState
	occDirty bool

	// helpReceived counts, per algorithm-level slot, how many help
	// invocations other processes performed on operations announced
	// under that slot (Env.NoteHelp).
	helpReceived map[int]int
}

// New creates a simulation from the given configuration.
func New(cfg Config) *Sim { return new(Sim).Reset(cfg) }

// Reset reinitializes s to a freshly-constructed simulation for cfg,
// reusing its memory words, processor states, and slice capacity. A Sim
// reset from cfg is observably identical to New(cfg): same schedules, same
// reports, same traces. Procs handed out by a previous run are recycled by
// the next run's Spawns — do not retain a *Proc (or its Env) across Reset;
// run reports (Sim.Report) copy everything they need. The trace log is
// always freshly allocated so logs returned by Trace stay valid after the
// Sim is reused. Reset returns s for chaining.
func (s *Sim) Reset(cfg Config) *Sim {
	if cfg.Processors <= 0 {
		cfg.Processors = 1
	}
	if cfg.MemWords <= 0 {
		cfg.MemWords = 1 << 16
	}
	if cfg.Granularity == 0 {
		cfg.Granularity = Fine
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if cfg.SyncCost <= 0 {
		cfg.SyncCost = 1
	}
	s.cfg = cfg
	s.policy = cfg.Policy
	if s.policy == nil {
		s.policy = defaultPolicy
	}
	_, s.policyDefault = s.policy.(priorityPolicy)
	s.policyRunAhead = s.policyDefault
	if !s.policyRunAhead {
		_, s.policyRunAhead = s.policy.(NonPreemptive)
	}
	if s.mem == nil {
		s.mem = shmem.New(cfg.MemWords)
	} else {
		s.mem.Reset(cfg.MemWords)
	}
	s.rngSeed = cfg.Seed
	s.rngDirty = true
	if len(s.cpus) != cfg.Processors {
		s.cpus = make([]*cpuState, 0, cfg.Processors)
		for i := 0; i < cfg.Processors; i++ {
			s.cpus = append(s.cpus, &cpuState{id: i})
		}
	} else {
		for _, c := range s.cpus {
			c.clock = 0
			c.current = nil
			clear(c.ready)
			c.ready = c.ready[:0]
		}
	}
	for _, p := range s.proc {
		if p.started && p.state != stateDone {
			// Live coroutine (Reset without Run/shutdown): a parked
			// pull-mode loop can be unwound and recycled; a channel-mode
			// goroutine is blocked in a send we cannot drain here, so
			// abandon it rather than hand it a recycled Proc.
			if p.next == nil {
				continue
			}
			p.stopCoro()
		}
		s.procFree = append(s.procFree, p)
	}
	clear(s.proc)
	s.proc = s.proc[:0]
	clear(s.pendingTime)
	s.pendingTime = s.pendingTime[:0]
	clear(s.pendingSlice)
	s.pendingSlice = s.pendingSlice[:0]
	s.slices = 0
	s.enqueueNo = 0
	s.ran = false
	s.aborting = false
	s.failure = nil
	s.busy = s.busy[:0]
	s.idle = s.idle[:0]
	s.occDirty = true
	if s.helpReceived == nil {
		s.helpReceived = make(map[int]int)
	} else {
		clear(s.helpReceived)
	}
	s.log = nil
	if cfg.EnableTrace {
		s.log = &trace.Log{}
		// Attribute failed synchronization attempts to the writer that
		// won the word: the hook fires inside the failing operation's
		// simulator step, charges no virtual time, and becomes a
		// "casfail" annotation that internal/tracex turns into a
		// failed-step → winning-writer causality edge.
		s.mem.SetFailHook(func(ev shmem.FailEvent) {
			if ev.Proc < 0 || ev.Proc >= len(s.proc) {
				return
			}
			p := s.proc[ev.Proc]
			s.emitNote(p.spec.CPU, p, "casfail",
				[]trace.Field{
					trace.I("addr", int64(ev.Addr)),
					trace.I("winner", int64(ev.Winner)),
					trace.I("wstep", int64(ev.WinnerStep)),
				})
		})
	}
	return s
}

// simPool backs Acquire/Release. Pool pick order is nondeterministic, but a
// Reset Sim is state-identical to a new one, so run results are unaffected.
var simPool = sync.Pool{New: func() any { return new(Sim) }}

// Acquire returns a Sim for cfg from an internal pool, equivalent to
// New(cfg) but reusing the memory words, processor states, and bookkeeping
// slices of a previously Released Sim. Use it in sweep loops that build
// thousands of short-lived simulations; pair with Release.
func Acquire(cfg Config) *Sim { return simPool.Get().(*Sim).Reset(cfg) }

// Release returns a Sim to the pool for reuse. Only call it after Run has
// returned — or on a Sim that was never Run — and do not touch s, its
// Procs' Envs, or its Mem afterwards. Trace logs obtained from Trace
// remain valid: Reset never reuses them.
//
// Release unwinds every parked pull-mode coroutine (coloop) first: those
// persist across Reset to serve Proc recycling within a sweep, but a Sim
// sitting in (or dropped from) the pool must not hold goroutines.
func Release(s *Sim) {
	if s == nil {
		return
	}
	for _, p := range s.proc {
		p.stopCoro()
	}
	for _, p := range s.procFree {
		p.stopCoro()
	}
	simPool.Put(s)
}

// runAheadEnabled globally gates the run-ahead fast path (see
// grantRunAhead). It exists so benchmarks and differential tests can compare
// the serial and batched execution paths without plumbing a Config flag
// through every call site; both paths produce byte-identical runs. It must
// only be toggled while no simulation is running.
var runAheadEnabled = true

// SetRunAhead enables or disables the run-ahead fast path process-wide.
// For benchmarking and differential testing only; the schedule, trace, and
// report of every run are identical in both modes.
func SetRunAhead(enabled bool) { runAheadEnabled = enabled }

// Mem returns the simulation's shared memory, for setup code and checkers.
func (s *Sim) Mem() *shmem.Mem { return s.mem }

// Trace returns the trace log, or nil when tracing is disabled.
func (s *Sim) Trace() *trace.Log { return s.log }

// Processors returns the number of simulated processors.
func (s *Sim) Processors() int { return s.cfg.Processors }

// Rand returns the run's seeded random source, for workload construction.
// The source is (re)seeded on first use after New/Reset, so the draw
// sequence depends only on Config.Seed, never on the Sim's pool history.
func (s *Sim) Rand() *rand.Rand {
	if s.rngDirty {
		s.rngDirty = false
		if s.rng == nil {
			s.rng = rand.New(rand.NewSource(s.rngSeed))
		} else {
			s.rng.Seed(s.rngSeed)
		}
	}
	return s.rng
}

// Slices returns the number of slices executed so far.
func (s *Sim) Slices() uint64 { return s.slices }

// Policy returns the run's scheduling discipline (never nil).
func (s *Sim) Policy() Policy { return s.policy }

// PolicyLabel returns the policy name as run reports stamp it: empty for
// the default strict-priority discipline (keeping pre-policy reports,
// goldens, and coverage signatures unchanged), the template name otherwise.
func (s *Sim) PolicyLabel() string {
	if s.policyDefault {
		return ""
	}
	return s.policy.Name()
}

// HelpReceived returns the number of help invocations other processes
// performed on operations announced under the given algorithm-level slot.
func (s *Sim) HelpReceived(slot int) int { return s.helpReceived[slot] }

// Spawn registers a job. All jobs must be spawned before Run.
func (s *Sim) Spawn(spec JobSpec) *Proc {
	if s.ran {
		panic("sched: Spawn after Run")
	}
	if spec.CPU < 0 || spec.CPU >= s.cfg.Processors {
		panic(fmt.Sprintf("sched: job %q on invalid cpu %d (have %d)", spec.Name, spec.CPU, s.cfg.Processors))
	}
	if spec.Body == nil {
		panic("sched: job with nil body")
	}
	p := s.takeProc()
	p.id = len(s.proc)
	p.spec = spec
	p.state = stateUnreleased
	if p.spec.Name == "" {
		p.spec.Name = fmt.Sprintf("p%d", p.id)
	}
	if p.spec.Slot < 0 {
		p.spec.Slot = p.id
	}
	*p.env = Env{sim: s, p: p, cpu: s.cpus[spec.CPU]}
	s.proc = append(s.proc, p)
	if spec.AfterSlices >= 0 && spec.At == 0 {
		// Slice-triggered release. (AfterSlices==0 with At==0 releases
		// immediately, same as At: 0, so both encodings agree.)
		s.pendingSlice = append(s.pendingSlice, p)
	} else {
		s.pendingTime = append(s.pendingTime, p)
	}
	return p
}

// takeProc returns a recycled Proc from the free list — all fields zeroed,
// Env, channel pair, parked coroutine, and opSamples backing kept — or a
// fresh one. The coroutine channels are created lazily by startIfNeeded:
// the pull-mode fast core never needs them.
func (s *Sim) takeProc() *Proc {
	if n := len(s.procFree); n > 0 {
		p := s.procFree[n-1]
		s.procFree[n-1] = nil
		s.procFree = s.procFree[:n-1]
		e, resume, yield, samples := p.env, p.resume, p.yield, p.opSamples[:0]
		next, stop := p.next, p.stop
		*p = Proc{resume: resume, yield: yield, next: next, stop: stop, opSamples: samples}
		p.env = e
		return p
	}
	return &Proc{env: &Env{}}
}

// SpawnAt is shorthand for a time-released job.
func (s *Sim) SpawnAt(at int64, cpu int, prio Priority, name string, body func(*Env)) *Proc {
	return s.Spawn(JobSpec{Name: name, CPU: cpu, Prio: prio, Slot: -1, At: at, AfterSlices: -1, Body: body})
}

// Procs returns all spawned processes in spawn order.
func (s *Sim) Procs() []*Proc { return s.proc }

func (s *Sim) emit(kind trace.Kind, cpu int, p *Proc, msg string) {
	if s.log == nil {
		return
	}
	ev := trace.Event{Time: s.cpus[cpu].clock, CPU: cpu, Proc: -1, Kind: kind, Msg: msg}
	if p != nil {
		ev.Proc = p.id
		ev.ProcName = p.spec.Name
	}
	s.log.Append(ev)
}

// emitNote appends a structured annotation: key/args carry the typed form
// consumed by internal/tracex. The rendered text is not materialized here —
// trace.Event.Message formats it on demand — and the args are copied into
// the event's inline field array, so emission allocates nothing beyond the
// log's amortized chunk growth.
func (s *Sim) emitNote(cpu int, p *Proc, key string, args []trace.Field) {
	if s.log == nil {
		return
	}
	ev := trace.Event{
		Time: s.cpus[cpu].clock, CPU: cpu, Proc: -1,
		Kind: trace.KindAnnotate,
		Key:  key,
	}
	ev.SetFields(args)
	if p != nil {
		ev.Proc = p.id
		ev.ProcName = p.spec.Name
	}
	s.log.Append(ev)
}

// release moves a job into its processor's ready set, possibly preempting.
func (s *Sim) release(p *Proc) {
	c := s.cpus[p.spec.CPU]
	if c.current == nil && len(c.ready) == 0 {
		// The processor goes idle → busy.
		s.occDirty = true
	}
	p.state = stateReady
	p.Released = c.clock
	p.enqueueNo = s.enqueueNo
	s.enqueueNo++
	p.key = s.policy.Key(JobInfo{
		ID: p.id, CPU: p.spec.CPU, Slot: p.spec.Slot,
		Prio: p.spec.Prio, Cost: p.spec.Cost, Released: p.Released,
	})
	s.emit(trace.KindArrival, c.id, p, "")
	c.ready.push(p)
}

// deliverTimeArrivals releases time-triggered jobs whose time has come on
// their processor.
func (s *Sim) deliverTimeArrivals() {
	kept := s.pendingTime[:0]
	for _, p := range s.pendingTime {
		if p.spec.At <= s.cpus[p.spec.CPU].clock {
			s.release(p)
		} else {
			kept = append(kept, p)
		}
	}
	s.pendingTime = kept
}

// deliverSliceArrivals releases slice-triggered jobs whose trigger has fired.
func (s *Sim) deliverSliceArrivals() {
	kept := s.pendingSlice[:0]
	for _, p := range s.pendingSlice {
		if uint64(p.spec.AfterSlices) <= s.slices {
			s.release(p)
		} else {
			kept = append(kept, p)
		}
	}
	s.pendingSlice = kept
}

// pick selects the process to run on cpu c under the policy's rules, or nil.
func (s *Sim) pick(c *cpuState) *Proc {
	if c.current != nil && c.current.env.noPreempt > 0 {
		// Preemption disabled (Figure 8(b) lines 3-4): the current
		// process keeps the processor even against higher priorities.
		return c.current
	}
	if len(c.ready) == 0 {
		return c.current
	}
	top := c.ready[0]
	if c.current != nil && !s.policy.Preempts(top.key, c.current.key) {
		// Equal keys never preempt (no time slicing); under the default
		// policy this is exactly "equal or lower priority never
		// preempts".
		return c.current
	}
	// Preempt or dispatch. A preempted process keeps its original
	// enqueueNo, so it rejoins the ready set exactly where the previous
	// stable sort would have placed it.
	if c.current != nil {
		s.emit(trace.KindPreempt, c.id, c.current, "")
		c.current.state = stateReady
		c.current.Preemptions++
		c.ready.push(c.current)
	}
	top = c.ready.pop()
	c.current = top
	// The state transition (and its Dispatch trace event) is applied by
	// the run loop, which observes top.state != stateRunning.
	return top
}

// startIfNeeded launches the coroutine on first dispatch: through
// iter.Pull's direct goroutine switch when the run-ahead fast core is
// armed, or through the reference channel rendezvous otherwise. The mode is
// fixed per process at first dispatch; runSlice and shutdown key on p.next.
func (s *Sim) startIfNeeded(p *Proc) {
	if p.started {
		return
	}
	p.started = true
	p.Started = s.cpus[p.spec.CPU].clock
	if !s.cfg.DisableRunAhead && runAheadEnabled && s.policyRunAhead {
		// Fast core: iter.Pull hands control scheduler ↔ coroutine with a
		// direct goroutine switch instead of parking both sides on a
		// channel — the dominant per-slice cost on contended
		// multiprocessor runs, where the clock-crossing horizon forbids
		// any batching grant. A recycled Proc's coroutine is still parked
		// in its coloop from the previous schedule and resumes into the
		// new body directly. Serial mode keeps the channel pair below as
		// the reference implementation the differential suite pins
		// byte-identical.
		if p.next == nil {
			p.next, p.stop = iter.Pull(p.coloop)
		}
		return
	}
	// Switching a recycled pull-mode Proc to the serial path: unwind its
	// parked coroutine first so it cannot leak behind the channel pair.
	p.stopCoro()
	if p.resume == nil {
		p.resume = make(chan struct{})
		p.yield = make(chan yieldMsg)
	}
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if r == errAborted { //nolint:errorlint // sentinel identity is intended
					p.yield <- yieldMsg{kind: yieldFinished, cost: p.env.pending}
					return
				}
				p.yield <- yieldMsg{kind: yieldPanicked, pval: r, stack: debug.Stack()}
				return
			}
			p.yield <- yieldMsg{kind: yieldFinished, cost: p.env.pending}
		}()
		p.spec.Body(p.env)
	}()
}

// coloop is the persistent pull-mode coroutine: one job body per resume,
// parking at the body's final yield until the scheduler installs the next
// body (Proc recycling across Reset — see takeProc) or unwinds the loop
// (stopCoro makes the parked yield return false). iter.Pull guarantees the
// coroutine is suspended whenever the scheduler runs (next() and yield()
// form a strict rendezvous), so the exclusivity argument of the channel
// pair carries over unchanged. Persisting the coroutine across schedules
// removes the per-run iter.Pull construction — coroutine, stack and
// closure — that dominated the sweep-mode allocation profile.
func (p *Proc) coloop(yield func(yieldMsg) bool) {
	for yield(p.runBody(yield)) {
	}
}

// runBody executes the current job body, translating completion, panic and
// abort into the final yield message. An aborted body (errAborted — the
// scheduler shutting down, or stopCoro unwinding the loop) finishes like a
// completed one; coloop's closing yield then reports it or returns false.
func (p *Proc) runBody(yield func(yieldMsg) bool) (msg yieldMsg) {
	e := p.env
	e.yieldFast = yield
	defer func() {
		e.yieldFast = nil
		if r := recover(); r != nil {
			if r == errAborted { //nolint:errorlint // sentinel identity is intended
				msg = yieldMsg{kind: yieldFinished, cost: e.pending}
				return
			}
			msg = yieldMsg{kind: yieldPanicked, pval: r, stack: debug.Stack()}
			return
		}
		msg = yieldMsg{kind: yieldFinished, cost: e.pending}
	}()
	p.spec.Body(e)
	return
}

// stopCoro unwinds a parked pull-mode coroutine: iter.Pull's stop makes
// the pending yield return false, which ends coloop (a mid-body park
// unwinds through the errAborted sentinel first). No-op without one. Only
// call while the coroutine is suspended — after Run has returned, or on a
// recycled Proc before its first dispatch.
func (p *Proc) stopCoro() {
	if p.stop == nil {
		return
	}
	p.stop()
	p.next, p.stop = nil, nil
}

// runSlice resumes p until its next preemption point and applies the cost.
func (s *Sim) runSlice(c *cpuState, p *Proc) {
	s.startIfNeeded(p)
	p.Slices++
	s.mem.SetCurrentProc(p.id)
	var msg yieldMsg
	if p.next != nil {
		m, ok := p.next()
		if !ok {
			// Defensive: a pull coroutine only finishes without a message
			// when stopped; treat it as completed.
			m = yieldMsg{kind: yieldFinished}
		}
		// On a final message the coroutine stays parked inside coloop's
		// closing yield, ready for the Proc's next body (takeProc) —
		// Release unwinds it before pooling the Sim.
		msg = m
	} else {
		p.resume <- struct{}{}
		msg = <-p.yield
	}
	s.mem.SetCurrentProc(-1)
	if p.env.horizon > 0 {
		// The slice ran with a run-ahead grant, so the coroutine may have
		// concluded slices locally without the serial loop's per-boundary
		// idle-clock sync. Those syncs only ever raise idle clocks to the
		// running processor's clock, so applying the last boundary value —
		// c.clock right now, before this slice's closing cost — leaves
		// every idle clock exactly where slice-by-slice execution would
		// have. Without this, a quiescence-released slice-triggered job
		// would observe a stale idle clock.
		for _, idle := range s.idle {
			if idle.clock < c.clock {
				idle.clock = c.clock
			}
		}
	}
	switch msg.kind {
	case yieldPoint:
		c.clock += msg.cost
	case yieldFinished:
		c.clock += msg.cost
		p.state = stateDone
		p.Completed = c.clock
		c.current = nil
		if len(c.ready) == 0 {
			// The processor goes busy → idle.
			s.occDirty = true
		}
		s.emit(trace.KindComplete, c.id, p, "")
	case yieldPanicked:
		p.state = stateDone
		c.current = nil
		if len(c.ready) == 0 {
			s.occDirty = true
		}
		if s.failure == nil {
			s.failure = fmt.Errorf("sched: process %q (id %d) panicked: %v\n%s", p.spec.Name, p.id, msg.pval, msg.stack)
		}
	}
	// Note: p.env.pending is owned by the coroutine goroutine (reset in
	// yieldNow before the send); the scheduler must not touch it.
}

// Run executes the simulation until every released job completes. It returns
// the first process panic or a watchdog error, if any. Run may be called
// once.
func (s *Sim) Run() error {
	if s.ran {
		return errors.New("sched: Run called twice")
	}
	s.ran = true
	for s.failure == nil {
		if len(s.pendingSlice) > 0 {
			s.deliverSliceArrivals()
		}
		if len(s.pendingTime) > 0 {
			s.deliverTimeArrivals()
		}
		if s.occDirty {
			s.rebuildOccupancy()
		}

		// Choose the busy processor with the smallest clock. The cached
		// busy list is in cpu-id order, so the first strictly-smaller
		// scan keeps the lowest-index tie-break of the full rescan it
		// replaces.
		var c *cpuState
		for _, cand := range s.busy {
			if c == nil || cand.clock < c.clock {
				c = cand
			}
		}
		if c != nil && len(s.idle) > 0 {
			// Idle processors' wall clocks advance with the rest of
			// the machine, so a timed arrival on an idle processor
			// is delivered at its real time, not at system
			// quiescence.
			advanced := false
			for _, idle := range s.idle {
				if idle.clock < c.clock {
					idle.clock = c.clock
					advanced = true
				}
			}
			if advanced && len(s.pendingTime) > 0 {
				s.deliverTimeArrivals()
				continue
			}
		}
		if c == nil {
			// All processors idle: jump to the earliest pending
			// time arrival, if any.
			if s.jumpToNextArrival() {
				continue
			}
			// Slice-triggered jobs whose trigger lies beyond the
			// work that actually ran are released at quiescence
			// (an adversary aimed past its victim simply runs
			// last).
			if len(s.pendingSlice) > 0 {
				for _, p := range s.pendingSlice {
					p.quiescent = true
					s.release(p)
				}
				s.pendingSlice = s.pendingSlice[:0]
				continue
			}
			break // no work left
		}
		p := s.pick(c)
		if p == nil {
			continue
		}
		if p.state != stateRunning {
			p.state = stateRunning
			p.Dispatches++
			s.emit(trace.KindDispatch, c.id, p, "")
		}
		s.grantRunAhead(c, p)
		s.runSlice(c, p)
		s.slices++
		if s.slices > s.cfg.MaxSteps {
			s.failure = fmt.Errorf("%w (limit %d)", ErrWatchdog, s.cfg.MaxSteps)
		}
	}
	s.shutdown()
	return s.failure
}

// rebuildOccupancy recomputes the busy/idle partition of the processors,
// both lists in cpu-id order.
func (s *Sim) rebuildOccupancy() {
	s.busy = s.busy[:0]
	s.idle = s.idle[:0]
	for _, c := range s.cpus {
		if c.current != nil || len(c.ready) > 0 {
			s.busy = append(s.busy, c)
		} else {
			s.idle = append(s.idle, c)
		}
	}
	s.occDirty = false
}

// grantRunAhead decides how far p may run ahead of the scheduler before the
// next event that could change the schedule, and arms (or disarms) the
// coroutine's yield fast path accordingly.
//
// The grant is sound — the batched run is byte-identical to slice-by-slice
// execution (DESIGN.md §10) — because nothing observable can happen below
// the granted horizon/budget:
//
//   - budget: at most min over pending slice-triggered jobs of
//     (AfterSlices − slices − 1) fast yields may run, so the batch hands
//     back no later than the slice boundary at which the next
//     slice-triggered release fires; the watchdog term (MaxSteps − slices)
//     likewise makes the batch hand back at the exact slice the watchdog
//     would have fired on.
//   - horizon: the batch stops at the first slice boundary ≥ the earliest
//     time-triggered arrival that can actually fire (one targeting c or an
//     idle processor; arrivals on other busy processors cannot fire because
//     those clocks are frozen while c runs), and ≥ the clock of any other
//     busy processor (beyond it, c might no longer be the min-clock choice).
//     Both are strict-< continuations: at equality the coroutine hands back
//     and the scheduler re-decides, exactly like the serial loop.
//   - the ready set of c cannot change during the batch (no arrivals below
//     the horizon/budget), and a grant is refused when a higher-priority
//     process is already waiting (only a lapsing NoPreempt section keeps p
//     running, and it may lapse at any slice boundary).
func (s *Sim) grantRunAhead(c *cpuState, p *Proc) {
	e := p.env
	e.budget, e.horizon = 0, 0
	if s.cfg.DisableRunAhead || !runAheadEnabled || !s.policyRunAhead {
		// Preemptive non-default policies take the serial loop: the
		// grant's soundness argument below leans on preemption being
		// either the strict-priority rule or absent. NonPreemptive
		// templates batch too — their Preempts is constantly false, so
		// the waiting-process refusal below is vacuous and the ready set
		// still cannot change inside a grant. Both paths are
		// byte-identical whenever the grant is armed, so this gate only
		// costs speed, never correctness.
		return
	}
	if len(c.ready) > 0 && s.policy.Preempts(c.ready[0].key, p.key) {
		return
	}
	b := int64(s.cfg.MaxSteps) - int64(s.slices)
	for _, q := range s.pendingSlice {
		if d := q.spec.AfterSlices - int64(s.slices) - 1; d < b {
			b = d
		}
	}
	if b <= 0 {
		return
	}
	horizon := int64(math.MaxInt64)
	for _, q := range s.pendingTime {
		qc := s.cpus[q.spec.CPU]
		if qc == c || (qc.current == nil && len(qc.ready) == 0) {
			if q.spec.At < horizon {
				horizon = q.spec.At
			}
		}
	}
	for _, o := range s.busy {
		if o != c && o.clock < horizon {
			horizon = o.clock
		}
	}
	if horizon <= c.clock {
		return
	}
	e.budget, e.horizon = b, horizon
}

// jumpToNextArrival advances an idle system to its earliest time arrival.
// It reports whether any arrival existed.
func (s *Sim) jumpToNextArrival() bool {
	var best *Proc
	for _, p := range s.pendingTime {
		if best == nil || p.spec.At < best.spec.At ||
			(p.spec.At == best.spec.At && p.id < best.id) {
			best = p
		}
	}
	if best == nil {
		// Slice-triggered jobs can never fire on an idle system
		// (slices only advance when something runs); Run reports them.
		return false
	}
	c := s.cpus[best.spec.CPU]
	if c.clock < best.spec.At {
		c.clock = best.spec.At
	}
	s.deliverTimeArrivals()
	return true
}

// shutdown unwinds any live coroutines so no goroutines leak.
func (s *Sim) shutdown() {
	s.aborting = true
	for _, p := range s.proc {
		if !p.started || p.state == stateDone || p.state == stateUnreleased {
			continue
		}
		// Resume; the coroutine observes aborting at its next
		// preemption point and unwinds via the errAborted sentinel.
		if p.next != nil {
			// Resume until the body unwinds (errAborted at the next
			// preemption point surfaces as its final yield); the loop
			// then parks for reuse, like a normal completion.
			for {
				m, ok := p.next()
				if !ok || m.kind != yieldPoint {
					break
				}
			}
		} else {
			p.resume <- struct{}{}
			msg := <-p.yield
			for msg.kind == yieldPoint {
				p.resume <- struct{}{}
				msg = <-p.yield
			}
		}
		p.state = stateDone
	}
}

// Elapsed returns the makespan: the largest processor clock.
func (s *Sim) Elapsed() int64 {
	var max int64
	for _, c := range s.cpus {
		if c.clock > max {
			max = c.clock
		}
	}
	return max
}

// CPUClock returns processor cpu's virtual clock.
func (s *Sim) CPUClock(cpu int) int64 { return s.cpus[cpu].clock }

package sched

import (
	"repro/internal/metrics"
)

// Report assembles the run's metrics.Report: per-process memory-operation
// tallies (from shmem), scheduling figures (slices, dispatches,
// preemptions, dispatch latency, response time), helping counts
// (Env.NoteHelp) and per-operation samples (Env.RecordOp), plus the
// object-level summaries. Call it after Run; calling it mid-run yields a
// consistent snapshot of everything executed so far.
//
// The object string names the data structure (or scenario) under
// measurement; it becomes the report's identity and the BENCH_<object>.json
// filename in cmd/wfbench.
func (s *Sim) Report(object string) *metrics.Report {
	r := &metrics.Report{
		Object:      object,
		Seed:        s.cfg.Seed,
		Processors:  s.cfg.Processors,
		Granularity: s.cfg.Granularity.String(),
		SyncCost:    s.cfg.SyncCost,
		ElapsedVT:   s.Elapsed(),
		Slices:      s.slices,
		Mem:         s.mem.TotalOpCounts(),
	}
	if !s.policyDefault {
		// Stamped only off the default so the golden report JSONs (and
		// their coverage signatures) stay byte-identical.
		r.Policy = s.policy.Name()
	}
	var allOps []int64
	for _, p := range s.proc {
		pr := metrics.ProcReport{
			ID:           p.id,
			Name:         p.spec.Name,
			CPU:          p.spec.CPU,
			Prio:         int(p.spec.Prio),
			Slot:         p.spec.Slot,
			ReleasedVT:   p.Released,
			StartedVT:    p.Started,
			CompletedVT:  p.Completed,
			Slices:       p.Slices,
			Dispatches:   p.Dispatches,
			Preemptions:  p.Preemptions,
			Mem:          s.mem.ProcOpCounts(p.id),
			HelpGiven:    p.helpGiven,
			HelpReceived: s.helpReceived[p.spec.Slot],
			OpTime:       metrics.Summarize(p.opSamples),
		}
		if p.started {
			pr.DispatchLatencyVT = p.Started - p.Released
		}
		if p.state == stateDone && p.Completed >= p.Released {
			pr.ResponseVT = p.Completed - p.Released
		}
		// Interference: preemptions on the process's own processor plus
		// every process concurrently schedulable on another processor
		// (each can force at most a bounded amount of helping work).
		pr.Interference = p.Preemptions
		for _, q := range s.proc {
			if q != p && q.spec.CPU != p.spec.CPU {
				pr.Interference++
			}
		}
		allOps = append(allOps, p.opSamples...)
		r.Procs = append(r.Procs, pr)
	}
	r.OpTime = metrics.Summarize(allOps)
	r.Finalize()
	return r
}

package sched

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

// TestSingleProcRuns checks the trivial lifecycle: one job, one processor.
func TestSingleProcRuns(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	a := s.Mem().MustAlloc("x", 1)
	ran := false
	s.SpawnAt(0, 0, 1, "solo", func(e *Env) {
		e.Store(a, 7)
		ran = true
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("body never ran")
	}
	if got := s.Mem().Peek(a); got != 7 {
		t.Errorf("x = %d, want 7", got)
	}
	if s.Elapsed() != 1 {
		t.Errorf("Elapsed = %d, want 1 (one store)", s.Elapsed())
	}
}

// TestPriorityPreemption: a higher-priority arrival must preempt the running
// process at its next preemption point, and the victim must not run again
// until the preemptor completes.
func TestPriorityPreemption(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1, EnableTrace: true})
	x := s.Mem().MustAlloc("x", 1)

	var order []string
	s.SpawnAt(0, 0, 1, "low", func(e *Env) {
		for i := 0; i < 10; i++ {
			e.Store(x, uint64(i))
		}
		order = append(order, "low")
	})
	s.SpawnAt(3, 0, 5, "high", func(e *Env) {
		e.Load(x)
		order = append(order, "high")
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("completion order = %v, want [high low]", order)
	}
	log := s.Trace()
	if i := log.Find(0, trace.KindPreempt, ""); i < 0 {
		t.Fatal("no preemption recorded in trace")
	}
}

// TestEqualPriorityNoPreemption: an equal-priority arrival must wait for the
// running process to finish (the model forbids time slicing).
func TestEqualPriorityNoPreemption(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	x := s.Mem().MustAlloc("x", 1)
	var order []string
	s.SpawnAt(0, 0, 3, "first", func(e *Env) {
		for i := 0; i < 10; i++ {
			e.Store(x, 1)
		}
		order = append(order, "first")
	})
	s.SpawnAt(2, 0, 3, "second", func(e *Env) {
		e.Load(x)
		order = append(order, "second")
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if order[0] != "first" {
		t.Fatalf("completion order = %v, want first to finish first", order)
	}
}

// TestNestedPreemption reproduces the three-level preemption shape of the
// paper's Figure 2: r preempts q which preempted p; they finish r, q, p.
func TestNestedPreemption(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	x := s.Mem().MustAlloc("x", 1)
	var order []string
	body := func(name string, n int) func(*Env) {
		return func(e *Env) {
			for i := 0; i < n; i++ {
				e.Store(x, 1)
			}
			order = append(order, name)
		}
	}
	s.SpawnAt(0, 0, 1, "p", body("p", 20))
	s.SpawnAt(5, 0, 2, "q", body("q", 20))
	s.SpawnAt(8, 0, 3, "r", body("r", 5))
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"r", "q", "p"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
}

// TestNoMigration: jobs run on the processor they were assigned, and
// processors advance in parallel virtual time.
func TestNoMigration(t *testing.T) {
	s := New(Config{Processors: 2, Seed: 1})
	x := s.Mem().MustAlloc("x", 2)
	s.SpawnAt(0, 0, 1, "a", func(e *Env) {
		if e.CPU() != 0 {
			t.Errorf("job a on cpu %d, want 0", e.CPU())
		}
		for i := 0; i < 100; i++ {
			e.Store(x, 1)
		}
	})
	s.SpawnAt(0, 1, 1, "b", func(e *Env) {
		if e.CPU() != 1 {
			t.Errorf("job b on cpu %d, want 1", e.CPU())
		}
		for i := 0; i < 100; i++ {
			e.Store(x+1, 1)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Both processors did 100 units of work; the makespan must be 100,
	// not 200, because they advance in parallel.
	if s.Elapsed() != 100 {
		t.Errorf("Elapsed = %d, want 100 (parallel progress)", s.Elapsed())
	}
}

// TestInterleavingIsFair: with two busy processors, the event-driven
// scheduler alternates them so neither gets far ahead in virtual time.
func TestInterleavingIsFair(t *testing.T) {
	s := New(Config{Processors: 2, Seed: 1})
	x := s.Mem().MustAlloc("x", 1)
	var maxSkew int64
	probe := func(e *Env) {
		for i := 0; i < 50; i++ {
			e.Store(x, 1)
			skew := e.sim.cpus[0].clock - e.sim.cpus[1].clock
			if skew < 0 {
				skew = -skew
			}
			if skew > maxSkew {
				maxSkew = skew
			}
		}
	}
	s.SpawnAt(0, 0, 1, "a", probe)
	s.SpawnAt(0, 1, 1, "b", probe)
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if maxSkew > 1 {
		t.Errorf("processor clocks skewed by %d units, want <= 1", maxSkew)
	}
}

// TestDeterminism: identical configurations produce identical traces.
func TestDeterminism(t *testing.T) {
	run := func() string {
		s := New(Config{Processors: 2, Seed: 42, EnableTrace: true})
		x := s.Mem().MustAlloc("x", 1)
		for i := 0; i < 6; i++ {
			i := i
			s.SpawnAt(int64(i*3), i%2, Priority(i), "", func(e *Env) {
				for j := 0; j < 5+i; j++ {
					e.CAS(x, e.Load(x), uint64(i))
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return s.Trace().String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("two identical runs diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

// TestSliceTriggeredArrival: AfterSlices releases a job after exactly the
// given number of globally executed slices.
func TestSliceTriggeredArrival(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	x := s.Mem().MustAlloc("x", 1)
	var sawAtPreempt uint64
	s.Spawn(JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: -1, AfterSlices: -1, Body: func(e *Env) {
		for i := 1; i <= 20; i++ {
			e.Store(x, uint64(i))
		}
	}})
	s.Spawn(JobSpec{Name: "adversary", CPU: 0, Prio: 9, Slot: -1, AfterSlices: 5, Body: func(e *Env) {
		sawAtPreempt = e.sim.mem.Peek(x)
		e.Yield()
	}})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sawAtPreempt != 5 {
		t.Errorf("adversary released after victim stored %d, want exactly 5", sawAtPreempt)
	}
}

// TestWatchdog: a runaway process trips the step limit and Run reports it.
func TestWatchdog(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1, MaxSteps: 1000})
	x := s.Mem().MustAlloc("x", 1)
	s.SpawnAt(0, 0, 1, "spinner", func(e *Env) {
		for {
			e.Load(x) // spins forever
		}
	})
	err := s.Run()
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("Run err = %v, want ErrWatchdog", err)
	}
}

// TestBodyPanicReported: a panic inside a body surfaces as a Run error with
// the process name, and does not crash the test process.
func TestBodyPanicReported(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	s.SpawnAt(0, 0, 1, "bomber", func(e *Env) {
		panic("boom")
	})
	err := s.Run()
	if err == nil {
		t.Fatal("Run returned nil after body panic")
	}
	if want := "bomber"; !containsStr(err.Error(), want) {
		t.Errorf("error %q does not mention process %q", err, want)
	}
}

// TestNoPreemptMasksLocalPreemption: inside NoPreempt a higher-priority
// arrival on the same CPU must wait, but a process on another CPU must still
// interleave.
func TestNoPreemptMasksLocalPreemption(t *testing.T) {
	s := New(Config{Processors: 2, Seed: 1})
	x := s.Mem().MustAlloc("x", 1)
	y := s.Mem().MustAlloc("y", 1)
	var highSawX uint64
	var otherCPURan bool
	s.SpawnAt(0, 0, 1, "low", func(e *Env) {
		e.NoPreempt(func() {
			for i := 1; i <= 10; i++ {
				e.Store(x, uint64(i))
			}
			// The cross-CPU writer should have made progress even
			// while we are non-preemptible.
			otherCPURan = e.Load(y) > 0
		})
	})
	s.SpawnAt(2, 0, 9, "high", func(e *Env) {
		highSawX = e.Load(x)
	})
	s.SpawnAt(0, 1, 1, "other", func(e *Env) {
		for i := 1; i <= 10; i++ {
			e.Store(y, uint64(i))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if highSawX != 10 {
		t.Errorf("high saw x = %d, want 10 (NoPreempt must defer local preemption)", highSawX)
	}
	if !otherCPURan {
		t.Error("cross-CPU process made no progress during NoPreempt (must not be globally atomic)")
	}
}

// TestIdleJump: the system jumps over idle time to the next arrival.
func TestIdleJump(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	x := s.Mem().MustAlloc("x", 1)
	s.SpawnAt(1000, 0, 1, "late", func(e *Env) { e.Store(x, 1) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Elapsed() != 1001 {
		t.Errorf("Elapsed = %d, want 1001", s.Elapsed())
	}
}

// TestRunTwiceFails ensures a Sim cannot be reused.
func TestRunTwiceFails(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	if err := s.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := s.Run(); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

// TestResponseTimes: released/completed stamps reflect preemption delay.
func TestResponseTimes(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	x := s.Mem().MustAlloc("x", 1)
	low := s.SpawnAt(0, 0, 1, "low", func(e *Env) {
		for i := 0; i < 10; i++ {
			e.Store(x, 1)
		}
	})
	high := s.SpawnAt(5, 0, 2, "high", func(e *Env) {
		for i := 0; i < 10; i++ {
			e.Store(x, 2)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := high.Completed - high.Released; got != 10 {
		t.Errorf("high response time = %d, want 10 (never preempted)", got)
	}
	if got := low.Completed - low.Released; got != 20 {
		t.Errorf("low response time = %d, want 20 (10 own + 10 preemption)", got)
	}
}

// TestDelayChargesTime: Delay advances the virtual clock.
func TestDelayChargesTime(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	s.SpawnAt(0, 0, 1, "sleeper", func(e *Env) { e.Delay(77) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Elapsed() != 77 {
		t.Errorf("Elapsed = %d, want 77", s.Elapsed())
	}
}

// TestCoarseGranularity: plain stores do not yield in Coarse mode, so a
// higher-priority arrival timed mid-loop only preempts at the next
// synchronizing operation.
func TestCoarseGranularity(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1, Granularity: Coarse})
	x := s.Mem().MustAlloc("x", 1)
	var sawX uint64
	s.SpawnAt(0, 0, 1, "low", func(e *Env) {
		for i := 1; i <= 10; i++ {
			e.Store(x, uint64(i))
		}
		e.Yield()
		for i := 11; i <= 20; i++ {
			e.Store(x, uint64(i))
		}
	})
	s.SpawnAt(3, 0, 9, "high", func(e *Env) {
		sawX = e.Load(x)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sawX != 10 {
		t.Errorf("high saw x = %d, want 10 (preemption only at the explicit Yield)", sawX)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

package sched

// readyHeap is a binary min-heap of ready processes ordered by (policy key
// ascending, enqueueNo ascending). The key is computed once at release
// (Policy.Key), enqueueNo is unique per release, so the order is a strict
// total order for every policy and heap pops reproduce exactly the sequence
// a stable sort on the same comparator would produce — at O(log n) per
// release/preemption instead of a full re-sort. Under the default policy
// the key is -Prio, making this identical to the original (Prio descending,
// enqueueNo ascending) strict-priority queue. The element at index 0 is the
// next process the policy would dispatch.
type readyHeap []*Proc

// readyBefore reports whether a should be dispatched before b.
func readyBefore(a, b *Proc) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.enqueueNo < b.enqueueNo
}

// push adds p to the heap.
func (h *readyHeap) push(p *Proc) {
	*h = append(*h, p)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !readyBefore(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the top (highest-priority, earliest-enqueued)
// process. It panics on an empty heap.
func (h *readyHeap) pop() *Proc {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = nil // release the reference for the garbage collector
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s) && readyBefore(s[l], s[best]) {
			best = l
		}
		if r < len(s) && readyBefore(s[r], s[best]) {
			best = r
		}
		if best == i {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}

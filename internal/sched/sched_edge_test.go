package sched

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

// TestSyncCostCharged: CAS costs SyncCost units, loads stay at one.
func TestSyncCostCharged(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1, SyncCost: 8})
	x := s.Mem().MustAlloc("x", 1)
	s.SpawnAt(0, 0, 1, "p", func(e *Env) {
		e.Load(x)                  // 1
		e.CAS(x, 0, 1)             // 8
		e.Store(x, 2)              // 1
		e.CAS2(x, x+0, 0, 0, 0, 0) // invalid aliased — not executed; see below
	})
	err := s.Run()
	if err == nil {
		t.Fatal("aliased CAS2 did not fail the run")
	}
	// Clock before the panic: 1 + 8 + 1 = 10.
	if got := s.CPUClock(0); got != 10 {
		t.Errorf("clock = %d, want 10 (load 1 + cas 8 + store 1)", got)
	}
}

// TestSyncCostDefault: zero config means one unit.
func TestSyncCostDefault(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	x := s.Mem().MustAlloc("x", 1)
	s.SpawnAt(0, 0, 1, "p", func(e *Env) {
		e.CAS(x, 0, 1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Elapsed(); got != 1 {
		t.Errorf("Elapsed = %d, want 1", got)
	}
}

// TestShutdownUnwindsLiveCoroutines: a watchdog abort mid-run leaves no
// goroutine blocked (the run returns; bodies unwind via the abort panic).
func TestShutdownUnwindsLiveCoroutines(t *testing.T) {
	s := New(Config{Processors: 2, Seed: 1, MaxSteps: 500})
	x := s.Mem().MustAlloc("x", 1)
	for i := 0; i < 4; i++ {
		i := i
		s.SpawnAt(0, i%2, Priority(i), "", func(e *Env) {
			for {
				e.Load(x)
			}
		})
	}
	if err := s.Run(); !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want watchdog", err)
	}
	// If shutdown left coroutines blocked, the test binary's goroutine
	// leak would show up across the package run; reaching here with the
	// error is the functional assertion.
}

// TestBodyRecoveringAbortIsHarmless: a body that defers recover() does not
// break shutdown (the sentinel re-panics only inside the harness; a user
// recover merely ends the body early).
func TestDeferredCleanupRunsOnAbort(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1, MaxSteps: 100})
	x := s.Mem().MustAlloc("x", 1)
	cleaned := false
	s.SpawnAt(0, 0, 1, "p", func(e *Env) {
		defer func() { cleaned = true }()
		for {
			e.Load(x)
		}
	})
	if err := s.Run(); !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want watchdog", err)
	}
	if !cleaned {
		t.Error("deferred cleanup did not run during abort unwinding")
	}
}

// TestSpawnValidation: invalid specs panic at spawn time.
func TestSpawnValidation(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad cpu", func() {
		s.Spawn(JobSpec{CPU: 5, Prio: 1, Slot: -1, AfterSlices: -1, Body: func(*Env) {}})
	})
	mustPanic("nil body", func() {
		s.Spawn(JobSpec{CPU: 0, Prio: 1, Slot: -1, AfterSlices: -1})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	mustPanic("spawn after run", func() {
		s.Spawn(JobSpec{CPU: 0, Prio: 1, Slot: -1, AfterSlices: -1, Body: func(*Env) {}})
	})
}

// TestNegativeDelayPanics: Delay validates its argument.
func TestNegativeDelayPanics(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	s.SpawnAt(0, 0, 1, "p", func(e *Env) { e.Delay(-1) })
	if err := s.Run(); err == nil {
		t.Fatal("negative delay accepted")
	}
}

// TestTimedArrivalOnIdleCPU: a timed arrival on an idle processor is
// delivered at its real time while other processors are busy (the idle
// clock tracks the machine).
func TestTimedArrivalOnIdleCPU(t *testing.T) {
	s := New(Config{Processors: 2, Seed: 1})
	x := s.Mem().MustAlloc("x", 1)
	s.SpawnAt(0, 0, 1, "busy", func(e *Env) {
		for i := 0; i < 500; i++ {
			e.Store(x, uint64(i))
		}
	})
	var sawX uint64
	s.SpawnAt(100, 1, 1, "late", func(e *Env) {
		sawX = e.Load(x)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// At virtual time ~100 the busy worker has stored ~100 values; the
	// late job must observe mid-run state, not post-run state.
	if sawX < 50 || sawX > 200 {
		t.Errorf("late job saw x = %d, want ~100 (idle clock must track the machine)", sawX)
	}
}

// TestNoteDisabled: annotations are cheap no-ops without tracing.
func TestNoteDisabled(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	s.SpawnAt(0, 0, 1, "p", func(e *Env) {
		e.Note("ignored", trace.I("n", 42))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Trace() != nil {
		t.Error("trace log exists despite EnableTrace=false")
	}
}

// TestPreemptionCounter: Proc.Preemptions reflects the number of times the
// process was preempted.
func TestPreemptionCounter(t *testing.T) {
	s := New(Config{Processors: 1, Seed: 1})
	x := s.Mem().MustAlloc("x", 1)
	low := s.SpawnAt(0, 0, 1, "low", func(e *Env) {
		for i := 0; i < 30; i++ {
			e.Store(x, 1)
		}
	})
	for _, at := range []int64{5, 15} {
		s.SpawnAt(at, 0, 9, "hi", func(e *Env) { e.Load(x) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if low.Preemptions != 2 {
		t.Errorf("low.Preemptions = %d, want 2", low.Preemptions)
	}
}

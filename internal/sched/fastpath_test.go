package sched

// Tests for the run-ahead fast path and the Sim reuse lifecycle. The fast
// path's contract is observational equivalence: every run — traces, clocks,
// per-process slice counts, watchdog failures — must be byte-identical with
// batching on, off via SetRunAhead, and off via Config.DisableRunAhead. The
// differential test below pins that across scenarios chosen to exercise each
// horizon term (slice releases, time releases, multiprocessor clock
// crossings, the watchdog) plus NoPreempt and zero-cost yields. The alloc
// tests pin the zero-alloc claims of the trace and slice hot paths.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/trace"
)

// fingerprint renders everything observable about a finished run: the
// outcome, global and per-process slice counts, final CPU clocks, and the
// full trace (kinds, times, processes, keys, rendered messages).
func fingerprint(s *Sim, runErr error) string {
	var b strings.Builder
	fmt.Fprintf(&b, "err=%v slices=%d elapsed=%d\n", runErr, s.Slices(), s.Elapsed())
	for i := 0; i < s.Processors(); i++ {
		fmt.Fprintf(&b, "cpu%d clock=%d\n", i, s.CPUClock(i))
	}
	for _, p := range s.Procs() {
		fmt.Fprintf(&b, "proc %s slices=%d disp=%d preempt=%d rel=%d start=%d done=%d\n",
			p.Name(), p.Slices, p.Dispatches, p.Preemptions, p.Released, p.Started, p.Completed)
	}
	if log := s.Trace(); log != nil {
		for _, ev := range log.Events() {
			fmt.Fprintf(&b, "%d cpu%d p%d %v %s %s\n",
				ev.Time, ev.CPU, ev.Proc, ev.Kind, ev.Key, ev.Message())
		}
	}
	return b.String()
}

// fastpathScenarios is the differential suite. Each entry returns a
// configured, spawned, un-run Sim.
var fastpathScenarios = []struct {
	name  string
	build func(extra Config) *Sim
}{
	{"uni-slice-releases", func(extra Config) *Sim {
		// The Figure 2 shape: victim batches up to each adversary's slice
		// release, adversaries batch to completion.
		cfg := extra
		cfg.Processors, cfg.Seed, cfg.MemWords, cfg.EnableTrace = 1, 3, 1<<12, true
		s := New(cfg)
		x := s.Mem().MustAlloc("x", 4)
		s.Spawn(JobSpec{Name: "victim", CPU: 0, Prio: 1, AfterSlices: -1, Body: func(e *Env) {
			for i := 0; i < 40; i++ {
				e.Store(x, uint64(i))
			}
			e.NoPreempt(func() {
				e.Store(x, 99)
				e.Store(x+1, 100)
			})
			for i := 0; i < 10; i++ {
				e.CAS(x, uint64(99), uint64(i))
			}
		}})
		s.Spawn(JobSpec{Name: "adv1", CPU: 0, Prio: 5, AfterSlices: 7, Body: func(e *Env) {
			for i := 0; i < 6; i++ {
				e.Load(x)
			}
		}})
		s.Spawn(JobSpec{Name: "adv2", CPU: 0, Prio: 9, AfterSlices: 19, Body: func(e *Env) {
			e.Delay(5)
			e.Store(x+2, 7)
		}})
		return s
	}},
	{"multi-time-releases", func(extra Config) *Sim {
		// Two busy processors bound each other's horizons; late time
		// releases land on both a busy and an idle processor.
		cfg := extra
		cfg.Processors, cfg.Seed, cfg.MemWords, cfg.EnableTrace = 3, 4, 1<<12, true
		s := New(cfg)
		c := s.Mem().MustAlloc("ctr", 1)
		body := func(n int) func(*Env) {
			return func(e *Env) {
				for i := 0; i < n; i++ {
					v := e.Load(c)
					e.CAS(c, v, v+1)
				}
			}
		}
		s.SpawnAt(0, 0, 1, "w0", body(25))
		s.SpawnAt(3, 1, 1, "w1", body(20))
		s.SpawnAt(30, 0, 8, "hi0", func(e *Env) { e.Delay(9) })
		s.SpawnAt(31, 2, 2, "late2", body(5))
		return s
	}},
	{"zero-cost-yields", func(extra Config) *Sim {
		// Yield charges no time: the fast path must not stall or miscount
		// when new-clock == clock.
		cfg := extra
		cfg.Processors, cfg.Seed, cfg.MemWords, cfg.EnableTrace = 1, 5, 1<<12, true
		s := New(cfg)
		x := s.Mem().MustAlloc("x", 1)
		s.SpawnAt(0, 0, 1, "spinner", func(e *Env) {
			for i := 0; i < 30; i++ {
				e.Yield()
				if i%3 == 0 {
					e.Store(x, uint64(i))
				}
			}
		})
		s.SpawnAt(0, 0, 4, "peer", func(e *Env) {
			for i := 0; i < 10; i++ {
				e.Load(x)
			}
		}) // released by time at t=0 alongside the spinner
		return s
	}},
	{"watchdog", func(extra Config) *Sim {
		// The watchdog must fire at exactly the same slice in both modes.
		cfg := extra
		cfg.Processors, cfg.Seed, cfg.MemWords, cfg.EnableTrace = 1, 6, 1<<12, true
		cfg.MaxSteps = 100
		s := New(cfg)
		x := s.Mem().MustAlloc("x", 1)
		s.SpawnAt(0, 0, 1, "loop", func(e *Env) {
			for {
				e.Store(x, e.Load(x)+1)
			}
		})
		return s
	}},
	{"notes", func(extra Config) *Sim {
		// Annotations carry fields; their times and rendered messages must
		// agree between modes.
		cfg := extra
		cfg.Processors, cfg.Seed, cfg.MemWords, cfg.EnableTrace = 1, 7, 1<<12, true
		s := New(cfg)
		x := s.Mem().MustAlloc("x", 1)
		s.SpawnAt(0, 0, 1, "noter", func(e *Env) {
			for i := 0; i < 12; i++ {
				e.Store(x, uint64(i))
				e.Note("step", trace.I("i", int64(i)), trace.I("v", int64(i*2)))
			}
		})
		s.SpawnAt(0, 0, 6, "rival", func(e *Env) {
			for i := 0; i < 4; i++ {
				e.Load(x)
			}
		})
		return s
	}},
}

// TestRunAheadDifferential runs every scenario with batching enabled, with
// it disabled process-wide, and with it disabled per-run, and requires the
// three fingerprints to match byte for byte.
func TestRunAheadDifferential(t *testing.T) {
	for _, sc := range fastpathScenarios {
		t.Run(sc.name, func(t *testing.T) {
			runWith := func(global bool, perRun bool) string {
				SetRunAhead(global)
				defer SetRunAhead(true)
				s := sc.build(Config{DisableRunAhead: perRun})
				err := s.Run()
				return fingerprint(s, err)
			}
			on := runWith(true, false)
			offGlobal := runWith(false, false)
			offPerRun := runWith(true, true)
			if on != offGlobal {
				t.Errorf("run-ahead on vs SetRunAhead(false) diverged:\n--- on ---\n%s--- off ---\n%s", on, offGlobal)
			}
			if on != offPerRun {
				t.Errorf("run-ahead on vs DisableRunAhead diverged:\n--- on ---\n%s--- off ---\n%s", on, offPerRun)
			}
		})
	}
}

// TestResetMatchesNew runs a scenario on a fresh Sim, then reuses a Sim that
// already ran a differently-shaped scenario via Reset, and requires
// identical fingerprints — Reset must leave no residue.
func TestResetMatchesNew(t *testing.T) {
	fresh := fastpathScenarios[0].build(Config{})
	want := fingerprint(fresh, fresh.Run())

	// Dirty a Sim with a different shape: more processors, more memory,
	// notes, a watchdog failure.
	dirty := fastpathScenarios[3].build(Config{})
	if err := dirty.Run(); err == nil {
		t.Fatal("watchdog scenario unexpectedly succeeded")
	}

	// The first scenario used Processors:1 MemWords:1<<12 Seed:3 Trace:on.
	reused := dirty.Reset(Config{Processors: 1, Seed: 3, MemWords: 1 << 12, EnableTrace: true})
	rebuilt := rebuildScenario0(reused)
	if got := fingerprint(rebuilt, rebuilt.Run()); got != want {
		t.Errorf("Reset run diverged from New run:\n--- new ---\n%s--- reset ---\n%s", want, got)
	}
}

// rebuildScenario0 re-spawns fastpathScenarios[0]'s cast on an
// already-configured Sim (the builder always calls New itself, so the Reset
// test needs the spawn half alone; keep in sync with the scenario above).
func rebuildScenario0(s *Sim) *Sim {
	x := s.Mem().MustAlloc("x", 4)
	s.Spawn(JobSpec{Name: "victim", CPU: 0, Prio: 1, AfterSlices: -1, Body: func(e *Env) {
		for i := 0; i < 40; i++ {
			e.Store(x, uint64(i))
		}
		e.NoPreempt(func() {
			e.Store(x, 99)
			e.Store(x+1, 100)
		})
		for i := 0; i < 10; i++ {
			e.CAS(x, uint64(99), uint64(i))
		}
	}})
	s.Spawn(JobSpec{Name: "adv1", CPU: 0, Prio: 5, AfterSlices: 7, Body: func(e *Env) {
		for i := 0; i < 6; i++ {
			e.Load(x)
		}
	}})
	s.Spawn(JobSpec{Name: "adv2", CPU: 0, Prio: 9, AfterSlices: 19, Body: func(e *Env) {
		e.Delay(5)
		e.Store(x+2, 7)
	}})
	return s
}

// TestAcquireReleaseReuse drives the pool through several acquire/run/release
// cycles and requires every cycle to reproduce the fresh-Sim fingerprint.
func TestAcquireReleaseReuse(t *testing.T) {
	run := func(s *Sim) string {
		rebuildScenario0(s)
		return fingerprint(s, s.Run())
	}
	cfg := Config{Processors: 1, Seed: 3, MemWords: 1 << 12, EnableTrace: true}
	want := run(New(cfg))
	for i := 0; i < 4; i++ {
		s := Acquire(cfg)
		if got := run(s); got != want {
			t.Fatalf("pooled run %d diverged from fresh run:\n--- fresh ---\n%s--- pooled ---\n%s", i, want, got)
		}
		Release(s)
	}
}

// allocRun executes one pooled run of `slices` stores and returns nothing;
// testing.AllocsPerRun wraps it below.
func allocRun(slices int, traced bool) {
	s := Acquire(Config{Processors: 1, Seed: 1, MemWords: 1 << 12, EnableTrace: traced})
	defer Release(s)
	x := s.Mem().MustAlloc("x", 1)
	s.SpawnAt(0, 0, 1, "w", func(e *Env) {
		for i := 0; i < slices; i++ {
			e.Store(x, uint64(i))
		}
	})
	if err := s.Run(); err != nil {
		panic(err)
	}
}

// TestAllocsPerSlice pins the slice hot path allocation-free: a pooled
// 2000-slice run may allocate only its fixed per-run overhead (goroutine,
// channels, Proc, trace chunk), so allocations per slice must stay under
// 0.05 with tracing off and on.
func TestAllocsPerSlice(t *testing.T) {
	const slices = 2000
	for _, traced := range []bool{false, true} {
		got := testing.AllocsPerRun(10, func() { allocRun(slices, traced) })
		perSlice := got / slices
		t.Logf("traced=%v: %.1f allocs/run, %.4f allocs/slice", traced, got, perSlice)
		if perSlice > 0.05 {
			t.Errorf("traced=%v: %.4f allocs per slice (%.1f per run), want <= 0.05 — the slice hot path is allocating",
				traced, perSlice, got)
		}
	}
}

// TestAllocsPerNote pins traced annotation emission allocation-free: the
// marginal cost of a Note over an otherwise identical run must amortize to
// (well) under one allocation per note — no formatted string, no fields
// slice on the heap, only the shared chunk growth.
func TestAllocsPerNote(t *testing.T) {
	const notes = 2000
	run := func(emit bool) float64 {
		return testing.AllocsPerRun(10, func() {
			s := Acquire(Config{Processors: 1, Seed: 1, MemWords: 1 << 12, EnableTrace: true})
			defer Release(s)
			x := s.Mem().MustAlloc("x", 1)
			s.SpawnAt(0, 0, 1, "w", func(e *Env) {
				for i := 0; i < notes; i++ {
					e.Store(x, uint64(i))
					if emit {
						e.Note("tick", trace.I("i", int64(i)), trace.I("v", int64(2*i)))
					}
				}
			})
			if err := s.Run(); err != nil {
				panic(err)
			}
		})
	}
	base := run(false)
	with := run(true)
	perNote := (with - base) / notes
	t.Logf("base=%.1f with-notes=%.1f -> %.4f allocs/note", base, with, perNote)
	if perNote > 0.05 {
		t.Errorf("%.4f allocations per Note (base %.1f, with notes %.1f), want <= 0.05 — note emission is allocating per event",
			perNote, base, with)
	}
}

package sched

// Tests for the pluggable scheduling-policy layer. The load-bearing
// contracts pinned here:
//
//   - the registry resolves every shipped template and rejects typos;
//   - the default policy reproduces the pre-policy readyHeap comparator
//     (priority descending, enqueue order ascending) exactly — the
//     byte-identity foundation every golden output rests on;
//   - deterministic tie-breaking is scheduler-owned: under EVERY policy,
//     equal-key processes dispatch in release (FIFO) order, matching the
//     serial loop's order at any worker count;
//   - preemption semantics per template (who preempts whom);
//   - VerifyPriorityModel refuses non-priority runs with a typed error
//     rather than a vacuous pass;
//   - the run-ahead fast path stays armed for the default policy and is
//     declined (falling back to the serial loop) for every other one.

import (
	"errors"
	"sort"
	"strings"
	"testing"
)

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("PolicyNames() not sorted: %v", names)
	}
	want := []string{"age-slo", "fcfs", "priority", "priority-fcfs", "reverse-priority", "sjf"}
	if len(names) != len(want) {
		t.Fatalf("PolicyNames() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("PolicyNames() = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		p, err := PolicyByName(n)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("PolicyByName(%q).Name() = %q", n, p.Name())
		}
	}
	def, err := PolicyByName("")
	if err != nil || def != DefaultPolicy() {
		t.Errorf("PolicyByName(\"\") = %v, %v; want the default policy", def, err)
	}
	if DefaultPolicy().Name() != "priority" {
		t.Errorf("DefaultPolicy().Name() = %q, want \"priority\"", DefaultPolicy().Name())
	}
	if _, err := PolicyByName("bogus"); err == nil || !strings.Contains(err.Error(), "priority") {
		t.Errorf("PolicyByName(\"bogus\") = %v, want an error listing the known policies", err)
	}
}

// TestDefaultPolicyMatchesLegacyOrder pops a ready heap populated under the
// default policy and requires exactly the pre-policy comparator's order:
// priority descending, enqueue number ascending. This is the differential
// pin for the key-based readyBefore rewrite.
func TestDefaultPolicyMatchesLegacyOrder(t *testing.T) {
	def := DefaultPolicy()
	prios := []Priority{3, 9, 1, 9, 5, 3, 7, 1, 5, 9, 2, 8}
	var h readyHeap
	procs := make([]*Proc, len(prios))
	for i, prio := range prios {
		p := &Proc{id: i, enqueueNo: i}
		p.spec.Prio = prio
		p.key = def.Key(JobInfo{ID: i, Prio: prio})
		procs[i] = p
		h.push(p)
	}
	legacy := append([]*Proc(nil), procs...)
	sort.SliceStable(legacy, func(i, j int) bool {
		if legacy[i].spec.Prio != legacy[j].spec.Prio {
			return legacy[i].spec.Prio > legacy[j].spec.Prio
		}
		return legacy[i].enqueueNo < legacy[j].enqueueNo
	})
	for i, want := range legacy {
		got := h.pop()
		if got != want {
			t.Fatalf("pop %d: got proc %d (prio %d, enq %d), want proc %d (prio %d, enq %d)",
				i, got.id, got.spec.Prio, got.enqueueNo, want.id, want.spec.Prio, want.enqueueNo)
		}
	}
}

// TestPolicyTieBreakFIFO pins the scheduler-owned tie-break for every
// registered policy: processes whose keys compare equal pop in enqueue
// (release) order. Equal keys are manufactured per policy by giving every
// job identical policy inputs.
func TestPolicyTieBreakFIFO(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			pol, err := PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var h readyHeap
			const n = 9
			for i := 0; i < n; i++ {
				p := &Proc{id: i, enqueueNo: 100 + i}
				p.spec.Prio = 4
				p.key = pol.Key(JobInfo{ID: i, Prio: 4, Cost: 12, Released: 50})
				h.push(p)
			}
			for i := 0; i < n; i++ {
				got := h.pop()
				if got.id != i {
					t.Fatalf("pop %d: got proc %d — equal keys must dispatch FIFO", i, got.id)
				}
			}
		})
	}
}

// TestPolicyPreemption pins each template's preempt-on-release behavior on
// a live simulation: a long-running current process and one late arrival,
// with the arrival's preemption (or its absence) read off Proc.Preemptions.
func TestPolicyPreemption(t *testing.T) {
	cases := []struct {
		policy      string
		curPrio     Priority
		latePrio    Priority
		wantPreempt bool
	}{
		{"priority", 5, 9, true},          // higher priority preempts
		{"priority", 5, 3, false},         // lower never does
		{"fcfs", 5, 9, false},             // nothing preempts
		{"priority-fcfs", 5, 9, false},    // priority orders, never preempts
		{"sjf", 5, 9, false},              // non-preemptive
		{"reverse-priority", 5, 1, true},  // the stressor: LOWER priority preempts
		{"reverse-priority", 5, 9, false}, // ...and higher does not
		{"age-slo", 5, 9, true},           // fresher deadline-pressure key preempts
	}
	for _, tc := range cases {
		t.Run(tc.policy+"-late", func(t *testing.T) {
			pol, err := PolicyByName(tc.policy)
			if err != nil {
				t.Fatal(err)
			}
			s := New(Config{Processors: 1, Seed: 1, MemWords: 1 << 10, Policy: pol})
			x := s.Mem().MustAlloc("x", 1)
			s.Spawn(JobSpec{Name: "cur", CPU: 0, Prio: tc.curPrio, AfterSlices: -1, Cost: 30, Body: func(e *Env) {
				for i := 0; i < 30; i++ {
					e.Store(x, uint64(i))
				}
			}})
			s.Spawn(JobSpec{Name: "late", CPU: 0, Prio: tc.latePrio, AfterSlices: 5, Cost: 3, Body: func(e *Env) {
				for i := 0; i < 3; i++ {
					e.Load(x)
				}
			}})
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			var cur *Proc
			for _, p := range s.Procs() {
				if p.Name() == "cur" {
					cur = p
				}
			}
			if got := cur.Preemptions > 0; got != tc.wantPreempt {
				t.Errorf("policy %s: cur (prio %d) preempted by late (prio %d) = %v, want %v",
					tc.policy, tc.curPrio, tc.latePrio, got, tc.wantPreempt)
			}
		})
	}
}

// TestVerifyPriorityModelPolicyGate: the trace-replay verifier checks the
// paper's strict-priority discipline and must refuse — with the typed
// sentinel, naming the policy — to bless a run scheduled by anything else.
func TestVerifyPriorityModelPolicyGate(t *testing.T) {
	run := func(name string) *Sim {
		pol, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{Processors: 1, Seed: 1, MemWords: 1 << 10, EnableTrace: true, Policy: pol})
		x := s.Mem().MustAlloc("x", 1)
		s.Spawn(JobSpec{Name: "a", CPU: 0, Prio: 1, AfterSlices: -1, Body: func(e *Env) {
			for i := 0; i < 10; i++ {
				e.Store(x, uint64(i))
			}
		}})
		s.Spawn(JobSpec{Name: "b", CPU: 0, Prio: 9, AfterSlices: 4, Body: func(e *Env) {
			e.Load(x)
		}})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	if err := VerifyPriorityModel(run("")); err != nil {
		t.Errorf("default policy: VerifyPriorityModel = %v, want nil", err)
	}
	err := VerifyPriorityModel(run("fcfs"))
	if !errors.Is(err, ErrNonPriorityPolicy) {
		t.Fatalf("fcfs: VerifyPriorityModel = %v, want ErrNonPriorityPolicy", err)
	}
	if !strings.Contains(err.Error(), "fcfs") {
		t.Errorf("gate error should name the policy, got: %v", err)
	}
}

// TestRunAheadPolicyGate probes grantRunAhead directly: on a freshly
// dispatched, uncontended processor the default policy and every
// NonPreemptive template (fcfs, priority-fcfs, sjf — run-to-completion
// dispatch makes batching trivially sound) must arm a batching grant, and
// every preemptive non-default policy must decline one (falling back to
// the serial loop, whose behavior the differential suite pins).
func TestRunAheadPolicyGate(t *testing.T) {
	for _, name := range append([]string{""}, PolicyNames()...) {
		label := name
		if label == "" {
			label = "default"
		}
		t.Run(label, func(t *testing.T) {
			pol, err := PolicyByName(name)
			if err != nil {
				t.Fatal(err)
			}
			s := New(Config{Processors: 1, Seed: 1, MemWords: 1 << 10, Policy: pol})
			x := s.Mem().MustAlloc("x", 1)
			s.Spawn(JobSpec{Name: "w", CPU: 0, Prio: 1, AfterSlices: -1, Body: func(e *Env) {
				for i := 0; i < 50; i++ {
					e.Store(x, uint64(i))
				}
			}})
			// Drive the scheduler's first dispatch by hand, then probe the
			// grant the run loop would hand the coroutine.
			s.deliverTimeArrivals()
			c := s.cpus[0]
			p := s.pick(c)
			if p == nil {
				t.Fatal("no process picked")
			}
			s.startIfNeeded(p)
			s.grantRunAhead(c, p)
			granted := p.env.budget > 0
			_, nonPreemptive := pol.(NonPreemptive)
			wantGrant := pol == DefaultPolicy() || nonPreemptive
			if wantNP := map[string]bool{"fcfs": true, "priority-fcfs": true, "sjf": true}[name]; nonPreemptive != wantNP {
				t.Errorf("policy %s: NonPreemptive marker = %v, want %v", label, nonPreemptive, wantNP)
			}
			if granted != wantGrant {
				t.Errorf("policy %s: run-ahead granted = %v (budget %d, horizon %d), want %v",
					label, granted, p.env.budget, p.env.horizon, wantGrant)
			}
			// Unwind the coroutine cleanly.
			s.shutdown()
		})
	}
}

// TestRunAheadDifferentialAllPolicies extends the fast-path differential
// to every policy template: with run-ahead enabled and disabled, every
// fastpath scenario must produce byte-identical fingerprints. For the
// default policy this exercises real batching; for the others it proves
// the gate leaves behavior untouched.
func TestRunAheadDifferentialAllPolicies(t *testing.T) {
	for _, name := range PolicyNames() {
		pol, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range fastpathScenarios {
			t.Run(name+"/"+sc.name, func(t *testing.T) {
				on := sc.build(Config{Policy: pol})
				onFP := fingerprint(on, on.Run())
				off := sc.build(Config{Policy: pol, DisableRunAhead: true})
				offFP := fingerprint(off, off.Run())
				if onFP != offFP {
					t.Errorf("policy %s scenario %s: run-ahead on vs off diverged:\n--- on ---\n%s--- off ---\n%s",
						name, sc.name, onFP, offFP)
				}
			})
		}
	}
}

// TestPolicyDivergesFromDefault pins that the non-default templates are
// not behavioral no-ops: on a contended cast at least one observable
// (order, preemptions, completion times) must differ from the default
// policy's run for every template except priority-fcfs' degenerate cases.
func TestPolicyDivergesFromDefault(t *testing.T) {
	build := func(pol Policy) *Sim {
		s := New(Config{Processors: 1, Seed: 2, MemWords: 1 << 10, EnableTrace: true, Policy: pol})
		x := s.Mem().MustAlloc("x", 1)
		body := func(n int) func(*Env) {
			return func(e *Env) {
				for i := 0; i < n; i++ {
					e.Store(x, uint64(i))
				}
			}
		}
		s.Spawn(JobSpec{Name: "low", CPU: 0, Prio: 1, AfterSlices: -1, Cost: 24, Body: body(24)})
		s.Spawn(JobSpec{Name: "mid", CPU: 0, Prio: 5, AfterSlices: 6, Cost: 10, Body: body(10)})
		s.Spawn(JobSpec{Name: "high", CPU: 0, Prio: 9, AfterSlices: 11, Cost: 4, Body: body(4)})
		return s
	}
	def := build(DefaultPolicy())
	defFP := fingerprint(def, def.Run())
	for _, name := range []string{"fcfs", "sjf", "reverse-priority"} {
		pol, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := build(pol)
		if fp := fingerprint(s, s.Run()); fp == defFP {
			t.Errorf("policy %s produced a fingerprint identical to the default policy on a contended cast", name)
		}
	}

	// age-slo needs a cast where aging actually overrules priority: an old
	// low-priority job and a young high-priority job queued behind a long
	// runner. The low job's age key (Released - 24·Prio) beats the high
	// job's, so it dispatches first — the default policy picks the high one.
	buildAge := func(pol Policy) *Sim {
		s := New(Config{Processors: 1, Seed: 3, MemWords: 1 << 10, Policy: pol})
		x := s.Mem().MustAlloc("x", 1)
		body := func(n int) func(*Env) {
			return func(e *Env) {
				for i := 0; i < n; i++ {
					e.Store(x, uint64(i))
				}
			}
		}
		s.Spawn(JobSpec{Name: "runner", CPU: 0, Prio: 5, AfterSlices: -1, Cost: 300, Body: body(300)})
		s.Spawn(JobSpec{Name: "old-low", CPU: 0, Prio: 1, AfterSlices: -1, At: 10, Cost: 8, Body: body(8)})
		s.Spawn(JobSpec{Name: "young-high", CPU: 0, Prio: 9, AfterSlices: -1, At: 250, Cost: 8, Body: body(8)})
		return s
	}
	ageDef := buildAge(DefaultPolicy())
	ageDefFP := fingerprint(ageDef, ageDef.Run())
	agePol, err := PolicyByName("age-slo")
	if err != nil {
		t.Fatal(err)
	}
	ageRun := buildAge(agePol)
	if fp := fingerprint(ageRun, ageRun.Run()); fp == ageDefFP {
		t.Errorf("policy age-slo produced a fingerprint identical to the default policy on an aged cast")
	}
}

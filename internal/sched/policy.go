package sched

import (
	"fmt"
	"sort"
)

// JobInfo is the policy-visible view of a job at release time. Key
// computation sees only fixed spec fields plus the release clock, so a
// job's key never changes while it sits in the ready set — every policy is
// a static-key discipline and the ready heap stays a strict total order.
type JobInfo struct {
	// ID is the process identifier (dense, in spawn order).
	ID int
	// CPU and Slot mirror JobSpec.
	CPU  int
	Slot int
	// Prio is the job's fixed priority (larger = more urgent under the
	// default policy).
	Prio Priority
	// Cost is the workload's advance estimate of the job's length
	// (JobSpec.Cost — op counts in the registry drivers); 0 when the
	// workload provided none. Only cost-aware policies (sjf) read it.
	Cost int64
	// Released is the virtual time on the job's processor at release.
	Released int64
}

// Policy is the scheduling discipline: it maps each released job to an
// ordering key (smaller keys dispatch first) and decides whether a newly
// ready job preempts the running one.
//
// Deterministic tie-breaking is part of the contract, not the policy's
// problem: the scheduler breaks equal keys by enqueue order (the same
// (Prio, enqueueNo) rule the original strict-priority readyHeap used), so
// every policy induces a strict total order and a policy whose keys all
// collide degrades exactly to FIFO. A preempted process keeps its original
// enqueue number, so it resumes in the position a stable sort would have
// kept it in.
//
// Preempts must be a strict order on keys (irreflexive: equal keys never
// preempt — no time slicing, exactly as the paper's model demands of equal
// priorities). Policies whose Preempts is strictly "ready < current" are
// order-isomorphic to the paper's strict-priority discipline under a
// relabelling of priorities, so the wait-freedom bounds carry over; see
// DESIGN.md §13 for what the bounds mean under the others.
type Policy interface {
	// Name is the flag-facing identifier (wfcheck/wfbench/wftrace -policy).
	Name() string
	// Key orders the ready queue: smaller dispatches first.
	Key(j JobInfo) int64
	// Preempts reports whether a newly ready job with key ready preempts
	// the running job with key current. It must be irreflexive:
	// Preempts(k, k) == false.
	Preempts(ready, current int64) bool
}

// NonPreemptive marks a Policy whose Preempts is constantly false: once
// dispatched, a process runs to the end of its access (run-to-completion
// per dispatch). The scheduler arms the run-ahead fast path for these
// templates too — with no preemption and static keys, a batched run is
// byte-identical to the serial loop by the same horizon/budget argument as
// the default policy (see Sim.grantRunAhead). Implementations promise the
// marker truthfully; a policy that preempts but claims NonPreemptive would
// void the soundness argument.
type NonPreemptive interface {
	Policy
	// NonPreemptive is the marker method; it is never called.
	NonPreemptive()
}

// ageSLOSlack is the age-slo policy's exchange rate: one priority level is
// worth this many virtual-time units of waiting. A job released t units
// after a one-level-higher job overtakes it once t > ageSLOSlack.
const ageSLOSlack = 24

// priorityPolicy is the paper's discipline and the default: strict fixed
// priority (higher Prio first), preempt-on-higher-priority, FIFO among
// equals. Its key order reproduces the original readyHeap comparator
// (Prio descending, enqueueNo ascending) exactly.
type priorityPolicy struct{}

func (priorityPolicy) Name() string                       { return "priority" }
func (priorityPolicy) Key(j JobInfo) int64                { return -int64(j.Prio) }
func (priorityPolicy) Preempts(ready, current int64) bool { return ready < current }

// fcfsPolicy ignores priorities entirely: pure arrival order, never
// preempting. Every key is zero, so the scheduler's enqueue-order tie-break
// IS the policy.
type fcfsPolicy struct{}

func (fcfsPolicy) Name() string                       { return "fcfs" }
func (fcfsPolicy) Key(JobInfo) int64                  { return 0 }
func (fcfsPolicy) Preempts(ready, current int64) bool { return false }
func (fcfsPolicy) NonPreemptive()                     {}

// prioFcfsPolicy dispatches by priority but never preempts: a running job
// always finishes its access (run-to-completion per dispatch), then the
// highest-priority waiter goes next.
type prioFcfsPolicy struct{}

func (prioFcfsPolicy) Name() string                       { return "priority-fcfs" }
func (prioFcfsPolicy) Key(j JobInfo) int64                { return -int64(j.Prio) }
func (prioFcfsPolicy) Preempts(ready, current int64) bool { return false }
func (prioFcfsPolicy) NonPreemptive()                     {}

// sjfPolicy is non-preemptive shortest-job-first on the workload's declared
// Cost hint. Jobs without a hint (Cost 0) sort first; equal costs fall back
// to FIFO, so an unhinted job set degrades to fcfs.
type sjfPolicy struct{}

func (sjfPolicy) Name() string                       { return "sjf" }
func (sjfPolicy) Key(j JobInfo) int64                { return j.Cost }
func (sjfPolicy) Preempts(ready, current int64) bool { return false }
func (sjfPolicy) NonPreemptive()                     {}

// ageSLOPolicy trades priority against waiting time: the key is the release
// clock minus a per-priority-level slack, so high-priority jobs go first
// when releases are close together, but a job that has aged past the slack
// window overtakes fresher higher-priority arrivals. Preemptive, like the
// deadline-ish schedulers real SLO systems run.
type ageSLOPolicy struct{}

func (ageSLOPolicy) Name() string                       { return "age-slo" }
func (ageSLOPolicy) Key(j JobInfo) int64                { return j.Released - ageSLOSlack*int64(j.Prio) }
func (ageSLOPolicy) Preempts(ready, current int64) bool { return ready < current }

// reversePolicy is the pathological stressor: strict priority inverted, so
// the LOWEST priority is the most urgent and preempts. It manufactures the
// priority-inversion shapes the paper's discipline can never produce (a
// prio-1 arrival evicting a running prio-9 operation), which is exactly
// what the helping machinery should survive.
type reversePolicy struct{}

func (reversePolicy) Name() string                       { return "reverse-priority" }
func (reversePolicy) Key(j JobInfo) int64                { return int64(j.Prio) }
func (reversePolicy) Preempts(ready, current int64) bool { return ready < current }

// defaultPolicy is the discipline used when Config.Policy is nil.
var defaultPolicy Policy = priorityPolicy{}

// DefaultPolicy returns the paper's strict-priority discipline (the
// "priority" template).
func DefaultPolicy() Policy { return defaultPolicy }

// policies is the template registry, keyed by Name.
var policies = map[string]Policy{}

func init() {
	for _, p := range []Policy{
		priorityPolicy{}, fcfsPolicy{}, prioFcfsPolicy{},
		sjfPolicy{}, ageSLOPolicy{}, reversePolicy{},
	} {
		policies[p.Name()] = p
	}
}

// PolicyByName resolves a policy template; "" means the default.
func PolicyByName(name string) (Policy, error) {
	if name == "" {
		return defaultPolicy, nil
	}
	if p, ok := policies[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q (have %v)", name, PolicyNames())
}

// PolicyNames returns every template name, sorted.
func PolicyNames() []string {
	out := make([]string, 0, len(policies))
	for name := range policies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Package harness is the parallel sweep driver: it fans independent
// simulation tasks out across OS workers and merges their results in input
// order, so a sweep's output is byte-identical to running the same tasks
// serially — just N-cores faster. Each sched.Sim is self-contained (no
// package-level mutable state), which is what makes "one goroutine per
// in-flight Sim" sound; the harness adds nothing but dispatch and a
// deterministic merge.
package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures a parallel map.
type Options struct {
	// Workers is the number of OS workers; 0 means GOMAXPROCS. 1 degrades
	// to a plain serial loop on the calling goroutine.
	Workers int
	// OnDone, when set, is called once per task immediately after it
	// completes, from the worker goroutine that ran it (concurrently
	// under parallel execution — the callback must be safe for that).
	// It exists for progress meters; results still merge in input order,
	// so it must not be used to observe or alter outputs.
	OnDone func(i int)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs f(0..n-1) across the configured workers and returns the results
// in input order. The returned error, if any, is f's error for the smallest
// failing index — the same one a serial loop would have hit first — and the
// results slice is truncated just before it, so callers cannot observe any
// scheduling-dependent state. All n tasks are started regardless (tasks are
// independent; there is no cancellation channel to leak determinism
// through).
func Map[T any](n int, opts Options, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	w := opts.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = f(i)
			if opts.OnDone != nil {
				opts.OnDone(i)
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i], errs[i] = f(i)
					if opts.OnDone != nil {
						opts.OnDone(i)
					}
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return out[:i], err
		}
	}
	return out, nil
}

package harness

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// TestMapOrderAcrossWorkerCounts pins the determinism contract: the merged
// result is identical at every worker count, including the degenerate serial
// path and the all-cores default.
func TestMapOrderAcrossWorkerCounts(t *testing.T) {
	const n = 53
	f := func(i int) (int, error) { return i * i, nil }
	want, err := Map(n, Options{Workers: 1}, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 3, 8, n + 5} {
		got, err := Map(n, Options{Workers: w}, f)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results differ from serial run", w)
		}
	}
}

// TestMapError pins the error contract: the reported error is the one a
// serial loop would hit first, and the results are truncated just before it
// regardless of which worker finished when.
func TestMapError(t *testing.T) {
	fail := map[int]bool{3: true, 7: true}
	f := func(i int) (int, error) {
		if fail[i] {
			return 0, fmt.Errorf("task %d failed", i)
		}
		return i, nil
	}
	for _, w := range []int{1, 4} {
		got, err := Map(10, Options{Workers: w}, f)
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want the smallest failing index", w, err)
		}
		if !reflect.DeepEqual(got, []int{0, 1, 2}) {
			t.Errorf("workers=%d: results = %v, want [0 1 2]", w, got)
		}
	}
}

// TestMapEmpty: zero tasks is a no-op, not a hang.
func TestMapEmpty(t *testing.T) {
	got, err := Map(0, Options{}, func(i int) (int, error) { return 0, errors.New("unreachable") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

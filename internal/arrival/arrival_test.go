package arrival

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestLegacyTemplates pins the three pre-package scenario patterns to
// their historical release points: every default golden output in the
// repo is downstream of these numbers.
func TestLegacyTemplates(t *testing.T) {
	st, err := ByName("stagger")
	if err != nil {
		t.Fatal(err)
	}
	want := []Release{{AfterSlices: 15}, {AfterSlices: 28}, {AfterSlices: 41}}
	if got := st.Releases(3, 1); !reflect.DeepEqual(got, want) {
		t.Errorf("stagger.Releases(3) = %v, want %v", got, want)
	}

	bu, err := ByName("burst")
	if err != nil {
		t.Fatal(err)
	}
	want = []Release{{AfterSlices: 6}, {AfterSlices: 8}, {AfterSlices: 10}}
	if got := bu.Releases(3, 1); !reflect.DeepEqual(got, want) {
		t.Errorf("burst.Releases(3) = %v, want %v", got, want)
	}

	no, err := ByName("none")
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range no.Releases(3, 1) {
		if !r.Immediate() {
			t.Errorf("none.Releases(3)[%d] = %v, want an immediate release", i, r)
		}
	}
}

// TestBurstyDeterministicAndSeeded: bursty must be a pure function of
// (n, seed) — two drivers asking for the same trace spawn identical
// release points — while actually responding to the seed, and staying
// inside its documented epoch/jitter envelope.
func TestBurstyDeterministicAndSeeded(t *testing.T) {
	b, err := ByName("bursty")
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := b.Releases(6, 7), b.Releases(6, 7)
	if !reflect.DeepEqual(a1, a2) {
		t.Errorf("bursty.Releases not deterministic: %v vs %v", a1, a2)
	}
	other := b.Releases(6, 8)
	if reflect.DeepEqual(a1, other) {
		t.Errorf("bursty.Releases identical across seeds 7 and 8: %v", a1)
	}
	for i, r := range a1 {
		if r.AfterSlices >= 0 {
			t.Errorf("bursty release %d is slice-triggered (%v); open-loop traces must be time-triggered", i, r)
		}
		base := int64(burstyStart + burstyEpochGap*(i/burstySize))
		if r.At < base || r.At >= base+burstyJitter {
			t.Errorf("bursty release %d At=%d outside epoch window [%d,%d)", i, r.At, base, base+burstyJitter)
		}
	}
}

// TestPoissonTemplate: the Poisson trace is a pure function of (n, seed),
// seed-sensitive, time-triggered, with strictly increasing arrival times
// and an empirical mean gap near the documented 35 units.
func TestPoissonTemplate(t *testing.T) {
	po, err := ByName("poisson")
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := po.Releases(200, 13), po.Releases(200, 13)
	if !reflect.DeepEqual(a1, a2) {
		t.Errorf("poisson.Releases not deterministic")
	}
	if reflect.DeepEqual(a1, po.Releases(200, 14)) {
		t.Errorf("poisson.Releases identical across seeds 13 and 14")
	}
	prev := int64(0)
	for i, r := range a1 {
		if r.AfterSlices >= 0 {
			t.Fatalf("poisson release %d is slice-triggered (%v); must be time-triggered", i, r)
		}
		if r.At < prev {
			t.Fatalf("poisson release %d At=%d before predecessor %d", i, r.At, prev)
		}
		prev = r.At
	}
	mean := float64(a1[len(a1)-1].At) / float64(len(a1))
	if mean < 20 || mean > 55 {
		t.Errorf("poisson empirical mean gap %.1f far from the documented 35", mean)
	}
}

// TestRateTemplate pins the closed-form two-tenant schedule.
func TestRateTemplate(t *testing.T) {
	ra, err := ByName("rate")
	if err != nil {
		t.Fatal(err)
	}
	got := ra.Releases(4, 99)
	want := []Release{
		{AfterSlices: -1, At: 60},
		{AfterSlices: -1, At: 105},
		{AfterSlices: -1, At: 120},
		{AfterSlices: -1, At: 210},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rate.Releases(4) = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(got, ra.Releases(4, 1)) {
		t.Errorf("rate.Releases should ignore the seed (closed-form schedule)")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	want := []string{"burst", "bursty", "none", "poisson", "rate", "stagger"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for _, n := range names {
		tr, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if tr.Name() != n {
			t.Errorf("ByName(%q).Name() = %q", n, tr.Name())
		}
	}
	def, err := ByName("")
	if err != nil || def.Name() != "stagger" {
		t.Errorf("ByName(\"\") = %v, %v; want the stagger default", def, err)
	}
	if _, err := ByName("bogus"); err == nil || !strings.Contains(err.Error(), "stagger") {
		t.Errorf("ByName(\"bogus\") = %v, want an error listing the known traces", err)
	}

	leg := Legacy()
	if !reflect.DeepEqual(leg, []string{"burst", "none", "stagger"}) {
		t.Fatalf("Legacy() = %v, want [burst none stagger]", leg)
	}
	leg[0] = "mutated"
	if Legacy()[0] != "burst" {
		t.Errorf("Legacy() must return a copy; caller mutation leaked into the registry")
	}
}

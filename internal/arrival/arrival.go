// Package arrival defines arrival traces: named, deterministic release
// schedules for simulated jobs. A Trace maps (job index, seed) to a
// Release — either a slice-triggered release ("after the system has
// executed k slices", the deterministic preemption handle the sweeps are
// built on) or a time-triggered one ("at virtual time t", the open-loop
// shape real load has).
//
// The legacy scenario patterns (stagger/burst/none) are traces here, so
// internal/scenario, registry sweeps, and the CLIs all draw from one
// registry; the new templates (bursty open-loop, rate-driven multi-tenant)
// ride the same seam. Everything is a pure function of (n, seed): two
// drivers asking for the same trace always spawn identical release points.
//
// The package is a leaf (stdlib only) so both internal/sched users and
// internal/registry can import it without cycles.
package arrival

import (
	"fmt"
	"math/rand"
	"sort"
)

// Release is one job's release point. AfterSlices >= 0 releases the job
// after that many globally executed slices (sched.JobSpec.AfterSlices);
// otherwise the job is released at virtual time At on its processor
// (sched.JobSpec.At). The zero-ish Release{AfterSlices: -1} is an
// immediate time-zero release.
type Release struct {
	AfterSlices int64
	At          int64
}

// Immediate reports whether the release is a time-zero release.
func (r Release) Immediate() bool { return r.AfterSlices < 0 && r.At == 0 }

// Trace is a named arrival schedule. Releases returns the release points
// for n staggered jobs; it must be deterministic in (n, seed) and
// index-monotone enough to be readable in traces (later indices never
// release before earlier ones under the built-in templates).
type Trace interface {
	Name() string
	Releases(n int, seed int64) []Release
}

// stagger reproduces the Figure 2 shape: job i is released after 15+13i
// executed slices, so each arrival lands mid-operation of the previous
// job's work (the legacy "stagger" pattern's {15, 28} for two jobs).
type stagger struct{}

func (stagger) Name() string { return "stagger" }
func (stagger) Releases(n int, seed int64) []Release {
	out := make([]Release, n)
	for i := range out {
		out[i] = Release{AfterSlices: 15 + 13*int64(i)}
	}
	return out
}

// burst releases everything almost together, early: job i after 6+2i
// slices (the legacy "burst" pattern's {6, 8}).
type burst struct{}

func (burst) Name() string { return "burst" }
func (burst) Releases(n int, seed int64) []Release {
	out := make([]Release, n)
	for i := range out {
		out[i] = Release{AfterSlices: 6 + 2*int64(i)}
	}
	return out
}

// none releases everything at time zero: the policy order serializes the
// jobs and no mid-operation preemption occurs (the control case).
type none struct{}

func (none) Name() string { return "none" }
func (none) Releases(n int, seed int64) []Release {
	out := make([]Release, n)
	for i := range out {
		out[i] = Release{AfterSlices: -1}
	}
	return out
}

// burstyEpochGap and burstySize shape the bursty trace: pairs of jobs
// arrive together every epoch, with a small seeded jitter per job.
const (
	burstyStart    = 20
	burstyEpochGap = 45
	burstySize     = 2
	burstyJitter   = 6
)

// bursty is an open-loop bursty trace: jobs arrive in pairs at virtual
// times 20, 65, 110, ... with an independent seeded jitter of [0, 6) per
// job. Time-triggered on purpose — open-loop load does not wait for the
// system, and slice triggers cannot fire while nothing runs.
type bursty struct{}

func (bursty) Name() string { return "bursty" }
func (bursty) Releases(n int, seed int64) []Release {
	rng := rand.New(rand.NewSource(seed*0x51ed2701 + 11))
	out := make([]Release, n)
	for i := range out {
		base := int64(burstyStart + burstyEpochGap*(i/burstySize))
		out[i] = Release{AfterSlices: -1, At: base + rng.Int63n(burstyJitter)}
	}
	return out
}

// poissonMeanGap is the mean inter-arrival gap of the poisson trace.
const poissonMeanGap = 35.0

// poisson is an open-loop Poisson process: seeded exponential
// inter-arrival gaps with mean 35 virtual-time units, the textbook
// stochastic model of independent request traffic (and the arrival model
// of the Alistarh/Censor-Hillel/Shavit practically-wait-free analysis).
// Time-triggered like bursty; a pure function of (n, seed).
type poisson struct{}

func (poisson) Name() string { return "poisson" }
func (poisson) Releases(n int, seed int64) []Release {
	rng := rand.New(rand.NewSource(seed*0x9e3779b9 + 7))
	out := make([]Release, n)
	var at float64
	for i := range out {
		at += rng.ExpFloat64() * poissonMeanGap
		out[i] = Release{AfterSlices: -1, At: 1 + int64(at)}
	}
	return out
}

// ratePeriods are the per-tenant inter-arrival periods of the rate trace.
var ratePeriods = [...]int64{60, 105}

// rate is a rate-driven multi-tenant mix: jobs alternate between two
// tenants, tenant t releasing its k-th job at virtual time period_t*(k+1)
// (periods 60 and 105). A closed-form periodic open-loop schedule — the
// steady-state shape of a request-serving system, no randomness at all.
type rate struct{}

func (rate) Name() string { return "rate" }
func (rate) Releases(n int, seed int64) []Release {
	out := make([]Release, n)
	for i := range out {
		tenant := i % len(ratePeriods)
		k := int64(i/len(ratePeriods)) + 1
		out[i] = Release{AfterSlices: -1, At: ratePeriods[tenant] * k}
	}
	return out
}

// traces is the template registry, keyed by Name.
var traces = map[string]Trace{}

// legacy names the traces that predate this package as scenario patterns;
// scenario.Patterns() keeps returning exactly this set.
var legacy = []string{"burst", "none", "stagger"}

func init() {
	for _, t := range []Trace{stagger{}, burst{}, none{}, bursty{}, rate{}, poisson{}} {
		traces[t.Name()] = t
	}
}

// ByName resolves a trace template; "" means "stagger" (the historical
// scenario default).
func ByName(name string) (Trace, error) {
	if name == "" {
		name = "stagger"
	}
	if t, ok := traces[name]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("arrival: unknown trace %q (have %v)", name, Names())
}

// Names returns every template name, sorted.
func Names() []string {
	out := make([]string, 0, len(traces))
	for name := range traces {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Legacy returns the original scenario pattern names (sorted), a subset of
// Names. The wfbench sweep matrix and the scenario tests iterate this set,
// so its membership is part of the golden-output contract.
func Legacy() []string { return append([]string(nil), legacy...) }

package rt_test

import (
	"math"
	"testing"

	"repro/internal/arena"
	"repro/internal/core/multilist"
	"repro/internal/core/unilist"
	"repro/internal/rt"
	"repro/internal/sched"
)

func TestRateMonotonicOrder(t *testing.T) {
	tasks := []rt.Task{
		{Name: "slow", Period: 1000, BaseCost: 10},
		{Name: "fast", Period: 100, BaseCost: 10},
		{Name: "mid", Period: 500, BaseCost: 10},
		{Name: "mid2", Period: 500, BaseCost: 10},
	}
	ordered := rt.AssignRateMonotonic(tasks)
	want := []string{"fast", "mid", "mid2", "slow"}
	for i, w := range want {
		if ordered[i].Name != w {
			t.Fatalf("order = %v, want %v", names(ordered), want)
		}
	}
}

func names(ts []rt.Task) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

func TestWCETIncludesHelpingSurcharge(t *testing.T) {
	task := rt.Task{Name: "t", Period: 100, BaseCost: 10, Ops: 3, OpCost: 5}
	if got := task.WCET(); got != 10+2*3*5 {
		t.Errorf("WCET = %d, want %d (base + 2*ops*opcost)", got, 10+2*3*5)
	}
}

func TestResponseTimeAnalysisClassic(t *testing.T) {
	// The textbook example: three tasks, exact interference accounting.
	tasks := rt.AssignRateMonotonic([]rt.Task{
		{Name: "a", Period: 100, BaseCost: 25},
		{Name: "b", Period: 175, BaseCost: 35},
		{Name: "c", Period: 300, BaseCost: 60},
	})
	as, err := rt.ResponseTimeAnalysis(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// a: 25. b: 35 + ceil(R/100)*25 -> 60. c: 60 + ceil(R/100)*25 +
	// ceil(R/175)*35 -> 60+25+35=120 -> 60+2*25+35=145 -> 145: check.
	wantResponses := []int64{25, 60, 145}
	for i, want := range wantResponses {
		if as[i].Response != want {
			t.Errorf("task %s response = %d, want %d", as[i].Task.Name, as[i].Response, want)
		}
		if !as[i].Schedulable {
			t.Errorf("task %s reported unschedulable", as[i].Task.Name)
		}
	}
	if !rt.Schedulable(as) {
		t.Error("set reported unschedulable")
	}
}

func TestUnschedulableDetected(t *testing.T) {
	tasks := rt.AssignRateMonotonic([]rt.Task{
		{Name: "hog", Period: 100, BaseCost: 90},
		{Name: "late", Period: 200, BaseCost: 50},
	})
	as, err := rt.ResponseTimeAnalysis(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Schedulable(as) {
		t.Fatal("overloaded set reported schedulable")
	}
	if as[1].Schedulable {
		t.Error("the low-priority task should miss its deadline")
	}
}

func TestAnalysisValidation(t *testing.T) {
	if _, err := rt.ResponseTimeAnalysis([]rt.Task{{Name: "bad", Period: 0, BaseCost: 1}}); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := rt.ResponseTimeAnalysis([]rt.Task{{Name: "bad", Period: 10}}); err == nil {
		t.Error("zero WCET accepted")
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if got := rt.LiuLaylandBound(1); got != 1.0 {
		t.Errorf("bound(1) = %f, want 1", got)
	}
	if got := rt.LiuLaylandBound(3); math.Abs(got-0.7797) > 0.001 {
		t.Errorf("bound(3) = %f, want ~0.7798", got)
	}
	// The bound decreases toward ln 2.
	if rt.LiuLaylandBound(100) < math.Ln2-0.001 || rt.LiuLaylandBound(100) > rt.LiuLaylandBound(3) {
		t.Error("bound not decreasing toward ln 2")
	}
}

// TestAnalysisValidatedBySimulation is the package's point: a schedulable
// task set whose jobs share a wait-free list meets every deadline in the
// simulator, and each task's measured worst response stays within the
// analytical response bound (which uses the paper's 2T helping surcharge).
func TestAnalysisValidatedBySimulation(t *testing.T) {
	const listSize = 40
	// Calibrate the interference-free cost of the worst list operation
	// (a full-scan search).
	opCost := func() int64 {
		s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 16})
		ar, err := arena.New(s.Mem(), listSize+8, 1)
		if err != nil {
			t.Fatal(err)
		}
		l, err := unilist.New(s.Mem(), ar, 1)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]uint64, listSize)
		for i := range keys {
			keys[i] = uint64(10 * (i + 1))
		}
		if err := l.SeedAscending(keys); err != nil {
			t.Fatal(err)
		}
		ar.Freeze()
		var cost int64
		s.SpawnAt(0, 0, 1, "cal", func(e *sched.Env) {
			start := e.Now()
			l.Search(e, 10*listSize+5)
			cost = e.Now() - start
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return cost
	}()

	tasks := rt.AssignRateMonotonic([]rt.Task{
		{Name: "sensor", Period: 4_000, BaseCost: 300, Ops: 2, OpCost: opCost},
		{Name: "control", Period: 9_000, BaseCost: 800, Ops: 3, OpCost: opCost},
		{Name: "logger", Period: 20_000, BaseCost: 2_000, Ops: 4, OpCost: opCost},
	})
	as, err := rt.ResponseTimeAnalysis(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Schedulable(as) {
		t.Fatalf("task set unexpectedly unschedulable: %+v (opCost %d)", as, opCost)
	}

	// Simulate: 5 hyper-ish periods of jobs sharing one wait-free list.
	s := sched.New(sched.Config{Processors: 1, Seed: 3, MemWords: 1 << 18})
	ar, err := arena.New(s.Mem(), listSize+64, len(tasks))
	if err != nil {
		t.Fatal(err)
	}
	l, err := unilist.New(s.Mem(), ar, len(tasks))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, listSize)
	for i := range keys {
		keys[i] = uint64(10 * (i + 1))
	}
	if err := l.SeedAscending(keys); err != nil {
		t.Fatal(err)
	}
	ar.Freeze()

	const horizon = 100_000
	type jobRec struct {
		task int
		proc *sched.Proc
	}
	var jobs []jobRec
	for ti, task := range tasks {
		ti, task := ti, task
		prio := sched.Priority(len(tasks) - ti) // RM: order index -> priority
		for rel := int64(0); rel+task.Period <= horizon; rel += task.Period {
			p := s.Spawn(sched.JobSpec{
				Name: task.Name, CPU: 0, Prio: prio, Slot: ti, At: rel, AfterSlices: -1,
				Body: func(e *sched.Env) {
					for op := 0; op < task.Ops; op++ {
						l.Search(e, 10*listSize+5) // worst-case op
					}
					e.Delay(task.BaseCost)
				},
			})
			jobs = append(jobs, jobRec{task: ti, proc: p})
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	worst := make([]int64, len(tasks))
	for _, j := range jobs {
		r := j.proc.Completed - j.proc.Released
		if r > worst[j.task] {
			worst[j.task] = r
		}
	}
	for i, a := range as {
		if worst[i] > a.Response {
			t.Errorf("task %s: measured worst response %d exceeds analytical bound %d",
				a.Task.Name, worst[i], a.Response)
		}
		if worst[i] > a.Task.Period {
			t.Errorf("task %s missed a deadline: response %d > period %d", a.Task.Name, worst[i], a.Task.Period)
		}
		t.Logf("task %-8s analytical %6d  measured %6d  period %6d", a.Task.Name, a.Response, worst[i], a.Task.Period)
	}
}

func TestMultiWCET(t *testing.T) {
	task := rt.Task{Name: "t", Period: 100, BaseCost: 10, Ops: 2, OpCost: 5}
	if got := task.MultiWCET(4); got != 10+2*4*2*5 {
		t.Errorf("MultiWCET(4) = %d, want %d", got, 10+2*4*2*5)
	}
	if got := task.MultiWCET(0); got != task.WCET() {
		t.Errorf("MultiWCET(0) = %d, want uniprocessor WCET %d", got, task.WCET())
	}
}

func TestPartitionedAnalysis(t *testing.T) {
	tasks := []rt.Task{
		{Name: "a", Period: 4000, BaseCost: 200, Ops: 1, OpCost: 100},
		{Name: "b", Period: 8000, BaseCost: 400, Ops: 1, OpCost: 100},
		{Name: "c", Period: 4000, BaseCost: 200, Ops: 1, OpCost: 100},
	}
	as, err := rt.PartitionedAnalysis(tasks, []int{0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(as[0]) != 2 || len(as[1]) != 1 {
		t.Fatalf("partition sizes wrong: %d, %d", len(as[0]), len(as[1]))
	}
	// Task a on cpu0: WCET = 200 + 2*2*1*100 = 600; alone at top priority
	// its response is its WCET.
	if as[0][0].Response != 600 {
		t.Errorf("task a response = %d, want 600 (2PT surcharge with P=2)", as[0][0].Response)
	}
	for cpu, list := range as {
		for _, a := range list {
			if !a.Schedulable {
				t.Errorf("cpu %d task %s unschedulable: %+v", cpu, a.Task.Name, a)
			}
		}
	}
	if _, err := rt.PartitionedAnalysis(tasks, []int{0}, 2); err == nil {
		t.Error("mismatched assignment accepted")
	}
	if _, err := rt.PartitionedAnalysis(tasks, []int{0, 0, 5}, 2); err == nil {
		t.Error("out-of-range cpu accepted")
	}
}

// TestPartitionedAnalysisValidatedBySimulation: a partitioned two-processor
// task set sharing a multiprocessor wait-free list meets the analytical
// bounds in simulation.
func TestPartitionedAnalysisValidatedBySimulation(t *testing.T) {
	const listSize = 30
	const nCPU = 2
	// Calibrate a full-scan search on the multiprocessor list.
	opCost := func() int64 {
		s := sched.New(sched.Config{Processors: nCPU, Seed: 1, MemWords: 1 << 17})
		ar, err := arena.New(s.Mem(), listSize+8, 1)
		if err != nil {
			t.Fatal(err)
		}
		l, err := multilist.New(s.Mem(), ar, multilist.Config{Processors: nCPU, Procs: 1})
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]uint64, listSize)
		for i := range keys {
			keys[i] = uint64(10 * (i + 1))
		}
		if err := l.SeedAscending(keys); err != nil {
			t.Fatal(err)
		}
		ar.Freeze()
		var cost int64
		s.SpawnAt(0, 0, 1, "cal", func(e *sched.Env) {
			start := e.Now()
			l.Search(e, 10*listSize+5)
			cost = e.Now() - start
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return cost
	}()

	tasks := []rt.Task{
		{Name: "t0fast", Period: 8_000, BaseCost: 300, Ops: 1, OpCost: opCost},
		{Name: "t0slow", Period: 24_000, BaseCost: 900, Ops: 2, OpCost: opCost},
		{Name: "t1fast", Period: 8_000, BaseCost: 300, Ops: 1, OpCost: opCost},
		{Name: "t1slow", Period: 24_000, BaseCost: 900, Ops: 2, OpCost: opCost},
	}
	assign := []int{0, 0, 1, 1}
	analysis, err := rt.PartitionedAnalysis(tasks, assign, nCPU)
	if err != nil {
		t.Fatal(err)
	}
	for cpu, as := range analysis {
		if !rt.Schedulable(as) {
			t.Fatalf("cpu %d unschedulable: %+v (opCost %d)", cpu, as, opCost)
		}
	}

	// Simulate.
	s := sched.New(sched.Config{Processors: nCPU, Seed: 7, MemWords: 1 << 19})
	ar, err := arena.New(s.Mem(), listSize+64, len(tasks))
	if err != nil {
		t.Fatal(err)
	}
	l, err := multilist.New(s.Mem(), ar, multilist.Config{Processors: nCPU, Procs: len(tasks)})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, listSize)
	for i := range keys {
		keys[i] = uint64(10 * (i + 1))
	}
	if err := l.SeedAscending(keys); err != nil {
		t.Fatal(err)
	}
	ar.Freeze()

	const horizon = 96_000
	type jobRec struct {
		task int
		proc *sched.Proc
	}
	var jobs []jobRec
	for ti, task := range tasks {
		ti, task := ti, task
		var prio sched.Priority = 1
		if task.Period < 20_000 {
			prio = 2 // rate-monotonic within each processor
		}
		for rel := int64(0); rel+task.Period <= horizon; rel += task.Period {
			pr := s.Spawn(sched.JobSpec{
				Name: task.Name, CPU: assign[ti], Prio: prio, Slot: ti, At: rel, AfterSlices: -1,
				Body: func(e *sched.Env) {
					for op := 0; op < task.Ops; op++ {
						l.Search(e, 10*listSize+5)
					}
					e.Delay(task.BaseCost)
				},
			})
			jobs = append(jobs, jobRec{task: ti, proc: pr})
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	worst := make([]int64, len(tasks))
	for _, j := range jobs {
		if r := j.proc.Completed - j.proc.Released; r > worst[j.task] {
			worst[j.task] = r
		}
	}
	// Match analytical entries back to tasks by name.
	bound := map[string]int64{}
	for _, as := range analysis {
		for _, a := range as {
			bound[a.Task.Name] = a.Response
		}
	}
	for ti, task := range tasks {
		if worst[ti] > bound[task.Name] {
			t.Errorf("task %s: measured %d exceeds analytical bound %d", task.Name, worst[ti], bound[task.Name])
		}
		t.Logf("task %-7s analytical %6d  measured %6d  period %6d", task.Name, bound[task.Name], worst[ti], task.Period)
	}
}

// Package rt provides the real-time scheduling theory the paper's bounds
// feed into: rate-monotonic priority assignment and response-time analysis
// for periodic task sets whose jobs access wait-free shared objects.
//
// This is the setting of the paper's companion reference [1] ("Wait-Free
// Object-Sharing Schemes for Real-Time Uniprocessors and Multiprocessors")
// and the reason the paper cares about *worst-case* operation costs at all:
// "tasks must be guaranteed to meet their deadlines, and such guarantees
// require that tight worst-case execution times for object accesses be
// known" (Section 3.4). The wait-free objects make that possible — an
// operation costs at most its interference-free time plus a bounded helping
// term (Θ(2T) on a uniprocessor, Θ(2PT) across processors) — whereas
// lock-free retry loops admit no such bound.
//
// The analysis here is the classic uniprocessor response-time recurrence
//
//	R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / T_j⌉ · C_j
//
// with each task's C_i inflated by the helping surcharge of its object
// operations: under incremental helping a job performs at most one helping
// pass per own operation, so an operation's WCET contribution is at most
// twice its interference-free cost (the paper's 2T constant). The package's
// tests validate the bounds against the simulator: measured worst response
// times never exceed the analytical ones.
package rt

import (
	"fmt"
	"math"
	"sort"
)

// Task is one periodic task on a priority-scheduled uniprocessor.
type Task struct {
	// Name identifies the task in reports.
	Name string
	// Period is the inter-arrival time (and implicit deadline), in
	// virtual time units.
	Period int64
	// BaseCost is the interference-free worst-case execution time of one
	// job, excluding object operations (local work).
	BaseCost int64
	// Ops is the number of wait-free object operations a job performs.
	Ops int
	// OpCost is the interference-free worst-case cost of one object
	// operation (e.g. a full list traversal at the maximum list size).
	OpCost int64
}

// WCET returns the job's worst-case execution time including the wait-free
// helping surcharge: each of the job's own operations may additionally help
// one other operation to completion (incremental helping), so operations
// are charged at twice their interference-free cost — the paper's Θ(2T).
func (t Task) WCET() int64 {
	return t.BaseCost + 2*int64(t.Ops)*t.OpCost
}

// Utilization returns the task's processor utilization with the helping
// surcharge included.
func (t Task) Utilization() float64 {
	return float64(t.WCET()) / float64(t.Period)
}

// AssignRateMonotonic orders tasks by rate-monotonic priority: shorter
// period, higher priority. It returns the tasks sorted from highest to
// lowest priority; ties break by name for determinism.
func AssignRateMonotonic(tasks []Task) []Task {
	out := append([]Task(nil), tasks...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Period != out[j].Period {
			return out[i].Period < out[j].Period
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Analysis is the result of response-time analysis for one task.
type Analysis struct {
	Task Task
	// WCET is the helping-inflated worst-case execution time used.
	WCET int64
	// Response is the analytical worst-case response time, or -1 when
	// the recurrence diverged past the period (unschedulable).
	Response int64
	// Schedulable reports Response <= Period.
	Schedulable bool
}

// ResponseTimeAnalysis runs the classic recurrence on a rate-monotonically
// ordered task set (highest priority first, as returned by
// AssignRateMonotonic). An error is returned for non-positive periods or
// costs.
func ResponseTimeAnalysis(ordered []Task) ([]Analysis, error) {
	for _, t := range ordered {
		if t.Period <= 0 {
			return nil, fmt.Errorf("rt: task %q has non-positive period %d", t.Name, t.Period)
		}
		if t.WCET() <= 0 {
			return nil, fmt.Errorf("rt: task %q has non-positive WCET %d", t.Name, t.WCET())
		}
	}
	out := make([]Analysis, len(ordered))
	for i, t := range ordered {
		c := t.WCET()
		r := c
		for iter := 0; ; iter++ {
			interference := int64(0)
			for j := 0; j < i; j++ {
				hp := ordered[j]
				interference += ceilDiv(r, hp.Period) * hp.WCET()
			}
			next := c + interference
			if next == r {
				break
			}
			r = next
			if r > t.Period || iter > 1_000 {
				r = -1
				break
			}
		}
		out[i] = Analysis{Task: t, WCET: c, Response: r, Schedulable: r >= 0 && r <= t.Period}
	}
	return out, nil
}

// Schedulable reports whether every task in the analysis meets its deadline.
func Schedulable(as []Analysis) bool {
	for _, a := range as {
		if !a.Schedulable {
			return false
		}
	}
	return true
}

// TotalUtilization sums the task utilizations (with helping surcharge).
func TotalUtilization(tasks []Task) float64 {
	u := 0.0
	for _, t := range tasks {
		u += t.Utilization()
	}
	return u
}

// LiuLaylandBound returns the classic sufficient utilization bound
// n·(2^(1/n) − 1) for n rate-monotonic tasks.
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// MultiWCET returns the job's worst-case execution time when the shared
// objects live on a P-processor helping ring: each operation may traverse
// the ring twice, helping one operation per processor per traversal — the
// paper's Θ(2·P·T) bound (Figure 1, multiprocessor rows).
func (t Task) MultiWCET(p int) int64 {
	if p < 1 {
		p = 1
	}
	return t.BaseCost + 2*int64(p)*int64(t.Ops)*t.OpCost
}

// PartitionedAnalysis runs response-time analysis per processor for a
// partitioned multiprocessor task set: tasks[i] runs on CPU assign[i], all
// tasks share objects on a P-processor helping ring, so every operation is
// charged the 2·P·T helping surcharge. Each processor's task subset is
// analyzed with the uniprocessor recurrence using MultiWCET costs.
func PartitionedAnalysis(tasks []Task, assign []int, p int) (map[int][]Analysis, error) {
	if len(assign) != len(tasks) {
		return nil, fmt.Errorf("rt: %d assignments for %d tasks", len(assign), len(tasks))
	}
	perCPU := make(map[int][]Task)
	for i, t := range tasks {
		if assign[i] < 0 || assign[i] >= p {
			return nil, fmt.Errorf("rt: task %q assigned to cpu %d of %d", t.Name, assign[i], p)
		}
		// Fold the multiprocessor surcharge into BaseCost so the
		// uniprocessor recurrence applies unchanged.
		inflated := t
		inflated.BaseCost = t.MultiWCET(p) - 2*int64(t.Ops)*t.OpCost
		perCPU[assign[i]] = append(perCPU[assign[i]], inflated)
	}
	out := make(map[int][]Analysis, len(perCPU))
	for cpu, ts := range perCPU {
		as, err := ResponseTimeAnalysis(AssignRateMonotonic(ts))
		if err != nil {
			return nil, err
		}
		out[cpu] = as
	}
	return out, nil
}

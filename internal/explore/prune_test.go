package explore_test

// Pruning soundness on the checker-of-the-checker seeds: the
// internal/linz/testdata/mutant objects commit announced operations in the
// wrong order, a bug only the history-based engine can see, and only under
// schedules where the adversaries' announces actually land between the
// victim's announce and the drain. That makes the failing region of the
// release-vector space irregular — exactly the shape a pruner could
// illegally cut into. These tests run full and pruned sweeps over both
// mutants across seeds 1–5 under KeepGoing and require identical failure
// sets, while also requiring that the pruner skipped a nonzero number of
// schedules and that at least one seed actually failed (no vacuous pass).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/explore"
	"repro/internal/linz"
	"repro/internal/linz/testdata/mutant"
	"repro/internal/registry"
	"repro/internal/sched"
)

// mutantScripts draws the three process scripts for one seed: the victim
// (slot 0) runs three operations, the adversaries two each, mixing
// announces (enqueue/push) with drains (dequeue/pop). Values are unique per
// run so the black-box engine can track identity.
func mutantScripts(seed int64, announce, drain registry.OpCode) [][]registry.Op {
	rng := rand.New(rand.NewSource(seed))
	val := uint64(0)
	scripts := make([][]registry.Op, 3)
	for slot := range scripts {
		n := 3
		if slot > 0 {
			n = 2
		}
		for i := 0; i < n; i++ {
			if rng.Intn(10) < 7 {
				val++
				scripts[slot] = append(scripts[slot], registry.Op{Code: announce, Val: val})
			} else {
				scripts[slot] = append(scripts[slot], registry.Op{Code: drain})
			}
		}
	}
	return scripts
}

// mutantScenario returns an InfoScenario running one release vector of the
// sweep cast (victim at priority 1, two adversaries above it, one CPU) over
// a fresh mutant instance, with the history recorded and judged by the
// black-box engine. The error reports the linearizability verdict; the
// RunInfo carries the quiescent-release observation the pruner keys on.
func mutantScenario(t *testing.T, object string, build func() registry.Instance, scripts [][]registry.Op) explore.InfoScenario {
	spec := linz.SpecFor(registry.Lookup0(object), registry.Config{})
	return func(rel []int64) (explore.RunInfo, error) {
		info := explore.RunInfo{QuiescentFrom: len(rel)}
		s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 10})
		rec, wrapped := linz.Record(build())
		body := func(slot int) func(e *sched.Env) {
			ops := scripts[slot]
			return func(e *sched.Env) {
				for _, op := range ops {
					wrapped.Apply(e, slot, op)
				}
			}
		}
		s.Spawn(sched.JobSpec{Name: "victim", Prio: 1, Slot: 0, AfterSlices: -1, Cost: 3, Body: body(0)})
		adv := [2]*sched.Proc{
			s.Spawn(sched.JobSpec{Name: "adv", Prio: 5, Slot: 1, AfterSlices: rel[0], Cost: 2, Body: body(1)}),
			s.Spawn(sched.JobSpec{Name: "adv2", Prio: 9, Slot: 2, AfterSlices: rel[1], Cost: 2, Body: body(2)}),
		}
		if err := s.Run(); err != nil {
			return info, err
		}
		for i, p := range adv {
			if p.QuiescentRelease() {
				info.QuiescentFrom = i
				break
			}
		}
		out, err := linz.Check(rec.History(), spec, linz.Options{})
		if err != nil {
			return info, err
		}
		if !out.OK {
			return info, fmt.Errorf("not linearizable:\n%s", rec.History().Text())
		}
		return info, nil
	}
}

// prunedVsFull sweeps one mutant under one seed with pruning off and on and
// returns both failure lists plus the pruned schedule count.
func prunedVsFull(t *testing.T, object string, build func() registry.Instance, scripts [][]registry.Op) (full, pruned explore.Failures, skipped int) {
	cfg := explore.Config{Adversaries: 2, Max: 16, Stride: 1, Gap: 6, KeepGoing: true}
	sweep := func(prune bool) (explore.SweepInfo, explore.Failures) {
		c := cfg
		c.Prune = prune
		si, err := explore.SweepPruned(c, mutantScenario(t, object, build, scripts))
		if err == nil {
			return si, nil
		}
		fs, ok := err.(explore.Failures)
		if !ok {
			t.Fatalf("prune=%v: non-failure error: %v", prune, err)
		}
		return si, fs
	}
	fullInfo, fullFails := sweep(false)
	prunedInfo, prunedFails := sweep(true)
	if fullInfo.Pruned != 0 {
		t.Errorf("unpruned sweep reported %d pruned schedules", fullInfo.Pruned)
	}
	if got := prunedInfo.Explored + prunedInfo.Pruned; got != fullInfo.Explored {
		t.Errorf("pruned sweep covered %d schedules (%d run + %d skipped), full enumeration is %d",
			got, prunedInfo.Explored, prunedInfo.Pruned, fullInfo.Explored)
	}
	return fullFails, prunedFails, prunedInfo.Pruned
}

// TestPruneSoundnessOnMutants: across seeds 1–5 and both mutants, the
// pruned sweep must report exactly the failing vectors the full sweep
// reports, in the same order — no failure may hide inside a pruned subtree.
func TestPruneSoundnessOnMutants(t *testing.T) {
	cases := []struct {
		object          string
		announce, drain registry.OpCode
		build           func(model registry.Model) registry.Instance
	}{
		{"uniqueue", registry.OpEnqueue, registry.OpDequeue,
			func(m registry.Model) registry.Instance { return mutant.NewLazyQueue(3, m) }},
		{"unistack", registry.OpPush, registry.OpPop,
			func(m registry.Model) registry.Instance { return mutant.NewLazyStack(3, m) }},
	}
	for _, tc := range cases {
		t.Run(tc.object, func(t *testing.T) {
			anyFailed, anyPruned := false, false
			for seed := int64(1); seed <= 5; seed++ {
				scripts := mutantScripts(seed, tc.announce, tc.drain)
				build := func() registry.Instance {
					return tc.build(registry.Lookup0(tc.object).NewModel(registry.Config{}))
				}
				full, pruned, skipped := prunedVsFull(t, tc.object, build, scripts)
				if len(full) != len(pruned) {
					t.Fatalf("seed %d: full sweep found %d failures, pruned sweep %d", seed, len(full), len(pruned))
				}
				for i := range full {
					fv, pv := full[i].Vector, pruned[i].Vector
					if len(fv) != len(pv) || fv[0] != pv[0] || fv[1] != pv[1] {
						t.Errorf("seed %d: failure %d at vector %v in the full sweep, %v pruned", seed, i, fv, pv)
					}
					if full[i].Err.Error() != pruned[i].Err.Error() {
						t.Errorf("seed %d: vector %v failure text diverged:\nfull:   %v\npruned: %v",
							seed, fv, full[i].Err, pruned[i].Err)
					}
				}
				if len(full) > 0 {
					anyFailed = true
				}
				if skipped > 0 {
					anyPruned = true
				}
				t.Logf("seed %d: %d failing vectors, %d schedules pruned", seed, len(full), skipped)
			}
			if !anyFailed {
				t.Error("no seed produced a failing vector; the soundness comparison is vacuous")
			}
			if !anyPruned {
				t.Error("no seed pruned a schedule; the soundness comparison never exercised pruning")
			}
		})
	}
}

package explore_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core/unistack"
	"repro/internal/explore"
	"repro/internal/sched"
)

func TestSweepEnumerates(t *testing.T) {
	var seen [][]int64
	n, err := explore.Sweep(explore.Config{Adversaries: 2, Max: 3, Stride: 1},
		func(rel []int64) error {
			seen = append(seen, append([]int64(nil), rel...)) // rel is reused across calls
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 || len(seen) != 9 {
		t.Fatalf("explored %d vectors, want 9", n)
	}
	if seen[0][0] != 0 || seen[8][0] != 2 || seen[8][1] != 2 {
		t.Errorf("unexpected enumeration order: first %v last %v", seen[0], seen[8])
	}
}

func TestSweepGap(t *testing.T) {
	var count int
	n, err := explore.Sweep(explore.Config{Adversaries: 2, Max: 5, Stride: 1, Gap: 2},
		func(rel []int64) error {
			if rel[1] <= rel[0] || rel[1] > rel[0]+2 {
				return fmt.Errorf("gap constraint violated: %v", rel)
			}
			count++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != count || n != 10 { // 5 first points x 2 offsets
		t.Fatalf("explored %d, want 10", n)
	}
}

func TestSweepStopsOnFailure(t *testing.T) {
	boom := errors.New("boom")
	n, err := explore.Sweep(explore.Config{Adversaries: 1, Max: 10},
		func(rel []int64) error {
			if rel[0] == 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 4 {
		t.Errorf("explored %d before failing, want 4", n)
	}
}

func TestSweepKeepGoing(t *testing.T) {
	boom := errors.New("boom")
	fail := map[int64]bool{2: true, 5: true, 7: true}
	n, err := explore.Sweep(explore.Config{Adversaries: 1, Max: 10, KeepGoing: true},
		func(rel []int64) error {
			if fail[rel[0]] {
				return fmt.Errorf("at %d: %w", rel[0], boom)
			}
			return nil
		})
	if n != 10 {
		t.Fatalf("explored %d vectors, want all 10 despite failures", n)
	}
	var fs explore.Failures
	if !errors.As(err, &fs) {
		t.Fatalf("err = %T %v, want explore.Failures", err, err)
	}
	if len(fs) != 3 {
		t.Fatalf("collected %d failures, want 3: %v", len(fs), fs)
	}
	for i, want := range []int64{2, 5, 7} {
		if fs[i].Vector[0] != want {
			t.Errorf("failure %d at vector %v, want [%d]", i, fs[i].Vector, want)
		}
		if !errors.Is(fs[i].Err, boom) {
			t.Errorf("failure %d lost its cause: %v", i, fs[i].Err)
		}
	}
	// The aggregate message must list every reproducer.
	for _, want := range []string{"3 failing", "[2]", "[5]", "[7]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregate error lacks %q: %v", want, err)
		}
	}
}

func TestSweepKeepGoingMaxFailures(t *testing.T) {
	n, err := explore.Sweep(explore.Config{Adversaries: 1, Max: 50, KeepGoing: true, MaxFailures: 5},
		func(rel []int64) error { return errors.New("always") })
	var fs explore.Failures
	if !errors.As(err, &fs) || len(fs) != 5 {
		t.Fatalf("want exactly 5 collected failures, got %v (n=%d)", err, n)
	}
	if n != 5 {
		t.Errorf("sweep should stop once the failure budget is spent, explored %d", n)
	}
}

func TestSweepKeepGoingAllPass(t *testing.T) {
	n, err := explore.Sweep(explore.Config{Adversaries: 1, Max: 4, KeepGoing: true},
		func(rel []int64) error { return nil })
	if err != nil || n != 4 {
		t.Fatalf("clean sweep returned n=%d err=%v", n, err)
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := explore.Sweep(explore.Config{Adversaries: 0, Max: 5}, func([]int64) error { return nil }); err == nil {
		t.Error("zero adversaries accepted")
	}
	if _, err := explore.Sweep(explore.Config{Adversaries: 1, Max: 0}, func([]int64) error { return nil }); err == nil {
		t.Error("zero max accepted")
	}
}

// TestSweepDrivesRealScenario uses the library end-to-end: a two-adversary
// sweep over the wait-free stack with full checking — the same discipline
// the algorithm packages' sweep tests apply by hand.
func TestSweepDrivesRealScenario(t *testing.T) {
	n, err := explore.Sweep(explore.Config{Adversaries: 2, Max: 60, Stride: 3, Gap: 9},
		func(rel []int64) error {
			s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 14})
			ar, err := arena.New(s.Mem(), 32, 3)
			if err != nil {
				return err
			}
			st, err := unistack.New(s.Mem(), ar, 3)
			if err != nil {
				return err
			}
			ar.Freeze()
			var model []uint64
			chk := check.NewSerialChecker(s.Mem(), st.Engine().AnnPidAddr(), 3,
				func(p int) bool {
					node, op := st.PeekPar(p)
					if op == 1 {
						model = append([]uint64{s.Mem().Peek(ar.ValAddr(arena.Ref(node)))}, model...)
						return true
					}
					if len(model) == 0 {
						return false
					}
					model = model[1:]
					return true
				},
				func() error { return check.SliceEqual(st.Snapshot(), model) })
			s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				st.Push(e, 100)
				chk.EndOp(0, true)
				_, ok := st.Pop(e)
				chk.EndOp(0, ok)
			}})
			s.Spawn(sched.JobSpec{Name: "adv1", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel[0], Body: func(e *sched.Env) {
				st.Push(e, 200)
				chk.EndOp(1, true)
			}})
			s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel[1], Body: func(e *sched.Env) {
				_, ok := st.Pop(e)
				chk.EndOp(2, ok)
			}})
			if err := s.Run(); err != nil {
				return err
			}
			chk.Finish()
			return chk.Err()
		})
	if err != nil {
		t.Fatal(err)
	}
	if n < 50 {
		t.Errorf("explored only %d schedules", n)
	}
	t.Logf("explored %d nested two-adversary schedules", n)
}

// TestUnconstrainedSpaceCap: Gap==0 with an absurd Max^Adversaries space is
// refused up front — the scenario never runs, instead of a sweep that would
// outlive the machine.
func TestUnconstrainedSpaceCap(t *testing.T) {
	calls := 0
	_, err := explore.Sweep(explore.Config{Adversaries: 4, Max: 100000}, func([]int64) error {
		calls++
		return nil
	})
	if err == nil {
		t.Fatal("absurd Gap=0 space accepted")
	}
	if !strings.Contains(err.Error(), "cap") {
		t.Errorf("error does not mention the cap: %v", err)
	}
	if calls != 0 {
		t.Errorf("scenario invoked %d times before the refusal", calls)
	}

	// Small unconstrained spaces keep working, and Stride counts toward the
	// space estimate (Max 4096 / Stride 2048 per adversary = 2^4 vectors).
	n, err := explore.Sweep(explore.Config{Adversaries: 2, Max: 3}, func([]int64) error { return nil })
	if err != nil || n != 9 {
		t.Fatalf("small Gap=0 sweep: n=%d err=%v, want 9, nil", n, err)
	}
	n, err = explore.Sweep(explore.Config{Adversaries: 4, Max: 4096, Stride: 2048}, func([]int64) error { return nil })
	if err != nil || n != 16 {
		t.Fatalf("strided Gap=0 sweep: n=%d err=%v, want 16, nil", n, err)
	}
}

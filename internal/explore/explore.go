// Package explore provides exhaustive release-point exploration: the
// model-checking-lite discipline used throughout this repository's tests
// and by cmd/wfcheck.
//
// The scheduler's slice-triggered job releases (sched.JobSpec.AfterSlices)
// make "release adversary i exactly when the system has executed k_i
// slices" a deterministic scheduling handle. A Scenario closure builds and
// runs one complete simulation for a given release vector; Sweep enumerates
// vectors so that every preemption window of the victim's operations is
// exercised. Because each run is deterministic, a failing vector is a
// perfect reproducer.
package explore

import (
	"fmt"
	"strings"
)

// Scenario builds and runs one schedule for the given adversary release
// points (in executed slices). It returns an error if the run or its
// checkers detect a violation; the error is wrapped with the vector.
type Scenario func(releases []int64) error

// Config bounds a sweep.
type Config struct {
	// Adversaries is the number of release points to enumerate.
	Adversaries int
	// Max bounds each release point: points range over [0, Max).
	Max int64
	// Stride samples every Stride-th point (1 = exhaustive).
	Stride int64
	// Gap constrains successive release points: point i+1 ranges over
	// [point_i + 1, point_i + Gap]. Zero means independent full ranges
	// (beware: the space is Max^Adversaries).
	Gap int64
	// KeepGoing continues the sweep past failing vectors instead of
	// stopping at the first, collecting every failure. The returned
	// error is then a Failures value carrying all failing vectors —
	// each a complete reproducer — so one sweep maps out the whole
	// failure region of the release-point space.
	KeepGoing bool
	// MaxFailures bounds the failures collected under KeepGoing; once
	// reached, the sweep stops early. Zero means a default of 100 (a
	// completely broken scenario fails on every vector; collecting
	// millions of identical reproducers helps nobody).
	MaxFailures int
}

// Failure is one failing release vector and its error.
type Failure struct {
	Vector []int64
	Err    error
}

// Failures is the aggregate error returned by Sweep under KeepGoing when
// at least one vector failed.
type Failures []Failure

// Error summarizes every failing vector, one per line.
func (fs Failures) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "explore: %d failing vector(s):", len(fs))
	for _, f := range fs {
		fmt.Fprintf(&sb, "\n  vector %v: %v", f.Vector, f.Err)
	}
	return sb.String()
}

// DefaultMaxFailures bounds collected failures when Config.MaxFailures is
// zero.
const DefaultMaxFailures = 100

// UnconstrainedSpaceCap bounds the schedule space Sweep will accept when
// Gap is zero and every release point ranges independently. The space is
// then (Max/Stride)^Adversaries — innocuous-looking configs explode into
// runs that outlive the machine; Sweep refuses them up front instead of
// silently grinding.
const UnconstrainedSpaceCap = 1 << 20

// Count returns the number of release vectors Sweep would enumerate for
// cfg without running any schedule. Progress meters use it to price a
// sweep up front (the ETA denominator); enumeration is pure recursion, so
// counting a million-vector space costs microseconds.
func Count(cfg Config) (int, error) {
	return Sweep(cfg, func([]int64) error { return nil })
}

// Vectors materializes the release vectors Sweep would enumerate for cfg,
// in enumeration order. Drivers that run the same vector under several
// scheduling policies (divergence tests, parallel harnesses) enumerate
// once and iterate, instead of re-deriving the recursion per policy.
func Vectors(cfg Config) ([][]int64, error) {
	var out [][]int64
	if _, err := Sweep(cfg, func(rel []int64) error {
		out = append(out, rel)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Sweep runs the scenario for every release vector permitted by cfg and
// returns the number of schedules explored. It stops at the first failure
// unless cfg.KeepGoing is set, in which case it explores the whole space
// and reports every failing vector as a Failures error.
func Sweep(cfg Config, s Scenario) (int, error) {
	if cfg.Adversaries < 1 {
		return 0, fmt.Errorf("explore: need at least one adversary")
	}
	if cfg.Max < 1 {
		return 0, fmt.Errorf("explore: Max must be positive")
	}
	if cfg.Stride < 1 {
		cfg.Stride = 1
	}
	if cfg.MaxFailures < 1 {
		cfg.MaxFailures = DefaultMaxFailures
	}
	if cfg.Gap == 0 {
		// Unconstrained points multiply: refuse absurd spaces before the
		// first simulation runs. The product check is overflow-safe — it
		// divides instead of multiplying past the cap.
		per := (cfg.Max + cfg.Stride - 1) / cfg.Stride
		total := int64(1)
		for i := 0; i < cfg.Adversaries; i++ {
			if total > UnconstrainedSpaceCap/per {
				return 0, fmt.Errorf(
					"explore: Gap=0 spans (Max %d / Stride %d)^%d adversaries > the %d-schedule cap; set Gap, raise Stride, or lower Max",
					cfg.Max, cfg.Stride, cfg.Adversaries, int64(UnconstrainedSpaceCap))
			}
			total *= per
		}
	}
	vec := make([]int64, cfg.Adversaries)
	n := 0
	var failures Failures
	var rec func(i int, lo int64) error
	rec = func(i int, lo int64) error {
		if i == cfg.Adversaries {
			n++
			v := append([]int64(nil), vec...)
			if err := s(v); err != nil {
				if !cfg.KeepGoing {
					return fmt.Errorf("explore: vector %v: %w", v, err)
				}
				failures = append(failures, Failure{Vector: v, Err: err})
				if len(failures) >= cfg.MaxFailures {
					return failures
				}
			}
			return nil
		}
		hi := cfg.Max
		if cfg.Gap > 0 && i > 0 {
			hi = lo + cfg.Gap
		}
		for k := lo; k < hi; k += cfg.Stride {
			vec[i] = k
			next := int64(0)
			if cfg.Gap > 0 {
				next = k + 1
			}
			if err := rec(i+1, next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return n, err
	}
	if len(failures) > 0 {
		return n, failures
	}
	return n, nil
}

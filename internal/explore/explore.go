// Package explore provides exhaustive release-point exploration: the
// model-checking-lite discipline used throughout this repository's tests
// and by cmd/wfcheck.
//
// The scheduler's slice-triggered job releases (sched.JobSpec.AfterSlices)
// make "release adversary i exactly when the system has executed k_i
// slices" a deterministic scheduling handle. A Scenario closure builds and
// runs one complete simulation for a given release vector; Sweep enumerates
// vectors so that every preemption window of the victim's operations is
// exercised. Because each run is deterministic, a failing vector is a
// perfect reproducer.
package explore

import (
	"fmt"
)

// Scenario builds and runs one schedule for the given adversary release
// points (in executed slices). It returns an error if the run or its
// checkers detect a violation; the error is wrapped with the vector.
type Scenario func(releases []int64) error

// Config bounds a sweep.
type Config struct {
	// Adversaries is the number of release points to enumerate.
	Adversaries int
	// Max bounds each release point: points range over [0, Max).
	Max int64
	// Stride samples every Stride-th point (1 = exhaustive).
	Stride int64
	// Gap constrains successive release points: point i+1 ranges over
	// [point_i + 1, point_i + Gap]. Zero means independent full ranges
	// (beware: the space is Max^Adversaries).
	Gap int64
}

// Sweep runs the scenario for every release vector permitted by cfg and
// returns the number of schedules explored. It stops at the first failure.
func Sweep(cfg Config, s Scenario) (int, error) {
	if cfg.Adversaries < 1 {
		return 0, fmt.Errorf("explore: need at least one adversary")
	}
	if cfg.Max < 1 {
		return 0, fmt.Errorf("explore: Max must be positive")
	}
	if cfg.Stride < 1 {
		cfg.Stride = 1
	}
	vec := make([]int64, cfg.Adversaries)
	n := 0
	var rec func(i int, lo int64) error
	rec = func(i int, lo int64) error {
		if i == cfg.Adversaries {
			n++
			if err := s(append([]int64(nil), vec...)); err != nil {
				return fmt.Errorf("explore: vector %v: %w", vec, err)
			}
			return nil
		}
		hi := cfg.Max
		if cfg.Gap > 0 && i > 0 {
			hi = lo + cfg.Gap
		}
		for k := lo; k < hi; k += cfg.Stride {
			vec[i] = k
			next := int64(0)
			if cfg.Gap > 0 {
				next = k + 1
			}
			if err := rec(i+1, next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return n, err
	}
	return n, nil
}

// Package explore provides exhaustive release-point exploration: the
// model-checking-lite discipline used throughout this repository's tests
// and by cmd/wfcheck.
//
// The scheduler's slice-triggered job releases (sched.JobSpec.AfterSlices)
// make "release adversary i exactly when the system has executed k_i
// slices" a deterministic scheduling handle. A Scenario closure builds and
// runs one complete simulation for a given release vector; Sweep enumerates
// vectors so that every preemption window of the victim's operations is
// exercised. Because each run is deterministic, a failing vector is a
// perfect reproducer.
package explore

import (
	"fmt"
	"strings"
)

// Scenario builds and runs one schedule for the given adversary release
// points (in executed slices). It returns an error if the run or its
// checkers detect a violation; the error is wrapped with the vector.
//
// The releases slice is reused across calls: a scenario that retains it
// past its own return must copy it.
type Scenario func(releases []int64) error

// RunInfo is what a completed schedule reports back to the pruner.
type RunInfo struct {
	// QuiescentFrom is the smallest adversary index whose release fired at
	// a quiescent flush (the scheduler releasing every slice-pending
	// process because all CPUs went idle) rather than by reaching its
	// slice threshold; len(releases) when every adversary hit its
	// threshold. Because release thresholds are strictly increasing across
	// adversaries under Gap ordering, quiescence is monotone in the index:
	// if adversary i quiesced, so did every adversary after it.
	QuiescentFrom int
}

// InfoScenario is a Scenario that also reports RunInfo for pruning. The
// releases slice is reused across calls, as with Scenario.
type InfoScenario func(releases []int64) (RunInfo, error)

// SweepInfo aggregates what a pruned sweep did.
type SweepInfo struct {
	// Explored counts schedules actually run.
	Explored int
	// Pruned counts schedules skipped as provably equivalent to an
	// explored one. Explored+Pruned equals the full enumeration size.
	Pruned int
}

// Config bounds a sweep.
type Config struct {
	// Adversaries is the number of release points to enumerate.
	Adversaries int
	// Max bounds each release point: points range over [0, Max).
	Max int64
	// Stride samples every Stride-th point (1 = exhaustive).
	Stride int64
	// Gap constrains successive release points: point i+1 ranges over
	// [point_i + 1, point_i + Gap]. Zero means independent full ranges
	// (beware: the space is Max^Adversaries).
	Gap int64
	// KeepGoing continues the sweep past failing vectors instead of
	// stopping at the first, collecting every failure. The returned
	// error is then a Failures value carrying all failing vectors —
	// each a complete reproducer — so one sweep maps out the whole
	// failure region of the release-point space.
	KeepGoing bool
	// Prune enables quiescence-equivalence pruning (SweepPruned only): a
	// passing schedule whose adversaries from index q onward were all
	// released by the quiescent flush proves every not-yet-enumerated
	// vector that only raises those thresholds equivalent, and the sweep
	// skips them. Off by default; a disabled pruner enumerates exactly
	// what Sweep does, in the same order. See DESIGN.md §15 for the
	// soundness argument.
	Prune bool
	// MaxFailures bounds the failures collected under KeepGoing; once
	// reached, the sweep stops early. Zero means a default of 100 (a
	// completely broken scenario fails on every vector; collecting
	// millions of identical reproducers helps nobody).
	MaxFailures int
}

// Failure is one failing release vector and its error.
type Failure struct {
	Vector []int64
	Err    error
}

// Failures is the aggregate error returned by Sweep under KeepGoing when
// at least one vector failed.
type Failures []Failure

// Error summarizes every failing vector, one per line.
func (fs Failures) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "explore: %d failing vector(s):", len(fs))
	for _, f := range fs {
		fmt.Fprintf(&sb, "\n  vector %v: %v", f.Vector, f.Err)
	}
	return sb.String()
}

// DefaultMaxFailures bounds collected failures when Config.MaxFailures is
// zero.
const DefaultMaxFailures = 100

// UnconstrainedSpaceCap bounds the schedule space Sweep will accept when
// Gap is zero and every release point ranges independently. The space is
// then (Max/Stride)^Adversaries — innocuous-looking configs explode into
// runs that outlive the machine; Sweep refuses them up front instead of
// silently grinding.
const UnconstrainedSpaceCap = 1 << 20

// Count returns the number of release vectors Sweep would enumerate for
// cfg without running any schedule. Progress meters use it to price a
// sweep up front (the ETA denominator); enumeration is pure recursion, so
// counting a million-vector space costs microseconds.
func Count(cfg Config) (int, error) {
	return Sweep(cfg, func([]int64) error { return nil })
}

// Vectors materializes the release vectors Sweep would enumerate for cfg,
// in enumeration order. Drivers that run the same vector under several
// scheduling policies (divergence tests, parallel harnesses) enumerate
// once and iterate, instead of re-deriving the recursion per policy.
func Vectors(cfg Config) ([][]int64, error) {
	var out [][]int64
	if _, err := Sweep(cfg, func(rel []int64) error {
		out = append(out, append([]int64(nil), rel...))
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Sweep runs the scenario for every release vector permitted by cfg and
// returns the number of schedules explored. It stops at the first failure
// unless cfg.KeepGoing is set, in which case it explores the whole space
// and reports every failing vector as a Failures error. Sweep never prunes
// (Config.Prune is ignored); use SweepPruned for that.
func Sweep(cfg Config, s Scenario) (int, error) {
	cfg.Prune = false
	info, err := SweepPruned(cfg, func(rel []int64) (RunInfo, error) {
		return RunInfo{QuiescentFrom: cfg.Adversaries}, s(rel)
	})
	return info.Explored, err
}

// checkSpace validates cfg and bounds the unconstrained space.
func checkSpace(cfg *Config) error {
	if cfg.Adversaries < 1 {
		return fmt.Errorf("explore: need at least one adversary")
	}
	if cfg.Max < 1 {
		return fmt.Errorf("explore: Max must be positive")
	}
	if cfg.Stride < 1 {
		cfg.Stride = 1
	}
	if cfg.MaxFailures < 1 {
		cfg.MaxFailures = DefaultMaxFailures
	}
	if cfg.Gap == 0 {
		// Unconstrained points multiply: refuse absurd spaces before the
		// first simulation runs. The product check is overflow-safe — it
		// divides instead of multiplying past the cap.
		per := (cfg.Max + cfg.Stride - 1) / cfg.Stride
		total := int64(1)
		for i := 0; i < cfg.Adversaries; i++ {
			if total > UnconstrainedSpaceCap/per {
				return fmt.Errorf(
					"explore: Gap=0 spans (Max %d / Stride %d)^%d adversaries > the %d-schedule cap; set Gap, raise Stride, or lower Max",
					cfg.Max, cfg.Stride, cfg.Adversaries, int64(UnconstrainedSpaceCap))
			}
			total *= per
		}
	}
	return nil
}

// SweepPruned is Sweep with quiescence-equivalence pruning. The scenario
// additionally reports, per run, the smallest adversary index released at a
// quiescent flush (RunInfo.QuiescentFrom). When cfg.Prune is set and a run
// PASSES with QuiescentFrom = q, the sweep breaks out of every enumeration
// loop at level >= q: the skipped vectors raise only thresholds that were
// already past the quiescent instant, so each of their schedules is the one
// just run, replayed. A failing representative never prunes — every failing
// vector the full enumeration would find is still enumerated, so pruned and
// unpruned sweeps return identical Failures lists. With cfg.Prune unset the
// enumeration is exactly Sweep's, in the same order.
func SweepPruned(cfg Config, s InfoScenario) (SweepInfo, error) {
	var si SweepInfo
	if err := checkSpace(&cfg); err != nil {
		return si, err
	}
	// leafProduct[i] is the number of leaves under one subtree rooted at
	// level i: the per-level loop trip counts are constants of the
	// recursion shape (level 0 spans [0,Max); deeper levels span a
	// Gap-wide window, or [0,Max) again when Gap is 0), so skipped
	// subtrees are counted analytically instead of walked.
	leafProduct := make([]int64, cfg.Adversaries+1)
	leafProduct[cfg.Adversaries] = 1
	for i := cfg.Adversaries - 1; i >= 0; i-- {
		span := cfg.Max
		if cfg.Gap > 0 && i > 0 {
			span = cfg.Gap
		}
		leafProduct[i] = (span + cfg.Stride - 1) / cfg.Stride * leafProduct[i+1]
	}
	vec := make([]int64, cfg.Adversaries)
	var failures Failures
	noPrune := cfg.Adversaries // sentinel: nothing to prune
	var rec func(i int, lo int64) (int, error)
	rec = func(i int, lo int64) (int, error) {
		if i == cfg.Adversaries {
			si.Explored++
			info, err := s(vec)
			if err != nil {
				if !cfg.KeepGoing {
					return noPrune, fmt.Errorf("explore: vector %v: %w", vec, err)
				}
				failures = append(failures, Failure{
					Vector: append([]int64(nil), vec...), Err: err,
				})
				if len(failures) >= cfg.MaxFailures {
					return noPrune, failures
				}
				// Never prune off a failing representative: equivalence
				// would be sound, but enumerating every failing vector
				// keeps pruned and full failure sets identical.
				return noPrune, nil
			}
			if cfg.Prune && info.QuiescentFrom < noPrune {
				return info.QuiescentFrom, nil
			}
			return noPrune, nil
		}
		hi := cfg.Max
		if cfg.Gap > 0 && i > 0 {
			hi = lo + cfg.Gap
		}
		for k := lo; k < hi; k += cfg.Stride {
			vec[i] = k
			next := int64(0)
			if cfg.Gap > 0 {
				next = k + 1
			}
			q, err := rec(i+1, next)
			if err != nil {
				return noPrune, err
			}
			if q <= i {
				// Every remaining value of this loop only raises a
				// threshold that the representative run proved
				// quiescent; their subtrees replay its schedule.
				if rem := (hi - k - 1) / cfg.Stride; rem > 0 {
					si.Pruned += int(rem * leafProduct[i+1])
				}
				return q, nil
			}
		}
		return noPrune, nil
	}
	if _, err := rec(0, 0); err != nil {
		return si, err
	}
	if len(failures) > 0 {
		return si, failures
	}
	return si, nil
}

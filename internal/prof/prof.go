// Package prof wires the standard pprof profilers into the CLI tools
// (wfbench -cpuprofile/-memprofile/-blockprofile, wfcheck likewise), so the
// next simulator hot spot is one `go tool pprof` away. See EXPERIMENTS.md
// "Profiling a run".
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins CPU profiling when cpuPath is non-empty and, when blockPath
// is non-empty, turns on block (contention) profiling — the profile that
// shows where the native backend's goroutines wait on shard gates. It
// returns a stop function that finishes the CPU profile and writes the
// allocation ("allocs") and block profiles to their paths.
//
// The stop function is idempotent (sync.Once), so callers can both defer it
// — covering error returns — and call it explicitly ahead of os.Exit, which
// skips deferred calls. On its own errors Start closes anything it already
// opened before returning, so no profile file leaks on a bad path.
func Start(cpuPath, memPath, blockPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	if blockPath != "" {
		// Rate 1 records every blocking event; these tools run bounded
		// experiments, so completeness beats sampling.
		runtime.SetBlockProfileRate(1)
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				}
			}
			if memPath != "" {
				runtime.GC() // flush pending allocation stats into the profile
				writeProfile("allocs", memPath)
			}
			if blockPath != "" {
				writeProfile("block", blockPath)
				runtime.SetBlockProfileRate(0)
			}
		})
	}, nil
}

// writeProfile dumps one named runtime profile, reporting rather than
// returning errors: profile flushing runs on exit paths where there is
// nothing left to do about a failure but say so.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prof: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "prof: %v\n", err)
	}
}

// Package prof wires the standard pprof profilers into the CLI tools
// (wfbench -cpuprofile/-memprofile, wfcheck likewise), so the next simulator
// hot spot is one `go tool pprof` away. See EXPERIMENTS.md "Profiling a
// run".
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a stop
// function that finishes the CPU profile and, when memPath is non-empty,
// writes an allocation ("allocs") profile. The stop function must run before
// the process exits — call it explicitly ahead of os.Exit, since os.Exit
// skips deferred calls.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			}
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // flush pending allocation stats into the profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "prof: %v\n", err)
		}
	}, nil
}

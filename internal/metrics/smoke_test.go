package metrics_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arena"
	"repro/internal/core/multilist"
	"repro/internal/core/unihash"
	"repro/internal/core/unilist"
	"repro/internal/core/unimwcas"
	"repro/internal/core/uniqueue"
	"repro/internal/core/unistack"
	"repro/internal/sched"
	"repro/internal/shmem"
)

// smokeCase describes one object's randomized-schedule smoke scenario. The
// build function spawns a small adversarial job set; rel() draws seeded
// release points so each seed exercises a different preemption pattern.
type smokeCase struct {
	name  string
	procs int // simulated processors
	build func(t *testing.T, s *sched.Sim, rel func() int64)
}

func smokeCases() []smokeCase {
	return []smokeCase{
		{"unilist", 1, func(t *testing.T, s *sched.Sim, rel func() int64) {
			ar, err := arena.New(s.Mem(), 32, 3)
			if err != nil {
				t.Fatal(err)
			}
			l, err := unilist.New(s.Mem(), ar, 3)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.SeedAscending([]uint64{5, 15}); err != nil {
				t.Fatal(err)
			}
			ar.Freeze()
			s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				l.Insert(e, 10, 1)
				l.Delete(e, 5)
			}})
			s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel(), Body: func(e *sched.Env) {
				l.Insert(e, 7, 2)
			}})
			s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel(), Body: func(e *sched.Env) {
				l.Delete(e, 15)
			}})
		}},
		{"uniqueue", 1, func(t *testing.T, s *sched.Sim, rel func() int64) {
			ar, err := arena.New(s.Mem(), 32, 3)
			if err != nil {
				t.Fatal(err)
			}
			q, err := uniqueue.New(s.Mem(), ar, 3)
			if err != nil {
				t.Fatal(err)
			}
			ar.Freeze()
			s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				q.Enqueue(e, 100)
				q.Enqueue(e, 200)
				q.Dequeue(e)
			}})
			s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel(), Body: func(e *sched.Env) {
				q.Enqueue(e, 300)
				q.Dequeue(e)
			}})
			s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel(), Body: func(e *sched.Env) {
				q.Dequeue(e)
			}})
		}},
		{"unistack", 1, func(t *testing.T, s *sched.Sim, rel func() int64) {
			ar, err := arena.New(s.Mem(), 32, 3)
			if err != nil {
				t.Fatal(err)
			}
			st, err := unistack.New(s.Mem(), ar, 3)
			if err != nil {
				t.Fatal(err)
			}
			ar.Freeze()
			s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				st.Push(e, 100)
				st.Push(e, 200)
				st.Pop(e)
			}})
			s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel(), Body: func(e *sched.Env) {
				st.Push(e, 300)
				st.Pop(e)
			}})
			s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel(), Body: func(e *sched.Env) {
				st.Pop(e)
			}})
		}},
		{"unimwcas", 1, func(t *testing.T, s *sched.Sim, rel func() int64) {
			obj, err := unimwcas.New(s.Mem(), 3, 4)
			if err != nil {
				t.Fatal(err)
			}
			base := s.Mem().MustAlloc("app", 3)
			words := []shmem.Addr{base, base + 1, base + 2}
			for i, v := range []uint32{12, 22, 8} {
				obj.InitWord(words[i], v)
			}
			s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				obj.MWCAS(e, words, []uint32{12, 22, 8}, []uint32{5, 10, 17})
				for _, w := range words {
					obj.Read(e, w)
				}
			}})
			s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel(), Body: func(e *sched.Env) {
				obj.MWCAS(e, words[1:2], []uint32{22}, []uint32{23})
			}})
			s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel(), Body: func(e *sched.Env) {
				obj.MWCAS(e, words[2:3], []uint32{8}, []uint32{56})
			}})
		}},
		{"unihash", 1, func(t *testing.T, s *sched.Sim, rel func() int64) {
			ar, err := arena.New(s.Mem(), 48, 3)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := unihash.New(s.Mem(), ar, 3, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.SeedKeys([]uint64{5, 9}); err != nil {
				t.Fatal(err)
			}
			ar.Freeze()
			s.Spawn(sched.JobSpec{Name: "victim", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
				tb.Insert(e, 13, 1)
				tb.Delete(e, 5)
			}})
			s.Spawn(sched.JobSpec{Name: "adv", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel(), Body: func(e *sched.Env) {
				tb.Insert(e, 17, 2)
				tb.Delete(e, 13)
			}})
			s.Spawn(sched.JobSpec{Name: "adv2", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel(), Body: func(e *sched.Env) {
				tb.Search(e, 9)
				tb.Insert(e, 10, 3)
			}})
		}},
		{"multilist", 2, func(t *testing.T, s *sched.Sim, rel func() int64) {
			ar, err := arena.New(s.Mem(), 64, 4)
			if err != nil {
				t.Fatal(err)
			}
			l, err := multilist.New(s.Mem(), ar, multilist.Config{Processors: 2, Procs: 4})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.SeedAscending([]uint64{5, 15, 25}); err != nil {
				t.Fatal(err)
			}
			ar.Freeze()
			for p := 0; p < 4; p++ {
				p := p
				s.Spawn(sched.JobSpec{
					Name: fmt.Sprintf("w%d", p), CPU: p % 2,
					Prio: sched.Priority(1 + p/2), Slot: p,
					AfterSlices: rel() * int64(p/2), // two base jobs, two released later
					Body: func(e *sched.Env) {
						l.Insert(e, uint64(30+p), uint64(p))
						l.Search(e, 15)
						l.Delete(e, uint64(30+p))
					},
				})
			}
		}},
	}
}

// TestSmokeWaitFreeBounds runs each core object under 8 seeded randomized
// schedules in both granularities and asserts the paper's headline property
// on the resulting run report: every process finishes within a bounded
// number of its own steps plus a bounded charge per interference event.
// The bounds are generous (these are smoke bounds, not the paper's exact
// constants) but finite — a lock-based or starving implementation whose
// victim spins would blow through them.
func TestSmokeWaitFreeBounds(t *testing.T) {
	for _, c := range smokeCases() {
		for _, g := range []sched.Granularity{sched.Fine, sched.Coarse} {
			for seed := int64(1); seed <= 8; seed++ {
				c, g, seed := c, g, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", c.name, g, seed), func(t *testing.T) {
					s := sched.New(sched.Config{
						Processors: c.procs, Seed: seed,
						MemWords: 1 << 15, Granularity: g,
					})
					rng := rand.New(rand.NewSource(seed))
					c.build(t, s, func() int64 { return rng.Int63n(40) })
					if err := s.Run(); err != nil {
						t.Fatalf("run: %v", err)
					}
					r := s.Report(c.name)
					if r.Mem.Steps() == 0 || len(r.Procs) == 0 || r.ElapsedVT == 0 {
						t.Fatalf("degenerate report: %+v", r)
					}
					if err := r.AssertWaitFree(5000, 5000); err != nil {
						t.Errorf("wait-freedom bound violated: %v", err)
					}
				})
			}
		}
	}
}

package metrics

import (
	"encoding/json"
	"testing"
)

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := HistBucket(c.v); got != c.want {
			t.Errorf("HistBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// The last bucket is a catch-all.
	if got := HistBucket(int64(1) << 62); got != HistBuckets-1 {
		t.Errorf("HistBucket(2^62) = %d, want %d", got, HistBuckets-1)
	}
}

func TestHistObserveAddSummary(t *testing.T) {
	var h Hist
	for _, v := range []int64{1, 2, 3, 100, 100, 100, 5000} {
		h.Observe(v)
	}
	if h.Count != 7 {
		t.Fatalf("Count = %d, want 7", h.Count)
	}
	s := h.Summary()
	if s.Count != 7 {
		t.Fatalf("Summary.Count = %d, want 7", s.Count)
	}
	// Min is the lower bound of the first occupied bucket (value 1 →
	// bucket 1, lower bound 1); Max the upper bound of the last (5000 →
	// bucket 13, bound 8191).
	if s.Min != 1 {
		t.Errorf("Min = %d, want 1", s.Min)
	}
	if s.Max != 8191 {
		t.Errorf("Max = %d, want 8191", s.Max)
	}
	// p50 rank = (7-1)*50/100 = 3 → the first 100 sample → bucket bound 127.
	if s.P50 != 127 {
		t.Errorf("P50 = %d, want 127", s.P50)
	}
	// p95 rank = 6*95/100 = 5 → sample 100 again → 127; check p95 >= p50.
	if s.P95 < s.P50 {
		t.Errorf("P95 = %d < P50 = %d", s.P95, s.P50)
	}

	var h2 Hist
	h2.Observe(0)
	h2.Add(&h)
	if h2.Count != 8 {
		t.Fatalf("after Add: Count = %d, want 8", h2.Count)
	}
	if got := h2.Summary().Min; got != 0 {
		t.Errorf("after observing 0: Min = %d, want 0", got)
	}
}

func TestHistQuantileEmpty(t *testing.T) {
	var h Hist
	if h.Quantile(50) != 0 || h.Summary() != (Summary{}) {
		t.Fatal("empty histogram must digest to zeros")
	}
}

// TestReportJSONOmitsNativeFields pins the golden-file contract: a report
// without native-only fields marshals to JSON containing none of their
// keys, so the simulator's byte-compared report goldens cannot change.
func TestReportJSONOmitsNativeFields(t *testing.T) {
	r := Report{Object: "x", Procs: []ProcReport{{ID: 0, Name: "p0"}}}
	r.Finalize()
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"latency_ns", "op_latency_ns", "max_preempt_depth", "cas2_guard_retries"} {
		if containsKey(b, key) {
			t.Errorf("simulator-shaped report JSON contains native-only key %q", key)
		}
	}

	// And when set, they round-trip.
	var h Hist
	h.Observe(42)
	r.OpLatency = &h
	r.CAS2GuardRetries = 3
	r.Procs[0].Latency = &h
	r.Procs[0].MaxPreemptDepth = 2
	b, err = r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.OpLatency == nil || back.OpLatency.Count != 1 || back.Procs[0].MaxPreemptDepth != 2 {
		t.Fatalf("native fields did not round-trip: %s", b)
	}
}

func containsKey(b []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return false
	}
	if _, ok := m[key]; ok {
		return true
	}
	var procs []map[string]json.RawMessage
	if raw, ok := m["procs"]; ok {
		if err := json.Unmarshal(raw, &procs); err == nil {
			for _, p := range procs {
				if _, ok := p[key]; ok {
					return true
				}
			}
		}
	}
	return false
}

package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
		want    Summary
	}{
		{"empty", nil, Summary{}},
		{"single", []int64{7}, Summary{Count: 1, Min: 7, P50: 7, P95: 7, Max: 7}},
		// floor((n-1)·95/100) = 1 for n = 3: small samples pin p95 below
		// the max, which Max still reports.
		{"unsorted", []int64{9, 1, 5}, Summary{Count: 3, Min: 1, P50: 5, P95: 5, Max: 9}},
		{
			// 1..100: rank(p) = sorted[(n-1)*p/100] = sorted[99*p/100].
			"hundred", seq(1, 100),
			Summary{Count: 100, Min: 1, P50: 50, P95: 95, Max: 100},
		},
	}
	for _, c := range cases {
		if got := Summarize(c.samples); got != c.want {
			t.Errorf("%s: Summarize = %+v, want %+v", c.name, got, c.want)
		}
	}
}

func seq(lo, hi int64) []int64 {
	var s []int64
	for v := lo; v <= hi; v++ {
		s = append(s, v)
	}
	return s
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []int64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Summarize mutated its input: %v", in)
	}
}

func TestOpCountsStepsAndAdd(t *testing.T) {
	a := OpCounts{Loads: 10, Stores: 5, CAS: 3, CASFail: 1, CCAS: 2, CCASFail: 2}
	if got := a.Steps(); got != 20 {
		t.Fatalf("Steps = %d, want 20 (failed attempts are still steps)", got)
	}
	if got := a.Fails(); got != 3 {
		t.Fatalf("Fails = %d, want 3", got)
	}
	b := OpCounts{Loads: 1, CAS2: 4, CAS2Fail: 2}
	a.Add(b)
	if a.Loads != 11 || a.CAS2 != 4 || a.CAS2Fail != 2 {
		t.Fatalf("Add merged wrong: %+v", a)
	}
}

// synthetic builds a minimal two-process report by hand: a victim that
// executed the given steps under the given interference, plus a quiet
// bystander.
func synthetic(steps uint64, interference int) *Report {
	r := &Report{
		Object:      "synthetic",
		Seed:        42,
		Processors:  1,
		Granularity: "fine",
		Procs: []ProcReport{
			{ID: 0, Name: "victim", Mem: OpCounts{Loads: steps}, Interference: interference,
				Preemptions: interference, ResponseVT: int64(steps)},
			{ID: 1, Name: "quiet", Mem: OpCounts{Loads: 3}, ResponseVT: 3},
		},
	}
	r.Finalize()
	return r
}

func TestAssertWaitFreePasses(t *testing.T) {
	// 100 own steps + 2 interferers × 50: exactly at the bound.
	r := synthetic(200, 2)
	if err := r.AssertWaitFree(100, 50); err != nil {
		t.Fatalf("bound met but AssertWaitFree failed: %v", err)
	}
}

func TestAssertWaitFreeFailsLoudly(t *testing.T) {
	// A synthetic step-count blowup: no interference can excuse 10k steps.
	r := synthetic(10_000, 1)
	err := r.AssertWaitFree(100, 50)
	if err == nil {
		t.Fatal("AssertWaitFree accepted a 10000-step process against a 150-step bound")
	}
	for _, want := range []string{"victim", "10000", "seed 42", "1 preemptions"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("failure message %q lacks %q (must be a reproducer)", err, want)
		}
	}
	if strings.Contains(err.Error(), "quiet") {
		t.Errorf("failure message names the innocent process: %q", err)
	}
}

func TestAssertWaitFreeRejectsNegativeBounds(t *testing.T) {
	if err := synthetic(1, 0).AssertWaitFree(-1, 0); err == nil {
		t.Fatal("negative maxOwnSteps accepted")
	}
}

func TestFinalizeAggregates(t *testing.T) {
	r := &Report{Procs: []ProcReport{
		{ResponseVT: 10, DispatchLatencyVT: 1, HelpGiven: 2, HelpReceived: 0, Preemptions: 1},
		{ResponseVT: 30, DispatchLatencyVT: 3, HelpGiven: 0, HelpReceived: 2, Preemptions: 4},
	}}
	r.Finalize()
	if r.HelpGiven != 2 || r.HelpReceived != 2 || r.Preemptions != 5 {
		t.Fatalf("totals wrong: %+v", r)
	}
	if r.Response.Min != 10 || r.Response.Max != 30 || r.Response.Count != 2 {
		t.Fatalf("response summary wrong: %+v", r.Response)
	}
	if r.DispatchLatency.Max != 3 {
		t.Fatalf("dispatch latency summary wrong: %+v", r.DispatchLatency)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := synthetic(200, 2)
	r.SyncCost = 8
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// The documented schema keys (EXPERIMENTS.md "Run reports") must be
	// present — external tooling diffs these files across commits.
	for _, key := range []string{
		`"object"`, `"seed"`, `"processors"`, `"granularity"`, `"sync_cost"`,
		`"elapsed_vt"`, `"mem_total"`, `"procs"`, `"response_vt"`,
		`"cas_fail"`, `"help_given"`, `"help_received"`, `"preemptions"`,
		`"p50"`, `"p95"`, `"interference"`,
	} {
		if !strings.Contains(string(b), key) {
			t.Errorf("JSON lacks schema key %s", key)
		}
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Procs[0].Mem.Loads != 200 || back.Seed != 42 || back.SyncCost != 8 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestWriteText(t *testing.T) {
	var sb strings.Builder
	r := synthetic(200, 2)
	r.Procs[0].OpTime = Summarize([]int64{5, 7, 9})
	r.OpTime = r.Procs[0].OpTime
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"synthetic", "victim", "quiet", "p50 7", "response"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report lacks %q:\n%s", want, out)
		}
	}
}

// Integration tests for the run-report pipeline: real schedules through
// internal/sched, asserted against exact metric values. External test
// package so the tests exercise only the public surface.
package metrics_test

import (
	"testing"

	"repro/internal/arena"
	"repro/internal/core/unilist"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// fig2 builds the paper's Figure 2 incremental-helping schedule: p announces
// an insert, q preempts p mid-operation and helps it, r preempts q inside
// Help(p), finishes p's operation, runs its own, then q and p unwind. The
// release points match TestFigure2Trace in internal/core/unilist.
func fig2(t *testing.T) *sched.Sim {
	t.Helper()
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 15, EnableTrace: true})
	ar, err := arena.New(s.Mem(), 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	l, err := unilist.New(s.Mem(), ar, 3)
	if err != nil {
		t.Fatal(err)
	}
	ar.Freeze()
	s.Spawn(sched.JobSpec{Name: "p", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: func(e *sched.Env) {
		l.Insert(e, 10, 1)
	}})
	s.Spawn(sched.JobSpec{Name: "q", CPU: 0, Prio: 2, Slot: 1, AfterSlices: 15, Body: func(e *sched.Env) {
		l.Insert(e, 20, 2)
	}})
	s.Spawn(sched.JobSpec{Name: "r", CPU: 0, Prio: 3, Slot: 2, AfterSlices: 28, Body: func(e *sched.Env) {
		l.Insert(e, 30, 3)
	}})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFigure2HelpAccounting is the metrics-backed regression of Figure 2:
// the report must show exactly one help given by q, one by r, none by p,
// and both received by p's slot — cross-checked against the semantic trace.
func TestFigure2HelpAccounting(t *testing.T) {
	s := fig2(t)
	r := s.Report("unilist-fig2")

	byName := map[string]metrics.ProcReport{}
	for _, pr := range r.Procs {
		byName[pr.Name] = pr
	}
	p, q, rr := byName["p"], byName["q"], byName["r"]

	if p.HelpGiven != 0 || q.HelpGiven != 1 || rr.HelpGiven != 1 {
		t.Errorf("help given p/q/r = %d/%d/%d, want 0/1/1",
			p.HelpGiven, q.HelpGiven, rr.HelpGiven)
	}
	if p.HelpReceived != 2 || q.HelpReceived != 0 || rr.HelpReceived != 0 {
		t.Errorf("help received p/q/r = %d/%d/%d, want 2/0/0",
			p.HelpReceived, q.HelpReceived, rr.HelpReceived)
	}
	if r.HelpGiven != 2 || r.HelpReceived != 2 {
		t.Errorf("report totals given/received = %d/%d, want 2/2", r.HelpGiven, r.HelpReceived)
	}

	// Figure 2's preemption chain: q preempts p, r preempts q.
	if p.Preemptions != 1 || q.Preemptions != 1 || rr.Preemptions != 0 {
		t.Errorf("preemptions p/q/r = %d/%d/%d, want 1/1/0",
			p.Preemptions, q.Preemptions, rr.Preemptions)
	}

	// Cross-check the report's counters against the semantic trace: the
	// helpers of slot 0 are exactly q and r, once each.
	notes := s.Trace().NoteCounts("help p=0")
	if len(notes) != 2 || notes["q"] != 1 || notes["r"] != 1 {
		t.Errorf("trace helpers of p = %v, want q:1 r:1", notes)
	}
	for name, pr := range byName {
		wantFromTrace := 0
		for helper, n := range notes {
			if helper == name {
				wantFromTrace += n
			}
		}
		if pr.HelpGiven != wantFromTrace {
			t.Errorf("%s: report says %d helps given, trace says %d",
				name, pr.HelpGiven, wantFromTrace)
		}
	}

	// The run is tiny; a generous wait-freedom bound must hold.
	if err := r.AssertWaitFree(500, 500); err != nil {
		t.Errorf("fig2 run violates generous wait-freedom bound: %v", err)
	}
}

// TestFigure2ReportDeterminism: two identical runs must produce identical
// reports — the property that makes BENCH_*.json diffable across commits.
func TestFigure2ReportDeterminism(t *testing.T) {
	a, err := fig2(t).Report("unilist-fig2").JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fig2(t).Report("unilist-fig2").JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("identical runs produced different reports:\n%s\n---\n%s", a, b)
	}
}

// Package metrics is the run-report subsystem: a zero-dependency,
// deterministic record of what a simulation run actually did — memory steps,
// CAS failures, preemptions, helping, and virtual-time response figures.
//
// The paper's central claim is quantitative: every operation completes
// within a bounded number of its own steps plus bounded interference from
// higher-priority processes (via helping). The rest of this repository can
// prove an execution linearizable; this package makes the *cost* of the
// execution observable, so the bound itself becomes a testable assertion
// (Report.AssertWaitFree) and a perf trajectory (the BENCH_*.json files
// written by cmd/wfbench) rather than prose.
//
// Layering: metrics is a leaf package — internal/shmem and internal/sched
// import it to fill in counters, and internal/sched builds the final Report
// (sched.Sim.Report), so no import cycles arise. Everything here is plain
// data plus arithmetic; collection never charges simulated time, so
// instrumented runs execute schedules identical to uninstrumented ones.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
)

// OpCounts tallies the shared-memory operations executed by one simulated
// process (or by setup code, or by a whole run). CAS/CAS2/CCAS count
// attempts; the *Fail fields count the subset that did not swap.
type OpCounts struct {
	Loads    uint64 `json:"loads"`
	Stores   uint64 `json:"stores"`
	CAS      uint64 `json:"cas"`
	CASFail  uint64 `json:"cas_fail"`
	CAS2     uint64 `json:"cas2"`
	CAS2Fail uint64 `json:"cas2_fail"`
	CCAS     uint64 `json:"ccas"`
	CCASFail uint64 `json:"ccas_fail"`
}

// Steps returns the total memory operations (every load, store and
// synchronization attempt counts as one step, exactly as shmem charges
// them).
func (c OpCounts) Steps() uint64 {
	return c.Loads + c.Stores + c.CAS + c.CAS2 + c.CCAS
}

// Fails returns the total failed synchronization attempts.
func (c OpCounts) Fails() uint64 { return c.CASFail + c.CAS2Fail + c.CCASFail }

// Add accumulates o into c.
func (c *OpCounts) Add(o OpCounts) {
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.CAS += o.CAS
	c.CASFail += o.CASFail
	c.CAS2 += o.CAS2
	c.CAS2Fail += o.CAS2Fail
	c.CCAS += o.CCAS
	c.CCASFail += o.CCASFail
}

// Summary is a min/p50/p95/max digest of a sample set of virtual times.
type Summary struct {
	Count int   `json:"count"`
	Min   int64 `json:"min"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	Max   int64 `json:"max"`
}

// Summarize digests samples. Percentiles use the deterministic
// floor((n-1)·p/100) rank on the sorted samples, so equal inputs always
// produce equal summaries. An empty sample set yields the zero Summary.
func Summarize(samples []int64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(pct int) int64 { return s[(len(s)-1)*pct/100] }
	return Summary{
		Count: len(s),
		Min:   s[0],
		P50:   rank(50),
		P95:   rank(95),
		Max:   s[len(s)-1],
	}
}

// String renders the summary compactly for terminal reports
// ("n=12 min=34 p50=40 p95=180 max=210"); the zero Summary renders "n=0".
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%d p50=%d p95=%d max=%d", s.Count, s.Min, s.P50, s.P95, s.Max)
}

// HistBuckets is the fixed bucket count of Hist. Bucket 0 counts
// non-positive samples; bucket i (i >= 1) counts samples v with
// 2^(i-1) <= v < 2^i; the last bucket additionally catches everything
// larger. 48 buckets cover [1ns, ~3.3 days) when samples are
// nanoseconds, which is every latency a run can plausibly produce.
const HistBuckets = 48

// Hist is a fixed-bucket logarithmic (power-of-two) histogram. It is the
// report-side shape of the native backend's lock-free latency histograms:
// collection happens in per-goroutine atomic bucket blocks
// (internal/native) and is drained into this plain-data form post-run.
// The fixed bucket layout is what makes the hot path lock-free and
// allocation-free — observing a sample is one atomic increment, never a
// resize.
type Hist struct {
	Count   uint64              `json:"count"`
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// HistBucket returns the bucket index for a sample value.
func HistBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// histBound returns the inclusive upper bound of bucket i (the value
// reported for samples that landed in it).
func histBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	h.Buckets[HistBucket(v)]++
	h.Count++
}

// Add accumulates o into h.
func (h *Hist) Add(o *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
}

// Quantile returns the upper bound of the bucket holding the pct-th
// percentile sample (the same floor((n-1)·p/100) rank Summarize uses), so
// the figure is exact to within one power of two. An empty histogram
// returns 0.
func (h *Hist) Quantile(pct int) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := (h.Count - 1) * uint64(pct) / 100
	var cum uint64
	for i, b := range h.Buckets {
		cum += b
		if b > 0 && cum > rank {
			return histBound(i)
		}
	}
	return histBound(HistBuckets - 1)
}

// Summary digests the histogram into the min/p50/p95/max shape the rest of
// the report uses. Figures are bucket upper bounds (exact to within one
// power of two); Min is the lower bound of the first occupied bucket.
func (h *Hist) Summary() Summary {
	if h.Count == 0 {
		return Summary{}
	}
	s := Summary{Count: int(h.Count), P50: h.Quantile(50), P95: h.Quantile(95)}
	for i, b := range h.Buckets {
		if b == 0 {
			continue
		}
		s.Max = histBound(i)
		if s.Min == 0 && s.Max != 0 {
			s.Min = histBound(i-1) + 1
		}
	}
	if h.Buckets[0] > 0 {
		s.Min = 0
	}
	return s
}

// ProcReport is the per-process slice of a Report.
type ProcReport struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	CPU  int    `json:"cpu"`
	Prio int    `json:"prio"`
	Slot int    `json:"slot"`

	// ReleasedVT/StartedVT/CompletedVT are virtual times on the process's
	// processor. DispatchLatencyVT is Started-Released (time from arrival
	// to first dispatch); ResponseVT is Completed-Released.
	ReleasedVT        int64 `json:"released_vt"`
	StartedVT         int64 `json:"started_vt"`
	CompletedVT       int64 `json:"completed_vt"`
	DispatchLatencyVT int64 `json:"dispatch_latency_vt"`
	ResponseVT        int64 `json:"response_vt"`

	// Slices is the number of scheduler slices the process executed;
	// Dispatches how many times it was placed on its processor;
	// Preemptions how many times a higher-priority arrival displaced it.
	Slices      uint64 `json:"slices"`
	Dispatches  int    `json:"dispatches"`
	Preemptions int    `json:"preemptions"`

	// Mem tallies the process's shared-memory operations.
	Mem OpCounts `json:"mem"`

	// HelpGiven counts help invocations this process performed on another
	// process's announced operation; HelpReceived counts help invocations
	// other processes performed on operations announced under this
	// process's slot.
	HelpGiven    int `json:"help_given"`
	HelpReceived int `json:"help_received"`

	// Interference is the report-builder's count of interference sources
	// for this process: its preemptions plus the number of other
	// processes running on different processors. AssertWaitFree scales
	// its per-interferer allowance by this figure.
	Interference int `json:"interference"`

	// OpTime digests the per-operation response times the process
	// recorded via Env.RecordOp (empty when the workload records none).
	OpTime Summary `json:"op_time_vt"`

	// Latency is the native backend's per-goroutine wall-clock latency
	// histogram (nanoseconds per abstract op, Begin to End). It is nil on
	// simulator reports, so the simulator's golden JSON is unchanged.
	Latency *Hist `json:"latency_ns,omitempty"`

	// MaxPreemptDepth is the deepest preemption stack observed under the
	// process on its native shard (zero on simulator reports).
	MaxPreemptDepth int `json:"max_preempt_depth,omitempty"`

	// CAS2GuardRetries counts native CAS2 guard-word acquisition retries —
	// the spin iterations the software-emulated double-word CAS spent
	// waiting for the guard (zero on simulator reports, where CAS2 is a
	// primitive).
	CAS2GuardRetries uint64 `json:"cas2_guard_retries,omitempty"`
}

// Report is the aggregate run report: per-process detail plus object-level
// summaries. It is pure data — construct it via sched.Sim.Report, or
// directly in tests.
type Report struct {
	// Object names the data structure (or scenario) under measurement.
	Object string `json:"object"`
	// Seed, Processors, Granularity and SyncCost identify the schedule:
	// together with the job set they are a complete reproducer.
	Seed        int64  `json:"seed"`
	Processors  int    `json:"processors"`
	Granularity string `json:"granularity"`
	SyncCost    int64  `json:"sync_cost"`

	// Policy and Arrival name the scheduling discipline and arrival trace
	// the run used, when they differ from the defaults (strict priority;
	// the driver's built-in release points). Empty means default and is
	// omitted from JSON, so the golden report files stay byte-stable.
	Policy  string `json:"policy,omitempty"`
	Arrival string `json:"arrival,omitempty"`

	// ElapsedVT is the makespan; Slices the global slice count.
	ElapsedVT int64  `json:"elapsed_vt"`
	Slices    uint64 `json:"slices"`

	// Mem is the whole run's operation tally (setup included).
	Mem OpCounts `json:"mem_total"`

	Procs []ProcReport `json:"procs"`

	// Response and DispatchLatency digest the per-process figures;
	// OpTime digests every Env.RecordOp sample of the run.
	Response        Summary `json:"response_vt"`
	DispatchLatency Summary `json:"dispatch_latency_vt"`
	OpTime          Summary `json:"op_time_vt"`

	// Object-level totals.
	HelpGiven    int `json:"help_given_total"`
	HelpReceived int `json:"help_received_total"`
	Preemptions  int `json:"preemptions_total"`

	// OpLatency is the merged per-goroutine latency histogram of a native
	// run (nil on simulator reports); CAS2GuardRetries the run's total
	// guard-word retries. Both are omitted from simulator JSON so the
	// golden report files are byte-stable.
	OpLatency        *Hist  `json:"op_latency_ns,omitempty"`
	CAS2GuardRetries uint64 `json:"cas2_guard_retries_total,omitempty"`
}

// Finalize recomputes the object-level summaries and totals from Procs.
// Builders call it after filling in the per-process slices; tests that
// construct Reports by hand may call it too.
func (r *Report) Finalize() {
	responses := make([]int64, 0, len(r.Procs))
	latencies := make([]int64, 0, len(r.Procs))
	r.HelpGiven, r.HelpReceived, r.Preemptions = 0, 0, 0
	for i := range r.Procs {
		p := &r.Procs[i]
		responses = append(responses, p.ResponseVT)
		latencies = append(latencies, p.DispatchLatencyVT)
		r.HelpGiven += p.HelpGiven
		r.HelpReceived += p.HelpReceived
		r.Preemptions += p.Preemptions
	}
	r.Response = Summarize(responses)
	r.DispatchLatency = Summarize(latencies)
}

// JSON renders the report as indented JSON (the BENCH_*.json schema; see
// EXPERIMENTS.md "Run reports").
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteJSON writes the JSON rendering followed by a newline.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText pretty-prints the report for terminals (cmd/wfsim -report).
func (r *Report) WriteText(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "run report: %s (seed %d, P=%d, %s, synccost %d)\n",
		r.Object, r.Seed, r.Processors, r.Granularity, r.SyncCost)
	fmt.Fprintf(&sb, "  makespan %d vt over %d slices; %d preemptions, %d helps given, %d received\n",
		r.ElapsedVT, r.Slices, r.Preemptions, r.HelpGiven, r.HelpReceived)
	fmt.Fprintf(&sb, "  memory: %d steps (%d loads, %d stores, %d cas [%d failed], %d cas2 [%d failed], %d ccas [%d failed])\n",
		r.Mem.Steps(), r.Mem.Loads, r.Mem.Stores, r.Mem.CAS, r.Mem.CASFail,
		r.Mem.CAS2, r.Mem.CAS2Fail, r.Mem.CCAS, r.Mem.CCASFail)
	fmt.Fprintf(&sb, "  response vt: min %d p50 %d p95 %d max %d\n",
		r.Response.Min, r.Response.P50, r.Response.P95, r.Response.Max)
	if r.OpTime.Count > 0 {
		fmt.Fprintf(&sb, "  per-op vt (%d ops): min %d p50 %d p95 %d max %d\n",
			r.OpTime.Count, r.OpTime.Min, r.OpTime.P50, r.OpTime.P95, r.OpTime.Max)
	}
	fmt.Fprintf(&sb, "  %-10s %-4s %-5s %-5s %8s %7s %8s %6s %6s %6s %6s %9s\n",
		"proc", "cpu", "prio", "slot", "steps", "casfail", "slices", "prempt", "hgive", "hrecv", "disp", "response")
	for _, p := range r.Procs {
		fmt.Fprintf(&sb, "  %-10s %-4d %-5d %-5d %8d %7d %8d %6d %6d %6d %6d %9d\n",
			p.Name, p.CPU, p.Prio, p.Slot, p.Mem.Steps(), p.Mem.Fails(),
			p.Slices, p.Preemptions, p.HelpGiven, p.HelpReceived,
			p.DispatchLatencyVT, p.ResponseVT)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Throughput converts an operation count over an elapsed duration into
// ops/sec. The elapsed figure is in nanoseconds for native (wall-clock)
// runs; simulator callers pass virtual-time units and read the result as
// ops per 10^9 vt units — the shared scale both backends' BENCH entries
// report. Non-positive elapsed yields 0 rather than Inf, so a degenerate
// run stays JSON-encodable.
func Throughput(ops int, elapsedNs int64) float64 {
	if elapsedNs <= 0 || ops <= 0 {
		return 0
	}
	return float64(ops) / (float64(elapsedNs) / 1e9)
}

// AssertWaitFree checks the paper's bound shape on every process: a
// process's executed memory steps must not exceed maxOwnSteps (the
// interference-free cost of its whole body) plus perInterferer steps for
// each unit of interference it suffered (preemptions by higher-priority
// arrivals, plus processes concurrently active on other processors — each
// of which can force at most a bounded amount of helping work onto the
// process). A violation means an operation's step count grew with
// something other than interference — a retry loop, a livelock, a helping
// bug — and the returned error carries the offending process's counts and
// the run's (seed, processors, granularity) identity, which together with
// the job set reproduce the schedule exactly.
func (r *Report) AssertWaitFree(maxOwnSteps, perInterferer int) error {
	if maxOwnSteps < 0 || perInterferer < 0 {
		return fmt.Errorf("metrics: negative bound (maxOwnSteps=%d perInterferer=%d)", maxOwnSteps, perInterferer)
	}
	var viol []string
	for _, p := range r.Procs {
		steps := p.Mem.Steps()
		bound := uint64(maxOwnSteps) + uint64(perInterferer)*uint64(p.Interference)
		if steps > bound {
			viol = append(viol, fmt.Sprintf(
				"process %q (id %d, cpu %d, prio %d): %d steps > bound %d (= %d own + %d × %d interference; %d preemptions, %d helps given)",
				p.Name, p.ID, p.CPU, p.Prio, steps, bound,
				maxOwnSteps, perInterferer, p.Interference, p.Preemptions, p.HelpGiven))
		}
	}
	if viol == nil {
		return nil
	}
	return fmt.Errorf("metrics: wait-freedom bound violated on %s (seed %d, P=%d, %s):\n  %s",
		r.Object, r.Seed, r.Processors, r.Granularity, strings.Join(viol, "\n  "))
}

package cover

import "repro/internal/sched"

// SimSig computes a completed run's behavioral signature directly from the
// simulator, folding exactly the fields ReportSig folds and in the same
// order, so SimSig(s, object, arrival) == ReportSig(r) for the report r =
// s.Report(object) with r.Arrival = arrival. Sweeps call it instead of
// building a full metrics.Report per schedule: the report's histograms,
// interference scan and summary finalization are pure allocation overhead
// when all the caller wants is the 64-bit signature.
//
// ReportSigMatchesSimSig (the cover tests) pins the field-for-field
// agreement; a field added to one without the other fails there.
func SimSig(s *sched.Sim, object, arrival string) uint64 {
	h := NewHasher()
	h.String(object)
	h.String(s.PolicyLabel()) // empty on the default policy, like Report
	h.String(arrival)
	h.Word(uint64(s.Processors()))
	h.Word(s.Slices())
	h.Word(uint64(s.Elapsed()))
	mem := s.Mem()
	for _, p := range s.Procs() {
		c := mem.ProcOpCounts(p.ID())
		h.Word(uint64(p.Slot()))
		h.Word(c.Steps())
		h.Word(c.Fails())
		h.Word(p.Slices)
		h.Word(uint64(p.Dispatches))
		h.Word(uint64(p.Preemptions))
		h.Word(uint64(p.HelpGiven()))
		h.Word(uint64(s.HelpReceived(p.Slot())))
	}
	return h.Sum()
}

package cover

import (
	"testing"

	"repro/internal/metrics"
)

// TestReportSigKeyedByPolicyAndArrival: the behavioral signature folds the
// policy and arrival-trace names, so sweeps under different disciplines (or
// release shapes) never conflate their coverage — while the empty defaults
// fold nothing, keeping every pre-policy signature unchanged.
func TestReportSigKeyedByPolicyAndArrival(t *testing.T) {
	base := func() *metrics.Report {
		return &metrics.Report{Object: "uniqueue", Processors: 1, Slices: 40, ElapsedVT: 400}
	}
	def := ReportSig(base())
	if def != ReportSig(base()) {
		t.Fatalf("ReportSig not deterministic on identical reports")
	}
	pol := base()
	pol.Policy = "fcfs"
	arr := base()
	arr.Arrival = "bursty"
	both := base()
	both.Policy = "fcfs"
	both.Arrival = "bursty"
	sigs := map[uint64]string{def: "default"}
	for _, c := range []struct {
		name string
		r    *metrics.Report
	}{{"policy", pol}, {"arrival", arr}, {"both", both}} {
		s := ReportSig(c.r)
		if prev, dup := sigs[s]; dup {
			t.Errorf("report variant %q collides with %q (sig %016x)", c.name, prev, s)
		}
		sigs[s] = c.name
	}
}

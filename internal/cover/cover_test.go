package cover

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestHasherDeterministicAndSensitive(t *testing.T) {
	h1 := NewHasher()
	h1.String("unilist")
	h1.Word(42)
	h2 := NewHasher()
	h2.String("unilist")
	h2.Word(42)
	if h1.Sum() != h2.Sum() {
		t.Fatal("identical inputs hashed differently")
	}
	h3 := NewHasher()
	h3.String("unilist")
	h3.Word(43)
	if h1.Sum() == h3.Sum() {
		t.Fatal("distinct inputs collided (FNV fold broken)")
	}
	// Word folds all eight bytes, not just the low ones.
	a, b := NewHasher(), NewHasher()
	a.Word(1 << 56)
	b.Word(2 << 56)
	if a.Sum() == b.Sum() {
		t.Fatal("high bytes of Word are not folded")
	}
}

func TestReportSigBehavioralEquivalence(t *testing.T) {
	mk := func(steps uint64, preempts int) *metrics.Report {
		return &metrics.Report{
			Object: "x", Processors: 1, Slices: 10, ElapsedVT: 100,
			Procs: []metrics.ProcReport{
				{Slot: 0, Mem: metrics.OpCounts{Loads: steps}, Preemptions: preempts},
			},
		}
	}
	if ReportSig(mk(5, 1)) != ReportSig(mk(5, 1)) {
		t.Fatal("equal behavior produced different signatures")
	}
	if ReportSig(mk(5, 1)) == ReportSig(mk(5, 2)) {
		t.Fatal("different preemption counts collided")
	}
	if ReportSig(mk(5, 1)) == ReportSig(mk(6, 1)) {
		t.Fatal("different step counts collided")
	}
	// Wall-clock-only fields must not affect the signature.
	r := mk(5, 1)
	var h metrics.Hist
	h.Observe(123)
	r.OpLatency = &h
	r.Procs[0].Latency = &h
	if ReportSig(r) != ReportSig(mk(5, 1)) {
		t.Fatal("wall-clock histogram fields leaked into the signature")
	}
}

func TestAccumulatorStatsAndCurve(t *testing.T) {
	a := NewAccumulator()
	// 10 schedules, 3 distinct behaviors.
	for i := 0; i < 10; i++ {
		a.Add(uint64(i % 3))
	}
	s := a.Stats()
	if s.Schedules != 10 || s.Distinct != 3 {
		t.Fatalf("Stats = %+v, want 10 schedules / 3 distinct", s)
	}
	if s.Coverage < 0.29 || s.Coverage > 0.31 {
		t.Fatalf("Coverage = %v, want 0.3", s.Coverage)
	}
	// Curve samples at 1, 2, 4, 8 plus the final 10.
	want := []Point{{1, 1}, {2, 2}, {4, 3}, {8, 3}, {10, 3}}
	if len(s.Saturation) != len(want) {
		t.Fatalf("curve = %v, want %v", s.Saturation, want)
	}
	for i, p := range want {
		if s.Saturation[i] != p {
			t.Fatalf("curve[%d] = %v, want %v", i, s.Saturation[i], p)
		}
	}
	// Folding the same sequence again yields identical stats (the
	// determinism the parallel-merge contract relies on).
	b := NewAccumulator()
	for i := 0; i < 10; i++ {
		b.Add(uint64(i % 3))
	}
	sb := b.Stats()
	if sb.Schedules != s.Schedules || sb.Distinct != s.Distinct || len(sb.Saturation) != len(s.Saturation) {
		t.Fatal("same fold order produced different stats")
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	s := NewAccumulator().Stats()
	if s.Schedules != 0 || s.Distinct != 0 || s.Coverage != 0 || len(s.Saturation) != 0 {
		t.Fatalf("empty accumulator Stats = %+v, want zeros", s)
	}
}

func TestMeterNilSafe(t *testing.T) {
	var m *Meter
	m.Note(1) // must not panic
	m.Done()
	m.Finish()
}

func TestMeterSnapshots(t *testing.T) {
	var sb strings.Builder
	m := NewMeter(&sb, "sweep", 4, time.Nanosecond)
	for i := 0; i < 4; i++ {
		m.Note(uint64(i % 2))
		m.Done()
	}
	out := sb.String()
	if !strings.Contains(out, "sweep: 4/4 (100.0%)") {
		t.Fatalf("final snapshot missing completion: %q", out)
	}
	if !strings.Contains(out, "coverage 2/4 distinct") {
		t.Fatalf("snapshot missing live coverage: %q", out)
	}
}

func TestSortedSigs(t *testing.T) {
	a := NewAccumulator()
	for _, s := range []uint64{9, 3, 9, 7} {
		a.Add(s)
	}
	got := a.SortedSigs()
	want := []uint64{3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("SortedSigs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedSigs = %v, want %v", got, want)
		}
	}
}

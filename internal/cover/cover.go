// Package cover measures schedule-space coverage: how many *behaviorally
// distinct* executions a sweep or randomized-adversary campaign actually
// explored, as opposed to how many schedules it ran.
//
// The ROADMAP's million-schedule question ("what fraction of the schedule
// space do the sweeps cover?") is unanswerable by raw run counts: two
// release vectors that produce the same interleaving teach nothing new.
// This package gives each executed schedule a signature — a 64-bit FNV-1a
// hash of its observable scheduling behavior (per-process step counts,
// slices, preemptions, helps for sweep runs; the invoke/return
// interleaving shape for adversary histories) — and folds signatures into
// an Accumulator that reports distinct counts and a saturation curve
// (distinct signatures after 1, 2, 4, ... schedules). A flattening curve
// is the evidence that more schedules are revisiting known behavior.
//
// Determinism contract: Accumulator folding is order-sensitive only in
// the curve (the distinct total is order-free), so drivers that run
// schedules in parallel collect signatures per task and fold them
// post-merge in input order (harness.Map's ordered results), keeping
// coverage output byte-identical to a serial run at any worker count.
package cover

import (
	"sort"

	"repro/internal/metrics"
)

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hasher accumulates a 64-bit FNV-1a signature word by word. The zero
// value is NOT ready; use NewHasher.
type Hasher uint64

// NewHasher returns a Hasher at the FNV offset basis.
func NewHasher() Hasher { return fnvOffset }

// Word folds one 64-bit value, byte by byte (little-endian).
func (h *Hasher) Word(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime
		v >>= 8
	}
	*h = Hasher(x)
}

// String folds a string.
func (h *Hasher) String(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime
	}
	*h = Hasher(x)
}

// Sum returns the signature.
func (h Hasher) Sum() uint64 { return uint64(h) }

// ReportSig signs a run's scheduling behavior from its metrics.Report:
// the object identity, the global slice count and makespan, and each
// process's step/fail/slice/dispatch/preemption/help figures. Two
// schedules hash equal exactly when every one of those observables agrees
// — the behavioral equivalence the coverage question is about. Wall-clock
// histogram fields are deliberately excluded, so the signature is
// deterministic on the simulator (virtual time) and stable across hosts.
func ReportSig(r *metrics.Report) uint64 {
	h := NewHasher()
	h.String(r.Object)
	// Signatures are keyed by the scheduling policy and arrival trace, so
	// a sweep under two disciplines never conflates their behaviors. Both
	// fold nothing when empty (the defaults), keeping every pre-policy
	// signature — and the golden coverage outputs — unchanged.
	h.String(r.Policy)
	h.String(r.Arrival)
	h.Word(uint64(r.Processors))
	h.Word(r.Slices)
	h.Word(uint64(r.ElapsedVT))
	for _, p := range r.Procs {
		h.Word(uint64(p.Slot))
		h.Word(p.Mem.Steps())
		h.Word(p.Mem.Fails())
		h.Word(p.Slices)
		h.Word(uint64(p.Dispatches))
		h.Word(uint64(p.Preemptions))
		h.Word(uint64(p.HelpGiven))
		h.Word(uint64(p.HelpReceived))
	}
	return h.Sum()
}

// Point is one saturation-curve sample: the distinct-signature count
// after Schedules folds.
type Point struct {
	Schedules int `json:"schedules"`
	Distinct  int `json:"distinct"`
}

// Accumulator folds schedule signatures into coverage statistics. Not
// safe for concurrent use: parallel drivers fold post-merge (see the
// package comment).
type Accumulator struct {
	seen  map[uint64]struct{}
	total int
	curve []Point
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{seen: make(map[uint64]struct{})}
}

// Add folds one schedule's signature. Curve samples are taken at every
// power-of-two total, so the curve stays logarithmic in campaign size.
func (a *Accumulator) Add(sig uint64) {
	a.seen[sig] = struct{}{}
	a.total++
	if a.total&(a.total-1) == 0 {
		a.curve = append(a.curve, Point{Schedules: a.total, Distinct: len(a.seen)})
	}
}

// Schedules returns the number of signatures folded so far.
func (a *Accumulator) Schedules() int { return a.total }

// Distinct returns the number of distinct signatures seen so far.
func (a *Accumulator) Distinct() int { return len(a.seen) }

// Stats is the JSON-ready coverage summary.
type Stats struct {
	// Schedules is the number of executions; Distinct the number of
	// behaviorally distinct ones; Coverage the ratio (0 when no
	// schedules ran).
	Schedules int     `json:"schedules"`
	Distinct  int     `json:"distinct"`
	Coverage  float64 `json:"coverage"`
	// Saturation is the distinct-count growth curve, sampled at
	// power-of-two schedule totals plus the final total.
	Saturation []Point `json:"saturation,omitempty"`
}

// Stats summarizes the accumulator. The final total is appended to the
// curve when it is not already a sample point, so the curve always ends
// at (Schedules, Distinct).
func (a *Accumulator) Stats() Stats {
	s := Stats{Schedules: a.total, Distinct: len(a.seen)}
	if a.total > 0 {
		s.Coverage = float64(len(a.seen)) / float64(a.total)
	}
	s.Saturation = append(s.Saturation, a.curve...)
	if n := len(s.Saturation); a.total > 0 && (n == 0 || s.Saturation[n-1].Schedules != a.total) {
		s.Saturation = append(s.Saturation, Point{Schedules: a.total, Distinct: len(a.seen)})
	}
	return s
}

// Merge folds every signature of a sorted, deduplicated snapshot into a
// fresh Stats without curve information — used by drivers that only have
// per-shard distinct sets. Provided for completeness; the deterministic
// drivers in this repo fold per-schedule signatures instead.
func Merge(sets ...[]uint64) Stats {
	seen := map[uint64]struct{}{}
	total := 0
	for _, set := range sets {
		for _, sig := range set {
			seen[sig] = struct{}{}
			total++
		}
	}
	s := Stats{Schedules: total, Distinct: len(seen)}
	if total > 0 {
		s.Coverage = float64(len(seen)) / float64(total)
	}
	return s
}

// SortedSigs returns the accumulator's distinct signatures in ascending
// order (a deterministic dump for tests and debugging).
func (a *Accumulator) SortedSigs() []uint64 {
	out := make([]uint64, 0, len(a.seen))
	for sig := range a.seen {
		out = append(out, sig)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

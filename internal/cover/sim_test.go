package cover

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/shmem"
)

// simSigRun executes one small two-process run (loads, stores, a CAS, a
// failing CAS, and a help note, so every per-proc counter SimSig folds is
// nonzero somewhere) under the named policy and returns the finished sim.
func simSigRun(t *testing.T, policy string) *sched.Sim {
	t.Helper()
	pol, err := sched.PolicyByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 10, Policy: pol})
	a, b := shmem.Addr(1), shmem.Addr(2)
	s.Spawn(sched.JobSpec{Name: "w0", Prio: 1, Slot: 0, AfterSlices: -1, Cost: 4, Body: func(e *sched.Env) {
		for i := 0; i < 6; i++ {
			v := e.Load(a)
			e.Store(b, v+1)
		}
		e.NoteHelp(1)
	}})
	s.Spawn(sched.JobSpec{Name: "w1", Prio: 5, Slot: 1, AfterSlices: 3, Cost: 2, Body: func(e *sched.Env) {
		e.CAS(a, 0, 7)
		e.CAS(a, 0, 9) // fails: a is now 7
		e.Store(b, 42)
	}})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestReportSigMatchesSimSig pins the field-for-field agreement the SimSig
// doc comment promises: the incremental signature computed straight off the
// simulator equals ReportSig over the fully built metrics.Report, for the
// default and a non-default policy and with and without an arrival label.
// A field added to one fold but not the other fails here.
func TestReportSigMatchesSimSig(t *testing.T) {
	for _, tc := range []struct{ policy, arrival string }{
		{"", ""},
		{"", "bursty"},
		{"fcfs", ""},
		{"reverse-priority", "poisson"},
	} {
		s := simSigRun(t, tc.policy)
		r := s.Report("sigcheck")
		r.Arrival = tc.arrival
		got := SimSig(s, "sigcheck", tc.arrival)
		want := ReportSig(r)
		if got != want {
			t.Errorf("policy=%q arrival=%q: SimSig %016x != ReportSig %016x", tc.policy, tc.arrival, got, want)
		}
	}
	// Sanity: the signature must react to the inputs it is keyed by.
	s := simSigRun(t, "")
	if SimSig(s, "sigcheck", "") == SimSig(s, "other", "") {
		t.Error("SimSig ignores the object name")
	}
	if SimSig(s, "sigcheck", "") == SimSig(s, "sigcheck", "bursty") {
		t.Error("SimSig ignores the arrival label")
	}
}

package cover

// Live progress for long schedule campaigns: a Meter prints periodic
// snapshots (schedules/sec, coverage so far, ETA) to a side channel —
// stderr in the cmd tools — while the campaign's real output stays on
// stdout. Progress is wall-clock and therefore intentionally outside the
// byte-identity contract; the deterministic coverage numbers come from
// the post-merge Accumulator fold, never from the meter.

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Meter emits periodic progress snapshots. A nil *Meter is a valid no-op
// receiver, so callers can plumb one unconditionally and only construct
// it under a -progress flag. All methods are safe for concurrent use —
// parallel sweep workers call Done/Note directly.
type Meter struct {
	w     io.Writer
	label string
	total int // expected task count (0 = unknown; no ETA)
	every time.Duration

	mu      sync.Mutex
	start   time.Time
	last    time.Time
	done    int
	printed int // done count at the last printed line (Finish dedup)
	seen    map[uint64]struct{}
	sigs    int
}

// NewMeter returns a meter that writes a snapshot to w at most once per
// interval (default 1s) as tasks complete. total is the expected task
// count, used for the ETA; pass 0 when unknown.
func NewMeter(w io.Writer, label string, total int, interval time.Duration) *Meter {
	if interval <= 0 {
		interval = time.Second
	}
	now := time.Now()
	return &Meter{
		w: w, label: label, total: total, every: interval,
		start: now, last: now, seen: make(map[uint64]struct{}),
	}
}

// Note folds a schedule signature into the meter's live (non-
// authoritative) coverage estimate.
func (m *Meter) Note(sig uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.seen[sig] = struct{}{}
	m.sigs++
	m.mu.Unlock()
}

// Done records one completed task and prints a snapshot when the
// reporting interval has elapsed.
func (m *Meter) Done() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.done++
	now := time.Now()
	if now.Sub(m.last) < m.every && !(m.total > 0 && m.done == m.total) {
		m.mu.Unlock()
		return
	}
	m.last = now
	m.printed = m.done
	line := m.lineLocked(now)
	m.mu.Unlock()
	fmt.Fprintln(m.w, line)
}

// Finish prints a final snapshot regardless of the interval, unless the
// current count was already printed (e.g. by the completing Done call).
func (m *Meter) Finish() {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.printed == m.done && m.done > 0 {
		m.mu.Unlock()
		return
	}
	m.printed = m.done
	line := m.lineLocked(time.Now())
	m.mu.Unlock()
	fmt.Fprintln(m.w, line)
}

func (m *Meter) lineLocked(now time.Time) string {
	elapsed := now.Sub(m.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(m.done) / elapsed
	}
	s := fmt.Sprintf("%s: %d", m.label, m.done)
	if m.total > 0 {
		s = fmt.Sprintf("%s/%d (%.1f%%)", s, m.total, 100*float64(m.done)/float64(m.total))
	}
	s = fmt.Sprintf("%s done, %.0f/s", s, rate)
	if m.sigs > 0 {
		s = fmt.Sprintf("%s, coverage %d/%d distinct (%.1f%%)",
			s, len(m.seen), m.sigs, 100*float64(len(m.seen))/float64(m.sigs))
	}
	if m.total > 0 && m.done > 0 && m.done < m.total && rate > 0 {
		eta := time.Duration(float64(m.total-m.done) / rate * float64(time.Second)).Round(time.Second)
		s = fmt.Sprintf("%s, eta %s", s, eta)
	}
	return s
}

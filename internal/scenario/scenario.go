// Package scenario builds small, named, reproducible runs of the paper's
// objects for inspection tooling. Where internal/workload drives throughput
// experiments, a scenario is the opposite: a handful of processes with a
// deterministic preemption pattern, sized so a human can read the resulting
// trace. cmd/wftrace loads one by (object, seed, pattern) and renders its
// span model; the tests in this package pin down that the same triple
// always yields byte-identical traces.
//
// The object set, instance construction and op scripts all come from
// internal/registry: every core descriptor carries a ScenarioSpec, so a new
// object shows up here (and in wftrace) by registering a descriptor.
package scenario

import (
	"fmt"
	"sort"

	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/registry"
	"repro/internal/sched"
)

// Config selects a scenario.
type Config struct {
	// Object is one of Objects() — any core object in the registry.
	Object string
	// Seed seeds the simulation.
	Seed int64
	// Pattern is one of Patterns(); empty means "stagger".
	Pattern string
	// Trace enables event recording; cmd/wftrace always sets it.
	Trace bool
	// CC and Mode configure the multiprocessor helping machinery (zero
	// values mean the object defaults: Native CCAS, cyclic helping); the
	// wfbench full-matrix sweep varies them.
	CC   prim.Impl
	Mode helping.Mode
}

// pattern gives the slice counts after which the two adversaries (or, for
// multiprocessor objects, the two per-processor preemptors) are released.
// A negative count releases the job at time zero, which on a uniprocessor
// serializes the jobs by priority and produces no mid-operation preemption.
type pattern struct {
	k1, k2 int64
}

var patterns = map[string]pattern{
	// stagger reproduces the Figure 2 shape: the second process arrives
	// mid-scan of the first, the third mid-help of the second.
	"stagger": {k1: 15, k2: 28},
	// burst releases both adversaries almost together, early.
	"burst": {k1: 6, k2: 8},
	// none releases everything at time zero: priority order serializes
	// the operations and no helping occurs (the control case).
	"none": {k1: -1, k2: -1},
}

// Patterns returns the known preemption pattern names, sorted.
func Patterns() []string {
	var out []string
	for name := range patterns {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Objects returns the object names scenarios exist for: every core object
// registered in internal/registry.
func Objects() []string {
	return registry.CoreNames()
}

// Run builds and executes the scenario, returning the completed simulation
// (trace, report and final memory are read off it).
func Run(cfg Config) (*sched.Sim, error) {
	pat, ok := patterns[patternName(cfg)]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown pattern %q (have %v)", cfg.Pattern, Patterns())
	}
	d, err := registry.Lookup(cfg.Object)
	if err != nil || d.Family == registry.FamilyBaseline {
		return nil, fmt.Errorf("scenario: unknown object %q (have %v)", cfg.Object, Objects())
	}
	s, err := build(d, cfg, pat)
	if err != nil {
		return nil, err
	}
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("scenario %s/%s: %w", cfg.Object, patternName(cfg), err)
	}
	return s, nil
}

func patternName(cfg Config) string {
	if cfg.Pattern == "" {
		return "stagger"
	}
	return cfg.Pattern
}

// build instantiates the descriptor's ScenarioSpec inside a fresh simulation
// and spawns its cast: uniprocessor objects get the Figure 2 trio (victim
// plus two adversaries, one script each), multiprocessor objects one worker
// per processor plus pattern-released compute bursts.
func build(d *registry.Descriptor, cfg Config, pat pattern) (*sched.Sim, error) {
	spec := d.Scenario
	// Acquire rather than New: sweep drivers (wfbench -exp sweep) run the
	// full matrix of scenarios and release each Sim after reading its
	// report, so simulator memory is reused across cells. One-shot callers
	// simply never release, which degrades to New.
	var s *sched.Sim
	if d.Family == registry.FamilyUni {
		s = sched.Acquire(sched.Config{Processors: 1, Seed: cfg.Seed, MemWords: 1 << 15, EnableTrace: cfg.Trace})
	} else {
		s = sched.Acquire(sched.Config{Processors: 2, Seed: cfg.Seed, MemWords: 1 << 16, EnableTrace: cfg.Trace})
	}
	inst, err := registry.Build(s, d.Name, registry.Config{
		Procs:    len(spec.Scripts),
		Capacity: spec.Capacity,
		Buckets:  spec.Buckets,
		Words:    spec.Words,
		Width:    spec.Width,
		Stride:   spec.Stride,
		SeedKeys: spec.SeedKeys,
		CC:       cfg.CC,
		Mode:     cfg.Mode,
	})
	if err != nil {
		return nil, err
	}
	body := func(slot int) func(e *sched.Env) {
		script := spec.Scripts[slot]
		return func(e *sched.Env) {
			for _, op := range script {
				inst.Apply(e, slot, op)
			}
		}
	}
	if d.Family == registry.FamilyUni {
		spawnUniTrio(s, pat, body(0), body(1), body(2))
	} else {
		spawnMultiCast(s, pat, body(0), body(1))
	}
	return s, nil
}

// spawnUniTrio spawns the Figure 2 cast on cpu0: a low-priority victim and
// two adversaries released after k1 and k2 slices, each performing one
// script through the given bodies.
func spawnUniTrio(s *sched.Sim, pat pattern, victim, adv1, adv2 func(*sched.Env)) {
	s.Spawn(sched.JobSpec{Name: "p", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: victim})
	s.Spawn(sched.JobSpec{Name: "q", CPU: 0, Prio: 5, Slot: 1, AfterSlices: pat.k1, Body: adv1})
	s.Spawn(sched.JobSpec{Name: "r", CPU: 0, Prio: 9, Slot: 2, AfterSlices: pat.k2, Body: adv2})
}

// spawnMultiCast spawns one worker per processor plus, for patterns that
// preempt, a high-priority compute burst per processor (delaying, not
// touching the object) released after k1/k2 slices. A preempted worker's
// announced operation is what the other processor's helping ring picks up.
func spawnMultiCast(s *sched.Sim, pat pattern, w0, w1 func(*sched.Env)) {
	s.Spawn(sched.JobSpec{Name: "w0", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: w0})
	s.Spawn(sched.JobSpec{Name: "w1", CPU: 1, Prio: 1, Slot: 1, AfterSlices: -1, Body: w1})
	if pat.k1 >= 0 {
		s.Spawn(sched.JobSpec{Name: "hi0", CPU: 0, Prio: 9, Slot: -1, AfterSlices: pat.k1,
			Body: func(e *sched.Env) { e.Delay(60) }})
	}
	if pat.k2 >= 0 {
		s.Spawn(sched.JobSpec{Name: "hi1", CPU: 1, Prio: 9, Slot: -1, AfterSlices: pat.k2,
			Body: func(e *sched.Env) { e.Delay(60) }})
	}
}

// Package scenario builds small, named, reproducible runs of the paper's
// objects for inspection tooling. Where internal/workload drives throughput
// experiments, a scenario is the opposite: a handful of processes with a
// deterministic preemption pattern, sized so a human can read the resulting
// trace. cmd/wftrace loads one by (object, seed, pattern) and renders its
// span model; the tests in this package pin down that the same triple
// always yields byte-identical traces.
package scenario

import (
	"fmt"
	"sort"

	"repro/internal/arena"
	"repro/internal/core/multilist"
	"repro/internal/core/multiqueue"
	"repro/internal/core/unihash"
	"repro/internal/core/unilist"
	"repro/internal/core/uniqueue"
	"repro/internal/core/unistack"
	"repro/internal/sched"
)

// Config selects a scenario.
type Config struct {
	// Object is one of Objects(): unilist, uniqueue, unistack, unihash,
	// multilist, multiqueue.
	Object string
	// Seed seeds the simulation.
	Seed int64
	// Pattern is one of Patterns(); empty means "stagger".
	Pattern string
	// Trace enables event recording; cmd/wftrace always sets it.
	Trace bool
}

// pattern gives the slice counts after which the two adversaries (or, for
// multiprocessor objects, the two per-processor preemptors) are released.
// A negative count releases the job at time zero, which on a uniprocessor
// serializes the jobs by priority and produces no mid-operation preemption.
type pattern struct {
	k1, k2 int64
}

var patterns = map[string]pattern{
	// stagger reproduces the Figure 2 shape: the second process arrives
	// mid-scan of the first, the third mid-help of the second.
	"stagger": {k1: 15, k2: 28},
	// burst releases both adversaries almost together, early.
	"burst": {k1: 6, k2: 8},
	// none releases everything at time zero: priority order serializes
	// the operations and no helping occurs (the control case).
	"none": {k1: -1, k2: -1},
}

// Patterns returns the known preemption pattern names, sorted.
func Patterns() []string {
	var out []string
	for name := range patterns {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Objects returns the object names scenarios exist for.
func Objects() []string {
	return []string{"multilist", "multiqueue", "unihash", "unilist", "uniqueue", "unistack"}
}

// Run builds and executes the scenario, returning the completed simulation
// (trace, report and final memory are read off it).
func Run(cfg Config) (*sched.Sim, error) {
	pat, ok := patterns[patternName(cfg)]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown pattern %q (have %v)", cfg.Pattern, Patterns())
	}
	build, ok := builders[cfg.Object]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown object %q (have %v)", cfg.Object, Objects())
	}
	s, err := build(cfg, pat)
	if err != nil {
		return nil, err
	}
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("scenario %s/%s: %w", cfg.Object, patternName(cfg), err)
	}
	return s, nil
}

func patternName(cfg Config) string {
	if cfg.Pattern == "" {
		return "stagger"
	}
	return cfg.Pattern
}

type builder func(Config, pattern) (*sched.Sim, error)

var builders = map[string]builder{
	"unilist":    buildUnilist,
	"uniqueue":   buildUniqueue,
	"unistack":   buildUnistack,
	"unihash":    buildUnihash,
	"multilist":  buildMultilist,
	"multiqueue": buildMultiqueue,
}

// newUniSim makes a one-processor simulation for the incremental-helping
// objects.
func newUniSim(cfg Config) *sched.Sim {
	return sched.New(sched.Config{Processors: 1, Seed: cfg.Seed, MemWords: 1 << 15, EnableTrace: cfg.Trace})
}

// spawnUniTrio spawns the Figure 2 cast on cpu0: a low-priority victim and
// two adversaries released after k1 and k2 slices, each performing one
// operation through the given bodies.
func spawnUniTrio(s *sched.Sim, pat pattern, victim, adv1, adv2 func(*sched.Env)) {
	s.Spawn(sched.JobSpec{Name: "p", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: victim})
	s.Spawn(sched.JobSpec{Name: "q", CPU: 0, Prio: 5, Slot: 1, AfterSlices: pat.k1, Body: adv1})
	s.Spawn(sched.JobSpec{Name: "r", CPU: 0, Prio: 9, Slot: 2, AfterSlices: pat.k2, Body: adv2})
}

func buildUnilist(cfg Config, pat pattern) (*sched.Sim, error) {
	s := newUniSim(cfg)
	ar, err := arena.New(s.Mem(), 32, 3)
	if err != nil {
		return nil, err
	}
	l, err := unilist.New(s.Mem(), ar, 3)
	if err != nil {
		return nil, err
	}
	ar.Freeze()
	spawnUniTrio(s, pat,
		func(e *sched.Env) { l.Insert(e, 10, 1) },
		func(e *sched.Env) { l.Insert(e, 20, 2) },
		func(e *sched.Env) { l.Insert(e, 30, 3) })
	return s, nil
}

func buildUniqueue(cfg Config, pat pattern) (*sched.Sim, error) {
	s := newUniSim(cfg)
	ar, err := arena.New(s.Mem(), 32, 3)
	if err != nil {
		return nil, err
	}
	q, err := uniqueue.New(s.Mem(), ar, 3)
	if err != nil {
		return nil, err
	}
	ar.Freeze()
	spawnUniTrio(s, pat,
		func(e *sched.Env) { q.Enqueue(e, 10) },
		func(e *sched.Env) { q.Enqueue(e, 20) },
		func(e *sched.Env) { q.Dequeue(e) })
	return s, nil
}

func buildUnistack(cfg Config, pat pattern) (*sched.Sim, error) {
	s := newUniSim(cfg)
	ar, err := arena.New(s.Mem(), 32, 3)
	if err != nil {
		return nil, err
	}
	st, err := unistack.New(s.Mem(), ar, 3)
	if err != nil {
		return nil, err
	}
	ar.Freeze()
	spawnUniTrio(s, pat,
		func(e *sched.Env) { st.Push(e, 10) },
		func(e *sched.Env) { st.Push(e, 20) },
		func(e *sched.Env) { st.Pop(e) })
	return s, nil
}

func buildUnihash(cfg Config, pat pattern) (*sched.Sim, error) {
	s := newUniSim(cfg)
	ar, err := arena.New(s.Mem(), 64, 3)
	if err != nil {
		return nil, err
	}
	h, err := unihash.New(s.Mem(), ar, 3, 4)
	if err != nil {
		return nil, err
	}
	if err := h.SeedKeys([]uint64{40, 41}); err != nil {
		return nil, err
	}
	ar.Freeze()
	spawnUniTrio(s, pat,
		func(e *sched.Env) { h.Insert(e, 10, 1) },
		func(e *sched.Env) { h.Insert(e, 20, 2) },
		func(e *sched.Env) { h.Delete(e, 40) })
	return s, nil
}

// newMultiSim makes a two-processor simulation for the ring-helping
// objects.
func newMultiSim(cfg Config) *sched.Sim {
	return sched.New(sched.Config{Processors: 2, Seed: cfg.Seed, MemWords: 1 << 16, EnableTrace: cfg.Trace})
}

// spawnMultiCast spawns one worker per processor plus, for patterns that
// preempt, a high-priority compute burst per processor (delaying, not
// touching the object) released after k1/k2 slices. A preempted worker's
// announced operation is what the other processor's helping ring picks up.
func spawnMultiCast(s *sched.Sim, pat pattern, w0, w1 func(*sched.Env)) {
	s.Spawn(sched.JobSpec{Name: "w0", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Body: w0})
	s.Spawn(sched.JobSpec{Name: "w1", CPU: 1, Prio: 1, Slot: 1, AfterSlices: -1, Body: w1})
	if pat.k1 >= 0 {
		s.Spawn(sched.JobSpec{Name: "hi0", CPU: 0, Prio: 9, Slot: -1, AfterSlices: pat.k1,
			Body: func(e *sched.Env) { e.Delay(60) }})
	}
	if pat.k2 >= 0 {
		s.Spawn(sched.JobSpec{Name: "hi1", CPU: 1, Prio: 9, Slot: -1, AfterSlices: pat.k2,
			Body: func(e *sched.Env) { e.Delay(60) }})
	}
}

func buildMultilist(cfg Config, pat pattern) (*sched.Sim, error) {
	s := newMultiSim(cfg)
	ar, err := arena.New(s.Mem(), 64, 2)
	if err != nil {
		return nil, err
	}
	l, err := multilist.New(s.Mem(), ar, multilist.Config{Processors: 2, Procs: 2})
	if err != nil {
		return nil, err
	}
	if err := l.SeedAscending([]uint64{5, 50}); err != nil {
		return nil, err
	}
	ar.Freeze()
	spawnMultiCast(s, pat,
		func(e *sched.Env) { l.Insert(e, 10, 1); l.Insert(e, 20, 2) },
		func(e *sched.Env) { l.Insert(e, 15, 3); l.Insert(e, 25, 4) })
	return s, nil
}

func buildMultiqueue(cfg Config, pat pattern) (*sched.Sim, error) {
	s := newMultiSim(cfg)
	ar, err := arena.New(s.Mem(), 64, 2)
	if err != nil {
		return nil, err
	}
	q, err := multiqueue.New(s.Mem(), ar, multiqueue.Config{Processors: 2, Procs: 2})
	if err != nil {
		return nil, err
	}
	ar.Freeze()
	spawnMultiCast(s, pat,
		func(e *sched.Env) { q.Enqueue(e, 10); q.Enqueue(e, 20) },
		func(e *sched.Env) { q.Dequeue(e); q.Dequeue(e) })
	return s, nil
}

// Package scenario builds small, named, reproducible runs of the paper's
// objects for inspection tooling. Where internal/workload drives throughput
// experiments, a scenario is the opposite: a handful of processes with a
// deterministic preemption pattern, sized so a human can read the resulting
// trace. cmd/wftrace loads one by (object, seed, pattern) and renders its
// span model; the tests in this package pin down that the same triple
// always yields byte-identical traces.
//
// The object set, instance construction and op scripts all come from
// internal/registry: every core descriptor carries a ScenarioSpec, so a new
// object shows up here (and in wftrace) by registering a descriptor. The
// preemption patterns are arrival traces (internal/arrival) and the
// dispatch discipline is a scheduling policy (sched.Policy), both named in
// the Config — the historical trio of patterns and the strict-priority
// discipline remain the defaults.
package scenario

import (
	"fmt"

	"repro/internal/arrival"
	"repro/internal/helping"
	"repro/internal/prim"
	"repro/internal/registry"
	"repro/internal/sched"
)

// Config selects a scenario.
type Config struct {
	// Object is one of Objects() — any core object in the registry.
	Object string
	// Seed seeds the simulation.
	Seed int64
	// Pattern is the legacy name for Arrival (the scenario tooling's
	// original trio of preemption patterns); empty means "stagger".
	Pattern string
	// Arrival selects the arrival trace shaping the adversary/burst
	// releases — any of arrival.Names(). When set it takes precedence
	// over Pattern.
	Arrival string
	// Policy names the scheduling discipline (sched.PolicyNames());
	// empty means the paper's strict-priority model.
	Policy string
	// Trace enables event recording; cmd/wftrace always sets it.
	Trace bool
	// CC and Mode configure the multiprocessor helping machinery (zero
	// values mean the object defaults: Native CCAS, cyclic helping); the
	// wfbench full-matrix sweep varies them.
	CC   prim.Impl
	Mode helping.Mode
}

// Patterns returns the legacy preemption pattern names, sorted. The full
// arrival-trace template set is arrival.Names().
func Patterns() []string {
	return arrival.Legacy()
}

// Objects returns the object names scenarios exist for: every core object
// registered in internal/registry.
func Objects() []string {
	return registry.CoreNames()
}

// Run builds and executes the scenario, returning the completed simulation
// (trace, report and final memory are read off it).
func Run(cfg Config) (*sched.Sim, error) {
	trc, err := arrival.ByName(traceName(cfg))
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	pol, err := sched.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	d, err := registry.Lookup(cfg.Object)
	if err != nil || d.Family == registry.FamilyBaseline {
		return nil, fmt.Errorf("scenario: unknown object %q (have %v)", cfg.Object, Objects())
	}
	s, err := build(d, cfg, trc, pol)
	if err != nil {
		return nil, err
	}
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("scenario %s/%s: %w", cfg.Object, trc.Name(), err)
	}
	return s, nil
}

func traceName(cfg Config) string {
	if cfg.Arrival != "" {
		return cfg.Arrival
	}
	if cfg.Pattern == "" {
		return "stagger"
	}
	return cfg.Pattern
}

// build instantiates the descriptor's ScenarioSpec inside a fresh simulation
// and spawns its cast: uniprocessor objects get the Figure 2 trio (victim
// plus two adversaries, one script each), multiprocessor objects one worker
// per processor plus trace-released compute bursts.
func build(d *registry.Descriptor, cfg Config, trc arrival.Trace, pol sched.Policy) (*sched.Sim, error) {
	spec := d.Scenario
	// Acquire rather than New: sweep drivers (wfbench -exp sweep) run the
	// full matrix of scenarios and release each Sim after reading its
	// report, so simulator memory is reused across cells. One-shot callers
	// simply never release, which degrades to New.
	var s *sched.Sim
	if d.Family == registry.FamilyUni {
		s = sched.Acquire(sched.Config{Processors: 1, Seed: cfg.Seed, MemWords: 1 << 15, EnableTrace: cfg.Trace, Policy: pol})
	} else {
		s = sched.Acquire(sched.Config{Processors: 2, Seed: cfg.Seed, MemWords: 1 << 16, EnableTrace: cfg.Trace, Policy: pol})
	}
	inst, err := registry.Build(s, d.Name, registry.Config{
		Procs:    len(spec.Scripts),
		Capacity: spec.Capacity,
		Buckets:  spec.Buckets,
		Words:    spec.Words,
		Width:    spec.Width,
		Stride:   spec.Stride,
		SeedKeys: spec.SeedKeys,
		CC:       cfg.CC,
		Mode:     cfg.Mode,
	})
	if err != nil {
		return nil, err
	}
	body := func(slot int) func(e *sched.Env) {
		script := spec.Scripts[slot]
		return func(e *sched.Env) {
			for _, op := range script {
				inst.Apply(e, slot, op)
			}
		}
	}
	cost := func(slot int) int64 { return int64(len(spec.Scripts[slot])) }
	rel := trc.Releases(2, cfg.Seed)
	if d.Family == registry.FamilyUni {
		spawnUniTrio(s, rel, body, cost)
	} else {
		spawnMultiCast(s, rel, body, cost)
	}
	return s, nil
}

// spawnUniTrio spawns the Figure 2 cast on cpu0: a low-priority victim
// released at time zero and two adversaries released at the trace's two
// points, each performing one script through the given bodies.
func spawnUniTrio(s *sched.Sim, rel []arrival.Release, body func(int) func(*sched.Env), cost func(int) int64) {
	s.Spawn(sched.JobSpec{Name: "p", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Cost: cost(0), Body: body(0)})
	s.Spawn(sched.JobSpec{Name: "q", CPU: 0, Prio: 5, Slot: 1, AfterSlices: rel[0].AfterSlices, At: rel[0].At, Cost: cost(1), Body: body(1)})
	s.Spawn(sched.JobSpec{Name: "r", CPU: 0, Prio: 9, Slot: 2, AfterSlices: rel[1].AfterSlices, At: rel[1].At, Cost: cost(2), Body: body(2)})
}

// spawnMultiCast spawns one worker per processor plus, for traces that
// preempt, a high-priority compute burst per processor (delaying, not
// touching the object) released at the trace's two points. A preempted
// worker's announced operation is what the other processor's helping ring
// picks up. Immediate releases spawn no burst (the "none" control case:
// nothing ever preempts the workers).
func spawnMultiCast(s *sched.Sim, rel []arrival.Release, body func(int) func(*sched.Env), cost func(int) int64) {
	const burstLen = 60
	s.Spawn(sched.JobSpec{Name: "w0", CPU: 0, Prio: 1, Slot: 0, AfterSlices: -1, Cost: cost(0), Body: body(0)})
	s.Spawn(sched.JobSpec{Name: "w1", CPU: 1, Prio: 1, Slot: 1, AfterSlices: -1, Cost: cost(1), Body: body(1)})
	if !rel[0].Immediate() {
		s.Spawn(sched.JobSpec{Name: "hi0", CPU: 0, Prio: 9, Slot: -1, AfterSlices: rel[0].AfterSlices, At: rel[0].At, Cost: burstLen,
			Body: func(e *sched.Env) { e.Delay(burstLen) }})
	}
	if !rel[1].Immediate() {
		s.Spawn(sched.JobSpec{Name: "hi1", CPU: 1, Prio: 9, Slot: -1, AfterSlices: rel[1].AfterSlices, At: rel[1].At, Cost: burstLen,
			Body: func(e *sched.Env) { e.Delay(burstLen) }})
	}
}

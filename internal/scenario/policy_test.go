package scenario

// Tests for the policy/arrival seams threaded through the scenario layer.

import (
	"reflect"
	"testing"

	"repro/internal/registry"
)

// TestPatternsPin: Patterns() is the legacy trio, verbatim — the wfbench
// sweep matrix iterates it, so its membership is part of the golden-output
// contract.
func TestPatternsPin(t *testing.T) {
	if got := Patterns(); !reflect.DeepEqual(got, []string{"burst", "none", "stagger"}) {
		t.Fatalf("Patterns() = %v, want [burst none stagger]", got)
	}
}

// TestArrivalAliasesPattern: Config.Arrival and Config.Pattern naming the
// same trace produce byte-identical runs, and Arrival wins when both are
// set — so the CLIs can expose both flags without a behavioral fork.
func TestArrivalAliasesPattern(t *testing.T) {
	rep := func(cfg Config) string {
		s, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Report("uniqueue").JSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	byPattern := rep(Config{Object: "uniqueue", Seed: 1, Pattern: "stagger"})
	byArrival := rep(Config{Object: "uniqueue", Seed: 1, Arrival: "stagger"})
	if byPattern != byArrival {
		t.Errorf("Pattern:\"stagger\" and Arrival:\"stagger\" runs differ:\n%s\nvs\n%s", byPattern, byArrival)
	}
	precedence := rep(Config{Object: "uniqueue", Seed: 1, Pattern: "burst", Arrival: "stagger"})
	if precedence != byArrival {
		t.Errorf("Arrival should take precedence over Pattern when both are set")
	}
}

// TestPolicyThreadedIntoReport: an off-default policy reaches the Sim and
// is stamped into the run report; the default run stays unstamped (the
// omitempty field that keeps historical goldens byte-identical).
func TestPolicyThreadedIntoReport(t *testing.T) {
	s, err := Run(Config{Object: "uniqueue", Seed: 1, Policy: "fcfs"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Report("uniqueue").Policy; got != "fcfs" {
		t.Errorf("off-default run report Policy = %q, want \"fcfs\"", got)
	}
	s, err = Run(Config{Object: "uniqueue", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Report("uniqueue").Policy; got != "" {
		t.Errorf("default run report Policy = %q, want \"\" (omitempty keeps goldens stable)", got)
	}
	if _, err := Run(Config{Object: "uniqueue", Seed: 1, Policy: "bogus"}); err == nil {
		t.Errorf("unknown policy should fail fast")
	}
	if _, err := Run(Config{Object: "uniqueue", Seed: 1, Arrival: "bogus"}); err == nil {
		t.Errorf("unknown arrival trace should fail fast")
	}
}

// TestNewArrivalTracesRunEverywhere: the time-triggered templates (bursty,
// rate) drive every registered core object — both families — to a clean
// completion under every policy template's default. This is the coverage
// pin that each arrival template is exercised by at least one test.
func TestNewArrivalTracesRunEverywhere(t *testing.T) {
	for _, object := range Objects() {
		for _, arr := range []string{"bursty", "rate"} {
			t.Run(object+"/"+arr, func(t *testing.T) {
				s, err := Run(Config{Object: object, Seed: 3, Arrival: arr})
				if err != nil {
					t.Fatal(err)
				}
				if s.Slices() == 0 {
					t.Errorf("run executed no slices")
				}
			})
		}
	}
}

// TestPoliciesRunEveryFamily: every policy template drives one uni and one
// multi object to completion through the scenario layer.
func TestPoliciesRunEveryFamily(t *testing.T) {
	var uni, multi string
	for _, object := range Objects() {
		d, err := registry.Lookup(object)
		if err != nil {
			t.Fatal(err)
		}
		if d.Family == registry.FamilyUni && uni == "" {
			uni = object
		}
		if d.Family == registry.FamilyMulti && multi == "" {
			multi = object
		}
	}
	if uni == "" || multi == "" {
		t.Fatalf("registry lacks a uni or multi object (uni=%q multi=%q)", uni, multi)
	}
	for _, pol := range []string{"priority", "fcfs", "priority-fcfs", "sjf", "age-slo", "reverse-priority"} {
		for _, object := range []string{uni, multi} {
			t.Run(pol+"/"+object, func(t *testing.T) {
				s, err := Run(Config{Object: object, Seed: 2, Policy: pol})
				if err != nil {
					t.Fatal(err)
				}
				if s.Policy().Name() != pol {
					t.Errorf("Sim policy = %q, want %q", s.Policy().Name(), pol)
				}
			})
		}
	}
}

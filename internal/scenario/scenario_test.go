package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/tracex"
)

// TestTraceDeterminism pins the tentpole guarantee of the inspection layer:
// the same (object, seed, pattern) triple always yields the identical span
// tree and identical exporter bytes, run to run. Both exporters are compared
// because they serialize different subsets of the model.
func TestTraceDeterminism(t *testing.T) {
	for _, object := range Objects() {
		for _, pat := range Patterns() {
			t.Run(object+"/"+pat, func(t *testing.T) {
				run := func() *tracex.Trace {
					s, err := Run(Config{Object: object, Seed: 1, Pattern: pat, Trace: true})
					if err != nil {
						t.Fatal(err)
					}
					return tracex.Build(s.Trace())
				}
				a, b := run(), run()
				if a.Text() != b.Text() {
					t.Errorf("text export differs between two identical runs")
				}
				pa, err := a.Perfetto()
				if err != nil {
					t.Fatal(err)
				}
				pb, err := b.Perfetto()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(pa, pb) {
					t.Errorf("perfetto export differs between two identical runs")
				}
			})
		}
	}
}

// TestUniqueueStaggerTrace asserts the exact span model of the uniqueue
// acceptance run (`wftrace -object uniqueue -seed 1 -export perfetto`): the
// Figure 2 shape transplanted onto the queue — the victim's enqueue is helped
// across two preemptions and linearized by the highest-priority helper.
func TestUniqueueStaggerTrace(t *testing.T) {
	s, err := Run(Config{Object: "uniqueue", Seed: 1, Pattern: "stagger", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := tracex.Build(s.Trace())

	if got := len(tr.OpSpans()); got != 3 {
		t.Errorf("op spans = %d, want 3", got)
	}
	if got := len(tr.SliceSpans()); got != 5 {
		t.Errorf("slice spans = %d, want 5", got)
	}
	if got := len(tr.HelpEdges()); got != 2 {
		t.Errorf("help edges = %d, want 2", got)
	}
	if got := len(tr.CASFailEdges()); got != 0 {
		t.Errorf("casfail edges = %d, want 0", got)
	}
	if got := tr.LongestHelpChain(); got != 1 {
		t.Errorf("longest help chain = %d, want 1", got)
	}

	// The victim's op span (slot 0) must be linearized by a helper.
	victim := tr.OpSpans()[0]
	if victim.Slot != 0 || victim.HelpsReceived != 2 {
		t.Errorf("victim span = %+v, want slot 0 with 2 helps received", victim)
	}
	if victim.Linearize == nil || victim.LinearizeKey != "enqueue" || victim.Linearize.Proc == victim.Proc {
		t.Errorf("victim linearize = %+v key=%q, want enqueue by a helper", victim.Linearize, victim.LinearizeKey)
	}

	// The exported bytes must be a valid Chrome trace-event document whose
	// event population matches the span model.
	b, err := tr.Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
	}
	if want := len(tr.Spans); counts["X"] != want {
		t.Errorf("complete events = %d, want %d (one per span)", counts["X"], want)
	}
	if counts["s"] != 2 || counts["f"] != 2 {
		t.Errorf("flow events = s:%d f:%d, want 2/2 (one pair per help edge)", counts["s"], counts["f"])
	}
}

// TestPatternsShapeHelping checks that the pattern knob actually changes the
// schedule it claims to: "none" serializes the uniprocessor trio so no
// helping occurs, while "stagger" forces it.
func TestPatternsShapeHelping(t *testing.T) {
	for _, object := range []string{"unilist", "uniqueue", "unistack", "unihash"} {
		s, err := Run(Config{Object: object, Seed: 1, Pattern: "none", Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		tr := tracex.Build(s.Trace())
		if got := len(tr.HelpEdges()); got != 0 {
			t.Errorf("%s/none: help edges = %d, want 0 (serialized schedule)", object, got)
		}
		s, err = Run(Config{Object: object, Seed: 1, Pattern: "stagger", Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		tr = tracex.Build(s.Trace())
		if got := len(tr.HelpEdges()); got == 0 {
			t.Errorf("%s/stagger: no help edges, want at least one", object)
		}
	}
}

// TestReportUnaffectedByTracing is the acceptance criterion that
// instrumentation is free: the run report of a traced run must be
// byte-identical to the report of the identical untraced run. Annotations
// charge zero virtual time, so the schedules — and therefore every counter
// and virtual-time figure — coincide exactly.
func TestReportUnaffectedByTracing(t *testing.T) {
	for _, object := range Objects() {
		report := func(traced bool) []byte {
			s, err := Run(Config{Object: object, Seed: 1, Pattern: "stagger", Trace: traced})
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Report(object).JSON()
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		traced, untraced := report(true), report(false)
		if !bytes.Equal(traced, untraced) {
			t.Errorf("%s: traced run report differs from untraced run report", object)
		}
	}
}

// TestFig2SpansMatchReport cross-checks the span model against the metrics
// layer on the canonical unilist stagger run (the Figure 2 shape): the number
// of help edges reconstructed from annotations must equal the total helps the
// scheduler counted, and the chain depth must match the figure (each helper
// helps the victim directly, so the longest chain is one edge).
func TestFig2SpansMatchReport(t *testing.T) {
	s, err := Run(Config{Object: "unilist", Seed: 1, Pattern: "stagger", Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := tracex.Build(s.Trace())
	rep := s.Report("unilist")

	if got, want := len(tr.HelpEdges()), rep.HelpGiven; got != want {
		t.Errorf("help edges = %d, report help_given_total = %d; must agree", got, want)
	}
	if rep.HelpGiven != 2 || rep.HelpReceived != 2 {
		t.Errorf("report helps = given %d received %d, want 2/2 (Figure 2)", rep.HelpGiven, rep.HelpReceived)
	}
	if got := tr.LongestHelpChain(); got != 1 {
		t.Errorf("longest help chain = %d, want 1 (helpers act on the victim directly)", got)
	}

	// Per-process: q and r each help p once; the span model records both
	// helps on p's op span.
	victim := tr.OpSpans()[0]
	if victim.Slot != 0 || victim.HelpsReceived != 2 {
		t.Errorf("victim span = slot %d helps %d, want slot 0 with 2", victim.Slot, victim.HelpsReceived)
	}
	for _, p := range rep.Procs {
		wantGiven := 1
		if p.Slot == 0 {
			wantGiven = 0
		}
		if p.HelpGiven != wantGiven {
			t.Errorf("proc %s help_given = %d, want %d", p.Name, p.HelpGiven, wantGiven)
		}
	}
}

package linz

import (
	"fmt"
	"sort"

	"repro/internal/registry"
)

// Sub is one independently checkable slice of a history: a subset of the
// operations plus a constructor for the sequential model they are checked
// against. Partitioning is the first of the engine's two big levers —
// linearizability is compositional over independent state (P-compositional
// in Horn/Kroening's terms), so a sorted-set history splits into one tiny
// per-key history per key, turning one exponential search into many
// near-trivial ones.
type Sub struct {
	// Name identifies the partition in outcomes ("all", "key=5").
	Name string
	// Ops are the indices into History.Ops belonging to this partition,
	// in invocation order.
	Ops []int
	// New returns a fresh sequential model holding the partition's initial
	// state.
	New func() registry.Model
}

// Spec is an object's black-box checking specification: how to split a
// history into independent partitions and what sequential model each
// partition is checked against.
type Spec struct {
	// Object names the specified object (diagnostics only).
	Object string
	// Partition splits a history into independently checkable subs.
	Partition func(h *History) []Sub
}

// SpecFor adapts a registry descriptor's sequential model into a black-box
// spec. cfg must be the instance configuration the history was recorded
// under (it carries the seeded initial state). All ten core objects and
// the four baselines are covered by the four model kinds:
//
//   - ModelSorted objects partition per key: sorted-set operations on
//     distinct keys are independent, so each key is checked against a
//     one-key model seeded from cfg.SeedKeys.
//   - ModelFIFO, ModelLIFO and ModelWords objects check as one partition
//     (their operations all touch shared state).
func SpecFor(d *registry.Descriptor, cfg registry.Config) Spec {
	if d.Model == registry.ModelSorted {
		return Spec{Object: d.Name, Partition: func(h *History) []Sub {
			return sortedSubs(d, cfg, h)
		}}
	}
	return Spec{Object: d.Name, Partition: func(h *History) []Sub {
		ops := make([]int, len(h.Ops))
		for i := range ops {
			ops[i] = i
		}
		return []Sub{{Name: "all", Ops: ops, New: func() registry.Model { return d.NewModel(cfg) }}}
	}}
}

// sortedSubs groups a sorted-set history per key. Seeded keys with no
// operations are vacuously linearizable and are skipped.
func sortedSubs(d *registry.Descriptor, cfg registry.Config, h *History) []Sub {
	byKey := map[uint64][]int{}
	for i := range h.Ops {
		k := h.Ops[i].Op.Key
		byKey[k] = append(byKey[k], i)
	}
	seeded := map[uint64]bool{}
	for _, k := range cfg.SeedKeys {
		seeded[k] = true
	}
	keys := make([]uint64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	subs := make([]Sub, 0, len(keys))
	for _, k := range keys {
		k := k
		kcfg := cfg
		kcfg.SeedKeys = nil
		if seeded[k] {
			kcfg.SeedKeys = []uint64{k}
		}
		subs = append(subs, Sub{
			Name: fmt.Sprintf("key=%d", k),
			Ops:  byKey[k],
			New:  func() registry.Model { return d.NewModel(kcfg) },
		})
	}
	return subs
}

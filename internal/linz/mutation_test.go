package linz_test

import (
	"strings"
	"testing"

	"repro/internal/linz"
	"repro/internal/linz/testdata/mutant"
	"repro/internal/registry"
	"repro/internal/sched"
)

// The mutation tests check the checker: deliberately mis-linearized objects
// (internal/linz/testdata/mutant) that commit announced operations in the
// wrong order must be flagged by the black-box engine — and must NOT be
// flagged by a white-box replay-at-commit checker, because their results
// and final state are perfectly consistent with the (wrong) commit order.
// This pins the exact bug class the linz subsystem exists to catch.

type mutantStep struct {
	slot int
	op   registry.Op
}

// runMutant drives one mutant instance through a deterministic script on a
// single-processor simulation, recording the history black-box style.
func runMutant(t *testing.T, build func() registry.Instance, object string, script []mutantStep) (whiteErr error, h *linz.History, out linz.Outcome) {
	t.Helper()
	sim := sched.New(sched.Config{Processors: 1, Seed: 1, MemWords: 1 << 10})
	rec, wrapped := linz.Record(build())
	sim.Spawn(sched.JobSpec{Name: "driver", Prio: 1, AfterSlices: -1, Body: func(e *sched.Env) {
		for _, s := range script {
			wrapped.Apply(e, s.slot, s.op)
		}
	}})
	if err := sim.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	h = rec.History()
	out, err := linz.Check(h, linz.SpecFor(registry.Lookup0(object), registry.Config{}), linz.Options{})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return wrapped.CheckErr(), h, out
}

// TestLazyQueueMutant: the queue that drains announced enqueues in
// descending slot order. Slot 0's enqueue completes before slot 1's begins,
// yet the drain splices slot 1's value first, so the first dequeue returns
// it — a real-time FIFO violation invisible to commit-point replay.
func TestLazyQueueMutant(t *testing.T) {
	build := func() registry.Instance {
		return mutant.NewLazyQueue(3, registry.Lookup0("uniqueue").NewModel(registry.Config{}))
	}
	script := []mutantStep{
		{0, registry.Op{Code: registry.OpEnqueue, Val: 1}},
		{1, registry.Op{Code: registry.OpEnqueue, Val: 2}},
		{2, registry.Op{Code: registry.OpDequeue}},
		{2, registry.Op{Code: registry.OpDequeue}},
	}
	whiteErr, h, out := runMutant(t, build, "uniqueue", script)
	if whiteErr != nil {
		t.Fatalf("white-box checker flagged the mutant (it must be blind to commit-order bugs): %v", whiteErr)
	}
	if out.OK {
		t.Fatalf("black-box engine accepted the mis-linearized queue\n%s", h.Text())
	}
	if out.Counterexample == nil {
		t.Fatal("rejection without a counterexample")
	}
	tree := out.Counterexample.Tree(h)
	if !strings.Contains(tree, "dequeue") {
		t.Errorf("counterexample tree does not mention the impossible dequeue:\n%s", tree)
	}

	// Determinism: a fresh identical run renders byte-identically.
	_, h2, out2 := runMutant(t, build, "uniqueue", script)
	if h.Text() != h2.Text() {
		t.Errorf("recorded histories differ across identical runs:\n%s\nvs\n%s", h.Text(), h2.Text())
	}
	if tree2 := out2.Counterexample.Tree(h2); tree != tree2 {
		t.Errorf("counterexample renderings differ across identical runs:\n%s\nvs\n%s", tree, tree2)
	}
}

// TestLazyStackMutant: the stack analog. Draining in descending slot order
// leaves the earliest announced push on top, so the pop returns a value
// whose push completed strictly before a later push that is still buried.
func TestLazyStackMutant(t *testing.T) {
	build := func() registry.Instance {
		return mutant.NewLazyStack(3, registry.Lookup0("unistack").NewModel(registry.Config{}))
	}
	script := []mutantStep{
		{0, registry.Op{Code: registry.OpPush, Val: 1}},
		{1, registry.Op{Code: registry.OpPush, Val: 2}},
		{2, registry.Op{Code: registry.OpPop}},
		{2, registry.Op{Code: registry.OpPop}},
	}
	whiteErr, h, out := runMutant(t, build, "unistack", script)
	if whiteErr != nil {
		t.Fatalf("white-box checker flagged the mutant: %v", whiteErr)
	}
	if out.OK {
		t.Fatalf("black-box engine accepted the mis-linearized stack\n%s", h.Text())
	}
	if out.Counterexample == nil {
		t.Fatal("rejection without a counterexample")
	}
}

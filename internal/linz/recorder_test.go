package linz_test

import (
	"testing"

	"repro/internal/linz"
	"repro/internal/registry"
	"repro/internal/sched"
)

// record one two-worker uniqueue run and return its history.
func recordQueueRun(t *testing.T) *linz.History {
	t.Helper()
	d := registry.Lookup0("uniqueue")
	sim := sched.New(sched.Config{Processors: 1, Seed: 7, MemWords: 1 << 14})
	cfg := d.StressConfig(2)
	cfg.Check = false
	inst, err := registry.Build(sim, d.Name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, wrapped := linz.Record(inst)
	for slot := 0; slot < 2; slot++ {
		slot := slot
		ops := d.Ops(cfg, 7, slot, 4)
		sim.Spawn(sched.JobSpec{
			Name: "w", Prio: sched.Priority(1 + slot), Slot: slot,
			AfterSlices: int64(slot * 9), // late release lands mid-operation
			Body: func(e *sched.Env) {
				for _, op := range ops {
					wrapped.Apply(e, slot, op)
				}
			},
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return rec.History()
}

// TestRecorder: the wrapper captures every Apply as a well-formed interval
// without perturbing the object, and the result checks clean.
func TestRecorder(t *testing.T) {
	h := recordQueueRun(t)
	if len(h.Ops) != 8 {
		t.Fatalf("recorded %d ops, want 8", len(h.Ops))
	}
	if h.Events != 16 {
		t.Errorf("assigned %d events, want 16 (one invoke + one response per op)", h.Events)
	}
	if h.Procs() != 2 {
		t.Errorf("history spans %d procs, want 2", h.Procs())
	}
	for i := range h.Ops {
		rec := &h.Ops[i]
		if rec.Pending {
			t.Errorf("op#%d still pending after a completed run", i)
		}
		if rec.Invoke >= rec.Return {
			t.Errorf("op#%d interval e[%d,%d] is not ordered", i, rec.Invoke, rec.Return)
		}
		if rec.InvokeStep > rec.ReturnStep {
			t.Errorf("op#%d steps [%d,%d] run backwards", i, rec.InvokeStep, rec.ReturnStep)
		}
	}
	out, err := linz.Check(h, linz.SpecFor(registry.Lookup0("uniqueue"), registry.Config{}), linz.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK {
		t.Fatalf("real uniqueue run rejected:\n%s\n%s", h.Text(), out.Counterexample.Tree(h))
	}
}

// TestRecorderDeterminism: identical runs record byte-identical histories.
func TestRecorderDeterminism(t *testing.T) {
	a, b := recordQueueRun(t), recordQueueRun(t)
	if a.Text() != b.Text() {
		t.Errorf("histories differ across identical runs:\n%s\nvs\n%s", a.Text(), b.Text())
	}
}

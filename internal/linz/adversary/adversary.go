// Package adversary generates seeded randomized schedules for the
// black-box linearizability engine (internal/linz).
//
// The release-point sweeps (internal/explore, cmd/wfcheck) enumerate small
// neighborhoods of the schedule space exhaustively; this package samples
// it stochastically, the complementary discipline Alistarh/Censor-Hillel/
// Shavit argue real systems are actually subject to. Both strategies are
// layered on the scheduler's deterministic slice-triggered releases
// (sched.JobSpec.AfterSlices), so every run is a pure function of its
// (object, seed, strategy) triple — a failing seed is a perfect
// reproducer, replayable under wftrace -linz.
//
// Two strategies:
//
//   - Uniform: every worker gets an independent uniformly random release
//     point, a random priority (distinct per processor for the core
//     families), and — for multiprocessor objects — a random processor.
//   - PCT: a PCT-style priority-change schedule (Burckhardt et al.): the
//     base workers start together under a random priority permutation, and
//     d "change points", drawn uniformly over the run, each release a
//     strictly-higher-priority booster process that performs operations of
//     its own. Since the simulator's process priorities are fixed for the
//     duration of an access (the paper's model), the PCT priority *drop*
//     is emulated by its dual: control is forcibly shifted at each change
//     point by a new higher-priority arrival.
//
// Baseline objects run under equal priorities across two processors: the
// lock-based baseline livelocks by design when a spinning waiter preempts
// the lock holder on its own processor (that is the paper's motivating
// failure, demonstrated elsewhere), and the adversary suite's job is to
// produce checkable histories, not to re-demonstrate priority inversion.
package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/cover"
	"repro/internal/linz"
	"repro/internal/registry"
	"repro/internal/sched"
)

// Strategy selects a schedule generator.
type Strategy int

const (
	// Uniform draws independent uniform release points for every worker.
	Uniform Strategy = iota + 1
	// PCT emulates a PCT-style priority-change schedule with
	// higher-priority boosters released at random change points.
	PCT
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case PCT:
		return "pct"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseStrategy resolves a strategy name.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "uniform":
		return Uniform, nil
	case "pct":
		return PCT, nil
	}
	return 0, fmt.Errorf("adversary: unknown strategy %q (want uniform or pct)", name)
}

// Config parameterizes one randomized run.
type Config struct {
	// Object is any registered object (core or baseline).
	Object string
	// Seed determines everything: the schedule, the op streams, the
	// simulation.
	Seed int64
	// Strategy defaults to Uniform.
	Strategy Strategy
	// Workers is the number of base worker processes (default 3).
	Workers int
	// Ops is the number of operations per worker (default 3).
	Ops int
	// Boosters is the number of PCT change points (default 2; Uniform
	// ignores it). Each booster performs 2 operations.
	Boosters int
	// Horizon bounds the random release points, in executed slices
	// (default 160 — roughly the span of a few operations).
	Horizon int64
	// Policy names the scheduling discipline (sched.PolicyNames());
	// empty means the paper's strict-priority model. The generated
	// schedule (releases, priorities, processors) is policy-independent;
	// only dispatch and preemption order change.
	Policy string
	// Trace enables event recording on the simulation (wftrace -linz).
	Trace bool
}

// boosterOps is the fixed op count of a PCT booster process.
const boosterOps = 2

// Run is one executed randomized schedule: the completed simulation, the
// recorded history, and the spec to check it against.
type Run struct {
	Sim     *sched.Sim
	History *linz.History
	Spec    linz.Spec
	Desc    *registry.Descriptor
	// Policy is the scheduling policy name when off the default, ""
	// otherwise (kept here, not read off Sim, so Sig works after Close).
	Policy string
}

// Check hands the recorded history to the engine.
func (r *Run) Check(opts linz.Options) (linz.Outcome, error) {
	return linz.Check(r.History, r.Spec, opts)
}

// Sig returns the run's interleaving-shape signature for schedule-space
// coverage (internal/cover): a hash of the object identity and, per
// recorded operation, its slot, opcode, and invoke/return event indices.
// Two seeds whose schedules drove the same operations through the same
// interleaving collide — the behavioral equivalence the coverage counters
// are after. Operation keys/values and outcomes are excluded on purpose:
// they vary with the generated streams, not with the schedule shape.
func (r *Run) Sig() uint64 {
	h := cover.NewHasher()
	h.String(r.Desc.Name)
	// Keyed by the (off-default) policy: the same seed under two
	// disciplines is two different schedules. Empty folds nothing, so
	// default-policy signatures are unchanged.
	h.String(r.Policy)
	h.Word(uint64(r.History.Events))
	for _, op := range r.History.Ops {
		h.Word(uint64(op.Proc))
		h.Word(uint64(op.Op.Code))
		h.Word(uint64(op.Invoke))
		h.Word(uint64(int64(op.Return)))
		if op.Pending {
			h.Word(1)
		} else {
			h.Word(0)
		}
	}
	return h.Sum()
}

// Close returns the run's simulation to the scheduler pool. Call it once the
// history, report, and trace have been consumed; the Run must not be used
// afterwards. Sweep drivers that execute thousands of randomized schedules
// call this to reuse simulator memory across runs.
func (r *Run) Close() {
	if r.Sim == nil {
		return
	}
	sched.Release(r.Sim)
	r.Sim = nil
}

// Execute builds and runs the randomized schedule. The returned error
// covers simulation failures (a panic or watchdog is a violation in its
// own right); the linearizability verdict comes from Run.Check.
func Execute(cfg Config) (*Run, error) {
	d, err := registry.Lookup(cfg.Object)
	if err != nil {
		return nil, err
	}
	if cfg.Strategy == 0 {
		cfg.Strategy = Uniform
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 3
	}
	if cfg.Boosters <= 0 {
		cfg.Boosters = 2
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 160
	}
	pol, err := sched.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	slots := cfg.Workers
	if cfg.Strategy == PCT {
		slots += cfg.Boosters
	}
	procs := 1
	if d.Family != registry.FamilyUni {
		procs = 2
	}
	sim := sched.Acquire(sched.Config{
		Processors: procs, Seed: cfg.Seed, MemWords: 1 << 16,
		EnableTrace: cfg.Trace, MaxSteps: 4_000_000, Policy: pol,
	})
	icfg := d.StressConfig(slots)
	// Black box: the white-box checkers stay off; only the recorded
	// history is judged.
	icfg.Check = false
	inst, err := registry.Build(sim, d.Name, icfg)
	if err != nil {
		sched.Release(sim)
		return nil, err
	}
	rec, wrapped := linz.Record(inst)

	// One dedicated rng for schedule construction, salted by strategy so
	// uniform and pct runs of one seed differ.
	rng := rand.New(rand.NewSource(cfg.Seed*0x9e3779b9 + int64(cfg.Strategy)))
	body := func(slot, n int) func(*sched.Env) {
		ops := d.Ops(icfg, cfg.Seed, slot, n)
		return func(e *sched.Env) {
			for _, op := range ops {
				wrapped.Apply(e, slot, op)
			}
		}
	}
	switch cfg.Strategy {
	case Uniform:
		spawnUniform(sim, d, cfg, rng, body)
	case PCT:
		spawnPCT(sim, d, cfg, rng, body)
	default:
		sched.Release(sim)
		return nil, fmt.Errorf("adversary: unknown strategy %v", cfg.Strategy)
	}
	if err := sim.Run(); err != nil {
		// Run has returned, so every coroutine has unwound and the Sim
		// can be pooled even on a failed schedule.
		sched.Release(sim)
		return nil, fmt.Errorf("adversary: %s seed=%d strategy=%s: %w", d.Name, cfg.Seed, cfg.Strategy, err)
	}
	run := &Run{Sim: sim, History: rec.History(), Spec: linz.SpecFor(d, icfg), Desc: d}
	if pol != sched.DefaultPolicy() {
		run.Policy = pol.Name()
	}
	return run, nil
}

// spawnUniform releases every worker at an independent uniform slice
// count. Core families get distinct random priorities (so a later release
// preempts mid-operation); baselines run at equal priority.
func spawnUniform(sim *sched.Sim, d *registry.Descriptor, cfg Config, rng *rand.Rand, body func(slot, n int) func(*sched.Env)) {
	perm := rng.Perm(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		prio := sched.Priority(1 + perm[i])
		if d.Family == registry.FamilyBaseline {
			prio = 1
		}
		cpu := 0
		if sim.Processors() > 1 {
			cpu = rng.Intn(sim.Processors())
		}
		rel := rng.Int63n(cfg.Horizon)
		sim.Spawn(sched.JobSpec{
			Name: fmt.Sprintf("w%d", i), CPU: cpu, Prio: prio, Slot: i,
			AfterSlices: rel, Cost: int64(cfg.Ops), Body: body(i, cfg.Ops),
		})
	}
}

// spawnPCT starts the base workers together under a random priority
// permutation and releases one strictly-higher-priority booster per change
// point. For baselines every priority collapses to 1 (see the package
// comment), degrading the boosters to staggered extra workers.
func spawnPCT(sim *sched.Sim, d *registry.Descriptor, cfg Config, rng *rand.Rand, body func(slot, n int) func(*sched.Env)) {
	base := d.Family != registry.FamilyBaseline
	perm := rng.Perm(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		prio := sched.Priority(1)
		if base {
			prio = sched.Priority(1 + perm[i])
		}
		cpu := 0
		if sim.Processors() > 1 {
			cpu = i % sim.Processors()
		}
		sim.Spawn(sched.JobSpec{
			Name: fmt.Sprintf("w%d", i), CPU: cpu, Prio: prio, Slot: i,
			AfterSlices: -1, Cost: int64(cfg.Ops), Body: body(i, cfg.Ops),
		})
	}
	for j := 0; j < cfg.Boosters; j++ {
		prio := sched.Priority(1)
		if base {
			prio = sched.Priority(1 + cfg.Workers + j)
		}
		cpu := 0
		if sim.Processors() > 1 {
			cpu = rng.Intn(sim.Processors())
		}
		rel := rng.Int63n(cfg.Horizon)
		slot := cfg.Workers + j
		sim.Spawn(sched.JobSpec{
			Name: fmt.Sprintf("b%d", j), CPU: cpu, Prio: prio, Slot: slot,
			AfterSlices: rel, Cost: boosterOps, Body: body(slot, boosterOps),
		})
	}
}

package adversary

// Tests for the policy seam in the randomized-adversary driver: every
// policy template executes and checks clean, the Run records the
// off-default policy (and only then), and the coverage signature is keyed
// by it.

import (
	"testing"

	"repro/internal/linz"
	"repro/internal/sched"
)

func TestExecuteEveryPolicy(t *testing.T) {
	for _, pol := range sched.PolicyNames() {
		t.Run(pol, func(t *testing.T) {
			r, err := Execute(Config{Object: "uniqueue", Seed: 5, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			verdict, err := r.Check(linz.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !verdict.OK {
				t.Errorf("policy %s: history not linearizable:\n%s", pol, r.History.Text())
			}
			want := pol
			if pol == "priority" {
				want = "" // the default stays unstamped
			}
			if r.Policy != want {
				t.Errorf("policy %s: Run.Policy = %q, want %q", pol, r.Policy, want)
			}
		})
	}
	if _, err := Execute(Config{Object: "uniqueue", Seed: 5, Policy: "bogus"}); err == nil {
		t.Errorf("unknown policy should fail fast")
	}
}

// TestSigKeyedByPolicy: the same seed under two disciplines is two
// different schedules, and the coverage signature must not conflate them.
func TestSigKeyedByPolicy(t *testing.T) {
	def, err := Execute(Config{Object: "uniqueue", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Execute(Config{Object: "uniqueue", Seed: 5, Policy: "reverse-priority"})
	if err != nil {
		t.Fatal(err)
	}
	if def.Sig() == rev.Sig() {
		t.Errorf("default and reverse-priority runs of seed 5 produced the same signature %016x", def.Sig())
	}
	// Determinism: the same (seed, policy) pair always signs the same.
	rev2, err := Execute(Config{Object: "uniqueue", Seed: 5, Policy: "reverse-priority"})
	if err != nil {
		t.Fatal(err)
	}
	if rev.Sig() != rev2.Sig() {
		t.Errorf("reverse-priority seed 5 signature not deterministic: %016x vs %016x", rev.Sig(), rev2.Sig())
	}
}

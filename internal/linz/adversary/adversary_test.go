package adversary

import (
	"fmt"
	"testing"

	"repro/internal/linz"
	"repro/internal/registry"
)

// TestStrategyRoundTrip: names parse back to themselves.
func TestStrategyRoundTrip(t *testing.T) {
	for _, s := range []Strategy{Uniform, PCT} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted an unknown name")
	}
}

// TestDeterminism: the same (object, seed, strategy) triple records a
// byte-identical history and reaches a byte-identical verdict, for every
// core object — the property that makes a failing seed a reproducer.
func TestDeterminism(t *testing.T) {
	for _, name := range registry.CoreNames() {
		for _, strat := range []Strategy{Uniform, PCT} {
			cfg := Config{Object: name, Seed: 3, Strategy: strat}
			a, err := Execute(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, strat, err)
			}
			b, err := Execute(cfg)
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", name, strat, err)
			}
			if at, bt := a.History.Text(), b.History.Text(); at != bt {
				t.Errorf("%s/%s: histories differ across identical runs:\n%s\nvs\n%s", name, strat, at, bt)
				continue
			}
			ao, err := a.Check(linz.Options{})
			if err != nil {
				t.Fatalf("%s/%s check: %v", name, strat, err)
			}
			bo, err := b.Check(linz.Options{})
			if err != nil {
				t.Fatalf("%s/%s recheck: %v", name, strat, err)
			}
			if ao.Summary() != bo.Summary() {
				t.Errorf("%s/%s: verdicts differ: %q vs %q", name, strat, ao.Summary(), bo.Summary())
			}
		}
	}
}

// TestSmokeAllObjects: every registered object — the ten core objects and
// the four baselines — survives a handful of randomized schedules of both
// strategies with a linearizable history.
func TestSmokeAllObjects(t *testing.T) {
	for _, name := range registry.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, strat := range []Strategy{Uniform, PCT} {
				for seed := int64(1); seed <= 3; seed++ {
					r, err := Execute(Config{Object: name, Seed: seed, Strategy: strat})
					if err != nil {
						t.Fatalf("seed=%d strategy=%s: %v", seed, strat, err)
					}
					out, err := r.Check(linz.Options{})
					if err != nil {
						t.Fatalf("seed=%d strategy=%s check: %v", seed, strat, err)
					}
					if !out.OK {
						t.Fatalf("seed=%d strategy=%s: NOT linearizable\n%s\n%s",
							seed, strat, r.History.Text(), out.Counterexample.Tree(r.History))
					}
					if len(r.History.Ops) == 0 {
						t.Fatalf("seed=%d strategy=%s: empty history (adversary spawned nothing?)", seed, strat)
					}
				}
			}
		})
	}
}

// TestHistoryOverlap: the adversary's whole point is contended schedules —
// across the core objects and a few seeds, at least some recorded intervals
// must genuinely overlap (an always-sequential adversary checks nothing
// interesting).
func TestHistoryOverlap(t *testing.T) {
	overlaps := 0
	for _, name := range registry.CoreNames() {
		for seed := int64(1); seed <= 3; seed++ {
			r, err := Execute(Config{Object: name, Seed: seed, Strategy: Uniform})
			if err != nil {
				t.Fatal(err)
			}
			h := r.History
			for i := range h.Ops {
				for j := i + 1; j < len(h.Ops); j++ {
					a, b := &h.Ops[i], &h.Ops[j]
					if a.Pending || b.Pending {
						continue
					}
					if a.Invoke < b.Return && b.Invoke < a.Return {
						overlaps++
					}
				}
			}
		}
	}
	if overlaps == 0 {
		t.Error("no overlapping operation intervals across 30 uniform runs; schedules are degenerate")
	}
	t.Log(fmt.Sprintf("%d overlapping interval pairs across the sweep", overlaps))
}

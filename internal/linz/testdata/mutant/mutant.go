// Package mutant holds deliberately mis-linearized objects: the
// checker-of-the-checker seeds for the black-box engine's mutation tests.
//
// Both mutants are "lazy" helped objects: an enqueue/push announces its
// value in a per-slot buffer and responds immediately; a later operation
// drains the buffers and splices the announced values into the structure.
// The bug is the drain order — descending slot index, i.e. whichever
// helping order the (fictional) implementer happened to pick — which
// commits announced operations in an order that contradicts real time: an
// enqueue that completed before a second enqueue even began can be spliced
// *after* it.
//
// This is precisely the bug class the paper's helping engines must avoid
// (announced operations must be committed consistently with their
// announce/response order) and precisely the class the repo's white-box
// checkers cannot see: each mutant carries its own white-box checker in
// the style of internal/check — a sequential model replayed at the
// object's *stated* linearization points (the splice writes) — and that
// checker passes, because results and final state are perfectly consistent
// with the (wrong) commit order. Only a history-based checker, which knows
// that op A responded before op B was invoked, can reject these objects.
package mutant

import (
	"fmt"

	"repro/internal/registry"
	"repro/internal/shmem"
)

// pending is one announced-but-uncommitted value.
type pending struct {
	val uint64
	set bool
}

// whitebox replays a sequential model at the mutant's stated linearization
// points (the splices and the removals), mimicking internal/check's
// replay-at-commit discipline.
type whitebox struct {
	model registry.Model
	errs  []error
}

func (w *whitebox) commit(op registry.Op, got registry.Result) {
	want := w.model.Apply(op)
	if want.OK != got.OK || (got.OK && want.Val != got.Val &&
		(op.Code == registry.OpDequeue || op.Code == registry.OpPop)) {
		w.errs = append(w.errs, fmt.Errorf("mutant whitebox: %s returned %+v, model says %+v", op.Code, got, want))
	}
}

func (w *whitebox) finish(snapshot []uint64) error {
	want := w.model.Snapshot()
	if len(snapshot) != len(want) {
		w.errs = append(w.errs, fmt.Errorf("mutant whitebox: final state %v, model %v", snapshot, want))
	} else {
		for i := range want {
			if snapshot[i] != want[i] {
				w.errs = append(w.errs, fmt.Errorf("mutant whitebox: final state %v, model %v", snapshot, want))
				break
			}
		}
	}
	if len(w.errs) > 0 {
		return w.errs[0]
	}
	return nil
}

// LazyQueue is the mis-linearized FIFO mutant. It implements
// registry.Instance.
type LazyQueue struct {
	ann []pending
	q   []uint64
	wb  whitebox
}

// NewLazyQueue returns a mutant queue for the given number of process
// slots, with its white-box checker armed.
func NewLazyQueue(slots int, model registry.Model) *LazyQueue {
	return &LazyQueue{ann: make([]pending, slots), wb: whitebox{model: model}}
}

// drain commits announced enqueues in DESCENDING slot order — the
// mis-linearization. A correct helping engine would commit them in
// announce order.
func (q *LazyQueue) drain(e shmem.Ctx) {
	for slot := len(q.ann) - 1; slot >= 0; slot-- {
		if q.ann[slot].set {
			q.q = append(q.q, q.ann[slot].val)
			q.wb.commit(registry.Op{Code: registry.OpEnqueue, Val: q.ann[slot].val}, registry.Result{OK: true})
			q.ann[slot] = pending{}
			e.Yield()
		}
	}
}

// Apply implements registry.Instance.
func (q *LazyQueue) Apply(e shmem.Ctx, slot int, op registry.Op) registry.Result {
	switch op.Code {
	case registry.OpEnqueue:
		// Announce and respond; the splice — the operation's actual
		// linearization — happens during some later operation.
		q.ann[slot] = pending{val: op.Val, set: true}
		e.Yield()
		return registry.Result{OK: true}
	case registry.OpDequeue:
		q.drain(e)
		if len(q.q) == 0 {
			res := registry.Result{OK: false}
			q.wb.commit(op, res)
			return res
		}
		v := q.q[0]
		q.q = q.q[1:]
		res := registry.Result{OK: true, Val: v}
		q.wb.commit(op, res)
		e.Yield()
		return res
	}
	panic("mutant: lazy queue got " + op.Code.String())
}

// Snapshot implements registry.Instance; announced-but-unspliced values
// are, per the mutant's own story, already "in" the queue's future.
func (q *LazyQueue) Snapshot() []uint64 {
	out := append([]uint64(nil), q.q...)
	for slot := len(q.ann) - 1; slot >= 0; slot-- {
		if q.ann[slot].set {
			out = append(out, q.ann[slot].val)
		}
	}
	return out
}

// Underlying implements registry.Instance.
func (q *LazyQueue) Underlying() any { return q }

// CheckErr implements registry.Instance: the white-box verdict. It drains
// nothing — it judges exactly what the commit-point replay saw.
func (q *LazyQueue) CheckErr() error { return q.wb.finish(q.q) }

// LazyStack is the mis-linearized LIFO mutant: same announce-then-drain
// shape, same descending drain order. Draining pushes in descending slot
// order leaves the *earliest* announced value on top, so a pop can return
// a value whose push completed strictly before a later push that is still
// buried.
type LazyStack struct {
	ann []pending
	st  []uint64 // st[0] = top
	wb  whitebox
}

// NewLazyStack returns a mutant stack with its white-box checker armed.
func NewLazyStack(slots int, model registry.Model) *LazyStack {
	return &LazyStack{ann: make([]pending, slots), wb: whitebox{model: model}}
}

func (s *LazyStack) drain(e shmem.Ctx) {
	for slot := len(s.ann) - 1; slot >= 0; slot-- {
		if s.ann[slot].set {
			s.st = append([]uint64{s.ann[slot].val}, s.st...)
			s.wb.commit(registry.Op{Code: registry.OpPush, Val: s.ann[slot].val}, registry.Result{OK: true})
			s.ann[slot] = pending{}
			e.Yield()
		}
	}
}

// Apply implements registry.Instance.
func (s *LazyStack) Apply(e shmem.Ctx, slot int, op registry.Op) registry.Result {
	switch op.Code {
	case registry.OpPush:
		s.ann[slot] = pending{val: op.Val, set: true}
		e.Yield()
		return registry.Result{OK: true}
	case registry.OpPop:
		s.drain(e)
		if len(s.st) == 0 {
			res := registry.Result{OK: false}
			s.wb.commit(op, res)
			return res
		}
		v := s.st[0]
		s.st = s.st[1:]
		res := registry.Result{OK: true, Val: v}
		s.wb.commit(op, res)
		e.Yield()
		return res
	}
	panic("mutant: lazy stack got " + op.Code.String())
}

// Snapshot implements registry.Instance.
func (s *LazyStack) Snapshot() []uint64 {
	out := append([]uint64(nil), s.st...)
	return out
}

// Underlying implements registry.Instance.
func (s *LazyStack) Underlying() any { return s }

// CheckErr implements registry.Instance.
func (s *LazyStack) CheckErr() error { return s.wb.finish(s.st) }

package linz_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/linz"
	"repro/internal/registry"
)

// hb builds hand-crafted histories for engine unit tests.
type hb struct{ h linz.History }

// add appends one operation interval. ret < 0 marks the op pending.
func (b *hb) add(proc int, op registry.Op, res registry.Result, inv, ret int) {
	b.h.Ops = append(b.h.Ops, linz.OpRecord{
		Proc: proc, Op: op, Result: res,
		Invoke: inv, Return: ret,
		InvokeStep: uint64(inv), ReturnStep: uint64(max(ret, 0)),
		Pending: ret < 0,
	})
	if inv >= b.h.Events {
		b.h.Events = inv + 1
	}
	if ret >= b.h.Events {
		b.h.Events = ret + 1
	}
}

func (b *hb) hist() *linz.History { return &b.h }

func spec(t *testing.T, object string, cfg registry.Config) linz.Spec {
	t.Helper()
	return linz.SpecFor(registry.Lookup0(object), cfg)
}

func enq(v uint64) registry.Op  { return registry.Op{Code: registry.OpEnqueue, Val: v} }
func deq() registry.Op          { return registry.Op{Code: registry.OpDequeue} }
func push(v uint64) registry.Op { return registry.Op{Code: registry.OpPush, Val: v} }
func pop() registry.Op          { return registry.Op{Code: registry.OpPop} }

func ok() registry.Result            { return registry.Result{OK: true} }
func okVal(v uint64) registry.Result { return registry.Result{OK: true, Val: v} }
func miss() registry.Result          { return registry.Result{OK: false} }

func mustCheck(t *testing.T, h *linz.History, s linz.Spec) linz.Outcome {
	t.Helper()
	out, err := linz.Check(h, s, linz.Options{})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return out
}

// TestFIFOSequentialAccepts: a strictly sequential in-order queue history is
// linearizable and yields a full witness.
func TestFIFOSequentialAccepts(t *testing.T) {
	var b hb
	b.add(0, enq(1), ok(), 0, 1)
	b.add(1, enq(2), ok(), 2, 3)
	b.add(2, deq(), okVal(1), 4, 5)
	b.add(2, deq(), okVal(2), 6, 7)
	out := mustCheck(t, b.hist(), spec(t, "uniqueue", registry.Config{}))
	if !out.OK {
		t.Fatalf("sequential FIFO history rejected: %s", out.Summary())
	}
	if len(out.Subs) != 1 || len(out.Subs[0].Witness) != 4 {
		t.Fatalf("want 1 partition with a 4-op witness, got %+v", out.Subs)
	}
}

// TestFIFORealTimeViolationRejected: the first dequeue returns the second
// enqueue's value even though the first enqueue completed strictly before
// the second began. No overlap, so no linearization exists.
func TestFIFORealTimeViolationRejected(t *testing.T) {
	var b hb
	b.add(0, enq(1), ok(), 0, 1)
	b.add(1, enq(2), ok(), 2, 3)
	b.add(2, deq(), okVal(2), 4, 5)
	b.add(2, deq(), okVal(1), 6, 7)
	out := mustCheck(t, b.hist(), spec(t, "uniqueue", registry.Config{}))
	if out.OK {
		t.Fatal("real-time FIFO violation accepted")
	}
	cx := out.Counterexample
	if cx == nil {
		t.Fatal("no counterexample on a rejected history")
	}
	if cx.StuckOp != 2 {
		t.Errorf("stuck op = %d, want 2 (the impossible dequeue)", cx.StuckOp)
	}
	if len(cx.Prefix) != 2 || len(cx.Window) != 1 || cx.Window[0] != 2 {
		t.Errorf("prefix %v window %v, want prefix of both enqueues and window [2]", cx.Prefix, cx.Window)
	}
	if tree := cx.Tree(b.hist()); tree != cx.Tree(b.hist()) {
		t.Error("counterexample rendering is not deterministic")
	}
}

// TestFIFOOverlapAccepts: when the two enqueues overlap, either order is
// legal and the same dequeue results are fine.
func TestFIFOOverlapAccepts(t *testing.T) {
	var b hb
	b.add(0, enq(1), ok(), 0, 3)
	b.add(1, enq(2), ok(), 1, 2)
	b.add(2, deq(), okVal(2), 4, 5)
	b.add(2, deq(), okVal(1), 6, 7)
	out := mustCheck(t, b.hist(), spec(t, "uniqueue", registry.Config{}))
	if !out.OK {
		t.Fatalf("overlapping enqueues rejected: %s", out.Summary())
	}
}

// TestLIFORealTime: pops must see pushes in reverse completion order; the
// in-order variant is the violation for a stack.
func TestLIFORealTime(t *testing.T) {
	var b hb
	b.add(0, push(1), ok(), 0, 1)
	b.add(1, push(2), ok(), 2, 3)
	b.add(2, pop(), okVal(2), 4, 5)
	b.add(2, pop(), okVal(1), 6, 7)
	if out := mustCheck(t, b.hist(), spec(t, "unistack", registry.Config{})); !out.OK {
		t.Fatalf("legal LIFO history rejected: %s", out.Summary())
	}

	var bad hb
	bad.add(0, push(1), ok(), 0, 1)
	bad.add(1, push(2), ok(), 2, 3)
	bad.add(2, pop(), okVal(1), 4, 5)
	bad.add(2, pop(), okVal(2), 6, 7)
	if out := mustCheck(t, bad.hist(), spec(t, "unistack", registry.Config{})); out.OK {
		t.Fatal("LIFO real-time violation accepted")
	}
}

// TestSortedPartitions: sorted-set histories split per key; an impossible
// search on one key is pinned to that key's partition.
func TestSortedPartitions(t *testing.T) {
	cfg := registry.Config{SeedKeys: []uint64{5}}
	ins := func(k uint64) registry.Op { return registry.Op{Code: registry.OpInsert, Key: k, Val: k} }
	srch := func(k uint64) registry.Op { return registry.Op{Code: registry.OpSearch, Key: k} }
	del := func(k uint64) registry.Op { return registry.Op{Code: registry.OpDelete, Key: k} }

	var good hb
	good.add(0, ins(7), ok(), 0, 1)
	good.add(1, srch(5), ok(), 2, 3)
	good.add(0, srch(7), ok(), 4, 5)
	good.add(1, del(5), ok(), 6, 7)
	good.add(1, srch(5), miss(), 8, 9)
	out := mustCheck(t, good.hist(), spec(t, "unilist", cfg))
	if !out.OK {
		t.Fatalf("legal sorted history rejected: %s", out.Summary())
	}
	if len(out.Subs) != 2 || out.Subs[0].Name != "key=5" || out.Subs[1].Name != "key=7" {
		t.Fatalf("want partitions [key=5 key=7], got %+v", out.Subs)
	}

	var bad hb
	bad.add(0, ins(7), ok(), 0, 1)
	bad.add(1, srch(5), ok(), 2, 3)
	bad.add(0, srch(7), miss(), 4, 5) // impossible: 7 inserted, never deleted
	out = mustCheck(t, bad.hist(), spec(t, "unilist", cfg))
	if out.OK {
		t.Fatal("impossible key=7 search accepted")
	}
	if out.Counterexample.Sub != "key=7" {
		t.Errorf("failing partition %q, want key=7", out.Counterexample.Sub)
	}
}

// TestPendingOps: a pending operation may be linearized (it explains a
// later observation) or skipped entirely (the run died before it took
// effect); both readings must be available to the search.
func TestPendingOps(t *testing.T) {
	// Pending enqueue must be linearizable: the dequeue saw its value.
	var taken hb
	taken.add(0, enq(9), registry.Result{}, 0, -1)
	taken.add(1, deq(), okVal(9), 1, 2)
	if out := mustCheck(t, taken.hist(), spec(t, "uniqueue", registry.Config{})); !out.OK {
		t.Fatalf("pending enqueue not linearized to explain dequeue: %s", out.Summary())
	}

	// Pending enqueue must also be skippable: the queue looked empty.
	var skipped hb
	skipped.add(0, enq(9), registry.Result{}, 0, -1)
	skipped.add(1, deq(), miss(), 1, 2)
	if out := mustCheck(t, skipped.hist(), spec(t, "uniqueue", registry.Config{})); !out.OK {
		t.Fatalf("pending enqueue forced into the linearization: %s", out.Summary())
	}

	// A completed dequeue with no matching enqueue anywhere is unexplainable.
	var bogus hb
	bogus.add(0, deq(), okVal(5), 0, 1)
	if out := mustCheck(t, bogus.hist(), spec(t, "uniqueue", registry.Config{})); out.OK {
		t.Fatal("dequeue of a never-enqueued value accepted")
	}
}

// TestFailedMWCASIsNoOp: a failed transaction linearizes as a no-op — it
// must not advance the words and must never make the history unlinearizable.
func TestFailedMWCASIsNoOp(t *testing.T) {
	cfg := registry.Config{Words: 2, Width: 2, Initial: []uint64{10, 20}}
	mw := func(words []int, delta uint64) registry.Op {
		return registry.Op{Code: registry.OpMWCAS, Words: words, Delta: delta}
	}
	var b hb
	b.add(0, mw([]int{0, 1}, 1), okVal(10), 0, 1)
	b.add(1, mw([]int{0}, 5), miss(), 2, 3) // failed: no effect
	b.add(0, mw([]int{0}, 2), okVal(11), 4, 5)
	if out := mustCheck(t, b.hist(), spec(t, "unimwcas", cfg)); !out.OK {
		t.Fatalf("failed MWCAS broke an otherwise legal history: %s", out.Summary())
	}

	// If the failed op had been applied, word 0 would read 16 here; the
	// recorded 13 is only consistent with the no-op reading.
	var strict hb
	strict.add(0, mw([]int{0, 1}, 1), okVal(10), 0, 1)
	strict.add(1, mw([]int{0}, 5), miss(), 2, 3)
	strict.add(0, mw([]int{0}, 2), okVal(13), 4, 5)
	if out := mustCheck(t, strict.hist(), spec(t, "unimwcas", cfg)); out.OK {
		t.Fatal("history consistent only with applying a failed MWCAS was accepted")
	}
}

// TestBudget: the per-partition configuration cap surfaces as ErrBudget.
func TestBudget(t *testing.T) {
	var b hb
	b.add(0, enq(1), ok(), 0, 1)
	b.add(1, enq(2), ok(), 2, 3)
	b.add(2, deq(), okVal(1), 4, 5)
	b.add(2, deq(), okVal(2), 6, 7)
	_, err := linz.Check(b.hist(), spec(t, "uniqueue", registry.Config{}), linz.Options{MaxStates: 1})
	if !errors.Is(err, linz.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

// TestEnginePerf1000Ops: the acceptance bar — a 1,000-op 8-proc linearizable
// queue history checks in under a second. The generator interleaves
// invocations, linearization points, and responses so ops genuinely overlap
// (windows up to 8 deep) while the recorded results stay consistent.
func TestEnginePerf1000Ops(t *testing.T) {
	const totalOps = 1000
	const procs = 8
	rng := rand.New(rand.NewSource(1234))
	model := registry.Lookup0("uniqueue").NewModel(registry.Config{})

	var h linz.History
	busy := make([]int, procs) // op id per proc, -1 = idle
	for i := range busy {
		busy[i] = -1
	}
	started, completed := 0, 0
	var unlin []int  // invoked, not yet linearized
	var undone []int // linearized, not yet responded
	nextVal := uint64(1)
	depth := 0 // invoked enqueues minus invoked dequeues
	for completed < totalOps {
		var idle []int
		for p, id := range busy {
			if id < 0 {
				idle = append(idle, p)
			}
		}
		switch {
		case started < totalOps && len(idle) > 0 && (rng.Intn(3) != 0 || len(unlin)+len(undone) == 0):
			p := idle[rng.Intn(len(idle))]
			// Balanced enqueue/dequeue with bounded drift: values enqueued
			// concurrently stay mutually unordered until dequeued, so a
			// workload that lets the queue grow deep carries an exponential
			// set of live orderings. Draining regularly (like any real
			// stress workload does) collapses them.
			op := deq()
			if depth <= 0 || (depth < 8 && rng.Intn(2) == 0) {
				op = enq(nextVal)
				nextVal++
				depth++
			} else {
				depth--
			}
			id := len(h.Ops)
			h.Ops = append(h.Ops, linz.OpRecord{
				Proc: p, Op: op, Invoke: h.Events, Return: -1, Pending: true,
			})
			h.Events++
			busy[p] = id
			unlin = append(unlin, id)
			started++
		case len(unlin) > 0 && (rng.Intn(2) == 0 || started == totalOps):
			i := rng.Intn(len(unlin))
			id := unlin[i]
			unlin = append(unlin[:i], unlin[i+1:]...)
			h.Ops[id].Result = model.Apply(h.Ops[id].Op)
			undone = append(undone, id)
		case len(undone) > 0:
			i := rng.Intn(len(undone))
			id := undone[i]
			undone = append(undone[:i], undone[i+1:]...)
			h.Ops[id].Return = h.Events
			h.Ops[id].Pending = false
			h.Events++
			busy[h.Ops[id].Proc] = -1
			completed++
		}
	}

	start := time.Now()
	out := mustCheck(t, &h, spec(t, "uniqueue", registry.Config{}))
	elapsed := time.Since(start)
	if !out.OK {
		t.Fatalf("generated linearizable history rejected: %s", out.Summary())
	}
	t.Logf("%d ops, %d procs: %v, %d states, %d memo hits", totalOps, procs, elapsed, out.States, out.MemoHits)
	if elapsed > time.Second {
		t.Fatalf("1,000-op history took %v, want < 1s", elapsed)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Package linz is the repo's black-box linearizability engine.
//
// Every other correctness gate in this repository is white-box: the
// checkers in internal/check trust the paper's stated linearization points
// (the Status/Rv commit writes) and replay a sequential model at exactly
// those instants. A bug in the *choice* of linearization point — an
// operation committed outside its own invoke→response window, or helped
// operations committed in the wrong order — is invisible to them, because
// the model is replayed in whatever order the (mis-chosen) commit writes
// occur. This package closes that hole the way history-based checkers do
// (Wing–Gong, and the WGL variant used by Lowe and by porcupine): record
// only the externally observable history — who invoked what, when, and
// what came back — and search for *any* legal linearization, using nothing
// but the object's sequential specification.
//
// The pieces:
//
//   - a history Recorder (this file) that wraps a registry.Instance and
//     captures (proc, op, args, result, invoke-step, response-step)
//     intervals, riding the same Apply path the trace and metrics layers
//     observe — the object under test is never touched;
//   - a Wing–Gong/WGL search engine (engine.go) with interval partitioning
//     and memoized state hashing, so thousand-op histories check in
//     milliseconds;
//   - specs (spec.go) adapted from the sequential models every registry
//     descriptor already carries, so all core objects and baselines get
//     black-box coverage for free;
//   - randomized adversary schedules (the adversary subpackage) that
//     generate the histories to check.
package linz

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/shmem"
)

// OpRecord is one completed (or still-pending) operation interval of a
// recorded history.
type OpRecord struct {
	// Proc is the algorithm-level process slot that performed the
	// operation.
	Proc int
	// Op and Result are the abstract operation and its observed outcome
	// (Result is meaningless while Pending).
	Op     registry.Op
	Result registry.Result
	// Invoke and Return are the recorder-assigned event indices of the
	// operation's invocation and response. The simulator executes exactly
	// one process at any real instant, so these indices totally order all
	// invocation and response events: operation A precedes operation B in
	// real time iff A.Return < B.Invoke. Return is -1 while Pending.
	Invoke, Return int
	// InvokeStep and ReturnStep are the global scheduler slice counts at
	// invocation and response, correlating the interval with trace spans.
	InvokeStep, ReturnStep uint64
	// Pending marks an operation whose response was never recorded (the
	// run was aborted mid-operation). A pending operation may have taken
	// effect or not; the engine tries both.
	Pending bool
}

// History is a recorded execution: the operation intervals in invocation
// order.
type History struct {
	Ops []OpRecord
	// Events is the total number of invoke/response events assigned.
	Events int
}

// Recorder captures a history from a running simulation. It is installed
// by wrapping the instance under test (Record); the wrapper notes the
// invocation before delegating to the real Apply and the response after,
// so recording never perturbs the object or the schedule (no simulated
// time is charged).
type Recorder struct {
	h History
}

// recorded is the instrumented instance handed back by Record.
type recorded struct {
	inner registry.Instance
	rec   *Recorder
}

// Record wraps inst so every Apply is captured in the returned recorder's
// history. Drive the simulation through the returned instance.
func Record(inst registry.Instance) (*Recorder, registry.Instance) {
	rec := &Recorder{}
	return rec, &recorded{inner: inst, rec: rec}
}

func (r *recorded) Apply(e shmem.Ctx, slot int, op registry.Op) registry.Result {
	id := r.rec.invoke(slot, op, stepOf(e))
	res := r.inner.Apply(e, slot, op)
	r.rec.response(id, res, stepOf(e))
	return res
}

// recordedShared is the concurrently-driven recorder wrapper (RecordShared).
type recordedShared struct {
	mu    sync.Mutex
	inner registry.Instance
	rec   *Recorder
}

// RecordShared is Record for instances driven by concurrent goroutines (the
// native backend). Event indices are assigned under a mutex, with the
// invocation recorded at Apply entry and the response at Apply exit; the
// wrapped operation runs entirely between its two record points, so the
// recorded event order is a real-time order for the recorded history and
// the Wing–Gong engine's precedence test (A.Return < B.Invoke) remains
// exact off-simulator.
func RecordShared(inst registry.Instance) (*Recorder, registry.Instance) {
	rec := &Recorder{}
	return rec, &recordedShared{inner: inst, rec: rec}
}

func (r *recordedShared) Apply(e shmem.Ctx, slot int, op registry.Op) registry.Result {
	r.mu.Lock()
	id := r.rec.invoke(slot, op, stepOf(e))
	r.mu.Unlock()
	res := r.inner.Apply(e, slot, op)
	r.mu.Lock()
	r.rec.response(id, res, stepOf(e))
	r.mu.Unlock()
	return res
}

func (r *recordedShared) Snapshot() []uint64 { return r.inner.Snapshot() }
func (r *recordedShared) Underlying() any    { return r.inner.Underlying() }
func (r *recordedShared) CheckErr() error    { return r.inner.CheckErr() }

// stepOf reads the global slice count when the context is the simulator's
// (for trace-span correlation); other backends have no slice clock and
// record step 0.
func stepOf(e shmem.Ctx) uint64 {
	if se, ok := e.(interface{ Sim() *sched.Sim }); ok {
		return se.Sim().Slices()
	}
	return 0
}

func (r *recorded) Snapshot() []uint64 { return r.inner.Snapshot() }
func (r *recorded) Underlying() any    { return r.inner.Underlying() }
func (r *recorded) CheckErr() error    { return r.inner.CheckErr() }

func (r *Recorder) invoke(slot int, op registry.Op, step uint64) int {
	id := len(r.h.Ops)
	r.h.Ops = append(r.h.Ops, OpRecord{
		Proc: slot, Op: op,
		Invoke: r.h.Events, Return: -1, InvokeStep: step,
		Pending: true,
	})
	r.h.Events++
	return id
}

func (r *Recorder) response(id int, res registry.Result, step uint64) {
	rec := &r.h.Ops[id]
	rec.Result = res
	rec.Return = r.h.Events
	rec.ReturnStep = step
	rec.Pending = false
	r.h.Events++
}

// History returns the recorded history. Operations whose response never
// arrived (aborted runs) remain marked Pending.
func (r *Recorder) History() *History { return &r.h }

// Procs returns the number of distinct process slots appearing in the
// history.
func (h *History) Procs() int {
	seen := map[int]bool{}
	for i := range h.Ops {
		seen[h.Ops[i].Proc] = true
	}
	return len(seen)
}

// FormatOp renders an abstract operation the way histories and
// counterexamples print it.
func FormatOp(op registry.Op) string {
	switch op.Code {
	case registry.OpInsert:
		return fmt.Sprintf("insert key=%d val=%d", op.Key, op.Val)
	case registry.OpDelete, registry.OpSearch:
		return fmt.Sprintf("%s key=%d", op.Code, op.Key)
	case registry.OpEnqueue, registry.OpPush:
		return fmt.Sprintf("%s val=%d", op.Code, op.Val)
	case registry.OpDequeue, registry.OpPop:
		return op.Code.String()
	case registry.OpMWCAS:
		return fmt.Sprintf("mwcas words=%v delta=%d", op.Words, op.Delta)
	}
	return op.Code.String()
}

// formatResult renders an operation's outcome.
func (rec *OpRecord) formatResult() string {
	if rec.Pending {
		return "pending"
	}
	switch rec.Op.Code {
	case registry.OpDequeue, registry.OpPop:
		if rec.Result.OK {
			return fmt.Sprintf("ok val=%d", rec.Result.Val)
		}
		return "empty"
	case registry.OpMWCAS:
		if rec.Result.OK {
			return fmt.Sprintf("ok val=%d", rec.Result.Val)
		}
		return "failed"
	default:
		if rec.Result.OK {
			return "ok"
		}
		return "miss"
	}
}

// line renders one operation interval; the shared form used by the history
// dump and the counterexample tree.
func (rec *OpRecord) line(id int) string {
	if rec.Pending {
		return fmt.Sprintf("op#%-3d slot%d  %-24s -> %-10s e[%d,?] step[%d,?]",
			id, rec.Proc, FormatOp(rec.Op), rec.formatResult(), rec.Invoke, rec.InvokeStep)
	}
	return fmt.Sprintf("op#%-3d slot%d  %-24s -> %-10s e[%d,%d] step[%d,%d]",
		id, rec.Proc, FormatOp(rec.Op), rec.formatResult(),
		rec.Invoke, rec.Return, rec.InvokeStep, rec.ReturnStep)
}

// WriteText renders the history deterministically, one operation interval
// per line in invocation order. Identical runs render byte-identically.
func (h *History) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "history: %d ops, %d procs, %d events\n", len(h.Ops), h.Procs(), h.Events); err != nil {
		return err
	}
	for i := range h.Ops {
		if _, err := fmt.Fprintf(w, "  %s\n", h.Ops[i].line(i)); err != nil {
			return err
		}
	}
	return nil
}

// Text renders the history as WriteText would.
func (h *History) Text() string {
	var sb strings.Builder
	if err := h.WriteText(&sb); err != nil {
		return sb.String()
	}
	return sb.String()
}

package linz

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/registry"
)

// The search engine: Wing–Gong linearizability checking in the WGL
// formulation (Lowe's linked-list variant, the one porcupine uses).
//
// The history's invoke/response events form a total order. The search
// walks that order left to right; at a call event it may speculatively
// linearize the operation *now* (apply it to the model, check the recorded
// result, lift the call/response pair out of the list, restart from the
// front), or skip it; reaching a response event whose call was never
// linearized proves the current speculation wrong and forces a backtrack.
// The two levers that keep this exponential search flat in practice:
//
//   - interval partitioning (spec.go): independent sub-histories are
//     searched separately, so the bitset and the state stay tiny;
//   - memoized state hashing: a configuration is (set of linearized ops,
//     model state); revisiting an equivalent configuration by a different
//     linearization order is cut off. Equality is verified structurally
//     (bitset compare + model snapshot compare), the hash only buckets.

// ErrBudget is returned (wrapped) by Check when a partition's search
// exceeds Options.MaxStates distinct configurations.
var ErrBudget = errors.New("linz: search budget exceeded")

// Options bounds a check.
type Options struct {
	// MaxStates caps the distinct configurations explored per partition;
	// 0 means DefaultMaxStates.
	MaxStates int
}

// DefaultMaxStates is the per-partition configuration cap when
// Options.MaxStates is zero.
const DefaultMaxStates = 4_000_000

// SubOutcome is the verdict for one partition.
type SubOutcome struct {
	// Name is the partition name from the spec.
	Name string
	// Witness, for a linearizable partition, lists the partition's
	// operations (as History.Ops indices) in a legal linearization order.
	Witness []int
	// States and MemoHits count explored configurations and memo cutoffs.
	States, MemoHits int
}

// Counterexample pins down why a history is not linearizable: the deepest
// linearizable prefix the search found, and the window of operations that
// admit no legal order beyond it.
type Counterexample struct {
	// Sub names the failing partition.
	Sub string
	// Prefix is the deepest linearizable prefix reached (History.Ops
	// indices in linearization order).
	Prefix []int
	// Window holds the unlinearizable operations: members of the failing
	// partition outside the prefix that had been invoked by the time the
	// search got stuck, in invocation order.
	Window []int
	// StuckOp is the operation whose response event forced the final
	// backtrack from the deepest prefix — the earliest response the
	// engine could not explain.
	StuckOp int
}

// Outcome is the engine's verdict on a history.
type Outcome struct {
	// OK reports that every partition is linearizable.
	OK bool
	// Subs holds the per-partition outcomes for partitions that were
	// checked (on failure, partitions after the failing one are not).
	Subs []SubOutcome
	// Counterexample is set iff !OK.
	Counterexample *Counterexample
	// States and MemoHits aggregate over all checked partitions.
	States, MemoHits int
}

// Check searches for a linearization of h under spec. A nil error with
// Outcome.OK == false means the history is definitely not linearizable;
// an ErrBudget error means the search gave up.
func Check(h *History, spec Spec, opts Options) (Outcome, error) {
	max := opts.MaxStates
	if max <= 0 {
		max = DefaultMaxStates
	}
	var out Outcome
	out.OK = true
	for _, sub := range spec.Partition(h) {
		so, cx, err := checkSub(h, sub, max, true)
		out.States += so.States
		out.MemoHits += so.MemoHits
		if err != nil {
			return out, fmt.Errorf("%s partition %s: %w", spec.Object, sub.Name, err)
		}
		if cx != nil {
			// The order prune can cut the search off before it has built an
			// informative prefix. It is sound (the verdict cannot differ),
			// so re-search without it purely for counterexample quality,
			// falling back to the pruned counterexample if the unpruned
			// search blows the budget.
			if so2, cx2, err2 := checkSub(h, sub, max, false); err2 == nil && cx2 != nil {
				so = SubOutcome{Name: so.Name, States: so.States + so2.States, MemoHits: so.MemoHits + so2.MemoHits}
				out.States += so2.States
				out.MemoHits += so2.MemoHits
				cx = cx2
			}
		}
		out.Subs = append(out.Subs, so)
		if cx != nil {
			out.OK = false
			out.Counterexample = cx
			break
		}
	}
	return out, nil
}

// entry is one node of the WGL event list: a call or response event of one
// partition-local operation.
type entry struct {
	idx        int // partition-local op index
	call       bool
	match      *entry // call → its response entry (nil when pending)
	prev, next *entry
}

// lift removes a linearized operation's call and response from the list;
// unlift restores them. Restores happen in LIFO order, so the stored
// prev/next pointers are valid (the neighbors are back in place).
func lift(c *entry) {
	c.prev.next = c.next
	if c.next != nil {
		c.next.prev = c.prev
	}
	if r := c.match; r != nil {
		r.prev.next = r.next
		if r.next != nil {
			r.next.prev = r.prev
		}
	}
}

func unlift(c *entry) {
	if r := c.match; r != nil {
		r.prev.next = r
		if r.next != nil {
			r.next.prev = r
		}
	}
	c.prev.next = c
	if c.next != nil {
		c.next.prev = c
	}
}

// buildList threads the partition's events into a doubly-linked list in
// event order, returning the head sentinel.
func buildList(h *History, ops []int) *entry {
	events := make([]*entry, 0, 2*len(ops))
	for li, gi := range ops {
		rec := &h.Ops[gi]
		c := &entry{idx: li, call: true}
		events = append(events, c)
		if !rec.Pending {
			r := &entry{idx: li}
			c.match = r
			events = append(events, r)
		}
	}
	// Sort by the recorder's global event index (unique per history).
	time := func(e *entry) int {
		rec := &h.Ops[ops[e.idx]]
		if e.call {
			return rec.Invoke
		}
		return rec.Return
	}
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && time(events[j]) < time(events[j-1]); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	head := &entry{idx: -1}
	prev := head
	for _, e := range events {
		prev.next = e
		e.prev = prev
		prev = e
	}
	return head
}

// memoEnt is one stored configuration; the map key is its hash, equality
// is verified structurally.
type memoEnt struct {
	bits []uint64
	snap []uint64
}

func memoKey(bits []uint64, stateHash uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, w := range bits {
		h = (h ^ w) * 1099511628211
	}
	return (h ^ stateHash) * 1099511628211
}

// allSet reports whether every listed op is linearized in bits.
func allSet(bits []uint64, req []int32) bool {
	for _, r := range req {
		if bits[r/64]&(1<<(uint(r)%64)) == 0 {
			return false
		}
	}
	return true
}

func sameBits(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSnap(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tryApply speculatively linearizes rec against state. It returns the
// successor model (which is state itself when the operation is a no-op)
// and whether the recorded result is consistent.
func tryApply(state registry.Model, rec *OpRecord) (registry.Model, bool) {
	if rec.Pending {
		// A pending operation that we choose to linearize took effect;
		// its (never observed) result is unconstrained.
		ns := state.Fork()
		ns.Apply(rec.Op)
		return ns, true
	}
	if rec.Op.Code == registry.OpMWCAS && !rec.Result.OK {
		// A failed transaction changed nothing and read inconsistent
		// words; linearize it as a no-op.
		return state, true
	}
	ns := state.Fork()
	got := ns.Apply(rec.Op)
	if got.OK != rec.Result.OK {
		return nil, false
	}
	if rec.Result.OK && got.Val != rec.Result.Val {
		switch rec.Op.Code {
		case registry.OpDequeue, registry.OpPop, registry.OpMWCAS:
			return nil, false
		}
	}
	return ns, true
}

// buildMustPrecede precomputes sound order constraints that collapse the
// search's branching on interchangeable operations. mustPrecede[i] lists
// partition-local ops that must be linearized before op i may be; nil when
// no constraint applies. All constraints are witness-preserving: they only
// prune orders no witness needs, never orders some witness requires.
//
// For FIFO and LIFO partitions whose enqueued/pushed values are pairwise
// distinct and which contain no pending operations:
//
//   - FIFO dequeue-order forcing: the sequence of dequeued values IS the
//     queue order, so if deq(w) precedes deq(v) in real time, every witness
//     linearizes enq(w) before enq(v).
//   - Canonical order for unobserved values (FIFO and LIFO): two values
//     that are never dequeued/popped sit in the structure forever — no
//     operation's result can depend on their relative order (in particular
//     no empty-result is possible while they are inside), so fixing their
//     enqueue order to invocation order loses no witness.
//
// Pending operations void both arguments (a pending dequeue may remove an
// "unobserved" value), so any pending op disables the prune.
func buildMustPrecede(h *History, ops []int) [][]int32 {
	var enqCode, deqCode registry.OpCode
	for _, gi := range ops {
		rec := &h.Ops[gi]
		if rec.Pending {
			return nil
		}
		switch rec.Op.Code {
		case registry.OpEnqueue, registry.OpDequeue:
			if enqCode == 0 {
				enqCode, deqCode = registry.OpEnqueue, registry.OpDequeue
			}
		case registry.OpPush, registry.OpPop:
			if enqCode == 0 {
				enqCode, deqCode = registry.OpPush, registry.OpPop
			}
		default:
			return nil
		}
	}
	if enqCode == 0 {
		return nil
	}
	enqOf := map[uint64]int{} // value -> local enqueue index
	for li, gi := range ops {
		rec := &h.Ops[gi]
		if rec.Op.Code == enqCode {
			if _, dup := enqOf[rec.Op.Val]; dup {
				return nil // duplicate values: the arguments need uniqueness
			}
			enqOf[rec.Op.Val] = li
		}
	}
	deqOf := map[uint64]int{} // value -> local dequeue index
	for li, gi := range ops {
		rec := &h.Ops[gi]
		if rec.Op.Code == deqCode && rec.Result.OK {
			if _, dup := deqOf[rec.Result.Val]; dup {
				return nil
			}
			deqOf[rec.Result.Val] = li
		}
	}
	must := make([][]int32, len(ops))
	if enqCode == registry.OpEnqueue {
		// Dequeue-order forcing (queues only; pop order does not determine
		// push order).
		for v, ev := range enqOf {
			dv, ok := deqOf[v]
			if !ok {
				continue
			}
			for w, ew := range enqOf {
				if v == w {
					continue
				}
				dw, ok := deqOf[w]
				if !ok {
					continue
				}
				if h.Ops[ops[dw]].Return < h.Ops[ops[dv]].Invoke {
					must[ev] = append(must[ev], int32(ew))
				}
			}
		}
	}
	// Canonical invocation order among never-removed values.
	var unseen []int
	for v, ev := range enqOf {
		if _, ok := deqOf[v]; !ok {
			unseen = append(unseen, ev)
		}
	}
	sort.Slice(unseen, func(i, j int) bool {
		return h.Ops[ops[unseen[i]]].Invoke < h.Ops[ops[unseen[j]]].Invoke
	})
	for i := 1; i < len(unseen); i++ {
		must[unseen[i]] = append(must[unseen[i]], int32(unseen[i-1]))
	}
	return must
}

// checkSub runs the WGL search on one partition.
func checkSub(h *History, sub Sub, maxStates int, usePrune bool) (SubOutcome, *Counterexample, error) {
	so := SubOutcome{Name: sub.Name}
	m := len(sub.Ops)
	if m == 0 {
		return so, nil, nil
	}
	head := buildList(h, sub.Ops)
	var must [][]int32
	if usePrune {
		must = buildMustPrecede(h, sub.Ops)
	}
	state := sub.New()
	bits := make([]uint64, (m+63)/64)
	cache := map[uint64][]memoEnt{}

	type frame struct {
		e    *entry
		prev registry.Model
	}
	var stack []frame

	// Counterexample bookkeeping: deepest prefix reached (the empty prefix
	// counts), and the first response that forced a backtrack from that
	// depth.
	bestDepth := 0
	var bestPrefix []int
	stuck := -1

	e := head.next
	for {
		if e == nil {
			// Walked past the end: everything except (possibly) skipped
			// pending calls is linearized.
			so.Witness = make([]int, len(stack))
			for i, f := range stack {
				so.Witness[i] = sub.Ops[f.e.idx]
			}
			return so, nil, nil
		}
		if e.call {
			rec := &h.Ops[sub.Ops[e.idx]]
			if must != nil && !allSet(bits, must[e.idx]) {
				e = e.next
				continue
			}
			if ns, ok := tryApply(state, rec); ok {
				bits[e.idx/64] |= 1 << (e.idx % 64)
				key := memoKey(bits, ns.Hash())
				if hit := lookup(cache, key, bits, ns); hit {
					so.MemoHits++
					bits[e.idx/64] &^= 1 << (e.idx % 64)
				} else {
					insert(cache, key, bits, ns)
					so.States++
					if so.States > maxStates {
						return so, nil, fmt.Errorf("%w (%d configurations)", ErrBudget, so.States)
					}
					stack = append(stack, frame{e: e, prev: state})
					state = ns
					lift(e)
					if len(stack) > bestDepth {
						bestDepth = len(stack)
						bestPrefix = bestPrefix[:0]
						for _, f := range stack {
							bestPrefix = append(bestPrefix, sub.Ops[f.e.idx])
						}
						stuck = -1
					}
					e = head.next
					continue
				}
			}
			e = e.next
			continue
		}
		// Response event whose call is not linearized: the speculation so
		// far cannot explain this response.
		if stuck < 0 && len(stack) == bestDepth {
			stuck = sub.Ops[e.idx]
		}
		if len(stack) == 0 {
			return so, counterexample(h, sub, bestPrefix, stuck), nil
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		state = f.prev
		bits[f.e.idx/64] &^= 1 << (f.e.idx % 64)
		unlift(f.e)
		e = f.e.next
	}
}

func lookup(cache map[uint64][]memoEnt, key uint64, bits []uint64, state registry.Model) bool {
	ents := cache[key]
	if len(ents) == 0 {
		return false
	}
	snap := state.Snapshot()
	for _, ent := range ents {
		if sameBits(ent.bits, bits) && sameSnap(ent.snap, snap) {
			return true
		}
	}
	return false
}

func insert(cache map[uint64][]memoEnt, key uint64, bits []uint64, state registry.Model) {
	cache[key] = append(cache[key], memoEnt{
		bits: append([]uint64(nil), bits...),
		snap: state.Snapshot(),
	})
}

// counterexample assembles the failing window: partition members outside
// the deepest prefix that were invoked no later than the stuck response.
func counterexample(h *History, sub Sub, prefix []int, stuckOp int) *Counterexample {
	inPrefix := map[int]bool{}
	for _, gi := range prefix {
		inPrefix[gi] = true
	}
	horizon := h.Events
	if stuckOp >= 0 {
		horizon = h.Ops[stuckOp].Return
	}
	var window []int
	for _, gi := range sub.Ops {
		if !inPrefix[gi] && h.Ops[gi].Invoke <= horizon {
			window = append(window, gi)
		}
	}
	return &Counterexample{
		Sub:     sub.Name,
		Prefix:  append([]int(nil), prefix...),
		Window:  window,
		StuckOp: stuckOp,
	}
}

// Tree renders the counterexample as a span tree: the linearizable prefix,
// then the window of operations that admit no order, then the response the
// search could not explain. The rendering is deterministic.
func (c *Counterexample) Tree(h *History) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "non-linearizable window (partition %s): %d op(s) admit no legal order\n",
		c.Sub, len(c.Window))
	fmt.Fprintf(&sb, "├─ linearizable prefix (%d op(s)):\n", len(c.Prefix))
	for _, gi := range c.Prefix {
		fmt.Fprintf(&sb, "│    %s\n", h.Ops[gi].line(gi))
	}
	sb.WriteString("├─ window:\n")
	for _, gi := range c.Window {
		fmt.Fprintf(&sb, "│    %s\n", h.Ops[gi].line(gi))
	}
	if c.StuckOp >= 0 {
		fmt.Fprintf(&sb, "└─ stuck at: op#%d response (event %d): no linearization of the window explains it\n",
			c.StuckOp, h.Ops[c.StuckOp].Return)
	} else {
		sb.WriteString("└─ stuck at: end of history\n")
	}
	return sb.String()
}

// Summary renders the outcome in one line.
func (o Outcome) Summary() string {
	if o.OK {
		return fmt.Sprintf("linearizable: %d partition(s), %d state(s) explored, %d memo hit(s)",
			len(o.Subs), o.States, o.MemoHits)
	}
	return fmt.Sprintf("NOT linearizable: partition %s (%d state(s) explored)",
		o.Counterexample.Sub, o.States)
}

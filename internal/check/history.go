// Package check contains the linearizability checkers used to validate the
// paper's algorithms against shadow models.
//
// The checkers are pure observers: they watch shared-memory writes through
// shmem's observer hook and maintain a shadow copy of the abstract state,
// updated exactly at the algorithms' linearization points (the Status/Rv
// commit writes and structural CASes). The algorithms under test carry no
// instrumentation. Each checker exposes:
//
//   - a continuous invariant, verified on every write ("the concrete state
//     always maps to the shadow state"), and
//   - per-operation validation ("this operation's result was correct at
//     some instant within its execution window").
package check

import (
	"fmt"
	"slices"
	"sort"
)

// histEntry is one shadow value change of a word.
type histEntry struct {
	step uint64
	val  uint32
}

// wordHist records the shadow-value history of a set of words so that
// operation results can be validated against any instant of their window.
type wordHist struct {
	hist map[int][]histEntry // keyed by int(shmem.Addr)
}

func newWordHist() *wordHist {
	return &wordHist{hist: make(map[int][]histEntry)}
}

// seed records a word's initial value at step 0.
func (h *wordHist) seed(addr int, val uint32) {
	h.hist[addr] = append(h.hist[addr], histEntry{step: 0, val: val})
}

// set records that the word's shadow value changed at the given step.
func (h *wordHist) set(addr int, step uint64, val uint32) {
	h.hist[addr] = append(h.hist[addr], histEntry{step: step, val: val})
}

// at returns the shadow value of a word at the given step.
func (h *wordHist) at(addr int, step uint64) (uint32, error) {
	entries := h.hist[addr]
	if len(entries) == 0 {
		return 0, fmt.Errorf("check: word %d has no history", addr)
	}
	// First entry with step > requested; the predecessor is current.
	i := sort.Search(len(entries), func(i int) bool { return entries[i].step > step })
	if i == 0 {
		return 0, fmt.Errorf("check: word %d has no value at step %d", addr, step)
	}
	return entries[i-1].val, nil
}

// current returns the latest shadow value of a word.
func (h *wordHist) current(addr int) (uint32, error) {
	entries := h.hist[addr]
	if len(entries) == 0 {
		return 0, fmt.Errorf("check: word %d has no history", addr)
	}
	return entries[len(entries)-1].val, nil
}

// changesIn returns every step in (from, to] at which any of the given words
// changed, plus from itself, sorted ascending. These are the candidate
// linearization instants for an operation whose window is [from, to].
func (h *wordHist) changesIn(addrs []int, from, to uint64) []uint64 {
	steps := []uint64{from}
	for _, a := range addrs {
		for _, en := range h.hist[a] {
			if en.step > from && en.step <= to {
				steps = append(steps, en.step)
			}
		}
	}
	slices.Sort(steps)
	return steps
}

package check

import (
	"fmt"

	"repro/internal/shmem"
)

// FIFOSnapshotter is any queue whose current contents can be read directly
// from memory in FIFO order.
type FIFOSnapshotter interface {
	Snapshot() []uint64
}

// SnapshotAppender is an optional extension implemented by objects whose
// snapshot can be appended to a caller-provided buffer. Per-write checkers
// detect it and ping-pong two scratch buffers across the whole run instead
// of allocating a fresh snapshot slice on every observed write.
type SnapshotAppender interface {
	AppendSnapshot(dst []uint64) []uint64
}

// snapFunc returns a buffer-reusing snapshot function for q, falling back
// to the allocating Snapshot when q lacks AppendSnapshot.
func snapFunc(q FIFOSnapshotter) func(dst []uint64) []uint64 {
	if sa, ok := q.(SnapshotAppender); ok {
		return sa.AppendSnapshot
	}
	return func(dst []uint64) []uint64 { return append(dst, q.Snapshot()...) }
}

// SnapshotRegioner is an optional extension: objects whose snapshot is a
// pure function of a fixed address range report the range, and per-write
// checkers skip the snapshot diff entirely for writes outside it (engine
// bookkeeping: announcements, help rings, CCAS descriptors, ...).
type SnapshotRegioner interface {
	SnapshotRegion() (lo, hi shmem.Addr)
}

// snapRegion returns q's snapshot-determining address range, or ok=false
// when q does not report one (every write must then be diffed).
func snapRegion(q FIFOSnapshotter) (lo, hi shmem.Addr, ok bool) {
	if sr, o := q.(SnapshotRegioner); o {
		lo, hi = sr.SnapshotRegion()
		return lo, hi, true
	}
	return 0, 0, false
}

// FIFOChecker validates a concurrent FIFO queue by structural-event
// claiming, assuming *unique values* (the test harness enqueues distinct
// values).
//
// On every non-Store write the checker snapshots the queue. Each change
// must be exactly one of: a value appended at the tail (an enqueue's
// splice) or the head value removed (a dequeue's unsplice). Appends are
// claimed by successful enqueues, removals by successful dequeues — which
// must also return the removed value — within their operation windows.
// Pop order equals linearization order, so per-producer FIFO follows from
// event order and is checked by the harness via value construction.
type FIFOChecker struct {
	queue        FIFOSnapshotter
	snap         func(dst []uint64) []uint64
	regLo, regHi shmem.Addr
	hasReg       bool
	mem          *shmem.Mem

	last    []uint64
	buf     []uint64          // spare snapshot buffer, swapped with last each write
	pushes  map[uint64]uint64 // value -> push step (unclaimed)
	pops    map[uint64]uint64 // value -> pop step (unclaimed)
	popSeq  []uint64          // values in pop order
	ops     fifoOps
	errs    []error
	maxErrs int

	// Emptiness trail, for judging empty dequeues: the queue's state is
	// piecewise constant between observed writes, so "was the queue empty
	// at some instant of [begin, end]" reduces to one flag and one step.
	emptyNow  bool   // the queue is empty right now
	emptyAsOf uint64 // most recent step instant at which it was empty
}

type fifoOp struct {
	active bool
	enq    bool
	val    uint64 // the enqueued value (enq only)
	begin  uint64
}

// fifoOps is a dense per-slot table of in-flight operations, indexed by
// process slot. A map of per-op heap nodes would allocate on every Begin;
// the table allocates only when a slot index first appears.
type fifoOps []fifoOp

func (t *fifoOps) set(p int, op fifoOp) {
	for len(*t) <= p {
		*t = append(*t, fifoOp{})
	}
	(*t)[p] = op
}

// get returns the in-flight op of slot p, or nil if none is registered.
func (t fifoOps) get(p int) *fifoOp {
	if p < 0 || p >= len(t) || !t[p].active {
		return nil
	}
	return &t[p]
}

// NewFIFOChecker installs a checker; the queue must be empty or seeded with
// unique values.
func NewFIFOChecker(q FIFOSnapshotter, m *shmem.Mem) *FIFOChecker {
	c := &FIFOChecker{
		queue:   q,
		snap:    snapFunc(q),
		mem:     m,
		pushes:  make(map[uint64]uint64),
		pops:    make(map[uint64]uint64),
		maxErrs: 20,
	}
	c.regLo, c.regHi, c.hasReg = snapRegion(q)
	c.last = c.snap(nil)
	c.emptyNow = len(c.last) == 0
	m.AddObserver(c)
	return c
}

var _ shmem.Observer = (*FIFOChecker)(nil)

// OnWrite implements shmem.Observer.
func (c *FIFOChecker) OnWrite(ev shmem.WriteEvent) {
	if len(c.errs) >= c.maxErrs {
		return
	}
	if ev.Kind == shmem.OpStore {
		return
	}
	if c.hasReg && (ev.Addr < c.regLo || ev.Addr >= c.regHi) {
		return // outside the snapshot region: the queue cannot have changed
	}
	now := c.snap(c.buf[:0])
	switch {
	case len(now) == len(c.last):
		for i := range now {
			if now[i] != c.last[i] {
				c.fail(fmt.Errorf("check: step %d: queue mutated in place: %v -> %v", ev.Step, c.last, now))
				break
			}
		}
	case len(now) == len(c.last)+1:
		for i := range c.last {
			if now[i] != c.last[i] {
				c.fail(fmt.Errorf("check: step %d: append changed the prefix: %v -> %v", ev.Step, c.last, now))
				break
			}
		}
		v := now[len(now)-1]
		if _, dup := c.pushes[v]; dup {
			c.fail(fmt.Errorf("check: step %d: value %d appended twice", ev.Step, v))
		}
		c.pushes[v] = ev.Step
	case len(now) == len(c.last)-1:
		for i := range now {
			if now[i] != c.last[i+1] {
				c.fail(fmt.Errorf("check: step %d: removal was not from the head: %v -> %v", ev.Step, c.last, now))
				break
			}
		}
		v := c.last[0]
		c.pops[v] = ev.Step
		c.popSeq = append(c.popSeq, v)
	default:
		c.fail(fmt.Errorf("check: step %d: one write changed the length by %d: %v -> %v", ev.Step, len(now)-len(c.last), c.last, now))
	}
	if len(now) == 0 {
		c.emptyNow, c.emptyAsOf = true, ev.Step
	} else if c.emptyNow {
		// An empty run just ended: it extended from emptyAsOf up to this
		// write's instant (inclusive boundary, erring toward acceptance).
		c.emptyNow, c.emptyAsOf = false, ev.Step
	}
	c.buf, c.last = c.last, now
}

// BeginEnq registers an enqueue of val by process p.
func (c *FIFOChecker) BeginEnq(p int, val uint64) {
	c.ops.set(p, fifoOp{active: true, enq: true, val: val, begin: c.mem.Steps()})
}

// BeginDeq registers a dequeue by process p.
func (c *FIFOChecker) BeginDeq(p int) {
	c.ops.set(p, fifoOp{active: true, begin: c.mem.Steps()})
}

// EndEnq validates the completed enqueue.
func (c *FIFOChecker) EndEnq(p int) {
	op := c.ops.get(p)
	if op == nil || !op.enq {
		c.fail(fmt.Errorf("check: EndEnq(%d) without a registered enqueue", p))
		return
	}
	op.active = false
	end := c.mem.Steps()
	step, ok := c.pushes[op.val]
	if !ok || step < op.begin || step > end {
		c.fail(fmt.Errorf("check: process %d enqueued %d but no matching append event lies in [%d,%d]", p, op.val, op.begin, end))
		return
	}
	delete(c.pushes, op.val) // claimed
}

// EndDeq validates the completed dequeue and its returned value.
func (c *FIFOChecker) EndDeq(p int, val uint64, ok bool) {
	op := c.ops.get(p)
	if op == nil || op.enq {
		c.fail(fmt.Errorf("check: EndDeq(%d) without a registered dequeue", p))
		return
	}
	op.active = false
	end := c.mem.Steps()
	if !ok {
		// Empty: linearizable iff the queue was empty at some instant of
		// [begin, end]. The emptiness trail answers that exactly — the
		// queue is empty now, or its most recent empty instant lies inside
		// the window. (An earlier heuristic keyed on begin == 0 flagged
		// windows that a concurrent enqueue filled mid-flight; the swarm's
		// off-default op scripts exposed that as a false positive.)
		if !c.emptyNow && c.emptyAsOf < op.begin {
			c.fail(fmt.Errorf("check: process %d reported an empty dequeue but the queue was continuously nonempty over [%d,%d]", p, op.begin, end))
		}
		return
	}
	step, found := c.pops[val]
	if !found || step < op.begin || step > end {
		c.fail(fmt.Errorf("check: process %d dequeued %d but no matching removal event lies in [%d,%d]", p, val, op.begin, end))
		return
	}
	delete(c.pops, val) // claimed
}

// Finish verifies every structural event was claimed.
func (c *FIFOChecker) Finish() {
	for p := range c.ops {
		if c.ops[p].active {
			c.fail(fmt.Errorf("check: process %d has an unreported operation", p))
		}
	}
	for v, step := range c.pops {
		c.fail(fmt.Errorf("check: removal of %d at step %d was never claimed by a dequeue", v, step))
	}
}

// PopOrder returns the values removed so far, in linearization order, for
// harness-side FIFO assertions.
func (c *FIFOChecker) PopOrder() []uint64 { return c.popSeq }

// Err returns accumulated violations.
func (c *FIFOChecker) Err() error {
	if len(c.errs) == 0 {
		return nil
	}
	return fmt.Errorf("check: %d violations; first: %v", len(c.errs), c.errs[0])
}

func (c *FIFOChecker) fail(err error) {
	if len(c.errs) < c.maxErrs {
		c.errs = append(c.errs, err)
	}
}

package check

import (
	"fmt"

	"repro/internal/shmem"
)

// FIFOSnapshotter is any queue whose current contents can be read directly
// from memory in FIFO order.
type FIFOSnapshotter interface {
	Snapshot() []uint64
}

// FIFOChecker validates a concurrent FIFO queue by structural-event
// claiming, assuming *unique values* (the test harness enqueues distinct
// values).
//
// On every non-Store write the checker snapshots the queue. Each change
// must be exactly one of: a value appended at the tail (an enqueue's
// splice) or the head value removed (a dequeue's unsplice). Appends are
// claimed by successful enqueues, removals by successful dequeues — which
// must also return the removed value — within their operation windows.
// Pop order equals linearization order, so per-producer FIFO follows from
// event order and is checked by the harness via value construction.
type FIFOChecker struct {
	queue FIFOSnapshotter
	mem   *shmem.Mem

	last    []uint64
	pushes  map[uint64]uint64 // value -> push step (unclaimed)
	pops    map[uint64]uint64 // value -> pop step (unclaimed)
	popSeq  []uint64          // values in pop order
	ops     map[int]*fifoOp
	errs    []error
	maxErrs int
}

type fifoOp struct {
	enq   bool
	val   uint64 // the enqueued value (enq only)
	begin uint64
}

// NewFIFOChecker installs a checker; the queue must be empty or seeded with
// unique values.
func NewFIFOChecker(q FIFOSnapshotter, m *shmem.Mem) *FIFOChecker {
	c := &FIFOChecker{
		queue:   q,
		mem:     m,
		pushes:  make(map[uint64]uint64),
		pops:    make(map[uint64]uint64),
		ops:     make(map[int]*fifoOp),
		maxErrs: 20,
	}
	c.last = q.Snapshot()
	m.AddObserver(c)
	return c
}

var _ shmem.Observer = (*FIFOChecker)(nil)

// OnWrite implements shmem.Observer.
func (c *FIFOChecker) OnWrite(ev shmem.WriteEvent) {
	if len(c.errs) >= c.maxErrs {
		return
	}
	if ev.Kind == shmem.OpStore {
		return
	}
	now := c.queue.Snapshot()
	switch {
	case len(now) == len(c.last):
		for i := range now {
			if now[i] != c.last[i] {
				c.fail(fmt.Errorf("check: step %d: queue mutated in place: %v -> %v", ev.Step, c.last, now))
				break
			}
		}
	case len(now) == len(c.last)+1:
		for i := range c.last {
			if now[i] != c.last[i] {
				c.fail(fmt.Errorf("check: step %d: append changed the prefix: %v -> %v", ev.Step, c.last, now))
				break
			}
		}
		v := now[len(now)-1]
		if _, dup := c.pushes[v]; dup {
			c.fail(fmt.Errorf("check: step %d: value %d appended twice", ev.Step, v))
		}
		c.pushes[v] = ev.Step
	case len(now) == len(c.last)-1:
		for i := range now {
			if now[i] != c.last[i+1] {
				c.fail(fmt.Errorf("check: step %d: removal was not from the head: %v -> %v", ev.Step, c.last, now))
				break
			}
		}
		v := c.last[0]
		c.pops[v] = ev.Step
		c.popSeq = append(c.popSeq, v)
	default:
		c.fail(fmt.Errorf("check: step %d: one write changed the length by %d: %v -> %v", ev.Step, len(now)-len(c.last), c.last, now))
	}
	c.last = now
}

// BeginEnq registers an enqueue of val by process p.
func (c *FIFOChecker) BeginEnq(p int, val uint64) {
	c.ops[p] = &fifoOp{enq: true, val: val, begin: c.mem.Steps()}
}

// BeginDeq registers a dequeue by process p.
func (c *FIFOChecker) BeginDeq(p int) {
	c.ops[p] = &fifoOp{begin: c.mem.Steps()}
}

// EndEnq validates the completed enqueue.
func (c *FIFOChecker) EndEnq(p int) {
	op := c.ops[p]
	if op == nil || !op.enq {
		c.fail(fmt.Errorf("check: EndEnq(%d) without a registered enqueue", p))
		return
	}
	delete(c.ops, p)
	end := c.mem.Steps()
	step, ok := c.pushes[op.val]
	if !ok || step < op.begin || step > end {
		c.fail(fmt.Errorf("check: process %d enqueued %d but no matching append event lies in [%d,%d]", p, op.val, op.begin, end))
		return
	}
	delete(c.pushes, op.val) // claimed
}

// EndDeq validates the completed dequeue and its returned value.
func (c *FIFOChecker) EndDeq(p int, val uint64, ok bool) {
	op := c.ops[p]
	if op == nil || op.enq {
		c.fail(fmt.Errorf("check: EndDeq(%d) without a registered dequeue", p))
		return
	}
	delete(c.ops, p)
	end := c.mem.Steps()
	if !ok {
		// Empty: the queue must have been empty at some instant of the
		// window. Approximate via the snapshot trail: if the queue was
		// never observed empty during the window we cannot prove it,
		// but a nonempty-throughout window with registered pops not
		// covering it is a strong signal; keep the conservative check:
		if len(c.last) > 0 && len(c.popSeq) == 0 && len(c.pushes) == 0 && op.begin == 0 {
			c.fail(fmt.Errorf("check: process %d reported empty dequeue on a queue that was never empty", p))
		}
		return
	}
	step, found := c.pops[val]
	if !found || step < op.begin || step > end {
		c.fail(fmt.Errorf("check: process %d dequeued %d but no matching removal event lies in [%d,%d]", p, val, op.begin, end))
		return
	}
	delete(c.pops, val) // claimed
}

// Finish verifies every structural event was claimed.
func (c *FIFOChecker) Finish() {
	for p := range c.ops {
		c.fail(fmt.Errorf("check: process %d has an unreported operation", p))
	}
	for v, step := range c.pops {
		c.fail(fmt.Errorf("check: removal of %d at step %d was never claimed by a dequeue", v, step))
	}
}

// PopOrder returns the values removed so far, in linearization order, for
// harness-side FIFO assertions.
func (c *FIFOChecker) PopOrder() []uint64 { return c.popSeq }

// Err returns accumulated violations.
func (c *FIFOChecker) Err() error {
	if len(c.errs) == 0 {
		return nil
	}
	return fmt.Errorf("check: %d violations; first: %v", len(c.errs), c.errs[0])
}

func (c *FIFOChecker) fail(err error) {
	if len(c.errs) < c.maxErrs {
		c.errs = append(c.errs, err)
	}
}
